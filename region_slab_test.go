package rcgo

// Tests for the off-heap slab backing store integration
// (region_slab.go): the pointer-free admission gate, page return at
// reclaim, the error paths' unwrap chains (injected map failures,
// refusing and capped stores, use after close), close idempotence, the
// /slabs inspector endpoint, the slab audit rules, and a churn stress
// whose judge is zero leaked pages (run under -race by make race).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"unsafe"

	"rcgo/internal/failpoint"
	"rcgo/internal/slab"
)

// slabVal is pointer-free: the admission gate must slab-back it.
type slabVal struct {
	A, B int64
	Pad  [4]int64
}

// slabRefVal carries a Ref (an atomic pointer): the gate must refuse it.
type slabRefVal struct {
	N    int64
	Next Ref[slabRefVal]
}

func TestSlabEligibility(t *testing.T) {
	cases := []struct {
		name string
		got  bool
		want bool
	}{
		{"pointer-free struct", chunkSlabEligible[slabVal](), true},
		{"int", chunkSlabEligible[int](), true},
		{"array of float", chunkSlabEligible[[8]float64](), true},
		{"ref field", chunkSlabEligible[slabRefVal](), false},
		{"string", chunkSlabEligible[string](), false},
		{"slice", chunkSlabEligible[[]int](), false},
		{"pointer", chunkSlabEligible[*int](), false},
		{"map", chunkSlabEligible[map[int]int](), false},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("chunkSlabEligible(%s) = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestSlabBackedAllocAndReclaim(t *testing.T) {
	a := NewArena(WithOffHeapSlabs(), WithMetrics())
	defer a.CloseBackingStore()
	ring := NewRingTracer(1 << 10)
	a.SetTracer(ring)

	r := a.NewRegion()
	// Enough objects to span several chunks.
	perChunk := chunkTargetBytes / int(unsafe.Sizeof(Obj[slabVal]{}))
	for i := 0; i < 3*perChunk; i++ {
		o := Alloc[slabVal](r)
		o.Value.A = int64(i)
	}
	ss, ok := a.SlabStats()
	if !ok {
		t.Fatal("SlabStats: no store attached")
	}
	if ss.InUsePages < 3 {
		t.Fatalf("InUsePages = %d after 3 chunks' worth of allocs, want >= 3", ss.InUsePages)
	}
	if got := r.slabPageCount(); got != ss.InUsePages {
		t.Fatalf("region tracks %d pages, store reports %d in use", got, ss.InUsePages)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit with live slab pages: %s", rep)
	}

	// A pointer-carrying payload in the same region must ride the
	// GC-heap chunk path without adding pages.
	before := ss.InUsePages
	for i := 0; i < perChunk; i++ {
		Alloc[slabRefVal](r)
	}
	if ss, _ = a.SlabStats(); ss.InUsePages != before {
		t.Fatalf("Ref-carrying payload changed InUsePages %d -> %d", before, ss.InUsePages)
	}

	// Reclaim returns every page immediately.
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	ss, _ = a.SlabStats()
	if ss.InUsePages != 0 {
		t.Fatalf("InUsePages = %d after delete, want 0", ss.InUsePages)
	}
	if ss.FreePages == 0 {
		t.Fatal("FreePages = 0 after delete — pages were not returned")
	}
	c := a.Counters()
	if c.SlabRefills == 0 || c.SlabRefills != c.SlabReleases {
		t.Fatalf("refills=%d releases=%d, want equal and nonzero", c.SlabRefills, c.SlabReleases)
	}
	var mapped, released int
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case TraceSlabMapped:
			mapped++
		case TraceSlabReleased:
			released++
		}
	}
	if mapped == 0 || released == 0 {
		t.Fatalf("trace saw %d slab-mapped and %d slab-released events, want both nonzero", mapped, released)
	}
}

func TestSlabMapFailpointUnwrapChain(t *testing.T) {
	a := NewArena(WithOffHeapSlabs())
	defer a.CloseBackingStore()
	r := a.NewRegion()
	defer r.Delete()

	if err := failpoint.Enable("rcgo/slab.map", failpoint.Rule{Action: failpoint.ActionError}); err != nil {
		t.Fatal(err)
	}
	_, err := TryAlloc[slabVal](r)
	failpoint.DisableAll()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("TryAlloc under rcgo/slab.map = %v, want unwrap chain to reach ErrInjected", err)
	}
	// Heap-chunked payloads never evaluate the site.
	if err := failpoint.Enable("rcgo/slab.map", failpoint.Rule{Action: failpoint.ActionError}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	if _, err := TryAlloc[slabRefVal](r); err != nil {
		t.Fatalf("heap-chunk TryAlloc tripped the slab failpoint: %v", err)
	}
}

// refusingStore fails every Alloc with a wrapped store error: the
// runtime must fall back to GC-heap chunks and never surface it.
type refusingStore struct{ closed bool }

func (s *refusingStore) Alloc(size int) (unsafe.Pointer, error) {
	return nil, fmt.Errorf("refusing %d bytes: %w", size, slab.ErrMapFailed)
}
func (s *refusingStore) Free(p unsafe.Pointer, size int) {}
func (s *refusingStore) Stats() SlabStats               { return SlabStats{} }
func (s *refusingStore) Close() error                   { s.closed = true; return nil }

func TestSlabStoreRefusalFallsBackToHeap(t *testing.T) {
	rs := &refusingStore{}
	a := NewArena(WithBackingStore(rs))
	r := a.NewRegion()
	for i := 0; i < 100; i++ {
		if _, err := TryAlloc[slabVal](r); err != nil {
			t.Fatalf("alloc %d: refusal must fall back to heap chunks, got %v", i, err)
		}
	}
	if got := r.Objects(); got != 100 {
		t.Fatalf("Objects = %d, want 100", got)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := a.CloseBackingStore(); err != nil || !rs.closed {
		t.Fatalf("CloseBackingStore = %v (closed=%v)", err, rs.closed)
	}
}

func TestSlabCappedStoreExhaustion(t *testing.T) {
	// One segment, two pages: the third carve hits ErrExhausted and the
	// runtime quietly switches that region to heap chunks.
	store := slab.New(slab.Config{MaxBytes: 64 << 10, SegmentBytes: 64 << 10})
	a := NewArena(WithBackingStore(slabStore{s: store}))
	defer a.CloseBackingStore()
	r := a.NewRegion()
	perChunk := chunkTargetBytes / int(unsafe.Sizeof(Obj[slabVal]{}))
	for i := 0; i < 32*perChunk; i++ {
		if _, err := TryAlloc[slabVal](r); err != nil {
			t.Fatalf("alloc %d past exhaustion: %v", i, err)
		}
	}
	ss, _ := a.SlabStats()
	if ss.InUsePages == 0 {
		t.Fatal("capped store carved nothing before exhausting")
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if ss, _ = a.SlabStats(); ss.InUsePages != 0 {
		t.Fatalf("InUsePages = %d after delete, want 0", ss.InUsePages)
	}
}

func TestSlabCloseIdempotentAndUseAfterClose(t *testing.T) {
	a := NewArena(WithOffHeapSlabs())
	r := a.NewRegion()
	Alloc[slabVal](r)
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := a.CloseBackingStore(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := a.CloseBackingStore(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// Allocation against a closed store degrades to heap chunks; the
	// region still works and its delete (whose page list is empty —
	// nothing was carved) is clean.
	r2 := a.NewRegion()
	for i := 0; i < 50; i++ {
		if _, err := TryAlloc[slabVal](r2); err != nil {
			t.Fatalf("alloc after close: %v", err)
		}
	}
	if err := r2.Delete(); err != nil {
		t.Fatal(err)
	}
	// No store at all: CloseBackingStore is a nil no-op.
	if err := NewArena().CloseBackingStore(); err != nil {
		t.Fatalf("close without store: %v", err)
	}
}

// lyingStore wraps a real store but inflates InUsePages: the auditor's
// slab-pages-total rule must flag the mismatch against the per-region
// page lists.
type lyingStore struct {
	BackingStore
	inflate int64
}

func (s *lyingStore) Stats() SlabStats {
	st := s.BackingStore.Stats()
	st.InUsePages += s.inflate
	return st
}

func TestSlabAuditRules(t *testing.T) {
	ls := &lyingStore{BackingStore: NewSlabStore()}
	a := NewArena(WithBackingStore(ls))
	defer a.CloseBackingStore()
	r := a.NewRegion()
	Alloc[slabVal](r)
	defer r.Delete()

	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit of honest store: %s", rep)
	}
	ls.inflate = 3
	rep := a.Audit()
	if rep.OK {
		t.Fatal("audit accepted a store whose InUsePages disagrees with the region page lists")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == AuditSlabPagesTotal {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected %s violation, got: %s", AuditSlabPagesTotal, rep)
	}
}

func TestSlabsEndpoint(t *testing.T) {
	get := func(t *testing.T, srv *httptest.Server) SlabsReport {
		t.Helper()
		resp, err := http.Get(srv.URL + "/slabs")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /slabs: status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var rep SlabsReport
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("GET /slabs: %v in %s", err, body)
		}
		return rep
	}

	t.Run("disabled", func(t *testing.T) {
		a := NewArena()
		srv := httptest.NewServer(a.DebugHandler())
		defer srv.Close()
		if rep := get(t, srv); rep.Enabled {
			t.Fatal("/slabs reports Enabled on a storeless arena")
		}
	})

	t.Run("enabled", func(t *testing.T) {
		a := NewArena(WithOffHeapSlabs())
		defer a.CloseBackingStore()
		r := a.NewRegion()
		defer r.Delete()
		Alloc[slabVal](r)
		srv := httptest.NewServer(a.DebugHandler())
		defer srv.Close()
		rep := get(t, srv)
		if !rep.Enabled {
			t.Fatal("/slabs reports Disabled with a store attached")
		}
		if rep.Stats.InUsePages == 0 {
			t.Fatalf("/slabs reports 0 in-use pages, want > 0: %+v", rep)
		}
		found := false
		for _, row := range rep.Regions {
			if row.ID == r.ID() && row.Pages > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("/slabs region rows missing region %d: %+v", r.ID(), rep.Regions)
		}
	})
}

func TestSlabTraceKindsRoundTrip(t *testing.T) {
	for kind, want := range map[TraceKind]string{
		TraceSlabMapped:   "slab-mapped",
		TraceSlabReleased: "slab-released",
	} {
		if got := kind.String(); got != want {
			t.Errorf("TraceKind(%d).String() = %q, want %q", kind, got, want)
		}
		var back TraceKind
		if err := back.UnmarshalText([]byte(want)); err != nil {
			t.Errorf("UnmarshalText(%q): %v", want, err)
		} else if back != kind {
			t.Errorf("UnmarshalText(%q) = %d, want %d", want, back, kind)
		}
	}
}

// TestSlabChurnZeroLeaks is the stress judge (run under -race by make
// race): workers churn create/populate/delete against a slab arena,
// racing region reclaim's immediate page return against concurrent
// carves, and at quiesce the store must report zero in-use pages with
// refills and releases balanced exactly.
func TestSlabChurnZeroLeaks(t *testing.T) {
	a := NewArena(WithOffHeapSlabs(), WithMetrics())
	defer a.CloseBackingStore()

	workers, rounds := 8, 60
	if testing.Short() {
		workers, rounds = 4, 20
	}
	perChunk := chunkTargetBytes / int(unsafe.Sizeof(Obj[slabVal]{}))
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r := a.NewRegion()
				for n := 0; n < 2*perChunk+w; n++ {
					o, err := TryAlloc[slabVal](r)
					if err != nil {
						errs <- err
						return
					}
					o.Value.A, o.Value.B = int64(n), int64(w)
				}
				if i%2 == 0 {
					if err := r.Delete(); err != nil {
						errs <- err
						return
					}
				} else {
					r.DeleteDeferred()
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("quiesced audit: %s", rep)
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d, want 0", got)
	}
	ss, _ := a.SlabStats()
	if ss.InUsePages != 0 {
		t.Fatalf("leaked %d slab pages at quiesce", ss.InUsePages)
	}
	c := a.Counters()
	if c.SlabRefills == 0 || c.SlabRefills != c.SlabReleases {
		t.Fatalf("refills=%d releases=%d, want equal and nonzero", c.SlabRefills, c.SlabReleases)
	}
}
