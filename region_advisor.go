package rcgo

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The annotation advisor: a per-call-site store-flavour profiler for the
// concurrent Go-native runtime (DESIGN.md §13).
//
// The paper's central result is that annotations make reference counting
// nearly free — but a Go-native caller picks SetRef/SetSame/SetTrad/
// SetParent by hand, and a conservative choice silently pays the full
// counted protocol on every store. The pipeline's whole-program
// inference (internal/rlang, paper §4.3) removes that cost statically
// for RC programs; the advisor re-delivers the same flavour lattice as
// live telemetry for Go code: at every successful non-nil store the
// runtime already holds the holder's and the target's regions, so when
// advising is armed it classifies the store against the lattice
//
//	same-region target            → SetSame legal   (one identity compare)
//	target is the traditional     → SetTrad legal   (one compare)
//	target is an ancestor         → SetParent legal (ancestry walk)
//	anything                      → SetRef legal    (full rc protocol)
//
// and records (call site, used flavour, which cheaper flavours were
// legal) into a sharded PC-keyed table. A call site whose every
// observed store admits a cheaper flavour is an upgrade candidate: the
// report recommends the cheapest flavour that was legal for ALL of the
// site's stores (the lattice meet over its observations — a flavour
// legal only sometimes would make the upgraded store fail ErrBadRef).
//
// Cost contract, mirroring the metrics gate (region_metrics.go): the
// gate is an atomic pointer cached on every Region, so with the advisor
// disarmed (the default) each store pays one already-hot pointer load
// and a never-taken branch — measured within the established <5%
// best-of-10 bound on parallel SetSame/SetRef (EXPERIMENTS.md
// §"Annotation advisor"). Armed, each store additionally pays a
// runtime.Callers walk (two frames) plus one or two atomic adds; call
// sites are resolved to file:line only lazily, at report time, via
// runtime.CallersFrames.
//
// Exactness contract, like the PR 5 counter contract: every successful
// non-nil store observed while the advisor is armed increments its
// entry's counters before the Set* call returns, so once the arena
// quiesces (no store in flight) the table is exact — the fabric stress
// and the chaos alloc-churn phase hold the advisor to that bound under
// -race. Stores already in flight when EnableAdvisor arms the gate may
// go unobserved, exactly like the metrics gate; arm at construction
// with WithAdvisor for whole-life coverage.

// StoreFlavour identifies one of the four store APIs, ordered by cost:
// a smaller flavour is cheaper at store time. The order is the advisor's
// upgrade lattice — FlavourSame and FlavourTrad are single-compare
// checks (same first: it needs no extra load), FlavourParent walks the
// immutable ancestor chain, FlavourRef pays the full counted protocol.
type StoreFlavour int32

const (
	// FlavourSame is SetSame: target in the holder's own region.
	FlavourSame StoreFlavour = iota
	// FlavourTrad is SetTrad: target in the arena's traditional region.
	FlavourTrad
	// FlavourParent is SetParent: target in an ancestor (or the same)
	// region of the holder's.
	FlavourParent
	// FlavourRef is SetRef: any live target, full reference counting.
	FlavourRef

	flavourCount = 4
)

// String names the flavour after its store function.
func (f StoreFlavour) String() string {
	switch f {
	case FlavourSame:
		return "SetSame"
	case FlavourTrad:
		return "SetTrad"
	case FlavourParent:
		return "SetParent"
	case FlavourRef:
		return "SetRef"
	}
	return fmt.Sprintf("StoreFlavour(%d)", int32(f))
}

// MarshalText renders the flavour as its name in JSON output.
func (f StoreFlavour) MarshalText() ([]byte, error) { return []byte(f.String()), nil }

// UnmarshalText parses the name MarshalText produces, so an
// AdvisorReport round-trips through JSON (the /advisor endpoint's
// clients decode into the same types).
func (f *StoreFlavour) UnmarshalText(b []byte) error {
	switch string(b) {
	case "SetSame":
		*f = FlavourSame
	case "SetTrad":
		*f = FlavourTrad
	case "SetParent":
		*f = FlavourParent
	case "SetRef":
		*f = FlavourRef
	default:
		return fmt.Errorf("unknown store flavour %q", b)
	}
	return nil
}

// advisorPCDepth is the number of raw PCs captured per observation:
// the store function's direct caller plus one more frame, so call
// sites reached through a non-inlined MustSet* wrapper still key and
// resolve to the wrapper's own caller.
const advisorPCDepth = 2

// advisorKey identifies one profiled call site: the captured PC stack
// and the flavour the site actually used (a site that somehow mixes
// flavours — a generic helper, say — gets one entry per flavour).
type advisorKey struct {
	pcs  [advisorPCDepth]uintptr
	used StoreFlavour
}

// advisorEntry accumulates one call site's observations. All counters
// are atomics updated outside the shard lock, so concurrent stores at
// one hot call site never serialize on the table.
type advisorEntry struct {
	key advisorKey
	// count is the total successful non-nil stores observed.
	count atomic.Int64
	// legal counts, per cheaper flavour (indexed by StoreFlavour below
	// FlavourRef), how many of those stores that flavour would have
	// accepted. legal[f] == count means f was legal every time — the
	// condition for recommending it.
	legal [flavourCount - 1]atomic.Int64
	// external counts stores that actually paid reference-count updates
	// (used == FlavourRef with a cross-region target): the report's
	// wasted-rc-updates ranking is 2× this (one increment at the store,
	// one decrement at overwrite or delete-time unscan).
	external atomic.Int64
	// traced flips once when the site first observes an upgradeable
	// store, so TraceStoreUpgradeable fires once per entry, not per
	// store.
	traced atomic.Bool
}

// advisorShards is the number of table shards. Sites hash by PC, so
// distinct call sites rarely share a shard lock; one site's stores
// share an entry but update it with atomics only.
const advisorShards = 64

// advisorShard is one shard of the call-site table, padded so two
// shards' locks never share a cache line.
type advisorShard struct {
	mu sync.RWMutex
	m  map[advisorKey]*advisorEntry
	_  [24]byte
}

// arenaAdvisor is the sharded call-site table, allocated when advising
// is armed.
type arenaAdvisor struct {
	shards [advisorShards]advisorShard
}

func (ad *arenaAdvisor) shard(k advisorKey) *advisorShard {
	h := (k.pcs[0] ^ k.pcs[1]*0x9E3779B97F4A7C15 ^ uintptr(k.used)) * 0x9E3779B97F4A7C15 >> 32
	return &ad.shards[h%advisorShards]
}

// entry returns (creating if needed) the accumulator for k. The common
// case — the site already seen — is a read-locked map hit.
func (ad *arenaAdvisor) entry(k advisorKey) *advisorEntry {
	sh := ad.shard(k)
	sh.mu.RLock()
	e := sh.m[k]
	sh.mu.RUnlock()
	if e != nil {
		return e
	}
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[advisorKey]*advisorEntry)
	}
	if e = sh.m[k]; e == nil {
		e = &advisorEntry{key: k}
		sh.m[k] = e
	}
	sh.mu.Unlock()
	return e
}

// observe records one successful non-nil store. It must be called
// directly from the store function's own body (SetRef/SetSame/SetTrad/
// SetParent): the PC capture skips three logical frames — Callers,
// observe, the store function — which runtime.Callers counts correctly
// whether or not either of them is inlined, so the first captured PC is
// always the store function's caller.
//
// The caller has already validated the store, so hr is alive, tr is
// non-nil, and the annotation (if any) held; classification reads only
// immutable region identity and ancestry.
func (ad *arenaAdvisor) observe(hr, tr *Region, used StoreFlavour) {
	var k advisorKey
	k.used = used
	runtime.Callers(3, k.pcs[:])

	same := tr == hr
	trad := tr == hr.arena.trad
	parent := tr.isAncestorOf(hr)

	e := ad.entry(k)
	e.count.Add(1)
	if same {
		e.legal[FlavourSame].Add(1)
	}
	if trad {
		e.legal[FlavourTrad].Add(1)
	}
	if parent {
		e.legal[FlavourParent].Add(1)
	}
	if used == FlavourRef && !same {
		e.external.Add(1)
	}

	cheapest := FlavourRef
	switch {
	case same:
		cheapest = FlavourSame
	case trad:
		cheapest = FlavourTrad
	case parent:
		cheapest = FlavourParent
	}
	if cheapest < used && !e.traced.Load() && e.traced.CompareAndSwap(false, true) {
		hr.arena.traceEvent(TraceStoreUpgradeable, hr)
	}
}

// WithAdvisor arms the annotation advisor from birth, equivalent to
// calling EnableAdvisor immediately after construction — except that no
// store can predate the gate, so the profile covers the arena's whole
// life. Armed, every successful non-nil Set* store pays a two-frame
// runtime.Callers walk; leave the advisor off in production unless the
// profile is wanted.
func WithAdvisor() Option {
	return func(c *arenaConfig) { c.advisor = true }
}

// EnableAdvisor arms the annotation advisor mid-life. Idempotent; the
// profile accumulates from the first call and is never reset. Like
// EnableMetrics, the gate each store reads is the per-region cached
// pointer, so enabling walks the registry to arm every existing region;
// stores already in flight may go unobserved — the profile is exact
// only for stores that began after arming (and, at quiesce, exactly
// those).
func (a *Arena) EnableAdvisor() {
	if a.advisor.CompareAndSwap(nil, &arenaAdvisor{}) {
		ad := a.advisor.Load()
		a.EachRegion(func(r *Region) { r.advisor.Store(ad) })
	}
}

// AdvisorEnabled reports whether the annotation advisor is armed.
func (a *Arena) AdvisorEnabled() bool { return a.advisor.Load() != nil }

// AdvisorSite is one profiled call site of the advisor report: where
// the store is, the flavour it used, what the profile observed, and the
// cheapest flavour every observed store would have accepted.
type AdvisorSite struct {
	// Func / File / Line locate the call site, resolved lazily at
	// report time via runtime.CallersFrames (MustSet* wrapper frames are
	// skipped, so the site names the wrapper's caller).
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
	// Used is the flavour the site's code calls.
	Used StoreFlavour `json:"used"`
	// Count is the number of successful non-nil stores observed.
	Count int64 `json:"count"`
	// LegalSame / LegalTrad / LegalParent count how many of those
	// stores each cheaper flavour would have accepted.
	LegalSame   int64 `json:"legal_same"`
	LegalTrad   int64 `json:"legal_trad"`
	LegalParent int64 `json:"legal_parent"`
	// Recommended is the cheapest flavour legal for every observed
	// store (the lattice meet); equal to Used when no upgrade exists.
	Recommended StoreFlavour `json:"recommended"`
	// Upgrade is true when Recommended is strictly cheaper than Used.
	Upgrade bool `json:"upgrade"`
	// WastedRCUpdates counts reference-count updates an upgrade would
	// have avoided: 2 per cross-region counted store (the increment at
	// the store and the decrement at overwrite or unscan) at an
	// upgradeable SetRef site, 0 elsewhere — annotated-to-annotated
	// upgrades save check cost, not rc updates.
	WastedRCUpdates int64 `json:"wasted_rc_updates"`
}

// AdvisorReport is the advisor's call-site profile, produced by
// Arena.AdvisorReport and served by the debug inspector's /advisor
// endpoint.
type AdvisorReport struct {
	// Enabled reports whether the advisor was armed when the report was
	// taken; a disabled arena reports no sites.
	Enabled bool `json:"enabled"`
	// Sites is every profiled call site, upgrade candidates first,
	// ranked by wasted rc updates then by store count.
	Sites []AdvisorSite `json:"sites"`
	// Observations is the total successful non-nil stores profiled.
	Observations int64 `json:"observations"`
	// UpgradeCandidates is the number of sites with Upgrade set.
	UpgradeCandidates int `json:"upgrade_candidates"`
	// WastedRCUpdates sums the sites' WastedRCUpdates.
	WastedRCUpdates int64 `json:"wasted_rc_updates"`
}

// AdvisorReport snapshots the advisor's call-site table and resolves
// every site to file:line. Counters are read with atomic loads, shard
// by shard: the report is exact once the arena quiesces and a
// consistent approximation while stores are in flight. Symbol
// resolution walks runtime.CallersFrames per site, so the report is a
// debug-time operation, not a fast path.
func (a *Arena) AdvisorReport() AdvisorReport {
	ad := a.advisor.Load()
	if ad == nil {
		return AdvisorReport{Sites: []AdvisorSite{}}
	}
	rep := AdvisorReport{Enabled: true, Sites: []AdvisorSite{}}
	for i := range ad.shards {
		sh := &ad.shards[i]
		sh.mu.RLock()
		entries := make([]*advisorEntry, 0, len(sh.m))
		for _, e := range sh.m {
			entries = append(entries, e)
		}
		sh.mu.RUnlock()
		for _, e := range entries {
			site := AdvisorSite{
				Used:        e.key.used,
				Count:       e.count.Load(),
				LegalSame:   e.legal[FlavourSame].Load(),
				LegalTrad:   e.legal[FlavourTrad].Load(),
				LegalParent: e.legal[FlavourParent].Load(),
			}
			site.Func, site.File, site.Line = resolveSite(e.key.pcs)
			site.Recommended = FlavourRef
			switch {
			case site.LegalSame == site.Count:
				site.Recommended = FlavourSame
			case site.LegalTrad == site.Count:
				site.Recommended = FlavourTrad
			case site.LegalParent == site.Count:
				site.Recommended = FlavourParent
			}
			if site.Recommended > site.Used {
				// Never recommend a costlier flavour than the one in use:
				// the site's own annotation already proved itself legal on
				// every observed store.
				site.Recommended = site.Used
			}
			site.Upgrade = site.Recommended < site.Used
			if site.Upgrade && site.Used == FlavourRef {
				site.WastedRCUpdates = 2 * e.external.Load()
			}
			rep.Sites = append(rep.Sites, site)
			rep.Observations += site.Count
			if site.Upgrade {
				rep.UpgradeCandidates++
				rep.WastedRCUpdates += site.WastedRCUpdates
			}
		}
	}
	sort.Slice(rep.Sites, func(i, j int) bool {
		a, b := rep.Sites[i], rep.Sites[j]
		if a.Upgrade != b.Upgrade {
			return a.Upgrade
		}
		if a.WastedRCUpdates != b.WastedRCUpdates {
			return a.WastedRCUpdates > b.WastedRCUpdates
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return rep
}

// resolveSite expands a captured PC stack to the call site's function,
// file and line, skipping the library's own MustSet* wrapper frames so
// a store made through MustSetRef is attributed to the code that called
// the wrapper.
func resolveSite(pcs [advisorPCDepth]uintptr) (fn, file string, line int) {
	n := 0
	for n < len(pcs) && pcs[n] != 0 {
		n++
	}
	if n == 0 {
		return "?", "?", 0
	}
	frames := runtime.CallersFrames(pcs[:n])
	var first runtime.Frame
	for {
		f, more := frames.Next()
		if first.PC == 0 && f.PC != 0 {
			first = f
		}
		if f.PC != 0 && !strings.HasPrefix(f.Function, "rcgo.MustSet") {
			return f.Function, f.File, f.Line
		}
		if !more {
			break
		}
	}
	if first.PC == 0 {
		return "?", "?", 0
	}
	return first.Function, first.File, first.Line
}

// AdvisorStats is the advisor summary embedded in the /counters JSON
// and the expvar document: enough for a monitoring scraper to notice
// "this arena is leaving annotation upgrades on the table" without
// paying for per-site symbol resolution on every scrape.
type AdvisorStats struct {
	Sites             int   `json:"sites"`
	UpgradeCandidates int   `json:"upgrade_candidates"`
	Observations      int64 `json:"observations"`
	WastedRCUpdates   int64 `json:"wasted_rc_updates"`
}

// advisorStats summarizes the table without resolving symbols; ok is
// false while the advisor is disarmed.
func (a *Arena) advisorStats() (AdvisorStats, bool) {
	ad := a.advisor.Load()
	if ad == nil {
		return AdvisorStats{}, false
	}
	var st AdvisorStats
	for i := range ad.shards {
		sh := &ad.shards[i]
		sh.mu.RLock()
		entries := make([]*advisorEntry, 0, len(sh.m))
		for _, e := range sh.m {
			entries = append(entries, e)
		}
		sh.mu.RUnlock()
		for _, e := range entries {
			st.Sites++
			count := e.count.Load()
			st.Observations += count
			rec := FlavourRef
			switch {
			case e.legal[FlavourSame].Load() == count:
				rec = FlavourSame
			case e.legal[FlavourTrad].Load() == count:
				rec = FlavourTrad
			case e.legal[FlavourParent].Load() == count:
				rec = FlavourParent
			}
			if rec < e.key.used {
				st.UpgradeCandidates++
				if e.key.used == FlavourRef {
					st.WastedRCUpdates += 2 * e.external.Load()
				}
			}
		}
	}
	return st, true
}

// WriteTable renders the report as the human table the /advisor.txt
// endpoint and rcbench -advise print: upgrade candidates first, ranked
// by wasted rc updates.
func (rep AdvisorReport) WriteTable(w io.Writer) {
	if !rep.Enabled {
		fmt.Fprintln(w, "advisor disabled: arm with rcgo.WithAdvisor() at construction or Arena.EnableAdvisor() mid-life")
		return
	}
	fmt.Fprintf(w, "advisor: %d observations over %d call sites, %d upgrade candidates, %d wasted rc updates\n",
		rep.Observations, len(rep.Sites), rep.UpgradeCandidates, rep.WastedRCUpdates)
	if len(rep.Sites) == 0 {
		return
	}
	fmt.Fprintf(w, "%-9s %-22s %10s %10s %10s %10s %10s  %s\n",
		"used", "recommend", "stores", "same-ok", "trad-ok", "parent-ok", "wasted-rc", "site")
	for _, s := range rep.Sites {
		rec := "(keep)"
		if s.Upgrade {
			rec = "upgrade:" + s.Recommended.String()
		}
		fmt.Fprintf(w, "%-9s %-22s %10d %10d %10d %10d %10d  %s (%s:%d)\n",
			s.Used, rec, s.Count, s.LegalSame, s.LegalTrad, s.LegalParent,
			s.WastedRCUpdates, s.Func, trimPath(s.File), s.Line)
	}
}

// String renders the report table, for %v-style logging.
func (rep AdvisorReport) String() string {
	var b strings.Builder
	rep.WriteTable(&b)
	return b.String()
}

// trimPath shortens an absolute source path to its last two elements,
// keeping the table readable without losing the package directory.
func trimPath(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i < 0 {
		return p
	}
	if j := strings.LastIndexByte(p[:i], '/'); j >= 0 {
		return p[j+1:]
	}
	return p[i+1:]
}
