package rcgo

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"rcgo/internal/vm"
)

// newVMForTest builds a region-backend VM for direct runtime inspection.
func newVMForTest(c *Compiled) *vm.VM {
	return vm.New(c.Prog, vm.Config{
		Backend:  vm.BackendRegion,
		Counting: c.Mode != ModeNoRC,
		Locals:   vm.LocalsPins,
		Output:   io.Discard,
	})
}

// runOut compiles and runs a program, returning its printed output.
func runOut(t *testing.T, src string, mode Mode, cfg RunConfig) string {
	t.Helper()
	var buf bytes.Buffer
	cfg.Output = &buf
	cfg.MaxSteps = 200_000_000
	_, err := RunSource(src, mode, cfg)
	if err != nil {
		t.Fatalf("run (%s/%s): %v\noutput so far: %s", mode, cfg.Backend, err, buf.String())
	}
	return buf.String()
}

func TestRunHello(t *testing.T) {
	out := runOut(t, `
void main(void) {
	print_str("hello, ");
	print_str("world");
	print_char('\n');
	print_int(42);
}`, ModeInf, RunConfig{})
	if out != "hello, world\n42" {
		t.Errorf("output = %q", out)
	}
}

func TestRunArithmeticAndControl(t *testing.T) {
	out := runOut(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
void main(void) {
	int i;
	for (i = 0; i < 10; i++) {
		print_int(fib(i));
		print_char(' ');
	}
	int x = 100 / 7;
	int y = 100 % 7;
	print_int(x); print_char(','); print_int(y);
	print_char(' ');
	print_int(3 > 2 && 2 > 3 ? 1 : 0);
	print_int(!0);
	print_int(-5 + 3);
}`, ModeInf, RunConfig{})
	want := "0 1 1 2 3 5 8 13 21 34 14,2 01-2"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestRunFigure1(t *testing.T) {
	// The paper's Figure 1, end to end, under every mode and backend.
	src := `
struct finfo { int value; };
struct rlist {
	struct rlist *sameregion next;
	struct finfo *sameregion data;
};
void output_rlist(struct rlist *l) {
	while (l) {
		print_int(l->data->value);
		print_char(' ');
		l = l->next;
	}
}
deletes void main(void) {
	struct rlist *rl;
	struct rlist *last = null;
	region r = newregion();
	int i = 0;
	while (i < 8) {
		rl = ralloc(r, struct rlist);
		rl->data = ralloc(r, struct finfo);
		rl->data->value = i;
		rl->next = last;
		last = rl;
		i = i + 1;
	}
	output_rlist(last);
	deleteregion(r);
}`
	want := "7 6 5 4 3 2 1 0 "
	for _, mode := range []Mode{ModeNQ, ModeQS, ModeInf, ModeNC, ModeNoRC} {
		if got := runOut(t, src, mode, RunConfig{}); got != want {
			t.Errorf("mode %s: output %q", mode, got)
		}
	}
	for _, be := range []Backend{BackendMalloc, BackendGC} {
		if got := runOut(t, src, ModeInf, RunConfig{Backend: be}); got != want {
			t.Errorf("backend %s: output %q", be, got)
		}
	}
	// C@-style locals handling.
	if got := runOut(t, src, ModeNQ, RunConfig{CAtStyle: true}); got != want {
		t.Errorf("C@ style: output %q", got)
	}
}

func TestRunGlobalsStringsArrays(t *testing.T) {
	out := runOut(t, `
int counter = 3;
char *greeting = "hey";
char buf[16];
int nums[8];
void main(void) {
	print_int(counter);
	print_str(greeting);
	int i;
	for (i = 0; i < 8; i++) nums[i] = i * i;
	print_int(nums[5]);
	buf[0] = 'z'; buf[1] = 0;
	print_str(buf);
}`, ModeInf, RunConfig{})
	if out != "3hey25z" {
		t.Errorf("output = %q", out)
	}
}

func TestRunAddressOfLocals(t *testing.T) {
	// cfrac's by-reference parameter pattern.
	out := runOut(t, `
void divmod(int u, int v, int *qp, int *rp) {
	*qp = u / v;
	*rp = u % v;
}
void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
void main(void) {
	int q; int r;
	divmod(17, 5, &q, &r);
	print_int(q); print_int(r);
	swap(&q, &r);
	print_int(q); print_int(r);
}`, ModeInf, RunConfig{})
	if out != "3223" {
		t.Errorf("output = %q", out)
	}
}

func TestRunByRefPointerLocals(t *testing.T) {
	// Pointers to pointer locals: stores through them are counted heap
	// stores (regionof(&local) = traditional), and frame pop must release
	// the counts so the region stays deletable.
	src := `
struct big { int d; };
void alloc2(region r, struct big **ap, struct big **bp) {
	*ap = ralloc(r, struct big);
	*bp = ralloc(r, struct big);
}
deletes void main(void) {
	region r = newregion();
	struct big *x;
	struct big *y;
	alloc2(r, &x, &y);
	x->d = 7; y->d = 35;
	print_int(x->d + y->d);
	x = null; y = null;
	deleteregion(r);
	print_str(" ok");
}`
	for _, mode := range []Mode{ModeNQ, ModeQS, ModeInf} {
		if got := runOut(t, src, mode, RunConfig{}); got != "42 ok" {
			t.Errorf("mode %s: output %q", mode, got)
		}
	}
}

func TestRunDeleteWithLiveLocalAborts(t *testing.T) {
	// A live local pointer into the region must make deleteregion abort
	// (the pin protocol): x is used after the delete.
	src := `
struct s { int v; };
deletes void main(void) {
	region r = newregion();
	struct s *x = ralloc(r, struct s);
	x->v = 5;
	deleteregion(r);
	print_int(x->v);
}`
	var buf bytes.Buffer
	_, err := RunSource(src, ModeInf, RunConfig{Output: &buf})
	if err == nil || !strings.Contains(err.Error(), "external references") {
		t.Errorf("expected abort from pinned local, got %v", err)
	}
	// Under C@'s stack scan the same program aborts too.
	_, err = RunSource(src, ModeNQ, RunConfig{Output: &buf, CAtStyle: true})
	if err == nil || !strings.Contains(err.Error(), "referenced from the stack") {
		t.Errorf("expected C@ stack-scan abort, got %v", err)
	}
}

func TestRunDeadLocalDoesNotBlockDelete(t *testing.T) {
	// Figure 1's property: locals still holding pointers into r but dead
	// at the deleteregion call must not block deletion.
	out := runOut(t, `
struct s { int v; };
deletes void main(void) {
	region r = newregion();
	struct s *x = ralloc(r, struct s);
	x->v = 1;
	print_int(x->v);
	deleteregion(r);
	print_str(" deleted");
}`, ModeInf, RunConfig{})
	if out != "1 deleted" {
		t.Errorf("output = %q", out)
	}
}

func TestRunSameRegionCheckAborts(t *testing.T) {
	src := `
struct node { struct node *sameregion next; };
void main(void) {
	region r1 = newregion();
	region r2 = newregion();
	struct node *a = ralloc(r1, struct node);
	struct node *b = ralloc(r2, struct node);
	a->next = b;
}`
	_, err := RunSource(src, ModeQS, RunConfig{})
	if err == nil || !strings.Contains(err.Error(), "sameregion") {
		t.Errorf("expected sameregion abort, got %v", err)
	}
	// With checks (unsafely) removed the program runs.
	if _, err := RunSource(src, ModeNC, RunConfig{}); err != nil {
		t.Errorf("nc mode still aborted: %v", err)
	}
}

func TestRunParentPtrAndSubregions(t *testing.T) {
	out := runOut(t, `
struct req { struct req *parentptr up; int id; };
deletes void main(void) {
	region main_r = newregion();
	struct req *outer = ralloc(main_r, struct req);
	outer->id = 1;
	region sub = newsubregion(main_r);
	struct req *inner = ralloc(sub, struct req);
	inner->up = outer;
	inner->id = 2;
	print_int(inner->up->id);
	print_int(inner->id);
	deleteregion(sub);
	deleteregion(main_r);
	print_str(" done");
}`, ModeQS, RunConfig{})
	if out != "12 done" {
		t.Errorf("output = %q", out)
	}
}

func TestRunSubregionOrderEnforced(t *testing.T) {
	src := `
deletes void main(void) {
	region r = newregion();
	region sub = newsubregion(r);
	deleteregion(r);
	deleteregion(sub);
}`
	_, err := RunSource(src, ModeInf, RunConfig{})
	if err == nil || !strings.Contains(err.Error(), "subregion") {
		t.Errorf("expected subregion-order abort, got %v", err)
	}
}

func TestRunRegionofAndArraylen(t *testing.T) {
	out := runOut(t, `
struct s { int v; };
void main(void) {
	region r = newregion();
	struct s *p = ralloc(r, struct s);
	assert(regionof(p) == r);
	int *arr = rarrayalloc(r, 32, int);
	assert(arraylen(arr) == 32);
	arr[31] = 99;
	print_int(arr[31]);
}`, ModeInf, RunConfig{})
	if out != "99" {
		t.Errorf("output = %q", out)
	}
}

func TestRunStructArrays(t *testing.T) {
	out := runOut(t, `
struct pt { int x; int y; };
void main(void) {
	region r = newregion();
	struct pt *pts = rarrayalloc(r, 10, struct pt);
	int i;
	for (i = 0; i < 10; i++) {
		struct pt *p = &pts[i];
		p->x = i;
		p->y = i * 2;
	}
	struct pt *q = &pts[7];
	print_int(q->x); print_int(q->y);
}`, ModeInf, RunConfig{})
	if out != "714" {
		t.Errorf("output = %q", out)
	}
}

func TestRunAssertFailure(t *testing.T) {
	_, err := RunSource(`void main(void) { assert(1 == 2); }`, ModeInf, RunConfig{})
	if err == nil || !strings.Contains(err.Error(), "assertion") {
		t.Errorf("expected assertion failure, got %v", err)
	}
}

func TestRunNullDeref(t *testing.T) {
	_, err := RunSource(`
struct s { int v; };
void main(void) { struct s *p = null; print_int(p->v); }`, ModeInf, RunConfig{})
	if err == nil || !strings.Contains(err.Error(), "null pointer") {
		t.Errorf("expected null deref, got %v", err)
	}
}

func TestRunDivByZero(t *testing.T) {
	_, err := RunSource(`void main(void) { int z = 0; print_int(5 / z); }`, ModeInf, RunConfig{})
	if err == nil || !strings.Contains(err.Error(), "division") {
		t.Errorf("expected division error, got %v", err)
	}
}

// Differential test: the four barrier configurations and the three
// backends must produce identical output on a program with mixed
// annotated/unannotated stores, cross-region pointers, subregions and
// recursion.
func TestDifferentialModes(t *testing.T) {
	src := `
struct item {
	struct item *sameregion next;
	struct item *other;
	char *traditional tag;
	int v;
}
;
struct item *build(region r, int n) {
	struct item *head = null;
	int i;
	for (i = 0; i < n; i++) {
		struct item *it = ralloc(r, struct item);
		it->v = i;
		it->tag = i % 2 ? "odd" : "even";
		it->next = head;
		head = it;
	}
	return head;
}
int sum(struct item *l) {
	int s = 0;
	while (l) { s = s + l->v; l = l->next; }
	return s;
}
deletes void main(void) {
	region a = newregion();
	region b = newregion();
	struct item *la = build(a, 50);
	struct item *lb = build(b, 30);
	la->other = lb;          // cross-region reference
	print_int(sum(la));
	print_char(' ');
	print_int(sum(lb));
	print_char(' ');
	print_str(la->other->tag);
	la->other = null;
	deleteregion(b);
	region sub = newsubregion(a);
	struct item *ls = build(sub, 10);
	print_char(' ');
	print_int(sum(ls));
	deleteregion(sub);
	deleteregion(a);
	print_str(" end");
}`
	var ref string
	for i, cfg := range []struct {
		mode Mode
		run  RunConfig
	}{
		{ModeNQ, RunConfig{}},
		{ModeQS, RunConfig{}},
		{ModeInf, RunConfig{}},
		{ModeNC, RunConfig{}},
		{ModeNoRC, RunConfig{}},
		{ModeNQ, RunConfig{CAtStyle: true}},
		{ModeInf, RunConfig{Backend: BackendMalloc}},
		{ModeInf, RunConfig{Backend: BackendGC}},
	} {
		got := runOut(t, src, cfg.mode, cfg.run)
		if i == 0 {
			ref = got
			if !strings.HasSuffix(ref, " end") {
				t.Fatalf("reference run incomplete: %q", ref)
			}
			continue
		}
		if got != ref {
			t.Errorf("config %d (%s): output %q, want %q", i, cfg.mode, got, ref)
		}
	}
}

// The counts maintained by the runtime agree with a ground-truth heap
// scan at quiescence (after main returns with live regions).
func TestRunValidateCountsAfterRun(t *testing.T) {
	src := `
struct node { struct node *next; }
;
void main(void) {
	region r1 = newregion();
	region r2 = newregion();
	struct node *a = ralloc(r1, struct node);
	struct node *b = ralloc(r2, struct node);
	a->next = b;
	b->next = a;
}`
	c, err := Compile(src, ModeInf)
	if err != nil {
		t.Fatal(err)
	}
	m := newVMForTest(c)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := m.RT.ValidateCounts(); err != nil {
		t.Fatal(err)
	}
	if m.RT.LiveRegions() != 2 {
		t.Errorf("LiveRegions = %d", m.RT.LiveRegions())
	}
}

func TestRunStatsCategories(t *testing.T) {
	// Figure 9's categories are observable: safe (unchecked), checked,
	// and counted stores.
	src := `
struct n { struct n *sameregion next; struct n *plain; }
;
void main(void) {
	region r = newregion();
	struct n *a = ralloc(r, struct n);
	a->next = a;    // annotated; inference proves it safe
	a->plain = a;   // unannotated: full update
}`
	c, err := Compile(src, ModeInf)
	if err != nil {
		t.Fatal(err)
	}
	m := newVMForTest(c)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := m.RT.Stats
	if st.UncheckedPtrs != 1 || st.FullUpdates != 1 || st.SameChecks != 0 {
		t.Errorf("stats: unchecked=%d full=%d same=%d",
			st.UncheckedPtrs, st.FullUpdates, st.SameChecks)
	}
	// Under qs the same store is checked instead.
	c2, _ := Compile(src, ModeQS)
	m2 := newVMForTest(c2)
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if m2.RT.Stats.SameChecks != 1 || m2.RT.Stats.UncheckedPtrs != 0 {
		t.Errorf("qs stats: %+v", m2.RT.Stats)
	}
}

func TestRunSwitch(t *testing.T) {
	out := runOut(t, `
int classify(int x) {
	int kind = 0;
	switch (x % 5) {
	case 0:
		kind = 10;
		break;
	case 1:
	case 2:
		kind = 20;          // cases 1 and 2 share a body via fallthrough
		break;
	case 3:
		kind = 30;          // falls through into default
	default:
		kind = kind + 1;
		break;
	}
	return kind;
}
void main(void) {
	int i;
	for (i = 0; i < 7; i++) { print_int(classify(i)); print_char(' '); }
	// switch inside a loop: break exits the switch, continue the loop.
	int sum = 0;
	for (i = 0; i < 6; i++) {
		switch (i) {
		case 2:
			continue;
		case 4:
			break;
		default:
			sum = sum + 10;
			break;
		}
		sum = sum + 1;
	}
	print_int(sum);
}`, ModeInf, RunConfig{})
	// classify: 0→10, 1→20, 2→20, 3→31, 4→1 (default only), 5→10, 6→20.
	// loop: i=0,1,3,5 add 11; i=2 skipped; i=4 adds 1 → 45.
	want := "10 20 20 31 1 10 20 45"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestRunSwitchWithRegions(t *testing.T) {
	// Region operations inside switch clauses: the rlang translation
	// must keep facts sound across fallthrough edges.
	out := runOut(t, `
struct s { struct s *sameregion next; int v; };
deletes void main(void) {
	region r = newregion();
	struct s *head = null;
	int i;
	for (i = 0; i < 6; i++) {
		struct s *n = ralloc(r, struct s);
		switch (i % 3) {
		case 0:
			n->v = 100;
			break;
		case 1:
			n->v = 200;   // fall through: also linked twice below
		default:
			n->next = head;
			break;
		}
		head = n;
	}
	int sum = 0;
	while (head) { sum = sum + head->v; head = head->next; }
	print_int(sum);
	head = null;
	deleteregion(r);
}`, ModeQS, RunConfig{})
	// Chain from last: i=5 (v=0,next=head4) -> i=4(200,head3) -> 3(100, next=null).
	if out != "300" {
		t.Errorf("output = %q", out)
	}
}

func TestCheckSwitchErrors(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{`void main(void) { struct x *p; switch (p) { case 1: break; } }`, ""},
		{`void main(void) { switch (1) { case 1: break; case 1: break; } }`, "duplicate case"},
		{`void main(void) { switch (1) { default: break; default: break; } }`, "multiple default"},
		{`void main(void) { break; }`, "break outside"},
	} {
		_, err := Compile(tc.src, ModeQS)
		if err == nil {
			t.Errorf("no error for %q", tc.src)
		} else if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error %q missing %q", err, tc.want)
		}
	}
}

func TestRunDoWhile(t *testing.T) {
	out := runOut(t, `
void main(void) {
	int i = 0;
	do {
		print_int(i);
		i++;
	} while (i < 3);
	// The body runs at least once even when the condition is false.
	int n = 100;
	do { print_int(n); n++; } while (n < 100);
	// break and continue inside do-while.
	int sum = 0;
	int k = 0;
	do {
		k++;
		if (k == 2) continue;
		if (k == 5) break;
		sum = sum + k;
	} while (k < 10);
	print_int(sum);
}`, ModeInf, RunConfig{})
	// sum = 1 + 3 + 4 = 8
	if out != "012100"+"8" {
		t.Errorf("output = %q", out)
	}
}

func TestRunDoWhileWithRegions(t *testing.T) {
	out := runOut(t, `
struct s { struct s *sameregion next; int v; };
deletes void main(void) {
	region r = newregion();
	struct s *head = null;
	int i = 0;
	do {
		struct s *n = ralloc(r, struct s);
		n->v = i;
		n->next = head;
		head = n;
		i++;
	} while (i < 5);
	int sum = 0;
	while (head) { sum = sum + head->v; head = head->next; }
	print_int(sum);
	deleteregion(r);
}`, ModeQS, RunConfig{})
	if out != "10" {
		t.Errorf("output = %q", out)
	}
}

func TestRegionofNullAborts(t *testing.T) {
	// The paper's new_rlist discussion relies on regionof(next) being
	// unusable when next may be null; here regionof(null) aborts.
	_, err := RunSource(`
struct s { int v; };
void main(void) {
	struct s *p = null;
	region r = regionof(p);
	if (r == r) print_int(1);
}`, ModeInf, RunConfig{})
	_ = err
	// regionof(null) resolves to the traditional region handle (the page
	// map has no entry for address 0); allocation into it is legal but
	// the region can never be deleted. Verify the observable semantics.
	out := runOut(t, `
struct s { int v; };
void main(void) {
	struct s *p = null;
	assert(regionof(p) == regionof(p));
	print_str("ok");
}`, ModeInf, RunConfig{})
	if out != "ok" {
		t.Errorf("output = %q", out)
	}
}

func TestRunProfile(t *testing.T) {
	c, err := Compile(`
int work(int n) { int s = 0; int i; for (i = 0; i < n; i++) s += i; return s; }
void main(void) { print_int(work(100)); }`, ModeInf)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := Run(c, RunConfig{Output: &buf, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil || res.Profile["work"] == 0 || res.Profile["main"] == 0 {
		t.Fatalf("profile = %v", res.Profile)
	}
	if res.Profile["work"] < res.Profile["main"] {
		t.Error("work should dominate the profile")
	}
	var sum int64
	for _, n := range res.Profile {
		sum += n
	}
	if sum != res.VM.Instructions {
		t.Errorf("profile sums to %d, want %d", sum, res.VM.Instructions)
	}
}
