// Arenacompiler: drives the RC toolchain end to end on an lcc-style
// program — per-function arenas holding ASTs with sameregion links —
// and shows what the constraint inference does to the annotation checks
// under each barrier configuration.
package main

import (
	"fmt"
	"os"

	"rcgo"
)

const program = `
// A miniature compiler: expression trees in a per-run region.
struct tree {
	struct tree *sameregion left;
	struct tree *sameregion right;
	int op;
	int value;
};

struct tree *leaf(region r, int v) {
	struct tree *t = ralloc(r, struct tree);
	t->value = v;
	return t;
}

struct tree *node(region r, int op, struct tree *l, struct tree *rgt) {
	struct tree *t = ralloc(r, struct tree);
	t->op = op;
	t->left = l;       // verified when callers pass matching regions
	t->right = rgt;
	return t;
}

int eval(struct tree *t) {
	if (t->op == 0) return t->value;
	int l = eval(t->left);
	int r = eval(t->right);
	if (t->op == 1) return l + r;
	return l * r;
}

deletes void main(void) {
	int total = 0;
	int f;
	for (f = 0; f < 100; f++) {
		region arena = newregion();
		struct tree *t = leaf(arena, f);
		int i;
		for (i = 1; i < 30; i++) {
			t = node(arena, 1 + i % 2, t, leaf(arena, i));
		}
		total = total + eval(t) % 1000;
		t = null;
		deleteregion(arena);
	}
	print_str("total ");
	print_int(total);
	print_char('\n');
}
`

func main() {
	for _, mode := range []rcgo.Mode{rcgo.ModeNQ, rcgo.ModeQS, rcgo.ModeInf} {
		c, err := rcgo.Compile(program, mode)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := rcgo.Run(c, rcgo.RunConfig{Output: os.Stdout})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s := res.Region
		fmt.Printf("mode %-4s: counted stores=%-6d checked=%-6d eliminated=%-6d (cost %d units)\n",
			mode, s.FullUpdates, s.SameChecks+s.TradChecks+s.ParentChecks,
			s.UncheckedPtrs, s.Cost)
	}
	c, _ := rcgo.Compile(program, rcgo.ModeInf)
	safe, total := 0, 0
	for i := range c.Infer.SafeSite {
		if c.Infer.SiteSeen[i] {
			total++
			if c.Infer.SafeSite[i] {
				safe++
			}
		}
	}
	fmt.Printf("inference: %d/%d annotated assignment sites proven safe\n", safe, total)
}
