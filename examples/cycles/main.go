// Cycles: the paper's key advantage of per-region counting over
// per-object reference counting — "cyclic data structures can be used
// transparently as long as the cycles are contained within a single
// region. When a cycle crosses regions, it is the programmer's
// responsibility to break it before attempting to delete any of the
// regions involved."
package main

import (
	"fmt"

	"rcgo"
)

type node struct {
	next  rcgo.Ref[node] // same-region link
	cross rcgo.Ref[node] // counted cross-region link
	id    int
}

func main() {
	arena := rcgo.NewArena()

	// A cycle inside one region: invisible to the counts, freely deletable.
	r := arena.NewRegion()
	a := rcgo.Alloc[node](r)
	b := rcgo.Alloc[node](r)
	a.Value.id, b.Value.id = 1, 2
	must(rcgo.SetSame(a, &a.Value.next, b))
	must(rcgo.SetSame(b, &b.Value.next, a)) // cycle a -> b -> a
	fmt.Println("internal cycle built; region rc =", r.RC())
	must(r.Delete())
	fmt.Println("region with internal cycle deleted")

	// A cycle across two regions: each region holds a counted reference
	// into the other, so neither can be deleted...
	r1 := arena.NewRegion()
	r2 := arena.NewRegion()
	x := rcgo.Alloc[node](r1)
	y := rcgo.Alloc[node](r2)
	rcgo.MustSetRef(x, &x.Value.cross, y)
	rcgo.MustSetRef(y, &y.Value.cross, x)
	fmt.Printf("cross cycle: r1 rc=%d, r2 rc=%d\n", r1.RC(), r2.RC())
	if err := r1.Delete(); err != nil {
		fmt.Println("delete r1:", err)
	}
	if err := r2.Delete(); err != nil {
		fmt.Println("delete r2:", err)
	}

	// ...until the programmer breaks it.
	rcgo.MustSetRef(x, &x.Value.cross, nil)
	must(r2.Delete())
	must(r1.Delete())
	fmt.Println("cycle broken by hand; both regions deleted")

	// Or the deferred policy reclaims the pair once it unlinks: rebuild
	// the cycle, mark both deferred, then break it.
	r3 := arena.NewRegion()
	r4 := arena.NewRegion()
	p := rcgo.Alloc[node](r3)
	q := rcgo.Alloc[node](r4)
	rcgo.MustSetRef(p, &p.Value.cross, q)
	rcgo.MustSetRef(q, &q.Value.cross, p)
	r3.DeleteDeferred()
	r4.DeleteDeferred()
	fmt.Println("deferred deletes pending; live objects:", arena.LiveObjects())
	rcgo.MustSetRef(q, &q.Value.cross, nil) // breaks the cycle: r3 reclaims, then its
	// unscan releases q, reclaiming r4.
	fmt.Println("after breaking the link; live objects:", arena.LiveObjects())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
