// Quickstart: the paper's Figure 1 example — a list and its contents
// built in a single region and freed all at once — using the Go-native
// safe region API.
package main

import (
	"fmt"

	"rcgo"
)

// rlist mirrors the paper's struct rlist: both links are same-region
// (the whole data structure lives and dies with one region).
type rlist struct {
	next rcgo.Ref[rlist]
	data rcgo.Ref[finfo]
}

type finfo struct {
	value int
}

func main() {
	arena := rcgo.NewArena()
	r := arena.NewRegion()

	// Build the list and its contents in r (Figure 1's loop).
	var last *rcgo.Obj[rlist]
	for i := 0; i < 10; i++ {
		rl := rcgo.Alloc[rlist](r)
		data := rcgo.Alloc[finfo](r)
		data.Value.value = i
		if err := rcgo.SetSame(rl, &rl.Value.data, data); err != nil {
			panic(err)
		}
		if err := rcgo.SetSame(rl, &rl.Value.next, last); err != nil {
			panic(err)
		}
		last = rl
	}

	// Output the list.
	fmt.Print("list:")
	for n := last; n != nil; n = n.Value.next.Get() {
		fmt.Printf(" %d", n.Value.data.Get().Value.value)
	}
	fmt.Println()

	// Safety demo 1: a counted external reference blocks deletion.
	outside := arena.NewRegion()
	holder := rcgo.Alloc[rlist](outside)
	rcgo.MustSetRef(holder, &holder.Value.next, last)
	if err := r.Delete(); err != nil {
		fmt.Println("delete blocked while referenced:", err)
	}
	rcgo.MustSetRef(holder, &holder.Value.next, nil)

	// Safety demo 2: same-region stores are checked.
	if err := rcgo.SetSame(holder, &holder.Value.next, last); err != nil {
		fmt.Println("cross-region sameregion store rejected:", err)
	}

	// Now deletion succeeds, freeing the list and its contents at once.
	if err := r.Delete(); err != nil {
		panic(err)
	}
	fmt.Println("region deleted; live objects:", arena.LiveObjects())
}
