// Interp: runs the mudlle workload (an expression-language compiler and
// stack interpreter, the paper's mudlle benchmark shape) through the
// toolchain on every memory backend, printing the Figure-9-style runtime
// breakdown of pointer assignments.
package main

import (
	"fmt"
	"io"
	"os"

	"rcgo"
	"rcgo/internal/workloads"
)

func main() {
	src := workloads.Mudlle.Source(500)

	c, err := rcgo.Compile(src, rcgo.ModeInf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Print("program output: ")
	res, err := rcgo.Run(c, rcgo.RunConfig{Output: os.Stdout})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := res.Region
	totalStores := s.FullUpdates + s.SameChecks + s.TradChecks + s.ParentChecks + s.UncheckedPtrs
	fmt.Printf("pointer assignments: %d total\n", totalStores)
	fmt.Printf("  statically safe : %6.2f%%\n", pct(s.UncheckedPtrs, totalStores))
	fmt.Printf("  runtime checked : %6.2f%%\n", pct(s.SameChecks+s.TradChecks+s.ParentChecks, totalStores))
	fmt.Printf("  reference counted: %5.2f%%\n", pct(s.FullUpdates, totalStores))

	// The same program runs unchanged on the baseline allocators.
	for _, be := range []rcgo.Backend{rcgo.BackendMalloc, rcgo.BackendGC} {
		r2, err := rcgo.Run(c, rcgo.RunConfig{Backend: be, Output: io.Discard})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("backend %-6s: %v, peak heap %d KB\n", be, r2.Duration.Round(1e6), r2.MaxHeapBytes/1024)
	}
}

func pct(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
