// Pipeline: the build → transfer → delete pattern the ownership API
// exists for. A producer stage acquires a region, fills it through the
// owned fast path — plain owner-local counters, no shared-atomic or
// shard-lock traffic per operation — then hands the Owner token to a
// consumer stage over a channel. The channel send/receive pair is the
// happens-before edge that publishes every owner-local write, so the
// consumer continues on the same fast path and finally deletes the
// whole batch through the token in one step. At no point is the region
// visible to the shared API: any TryAlloc/SetRef/Delete against it from
// outside fails with ErrRegionOwned until the token is released.
package main

import (
	"errors"
	"fmt"

	"rcgo"
)

// batch is one pipeline message: a same-region list of work items that
// lives and dies with its region.
type batch struct {
	next rcgo.Ref[batch]
	item int
}

func main() {
	arena := rcgo.NewArena()
	arena.EnableMetrics()

	const batches = 4
	const itemsPer = 5

	// One pipeline message: the Owner token (the capability) plus the
	// list head (the data). Sending both over the channel is the
	// happens-before edge for the owner-local state behind each.
	type message struct {
		own  *rcgo.Owner
		head *rcgo.Obj[batch]
	}
	handoff := make(chan message)
	done := make(chan int)

	// Consumer stage: receive each batch, append a terminator through
	// the still-owned fast path, walk the list (plain reads — the
	// channel hand-off already ordered them), then delete the region
	// through the token. Owner.Delete flushes, checks, and frees in one
	// step; there is nothing to release separately.
	go func() {
		sum := 0
		for m := range handoff {
			end := rcgo.AllocOwned[batch](m.own) // consumer owns it now
			end.Value.item = 1000
			if err := rcgo.SetSameOwned(m.own, end, &end.Value.next, nil); err != nil {
				panic(err)
			}
			for n := m.head; n != nil; n = n.Value.next.Get() {
				sum += n.Value.item
			}
			sum += end.Value.item
			if err := m.own.Delete(); err != nil {
				panic(err)
			}
		}
		done <- sum
	}()

	// Producer stage: one region per batch, built entirely while owned.
	for b := 0; b < batches; b++ {
		r := arena.NewRegion()
		own := r.Acquire()

		var head *rcgo.Obj[batch]
		for i := 0; i < itemsPer; i++ {
			n := rcgo.AllocOwned[batch](own)
			n.Value.item = b*itemsPer + i + 1
			if err := rcgo.SetSameOwned(own, n, &n.Value.next, head); err != nil {
				panic(err)
			}
			head = n
		}

		// Exclusivity demo: while owned, the shared API is locked out.
		if b == 0 {
			if _, err := rcgo.TryAlloc[batch](r); !errors.Is(err, rcgo.ErrRegionOwned) {
				panic("shared alloc should have been rejected while owned")
			}
			if err := r.Delete(); !errors.Is(err, rcgo.ErrRegionOwned) {
				panic("shared delete should have been rejected while owned")
			}
			fmt.Println("while owned, shared Alloc and Delete fail with:", rcgo.ErrRegionOwned)
		}

		handoff <- message{own, head} // transfer: the consumer now owns the region
	}
	close(handoff)
	sum := <-done

	c := arena.Counters()
	// Items carry 1..batches*itemsPer, terminators 1000 each.
	fmt.Printf("consumer summed %d items + %d terminators: %d\n",
		batches*itemsPer, batches, sum)
	fmt.Printf("acquires=%d releases=%d owner flushes=%d, all allocation owned-path\n",
		c.Acquires, c.Releases, c.OwnerFlushes)
	fmt.Println("live objects after pipeline:", arena.LiveObjects())
}
