// Webserver: the paper's Apache pattern at production shape, on the
// concurrent Go-native runtime — a real net/http server where
//
//   - every request is handled in its own region by whatever goroutine
//     the http package runs it on, and freed wholesale when the response
//     is written;
//   - internal subrequests (the paper's Apache subrequests) run in
//     subregions whose data points UP to the request via parentptr
//     references, which are checked but never counted;
//   - server configuration lives in the arena's traditional region and
//     is referenced through SetTrad slots — also never counted;
//   - a shared cache epoch is a region of its own, referenced from
//     request data through counted SetRef slots. Rotation retires the
//     old epoch with DeleteDeferred: it reclaims the instant the last
//     in-flight request releases its reference (via the request region's
//     delete-time unscan), and requests that lose the race to a rotation
//     see ErrRegionDeleted and simply serve uncached — a zombie epoch
//     can never be resurrected.
//
// The server also mounts the arena's live debug inspector under
// /debug/regions/ (hierarchy as JSON and Graphviz dot, cumulative op
// counters, the blocked-deleters report, the annotation-advisor
// profile, and the trace ring), publishes the same counters on
// /debug/vars via expvar, and records region lifecycle events in a
// lock-free ring tracer — the observability layer a real deployment
// would curl to answer "why is that retired epoch still alive, and who
// is pinning it?".
//
// Two of the request path's stores are left deliberately un-annotated
// (plain SetRef), the way freshly ported code usually is: a same-region
// self-link and a subrequest-to-request uplink. The arena runs with
// the annotation advisor armed (rcgo.WithAdvisor), and the run ends by
// curling /debug/regions/advisor to show the advisor naming both call
// sites, with the cheaper flavour each one could use and the rc
// updates the uplink wasted.
package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"

	"rcgo"
)

type config struct {
	name string
}

type cacheEntry struct {
	payload string
}

// request is the per-request record; subrequests reuse the same type one
// region below.
type request struct {
	conf   rcgo.Ref[config]     // traditional: server config, never counted
	entry  rcgo.Ref[cacheEntry] // counted: pins the cache epoch until the request dies
	parent rcgo.Ref[request]    // parentptr: subrequest -> request, never counted
	// self and owner are stored through plain SetRef — the conservative
	// ported-code choice the annotation advisor exists to flag: self is
	// always same-region (upgradeable to SetSame, free), owner always
	// points up to the enclosing request (upgradeable to SetParent,
	// currently paying two rc updates per subrequest).
	self   rcgo.Ref[request]
	owner  rcgo.Ref[request]
	id     int64
	status int
}

type server struct {
	arena *rcgo.Arena
	trace *rcgo.RingTracer
	conf  *rcgo.Obj[config]

	mu      sync.Mutex
	epoch   *rcgo.Region
	entry   *rcgo.Obj[cacheEntry]
	retired []*rcgo.Region

	nextID   atomic.Int64
	served   atomic.Int64
	cached   atomic.Int64
	uncached atomic.Int64
	subs     atomic.Int64
}

func newServer() *server {
	trace := rcgo.NewRingTracer(1 << 16)
	// Pass the tracer at construction, so every epoch, request and
	// subrequest lifecycle event — including the arena's own traditional
	// region — lands in the ring.
	s := &server{arena: rcgo.NewArena(rcgo.WithTracer(trace), rcgo.WithAdvisor()), trace: trace}
	s.conf = rcgo.Alloc[config](s.arena.Traditional())
	s.conf.Value.name = "rcgo-demo"
	s.rotate()
	return s
}

// rotate starts a fresh cache epoch and defer-deletes the old one: it
// stays a zombie while in-flight requests hold counted references and
// reclaims on the last release.
func (s *server) rotate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch != nil {
		s.retired = append(s.retired, s.epoch)
		s.epoch.DeleteDeferred()
	}
	s.epoch = s.arena.NewRegion()
	s.entry = rcgo.Alloc[cacheEntry](s.epoch)
	s.entry.Value.payload = "cached-content"
}

func (s *server) lookup() *rcgo.Obj[cacheEntry] {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entry
}

// handleSub is an internal subrequest: a subregion whose data may point
// up to the enclosing request for free.
func (s *server) handleSub(r *rcgo.Region, rq *rcgo.Obj[request], depth int) {
	if depth == 0 {
		return
	}
	sub := r.NewSubregion()
	sr := rcgo.Alloc[request](sub)
	sr.Value.id = rq.Value.id*10 + int64(depth)
	rcgo.MustSetParent(sr, &sr.Value.parent, rq)
	rcgo.MustSetTrad(sr, &sr.Value.conf, s.conf)
	// The un-annotated uplink: counted today, parentptr-upgradeable —
	// the advisor tallies the wasted rc update pair per subrequest.
	rcgo.MustSetRef(sr, &sr.Value.owner, rq)
	s.subs.Add(1)
	s.handleSub(sub, sr, depth-1)
	if err := sub.Delete(); err != nil {
		panic(err) // subregions always die before the request
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	r := s.arena.NewRegion()
	// Deleting the request region releases its outbound counted
	// references (the cache entry) via the delete-time unscan; nothing
	// references the request from outside, so this cannot fail.
	defer func() {
		if err := r.Delete(); err != nil {
			panic(err)
		}
	}()

	rq := rcgo.Alloc[request](r)
	rq.Value.id = s.nextID.Add(1)
	rcgo.MustSetTrad(rq, &rq.Value.conf, s.conf)
	// The un-annotated self-link: same-region, so the counted protocol
	// never actually counts — but every store still pays its checks.
	rcgo.MustSetRef(rq, &rq.Value.self, rq)

	body := "generated-content"
	if ent := s.lookup(); ent != nil {
		// The epoch can rotate between lookup and store; a counted store
		// into the retired (zombie) epoch is rejected, never resurrected.
		if err := rcgo.SetRef(rq, &rq.Value.entry, ent); err == nil {
			body = rq.Value.entry.Get().Use().payload
			s.cached.Add(1)
		} else {
			s.uncached.Add(1)
		}
	}

	s.handleSub(r, rq, 2)
	rq.Value.status = http.StatusOK
	w.WriteHeader(rq.Value.status)
	fmt.Fprintf(w, "%s: %s\n", rq.Value.conf.Get().Use().name, body)
	s.served.Add(1)
}

func main() {
	const clients = 8
	const perClient = 25

	s := newServer()

	// The production mux: the application at /, the region inspector at
	// /debug/regions/ and the expvar counters at /debug/vars — all three
	// plain GET endpoints (curl $URL/debug/regions/blocked).
	if err := s.arena.PublishExpvar("rcgo.webserver.arena"); err != nil {
		panic(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", s)
	mux.Handle("/debug/regions/", http.StripPrefix("/debug/regions", s.arena.DebugHandler()))
	mux.Handle("/debug/vars", expvar.Handler())
	ts := httptest.NewServer(mux)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Get(ts.URL)
				if err != nil {
					panic(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					panic(fmt.Sprintf("status %d", resp.StatusCode))
				}
				// One client rotates the cache epoch mid-traffic.
				if c == 0 && i%8 == 4 {
					s.rotate()
				}
			}
		}(c)
	}
	wg.Wait()

	fmt.Printf("served %d requests (%d subrequests) across %d client goroutines\n",
		s.served.Load(), s.subs.Load(), clients)
	fmt.Println("cache hits + rotation misses == served:",
		s.cached.Load()+s.uncached.Load() == s.served.Load())

	// All request regions are gone; retired epochs reclaimed the moment
	// their last in-flight reference was released.
	reclaimed := 0
	for _, ep := range s.retired {
		if ep.Stats().Reclaimed {
			reclaimed++
		}
	}
	fmt.Printf("retired cache epochs reclaimed: %d/%d\n", reclaimed, len(s.retired))

	// --- The debug inspector, over plain HTTP. A session region holds a
	// counted reference into the current epoch across a rotation: the
	// retired epoch becomes a zombie the blocked-deleters report can
	// explain, naming the session region as the holder.
	session := s.arena.NewRegion()
	sess := rcgo.Alloc[request](session)
	rcgo.MustSetRef(sess, &sess.Value.entry, s.lookup())
	s.rotate()

	getJSON := func(path string, v any) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			panic(fmt.Sprintf("GET %s: %v", path, err))
		}
	}

	var hier struct {
		Stats   rcgo.ArenaStats    `json:"stats"`
		Regions []*rcgo.RegionInfo `json:"regions"`
	}
	getJSON("/debug/regions/hierarchy", &hier)
	fmt.Printf("inspector hierarchy: %d roots, %d live regions, %d deferred\n",
		len(hier.Regions), hier.Stats.LiveRegions, hier.Stats.DeferredRegions)

	resp, err := http.Get(ts.URL + "/debug/regions/hierarchy.dot")
	if err != nil {
		panic(err)
	}
	dot, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("inspector dot: graphviz output served:",
		strings.HasPrefix(string(dot), "digraph regions"))

	var blocked struct {
		Blocked []rcgo.BlockedRegion `json:"blocked"`
	}
	getJSON("/debug/regions/blocked", &blocked)
	for _, br := range blocked.Blocked {
		fmt.Printf("blocked epoch: rc=%d pins=%d, pinned by %d holder region(s) via %d counted slot(s)\n",
			br.RC, br.Pins, len(br.Holders), br.Holders[0].Slots)
	}

	// Releasing the session's reference reclaims the zombie on the spot.
	rcgo.MustSetRef(sess, &sess.Value.entry, nil)
	getJSON("/debug/regions/blocked", &blocked)
	fmt.Println("blocked report empty after release:", len(blocked.Blocked) == 0)

	var vars map[string]json.RawMessage
	getJSON("/debug/vars", &vars)
	_, ok := vars["rcgo.webserver.arena"]
	fmt.Println("expvar rcgo.webserver.arena published:", ok)

	// --- The annotation advisor, over the same inspector. The two
	// deliberately un-annotated request-path stores surface as upgrade
	// candidates: the subrequest uplink as a SetParent that has been
	// paying two rc updates per subrequest, the self-link as a free
	// SetSame.
	var advRep rcgo.AdvisorReport
	getJSON("/debug/regions/advisor", &advRep)
	fmt.Printf("advisor: %d observations over %d call sites, upgrade candidates found: %v\n",
		advRep.Observations, len(advRep.Sites), advRep.UpgradeCandidates > 0)
	for _, site := range advRep.Sites {
		if site.Upgrade {
			fmt.Printf("advisor candidate: %s -> %s (%d stores, %d wasted rc updates)\n",
				site.Used, site.Recommended, site.Count, site.WastedRCUpdates)
		}
	}

	// --- The trace ring over the same inspector: /trace serves the
	// ring's occupancy and its most recent lifecycle events.
	var tr struct {
		Attached bool              `json:"attached"`
		Stats    *rcgo.TraceStats  `json:"stats"`
		Events   []rcgo.TraceEvent `json:"events"`
	}
	getJSON("/debug/regions/trace?n=4", &tr)
	fmt.Printf("trace endpoint: attached=%v, %d events traced, last %d served\n",
		tr.Attached, tr.Stats.Total, len(tr.Events))

	ts.Close()

	// Tear down the session and the live epoch: config in the
	// traditional region remains.
	if err := session.Delete(); err != nil {
		panic(err)
	}
	if err := s.epoch.Delete(); err != nil {
		panic(err)
	}
	fmt.Println("live objects after shutdown (config only):", s.arena.LiveObjects())

	// Every region lifecycle event of the run is in the ring tracer:
	// creations and reclaims must balance once the arena quiesces — up to
	// the arena's own traditional region, whose creation a
	// construction-time tracer witnesses and which lives as long as the
	// arena.
	tally := make(map[rcgo.TraceKind]int)
	evs := s.trace.Events()
	for _, ev := range evs {
		tally[ev.Kind]++
	}
	fmt.Printf("tracer: %d events (%d dropped), created=%d reclaimed=%d balanced=%v\n",
		len(evs), s.trace.Total()-uint64(len(evs)),
		tally[rcgo.TraceRegionCreated], tally[rcgo.TraceRegionReclaimed],
		tally[rcgo.TraceRegionCreated] == tally[rcgo.TraceRegionReclaimed]+1)
}
