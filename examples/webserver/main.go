// Webserver: the paper's Apache pattern — a region per request, a
// subregion per internal subrequest, parent-pointer references from
// subrequest data to request data, and everything freed when the request
// completes. Uses the Go-native safe region API.
package main

import (
	"fmt"

	"rcgo"
)

type request struct {
	parent  rcgo.Ref[request] // parentptr: subrequest -> request
	id      int
	headers []string
	status  int
}

// handle processes a request in its own region; internal redirects spawn
// subrequests in subregions, which must be (and are) deleted first.
func handle(arena *rcgo.Arena, r *rcgo.Region, req *rcgo.Obj[request], depth int) {
	req.Value.headers = append(req.Value.headers,
		fmt.Sprintf("X-Request-Id: %d", req.Value.id))

	if depth < 2 {
		sub := r.NewSubregion()
		sr := rcgo.Alloc[request](sub)
		sr.Value.id = req.Value.id*10 + 1
		// Subrequest data may point UP to request data without any
		// reference-count traffic: the parent always outlives the child.
		if err := rcgo.SetParent(sr, &sr.Value.parent, req); err != nil {
			panic(err)
		}
		handle(arena, sub, sr, depth+1)
		// A downward reference would be rejected: the parent could
		// otherwise outlive its target.
		if err := rcgo.SetParent(req, &req.Value.parent, sr); err != nil {
			fmt.Println("  downward parentptr rejected:", err)
		}
		if err := sub.Delete(); err != nil {
			panic(err)
		}
	}
	req.Value.status = 200
}

func main() {
	arena := rcgo.NewArena()
	for conn := 0; conn < 3; conn++ {
		r := arena.NewRegion()
		req := rcgo.Alloc[request](r)
		req.Value.id = conn + 1
		handle(arena, r, req, 0)
		fmt.Printf("request %d -> %d (%d headers)\n",
			req.Value.id, req.Value.status, len(req.Value.headers))
		if err := r.Delete(); err != nil {
			panic(err)
		}
	}
	fmt.Println("all requests served; live objects:", arena.LiveObjects())
}
