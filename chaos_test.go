package rcgo_test

// In-process chaos run (cmd/rcchaos at test scale): the sequential
// phase is model-checked op by op, the concurrent phases run under
// whatever detector the test binary was built with (make chaos / make
// race run this under -race), the audit must be clean at every quiesce
// point, and every instrumented failpoint site must fire.
//
// The file lives in package rcgo_test because internal/chaos imports
// rcgo: an external test package breaks the cycle.

import (
	"testing"

	"rcgo/internal/chaos"
)

func TestChaos(t *testing.T) {
	cfg := chaos.Config{
		Seed:    20260806,
		SeqOps:  6000,
		Workers: 8,
		ConcOps: 600,
		Log:     t.Logf,
	}
	if testing.Short() {
		cfg.SeqOps = 2000
		cfg.Workers = 4
		cfg.ConcOps = 200
	}
	rep, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Coverage) != 9 {
		t.Fatalf("expected 9 instrumented sites, got %d: %+v", len(rep.Coverage), rep.Coverage)
	}
	for _, st := range rep.Coverage {
		if st.Fires == 0 {
			t.Errorf("site %s never fired", st.Name)
		}
	}
	for _, res := range []chaos.ConcResult{rep.Perturb, rep.Errors} {
		if !res.Audit.OK {
			t.Errorf("quiesced audit not clean: %s", res.Audit)
		}
		if res.TraceStats.Total == 0 {
			t.Error("no lifecycle events traced")
		}
	}
	if !rep.AllocChurn.Audit.OK {
		t.Errorf("alloc-churn quiesced audit not clean: %s", rep.AllocChurn.Audit)
	}
	if rep.AllocChurn.AllocSuccesses == 0 || rep.AllocChurn.AllocFlushes == 0 {
		t.Errorf("alloc-churn phase inert: allocs=%d flushes=%d",
			rep.AllocChurn.AllocSuccesses, rep.AllocChurn.AllocFlushes)
	}
	if !rep.Fabric.Audit.OK {
		t.Errorf("fabric quiesced audit not clean: %s", rep.Fabric.Audit)
	}
	if rep.Fabric.AllocSuccesses == 0 {
		t.Error("fabric phase allocated nothing")
	}
	if rep.Fabric.ShardsPopulated < 2 {
		t.Errorf("fabric phase populated %d shard(s), want >= 2", rep.Fabric.ShardsPopulated)
	}
	wantLive := int64(cfg.Workers * 32) // each worker's ring, still live at quiesce entry
	if rep.Fabric.LiveBeforeQuiesce < wantLive {
		t.Errorf("fabric phase had %d regions live before quiesce, want >= %d",
			rep.Fabric.LiveBeforeQuiesce, wantLive)
	}
	if !rep.Ownership.Audit.OK {
		t.Errorf("ownership quiesced audit not clean: %s", rep.Ownership.Audit)
	}
	if rep.Ownership.Acquires == 0 || rep.Ownership.Acquires != rep.Ownership.Releases {
		t.Errorf("ownership phase imbalanced: acquires=%d releases=%d",
			rep.Ownership.Acquires, rep.Ownership.Releases)
	}
	if rep.Ownership.OwnerFlushes == 0 {
		t.Error("ownership phase never flushed owner-local deltas")
	}
	if !rep.Contention.Audit.OK {
		t.Errorf("contention quiesced audit not clean: %s", rep.Contention.Audit)
	}
	if rep.Contention.AcquireWaits == 0 {
		t.Error("contention phase saw no blocking waits")
	}
	if rep.Contention.Acquires == 0 ||
		rep.Contention.Acquires != rep.Contention.Releases+rep.Contention.Revocations {
		t.Errorf("contention phase imbalanced: acquires=%d releases=%d revocations=%d",
			rep.Contention.Acquires, rep.Contention.Releases, rep.Contention.Revocations)
	}
	if rep.Contention.Revocations == 0 {
		t.Error("contention phase never exercised watchdog revocation")
	}
	if !rep.Slab.Audit.OK {
		t.Errorf("slab quiesced audit not clean: %s", rep.Slab.Audit)
	}
	if rep.Slab.SlabRefills == 0 {
		t.Error("slab phase never carved a slab-backed chunk")
	}
	if rep.Slab.SlabRefills != rep.Slab.SlabReleases {
		t.Errorf("slab phase page drift: refills=%d releases=%d",
			rep.Slab.SlabRefills, rep.Slab.SlabReleases)
	}
	if rep.Slab.SlabPagesLeaked != 0 {
		t.Errorf("slab phase leaked %d pages at quiesce", rep.Slab.SlabPagesLeaked)
	}
}

// FuzzDeleteStateMachine fuzzes the delete state machine: arbitrary
// bytes decode to an op sequence (3 bytes per op) that is applied to a
// fresh arena and to the sequential reference model, comparing every
// op's outcome class and every region's counters after every op, then
// draining and requiring a clean audit. Run longer with:
//
//	go test -fuzz FuzzDeleteStateMachine -fuzztime 30s -fuzzminimizetime 20x .
//
// Bounding minimization matters: the target is stateful enough that
// most early inputs grow coverage, and the default 60s-per-input
// minimization budget makes the fuzzer look hung (execs stall at the
// corpus size while a single input is minimized).
func FuzzDeleteStateMachine(f *testing.F) {
	// Seeds: the generated random schedules (interesting op mixes), a
	// couple of degenerate inputs, and a delete-heavy byte pattern.
	for _, seed := range []int64{1, 2, 3} {
		var data []byte
		for _, op := range chaos.RandomOps(seed, 200) {
			data = append(data, byte(op.Kind), byte(op.A), byte(op.B))
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{8, 0, 0, 9, 0, 0, 8, 0, 0}) // delete / delete-deferred churn
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096] // bound each case so the fuzzer explores widely
		}
		h := chaos.NewHarness()
		if err := chaos.RunSeq(h, chaos.DecodeOps(data), nil, 500); err != nil {
			t.Fatal(err)
		}
	})
}
