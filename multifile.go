package rcgo

import (
	"fmt"

	"rcgo/internal/compile"
	"rcgo/internal/rcc"
	"rcgo/internal/rlang"
)

// File is one RC translation unit.
type File struct {
	Name string
	Src  string
}

// CompileFiles compiles a multi-file RC program with the paper's
// separate-compilation semantics: the constraint inference runs per
// translation unit, so every non-static function is assumed to have empty
// input/output/result properties ("RC restricts this dataflow analysis to
// a single source file ... any non-static C function ... has empty input,
// output and result constraint sets"). Static functions remain private to
// their file and keep their inferred properties; defining the same static
// name in two files is an error (a single program namespace keeps the
// linker simple).
//
// Cross-file references work as in C: declare a prototype for anything
// defined elsewhere.
func CompileFiles(files []File, mode Mode) (*Compiled, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("rcgo: no input files")
	}
	merged := &rcc.Program{}
	definedIn := make(map[string]string) // function name -> file
	staticDef := make(map[string]bool)
	for _, f := range files {
		prog, err := rcc.Parse(f.Src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.Name, err)
		}
		merged.Structs = append(merged.Structs, prog.Structs...)
		merged.Globals = append(merged.Globals, prog.Globals...)
		for _, fn := range prog.Funcs {
			if fn.Body != nil {
				if prev, dup := definedIn[fn.Name]; dup {
					return nil, fmt.Errorf("%s: function %s already defined in %s",
						f.Name, fn.Name, prev)
				}
				definedIn[fn.Name] = f.Name
				staticDef[fn.Name] = fn.Static
			}
			merged.Funcs = append(merged.Funcs, fn)
		}
	}
	cp, err := rcc.Check(merged, true)
	if err != nil {
		return nil, err
	}
	rp := rlang.Translate(cp)
	inf := rlang.InferExternal(rp, func(name string) bool {
		// main is the program entry: no other file can call it.
		return name != "main" && !staticDef[name]
	})
	if err := rlang.CheckProgram(rp, inf); err != nil {
		return nil, err
	}
	cmode, err := compileMode(mode)
	if err != nil {
		return nil, err
	}
	bc, err := compile.Compile(cp, cmode, inf.SafeSite)
	if err != nil {
		return nil, err
	}
	return &Compiled{Checked: cp, Rlang: rp, Infer: inf, Prog: bc, Mode: mode}, nil
}
