package rcgo

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Live debug inspector for the concurrent Go-native runtime: the region
// hierarchy as JSON and Graphviz dot, the cumulative op counters, and a
// blocked-deleters report that names which counted slots pin a zombie
// region. Everything here reads the arena's sharded registries with at
// most one shard lock held at a time, so the inspector can run against
// a fully loaded arena without stalling the store or delete paths.

// RegionInfo is one node of the live hierarchy report.
type RegionInfo struct {
	ID int64 `json:"id"`
	// Parent is the parent region's id, 0 for top-level regions.
	Parent int64 `json:"parent,omitempty"`
	// Traditional marks the arena's distinguished traditional region.
	Traditional bool `json:"traditional,omitempty"`
	// State is "alive", "owned" (exclusively held through an Owner
	// token, region_owner.go) or "deferred" (reclaimed regions leave
	// the registry and never appear).
	State      string        `json:"state"`
	RC         int64         `json:"rc"`
	Pins       int64         `json:"pins"`
	Objects    int64         `json:"objects"`
	Subregions int64         `json:"subregions"`
	Children   []*RegionInfo `json:"children,omitempty"`
}

// Hierarchy returns the live region forest: the traditional region and
// every top-level region as roots, children nested below their parents,
// all sorted by id. Zombie (deferred-deleted) regions are included with
// State "deferred" — they are exactly the regions the blocked-deleters
// report diagnoses. The snapshot is taken shard by shard; under
// concurrent churn a region created or reclaimed mid-walk may be
// missing, and a child observed without its parent is promoted to a
// root rather than dropped.
func (a *Arena) Hierarchy() []*RegionInfo {
	nodes := make(map[int64]*RegionInfo)
	a.EachRegion(func(r *Region) {
		st := r.Stats()
		state := "alive"
		switch {
		case st.Deferred:
			state = "deferred"
		case st.Owned:
			state = "owned"
		}
		var parent int64
		if r.parent != nil {
			parent = r.parent.id
		}
		nodes[r.id] = &RegionInfo{
			ID:          r.id,
			Parent:      parent,
			Traditional: r == a.trad,
			State:       state,
			RC:          st.RC,
			Pins:        st.Pins,
			Objects:     st.Objects,
			Subregions:  st.Subregions,
		}
	})
	var roots []*RegionInfo
	for _, n := range nodes {
		if p := nodes[n.Parent]; n.Parent != 0 && p != nil {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortRec func([]*RegionInfo)
	sortRec = func(ns []*RegionInfo) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
		for _, n := range ns {
			sortRec(n.Children)
		}
	}
	sortRec(roots)
	return roots
}

// HierarchyDot renders the live region forest as a Graphviz digraph:
// one box per region labelled with its id, state and counters, edges
// from parent to child, zombies dashed and red.
func (a *Arena) HierarchyDot() string {
	var b strings.Builder
	b.WriteString("digraph regions {\n")
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	var emit func(n *RegionInfo)
	emit = func(n *RegionInfo) {
		attrs := ""
		switch n.State {
		case "deferred":
			attrs = ", style=dashed, color=red"
		case "owned":
			attrs = ", style=bold, color=blue"
		}
		name := fmt.Sprintf("r%d", n.ID)
		if n.Traditional {
			name += " (traditional)"
		}
		fmt.Fprintf(&b, "  r%d [label=\"%s\\n%s rc=%d pins=%d objs=%d\"%s];\n",
			n.ID, name, n.State, n.RC, n.Pins, n.Objects, attrs)
		for _, c := range n.Children {
			fmt.Fprintf(&b, "  r%d -> r%d;\n", n.ID, c.ID)
			emit(c)
		}
	}
	for _, root := range a.Hierarchy() {
		emit(root)
	}
	b.WriteString("}\n")
	return b.String()
}

// BlockedHolder names one region whose counted slots pin a blocked
// region.
type BlockedHolder struct {
	// HolderRegion is the id of the region whose objects hold the slots.
	HolderRegion int64 `json:"holder_region"`
	// Slots is the number of registered counted slots in that region
	// currently pointing into the blocked region.
	Slots int `json:"slots"`
}

// BlockedRegion is one entry of the blocked-deleters report: a zombie
// (deferred-deleted) region that has not reclaimed, with the references
// that pin it broken down by where they come from.
type BlockedRegion struct {
	ID   int64 `json:"id"`
	RC   int64 `json:"rc"`
	Pins int64 `json:"pins"`
	// Subregions counts live children; a zombie cannot reclaim while
	// any remain, even at rc 0.
	Subregions int64 `json:"subregions,omitempty"`
	// Holders lists the regions whose registered counted slots point
	// into this region, sorted by slot count descending.
	Holders []BlockedHolder `json:"holders,omitempty"`
	// Unaccounted is RC - Pins - slot references: references that exist
	// but are not registered slots, i.e. in-flight stores or counted
	// references about to be withdrawn. Transient by construction.
	Unaccounted int64 `json:"unaccounted,omitempty"`
}

// BlockedDeleters reports every zombie region and what pins it, by
// scanning the sharded slot registries of all live and zombie regions.
// A region appears with empty Holders and zero Pins when only its live
// subregions (or in-flight references) block the reclaim. Shard locks
// are taken one at a time, so the scan never blocks the runtime.
func (a *Arena) BlockedDeleters() []BlockedRegion {
	var zombies []*Region
	var all []*Region
	a.EachRegion(func(r *Region) {
		all = append(all, r)
		if r.state.Load() == stateZombie {
			zombies = append(zombies, r)
		}
	})
	if len(zombies) == 0 {
		return nil
	}
	// holders[zombie][holder region id] = pinning slot count.
	holders := make(map[*Region]map[int64]int, len(zombies))
	for _, z := range zombies {
		holders[z] = make(map[int64]int)
	}
	for _, holder := range all {
		for i := range holder.slots {
			sh := &holder.slots[i]
			sh.mu.Lock()
			slots := append([]releaser(nil), sh.slots...)
			sh.mu.Unlock()
			for _, s := range slots {
				if t := s.targetRegion(); t != nil && t != holder {
					if h, ok := holders[t]; ok {
						h[holder.id]++
					}
				}
			}
		}
	}
	report := make([]BlockedRegion, 0, len(zombies))
	for _, z := range zombies {
		st := z.Stats()
		if st.Reclaimed {
			continue // drained while we were scanning
		}
		br := BlockedRegion{ID: z.id, RC: st.RC, Pins: st.Pins, Subregions: st.Subregions}
		var slotRefs int64
		for id, n := range holders[z] {
			br.Holders = append(br.Holders, BlockedHolder{HolderRegion: id, Slots: n})
			slotRefs += int64(n)
		}
		sort.Slice(br.Holders, func(i, j int) bool {
			if br.Holders[i].Slots != br.Holders[j].Slots {
				return br.Holders[i].Slots > br.Holders[j].Slots
			}
			return br.Holders[i].HolderRegion < br.Holders[j].HolderRegion
		})
		if u := st.RC - st.Pins - slotRefs; u > 0 {
			br.Unaccounted = u
		}
		report = append(report, br)
	}
	sort.Slice(report, func(i, j int) bool { return report[i].ID < report[j].ID })
	return report
}

// OwnedRegionInfo is one currently-owned region in the Owners report:
// who holds it, for how long, and how many contenders queue behind it.
type OwnedRegionInfo struct {
	ID int64 `json:"id"`
	// HeldFor is how long the current token has been held.
	HeldFor time.Duration `json:"held_ns"`
	// AcquireSite is the "file:line (func)" that minted the current
	// token; empty if no frames were captured.
	AcquireSite string `json:"acquire_site,omitempty"`
	// QueueDepth is the number of AcquireContext waiters parked behind
	// the holder.
	QueueDepth int `json:"queue_depth"`
}

// ContendedRegion is one row of the Owners report's top-contended
// table: a region ranked by how many AcquireContext waiters have ever
// parked on it.
type ContendedRegion struct {
	ID int64 `json:"id"`
	// Waits is the cumulative number of waiters ever parked on the
	// region (monotone; survives releases).
	Waits int64 `json:"waits"`
	// QueueDepth is the number currently parked.
	QueueDepth int `json:"queue_depth"`
}

// OwnersReport is the ownership picture of the arena at a glance
// (region_owner.go): every currently-owned region with its holder's
// age, acquire site and queue depth, the arena-wide count of parked
// waiters, and the most contended regions by lifetime wait count.
type OwnersReport struct {
	Owned []OwnedRegionInfo `json:"owned"`
	// TotalWaiters is the number of AcquireContext waiters currently
	// parked across the arena (Arena.AcquireWaiters). Zero at quiesce.
	TotalWaiters int `json:"total_waiters"`
	// TopContended ranks regions by cumulative waiters parked,
	// descending, capped at the top ten; regions never contended are
	// omitted.
	TopContended []ContendedRegion `json:"top_contended,omitempty"`
}

// Owners scans the registry and assembles the ownership report. Like
// every other inspector walk it samples regions one at a time (each
// under its own mu), so under concurrent churn the rows are a
// consistent per-region snapshot, not an atomic cut.
func (a *Arena) Owners() OwnersReport {
	rep := OwnersReport{Owned: []OwnedRegionInfo{}}
	now := time.Now()
	a.EachRegion(func(r *Region) {
		held, _, since, site, depth := r.ownerInfo()
		if held {
			rep.Owned = append(rep.Owned, OwnedRegionInfo{
				ID:          r.id,
				HeldFor:     now.Sub(since),
				AcquireSite: site,
				QueueDepth:  depth,
			})
		}
		if waits := r.contendedWaits.Load(); waits > 0 {
			rep.TopContended = append(rep.TopContended, ContendedRegion{
				ID: r.id, Waits: waits, QueueDepth: depth,
			})
		}
	})
	rep.TotalWaiters = int(a.AcquireWaiters())
	sort.Slice(rep.Owned, func(i, j int) bool { return rep.Owned[i].ID < rep.Owned[j].ID })
	sort.Slice(rep.TopContended, func(i, j int) bool {
		if rep.TopContended[i].Waits != rep.TopContended[j].Waits {
			return rep.TopContended[i].Waits > rep.TopContended[j].Waits
		}
		return rep.TopContended[i].ID < rep.TopContended[j].ID
	})
	if len(rep.TopContended) > 10 {
		rep.TopContended = rep.TopContended[:10]
	}
	return rep
}

// debugEndpoint is one registration of the DebugHandler mux: the index
// page iterates the same table the mux is built from, so the endpoint
// list can never drift from the routes actually served.
type debugEndpoint struct {
	path    string
	desc    string
	handler http.HandlerFunc
}

// debugEndpoints builds the endpoint table the DebugHandler serves and
// indexes.
func (a *Arena) debugEndpoints() []debugEndpoint {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	return []debugEndpoint{
		{"/hierarchy", "live region forest as JSON", func(w http.ResponseWriter, req *http.Request) {
			writeJSON(w, struct {
				Stats   ArenaStats    `json:"stats"`
				Regions []*RegionInfo `json:"regions"`
			}{a.Stats(), a.Hierarchy()})
		}},
		{"/hierarchy.dot", "the same forest as Graphviz dot", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
			fmt.Fprint(w, a.HierarchyDot())
		}},
		{"/counters", "arena stats + cumulative counters (+ trace and advisor summaries) as JSON", func(w http.ResponseWriter, req *http.Request) {
			writeJSON(w, a.countersDoc())
		}},
		{"/blocked", "blocked-deleters report as JSON", func(w http.ResponseWriter, req *http.Request) {
			blocked := a.BlockedDeleters()
			if blocked == nil {
				blocked = []BlockedRegion{}
			}
			writeJSON(w, struct {
				Blocked []BlockedRegion `json:"blocked"`
			}{blocked})
		}},
		{"/audit", "whole-arena invariant audit as JSON", func(w http.ResponseWriter, req *http.Request) {
			rep := a.Audit()
			if rep.Violations == nil {
				rep.Violations = []AuditViolation{}
			}
			writeJSON(w, rep)
		}},
		{"/advisor", "annotation-advisor call-site profile as JSON", func(w http.ResponseWriter, req *http.Request) {
			writeJSON(w, a.AdvisorReport())
		}},
		{"/advisor.txt", "the same profile as a human table, upgrade candidates first", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			a.AdvisorReport().WriteTable(w)
		}},
		{"/owners", "owned regions (holder age, acquire site, queue depth) and top-contended table as JSON", func(w http.ResponseWriter, req *http.Request) {
			writeJSON(w, a.Owners())
		}},
		{"/slabs", "off-heap backing-store accounting and per-region slab page counts as JSON", func(w http.ResponseWriter, req *http.Request) {
			writeJSON(w, a.slabsDoc())
		}},
		{"/trace", "ring-tracer occupancy and recent lifecycle events as JSON (?n= limits to the last n)", func(w http.ResponseWriter, req *http.Request) {
			doc := struct {
				Attached bool         `json:"attached"`
				Stats    *TraceStats  `json:"stats,omitempty"`
				Events   []TraceEvent `json:"events"`
			}{Events: []TraceEvent{}}
			if ts, ok := a.traceStats(); ok {
				doc.Attached = true
				doc.Stats = &ts
			}
			if evs, ok := a.traceEvents(); ok {
				doc.Attached = true
				if q := req.URL.Query().Get("n"); q != "" {
					if n, err := strconv.Atoi(q); err == nil && n >= 0 && n < len(evs) {
						evs = evs[len(evs)-n:]
					}
				}
				doc.Events = evs
			}
			writeJSON(w, doc)
		}},
	}
}

// DebugHandler returns an http.Handler exposing the arena's live state,
// meant to be mounted on an internal/debug mux. The index page at /
// lists every endpoint with a one-line description; the list is
// generated from the same table the routes are registered from, so it
// is always complete. The endpoints:
//
//	/hierarchy      live region forest as JSON ({"stats": ..., "regions": ...})
//	/hierarchy.dot  the same forest as Graphviz dot
//	/counters       ArenaStats + cumulative ArenaCounters (+ ring-tracer
//	                occupancy and advisor summary, when attached) as JSON
//	/blocked        blocked-deleters report as JSON
//	/audit          whole-arena invariant audit (region_audit.go) as JSON;
//	                exact when the arena is quiesced, advisory under load
//	/advisor        annotation-advisor call-site profile (AdvisorReport)
//	                as JSON; reports enabled=false until the advisor is
//	                armed with WithAdvisor or EnableAdvisor
//	/advisor.txt    the same profile as a human table, upgrade candidates
//	                ranked by wasted rc updates first
//	/owners         ownership report (region_owner.go) as JSON: every
//	                owned region with holder age, acquire site and queue
//	                depth, the arena-wide parked-waiter count, and the
//	                top-contended regions by lifetime wait count
//	/slabs          off-heap backing-store report (region_slab.go) as
//	                JSON: enabled flag, the store's page/byte accounting
//	                (SlabStats), and per-region tracked page counts —
//	                reports enabled=false until a store is attached with
//	                WithOffHeapSlabs or WithBackingStore
//	/trace          attached RingTracer's occupancy stats and buffered
//	                lifecycle events as JSON; ?n=K limits to the last K
//
// Creating the handler enables the cumulative counters (EnableMetrics).
// It does NOT arm the annotation advisor — advising costs a stack walk
// per store, so it stays an explicit opt-in.
func (a *Arena) DebugHandler() http.Handler {
	a.EnableMetrics()
	mux := http.NewServeMux()
	endpoints := a.debugEndpoints()
	for _, ep := range endpoints {
		mux.HandleFunc(ep.path, ep.handler)
	}
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, req *http.Request) {
		st := a.Stats()
		fmt.Fprintf(w, "rcgo arena debug\n\n")
		fmt.Fprintf(w, "live_regions=%d deferred_regions=%d owned_regions=%d live_objects=%d regions_created=%d shards=%d\n",
			st.LiveRegions, st.DeferredRegions, st.OwnedRegions, st.LiveObjects, st.RegionsCreated, st.Shards)
		if ts, ok := a.traceStats(); ok {
			fmt.Fprintf(w, "trace_events=%d trace_buffered=%d trace_dropped=%d\n",
				ts.Total, ts.Buffered, ts.Dropped)
		}
		if as, ok := a.advisorStats(); ok {
			fmt.Fprintf(w, "advisor_sites=%d advisor_upgrade_candidates=%d advisor_wasted_rc_updates=%d\n",
				as.Sites, as.UpgradeCandidates, as.WastedRCUpdates)
		}
		fmt.Fprintf(w, "\nendpoints:\n")
		for _, ep := range endpoints {
			fmt.Fprintf(w, "  %-15s %s\n", ep.path, ep.desc)
		}
	})
	return mux
}

// SlabRegionPages is one row of the /slabs report: a region and the
// backing-store pages its slab chunks currently occupy.
type SlabRegionPages struct {
	ID    int64 `json:"id"`
	Pages int64 `json:"pages"`
}

// SlabsReport is the /slabs document: whether a backing store is
// attached, its page/byte accounting, and the per-region tracked page
// counts (regions with zero pages are omitted). At quiesce the store's
// InUsePages equals the sum of the region rows — the same invariant
// the auditor's slab-pages-total rule enforces.
type SlabsReport struct {
	Enabled bool              `json:"enabled"`
	Stats   SlabStats         `json:"stats,omitempty"`
	Regions []SlabRegionPages `json:"regions"`
}

// slabsDoc assembles the /slabs report with the usual inspector
// discipline: one registry shard lock at a time, never blocking the
// runtime.
func (a *Arena) slabsDoc() SlabsReport {
	rep := SlabsReport{Regions: []SlabRegionPages{}}
	if a.backing == nil {
		return rep
	}
	rep.Enabled = true
	rep.Stats = a.backing.Stats()
	a.EachRegion(func(r *Region) {
		if n := r.slabPageCount(); n > 0 {
			rep.Regions = append(rep.Regions, SlabRegionPages{ID: r.id, Pages: n})
		}
	})
	sort.Slice(rep.Regions, func(i, j int) bool { return rep.Regions[i].ID < rep.Regions[j].ID })
	return rep
}

// countersDoc is the shared JSON document of the /counters endpoint and
// PublishExpvar: arena stats, cumulative counters, and — when attached
// — the ring tracer's occupancy/drop counts and the annotation
// advisor's summary (site and upgrade-candidate counts, no symbol
// resolution), so monitoring can detect lost lifecycle events and
// annotation upgrades left on the table from one scrape.
func (a *Arena) countersDoc() any {
	doc := struct {
		Stats    ArenaStats    `json:"stats"`
		Counters ArenaCounters `json:"counters"`
		Trace    *TraceStats   `json:"trace,omitempty"`
		Advisor  *AdvisorStats `json:"advisor,omitempty"`
		Slabs    *SlabStats    `json:"slabs,omitempty"`
	}{Stats: a.Stats(), Counters: a.Counters()}
	if ts, ok := a.traceStats(); ok {
		doc.Trace = &ts
	}
	if as, ok := a.advisorStats(); ok {
		doc.Advisor = &as
	}
	if ss, ok := a.SlabStats(); ok {
		doc.Slabs = &ss
	}
	return doc
}

// expvarMu serializes the exists-check against Publish, which panics on
// duplicate names.
var expvarMu sync.Mutex

// PublishExpvar publishes the arena's stats and cumulative counters as
// one expvar.Func under the given name (served by the standard
// /debug/vars endpoint), enabling metrics as a side effect. expvar names
// are process-global and cannot be unpublished, so publishing two
// arenas under one name is an error.
func (a *Arena) PublishExpvar(name string) error {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return fmt.Errorf("rcgo: expvar %q already published", name)
	}
	a.EnableMetrics()
	expvar.Publish(name, expvar.Func(func() any { return a.countersDoc() }))
	return nil
}
