package rcgo

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// Concurrency stress tests for the Go-native runtime. All of these are
// meaningful under -race (make race); without it they still verify the
// linearizability-visible outcomes: exactly one Delete succeeds, no
// reference survives a successful delete, and object accounting is
// exact.

// N goroutines pin/unpin objects in a shared region while another
// goroutine retries Delete. Every pin that succeeds must have blocked
// the delete (ErrRegionInUse), every pin after the delete must fail
// with ErrRegionDeleted, and the live-object accounting ends exact.
func TestConcurrentPinVsDelete(t *testing.T) {
	const workers = 8
	const iters = 300
	a := NewArena()
	r := a.NewRegion()
	objs := make([]*Obj[listNode], workers)
	for i := range objs {
		objs[i] = Alloc[listNode](r)
	}
	keep := Alloc[listNode](a.NewRegion()) // survives the delete

	var wg sync.WaitGroup
	var deletedSeen atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(o *Obj[listNode]) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				unpin, err := TryPin(o)
				if err != nil {
					if !errors.Is(err, ErrRegionDeleted) {
						t.Errorf("TryPin: %v", err)
					}
					deletedSeen.Store(true)
					return
				}
				// While we hold the pin, Delete must fail ErrRegionInUse:
				// the pin makes rc nonzero, so no delete can commit.
				if err := r.Delete(); !errors.Is(err, ErrRegionInUse) {
					t.Errorf("Delete under pin: %v", err)
				}
				unpin()
			}
		}(objs[w])
	}

	wg.Add(1)
	var deleteOK atomic.Int64
	go func() {
		defer wg.Done()
		for {
			err := r.Delete()
			if err == nil {
				deleteOK.Add(1)
				return
			}
			if errors.Is(err, ErrRegionDeleted) {
				t.Errorf("region deleted twice: %v", err)
				return
			}
			if !errors.Is(err, ErrRegionInUse) {
				t.Errorf("Delete: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if deleteOK.Load() != 1 {
		t.Fatalf("delete successes = %d, want 1", deleteOK.Load())
	}
	if !r.Stats().Reclaimed || r.Objects() != 0 {
		t.Fatal("region not reclaimed after successful delete")
	}
	if _, err := TryPin(objs[0]); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("pin after delete: %v", err)
	}
	if got := a.LiveObjects(); got != 1 {
		t.Fatalf("LiveObjects = %d, want 1 (the survivor)", got)
	}
	_ = keep
}

// N goroutines store counted references from private holder regions into
// a shared target region, racing a deleter. A successful delete can only
// happen in a window where no slot holds a reference, so afterwards
// every further store must fail and the target's objects are gone.
func TestConcurrentSetRefVsDelete(t *testing.T) {
	const workers = 8
	const iters = 400
	const targets = 4
	a := NewArena()
	shared := a.NewRegion()
	tobjs := make([]*Obj[crossNode], targets)
	for i := range tobjs {
		tobjs[i] = Alloc[crossNode](shared)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			hr := a.NewRegion()
			h := Alloc[crossNode](hr)
			defer func() {
				if err := hr.Delete(); err != nil {
					t.Errorf("holder delete: %v", err)
				}
			}()
			for i := 0; i < iters; i++ {
				err := SetRef(h, &h.Value.Other, tobjs[rng.Intn(targets)])
				if err != nil {
					if !errors.Is(err, ErrRegionDeleted) {
						t.Errorf("SetRef: %v", err)
					}
					return // target gone; holder slot is already nil
				}
				if err := SetRef(h, &h.Value.Other, nil); err != nil {
					t.Errorf("clearing store failed: %v", err)
				}
			}
			// Finished without seeing the delete: clear so it can land.
			MustSetRef(h, &h.Value.Other, nil)
		}(int64(w + 1))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			err := shared.Delete()
			if err == nil {
				return
			}
			if !errors.Is(err, ErrRegionInUse) {
				t.Errorf("Delete: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if !shared.Stats().Reclaimed {
		t.Fatal("shared region not reclaimed")
	}
	if got := a.LiveObjects(); got != 0 {
		t.Fatalf("LiveObjects = %d, want 0", got)
	}
}

// Goroutines allocate into private regions and a shared region while a
// deleter repeatedly tries to take the shared region down; whichever way
// the races resolve, the arena-wide object accounting must end exact.
func TestConcurrentAllocAccounting(t *testing.T) {
	const workers = 8
	const iters = 500
	a := NewArena()
	shared := a.NewRegion()
	var surviving atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := a.NewRegion()
			n := 0
			for i := 0; i < iters; i++ {
				Alloc[listNode](mine)
				n++
				if _, err := TryAlloc[listNode](shared); err != nil && !errors.Is(err, ErrRegionDeleted) {
					t.Errorf("TryAlloc: %v", err)
				}
			}
			if n%2 == 0 {
				if err := mine.Delete(); err != nil {
					t.Errorf("delete private region: %v", err)
				}
			} else {
				surviving.Add(int64(n))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for shared.Delete() != nil {
		}
	}()
	wg.Wait()

	if got := a.LiveObjects(); got != surviving.Load() {
		t.Fatalf("LiveObjects = %d, want %d", got, surviving.Load())
	}
}

// Many goroutines race Delete on the same region: exactly one wins, the
// rest observe ErrRegionDeleted (or ErrRegionInUse if they overlapped an
// in-flight pin — none exist here).
func TestConcurrentDeleteOnce(t *testing.T) {
	for round := 0; round < 50; round++ {
		a := NewArena()
		r := a.NewRegion()
		Alloc[listNode](r)
		var wg sync.WaitGroup
		var wins atomic.Int64
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				switch err := r.Delete(); {
				case err == nil:
					wins.Add(1)
				case !errors.Is(err, ErrRegionDeleted):
					t.Errorf("concurrent delete: %v", err)
				}
			}()
		}
		wg.Wait()
		if wins.Load() != 1 {
			t.Fatalf("round %d: %d successful deletes", round, wins.Load())
		}
		if a.LiveObjects() != 0 {
			t.Fatalf("round %d: %d live objects", round, a.LiveObjects())
		}
	}
}

// Mixed stress over a shared region tree: allocators, pinners, counted
// and annotated stores, subregion churn, and a deleter retrying the
// root. Mainly a -race exerciser; the invariants checked are exact
// accounting and post-reclaim store rejection.
func TestConcurrentTreeStress(t *testing.T) {
	const workers = 8
	const iters = 300
	a := NewArena()
	root := a.NewRegion()
	mids := make([]*Region, 4)
	midObjs := make([]*Obj[crossNode], len(mids))
	rootObj := Alloc[crossNode](root)
	for i := range mids {
		mids[i] = root.NewSubregion()
		midObjs[i] = Alloc[crossNode](mids[i])
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				mid := mids[rng.Intn(len(mids))]
				mo := midObjs[rng.Intn(len(midObjs))]
				switch rng.Intn(5) {
				case 0:
					// Subregion churn with an up-link; the random target
					// may be a sibling (ErrBadRef) or already deleted.
					if sub, err := mid.TryNewSubregion(); err == nil {
						o := Alloc[crossNode](sub)
						if err := SetParent(o, &o.Value.Up, mo); err != nil &&
							!errors.Is(err, ErrBadRef) && !errors.Is(err, ErrRegionDeleted) {
							t.Errorf("SetParent in sub: %v", err)
						}
						if err := sub.Delete(); err != nil {
							t.Errorf("sub delete: %v", err)
						}
					}
				case 1:
					if unpin, err := TryPin(mo); err == nil {
						unpin()
					}
				case 2:
					if o, err := TryAlloc[crossNode](mid); err == nil {
						if err := SetSame(o, &o.Value.Other, mo); err != nil &&
							!errors.Is(err, ErrBadRef) && !errors.Is(err, ErrRegionDeleted) {
							t.Errorf("SetSame: %v", err)
						}
					}
				case 3:
					if o, err := TryAlloc[crossNode](mid); err == nil {
						if err := SetParent(o, &o.Value.Up, rootObj); err != nil &&
							!errors.Is(err, ErrRegionDeleted) {
							t.Errorf("SetParent: %v", err)
						}
					}
				case 4:
					// Transient counted ref from the root into a mid:
					// stored, then cleared, so mids eventually drain.
					if o, err := TryAlloc[crossNode](root); err == nil {
						switch err := SetRef(o, &o.Value.Other, mo); {
						case err == nil:
							if err := SetRef(o, &o.Value.Other, nil); err != nil {
								t.Errorf("clearing SetRef: %v", err)
							}
						case !errors.Is(err, ErrRegionDeleted):
							t.Errorf("SetRef: %v", err)
						}
					}
				}
			}
		}(int64(w + 1))
	}

	// Deleter: keep trying to take the tree down, children first, while
	// the workers hammer it. Termination: workers run bounded loops and
	// every reference they create is transient.
	for {
		allMidsDown := true
		for _, m := range mids {
			if !m.Deleted() {
				if err := m.Delete(); err != nil && !errors.Is(err, ErrRegionInUse) {
					t.Fatalf("mid delete: %v", err)
				}
			}
			if !m.Deleted() {
				allMidsDown = false
			}
		}
		if allMidsDown {
			if err := root.Delete(); err == nil {
				break
			} else if !errors.Is(err, ErrRegionInUse) {
				t.Fatalf("root delete: %v", err)
			}
		}
	}
	wg.Wait()
	if a.LiveObjects() != 0 {
		t.Fatalf("LiveObjects = %d, want 0", a.LiveObjects())
	}
}

// Property: deferred deletion of a random region tree with random
// counted cross-references fully reclaims everything once the references
// are cleared, regardless of the order of deferrals and clears.
func TestDeferredCascadeProperty(t *testing.T) {
	for round := int64(0); round < 30; round++ {
		rng := rand.New(rand.NewSource(round))
		a := NewArena()
		regions := []*Region{a.NewRegion()}
		for len(regions) < 2+rng.Intn(20) {
			parent := regions[rng.Intn(len(regions))]
			if sub, err := parent.TryNewSubregion(); err == nil {
				regions = append(regions, sub)
			}
		}
		var objs []*Obj[crossNode]
		for _, r := range regions {
			for i := 0; i < 1+rng.Intn(3); i++ {
				objs = append(objs, Alloc[crossNode](r))
			}
		}
		for i := 0; i < len(objs)*2; i++ {
			h := objs[rng.Intn(len(objs))]
			v := objs[rng.Intn(len(objs))]
			MustSetRef(h, &h.Value.Other, v)
		}
		// Defer-delete every region in random order; nothing with
		// children or inbound refs reclaims yet.
		for _, i := range rng.Perm(len(regions)) {
			regions[i].DeleteDeferred()
		}
		// Clear every slot in random order. Slots whose holder region
		// already cascaded are drained (ErrRegionDeleted): skip them.
		for _, i := range rng.Perm(len(objs)) {
			h := objs[i]
			if err := SetRef(h, &h.Value.Other, nil); err != nil && !errors.Is(err, ErrRegionDeleted) {
				t.Fatalf("round %d: clear: %v", round, err)
			}
		}
		if a.LiveObjects() != 0 {
			t.Fatalf("round %d: %d live objects after full drain", round, a.LiveObjects())
		}
		for _, r := range regions {
			if !r.Stats().Reclaimed {
				t.Fatalf("round %d: region %d not reclaimed (%+v)", round, r.id, r.Stats())
			}
		}
	}
}

// The same property under concurrency: deferrals and clears race from
// many goroutines; the tree must still fully reclaim.
func TestDeferredCascadeConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewArena()
	regions := []*Region{a.NewRegion()}
	for len(regions) < 16 {
		parent := regions[rng.Intn(len(regions))]
		regions = append(regions, parent.NewSubregion())
	}
	var objs []*Obj[crossNode]
	for _, r := range regions {
		for i := 0; i < 3; i++ {
			objs = append(objs, Alloc[crossNode](r))
		}
	}
	for i := 0; i < len(objs)*2; i++ {
		h := objs[rng.Intn(len(objs))]
		MustSetRef(h, &h.Value.Other, objs[rng.Intn(len(objs))])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for _, i := range rng.Perm(len(regions)) {
				regions[i].DeleteDeferred()
			}
			for _, i := range rng.Perm(len(objs)) {
				h := objs[i]
				if err := SetRef(h, &h.Value.Other, nil); err != nil && !errors.Is(err, ErrRegionDeleted) {
					t.Errorf("clear: %v", err)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if a.LiveObjects() != 0 {
		t.Fatalf("%d live objects after concurrent drain", a.LiveObjects())
	}
	for _, r := range regions {
		if !r.Stats().Reclaimed {
			t.Fatalf("region %d not reclaimed", r.id)
		}
	}
}
