package rcgo

import "rcgo/internal/failpoint"

// Failpoint sites on the hot lifecycle edges of the concurrent runtime
// (DESIGN.md §"Failure model"). Each site sits inside one of the race
// windows the delete state machine is built around, so chaos runs can
// provoke exactly the interleavings the protocol must survive:
//
//	rcgo/alloc.admission  TryAlloc, before the admission decision —
//	                      models a transient allocation failure and
//	                      perturbs the alloc-vs-delete race.
//	rcgo/incrc.validate   incRC, between publishing the increment and
//	                      validating the state — the heart of the
//	                      increment-then-validate protocol; an injected
//	                      error withdraws the increment (a reference
//	                      creation that fails mid-protocol), a yield
//	                      widens the window a concurrent Delete decides
//	                      in.
//	rcgo/delete.dying     Delete/DeleteDeferred, inside the dying
//	                      window (state stored, mu held, decision not
//	                      yet made) — an injected error aborts the
//	                      delete (restoring stateAlive), a delay holds
//	                      the window open so incRC's withdraw-and-retry
//	                      path runs.
//	rcgo/zombie.drain     maybeDrain, before taking the lifecycle lock —
//	                      an injected error skips this drain attempt (a
//	                      lost wakeup), which is exactly the stuck-
//	                      zombie condition Arena.SweepZombies and the
//	                      ZombieWatchdog exist to heal.
//	rcgo/slot.insert      SetRef, between counting the new reference
//	                      and registering the slot — an injected error
//	                      unwinds the store (decRC rollback), a yield
//	                      widens the count-vs-registry window the
//	                      delete-time unscan depends on.
//	rcgo/alloc.refill     the allocation fast path's cache edges
//	                      (region_alloccache.go): an injected error is
//	                      a refused chunk refill (a transient allocator
//	                      failure surfaced before the object is
//	                      counted, so nothing unwinds); perturbations
//	                      fire inside the delta-flush window, widening
//	                      the interval during which batched counter
//	                      deltas are in flight between a shard and the
//	                      real objs/liveObjs counters.
//	rcgo/own.release      Owner.Release and Owner.Delete, at the head
//	                      of the flush window (mu held, nothing merged
//	                      yet) — an injected error is a transient
//	                      release failure observed before any flush, so
//	                      the region stays owned and the token stays
//	                      valid (callers retry); a delay or yield holds
//	                      the window open while owner-local deltas are
//	                      about to merge into the shared counters.
//	rcgo/own.handoff      handOffLocked, on each token-transfer attempt
//	                      from a finished owner to the wait-queue head
//	                      (mu held) — an injected error is a refused
//	                      hand-off: that waiter is requeued at the tail
//	                      and the next is tried, so delivery retries at
//	                      waiter granularity; a delay or yield widens
//	                      the wake/transfer window the cancellation
//	                      path races against.
//	rcgo/slab.map         newSlabChunkedObj, on the slab map/refill
//	                      window (region_slab.go) — an injected error
//	                      is a refused slab map surfaced before the
//	                      object is counted (a transient page-store
//	                      failure, so nothing unwinds); a delay or
//	                      yield widens the carve-vs-reclaim window
//	                      that the region's page-list closed flag and
//	                      the chunk writer gate decide. Only evaluated
//	                      when a backing store is attached and the
//	                      payload type is slab-eligible.
//
// Disarmed (the steady state), each site costs its edge one atomic
// pointer load and a never-taken branch — the same budget as the
// metrics gate. None of the sites is on the annotated-store fast path
// (SetSame/SetTrad/SetParent), keeping the paper's check-only cost
// story intact (EXPERIMENTS.md §"Failpoint overhead").
var (
	fpAllocAdmission = failpoint.New("rcgo/alloc.admission")
	fpIncRCValidate  = failpoint.New("rcgo/incrc.validate")
	fpDeleteDying    = failpoint.New("rcgo/delete.dying")
	fpZombieDrain    = failpoint.New("rcgo/zombie.drain")
	fpSlotInsert     = failpoint.New("rcgo/slot.insert")
	fpAllocRefill    = failpoint.New("rcgo/alloc.refill")
	fpOwnRelease     = failpoint.New("rcgo/own.release")
	fpOwnHandoff     = failpoint.New("rcgo/own.handoff")
	fpSlabMap        = failpoint.New("rcgo/slab.map")
)

// ErrInjected is failpoint.ErrInjected re-exported: every error a
// failpoint injects into a public operation wraps it, so callers (and
// the chaos reference model) can tell an induced failure from a real
// protocol outcome with errors.Is(err, ErrInjected). With no failpoint
// armed — the default — no operation ever returns it.
var ErrInjected = failpoint.ErrInjected
