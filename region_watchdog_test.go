package rcgo

import (
	"context"
	"errors"
	"testing"
	"time"

	"rcgo/internal/failpoint"
)

func TestDeleteWithRetrySucceedsWhenReferencesDrain(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	unpin := Pin(Alloc[auditNode](r))

	// The pin drops 30ms in; the retry loop must ride out the
	// ErrRegionInUse failures and then succeed.
	go func() {
		time.Sleep(30 * time.Millisecond)
		unpin()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.DeleteWithRetry(ctx, Backoff{}); err != nil {
		t.Fatalf("DeleteWithRetry: %v", err)
	}
	if got := a.Stats().LiveRegions; got != 1 { // the traditional region
		t.Fatalf("LiveRegions = %d, want 1", got)
	}
}

func TestDeleteWithRetryContextExpiry(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	unpin := Pin(Alloc[auditNode](r))
	defer unpin()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := r.DeleteWithRetry(ctx, Backoff{Initial: time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !errors.Is(err, ErrRegionInUse) {
		t.Fatalf("err = %v, want to also wrap the last ErrRegionInUse", err)
	}
	// The failed retries must not have corrupted anything.
	if st := r.Stats(); st.Deleted {
		t.Fatal("region deleted despite the live pin")
	}
}

func TestDeleteWithRetryTerminalErrorStopsEarly(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := r.DeleteWithRetry(context.Background(), Backoff{Initial: 50 * time.Millisecond})
	if !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("err = %v, want ErrRegionDeleted", err)
	}
	if d := time.Since(start); d > 25*time.Millisecond {
		t.Fatalf("terminal error took %v; must not have slept a retry interval", d)
	}
}

func TestDeleteWithRetryRetriesInjectedFailures(t *testing.T) {
	defer failpoint.DisableAll()
	a := NewArena()
	r := a.NewRegion()
	// A 1/2 rule injects failures on roughly half the attempts; the
	// retry loop must treat ErrInjected as transient and get through on
	// a non-firing evaluation.
	if err := failpoint.Enable("rcgo/delete.dying", failpoint.Rule{
		Action: failpoint.ActionError, Num: 1, Den: 2, Seed: 9,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.DeleteWithRetry(ctx, Backoff{Initial: time.Millisecond}); err != nil {
		t.Fatalf("DeleteWithRetry through injected failures: %v", err)
	}
}

// An aged, genuinely pinned zombie is flagged with its pinning holders
// named; reclaiming it clears the pending set.
func TestWatchdogFlagsStuckZombie(t *testing.T) {
	a := NewArena()
	ring := NewRingTracer(64)
	w := NewZombieWatchdog(a, time.Hour, ring)
	a.SetTracer(w)
	defer a.SetTracer(nil)
	clock := time.Unix(1000, 0)
	w.now = func() time.Time { return clock }

	holder := Alloc[auditNode](a.NewRegion())
	target := a.NewRegion()
	to := Alloc[auditNode](target)
	if err := SetRef(holder, &holder.Value.Next, to); err != nil {
		t.Fatal(err)
	}
	target.DeleteDeferred()

	if stuck := w.Check(); stuck != nil {
		t.Fatalf("zombie flagged before the threshold: %+v", stuck)
	}
	clock = clock.Add(2 * time.Hour)
	var delivered []StuckZombie
	w.OnStuck = func(sz StuckZombie) { delivered = append(delivered, sz) }
	stuck := w.Check()
	if len(stuck) != 1 || stuck[0].ID != target.ID() {
		t.Fatalf("Check = %+v, want exactly zombie %d", stuck, target.ID())
	}
	if stuck[0].RC != 1 || stuck[0].Age != 2*time.Hour {
		t.Errorf("flagged rc=%d age=%v, want rc=1 age=2h", stuck[0].RC, stuck[0].Age)
	}
	if len(stuck[0].Holders) != 1 || stuck[0].Holders[0].HolderRegion != holder.Region().ID() {
		t.Errorf("Holders = %+v, want the holder region %d named", stuck[0].Holders, holder.Region().ID())
	}
	if len(delivered) != 1 {
		t.Errorf("OnStuck delivered %d reports, want 1", len(delivered))
	}
	if w.Flagged() != 1 {
		t.Errorf("Flagged = %d, want 1", w.Flagged())
	}

	// Clearing the reference reclaims the zombie; the reclaim event
	// empties the pending set and the next Check is quiet.
	if err := SetRef(holder, &holder.Value.Next, nil); err != nil {
		t.Fatal(err)
	}
	if stuck := w.Check(); stuck != nil {
		t.Fatalf("Check after reclaim = %+v, want none", stuck)
	}
}

// A zombie whose drain wakeup was lost (zombie.drain failpoint) is
// healed by the watchdog rather than flagged.
func TestWatchdogHealsLostDrain(t *testing.T) {
	defer failpoint.DisableAll()
	a := NewArena()
	w := NewZombieWatchdog(a, time.Hour, nil)
	a.SetTracer(w)
	defer a.SetTracer(nil)
	clock := time.Unix(1000, 0)
	w.now = func() time.Time { return clock }

	r := a.NewRegion()
	unpin := Pin(Alloc[auditNode](r))
	r.DeleteDeferred()
	if err := failpoint.Enable("rcgo/zombie.drain", failpoint.Rule{Action: failpoint.ActionError}); err != nil {
		t.Fatal(err)
	}
	unpin() // drain suppressed: drained zombie stays behind
	failpoint.DisableAll()
	if got := a.Stats().DeferredRegions; got != 1 {
		t.Fatalf("DeferredRegions = %d, want the stuck zombie", got)
	}

	clock = clock.Add(2 * time.Hour)
	if stuck := w.Check(); stuck != nil {
		t.Fatalf("drained zombie was flagged, not healed: %+v", stuck)
	}
	if w.Healed() != 1 {
		t.Fatalf("Healed = %d, want 1", w.Healed())
	}
	if got := a.Stats().DeferredRegions; got != 0 {
		t.Fatalf("DeferredRegions after heal = %d, want 0", got)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit after heal: %s", rep)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	defer failpoint.DisableAll()
	a := NewArena()
	w := NewZombieWatchdog(a, time.Millisecond, nil)
	a.SetTracer(w)
	defer a.SetTracer(nil)

	r := a.NewRegion()
	unpin := Pin(Alloc[auditNode](r))
	r.DeleteDeferred()
	if err := failpoint.Enable("rcgo/zombie.drain", failpoint.Rule{Action: failpoint.ActionError}); err != nil {
		t.Fatal(err)
	}
	unpin()
	failpoint.DisableAll()

	w.Start(2 * time.Millisecond)
	deadline := time.After(5 * time.Second)
	for w.Healed() == 0 {
		select {
		case <-deadline:
			t.Fatal("background watchdog never healed the zombie")
		case <-time.After(2 * time.Millisecond):
		}
	}
	w.Stop()
	w.Stop() // idempotent
	if got := a.Stats().DeferredRegions; got != 0 {
		t.Fatalf("DeferredRegions = %d, want 0", got)
	}
}
