package rcgo

import (
	"context"
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// findRegion walks a hierarchy report for the node with the given id.
func findRegion(nodes []*RegionInfo, id int64) *RegionInfo {
	for _, n := range nodes {
		if n.ID == id {
			return n
		}
		if c := findRegion(n.Children, id); c != nil {
			return c
		}
	}
	return nil
}

func TestArenaStatsLiveDeferredConsistency(t *testing.T) {
	a := NewArena()
	if got := a.LiveRegions(); got != 1 {
		t.Fatalf("fresh arena LiveRegions = %d, want 1 (traditional)", got)
	}

	r1 := a.NewRegion()
	r2 := a.NewRegion()
	sub := r1.NewSubregion()
	if got := a.LiveRegions(); got != 4 {
		t.Fatalf("LiveRegions = %d, want 4", got)
	}

	if err := sub.Delete(); err != nil {
		t.Fatal(err)
	}
	if got := a.LiveRegions(); got != 3 {
		t.Fatalf("after sub delete LiveRegions = %d, want 3", got)
	}

	// Hold a counted reference into r2, then defer-delete it: it must
	// move from live to deferred, and back out on release.
	h := Alloc[traceNode](r1)
	MustSetRef(h, &h.Value.cross, Alloc[traceNode](r2))
	r2.DeleteDeferred()
	if live, def := a.LiveRegions(), a.DeferredRegions(); live != 2 || def != 1 {
		t.Fatalf("after deferred delete live=%d deferred=%d, want 2/1", live, def)
	}
	MustSetRef(h, &h.Value.cross, nil)
	if live, def := a.LiveRegions(), a.DeferredRegions(); live != 2 || def != 0 {
		t.Fatalf("after release live=%d deferred=%d, want 2/0", live, def)
	}

	// Immediate DeleteDeferred (no references) never becomes a zombie.
	r3 := a.NewRegion()
	r3.DeleteDeferred()
	if live, def := a.LiveRegions(), a.DeferredRegions(); live != 2 || def != 0 {
		t.Fatalf("after immediate deferred delete live=%d deferred=%d, want 2/0", live, def)
	}

	st := a.Stats()
	if st.LiveRegions != 2 || st.DeferredRegions != 0 {
		t.Fatalf("ArenaStats live=%d deferred=%d, want 2/0", st.LiveRegions, st.DeferredRegions)
	}
}

func TestHierarchyAndDot(t *testing.T) {
	a := NewArena()
	top := a.NewRegion()
	kid := top.NewSubregion()
	grand := kid.NewSubregion()
	Alloc[traceNode](grand)

	// A zombie with a counted reference held into it.
	zombie := a.NewRegion()
	h := Alloc[traceNode](top)
	MustSetRef(h, &h.Value.cross, Alloc[traceNode](zombie))
	zombie.DeleteDeferred()

	roots := a.Hierarchy()
	if len(roots) != 3 {
		t.Fatalf("got %d roots, want 3 (traditional, top, zombie)", len(roots))
	}
	if !roots[0].Traditional || roots[0].State != "alive" {
		t.Fatalf("first root should be the alive traditional region, got %+v", roots[0])
	}
	tn := findRegion(roots, top.ID())
	if tn == nil || len(tn.Children) != 1 || tn.Children[0].ID != kid.ID() {
		t.Fatalf("top region node wrong: %+v", tn)
	}
	gn := findRegion(roots, grand.ID())
	if gn == nil || gn.Objects != 1 || gn.Parent != kid.ID() {
		t.Fatalf("grandchild node wrong: %+v", gn)
	}
	zn := findRegion(roots, zombie.ID())
	if zn == nil || zn.State != "deferred" || zn.RC != 1 {
		t.Fatalf("zombie node wrong: %+v", zn)
	}

	dot := a.HierarchyDot()
	for _, want := range []string{
		"digraph regions {",
		"(traditional)",
		"style=dashed, color=red",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
	for _, edge := range [][2]int64{{top.ID(), kid.ID()}, {kid.ID(), grand.ID()}} {
		want := "r" + itoa(edge[0]) + " -> r" + itoa(edge[1]) + ";"
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing edge %q:\n%s", want, dot)
		}
	}
}

func itoa(n int64) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestBlockedDeleters(t *testing.T) {
	a := NewArena()
	if got := a.BlockedDeleters(); got != nil {
		t.Fatalf("fresh arena blocked report = %v, want nil", got)
	}

	epoch := a.NewRegion()
	e1 := Alloc[traceNode](epoch)
	e2 := Alloc[traceNode](epoch)

	// Two slot references from holder1, one from holder2, one pin.
	holder1 := a.NewRegion()
	holder2 := a.NewRegion()
	h1 := Alloc[traceNode](holder1)
	h2 := Alloc[traceNode](holder2)
	MustSetRef(h1, &h1.Value.cross, e1)
	MustSetRef(h1, &h1.Value.same, e2) // counted slot despite the field name
	MustSetRef(h2, &h2.Value.cross, e1)
	unpin := Pin(e2)

	epoch.DeleteDeferred()
	report := a.BlockedDeleters()
	if len(report) != 1 {
		t.Fatalf("blocked report has %d entries, want 1: %+v", len(report), report)
	}
	br := report[0]
	if br.ID != epoch.ID() || br.RC != 4 || br.Pins != 1 {
		t.Fatalf("blocked entry wrong: %+v", br)
	}
	if len(br.Holders) != 2 ||
		br.Holders[0] != (BlockedHolder{HolderRegion: holder1.ID(), Slots: 2}) ||
		br.Holders[1] != (BlockedHolder{HolderRegion: holder2.ID(), Slots: 1}) {
		t.Fatalf("holders wrong: %+v", br.Holders)
	}
	if br.Unaccounted != 0 {
		t.Fatalf("Unaccounted = %d, want 0", br.Unaccounted)
	}

	// Release everything: the zombie reclaims and leaves the report.
	MustSetRef(h1, &h1.Value.cross, nil)
	MustSetRef(h1, &h1.Value.same, nil)
	MustSetRef(h2, &h2.Value.cross, nil)
	unpin()
	if !epoch.Deleted() || epoch.Deferred() {
		t.Fatal("epoch region should have reclaimed")
	}
	if got := a.BlockedDeleters(); got != nil {
		t.Fatalf("blocked report after release = %+v, want nil", got)
	}
}

func TestDebugHandlerEndpoints(t *testing.T) {
	a := NewArena()
	top := a.NewRegion()
	sub := top.NewSubregion()
	Alloc[traceNode](sub)

	h := Alloc[traceNode](top)
	zombie := a.NewRegion()
	MustSetRef(h, &h.Value.cross, Alloc[traceNode](zombie))
	zombie.DeleteDeferred()

	srv := httptest.NewServer(a.DebugHandler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	index, _ := get("/")
	if !strings.Contains(index, "rcgo arena debug") || !strings.Contains(index, "/blocked") {
		t.Errorf("index page wrong:\n%s", index)
	}

	body, ct := get("/hierarchy")
	if ct != "application/json" {
		t.Errorf("/hierarchy content type = %q", ct)
	}
	var hier struct {
		Stats   ArenaStats    `json:"stats"`
		Regions []*RegionInfo `json:"regions"`
	}
	if err := json.Unmarshal([]byte(body), &hier); err != nil {
		t.Fatalf("/hierarchy: %v\n%s", err, body)
	}
	if hier.Stats.LiveRegions != 3 || hier.Stats.DeferredRegions != 1 {
		t.Errorf("/hierarchy stats = %+v", hier.Stats)
	}
	if findRegion(hier.Regions, sub.ID()) == nil {
		t.Errorf("/hierarchy missing subregion %d:\n%s", sub.ID(), body)
	}
	if z := findRegion(hier.Regions, zombie.ID()); z == nil || z.State != "deferred" {
		t.Errorf("/hierarchy zombie wrong: %+v", z)
	}

	dot, ct := get("/hierarchy.dot")
	if !strings.HasPrefix(ct, "text/vnd.graphviz") || !strings.Contains(dot, "digraph regions") {
		t.Errorf("/hierarchy.dot wrong (%q):\n%s", ct, dot)
	}

	// The handler enabled metrics, so ops from here on are counted.
	MustSetSame(h, &h.Value.up, h)
	body, _ = get("/counters")
	var counters struct {
		Stats    ArenaStats    `json:"stats"`
		Counters ArenaCounters `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &counters); err != nil {
		t.Fatalf("/counters: %v\n%s", err, body)
	}
	if counters.Counters.SameChecks == 0 {
		t.Errorf("/counters shows no same checks after MustSetSame:\n%s", body)
	}

	body, _ = get("/blocked")
	var blocked struct {
		Blocked []BlockedRegion `json:"blocked"`
	}
	if err := json.Unmarshal([]byte(body), &blocked); err != nil {
		t.Fatalf("/blocked: %v\n%s", err, body)
	}
	if len(blocked.Blocked) != 1 || blocked.Blocked[0].ID != zombie.ID() ||
		len(blocked.Blocked[0].Holders) != 1 ||
		blocked.Blocked[0].Holders[0].HolderRegion != top.ID() {
		t.Errorf("/blocked wrong:\n%s", body)
	}
}

// /owners reports every held region with the evidence an operator
// needs — holder age, acquire site, queue depth — plus the arena-wide
// waiter gauge and the top-contended table.
func TestDebugHandlerOwners(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	own, err := r.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	parked := make(chan error, 1)
	go func() {
		tok, err := r.AcquireContext(context.Background())
		if err == nil {
			err = tok.Release()
		}
		parked <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for a.AcquireWaiters() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}

	srv := httptest.NewServer(a.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/owners")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var rep OwnersReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("/owners: %v\n%s", err, body)
	}
	if len(rep.Owned) != 1 || rep.Owned[0].ID != r.ID() {
		t.Fatalf("/owners owned = %+v, want exactly region %d", rep.Owned, r.ID())
	}
	if rep.Owned[0].QueueDepth != 1 {
		t.Errorf("/owners queue depth = %d, want 1", rep.Owned[0].QueueDepth)
	}
	if rep.Owned[0].HeldFor <= 0 {
		t.Errorf("/owners held_ns = %d, want > 0", rep.Owned[0].HeldFor)
	}
	if !strings.Contains(rep.Owned[0].AcquireSite, "region_debug_test.go") {
		t.Errorf("/owners acquire site = %q, want the acquiring test frame", rep.Owned[0].AcquireSite)
	}
	if rep.TotalWaiters != 1 {
		t.Errorf("/owners total waiters = %d, want 1", rep.TotalWaiters)
	}
	if len(rep.TopContended) == 0 || rep.TopContended[0].ID != r.ID() {
		t.Errorf("/owners top contended = %+v, want region %d first", rep.TopContended, r.ID())
	}

	if err := own.Release(); err != nil {
		t.Fatal(err)
	}
	if err := <-parked; err != nil {
		t.Fatalf("parked waiter: %v", err)
	}
	// Quiesced: the report empties but keeps the contention history.
	rep = a.Owners()
	if len(rep.Owned) != 0 || rep.TotalWaiters != 0 {
		t.Errorf("quiesced owners report = %+v, want empty", rep)
	}
	if len(rep.TopContended) == 0 || rep.TopContended[0].Waits != 1 {
		t.Errorf("quiesced top contended = %+v, want region %d with 1 wait", rep.TopContended, r.ID())
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
}

// The inspector must stay readable while the arena churns: hammer the
// endpoints concurrently with region create/store/delete traffic. Run
// under -race this doubles as the inspector's data-race exerciser.
func TestDebugHandlerUnderChurn(t *testing.T) {
	a := NewArena()
	handler := a.DebugHandler()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r := a.NewRegion()
				sub := r.NewSubregion()
				o := Alloc[traceNode](sub)
				MustSetSame(o, &o.Value.same, o)
				h := Alloc[traceNode](r)
				MustSetRef(h, &h.Value.cross, o)
				sub.DeleteDeferred() // zombie until h's slot is released
				MustSetRef(h, &h.Value.cross, nil)
				if err := r.Delete(); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}()
	}
	for _, path := range []string{
		"/hierarchy", "/hierarchy.dot", "/counters", "/blocked",
		"/audit", "/advisor", "/advisor.txt", "/owners", "/trace",
	} {
		for i := 0; i < 20; i++ {
			req := httptest.NewRequest("GET", path, nil)
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("GET %s: status %d", path, rec.Code)
			}
		}
	}
	close(done)
	wg.Wait()
}

// TestDebugHandlerIndexComplete parses the endpoint list off the index
// page and GETs every entry: the index is generated from the same table
// the mux is registered from, so every listed path must serve 200 and
// the new inspector endpoints must be listed.
func TestDebugHandlerIndexComplete(t *testing.T) {
	a := NewArena()
	srv := httptest.NewServer(a.DebugHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var listed []string
	for _, line := range strings.Split(string(body), "\n") {
		f := strings.Fields(line)
		if len(f) >= 2 && strings.HasPrefix(f[0], "/") {
			listed = append(listed, f[0])
		}
	}
	for _, want := range []string{"/hierarchy", "/hierarchy.dot", "/counters", "/blocked", "/audit", "/advisor", "/advisor.txt", "/owners", "/trace"} {
		found := false
		for _, p := range listed {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Errorf("index page does not list %s:\n%s", want, body)
		}
	}
	for _, p := range listed {
		r, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("index lists %s but GET returns %d", p, r.StatusCode)
		}
	}
}

// TestDebugHandlerAdvisor covers both sides of the /advisor endpoints:
// a disarmed arena reports enabled=false (the handler must NOT silently
// arm the stack-walking profiler), and an armed arena's JSON decodes
// back into an AdvisorReport naming the upgrade candidate.
func TestDebugHandlerAdvisor(t *testing.T) {
	get := func(t *testing.T, srv *httptest.Server, path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	t.Run("disarmed", func(t *testing.T) {
		a := NewArena()
		srv := httptest.NewServer(a.DebugHandler())
		defer srv.Close()
		if a.AdvisorEnabled() {
			t.Fatal("DebugHandler must not arm the advisor")
		}
		var rep AdvisorReport
		if err := json.Unmarshal([]byte(get(t, srv, "/advisor")), &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Enabled || len(rep.Sites) != 0 {
			t.Errorf("disarmed /advisor report: %+v", rep)
		}
		if txt := get(t, srv, "/advisor.txt"); !strings.Contains(txt, "advisor disabled") {
			t.Errorf("/advisor.txt missing the disabled hint:\n%s", txt)
		}
	})

	t.Run("armed", func(t *testing.T) {
		a := NewArena(WithAdvisor())
		r := a.NewRegion()
		h := Alloc[traceNode](r)
		for i := 0; i < 3; i++ {
			MustSetRef(h, &h.Value.cross, h) // same-region: upgrade candidate
		}
		srv := httptest.NewServer(a.DebugHandler())
		defer srv.Close()
		var rep AdvisorReport
		if err := json.Unmarshal([]byte(get(t, srv, "/advisor")), &rep); err != nil {
			t.Fatal(err)
		}
		if !rep.Enabled || rep.UpgradeCandidates != 1 || len(rep.Sites) != 1 ||
			rep.Sites[0].Recommended != FlavourSame || rep.Sites[0].Count != 3 {
			t.Errorf("armed /advisor report wrong: %+v", rep)
		}
		txt := get(t, srv, "/advisor.txt")
		if !strings.Contains(txt, "upgrade candidates") || !strings.Contains(txt, "SetSame") {
			t.Errorf("/advisor.txt table wrong:\n%s", txt)
		}
		// The index page carries the advisor summary line when armed.
		if idx := get(t, srv, "/"); !strings.Contains(idx, "advisor_upgrade_candidates=1") {
			t.Errorf("index missing advisor summary:\n%s", idx)
		}
	})
}

// TestDebugHandlerTrace covers /trace with and without a ring tracer
// attached, including the ?n= window limit and JSON round-trip of the
// TraceKind names.
func TestDebugHandlerTrace(t *testing.T) {
	type traceDoc struct {
		Attached bool         `json:"attached"`
		Stats    *TraceStats  `json:"stats"`
		Events   []TraceEvent `json:"events"`
	}
	get := func(t *testing.T, srv *httptest.Server, path string) traceDoc {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var doc traceDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return doc
	}

	t.Run("detached", func(t *testing.T) {
		a := NewArena()
		srv := httptest.NewServer(a.DebugHandler())
		defer srv.Close()
		doc := get(t, srv, "/trace")
		if doc.Attached || doc.Stats != nil || len(doc.Events) != 0 {
			t.Errorf("detached /trace doc: %+v", doc)
		}
	})

	t.Run("attached", func(t *testing.T) {
		ring := NewRingTracer(64)
		a := NewArena(WithTracer(ring))
		for i := 0; i < 3; i++ {
			r := a.NewRegion()
			if err := r.Delete(); err != nil {
				t.Fatal(err)
			}
		}
		srv := httptest.NewServer(a.DebugHandler())
		defer srv.Close()

		doc := get(t, srv, "/trace")
		if !doc.Attached || doc.Stats == nil {
			t.Fatalf("/trace not attached: %+v", doc)
		}
		// 3 × (created + deleted + reclaimed), and the tracer was attached
		// at construction so it saw the traditional region's creation too.
		if doc.Stats.Total != 10 || len(doc.Events) != 10 {
			t.Errorf("/trace stats=%+v events=%d, want total=10", doc.Stats, len(doc.Events))
		}
		kinds := map[TraceKind]int{}
		for _, ev := range doc.Events {
			kinds[ev.Kind]++
		}
		if kinds[TraceRegionCreated] != 4 || kinds[TraceRegionDeleted] != 3 || kinds[TraceRegionReclaimed] != 3 {
			t.Errorf("/trace kinds wrong (names failed to round-trip?): %v", kinds)
		}

		limited := get(t, srv, "/trace?n=2")
		if len(limited.Events) != 2 || limited.Stats.Total != 10 {
			t.Errorf("/trace?n=2 returned %d events (total %d)", len(limited.Events), limited.Stats.Total)
		}
		if limited.Events[0].Seq != doc.Events[8].Seq {
			t.Errorf("?n=2 did not keep the most recent events: %+v", limited.Events)
		}
	})
}

func TestPublishExpvar(t *testing.T) {
	a := NewArena()
	a.NewRegion()
	const name = "rcgo.test.arena"
	if err := a.PublishExpvar(name); err != nil {
		t.Fatal(err)
	}
	if err := a.PublishExpvar(name); err == nil {
		t.Fatal("duplicate publish should fail")
	}
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar not published")
	}
	var snap struct {
		Stats    ArenaStats    `json:"stats"`
		Counters ArenaCounters `json:"counters"`
	}
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value not JSON: %v\n%s", err, v.String())
	}
	if snap.Stats.LiveRegions != 2 {
		t.Errorf("expvar live_regions = %d, want 2", snap.Stats.LiveRegions)
	}

	// An advisor-armed arena's expvar doc carries the advisor summary.
	armed := NewArena(WithAdvisor())
	r := armed.NewRegion()
	h := Alloc[traceNode](r)
	MustSetRef(h, &h.Value.cross, h)
	const armedName = "rcgo.test.arena.advisor"
	if err := armed.PublishExpvar(armedName); err != nil {
		t.Fatal(err)
	}
	var armedSnap struct {
		Advisor *AdvisorStats `json:"advisor"`
	}
	if err := json.Unmarshal([]byte(expvar.Get(armedName).String()), &armedSnap); err != nil {
		t.Fatal(err)
	}
	if armedSnap.Advisor == nil || armedSnap.Advisor.Sites != 1 || armedSnap.Advisor.UpgradeCandidates != 1 {
		t.Errorf("expvar advisor summary wrong: %+v", armedSnap.Advisor)
	}
}
