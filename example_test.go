package rcgo_test

import (
	"fmt"
	"os"

	"rcgo"
)

// The Figure 1 pattern with the Go-native API: build a list and its
// contents in one region, free everything at once.
func Example() {
	type node struct {
		next rcgo.Ref[node]
		data int
	}
	arena := rcgo.NewArena()
	r := arena.NewRegion()

	var head *rcgo.Obj[node]
	for i := 0; i < 3; i++ {
		n := rcgo.Alloc[node](r)
		n.Value.data = i
		if err := rcgo.SetSame(n, &n.Value.next, head); err != nil {
			panic(err)
		}
		head = n
	}
	for n := head; n != nil; n = n.Value.next.Get() {
		fmt.Print(n.Value.data, " ")
	}
	fmt.Println(r.Delete() == nil)
	// Output: 2 1 0 true
}

// Deletion is dynamically safe: it fails while external references
// remain and succeeds once they are cleared.
func Example_safety() {
	type box struct{ payload rcgo.Ref[box] }
	arena := rcgo.NewArena()
	r1 := arena.NewRegion()
	r2 := arena.NewRegion()
	holder := rcgo.Alloc[box](r1)
	target := rcgo.Alloc[box](r2)

	rcgo.MustSetRef(holder, &holder.Value.payload, target)
	fmt.Println("while referenced:", r2.Delete() != nil)
	rcgo.MustSetRef(holder, &holder.Value.payload, nil)
	fmt.Println("after clearing:", r2.Delete() == nil)
	// Output:
	// while referenced: true
	// after clearing: true
}

// The toolchain compiles and runs RC-dialect source; the constraint
// inference removes annotation checks it proves safe.
func Example_toolchain() {
	src := `
struct cell { struct cell *sameregion next; int v; };
deletes void main(void) {
	region r = newregion();
	struct cell *c = ralloc(r, struct cell);
	c->next = ralloc(regionof(c), struct cell);
	c->next->v = 41;
	print_int(c->next->v + 1);
	c = null;
	deleteregion(r);
}`
	c, err := rcgo.Compile(src, rcgo.ModeInf)
	if err != nil {
		panic(err)
	}
	res, err := rcgo.Run(c, rcgo.RunConfig{Output: os.Stdout})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nchecks eliminated: %d, remaining: %d\n",
		res.Region.UncheckedPtrs,
		res.Region.SameChecks+res.Region.TradChecks+res.Region.ParentChecks)
	// Output:
	// 42
	// checks eliminated: 1, remaining: 0
}

// The ownership pipeline: acquire a region, build it through the owned
// fast path (no shared-counter synchronization per operation), hand the
// token to a consumer over a channel — the channel is the happens-before
// edge that publishes the owner-local state — and let the consumer
// delete the region through the token in one step.
func ExampleRegion_Acquire() {
	type msg struct {
		next rcgo.Ref[msg]
		data int
	}
	arena := rcgo.NewArena()
	handoff := make(chan *rcgo.Owner)
	done := make(chan bool)

	go func() { // consumer
		own := <-handoff
		n := rcgo.AllocOwned[msg](own) // still the owned fast path
		n.Value.data = 99
		done <- own.Delete() == nil
	}()

	r := arena.NewRegion() // producer: build while exclusively owned
	own := r.Acquire()
	var head *rcgo.Obj[msg]
	for i := 0; i < 3; i++ {
		n := rcgo.AllocOwned[msg](own)
		n.Value.data = i
		if err := rcgo.SetSameOwned(own, n, &n.Value.next, head); err != nil {
			panic(err)
		}
		head = n
	}
	for n := head; n != nil; n = n.Value.next.Get() {
		fmt.Print(n.Value.data, " ")
	}
	handoff <- own // transfer: the consumer now owns the region
	fmt.Println("deleted by consumer:", <-done)
	// Output: 2 1 0 deleted by consumer: true
}

// Subregions must be deleted before their parents, and parent references
// never cost reference-count traffic.
func Example_subregions() {
	type req struct{ parent rcgo.Ref[req] }
	arena := rcgo.NewArena()
	top := arena.NewRegion()
	sub := top.NewSubregion()
	p := rcgo.Alloc[req](top)
	c := rcgo.Alloc[req](sub)
	fmt.Println("up-link ok:", rcgo.SetParent(c, &c.Value.parent, p) == nil)
	fmt.Println("parent first:", top.Delete() != nil)
	fmt.Println("child first:", sub.Delete() == nil, top.Delete() == nil)
	// Output:
	// up-link ok: true
	// parent first: true
	// child first: true true
}
