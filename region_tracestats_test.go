package rcgo

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Ring wrap-around is observable: Dropped counts exactly the events
// overwritten, and TraceStats ties capacity/total/buffered together.
func TestRingTracerDropCount(t *testing.T) {
	a := NewArena()
	ring := NewRingTracer(16) // 16 is also the minimum capacity
	a.SetTracer(ring)
	defer a.SetTracer(nil)

	// Each NewRegion+Delete emits several lifecycle events; churn far
	// past the ring's capacity.
	for i := 0; i < 32; i++ {
		r := a.NewRegion()
		if err := r.Delete(); err != nil {
			t.Fatal(err)
		}
	}
	ts := ring.TraceStats()
	if ts.Capacity != 16 || ts.Buffered != 16 {
		t.Fatalf("TraceStats = %+v, want capacity 16 fully buffered", ts)
	}
	if ts.Dropped == 0 || ts.Dropped != ts.Total-uint64(ts.Buffered) {
		t.Fatalf("TraceStats = %+v, want Dropped = Total - Buffered > 0", ts)
	}
	if ring.Dropped() != ts.Dropped {
		t.Fatalf("Dropped() = %d, TraceStats.Dropped = %d", ring.Dropped(), ts.Dropped)
	}

	// A ring sized for the workload drops nothing.
	big := NewRingTracer(1024)
	a.SetTracer(big)
	for i := 0; i < 16; i++ {
		r := a.NewRegion()
		if err := r.Delete(); err != nil {
			t.Fatal(err)
		}
	}
	if d := big.Dropped(); d != 0 {
		t.Fatalf("adequately sized ring dropped %d events", d)
	}
}

// The drop count surfaces through every monitoring channel — the
// DebugHandler index and /counters JSON, and PublishExpvar — including
// when the RingTracer sits underneath a chained ZombieWatchdog
// (discovered via Unwrap).
func TestTraceStatsSurfaceInDebugAndExpvar(t *testing.T) {
	a := NewArena()
	ring := NewRingTracer(4)
	wd := NewZombieWatchdog(a, time.Hour, ring)
	a.SetTracer(wd)
	defer a.SetTracer(nil)

	for i := 0; i < 8; i++ {
		r := a.NewRegion()
		if err := r.Delete(); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(a.DebugHandler())
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if index := get("/"); !strings.Contains(index, "trace_dropped") {
		t.Errorf("index does not report trace drops:\n%s", index)
	}
	var doc struct {
		Trace *TraceStats `json:"trace"`
	}
	if err := json.Unmarshal([]byte(get("/counters")), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Trace == nil || doc.Trace.Dropped == 0 {
		t.Fatalf("/counters trace = %+v, want nonzero drops through the watchdog chain", doc.Trace)
	}

	const name = "rcgo.test.tracestats"
	if err := a.PublishExpvar(name); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Trace *TraceStats `json:"trace"`
	}
	if err := json.Unmarshal([]byte(expvar.Get(name).String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Trace == nil || snap.Trace.Dropped != doc.Trace.Dropped {
		t.Fatalf("expvar trace = %+v, want the same %d drops as /counters", snap.Trace, doc.Trace.Dropped)
	}

	// The /audit endpoint is mounted and clean on this healthy arena.
	var rep AuditReport
	if err := json.Unmarshal([]byte(get("/audit")), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.Violations == nil {
		t.Fatalf("/audit = %+v, want ok with non-null violations array", rep)
	}
}
