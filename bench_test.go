package rcgo

// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md's per-experiment index), plus ablation benchmarks for
// the design choices the runtime makes. Run with:
//
//	go test -bench=. -benchmem
//
// Workloads run at a reduced scale here so the full matrix stays fast;
// cmd/rcbench runs the full-scale versions and prints the paper-format
// tables.

import (
	"io"
	"testing"

	"rcgo/internal/mem"
	"rcgo/internal/region"
	"rcgo/internal/vm"
	"rcgo/internal/workloads"
)

const benchScaleDiv = 8

func compileWorkload(b *testing.B, name string, mode Mode) *Compiled {
	b.Helper()
	w := workloads.ByName(name)
	c, err := Compile(w.Source(w.DefaultScale/benchScaleDiv+1), mode)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func runBench(b *testing.B, c *Compiled, cfg RunConfig) *RunResult {
	b.Helper()
	cfg.Output = io.Discard
	var last *RunResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(c, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	return last
}

// BenchmarkTable1 measures each workload under the RC configuration and
// reports the Table 1 characteristics as metrics.
func BenchmarkTable1(b *testing.B) {
	for _, w := range workloads.All() {
		b.Run(w.Name, func(b *testing.B) {
			c := compileWorkload(b, w.Name, ModeInf)
			res := runBench(b, c, RunConfig{})
			b.ReportMetric(float64(res.Region.Allocs), "allocs")
			b.ReportMetric(float64(res.Region.AllocWords*8)/1024, "alloc-kB")
			b.ReportMetric(float64(res.Region.MaxLiveBytes)/1024, "maxuse-kB")
		})
	}
}

// BenchmarkFigure7 measures each workload under the five allocator
// configurations (C@, lea, GC, norc, RC).
func BenchmarkFigure7(b *testing.B) {
	cells := []struct {
		name string
		mode Mode
		cfg  RunConfig
	}{
		{"Cat", ModeNQ, RunConfig{CAtStyle: true}},
		{"lea", ModeNoRC, RunConfig{Backend: BackendMalloc}},
		{"GC", ModeNoRC, RunConfig{Backend: BackendGC}},
		{"norc", ModeNoRC, RunConfig{}},
		{"RC", ModeInf, RunConfig{}},
	}
	for _, w := range workloads.All() {
		for _, cell := range cells {
			b.Run(w.Name+"/"+cell.name, func(b *testing.B) {
				c := compileWorkload(b, w.Name, cell.mode)
				runBench(b, c, cell.cfg)
			})
		}
	}
}

// BenchmarkTable2 measures the three configurations Table 2 derives its
// overheads from (norc baseline, C@-style counting, RC counting).
func BenchmarkTable2(b *testing.B) {
	for _, w := range workloads.All() {
		b.Run(w.Name+"/norc", func(b *testing.B) {
			runBench(b, compileWorkload(b, w.Name, ModeNoRC), RunConfig{})
		})
		b.Run(w.Name+"/cat", func(b *testing.B) {
			runBench(b, compileWorkload(b, w.Name, ModeNQ), RunConfig{CAtStyle: true})
		})
		b.Run(w.Name+"/rc", func(b *testing.B) {
			c := compileWorkload(b, w.Name, ModeInf)
			res := runBench(b, c, RunConfig{})
			b.ReportMetric(float64(res.Region.UnscanWords), "unscan-words")
		})
	}
}

// BenchmarkFigure8 measures each workload under nq / qs / inf / nc and
// reports the deterministic barrier cost (the paper's instruction-count
// model) as a metric.
func BenchmarkFigure8(b *testing.B) {
	for _, w := range workloads.All() {
		for _, mode := range []Mode{ModeNQ, ModeQS, ModeInf, ModeNC} {
			b.Run(w.Name+"/"+string(mode), func(b *testing.B) {
				c := compileWorkload(b, w.Name, mode)
				res := runBench(b, c, RunConfig{})
				b.ReportMetric(float64(res.Region.Cost), "cost-units")
			})
		}
	}
}

// BenchmarkFigure9 reports the runtime pointer-assignment category
// percentages under the inf configuration.
func BenchmarkFigure9(b *testing.B) {
	for _, w := range workloads.All() {
		b.Run(w.Name, func(b *testing.B) {
			c := compileWorkload(b, w.Name, ModeInf)
			res := runBench(b, c, RunConfig{})
			s := res.Region
			total := s.UncheckedPtrs + s.SameChecks + s.TradChecks + s.ParentChecks + s.FullUpdates
			if total > 0 {
				b.ReportMetric(100*float64(s.UncheckedPtrs)/float64(total), "safe-%")
				b.ReportMetric(100*float64(s.SameChecks+s.TradChecks+s.ParentChecks)/float64(total), "checked-%")
				b.ReportMetric(100*float64(s.FullUpdates)/float64(total), "counted-%")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md Section 5).

// BenchmarkAblationPointerFree measures delete-time scanning with and
// without the pointer-free allocator split, on a workload that allocates
// many pointer-free objects (grobner's bignum digit arrays).
func BenchmarkAblationPointerFree(b *testing.B) {
	for _, split := range []struct {
		name    string
		disable bool
	}{{"split", false}, {"nosplit", true}} {
		b.Run(split.name, func(b *testing.B) {
			c := compileWorkload(b, "grobner", ModeInf)
			res := runBench(b, c, RunConfig{DisablePointerFree: split.disable})
			b.ReportMetric(float64(res.Region.UnscanWords), "unscan-words")
			b.ReportMetric(float64(res.Region.UnscanObjects), "unscan-objs")
		})
	}
}

// BenchmarkAblationParentCheck compares the depth-first-numbering
// parentptr check against walking the parent chain, on the apache
// workload (the parentptr-heavy one).
func BenchmarkAblationParentCheck(b *testing.B) {
	for _, v := range []struct {
		name string
		walk bool
	}{{"numbering", false}, {"walk", true}} {
		b.Run(v.name, func(b *testing.B) {
			c := compileWorkload(b, "apache", ModeQS)
			runBench(b, c, RunConfig{ParentCheckByWalk: v.walk})
		})
	}
}

// BenchmarkAblationLocalPins compares RC's pin-at-deletes-calls protocol
// against C@'s stack scan at deleteregion, isolating the locals strategy
// (both run full counting with annotations ignored).
func BenchmarkAblationLocalPins(b *testing.B) {
	b.Run("pins", func(b *testing.B) {
		runBench(b, compileWorkload(b, "apache", ModeNQ), RunConfig{})
	})
	b.Run("stackscan", func(b *testing.B) {
		runBench(b, compileWorkload(b, "apache", ModeNQ), RunConfig{CAtStyle: true})
	})
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the runtime primitives (the paper's Figure 3
// operations).

func benchRuntime(b *testing.B) (*region.Runtime, region.TypeID, mem.Addr, mem.Addr, mem.Addr) {
	b.Helper()
	rt := region.NewRuntime(region.Config{})
	node := rt.RegisterType(region.TypeDesc{
		Name: "node", Size: 2,
		CountedOffsets: []uint64{0}, AllPtrOffsets: []uint64{0, 1},
	})
	r1 := rt.NewRegion()
	r2 := rt.NewRegion()
	holder := r1.Alloc(node)
	sameVal := r1.Alloc(node)
	crossVal := r2.Alloc(node)
	return rt, node, holder, sameVal, crossVal
}

func BenchmarkStoreFullUpdate(b *testing.B) {
	rt, _, holder, same, cross := benchRuntime(b)
	vals := [2]mem.Addr{same, cross}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.StorePtr(holder, vals[i&1])
	}
}

func BenchmarkStoreSameCheck(b *testing.B) {
	rt, _, holder, same, _ := benchRuntime(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.StoreSameRegion(holder.Add(1), same)
	}
}

func BenchmarkStoreParentCheck(b *testing.B) {
	rt, _, holder, same, _ := benchRuntime(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.StoreParentPtr(holder.Add(1), same)
	}
}

func BenchmarkStoreUnchecked(b *testing.B) {
	rt, _, holder, same, _ := benchRuntime(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.StoreUnchecked(holder.Add(1), same)
	}
}

func BenchmarkRegionAlloc(b *testing.B) {
	rt := region.NewRuntime(region.Config{})
	node := rt.RegisterType(region.TypeDesc{Name: "node", Size: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%10000 == 0 {
			b.StopTimer()
			rt = region.NewRuntime(region.Config{})
			node = rt.RegisterType(region.TypeDesc{Name: "node", Size: 4})
			b.StartTimer()
		}
		r := rt.NewRegion()
		for j := 0; j < 100; j++ {
			r.Alloc(node)
		}
		rt.DeleteRegion(r)
	}
}

// BenchmarkInference measures the constraint inference itself over the
// largest workload source (the paper: "the largest analysis time on any
// file in our benchmarks is 30s ... less than 1s for 96% of files").
func BenchmarkInference(b *testing.B) {
	w := workloads.ByName("lcc")
	src := w.Source(1)
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src, ModeInf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGoNativeAPI measures the Go-native region layer.
func BenchmarkGoNativeAPI(b *testing.B) {
	type node struct {
		next Ref[node]
	}
	b.Run("alloc+link", func(b *testing.B) {
		a := NewArena()
		r := a.NewRegion()
		var prev *Obj[node]
		for i := 0; i < b.N; i++ {
			if i%100000 == 0 {
				b.StopTimer()
				prev = nil
				if i > 0 {
					if err := r.Delete(); err != nil {
						b.Fatal(err)
					}
				}
				r = a.NewRegion()
				b.StartTimer()
			}
			n := Alloc[node](r)
			_ = SetSame(n, &n.Value.next, prev)
			prev = n
		}
	})
	b.Run("counted-store", func(b *testing.B) {
		a := NewArena()
		r1 := a.NewRegion()
		r2 := a.NewRegion()
		h := Alloc[node](r1)
		v1 := Alloc[node](r1)
		v2 := Alloc[node](r2)
		vals := [2]*Obj[node]{v1, v2}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MustSetRef(h, &h.Value.next, vals[i&1])
		}
	})
}

// ---------------------------------------------------------------------------
// Parallel benchmarks of the concurrent Go-native runtime (run with
// -cpu 1,2,4,... to see scaling). The paper's key cost claim must
// survive concurrency: annotated stores are check-only and write no
// shared cache line, so BenchmarkParallelSetSame scales linearly with
// GOMAXPROCS, while the counted stores of BenchmarkParallelSetRef all
// update one target region's reference count and contend.

type parNode struct {
	next  Ref[parNode] // sameregion link
	cross Ref[parNode] // counted link
	conf  Ref[parNode] // traditional link
	up    Ref[parNode] // parentptr link
}

// benchParallelAlloc is the shared body of the parallel allocation
// benchmarks: every P allocates into its own region (the webserver
// pattern of a region per request), optionally linking each object to
// the previous one with an annotated sameregion store, recycling the
// region every 8192 allocations. cache selects the allocation fast path
// (region_alloccache.go) or the pre-cache slow path — compare the pairs
// at -cpu 8 for the ablation (cmd/rcbench -alloc-ab runs the same A/B
// interleaved).
func benchParallelAlloc(b *testing.B, cache, link bool) {
	a := NewArena(WithAllocCache(cache))
	b.RunParallel(func(pb *testing.PB) {
		r := a.NewRegion()
		var prev *Obj[parNode]
		n := 0
		for pb.Next() {
			o := Alloc[parNode](r)
			if link {
				MustSetSame(o, &o.Value.next, prev)
				prev = o
			}
			if n++; n == 8192 {
				prev = nil
				if err := r.Delete(); err != nil {
					b.Error(err)
					return
				}
				r = a.NewRegion()
				n = 0
			}
		}
		if err := r.Delete(); err != nil {
			b.Error(err)
		}
	})
}

// BenchmarkParallelAlloc allocates from every P into its own region —
// the webserver pattern of a region per request.
func BenchmarkParallelAlloc(b *testing.B) { benchParallelAlloc(b, true, false) }

// BenchmarkParallelAllocNoCache is BenchmarkParallelAlloc down the
// pre-cache slow path (per-object lifecycle mutex + direct shared
// counter updates), the allocation fast path's ablation baseline.
func BenchmarkParallelAllocNoCache(b *testing.B) { benchParallelAlloc(b, false, false) }

// BenchmarkParallelAllocSetSame interleaves each allocation with an
// annotated sameregion store — the paper's cheap-pointer pattern riding
// on the allocation fast path.
func BenchmarkParallelAllocSetSame(b *testing.B) { benchParallelAlloc(b, true, true) }

// BenchmarkParallelAllocSetSameNoCache is the slow-path ablation of
// BenchmarkParallelAllocSetSame.
func BenchmarkParallelAllocSetSameNoCache(b *testing.B) { benchParallelAlloc(b, false, true) }

// BenchmarkParallelSetSame: every P runs annotated stores against its
// own objects inside one shared region. No shared cache line is written,
// so ns/op should hold steady (scale linearly) as GOMAXPROCS grows.
func BenchmarkParallelSetSame(b *testing.B) {
	a := NewArena()
	r := a.NewRegion()
	b.RunParallel(func(pb *testing.PB) {
		h := Alloc[parNode](r)
		v := Alloc[parNode](r)
		for pb.Next() {
			MustSetSame(h, &h.Value.next, v)
		}
	})
}

// BenchmarkParallelSetSameMetrics is BenchmarkParallelSetSame with the
// cumulative arena counters enabled (EnableMetrics): the annotated
// store additionally bumps one per-shard atomic counter. Compare the two
// at -cpu 1,2,4,8 to measure the metrics overhead; with metrics left
// disabled (the default) the instrumentation is a single pointer load
// and never-taken branch, which is what keeps SetSame within the noise
// of the uninstrumented baseline.
func BenchmarkParallelSetSameMetrics(b *testing.B) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	b.RunParallel(func(pb *testing.PB) {
		h := Alloc[parNode](r)
		v := Alloc[parNode](r)
		for pb.Next() {
			MustSetSame(h, &h.Value.next, v)
		}
	})
}

// BenchmarkParallelSetSameAdvisor is BenchmarkParallelSetSame with the
// annotation advisor armed (WithAdvisor): every store additionally pays
// runtime.Callers plus a sharded table hit. Compare against
// BenchmarkParallelSetSame for the armed cost; the disarmed cost is the
// baseline itself (one pointer load and never-taken branch on the same
// cached gate the metrics use).
func BenchmarkParallelSetSameAdvisor(b *testing.B) {
	a := NewArena(WithAdvisor())
	r := a.NewRegion()
	b.RunParallel(func(pb *testing.PB) {
		h := Alloc[parNode](r)
		v := Alloc[parNode](r)
		for pb.Next() {
			MustSetSame(h, &h.Value.next, v)
		}
	})
}

// BenchmarkParallelSetTrad: annotated traditional stores from every P
// into the arena's traditional region. Check-only, like SetSame.
func BenchmarkParallelSetTrad(b *testing.B) {
	a := NewArena()
	r := a.NewRegion()
	conf := Alloc[parNode](a.Traditional())
	b.RunParallel(func(pb *testing.PB) {
		h := Alloc[parNode](r)
		for pb.Next() {
			MustSetTrad(h, &h.Value.conf, conf)
		}
	})
}

// BenchmarkParallelSetTradMetrics is the counters-enabled variant.
func BenchmarkParallelSetTradMetrics(b *testing.B) {
	a := NewArena(WithMetrics())
	r := a.NewRegion()
	conf := Alloc[parNode](a.Traditional())
	b.RunParallel(func(pb *testing.PB) {
		h := Alloc[parNode](r)
		for pb.Next() {
			MustSetTrad(h, &h.Value.conf, conf)
		}
	})
}

// BenchmarkParallelSetParent: annotated parentptr stores from objects in
// a shared subregion up to an object in the parent. Check-only; the
// ancestry walk is over immutable parent pointers.
func BenchmarkParallelSetParent(b *testing.B) {
	a := NewArena()
	parent := a.NewRegion()
	up := Alloc[parNode](parent)
	sub := parent.NewSubregion()
	b.RunParallel(func(pb *testing.PB) {
		h := Alloc[parNode](sub)
		for pb.Next() {
			MustSetParent(h, &h.Value.up, up)
		}
	})
}

// BenchmarkParallelSetParentMetrics is the counters-enabled variant.
func BenchmarkParallelSetParentMetrics(b *testing.B) {
	a := NewArena(WithMetrics())
	parent := a.NewRegion()
	up := Alloc[parNode](parent)
	sub := parent.NewSubregion()
	b.RunParallel(func(pb *testing.PB) {
		h := Alloc[parNode](sub)
		for pb.Next() {
			MustSetParent(h, &h.Value.up, up)
		}
	})
}

// BenchmarkParallelSetRef: every P stores counted references to one
// shared region from its own holder, so all Ps contend on the target's
// atomic reference count — the cost the annotations exist to avoid.
func BenchmarkParallelSetRef(b *testing.B) {
	a := NewArena()
	shared := a.NewRegion()
	target := Alloc[parNode](shared)
	b.RunParallel(func(pb *testing.PB) {
		h := Alloc[parNode](a.NewRegion())
		clear := false
		for pb.Next() {
			if clear {
				MustSetRef(h, &h.Value.cross, nil)
			} else {
				MustSetRef(h, &h.Value.cross, target)
			}
			clear = !clear
		}
	})
}

// BenchmarkParallelSetRefAdvisor is BenchmarkParallelSetRef with the
// annotation advisor armed. Every P's holder lives in its own region
// and the target is shared, so the advisor classifies the site as a
// keeper (no cheaper flavour is legal) while still paying the full
// profiling cost — the worst case for an armed contended store.
func BenchmarkParallelSetRefAdvisor(b *testing.B) {
	a := NewArena(WithAdvisor())
	shared := a.NewRegion()
	target := Alloc[parNode](shared)
	b.RunParallel(func(pb *testing.PB) {
		h := Alloc[parNode](a.NewRegion())
		clear := false
		for pb.Next() {
			if clear {
				MustSetRef(h, &h.Value.cross, nil)
			} else {
				MustSetRef(h, &h.Value.cross, target)
			}
			clear = !clear
		}
	})
}

// BenchmarkParallelPin measures the pin/unpin pair against a shared
// region (contended, like SetRef: pins are counted references).
func BenchmarkParallelPin(b *testing.B) {
	a := NewArena()
	r := a.NewRegion()
	o := Alloc[parNode](r)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			Pin(o)()
		}
	})
}

var _ = vm.Config{} // keep the import for test helpers in other files
