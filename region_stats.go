package rcgo

// Snapshot-consistent statistics for the concurrent Go-native runtime.
// The scalar accessors (RC, Pins, …) are lock-free (Objects and the
// arena-wide readers additionally fold in or drain the allocation
// fast path's batched deltas, region_alloccache.go); the Stats methods
// take the lifecycle lock so the state word cannot change mid-snapshot
// and re-read the reference count until it is stable, so a snapshot
// never pairs a pre-delete count with a post-delete state.

// RegionStats is a consistent snapshot of one region's counters.
type RegionStats struct {
	// ID is the region's arena-unique id.
	ID int64
	// RC is the external reference count, including pins.
	RC int64
	// Pins is the pin subset of RC.
	Pins int64
	// Objects is the number of live objects in the region.
	Objects int64
	// Subregions is the number of live child regions.
	Subregions int64
	// Deferred reports a DeleteDeferred region awaiting reclaim.
	Deferred bool
	// Deleted reports a region that is deleted (deferred or reclaimed).
	Deleted bool
	// Reclaimed reports that the region's storage has been released.
	Reclaimed bool
	// Owned reports a region that is exclusively owned through an Owner
	// token (region_owner.go). Its Objects field excludes the token's
	// unflushed owner-local allocations, which become visible at Release.
	Owned bool
}

// statsRCRetries bounds the Stats re-read loop. Holding mu freezes the
// state word, so the retries only chase a stable rc reading for a nicer
// point-in-time pairing of rc with the other counters; on an alive
// region rc is inherently concurrent and any single read is a valid
// linearized value. An unbounded loop would let a hot mutator (a tight
// pin/unpin or counted-store loop) livelock a stats reader — the bound
// guarantees Stats returns after at most a handful of reads
// (TestStatsNoLivelockUnderHotRC).
const statsRCRetries = 3

// Stats returns a consistent snapshot of the region's counters: the
// state flags can never be paired with a reference count from the other
// side of a delete, because all state transitions hold mu. Stats is a
// flush point for the allocation fast path (region_alloccache.go): the
// batched per-shard deltas drain into objs under mu first, so the
// Objects field is exact whenever the region is quiescent.
func (r *Region) Stats() RegionStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushAllocPendingLocked()
	for attempt := 0; ; attempt++ {
		rc := r.rc.Load()
		st := RegionStats{
			ID:         r.id,
			RC:         rc,
			Pins:       r.pins.Load(),
			Objects:    r.objs.Load(),
			Subregions: r.children.Load(),
		}
		switch r.state.Load() { // stable: transitions hold mu
		case stateZombie:
			st.Deferred, st.Deleted = true, true
		case stateDead:
			st.Deleted, st.Reclaimed = true, true
		case stateOwned:
			st.Owned = true
		}
		if r.rc.Load() == rc || attempt >= statsRCRetries {
			return st
		}
	}
}

// RC returns the current external reference count (including pins).
func (r *Region) RC() int64 { return r.rc.Load() }

// Pins returns the number of live pins on the region.
func (r *Region) Pins() int64 { return r.pins.Load() }

// Objects returns the number of live objects in the region: the flushed
// counter plus the allocation deltas still parked in the region's shard
// cache. Lock-free; concurrent allocations make it a momentary
// approximation, quiescence makes it exact (like every other counter).
func (r *Region) Objects() int64 {
	n := r.objs.Load()
	// A deleted region's shards hold at most failed-admission residue
	// (which nets to zero against already-drained halves), never objects,
	// so only an alive (or owned — same argument, late shared admissions
	// only) region adds its pending deltas. An owned region's unflushed
	// owner-local allocations are not included; they land at Release.
	if c := r.acache.Load(); c != nil {
		if s := r.settled(); s == stateAlive || s == stateOwned {
			n += c.sum()
		}
	}
	return n
}

// Deleted reports whether the region has been deleted (explicitly, or
// deferred and awaiting reclaim). An exclusively owned region is not
// deleted.
func (r *Region) Deleted() bool {
	s := r.settled()
	return s == stateZombie || s == stateDead
}

// Deferred reports whether the region is deferred-deleted and awaiting
// reclaim.
func (r *Region) Deferred() bool { return r.settled() == stateZombie }

// ArenaStats is a snapshot of arena-wide counters, aggregated across
// the fabric shards (region_fabric.go). Each field is the sum of the
// per-shard slices, each of which is maintained at the same program
// points the pre-fabric arena-wide counter was — so the aggregate keeps
// the exact-at-quiesce contract, while a concurrent snapshot reads the
// shards at slightly different instants (like every other live read).
type ArenaStats struct {
	// LiveObjects is the number of live objects across all regions.
	LiveObjects int64 `json:"live_objects"`
	// RegionsCreated is the total number of regions ever created
	// (including the traditional region), summed over the shards' id
	// sequences.
	RegionsCreated int64 `json:"regions_created"`
	// LiveRegions is the number of regions currently alive (including
	// the traditional region). Updated at the same point as every
	// lifecycle state transition, so once the arena quiesces
	// LiveRegions + DeferredRegions + reclaimed == RegionsCreated.
	LiveRegions int64 `json:"live_regions"`
	// DeferredRegions is the number of deferred-deleted (zombie)
	// regions still awaiting reclaim.
	DeferredRegions int64 `json:"deferred_regions"`
	// OwnedRegions is the number of regions currently held through an
	// Owner token (region_owner.go). Owned regions also count in
	// LiveRegions — ownership is a mode of being alive.
	OwnedRegions int64 `json:"owned_regions"`
	// Shards is the arena's fabric width (Arena.Shards): a constant,
	// carried here so monitoring snapshots are self-describing.
	Shards int `json:"shards"`
	// SlabPages / SlabBytes are the backing store's in-use pages and
	// bytes (region_slab.go) — payload memory currently carved out for
	// live regions' object chunks, returned at reclaim. Zero without a
	// backing store; exact at quiesce like every other counter (the
	// auditor's slab-pages-total rule cross-checks it against the
	// per-region page lists).
	SlabPages int64 `json:"slab_pages,omitempty"`
	SlabBytes int64 `json:"slab_bytes,omitempty"`
}

// Stats returns a snapshot of the arena-wide counters. It first drains
// every region's batched allocation deltas (region_alloccache.go) so
// LiveObjects is exact on a quiesced arena; the sweep locks regions one
// at a time, like the debug inspector's walks.
func (a *Arena) Stats() ArenaStats {
	a.flushAllocPending()
	st := ArenaStats{Shards: len(a.shards)}
	for i := range a.shards {
		sh := &a.shards[i]
		st.LiveObjects += sh.liveObjs.Load()
		st.RegionsCreated += sh.nextSeq.Load()
		st.LiveRegions += sh.liveRegions.Load()
		st.DeferredRegions += sh.deferredRegions.Load()
		st.OwnedRegions += sh.ownedRegions.Load()
	}
	if a.backing != nil {
		ss := a.backing.Stats()
		st.SlabPages = ss.InUsePages
		st.SlabBytes = ss.InUseBytes
	}
	return st
}

// LiveRegions returns the number of regions currently alive, including
// the traditional region.
func (a *Arena) LiveRegions() int64 {
	var n int64
	for i := range a.shards {
		n += a.shards[i].liveRegions.Load()
	}
	return n
}

// DeferredRegions returns the number of zombie regions awaiting
// deferred reclaim.
func (a *Arena) DeferredRegions() int64 {
	var n int64
	for i := range a.shards {
		n += a.shards[i].deferredRegions.Load()
	}
	return n
}

// OwnedRegions returns the number of regions currently held through an
// Owner token (region_owner.go).
func (a *Arena) OwnedRegions() int64 {
	var n int64
	for i := range a.shards {
		n += a.shards[i].ownedRegions.Load()
	}
	return n
}

// AcquireWaiters returns the number of AcquireContext contenders
// currently parked on wait queues across the arena (region_owner.go).
// Zero at quiesce: every waiter eventually receives a hand-off, is
// failed by its region's death, or removes itself on cancellation.
func (a *Arena) AcquireWaiters() int64 {
	var n int64
	for i := range a.shards {
		n += a.shards[i].acquireWaiters.Load()
	}
	return n
}

// LiveObjects returns the number of live objects across the arena,
// draining the batched allocation deltas first (exact at quiesce, like
// Stats).
func (a *Arena) LiveObjects() int64 {
	a.flushAllocPending()
	var n int64
	for i := range a.shards {
		n += a.shards[i].liveObjs.Load()
	}
	return n
}
