package rcgo

import (
	"sync"
	"testing"

	"rcgo/internal/failpoint"
)

type auditNode struct {
	Next Ref[auditNode]
}

// A healthy arena with every structure populated — a region tree,
// objects, counted cross-region references, pins and a live zombie —
// audits clean.
func TestAuditCleanArena(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	sub := r.NewSubregion()
	target := a.NewRegion()

	holder := Alloc[auditNode](r)
	to := Alloc[auditNode](target)
	if err := SetRef(holder, &holder.Value.Next, to); err != nil {
		t.Fatal(err)
	}
	unpin := Pin(Alloc[auditNode](sub))
	zombie := a.NewRegion()
	zUnpin := Pin(Alloc[auditNode](zombie))
	zombie.DeleteDeferred()

	rep := a.Audit()
	if !rep.OK {
		t.Fatalf("audit of healthy arena: %s", rep)
	}
	if rep.RegionsScanned < 5 { // trad + r + sub + target + zombie
		t.Errorf("RegionsScanned = %d, want >= 5", rep.RegionsScanned)
	}
	if rep.SlotsScanned == 0 {
		t.Error("SlotsScanned = 0, want the counted slot scanned")
	}

	unpin()
	zUnpin()
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit after teardown: %s", rep)
	}
}

// Each corruption test damages one piece of bookkeeping directly (the
// auditor exists to catch runtime bugs, so the tests play the bug) and
// requires the matching rule to fire.
func TestAuditDetectsCorruption(t *testing.T) {
	violated := func(t *testing.T, a *Arena, rule string) AuditViolation {
		t.Helper()
		rep := a.Audit()
		if rep.OK {
			t.Fatalf("audit clean, want %s violation", rule)
		}
		for _, v := range rep.Violations {
			if v.Rule == rule {
				return v
			}
		}
		t.Fatalf("no %s violation in: %s", rule, rep)
		return AuditViolation{}
	}

	t.Run(AuditNegativeCounter, func(t *testing.T) {
		a := NewArena()
		r := a.NewRegion()
		r.pins.Add(-1)
		violated(t, a, AuditNegativeCounter)
	})
	t.Run(AuditPinsExceedRC, func(t *testing.T) {
		a := NewArena()
		r := a.NewRegion()
		r.pins.Add(1)
		v := violated(t, a, AuditPinsExceedRC)
		if v.Region != r.ID() {
			t.Errorf("violation names region %d, want %d", v.Region, r.ID())
		}
	})
	t.Run(AuditRCAccounting, func(t *testing.T) {
		a := NewArena()
		r := a.NewRegion()
		r.rc.Add(1) // a reference no pin or slot accounts for
		v := violated(t, a, AuditRCAccounting)
		if v.Got != 1 || v.Want != 0 {
			t.Errorf("got/want = %d/%d, want 1/0", v.Got, v.Want)
		}
	})
	t.Run(AuditChildrenCount, func(t *testing.T) {
		a := NewArena()
		r := a.NewRegion()
		r.children.Add(1)
		violated(t, a, AuditChildrenCount)
	})
	t.Run(AuditParentDead, func(t *testing.T) {
		a := NewArena()
		r := a.NewRegion()
		_ = r.NewSubregion()
		// Reclaim the parent out from under the child.
		r.state.Store(stateDead)
		a.unregister(r.id)
		violated(t, a, AuditParentDead)
	})
	t.Run(AuditDeadInRegistry, func(t *testing.T) {
		a := NewArena()
		r := a.NewRegion()
		r.state.Store(stateDead) // reclaimed but never unregistered
		violated(t, a, AuditDeadInRegistry)
	})
	t.Run(AuditSlotIntoDead, func(t *testing.T) {
		a := NewArena()
		holder := Alloc[auditNode](a.NewRegion())
		target := a.NewRegion()
		to := Alloc[auditNode](target)
		if err := SetRef(holder, &holder.Value.Next, to); err != nil {
			t.Fatal(err)
		}
		target.state.Store(stateDead) // dangling registered slot
		violated(t, a, AuditSlotIntoDead)
	})
	t.Run(AuditLiveRegionsTotal, func(t *testing.T) {
		a := NewArena()
		a.shards[0].liveRegions.Add(1)
		violated(t, a, AuditLiveRegionsTotal)
	})
	t.Run(AuditDeferredRegionsTotal, func(t *testing.T) {
		a := NewArena()
		a.shards[0].deferredRegions.Add(1)
		violated(t, a, AuditDeferredRegionsTotal)
	})
	t.Run(AuditLiveObjectsTotal, func(t *testing.T) {
		a := NewArena()
		a.shards[0].liveObjs.Add(1)
		violated(t, a, AuditLiveObjectsTotal)
	})
	t.Run(AuditAcquireWaitersTotal, func(t *testing.T) {
		a := NewArena()
		a.shards[0].acquireWaiters.Add(1) // gauge with no parked waiter behind it
		violated(t, a, AuditAcquireWaitersTotal)
	})
	t.Run(AuditWaitersOnUnowned, func(t *testing.T) {
		a := NewArena()
		r := a.NewRegion()
		// A waiter parked on a region that is not owned can never be
		// woken: plant one directly to simulate the lost hand-off.
		r.mu.Lock()
		r.waitq = append(r.waitq, &acquireWaiter{ready: make(chan handoff, 1)})
		r.mu.Unlock()
		r.shard.acquireWaiters.Add(1) // keep the gauge consistent
		v := violated(t, a, AuditWaitersOnUnowned)
		if v.Region != r.ID() {
			t.Errorf("violation names region %d, want %d", v.Region, r.ID())
		}
	})
}

// A drain suppressed by the zombie.drain failpoint leaves a fully
// drained zombie behind: the audit reports it, and SweepZombies heals
// it back to a clean report.
func TestAuditZombieReclaimableAndSweep(t *testing.T) {
	defer failpoint.DisableAll()
	a := NewArena()
	r := a.NewRegion()
	unpin := Pin(Alloc[auditNode](r))
	r.DeleteDeferred()

	if err := failpoint.Enable("rcgo/zombie.drain", failpoint.Rule{Action: failpoint.ActionError}); err != nil {
		t.Fatal(err)
	}
	unpin() // the drain this would trigger is dropped on the floor
	failpoint.DisableAll()

	rep := a.Audit()
	found := false
	for _, v := range rep.Violations {
		if v.Rule == AuditZombieReclaimable && v.Region == r.ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no zombie-reclaimable violation for region %d in: %s", r.ID(), rep)
	}

	if n := a.SweepZombies(); n != 1 {
		t.Fatalf("SweepZombies = %d, want 1", n)
	}
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("audit after sweep: %s", rep)
	}
	if got := a.Stats().DeferredRegions; got != 0 {
		t.Fatalf("DeferredRegions = %d, want 0", got)
	}
}

// Audit is safe to run concurrently with a mutating workload (the
// exactness contract only holds quiesced, but the scan itself must
// never crash, deadlock, or trip the race detector).
func TestAuditSafeUnderChurn(t *testing.T) {
	a := NewArena()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := a.NewRegion()
				o := Alloc[auditNode](r)
				if unpin, err := TryPin(o); err == nil {
					unpin()
				}
				if i%3 == seed%3 {
					r.DeleteDeferred()
				} else if err := r.Delete(); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		a.Audit() // advisory under load; must simply survive
	}
	close(stop)
	wg.Wait()
	a.SweepZombies()
	if rep := a.Audit(); !rep.OK {
		t.Fatalf("quiesced audit after churn: %s", rep)
	}
}
