package rcgo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// Exclusive region ownership (DESIGN.md §14): the regions-as-locks idea
// of Gerakios et al. ported onto the concurrent runtime. A goroutine
// that holds a region's Owner token has exclusive mutation rights to
// it, and the owned operations (AllocOwned, SetRefOwned, SetSameOwned,
// SetTradOwned, SetParentOwned) exploit that exclusivity: bookkeeping
// that the shared paths maintain with atomics and shard locks is kept
// in plain owner-local fields on the token and flushed to the shared
// counters at Release. The common pipeline pattern — build a region on
// one goroutine, hand it through a channel, let the consumer delete it
// — pays near-zero synchronization per operation.
//
// The owned-state machine. Acquire transitions a region stateAlive →
// stateOwned under the lifecycle mutex; Release transitions it back.
// stateOwned is a settled state (unlike the transient stateDying):
// shared-path observers do not wait it out, they fail fast with
// ErrRegionOwned — allocation, subregion creation, pins, new inbound
// counted references, stores whose holder lives in the owned region,
// and Delete are all rejected while the region is owned. Two things
// remain possible from outside: releasing *pre-existing* references
// (decRC — unpin, clearing a counted slot in some other region that
// points here) and reading (Stats, Hierarchy, Audit — all atomic or
// mu-protected state only). A dying, zombie or dead region cannot be
// acquired, and an owned region cannot be deleted or deferred except
// through its token (Owner.Delete).
//
// Contended acquisition (DESIGN.md §15). TryAcquire is non-blocking by
// design — a contender gets ErrRegionOwned and decides its own retry
// policy — but a caller that *wants* the token needs acquisition that
// queues instead of spinning. AcquireContext parks the contender on a
// per-region FIFO wait queue (guarded by r.mu, like every lifecycle
// decision): Release pops the queue head and hands it a fresh token
// directly, without the region ever passing through stateAlive, so
// there is no thundering herd and no barn door for a third party to
// steal the region through. Cancellation and deadlines remove the
// parked waiter from the queue without leaking its slot; a region that
// dies while waiters are parked (Owner.Delete) fails them all with
// ErrRegionDeleted. A stalled owner is the OwnerWatchdog's business
// (region_watchdog.go): it can forcibly revoke the stale token
// (ErrOwnerRevoked) and push the queue forward.
//
// Why the owner may use plain (non-atomic) loads and stores. Four
// hazards have to be excluded:
//
//  1. In-flight shared stores at Acquire time. A shared SetRef that
//     passed its state check before the stateOwned transition may still
//     be mid-critical-section on one of the region's slot-registry
//     shards. Acquire therefore performs a barrier sweep after the
//     transition: it locks and releases every slot shard once. Any
//     store that read stateAlive is inside its shard critical section
//     and completes before the sweep passes that shard; any store that
//     takes a shard lock after the sweep re-reads the state inside the
//     lock (SetRef checks settled() under the shard mutex) and fails
//     with ErrRegionOwned. After Acquire returns, no shared-path store
//     can touch the region's slots, and the sweep's lock/unlock pairs
//     give the acquiring goroutine a happens-before edge over every
//     prior registration — so the owner's plain reads of slot
//     bookkeeping (Ref.registered) observe fully-written values.
//  2. Concurrent readers while owned. Stats/Audit/Hierarchy read only
//     atomics (or take mu, which the owner's fast paths never hold), so
//     the owner keeps its *new* state in plain fields those readers
//     never touch: object-count and metric deltas live on the token,
//     newly counted slots are parked on the token instead of the shared
//     registry. The one shared word the owner still writes per store is
//     the slot's atomic target pointer — debug scans (targetRegion) and
//     the delete-time unscan read it concurrently, and an atomic store
//     on x86/arm64 costs the same as a plain one, so nothing is lost.
//  3. Token transfer between goroutines. The token is not itself
//     synchronized: it must be used by one goroutine at a time, and
//     handing it to another goroutine must happen through a
//     synchronization edge — a channel send/receive, a mutex, a
//     sync.WaitGroup. That edge is the standard Go memory-model
//     happens-before that publishes the token's plain fields to the
//     receiver, exactly as for any other Go value. Release is the final
//     edge: every owner-local write precedes the flush, the flush
//     happens under r.mu, and any later shared-path operation that
//     observes stateAlive synchronizes with Release through that mutex
//     and the state atomic.
//  4. Waiter wake vs the flush window. A direct hand-off never returns
//     the region to stateAlive, so hazard 3's "later shared-path
//     operation observes stateAlive" edge never forms — the successor
//     needs its own publication edge over the old owner's plain writes
//     (the flushed counters, the slot registrations merged under the
//     registry shard locks, Ref.registered flags written plain). That
//     edge is the hand-off channel itself: the old owner flushes under
//     r.mu, releases the mutex, and only then sends the successor
//     token on the waiter's buffered channel, so every owner-local
//     write (and the flush that merged it) is sequenced before the
//     send, and the receive in AcquireContext happens-before every
//     owned operation the successor performs. The successor also skips
//     the Acquire barrier sweep: the region never left stateOwned, so
//     no shared-path store can have slipped in for the sweep to wait
//     out — the hand-off inherits the old owner's barrier.
//
// Flush-at-Release exactness: Release (and Owner.Delete) merges the
// owner-local deltas into the shared counters under r.mu before the
// region returns to the shared state, so every counter keeps the
// runtime-wide exact-at-quiesce contract — an arena in which every
// token has been released accounts for every owned-path operation, and
// the chaos ownership phase judges Counters().Allocs against
// worker-counted successes exactly. While a token is outstanding its
// unflushed deltas are invisible to Stats/Audit (both the per-region
// and the fabric-shard side miss them equally, so totals stay
// consistent); the audit's rc-accounting rule is advisory while any
// region is owned, because counted slots created through a token are
// merged into the scanned registry only at Release.
//
// The flush window carries the rcgo/own.release failpoint: an injected
// error is a transient release failure observed before anything is
// flushed — the region stays owned and the token stays valid, so the
// caller retries; perturbations (delay/yield) fire inside the window,
// under mu, stretching the interval the chaos phase races against.

// ErrRegionOwned is returned by shared-path operations that target a
// region while it is exclusively owned (Region.TryAcquire): allocation,
// subregion creation, pinning, deleting, creating an inbound counted
// reference, any Set* store whose holder lives in the owned region, and
// a second TryAcquire. The owner performs these through its token.
var ErrRegionOwned = errors.New("rcgo: region is exclusively owned")

// ErrNotOwner is returned by owned-path operations whose token has been
// released (or consumed by Owner.Delete), and by owned stores whose
// holder object does not live in the token's region.
var ErrNotOwner = errors.New("rcgo: operation requires the region's owner token")

// ErrOwnerRevoked is returned by every operation on an Owner token that
// the OwnerWatchdog's forced-release escape hatch has revoked
// (region_watchdog.go): the region has been handed onward — to the next
// parked waiter, or back to the shared state — and the stale token can
// never touch it again. Unflushed owner-local deltas on a revoked token
// are discarded, never merged (see revokeOwner).
var ErrOwnerRevoked = errors.New("rcgo: owner token was revoked")

// handoff is what a parked waiter receives when its turn comes: a fresh
// Owner token, or the error that ended the wait (the region died while
// the waiter was parked).
type handoff struct {
	o   *Owner
	err error
}

// acquirePCDepth is how many frames of the acquiring call stack are
// recorded per token, for the owner watchdog's stale-owner reports and
// the /owners inspector.
const acquirePCDepth = 3

// acquireWaiter is one parked AcquireContext contender on a region's
// FIFO wait queue (Region.waitq, guarded by r.mu). ready is buffered
// with capacity 1 so the hand-off side — Release, Owner.Delete's
// fail-the-queue sweep, the watchdog's revocation — never blocks on a
// waiter, even one that has already given up and is about to take
// delivery only to dispose of the token.
type acquireWaiter struct {
	ready chan handoff
	// pcs/npc record the waiter's own call stack at park time, so a
	// token minted by hand-off is attributed to the goroutine that
	// actually holds it, not to the releaser.
	pcs [acquirePCDepth]uintptr
	npc int
}

// ownerSlot is a counted slot registered while owned, parked on the
// token until Release merges it into the holder region's shared
// registry.
type ownerSlot struct {
	rel releaser
	p   unsafe.Pointer // the slot's address, for registry shard selection
}

// ownerCounters are the owner-local metric deltas, mirrored from
// counterShard and flushed into one shard at Release. Plain fields:
// only the owning goroutine touches them.
type ownerCounters struct {
	allocs        int64
	countedStores int64
	sameChecks    int64
	tradChecks    int64
	parentChecks  int64
	checkFailures int64
}

func (c *ownerCounters) any() bool {
	return c.allocs|c.countedStores|c.sameChecks|c.tradChecks|c.parentChecks|c.checkFailures != 0
}

// Owner is the transferable token of exclusive ownership over one
// region, returned by Region.TryAcquire. It must be used by one
// goroutine at a time; handing it to another goroutine must happen
// through a synchronization edge (typically a channel), which is what
// publishes its plain owner-local state to the receiver. The zero Owner
// is not valid.
type Owner struct {
	// r is the owned region; nil once the token has been released or
	// consumed by Owner.Delete.
	r *Region
	// objs is the owned-allocation count not yet flushed to r.objs and
	// the fabric shard's liveObjs.
	objs int64
	// m is the owner-local metric deltas.
	m ownerCounters
	// slots are counted slots first registered while owned, merged into
	// the shared registry at Release.
	slots []ownerSlot
	// revoked is set (exactly once, under r.mu) by the OwnerWatchdog's
	// forced release; every owned operation checks it first and fails
	// with ErrOwnerRevoked. It is the one atomic on the token — an
	// uncontended load on an owner-local cache line, so the owned fast
	// paths keep their plain-field cost story.
	revoked atomic.Bool
}

// Region returns the owned region, or nil after Release/Delete.
func (o *Owner) Region() *Region { return o.r }

// Owned reports whether the region is currently exclusively owned.
func (r *Region) Owned() bool { return r.settled() == stateOwned }

// storeBarrier locks and releases every slot-registry shard once. Called
// by TryAcquire after the stateOwned transition: every in-flight shared
// counted store holds its shard lock from state check to registration,
// so the sweep both waits those stores out and hands the acquiring
// goroutine a happens-before edge over all prior slot registrations.
func (r *Region) storeBarrier() {
	for i := range r.slots {
		sh := &r.slots[i]
		sh.mu.Lock()
		//lint:ignore SA2001 the empty critical section is the barrier
		sh.mu.Unlock()
	}
}

// Acquire takes exclusive ownership of the region, panicking on
// failure. It panics with ErrRegionOwned if another token already holds
// the region, with ErrRegionDeleted if the region has been deleted or
// deferred-deleted, and with a plain error on the traditional region
// (which is shared by construction and can never be owned). Use
// TryAcquire where a concurrent delete or a second acquirer may race,
// or AcquireContext to wait for the current owner's release.
func (r *Region) Acquire() *Owner {
	o, err := r.TryAcquire()
	if err != nil {
		panic(err)
	}
	return o
}

// TryAcquire takes exclusive ownership of the region, returning the
// transferable Owner token. It fails with ErrRegionOwned if the region
// is already owned, ErrRegionDeleted if it has been deleted or
// deferred-deleted, and an error on the traditional region (which is
// shared by construction). Pre-existing external references do not
// block acquisition — they may still be released (decRC) while the
// region is owned; only *new* references are rejected.
func (r *Region) TryAcquire() (*Owner, error) {
	if r == r.arena.trad {
		return nil, errors.New("rcgo: cannot acquire the traditional region")
	}
	r.mu.Lock()
	o, err := r.acquireLocked()
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	r.finishAcquire()
	return o, nil
}

// acquireLocked performs the alive → owned transition. The caller holds
// r.mu and, on success, must call finishAcquire after releasing it.
func (r *Region) acquireLocked() (*Owner, error) {
	switch r.state.Load() {
	case stateAlive:
	case stateOwned:
		return nil, fmt.Errorf("%w: Acquire of region %d", ErrRegionOwned, r.id)
	default: // dying cannot be observed under mu; zombie or dead
		return nil, fmt.Errorf("%w: Acquire of region %d", ErrRegionDeleted, r.id)
	}
	// Settle the batched allocation deltas so owner-local accounting
	// starts from flushed counters (late shared admissions that raced
	// the transition flush again at Release).
	r.flushAllocPendingLocked()
	o := &Owner{r: r}
	r.owner.Store(o)
	r.state.Store(stateOwned)
	r.shard.ownedRegions.Add(1)
	r.acquiredAt = time.Now()
	// Skip runtime.Callers, acquireLocked and its Try/AcquireContext
	// wrapper: the first recorded frame is the acquiring caller.
	r.acquirePCN = runtime.Callers(3, r.acquirePC[:])
	return o, nil
}

// finishAcquire is the out-of-mu tail of an uncontended acquire: the
// barrier sweep over the slot shards (hazard 1 in the file comment),
// the counter, and the trace event. A handed-off acquire does not come
// through here — it inherits the old owner's barrier (hazard 4) and
// counts/traces at the receive site.
func (r *Region) finishAcquire() {
	r.storeBarrier()
	if c := r.counters(); c != nil {
		c.acquires.Add(1)
	}
	r.arena.traceEvent(TraceRegionAcquired, r)
}

// AcquireContext takes exclusive ownership of the region, waiting for
// the current owner to release it. An uncontended call is TryAcquire
// with a context check; a contended call parks on the region's FIFO
// wait queue — no spinning, no thundering herd — until Owner.Release
// (or the watchdog's revocation) hands it a fresh token directly, the
// region dies (ErrRegionDeleted: an Owner.Delete failed the whole
// queue), or ctx ends. A cancelled or expired wait removes the waiter
// from the queue without leaking its slot and returns an error that
// wraps both ctx.Err() and ErrRegionOwned, so callers can test either
// with errors.Is; if the hand-off wins the race against cancellation,
// the delivered token is accounted (one acquire, one release) and
// immediately passed onward before the same error returns.
func (r *Region) AcquireContext(ctx context.Context) (*Owner, error) {
	if r == r.arena.trad {
		return nil, errors.New("rcgo: cannot acquire the traditional region")
	}
	if err := ctx.Err(); err != nil {
		return nil, r.acquireAbortErr(err)
	}
	r.mu.Lock()
	if r.state.Load() != stateOwned {
		o, err := r.acquireLocked()
		r.mu.Unlock()
		if err != nil {
			return nil, err
		}
		r.finishAcquire()
		return o, nil
	}
	// Contended: park. The waiter is visible to Release's hand-off the
	// moment mu is released, and only while the region stays owned —
	// stateOwned is re-checked under the same mu that every alive ⇄
	// owned transition holds, so a waiter can never be appended to an
	// unowned or dead region (the audit's waiters-on-unowned rule).
	w := &acquireWaiter{ready: make(chan handoff, 1)}
	w.npc = runtime.Callers(2, w.pcs[:])
	r.waitq = append(r.waitq, w)
	r.shard.acquireWaiters.Add(1)
	r.mu.Unlock()
	r.contendedWaits.Add(1)
	if c := r.counters(); c != nil {
		c.acquireWaits.Add(1)
	}
	r.arena.traceEvent(TraceAcquireBlocked, r)
	start := time.Now()

	select {
	case h := <-w.ready:
		return r.acquireDelivered(ctx, h, start)
	case <-ctx.Done():
	}
	// Gave up. If the waiter is still queued, removing it is the whole
	// story; if the hand-off already popped it, the send is committed
	// (the channel is buffered, the sender never blocks) — take
	// delivery and dispose of the token like any other post-receive
	// cancellation.
	r.mu.Lock()
	removed := r.removeWaiterLocked(w)
	r.mu.Unlock()
	if !removed {
		return r.acquireDelivered(ctx, <-w.ready, start)
	}
	r.noteAcquireWaitDone(start)
	r.noteAcquireAborted(ctx.Err())
	return nil, r.acquireAbortErr(ctx.Err())
}

// acquireDelivered finishes a parked acquire once the hand-off channel
// has yielded: the wait is accounted, then the outcome is the hand-off
// error (the region died), the token (the normal case), or — when ctx
// ended while the token was in flight — a full acquire/release pair
// that keeps the books balanced while the caller still gets its
// cancellation error.
func (r *Region) acquireDelivered(ctx context.Context, h handoff, start time.Time) (*Owner, error) {
	r.noteAcquireWaitDone(start)
	if h.err != nil {
		return nil, h.err
	}
	if c := r.counters(); c != nil {
		c.acquires.Add(1)
	}
	r.arena.traceEvent(TraceRegionAcquired, r)
	if err := ctx.Err(); err != nil {
		r.noteAcquireAborted(err)
		r.disposeToken(h.o)
		return nil, r.acquireAbortErr(err)
	}
	return h.o, nil
}

// disposeToken releases a token its waiter no longer wants, retrying
// injected flush failures so a cancelled acquire can never wedge the
// queue behind an unreleased token. A token revoked in the meantime is
// already disposed of.
func (r *Region) disposeToken(o *Owner) {
	for {
		err := o.Release()
		if err == nil || !errors.Is(err, ErrInjected) {
			return
		}
	}
}

// acquireAbortErr is the cancellation error of AcquireContext: it wraps
// both the context error (context.Canceled or context.DeadlineExceeded)
// and ErrRegionOwned — the wait ended because the region was owned by
// someone else for the whole of it.
func (r *Region) acquireAbortErr(cause error) error {
	return fmt.Errorf("rcgo: AcquireContext on region %d gave up: %w",
		r.id, errors.Join(cause, ErrRegionOwned))
}

// noteAcquireWaitDone accrues the wall time one parked waiter spent
// waiting, however the wait ended.
func (r *Region) noteAcquireWaitDone(start time.Time) {
	if c := r.counters(); c != nil {
		c.acquireWaitNanos.Add(time.Since(start).Nanoseconds())
	}
}

// noteAcquireAborted counts and traces one AcquireContext call that
// returned with a context error after parking.
func (r *Region) noteAcquireAborted(cause error) {
	if c := r.counters(); c != nil {
		if errors.Is(cause, context.DeadlineExceeded) {
			c.acquireTimeouts.Add(1)
		} else {
			c.acquireCancels.Add(1)
		}
	}
	r.arena.traceEvent(TraceAcquireAborted, r)
}

// removeWaiterLocked unlinks w from the wait queue, reporting whether
// it was still there (false: a hand-off already popped it and owns the
// obligation to send). Caller holds r.mu.
func (r *Region) removeWaiterLocked(w *acquireWaiter) bool {
	for i, q := range r.waitq {
		if q == w {
			r.waitq = append(r.waitq[:i], r.waitq[i+1:]...)
			r.shard.acquireWaiters.Add(-1)
			return true
		}
	}
	return false
}

// waiterCount returns the wait-queue depth under mu, for the auditor
// and the /owners inspector.
func (r *Region) waiterCount() int {
	r.mu.Lock()
	n := len(r.waitq)
	r.mu.Unlock()
	return n
}

// handOffLocked moves the region on from a finished owner: the queue
// head gets a fresh token without the region ever leaving stateOwned,
// or — with no waiters — the region returns to the shared state. The
// rcgo/own.handoff failpoint sits on each transfer attempt: an injected
// error is a refused hand-off, requeueing that waiter at the tail and
// trying the next (a waiter-level retry that keeps FIFO order among the
// rest); a delay or yield widens the wake window.
//
// Caller holds r.mu with the region stateOwned and the outgoing token
// already flushed (Release, Owner.Delete) or condemned (revokeOwner).
// When a waiter is returned, the caller must send it handoff{o: next}
// AFTER releasing mu and AFTER tracing its own released/revoked event —
// that send is the hazard-4 edge publishing the old owner's plain
// writes to the successor, and the sequencing keeps the trace stream's
// released-before-acquired order.
func (r *Region) handOffLocked() (w *acquireWaiter, next *Owner) {
	for len(r.waitq) > 0 {
		if err := fpOwnHandoff.Eval(); err != nil {
			refused := r.waitq[0]
			copy(r.waitq, r.waitq[1:])
			r.waitq[len(r.waitq)-1] = refused
			continue
		}
		w = r.waitq[0]
		r.waitq = append(r.waitq[:0], r.waitq[1:]...)
		r.shard.acquireWaiters.Add(-1)
		next = &Owner{r: r}
		r.owner.Store(next)
		r.acquiredAt = time.Now()
		r.acquirePC = w.pcs
		r.acquirePCN = w.npc
		return w, next
	}
	r.owner.Store(nil)
	r.state.Store(stateAlive)
	r.shard.ownedRegions.Add(-1)
	return nil, nil
}

// flushLocked merges the token's owner-local state into the region's
// shared bookkeeping. Caller holds r.mu and the region is stateOwned
// (stable under mu). Flushing is idempotent-by-zeroing: the token's
// deltas are reset so a Delete that fails ErrRegionInUse after flushing
// leaves a still-valid token with nothing double-counted.
func (o *Owner) flushLocked(r *Region) {
	if o.objs != 0 {
		r.objs.Add(o.objs)
		r.shard.liveObjs.Add(o.objs)
		o.objs = 0
	}
	// Late shared-path admissions (TryAlloc calls that loaded stateAlive
	// just before the Acquire transition) parked deltas in the alloc
	// cache; settle them on the same edge.
	r.flushAllocPendingLocked()
	if len(o.slots) > 0 {
		for _, s := range o.slots {
			sh := r.shardOf(s.p)
			sh.mu.Lock()
			sh.slots = append(sh.slots, s.rel)
			sh.mu.Unlock()
		}
		o.slots = nil
	}
	if m := r.metrics.Load(); m != nil && o.m.any() {
		c := m.shard(unsafe.Pointer(r))
		c.allocs.Add(o.m.allocs)
		c.countedStores.Add(o.m.countedStores)
		c.sameChecks.Add(o.m.sameChecks)
		c.tradChecks.Add(o.m.tradChecks)
		c.parentChecks.Add(o.m.parentChecks)
		c.checkFailures.Add(o.m.checkFailures)
		c.ownerFlushes.Add(1)
	}
	o.m = ownerCounters{}
}

// Release returns the region to the shared state — or hands it straight
// to the next parked AcquireContext waiter — flushing every owner-local
// delta into the shared counters (the exactness edge) and invalidating
// the token. An injected rcgo/own.release error is a transient release
// failure: nothing has been flushed, the region stays owned and the
// token stays valid, so the caller retries. A token the OwnerWatchdog
// has revoked fails with ErrOwnerRevoked: the region has already moved
// on, and there is nothing left for this token to release.
func (o *Owner) Release() error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: Release of a released token", ErrNotOwner)
	}
	if o.revoked.Load() {
		return fmt.Errorf("%w: Release of region %d", ErrOwnerRevoked, r.id)
	}
	r.mu.Lock()
	if r.owner.Load() != o {
		// Revoked between the check above and taking mu: the watchdog
		// installed a successor (or returned the region to the shared
		// state) and this token's deltas were condemned with it.
		r.mu.Unlock()
		return fmt.Errorf("%w: Release of region %d", ErrOwnerRevoked, r.id)
	}
	// Failpoint at the head of the flush window, under mu: an error
	// aborts before any flush; a delay or yield holds the window open
	// while owner-local deltas are about to be merged.
	if err := fpOwnRelease.Eval(); err != nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: release of region %d", err, r.id)
	}
	o.flushLocked(r)
	w, next := r.handOffLocked()
	r.mu.Unlock()
	o.r = nil
	if c := r.counters(); c != nil {
		c.releases.Add(1)
	}
	r.arena.traceEvent(TraceRegionReleased, r)
	if w != nil {
		// The hazard-4 publication edge: flush (under mu) and the trace
		// above are sequenced before this send; the waiter's receive in
		// AcquireContext is sequenced before its first owned operation.
		w.ready <- handoff{o: next}
	}
	return nil
}

// Delete flushes the owner-local state and deletes the owned region in
// one step — the tail of the build→transfer→delete pipeline, saving the
// Release/Delete round trip through the shared state. Like Delete it
// fails with ErrRegionInUse while pre-existing external references or
// subregions remain; the region then STAYS owned and the token stays
// valid (the flush that already happened is just an early flush). An
// injected rcgo/own.release error behaves as in Release. On success the
// token is consumed.
func (o *Owner) Delete() error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: Delete of a released token", ErrNotOwner)
	}
	if o.revoked.Load() {
		return fmt.Errorf("%w: Delete of region %d", ErrOwnerRevoked, r.id)
	}
	r.mu.Lock()
	if r.owner.Load() != o {
		r.mu.Unlock()
		return fmt.Errorf("%w: Delete of region %d", ErrOwnerRevoked, r.id)
	}
	if err := fpOwnRelease.Eval(); err != nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: delete of owned region %d", err, r.id)
	}
	o.flushLocked(r)
	if n := r.children.Load(); n > 0 {
		r.mu.Unlock()
		r.noteDeleteBlocked()
		return fmt.Errorf("%w (subregions=%d)", ErrRegionInUse, n)
	}
	if n := r.rc.Load(); n != 0 {
		// Pre-existing references (pins, inbound counted slots) not yet
		// released — or a transient incRC that is about to observe
		// stateOwned and withdraw. Either way the delete fails and
		// ownership is retained.
		r.mu.Unlock()
		r.noteDeleteBlocked()
		return fmt.Errorf("%w (rc=%d)", ErrRegionInUse, n)
	}
	// No dying window: stateOwned already rejects every operation that
	// stateDying guards against, so the transition is owned → dead. Any
	// parked AcquireContext waiters are failed wholesale — the region
	// they were queueing for no longer exists.
	waiters := r.waitq
	r.waitq = nil
	r.shard.acquireWaiters.Add(-int64(len(waiters)))
	r.owner.Store(nil)
	r.state.Store(stateDead)
	r.shard.liveRegions.Add(-1)
	r.shard.ownedRegions.Add(-1)
	r.mu.Unlock()
	o.r = nil
	if c := r.counters(); c != nil {
		c.releases.Add(1)
		c.deletes.Add(1)
	}
	r.arena.traceEvent(TraceRegionReleased, r)
	r.arena.traceEvent(TraceRegionDeleted, r)
	for _, w := range waiters {
		w.ready <- handoff{err: fmt.Errorf("%w: region %d deleted while waiting to acquire",
			ErrRegionDeleted, r.id)}
	}
	r.reclaim()
	return nil
}

// revokeOwner is the OwnerWatchdog's forced-release escape hatch: it
// condemns the token `expect` and moves the region on — to the next
// parked waiter, or back to the shared state — exactly as a Release
// would, except that the condemned token's unflushed owner-local deltas
// are DISCARDED rather than merged. The revoker never reads the token's
// plain fields (that would race a still-running owner); it only sets
// the token's one atomic and swaps the region's owner pointer under mu.
// The cost of discarding: owned allocations and metric deltas made
// through the condemned token vanish from the counters (consistently —
// both per-region and shard sides miss them equally), and any rc units
// held by parked SetRefOwned slots are leaked. That is the documented
// price of tearing a token out of a crashed goroutine's hands; a
// still-running owner that mutates through the token after revocation
// is a data race, the same contract as using a token from two
// goroutines.
//
// Returns false when expect no longer holds the region — a legitimate
// Release (or Owner.Delete) won the race, and nothing happens.
func (r *Region) revokeOwner(expect *Owner) bool {
	r.mu.Lock()
	if r.state.Load() != stateOwned || r.owner.Load() != expect {
		r.mu.Unlock()
		return false
	}
	expect.revoked.Store(true)
	w, next := r.handOffLocked()
	r.mu.Unlock()
	if c := r.counters(); c != nil {
		c.ownerRevocations.Add(1)
	}
	r.arena.traceEvent(TraceOwnerRevoked, r)
	if w != nil {
		w.ready <- handoff{o: next}
	}
	return true
}

// ownerInfo samples the ownership picture of the region under mu, for
// the OwnerWatchdog and the /owners inspector: whether it is owned, the
// current token, when and where it was acquired, and the wait-queue
// depth.
func (r *Region) ownerInfo() (held bool, o *Owner, since time.Time, site string, depth int) {
	r.mu.Lock()
	if r.state.Load() != stateOwned {
		r.mu.Unlock()
		return false, nil, time.Time{}, "", 0
	}
	o = r.owner.Load()
	since = r.acquiredAt
	pcs := r.acquirePC
	npc := r.acquirePCN
	depth = len(r.waitq)
	r.mu.Unlock()
	return true, o, since, acquireSite(pcs, npc), depth
}

// acquireSite renders a recorded acquire call stack as "file:line (fn)",
// or "" when no frames were captured.
func acquireSite(pcs [acquirePCDepth]uintptr, npc int) string {
	if npc <= 0 {
		return ""
	}
	frames := runtime.CallersFrames(pcs[:npc])
	for {
		f, more := frames.Next()
		if f.Function != "" {
			return fmt.Sprintf("%s:%d (%s)", f.File, f.Line, f.Function)
		}
		if !more {
			return ""
		}
	}
}

// AllocOwned allocates a zero T in the owned region through its token,
// panicking on failure; use TryAllocOwned where a refused chunk refill
// (rcgo/alloc.refill) must be tolerated.
func AllocOwned[T any](o *Owner) *Obj[T] {
	obj, err := TryAllocOwned[T](o)
	if err != nil {
		panic(err)
	}
	return obj
}

// TryAllocOwned allocates a zero T in the owned region through its
// token. The owned path skips everything the shared TryAlloc pays for
// admission: no state-check loop (the token proves the region is
// owned-alive), no batched-delta atomics, no shared counter updates —
// the object count and the metric delta are plain increments on the
// token, flushed at Release. The object itself still comes from the
// pooled per-type chunks (region_alloccache.go); their cursor atomics
// are uncontended while owned.
func TryAllocOwned[T any](o *Owner) (*Obj[T], error) {
	r := o.r
	if r == nil {
		return nil, fmt.Errorf("%w: owned allocation", ErrNotOwner)
	}
	if o.revoked.Load() {
		return nil, fmt.Errorf("%w: owned allocation", ErrOwnerRevoked)
	}
	var obj *Obj[T]
	if r.allocSlow {
		obj = &Obj[T]{region: r}
	} else {
		var err error
		if obj, err = newChunkedObj[T](r); err != nil {
			return nil, err
		}
	}
	o.objs++
	o.m.allocs++
	return obj, nil
}

// SetRefOwned is the owned-path counted store: holder.slot = target
// where holder lives in the token's region. The holder-side cost
// collapses — no shard lock, no settled() check, registration
// bookkeeping is a plain append on the token — while the target-side
// protocol is unchanged: an external target still pays the atomic
// increment-then-validate (incRC) on its own region, because that
// region is shared and its delete races must stay linearizable. A
// displaced external reference is released with the same shared decRC.
func SetRefOwned[T any, H any](o *Owner, holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: owned counted store", ErrNotOwner)
	}
	if o.revoked.Load() {
		return fmt.Errorf("%w: owned counted store", ErrOwnerRevoked)
	}
	if holder.region != r {
		return fmt.Errorf("%w: holder lives in region %d, token owns region %d",
			ErrNotOwner, holder.region.id, r.id)
	}
	if target != nil && target.region != r {
		if err := target.region.incRC(); err != nil {
			return fmt.Errorf("counted store: %w", err)
		}
	}
	old := slot.target.Swap(target)
	if target != nil && !slot.registered {
		// Plain read and write of registered: the Acquire barrier gives
		// the owner happens-before over every pre-ownership registration,
		// and no shared store can race while the region is owned.
		slot.registered = true
		o.slots = append(o.slots, ownerSlot{rel: slot, p: unsafe.Pointer(slot)})
	}
	o.m.countedStores++
	if target != nil {
		if ad := r.advisor.Load(); ad != nil {
			ad.observe(r, target.region, FlavourRef)
		}
	}
	if old != nil && old.region != r {
		old.region.decRC()
	}
	return nil
}

// SetSameOwned is the owned-path sameregion store: target must be nil
// or in the token's region. The check is the paper's one-compare
// annotation check against immutable identity; with the region owned
// there is no state word to consult at all.
func SetSameOwned[T any, H any](o *Owner, holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: owned sameregion store", ErrNotOwner)
	}
	if o.revoked.Load() {
		return fmt.Errorf("%w: owned sameregion store", ErrOwnerRevoked)
	}
	if holder.region != r {
		return fmt.Errorf("%w: holder lives in region %d, token owns region %d",
			ErrNotOwner, holder.region.id, r.id)
	}
	o.m.sameChecks++
	if target != nil {
		if target.region != r {
			o.m.checkFailures++
			return fmt.Errorf("%w: sameregion store of %v into %v",
				ErrBadRef, target.region.id, r.id)
		}
		if ad := r.advisor.Load(); ad != nil {
			ad.observe(r, target.region, FlavourSame)
		}
	}
	slot.target.Store(target)
	return nil
}

// SetTradOwned is the owned-path traditional store: target must be nil
// or in the arena's traditional region (immortal, so no target state
// check either).
func SetTradOwned[T any, H any](o *Owner, holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: owned traditional store", ErrNotOwner)
	}
	if o.revoked.Load() {
		return fmt.Errorf("%w: owned traditional store", ErrOwnerRevoked)
	}
	if holder.region != r {
		return fmt.Errorf("%w: holder lives in region %d, token owns region %d",
			ErrNotOwner, holder.region.id, r.id)
	}
	o.m.tradChecks++
	if target != nil {
		if target.region != r.arena.trad {
			o.m.checkFailures++
			return fmt.Errorf("%w: traditional store of %v", ErrBadRef, target.region.id)
		}
		if ad := r.advisor.Load(); ad != nil {
			ad.observe(r, target.region, FlavourTrad)
		}
	}
	slot.target.Store(target)
	return nil
}

// SetParentOwned is the owned-path parentptr store: target must be nil
// or in an ancestor (or the same) region of the token's. The ancestor
// must not itself be deleted; an ancestor that is merely owned (by this
// or another token) is a legal target — a parentptr creates no
// reference and mutates nothing in the target region.
func SetParentOwned[T any, H any](o *Owner, holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: owned parentptr store", ErrNotOwner)
	}
	if o.revoked.Load() {
		return fmt.Errorf("%w: owned parentptr store", ErrOwnerRevoked)
	}
	if holder.region != r {
		return fmt.Errorf("%w: holder lives in region %d, token owns region %d",
			ErrNotOwner, holder.region.id, r.id)
	}
	o.m.parentChecks++
	if target != nil {
		if !target.region.isAncestorOf(r) {
			o.m.checkFailures++
			return fmt.Errorf("%w: parentptr store of %v into %v",
				ErrBadRef, target.region.id, r.id)
		}
		if ts := target.region.settled(); ts != stateAlive && ts != stateOwned {
			return fmt.Errorf("%w: parentptr store targets deleted region %d",
				ErrRegionDeleted, target.region.id)
		}
		if ad := r.advisor.Load(); ad != nil {
			ad.observe(r, target.region, FlavourParent)
		}
	}
	slot.target.Store(target)
	return nil
}

// compile-time check that Region carries the owner pointer the audit
// reads; the field itself lives in region_api.go with its lifecycle
// peers.
var _ = func(r *Region) *atomic.Pointer[Owner] { return &r.owner }
