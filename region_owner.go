package rcgo

import (
	"errors"
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Exclusive region ownership (DESIGN.md §14): the regions-as-locks idea
// of Gerakios et al. ported onto the concurrent runtime. A goroutine
// that holds a region's Owner token has exclusive mutation rights to
// it, and the owned operations (AllocOwned, SetRefOwned, SetSameOwned,
// SetTradOwned, SetParentOwned) exploit that exclusivity: bookkeeping
// that the shared paths maintain with atomics and shard locks is kept
// in plain owner-local fields on the token and flushed to the shared
// counters at Release. The common pipeline pattern — build a region on
// one goroutine, hand it through a channel, let the consumer delete it
// — pays near-zero synchronization per operation.
//
// The owned-state machine. Acquire transitions a region stateAlive →
// stateOwned under the lifecycle mutex; Release transitions it back.
// stateOwned is a settled state (unlike the transient stateDying):
// shared-path observers do not wait it out, they fail fast with
// ErrRegionOwned — allocation, subregion creation, pins, new inbound
// counted references, stores whose holder lives in the owned region,
// and Delete are all rejected while the region is owned. Two things
// remain possible from outside: releasing *pre-existing* references
// (decRC — unpin, clearing a counted slot in some other region that
// points here) and reading (Stats, Hierarchy, Audit — all atomic or
// mu-protected state only). A dying, zombie or dead region cannot be
// acquired, and an owned region cannot be deleted or deferred except
// through its token (Owner.Delete).
//
// Why the owner may use plain (non-atomic) loads and stores. Three
// hazards have to be excluded:
//
//  1. In-flight shared stores at Acquire time. A shared SetRef that
//     passed its state check before the stateOwned transition may still
//     be mid-critical-section on one of the region's slot-registry
//     shards. Acquire therefore performs a barrier sweep after the
//     transition: it locks and releases every slot shard once. Any
//     store that read stateAlive is inside its shard critical section
//     and completes before the sweep passes that shard; any store that
//     takes a shard lock after the sweep re-reads the state inside the
//     lock (SetRef checks settled() under the shard mutex) and fails
//     with ErrRegionOwned. After Acquire returns, no shared-path store
//     can touch the region's slots, and the sweep's lock/unlock pairs
//     give the acquiring goroutine a happens-before edge over every
//     prior registration — so the owner's plain reads of slot
//     bookkeeping (Ref.registered) observe fully-written values.
//  2. Concurrent readers while owned. Stats/Audit/Hierarchy read only
//     atomics (or take mu, which the owner's fast paths never hold), so
//     the owner keeps its *new* state in plain fields those readers
//     never touch: object-count and metric deltas live on the token,
//     newly counted slots are parked on the token instead of the shared
//     registry. The one shared word the owner still writes per store is
//     the slot's atomic target pointer — debug scans (targetRegion) and
//     the delete-time unscan read it concurrently, and an atomic store
//     on x86/arm64 costs the same as a plain one, so nothing is lost.
//  3. Token transfer between goroutines. The token is not itself
//     synchronized: it must be used by one goroutine at a time, and
//     handing it to another goroutine must happen through a
//     synchronization edge — a channel send/receive, a mutex, a
//     sync.WaitGroup. That edge is the standard Go memory-model
//     happens-before that publishes the token's plain fields to the
//     receiver, exactly as for any other Go value. Release is the final
//     edge: every owner-local write precedes the flush, the flush
//     happens under r.mu, and any later shared-path operation that
//     observes stateAlive synchronizes with Release through that mutex
//     and the state atomic.
//
// Flush-at-Release exactness: Release (and Owner.Delete) merges the
// owner-local deltas into the shared counters under r.mu before the
// region returns to the shared state, so every counter keeps the
// runtime-wide exact-at-quiesce contract — an arena in which every
// token has been released accounts for every owned-path operation, and
// the chaos ownership phase judges Counters().Allocs against
// worker-counted successes exactly. While a token is outstanding its
// unflushed deltas are invisible to Stats/Audit (both the per-region
// and the fabric-shard side miss them equally, so totals stay
// consistent); the audit's rc-accounting rule is advisory while any
// region is owned, because counted slots created through a token are
// merged into the scanned registry only at Release.
//
// The flush window carries the rcgo/own.release failpoint: an injected
// error is a transient release failure observed before anything is
// flushed — the region stays owned and the token stays valid, so the
// caller retries; perturbations (delay/yield) fire inside the window,
// under mu, stretching the interval the chaos phase races against.

// ErrRegionOwned is returned by shared-path operations that target a
// region while it is exclusively owned (Region.TryAcquire): allocation,
// subregion creation, pinning, deleting, creating an inbound counted
// reference, any Set* store whose holder lives in the owned region, and
// a second TryAcquire. The owner performs these through its token.
var ErrRegionOwned = errors.New("rcgo: region is exclusively owned")

// ErrNotOwner is returned by owned-path operations whose token has been
// released (or consumed by Owner.Delete), and by owned stores whose
// holder object does not live in the token's region.
var ErrNotOwner = errors.New("rcgo: operation requires the region's owner token")

// ownerSlot is a counted slot registered while owned, parked on the
// token until Release merges it into the holder region's shared
// registry.
type ownerSlot struct {
	rel releaser
	p   unsafe.Pointer // the slot's address, for registry shard selection
}

// ownerCounters are the owner-local metric deltas, mirrored from
// counterShard and flushed into one shard at Release. Plain fields:
// only the owning goroutine touches them.
type ownerCounters struct {
	allocs        int64
	countedStores int64
	sameChecks    int64
	tradChecks    int64
	parentChecks  int64
	checkFailures int64
}

func (c *ownerCounters) any() bool {
	return c.allocs|c.countedStores|c.sameChecks|c.tradChecks|c.parentChecks|c.checkFailures != 0
}

// Owner is the transferable token of exclusive ownership over one
// region, returned by Region.TryAcquire. It must be used by one
// goroutine at a time; handing it to another goroutine must happen
// through a synchronization edge (typically a channel), which is what
// publishes its plain owner-local state to the receiver. The zero Owner
// is not valid.
type Owner struct {
	// r is the owned region; nil once the token has been released or
	// consumed by Owner.Delete.
	r *Region
	// objs is the owned-allocation count not yet flushed to r.objs and
	// the fabric shard's liveObjs.
	objs int64
	// m is the owner-local metric deltas.
	m ownerCounters
	// slots are counted slots first registered while owned, merged into
	// the shared registry at Release.
	slots []ownerSlot
}

// Region returns the owned region, or nil after Release/Delete.
func (o *Owner) Region() *Region { return o.r }

// Owned reports whether the region is currently exclusively owned.
func (r *Region) Owned() bool { return r.settled() == stateOwned }

// storeBarrier locks and releases every slot-registry shard once. Called
// by TryAcquire after the stateOwned transition: every in-flight shared
// counted store holds its shard lock from state check to registration,
// so the sweep both waits those stores out and hands the acquiring
// goroutine a happens-before edge over all prior slot registrations.
func (r *Region) storeBarrier() {
	for i := range r.slots {
		sh := &r.slots[i]
		sh.mu.Lock()
		//lint:ignore SA2001 the empty critical section is the barrier
		sh.mu.Unlock()
	}
}

// Acquire takes exclusive ownership of the region, panicking on failure;
// use TryAcquire where a concurrent delete or a second acquirer may
// race.
func (r *Region) Acquire() *Owner {
	o, err := r.TryAcquire()
	if err != nil {
		panic(err)
	}
	return o
}

// TryAcquire takes exclusive ownership of the region, returning the
// transferable Owner token. It fails with ErrRegionOwned if the region
// is already owned, ErrRegionDeleted if it has been deleted or
// deferred-deleted, and an error on the traditional region (which is
// shared by construction). Pre-existing external references do not
// block acquisition — they may still be released (decRC) while the
// region is owned; only *new* references are rejected.
func (r *Region) TryAcquire() (*Owner, error) {
	if r == r.arena.trad {
		return nil, errors.New("rcgo: cannot acquire the traditional region")
	}
	r.mu.Lock()
	switch r.state.Load() {
	case stateAlive:
	case stateOwned:
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: Acquire of region %d", ErrRegionOwned, r.id)
	default: // dying cannot be observed under mu; zombie or dead
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: Acquire of region %d", ErrRegionDeleted, r.id)
	}
	// Settle the batched allocation deltas so owner-local accounting
	// starts from flushed counters (late shared admissions that raced
	// the transition flush again at Release).
	r.flushAllocPendingLocked()
	o := &Owner{r: r}
	r.owner.Store(o)
	r.state.Store(stateOwned)
	r.shard.ownedRegions.Add(1)
	r.mu.Unlock()
	r.storeBarrier()
	if c := r.counters(); c != nil {
		c.acquires.Add(1)
	}
	r.arena.traceEvent(TraceRegionAcquired, r)
	return o, nil
}

// flushLocked merges the token's owner-local state into the region's
// shared bookkeeping. Caller holds r.mu and the region is stateOwned
// (stable under mu). Flushing is idempotent-by-zeroing: the token's
// deltas are reset so a Delete that fails ErrRegionInUse after flushing
// leaves a still-valid token with nothing double-counted.
func (o *Owner) flushLocked(r *Region) {
	if o.objs != 0 {
		r.objs.Add(o.objs)
		r.shard.liveObjs.Add(o.objs)
		o.objs = 0
	}
	// Late shared-path admissions (TryAlloc calls that loaded stateAlive
	// just before the Acquire transition) parked deltas in the alloc
	// cache; settle them on the same edge.
	r.flushAllocPendingLocked()
	if len(o.slots) > 0 {
		for _, s := range o.slots {
			sh := r.shardOf(s.p)
			sh.mu.Lock()
			sh.slots = append(sh.slots, s.rel)
			sh.mu.Unlock()
		}
		o.slots = nil
	}
	if m := r.metrics.Load(); m != nil && o.m.any() {
		c := m.shard(unsafe.Pointer(r))
		c.allocs.Add(o.m.allocs)
		c.countedStores.Add(o.m.countedStores)
		c.sameChecks.Add(o.m.sameChecks)
		c.tradChecks.Add(o.m.tradChecks)
		c.parentChecks.Add(o.m.parentChecks)
		c.checkFailures.Add(o.m.checkFailures)
		c.ownerFlushes.Add(1)
	}
	o.m = ownerCounters{}
}

// Release returns the region to the shared state, flushing every
// owner-local delta into the shared counters (the exactness edge) and
// invalidating the token. An injected rcgo/own.release error is a
// transient release failure: nothing has been flushed, the region stays
// owned and the token stays valid, so the caller retries.
func (o *Owner) Release() error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: Release of a released token", ErrNotOwner)
	}
	r.mu.Lock()
	// Failpoint at the head of the flush window, under mu: an error
	// aborts before any flush; a delay or yield holds the window open
	// while owner-local deltas are about to be merged.
	if err := fpOwnRelease.Eval(); err != nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: release of region %d", err, r.id)
	}
	o.flushLocked(r)
	r.owner.Store(nil)
	r.state.Store(stateAlive)
	r.shard.ownedRegions.Add(-1)
	r.mu.Unlock()
	o.r = nil
	if c := r.counters(); c != nil {
		c.releases.Add(1)
	}
	r.arena.traceEvent(TraceRegionReleased, r)
	return nil
}

// Delete flushes the owner-local state and deletes the owned region in
// one step — the tail of the build→transfer→delete pipeline, saving the
// Release/Delete round trip through the shared state. Like Delete it
// fails with ErrRegionInUse while pre-existing external references or
// subregions remain; the region then STAYS owned and the token stays
// valid (the flush that already happened is just an early flush). An
// injected rcgo/own.release error behaves as in Release. On success the
// token is consumed.
func (o *Owner) Delete() error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: Delete of a released token", ErrNotOwner)
	}
	r.mu.Lock()
	if err := fpOwnRelease.Eval(); err != nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: delete of owned region %d", err, r.id)
	}
	o.flushLocked(r)
	if n := r.children.Load(); n > 0 {
		r.mu.Unlock()
		r.noteDeleteBlocked()
		return fmt.Errorf("%w (subregions=%d)", ErrRegionInUse, n)
	}
	if n := r.rc.Load(); n != 0 {
		// Pre-existing references (pins, inbound counted slots) not yet
		// released — or a transient incRC that is about to observe
		// stateOwned and withdraw. Either way the delete fails and
		// ownership is retained.
		r.mu.Unlock()
		r.noteDeleteBlocked()
		return fmt.Errorf("%w (rc=%d)", ErrRegionInUse, n)
	}
	// No dying window: stateOwned already rejects every operation that
	// stateDying guards against, so the transition is owned → dead.
	r.owner.Store(nil)
	r.state.Store(stateDead)
	r.shard.liveRegions.Add(-1)
	r.shard.ownedRegions.Add(-1)
	r.mu.Unlock()
	o.r = nil
	if c := r.counters(); c != nil {
		c.releases.Add(1)
		c.deletes.Add(1)
	}
	r.arena.traceEvent(TraceRegionReleased, r)
	r.arena.traceEvent(TraceRegionDeleted, r)
	r.reclaim()
	return nil
}

// AllocOwned allocates a zero T in the owned region through its token,
// panicking on failure; use TryAllocOwned where a refused chunk refill
// (rcgo/alloc.refill) must be tolerated.
func AllocOwned[T any](o *Owner) *Obj[T] {
	obj, err := TryAllocOwned[T](o)
	if err != nil {
		panic(err)
	}
	return obj
}

// TryAllocOwned allocates a zero T in the owned region through its
// token. The owned path skips everything the shared TryAlloc pays for
// admission: no state-check loop (the token proves the region is
// owned-alive), no batched-delta atomics, no shared counter updates —
// the object count and the metric delta are plain increments on the
// token, flushed at Release. The object itself still comes from the
// pooled per-type chunks (region_alloccache.go); their cursor atomics
// are uncontended while owned.
func TryAllocOwned[T any](o *Owner) (*Obj[T], error) {
	r := o.r
	if r == nil {
		return nil, fmt.Errorf("%w: owned allocation", ErrNotOwner)
	}
	var obj *Obj[T]
	if r.allocSlow {
		obj = &Obj[T]{region: r}
	} else {
		var err error
		if obj, err = newChunkedObj[T](r); err != nil {
			return nil, err
		}
	}
	o.objs++
	o.m.allocs++
	return obj, nil
}

// SetRefOwned is the owned-path counted store: holder.slot = target
// where holder lives in the token's region. The holder-side cost
// collapses — no shard lock, no settled() check, registration
// bookkeeping is a plain append on the token — while the target-side
// protocol is unchanged: an external target still pays the atomic
// increment-then-validate (incRC) on its own region, because that
// region is shared and its delete races must stay linearizable. A
// displaced external reference is released with the same shared decRC.
func SetRefOwned[T any, H any](o *Owner, holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: owned counted store", ErrNotOwner)
	}
	if holder.region != r {
		return fmt.Errorf("%w: holder lives in region %d, token owns region %d",
			ErrNotOwner, holder.region.id, r.id)
	}
	if target != nil && target.region != r {
		if err := target.region.incRC(); err != nil {
			return fmt.Errorf("counted store: %w", err)
		}
	}
	old := slot.target.Swap(target)
	if target != nil && !slot.registered {
		// Plain read and write of registered: the Acquire barrier gives
		// the owner happens-before over every pre-ownership registration,
		// and no shared store can race while the region is owned.
		slot.registered = true
		o.slots = append(o.slots, ownerSlot{rel: slot, p: unsafe.Pointer(slot)})
	}
	o.m.countedStores++
	if target != nil {
		if ad := r.advisor.Load(); ad != nil {
			ad.observe(r, target.region, FlavourRef)
		}
	}
	if old != nil && old.region != r {
		old.region.decRC()
	}
	return nil
}

// SetSameOwned is the owned-path sameregion store: target must be nil
// or in the token's region. The check is the paper's one-compare
// annotation check against immutable identity; with the region owned
// there is no state word to consult at all.
func SetSameOwned[T any, H any](o *Owner, holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: owned sameregion store", ErrNotOwner)
	}
	if holder.region != r {
		return fmt.Errorf("%w: holder lives in region %d, token owns region %d",
			ErrNotOwner, holder.region.id, r.id)
	}
	o.m.sameChecks++
	if target != nil {
		if target.region != r {
			o.m.checkFailures++
			return fmt.Errorf("%w: sameregion store of %v into %v",
				ErrBadRef, target.region.id, r.id)
		}
		if ad := r.advisor.Load(); ad != nil {
			ad.observe(r, target.region, FlavourSame)
		}
	}
	slot.target.Store(target)
	return nil
}

// SetTradOwned is the owned-path traditional store: target must be nil
// or in the arena's traditional region (immortal, so no target state
// check either).
func SetTradOwned[T any, H any](o *Owner, holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: owned traditional store", ErrNotOwner)
	}
	if holder.region != r {
		return fmt.Errorf("%w: holder lives in region %d, token owns region %d",
			ErrNotOwner, holder.region.id, r.id)
	}
	o.m.tradChecks++
	if target != nil {
		if target.region != r.arena.trad {
			o.m.checkFailures++
			return fmt.Errorf("%w: traditional store of %v", ErrBadRef, target.region.id)
		}
		if ad := r.advisor.Load(); ad != nil {
			ad.observe(r, target.region, FlavourTrad)
		}
	}
	slot.target.Store(target)
	return nil
}

// SetParentOwned is the owned-path parentptr store: target must be nil
// or in an ancestor (or the same) region of the token's. The ancestor
// must not itself be deleted; an ancestor that is merely owned (by this
// or another token) is a legal target — a parentptr creates no
// reference and mutates nothing in the target region.
func SetParentOwned[T any, H any](o *Owner, holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	r := o.r
	if r == nil {
		return fmt.Errorf("%w: owned parentptr store", ErrNotOwner)
	}
	if holder.region != r {
		return fmt.Errorf("%w: holder lives in region %d, token owns region %d",
			ErrNotOwner, holder.region.id, r.id)
	}
	o.m.parentChecks++
	if target != nil {
		if !target.region.isAncestorOf(r) {
			o.m.checkFailures++
			return fmt.Errorf("%w: parentptr store of %v into %v",
				ErrBadRef, target.region.id, r.id)
		}
		if ts := target.region.settled(); ts != stateAlive && ts != stateOwned {
			return fmt.Errorf("%w: parentptr store targets deleted region %d",
				ErrRegionDeleted, target.region.id)
		}
		if ad := r.advisor.Load(); ad != nil {
			ad.observe(r, target.region, FlavourParent)
		}
	}
	slot.target.Store(target)
	return nil
}

// compile-time check that Region carries the owner pointer the audit
// reads; the field itself lives in region_api.go with its lifecycle
// peers.
var _ = func(r *Region) *atomic.Pointer[Owner] { return &r.owner }
