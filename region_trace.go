package rcgo

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Region lifecycle event tracing for the concurrent Go-native runtime.
//
// A Tracer observes the region lifecycle — the paper's dynamic behaviour
// that Table 2 measures offline — as it happens: every region creation,
// explicit delete, deferred delete, reclaim, and blocked delete is
// reported with the region's identity, its parent, and the reference
// count at the instant of the event. The per-store counters live in
// region_metrics.go; tracing covers lifecycle transitions, which
// already serialize on the region's lifecycle mutex, so a tracer adds no
// cost to the store fast paths and only a nil-check when disabled. The
// one store-path kind, TraceStoreUpgradeable, fires at most once per
// advisor call-site entry and only while the annotation advisor
// (region_advisor.go) is armed.
//
// Events are emitted after the region's lifecycle mutex is released, so
// a Tracer implementation may safely call back into the runtime (Stats,
// Hierarchy, ...). The ordering of events from concurrent goroutines is
// the runtime's linearization order per region, but events of different
// regions may be observed interleaved in any order consistent with it.

// TraceKind identifies a region lifecycle event.
type TraceKind int32

const (
	// TraceRegionCreated: a region was created (NewRegion/NewSubregion).
	TraceRegionCreated TraceKind = iota
	// TraceRegionDeleted: an explicit Delete succeeded, or a
	// DeleteDeferred found the region already unreferenced and deleted
	// it on the spot. A TraceRegionReclaimed event always follows.
	TraceRegionDeleted
	// TraceRegionDeferred: DeleteDeferred marked a still-referenced
	// region as a zombie; it reclaims when its references drain.
	TraceRegionDeferred
	// TraceRegionReclaimed: the region's storage was released. Emitted
	// exactly once per dead region, whether it died explicitly or by
	// zombie drain.
	TraceRegionReclaimed
	// TraceDeleteBlocked: an explicit Delete failed with ErrRegionInUse;
	// the event's RC names the count that blocked it (0 when subregions
	// blocked it instead).
	TraceDeleteBlocked
	// TraceStoreUpgradeable: the annotation advisor (region_advisor.go)
	// observed a store call site's first downgrade-worthy store — a
	// store whose flavour lattice classification admits a cheaper
	// flavour than the one used. Emitted once per profiled call site
	// (not per store), with the holder region's identity; the advisor
	// report names the site and the recommended flavour. Only emitted
	// while the advisor is armed.
	TraceStoreUpgradeable
	// TraceRegionAcquired: a goroutine took exclusive ownership of the
	// region (Region.TryAcquire, region_owner.go).
	TraceRegionAcquired
	// TraceRegionReleased: an Owner token returned the region to the
	// shared state (Owner.Release), or Owner.Delete consumed it — the
	// latter emits released followed by deleted and reclaimed.
	TraceRegionReleased
	// TraceAcquireBlocked: an AcquireContext contender found the region
	// owned and parked on its wait queue (region_owner.go). Emitted by
	// the waiter after parking; a later acquired event from the same
	// goroutine means the hand-off reached it.
	TraceAcquireBlocked
	// TraceAcquireAborted: a parked AcquireContext gave up — its context
	// was cancelled or its deadline expired — and left the queue (or
	// disposed of a token that arrived too late).
	TraceAcquireAborted
	// TraceOwnerRevoked: the OwnerWatchdog's forced release condemned a
	// stale Owner token (ErrOwnerRevoked) and moved the region on to the
	// next waiter or back to the shared state.
	TraceOwnerRevoked
	// TraceSlabMapped: the allocation fast path carved an object chunk
	// from the arena's off-heap backing store for this region
	// (region_slab.go). One event per page, not per object.
	TraceSlabMapped
	// TraceSlabReleased: reclaim returned the region's slab pages to
	// the backing store. One event per region (its SlabReleases counter
	// carries the page count), emitted before the reclaimed event.
	TraceSlabReleased
)

// String names the event kind.
func (k TraceKind) String() string {
	switch k {
	case TraceRegionCreated:
		return "created"
	case TraceRegionDeleted:
		return "deleted"
	case TraceRegionDeferred:
		return "deferred"
	case TraceRegionReclaimed:
		return "reclaimed"
	case TraceDeleteBlocked:
		return "delete-blocked"
	case TraceStoreUpgradeable:
		return "store-upgradeable"
	case TraceRegionAcquired:
		return "acquired"
	case TraceRegionReleased:
		return "released"
	case TraceAcquireBlocked:
		return "acquire-blocked"
	case TraceAcquireAborted:
		return "acquire-aborted"
	case TraceOwnerRevoked:
		return "owner-revoked"
	case TraceSlabMapped:
		return "slab-mapped"
	case TraceSlabReleased:
		return "slab-released"
	}
	return fmt.Sprintf("TraceKind(%d)", int32(k))
}

// MarshalText renders the kind as its name in JSON output.
func (k TraceKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the name MarshalText produces, so traced events
// round-trip through JSON (the /trace endpoint's clients decode into
// the same types).
func (k *TraceKind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "created":
		*k = TraceRegionCreated
	case "deleted":
		*k = TraceRegionDeleted
	case "deferred":
		*k = TraceRegionDeferred
	case "reclaimed":
		*k = TraceRegionReclaimed
	case "delete-blocked":
		*k = TraceDeleteBlocked
	case "store-upgradeable":
		*k = TraceStoreUpgradeable
	case "acquired":
		*k = TraceRegionAcquired
	case "released":
		*k = TraceRegionReleased
	case "acquire-blocked":
		*k = TraceAcquireBlocked
	case "acquire-aborted":
		*k = TraceAcquireAborted
	case "owner-revoked":
		*k = TraceOwnerRevoked
	case "slab-mapped":
		*k = TraceSlabMapped
	case "slab-released":
		*k = TraceSlabReleased
	default:
		return fmt.Errorf("unknown trace kind %q", b)
	}
	return nil
}

// TraceEvent is one region lifecycle event.
type TraceEvent struct {
	// Seq is a tracer-assigned sequence number (RingTracer fills it;
	// other implementations may leave it zero).
	Seq uint64 `json:"seq"`
	// Kind is the lifecycle transition.
	Kind TraceKind `json:"kind"`
	// Region is the id of the region the event is about.
	Region int64 `json:"region"`
	// Parent is the id of the region's parent, 0 for top-level regions.
	Parent int64 `json:"parent,omitempty"`
	// RC is the region's external reference count at event time.
	RC int64 `json:"rc"`
	// Subregions is the region's live child count at event time.
	Subregions int64 `json:"subregions,omitempty"`
}

// Tracer observes region lifecycle events. Implementations must be safe
// for concurrent use: events are delivered from whatever goroutine
// performed the transition, with no ordering guarantee across regions.
type Tracer interface {
	Trace(ev TraceEvent)
}

// NopTracer discards every event. It is the behaviour of an arena with
// no tracer set; the type exists so a tracer can be explicitly disabled
// in configuration tables.
type NopTracer struct{}

// Trace implements Tracer by doing nothing.
func (NopTracer) Trace(TraceEvent) {}

// SetTracer installs t as the arena's tracer (nil removes it). Safe to
// call concurrently with running work; events already in flight may
// still be delivered to the previous tracer.
//
// Prefer WithTracer at construction when the tracer exists before the
// arena does — it then sees every event from the traditional region's
// creation on. SetTracer remains fully supported (not deprecated) for
// tracers that need the arena handle to construct, such as a
// ZombieWatchdog chain, and for swapping tracers mid-life.
func (a *Arena) SetTracer(t Tracer) {
	if t == nil {
		a.tracer.Store(nil)
		return
	}
	a.tracer.Store(&tracerBox{t: t})
}

// tracerBox boxes the Tracer interface so the arena can hold it in an
// atomic.Pointer (interfaces cannot be stored atomically themselves).
type tracerBox struct{ t Tracer }

// traceEvent delivers a lifecycle event for r to the arena's tracer, if
// one is set. Callers must not hold r.mu: tracers may call back into the
// runtime.
func (a *Arena) traceEvent(kind TraceKind, r *Region) {
	b := a.tracer.Load()
	if b == nil {
		return
	}
	var parent int64
	if r.parent != nil {
		parent = r.parent.id
	}
	b.t.Trace(TraceEvent{
		Kind:       kind,
		Region:     r.id,
		Parent:     parent,
		RC:         r.rc.Load(),
		Subregions: r.children.Load(),
	})
}

// RingTracer is a lock-free, fixed-capacity ring buffer of the most
// recent lifecycle events. Writers never block and never take a lock: a
// single atomic fetch-add claims a slot, and the event is published with
// an atomic pointer store, so the tracer is safe on the delete path of
// any number of goroutines. When the ring wraps, the oldest events are
// overwritten.
//
// Total counts every event ever traced (monotonic, never wraps), so a
// reader can detect overwrites: Total() - len(Events()) events have been
// dropped from the window.
type RingTracer struct {
	mask  uint64
	pos   atomic.Uint64
	slots []atomic.Pointer[TraceEvent]
}

// NewRingTracer creates a ring holding the last capacity events
// (rounded up to a power of two, minimum 16).
func NewRingTracer(capacity int) *RingTracer {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &RingTracer{mask: uint64(n - 1), slots: make([]atomic.Pointer[TraceEvent], n)}
}

// Trace implements Tracer.
func (t *RingTracer) Trace(ev TraceEvent) {
	i := t.pos.Add(1) - 1
	ev.Seq = i
	t.slots[i&t.mask].Store(&ev)
}

// Total returns the number of events ever traced, including any that
// have been overwritten.
func (t *RingTracer) Total() uint64 { return t.pos.Load() }

// Dropped returns the number of events overwritten by ring wrap-around
// — events traced but no longer in the window. A chaos or audit run
// that needs every lifecycle event checks Dropped() == 0 (or sizes the
// ring up) before trusting Events() to be complete.
func (t *RingTracer) Dropped() uint64 {
	total := t.pos.Load()
	if c := uint64(len(t.slots)); total > c {
		return total - c
	}
	return 0
}

// TraceStats is a snapshot of a RingTracer's occupancy: how many events
// were ever traced, how many the window can hold, and how many have
// been dropped to wrap-around. Exposed by the DebugHandler and
// PublishExpvar JSON so monitoring can detect lost lifecycle events.
type TraceStats struct {
	// Capacity is the ring size (power of two).
	Capacity int `json:"capacity"`
	// Total counts every event ever traced (monotonic).
	Total uint64 `json:"total"`
	// Buffered is the number of events currently in the window.
	Buffered int `json:"buffered"`
	// Dropped is Total minus Buffered: events lost to wrap-around.
	Dropped uint64 `json:"dropped"`
}

// TraceStats returns the ring's occupancy snapshot.
func (t *RingTracer) TraceStats() TraceStats {
	total := t.pos.Load()
	buffered := total
	if c := uint64(len(t.slots)); buffered > c {
		buffered = c
	}
	return TraceStats{
		Capacity: len(t.slots),
		Total:    total,
		Buffered: int(buffered),
		Dropped:  total - buffered,
	}
}

// traceStats walks the installed tracer chain (unwrapping wrappers like
// ZombieWatchdog) to the first tracer that exposes ring statistics.
func (a *Arena) traceStats() (TraceStats, bool) {
	b := a.tracer.Load()
	if b == nil {
		return TraceStats{}, false
	}
	for t := b.t; t != nil; {
		if ts, ok := t.(interface{ TraceStats() TraceStats }); ok {
			return ts.TraceStats(), true
		}
		u, ok := t.(interface{ Unwrap() Tracer })
		if !ok {
			break
		}
		t = u.Unwrap()
	}
	return TraceStats{}, false
}

// traceEvents walks the installed tracer chain (unwrapping wrappers
// like ZombieWatchdog) to the first tracer that exposes its buffered
// events — a RingTracer, or anything else with an Events method — for
// the debug inspector's /trace endpoint.
func (a *Arena) traceEvents() ([]TraceEvent, bool) {
	b := a.tracer.Load()
	if b == nil {
		return nil, false
	}
	for t := b.t; t != nil; {
		if ev, ok := t.(interface{ Events() []TraceEvent }); ok {
			return ev.Events(), true
		}
		u, ok := t.(interface{ Unwrap() Tracer })
		if !ok {
			break
		}
		t = u.Unwrap()
	}
	return nil, false
}

// Events returns the buffered events in sequence order, oldest first.
// The snapshot is taken without stopping writers: under concurrent
// tracing it is a consistent set of recently published events, not an
// atomic cut; once tracing quiesces it is exact.
func (t *RingTracer) Events() []TraceEvent {
	out := make([]TraceEvent, 0, len(t.slots))
	for i := range t.slots {
		if ev := t.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
