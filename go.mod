module rcgo

go 1.22
