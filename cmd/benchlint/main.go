// Command benchlint validates an rcbench -json report read from stdin:
//
//	go run rcgo/cmd/rcbench -json | go run rcgo/cmd/benchlint
//
// It checks the invariants every rcgo.bench/1 document must satisfy —
// the schema tag, at least one workload, positive times, non-negative
// counters, a non-zero store total, and (when the optional parallel,
// fabric, advisor, ownership, contention or slab sections are present)
// positive A/B timings per cell, plus a sane shard/backdrop geometry
// on fabric cells and non-negative GC-pressure brackets on slab cells
// — and exits
// non-zero with a message naming the first violation. `make
// bench-smoke` runs a tiny report through it as a sanity gate.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"rcgo/internal/exp"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchlint: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var report exp.BenchReport
	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&report); err != nil {
		fail("invalid JSON: %v", err)
	}
	if report.Schema != exp.BenchSchema {
		fail("schema %q, want %q", report.Schema, exp.BenchSchema)
	}
	if len(report.Workloads) == 0 {
		fail("no workloads in report")
	}
	if report.Options.Reps <= 0 {
		fail("options.reps = %d, want > 0", report.Options.Reps)
	}
	seen := make(map[string]bool)
	for i, w := range report.Workloads {
		if w.Name == "" {
			fail("workload %d has no name", i)
		}
		if seen[w.Name] {
			fail("workload %q appears twice", w.Name)
		}
		seen[w.Name] = true
		if w.SimNanos <= 0 {
			fail("%s: sim_ns = %d, want > 0", w.Name, w.SimNanos)
		}
		if w.WallNanos <= 0 {
			fail("%s: wall_ns = %d, want > 0", w.Name, w.WallNanos)
		}
		if w.BaselineSimNanos <= 0 {
			fail("%s: baseline_sim_ns = %d, want > 0", w.Name, w.BaselineSimNanos)
		}
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"allocs", w.Allocs},
			{"rc_increments", w.RCIncrements},
			{"rc_decrements", w.RCDecrements},
			{"full_updates", w.FullUpdates},
			{"same_checks", w.SameChecks},
			{"trad_checks", w.TradChecks},
			{"parent_checks", w.ParentChecks},
			{"unchecked_stores", w.UncheckedStores},
			{"pin_ops", w.PinOps},
			{"unscan_words", w.UnscanWords},
			{"unscan_ns", w.UnscanNanos},
		} {
			if c.v < 0 {
				fail("%s: %s = %d, want >= 0", w.Name, c.name, c.v)
			}
		}
		if w.Allocs == 0 {
			fail("%s: allocs = 0 — the workload did not run", w.Name)
		}
		if w.Stores() == 0 {
			fail("%s: no pointer stores recorded", w.Name)
		}
	}
	seenPar := make(map[string]bool)
	for i, p := range report.Parallel {
		if p.Name == "" {
			fail("parallel cell %d has no name", i)
		}
		if seenPar[p.Name] {
			fail("parallel cell %q appears twice", p.Name)
		}
		seenPar[p.Name] = true
		if p.CPU <= 0 {
			fail("%s: cpu = %d, want > 0", p.Name, p.CPU)
		}
		if p.BestOf <= 0 {
			fail("%s: best_of = %d, want > 0", p.Name, p.BestOf)
		}
		if p.NsPerOp <= 0 {
			fail("%s: ns_op = %g, want > 0", p.Name, p.NsPerOp)
		}
		if p.BaselineNs <= 0 {
			fail("%s: baseline_ns_op = %g, want > 0", p.Name, p.BaselineNs)
		}
	}
	seenFab := make(map[string]bool)
	for i, f := range report.Fabric {
		if f.Name == "" {
			fail("fabric cell %d has no name", i)
		}
		if seenFab[f.Name] {
			fail("fabric cell %q appears twice", f.Name)
		}
		seenFab[f.Name] = true
		if f.CPU <= 0 {
			fail("%s: cpu = %d, want > 0", f.Name, f.CPU)
		}
		if f.BestOf <= 0 {
			fail("%s: best_of = %d, want > 0", f.Name, f.BestOf)
		}
		if f.LiveRegions <= 0 {
			fail("%s: live_regions = %d, want > 0", f.Name, f.LiveRegions)
		}
		if f.Shards < 2 {
			fail("%s: shards = %d, want >= 2 (the baseline side is always 1 shard)", f.Name, f.Shards)
		}
		if f.NsPerOp <= 0 {
			fail("%s: ns_op = %g, want > 0", f.Name, f.NsPerOp)
		}
		if f.BaselineNs <= 0 {
			fail("%s: baseline_ns_op = %g, want > 0", f.Name, f.BaselineNs)
		}
	}
	seenAdv := make(map[string]bool)
	for i, ab := range report.Advisor {
		if ab.Name == "" {
			fail("advisor cell %d has no name", i)
		}
		if seenAdv[ab.Name] {
			fail("advisor cell %q appears twice", ab.Name)
		}
		seenAdv[ab.Name] = true
		if ab.CPU <= 0 {
			fail("%s: cpu = %d, want > 0", ab.Name, ab.CPU)
		}
		if ab.BestOf <= 0 {
			fail("%s: best_of = %d, want > 0", ab.Name, ab.BestOf)
		}
		if ab.NsPerOp <= 0 {
			fail("%s: ns_op = %g, want > 0", ab.Name, ab.NsPerOp)
		}
		if ab.BaselineNs <= 0 {
			fail("%s: baseline_ns_op = %g, want > 0", ab.Name, ab.BaselineNs)
		}
	}
	seenOwn := make(map[string]bool)
	for i, ob := range report.Ownership {
		if ob.Name == "" {
			fail("ownership cell %d has no name", i)
		}
		if seenOwn[ob.Name] {
			fail("ownership cell %q appears twice", ob.Name)
		}
		seenOwn[ob.Name] = true
		if ob.CPU <= 0 {
			fail("%s: cpu = %d, want > 0", ob.Name, ob.CPU)
		}
		if ob.BestOf <= 0 {
			fail("%s: best_of = %d, want > 0", ob.Name, ob.BestOf)
		}
		if ob.NsPerOp <= 0 {
			fail("%s: ns_op = %g, want > 0", ob.Name, ob.NsPerOp)
		}
		if ob.BaselineNs <= 0 {
			fail("%s: baseline_ns_op = %g, want > 0", ob.Name, ob.BaselineNs)
		}
	}
	seenSlab := make(map[string]bool)
	for i, sb := range report.Slab {
		if sb.Name == "" {
			fail("slab cell %d has no name", i)
		}
		if seenSlab[sb.Name] {
			fail("slab cell %q appears twice", sb.Name)
		}
		seenSlab[sb.Name] = true
		if sb.CPU <= 0 {
			fail("%s: cpu = %d, want > 0", sb.Name, sb.CPU)
		}
		if sb.BestOf <= 0 {
			fail("%s: best_of = %d, want > 0", sb.Name, sb.BestOf)
		}
		if sb.NsPerOp <= 0 {
			fail("%s: ns_op = %g, want > 0", sb.Name, sb.NsPerOp)
		}
		if sb.BaselineNs <= 0 {
			fail("%s: baseline_ns_op = %g, want > 0", sb.Name, sb.BaselineNs)
		}
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"baseline_heap_bytes", sb.HeapBytes},
			{"heap_bytes", sb.SlabHeapBytes},
			{"baseline_gc_pause_ns", sb.GCPauseNs},
			{"gc_pause_ns", sb.SlabGCPauseNs},
			{"baseline_num_gc", sb.NumGC},
			{"num_gc", sb.SlabNumGC},
		} {
			if c.v < 0 {
				fail("%s: %s = %d, want >= 0", sb.Name, c.name, c.v)
			}
		}
		// A GC-pressure cell (a nonzero MemStats bracket on either side)
		// must have measured some baseline heap traffic — an all-zero
		// baseline means the bracket never ran.
		if (sb.SlabHeapBytes != 0 || sb.GCPauseNs != 0 || sb.SlabGCPauseNs != 0) && sb.HeapBytes == 0 {
			fail("%s: GC-pressure cell recorded no baseline heap bytes", sb.Name)
		}
	}
	seenCon := make(map[string]bool)
	for i, cb := range report.Contention {
		if cb.Name == "" {
			fail("contention cell %d has no name", i)
		}
		if seenCon[cb.Name] {
			fail("contention cell %q appears twice", cb.Name)
		}
		seenCon[cb.Name] = true
		if cb.CPU <= 0 {
			fail("%s: cpu = %d, want > 0", cb.Name, cb.CPU)
		}
		if cb.BestOf <= 0 {
			fail("%s: best_of = %d, want > 0", cb.Name, cb.BestOf)
		}
		if cb.NsPerOp <= 0 {
			fail("%s: ns_op = %g, want > 0", cb.Name, cb.NsPerOp)
		}
		if cb.BaselineNs <= 0 {
			fail("%s: baseline_ns_op = %g, want > 0", cb.Name, cb.BaselineNs)
		}
	}
	if len(report.Parallel) > 0 || len(report.Fabric) > 0 || len(report.Advisor) > 0 ||
		len(report.Ownership) > 0 || len(report.Contention) > 0 || len(report.Slab) > 0 {
		fmt.Printf("benchlint: ok (%d workloads, %d parallel cells, %d fabric cells, %d advisor cells, %d ownership cells, %d contention cells, %d slab cells)\n",
			len(report.Workloads), len(report.Parallel), len(report.Fabric), len(report.Advisor),
			len(report.Ownership), len(report.Contention), len(report.Slab))
		return
	}
	fmt.Printf("benchlint: ok (%d workloads)\n", len(report.Workloads))
}
