// Command benchlint validates an rcbench -json report read from stdin:
//
//	go run rcgo/cmd/rcbench -json | go run rcgo/cmd/benchlint
//
// It checks the invariants every rcgo.bench/1 document must satisfy —
// the schema tag, at least one workload, positive times, non-negative
// counters, and a non-zero store total — and exits non-zero with a
// message naming the first violation. `make bench-smoke` runs a tiny
// report through it as a sanity gate.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"rcgo/internal/exp"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchlint: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var report exp.BenchReport
	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&report); err != nil {
		fail("invalid JSON: %v", err)
	}
	if report.Schema != exp.BenchSchema {
		fail("schema %q, want %q", report.Schema, exp.BenchSchema)
	}
	if len(report.Workloads) == 0 {
		fail("no workloads in report")
	}
	if report.Options.Reps <= 0 {
		fail("options.reps = %d, want > 0", report.Options.Reps)
	}
	seen := make(map[string]bool)
	for i, w := range report.Workloads {
		if w.Name == "" {
			fail("workload %d has no name", i)
		}
		if seen[w.Name] {
			fail("workload %q appears twice", w.Name)
		}
		seen[w.Name] = true
		if w.SimNanos <= 0 {
			fail("%s: sim_ns = %d, want > 0", w.Name, w.SimNanos)
		}
		if w.WallNanos <= 0 {
			fail("%s: wall_ns = %d, want > 0", w.Name, w.WallNanos)
		}
		if w.BaselineSimNanos <= 0 {
			fail("%s: baseline_sim_ns = %d, want > 0", w.Name, w.BaselineSimNanos)
		}
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"allocs", w.Allocs},
			{"rc_increments", w.RCIncrements},
			{"rc_decrements", w.RCDecrements},
			{"full_updates", w.FullUpdates},
			{"same_checks", w.SameChecks},
			{"trad_checks", w.TradChecks},
			{"parent_checks", w.ParentChecks},
			{"unchecked_stores", w.UncheckedStores},
			{"pin_ops", w.PinOps},
			{"unscan_words", w.UnscanWords},
			{"unscan_ns", w.UnscanNanos},
		} {
			if c.v < 0 {
				fail("%s: %s = %d, want >= 0", w.Name, c.name, c.v)
			}
		}
		if w.Allocs == 0 {
			fail("%s: allocs = 0 — the workload did not run", w.Name)
		}
		if w.Stores() == 0 {
			fail("%s: no pointer stores recorded", w.Name)
		}
	}
	fmt.Printf("benchlint: ok (%d workloads)\n", len(report.Workloads))
}
