// Command docscheck keeps the repository's documentation anchored to
// the tree it describes. Two classes of drift have bitten this repo
// before — a table row naming a file that was later renamed, and a
// "DESIGN.md §N" cross-reference pointing at a section that does not
// exist yet — and both are cheap to catch mechanically, so `make
// docs-check` (and CI) runs this on every change.
//
// Checks:
//
//  1. Every file, package or command named in the first column of an
//     ARCHITECTURE.md table exists on disk. Backtick-quoted tokens are
//     extracted from the first cell of each `| ... |` row; a token
//     containing a glob metacharacter (`BENCH_*.json`) must match at
//     least one file, any other token must stat.
//  2. Every `DESIGN.md §N` cross-reference in a *.go or *.md file
//     resolves to a real `## N.` section heading in DESIGN.md. Range
//     references (`DESIGN.md §14–15`) are checked at both endpoints.
//
// Exit status is non-zero if any reference dangles, with one line per
// problem; on success it prints a one-line summary of what was checked.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	// A table row whose first cell names something on disk.
	tokenRe = regexp.MustCompile("`([^`]+)`")
	// `## 14. Ownership and transfer` — DESIGN.md's numbered sections.
	headingRe = regexp.MustCompile(`^## ([0-9]+)\.`)
	// `DESIGN.md §11` or a range, `DESIGN.md §14–15` / `§14–§15`.
	// The en dash is the house style but a plain hyphen also counts.
	refRe = regexp.MustCompile(`DESIGN\.md §([0-9]+)(?:[–-]§?([0-9]+))?`)
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Check 1: ARCHITECTURE.md table rows name real paths.
	entries := 0
	archPath := filepath.Join(*root, "ARCHITECTURE.md")
	arch, err := os.Open(archPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	sc := bufio.NewScanner(arch)
	for line := 1; sc.Scan(); line++ {
		row := sc.Text()
		if !strings.HasPrefix(row, "| `") {
			continue
		}
		cells := strings.Split(row, "|")
		if len(cells) < 2 {
			continue
		}
		for _, m := range tokenRe.FindAllStringSubmatch(cells[1], -1) {
			entries++
			tok := m[1]
			if strings.ContainsAny(tok, "*?[") {
				hits, err := filepath.Glob(filepath.Join(*root, tok))
				if err != nil || len(hits) == 0 {
					fail("ARCHITECTURE.md:%d: pattern `%s` matches nothing", line, tok)
				}
				continue
			}
			if _, err := os.Stat(filepath.Join(*root, tok)); err != nil {
				fail("ARCHITECTURE.md:%d: `%s` does not exist", line, tok)
			}
		}
	}
	arch.Close()
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}

	// Check 2: §-references resolve against DESIGN.md's headings.
	sections := map[string]bool{}
	design, err := os.ReadFile(filepath.Join(*root, "DESIGN.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, l := range strings.Split(string(design), "\n") {
		if m := headingRe.FindStringSubmatch(l); m != nil {
			sections[m[1]] = true
		}
	}

	refs := 0
	err = filepath.WalkDir(*root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		ext := filepath.Ext(path)
		if ext != ".go" && ext != ".md" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(*root, path)
		for i, l := range strings.Split(string(data), "\n") {
			for _, m := range refRe.FindAllStringSubmatch(l, -1) {
				for _, n := range m[1:] {
					if n == "" {
						continue
					}
					refs++
					if !sections[n] {
						fail("%s:%d: DESIGN.md §%s does not resolve (no `## %s.` heading)", rel, i+1, n, n)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d dangling reference(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d table entries exist, %d §-references resolve across %d DESIGN.md sections\n",
		entries, refs, len(sections))
}
