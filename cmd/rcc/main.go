// Command rcc compiles and runs RC-dialect programs: C with regions,
// reference-counted for safety, with the sameregion / traditional /
// parentptr annotations of Gay & Aiken (PLDI 2001).
//
// Usage:
//
//	rcc prog.rc                     # compile and run (inf configuration)
//	rcc -mode qs prog.rc            # barrier configuration: nq|qs|inf|nc|norc
//	rcc -backend malloc prog.rc     # memory backend: region|malloc|gc
//	rcc -stats prog.rc              # print runtime statistics
//	rcc -dump-ir prog.rc            # print bytecode instead of running
//	rcc -dump-infer prog.rc         # print inference results per check site
//	rcc -workload moss              # run a bundled benchmark workload
//	rcc -fmt prog.rc                # pretty-print the program
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rcgo"
	"rcgo/internal/ir"
	"rcgo/internal/rcc"
	"rcgo/internal/workloads"
)

func main() {
	mode := flag.String("mode", "inf", "barrier configuration: nq|qs|inf|nc|norc")
	backend := flag.String("backend", "region", "memory backend: region|malloc|gc")
	cat := flag.Bool("cat", false, "use C@-style stack scanning for locals")
	stats := flag.Bool("stats", false, "print runtime statistics")
	dumpIR := flag.Bool("dump-ir", false, "print compiled bytecode and exit")
	dumpInfer := flag.Bool("dump-infer", false, "print check-site inference results and exit")
	workload := flag.String("workload", "", "run a bundled workload instead of a file")
	scale := flag.Int("scale", 0, "workload scale (with -workload)")
	format := flag.Bool("fmt", false, "pretty-print the program and exit")
	profile := flag.Bool("profile", false, "print per-function instruction counts")
	flag.Parse()

	var src string
	switch {
	case *workload != "":
		w := workloads.ByName(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "rcc: unknown workload %q (have:", *workload)
			for _, x := range workloads.All() {
				fmt.Fprintf(os.Stderr, " %s", x.Name)
			}
			fmt.Fprintln(os.Stderr, ")")
			os.Exit(1)
		}
		src = w.Source(*scale)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "rcc:", err)
			os.Exit(1)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: rcc [flags] file.rc  (or -workload NAME); see -help")
		os.Exit(2)
	}

	if *format {
		parsed, err := rcc.Parse(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rcc:", err)
			os.Exit(1)
		}
		fmt.Print(rcc.Format(parsed))
		return
	}

	c, err := rcgo.Compile(src, rcgo.Mode(*mode))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcc:", err)
		os.Exit(1)
	}

	if *dumpInfer {
		safe, total := 0, 0
		for i := range c.Infer.SafeSite {
			if c.Infer.SiteSeen[i] {
				total++
				status := "checked"
				if c.Infer.SafeSite[i] {
					status = "safe"
					safe++
				}
				fmt.Printf("site %3d: %s\n", i, status)
			}
		}
		fmt.Printf("%d/%d annotated sites proven safe\n", safe, total)
		return
	}
	if *dumpIR {
		for _, f := range c.Prog.Funcs {
			fmt.Print(ir.Disasm(f))
		}
		return
	}

	res, err := rcgo.Run(c, rcgo.RunConfig{
		Backend:  rcgo.Backend(*backend),
		CAtStyle: *cat,
		Output:   os.Stdout,
		Profile:  *profile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcc:", err)
		os.Exit(1)
	}
	if *profile && res.Profile != nil {
		type row struct {
			name string
			n    int64
		}
		var rows []row
		for name, n := range res.Profile {
			rows = append(rows, row{name, n})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
		fmt.Fprintf(os.Stderr, "\n-- instructions by function:\n")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "--   %-20s %12d (%5.1f%%)\n",
				r.name, r.n, 100*float64(r.n)/float64(res.VM.Instructions))
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "\n-- %v, %d instructions, %d calls\n",
			res.Duration, res.VM.Instructions, res.VM.Calls)
		if res.Region != nil {
			s := res.Region
			fmt.Fprintf(os.Stderr, "-- allocs=%d regions=%d/%d live=%dB max=%dB\n",
				s.Allocs, s.RegionsDeleted, s.RegionsCreated, s.LiveBytes, s.MaxLiveBytes)
			fmt.Fprintf(os.Stderr, "-- ptr stores: full=%d same=%d trad=%d parent=%d safe=%d\n",
				s.FullUpdates, s.SameChecks, s.TradChecks, s.ParentChecks, s.UncheckedPtrs)
			fmt.Fprintf(os.Stderr, "-- rc ops: +%d -%d pins=%d unscan=%d objs\n",
				s.RCIncrements, s.RCDecrements, s.PinOps, s.UnscanObjects)
		}
		if res.Malloc != nil {
			fmt.Fprintf(os.Stderr, "-- malloc: allocs=%d frees=%d max=%dB\n",
				res.Malloc.Allocs, res.Malloc.Frees, res.Malloc.MaxLive*8)
		}
		if res.GC != nil {
			fmt.Fprintf(os.Stderr, "-- gc: allocs=%d collections=%d swept=%d max=%dB\n",
				res.GC.Allocs, res.GC.Collections, res.GC.Swept, res.GC.MaxLive*8)
		}
	}
}
