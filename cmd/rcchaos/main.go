// Command rcchaos runs the chaos harness for the concurrent region
// runtime (internal/chaos): a seeded sequential phase checked op-by-op
// against a reference model of the delete state machine, then seven
// concurrent phases — scheduler perturbation, error injection,
// allocation churn through the fast path's caches, multi-shard
// fabric churn with hundreds of live regions, ownership hand-off
// churn around a token ring, a contention storm of blocking
// acquirers against one hub region, and off-heap slab churn with
// injected map failures and immediate page reclaim — with failpoints armed on every
// instrumented lifecycle edge, a zombie watchdog patrolling (an owner
// watchdog in the contention phase), and Arena.Audit required clean
// at every quiesce point.
// Failpoint site coverage is reported at exit; the run fails if any
// site never fired.
//
// Meant to run under the race detector (make chaos):
//
//	go run -race rcgo/cmd/rcchaos -seed 1 -seq-ops 20000 -workers 8 -conc-ops 3000
//
// A single phase can be rerun in isolation with -phase (same seeds and
// failpoint rules as its slot in the full run, coverage gate skipped):
//
//	go run -race rcgo/cmd/rcchaos -phase contention -seed 1 -workers 8 -conc-ops 3000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rcgo/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for op generation and failpoint triggers")
	seqOps := flag.Int("seq-ops", 20000, "ops in the sequential model-checked phase")
	workers := flag.Int("workers", 8, "goroutines per concurrent phase")
	concOps := flag.Int("conc-ops", 3000, "ops per worker per concurrent phase")
	phase := flag.String("phase", "", "run a single phase by name (empty = full run)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Printf("rcchaos: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	cfg := chaos.Config{
		Seed:    *seed,
		SeqOps:  *seqOps,
		Workers: *workers,
		ConcOps: *concOps,
		Log:     logf,
	}

	if *phase != "" {
		known := false
		for _, name := range chaos.PhaseNames() {
			if name == *phase {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "rcchaos: unknown phase %q; phases are: %s\n",
				*phase, strings.Join(chaos.PhaseNames(), ", "))
			os.Exit(2)
		}
		if _, err := chaos.RunPhase(*phase, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rcchaos: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("rcchaos: PASS — phase %s clean (coverage gate skipped)\n", *phase)
		return
	}

	rep, err := chaos.Run(cfg)

	fmt.Printf("rcchaos: seed=%d\n", *seed)
	fmt.Printf("rcchaos: sequential: %d ops, outcomes %v\n", rep.SeqOps, rep.SeqOutcomes)
	for _, phase := range []struct {
		name string
		res  chaos.ConcResult
	}{{"perturb", rep.Perturb}, {"errors", rep.Errors}} {
		fmt.Printf("rcchaos: concurrent/%s: %d ops, watchdog flagged=%d healed=%d, swept=%d, audit violations=%d, trace total=%d dropped=%d\n",
			phase.name, phase.res.Ops, phase.res.WatchdogFlagged, phase.res.WatchdogHealed,
			phase.res.SweptAtQuiesce, len(phase.res.Audit.Violations),
			phase.res.TraceStats.Total, phase.res.TraceStats.Dropped)
	}
	fmt.Printf("rcchaos: concurrent/alloc-churn: %d ops, allocs=%d flushes=%d, audit violations=%d\n",
		rep.AllocChurn.Ops, rep.AllocChurn.AllocSuccesses, rep.AllocChurn.AllocFlushes,
		len(rep.AllocChurn.Audit.Violations))
	fmt.Printf("rcchaos: concurrent/fabric: %d ops, live-before-quiesce=%d shards-populated=%d allocs=%d, audit violations=%d\n",
		rep.Fabric.Ops, rep.Fabric.LiveBeforeQuiesce, rep.Fabric.ShardsPopulated,
		rep.Fabric.AllocSuccesses, len(rep.Fabric.Audit.Violations))
	fmt.Printf("rcchaos: concurrent/ownership: %d ops, allocs=%d acquires=%d releases=%d flushes=%d, audit violations=%d\n",
		rep.Ownership.Ops, rep.Ownership.AllocSuccesses, rep.Ownership.Acquires,
		rep.Ownership.Releases, rep.Ownership.OwnerFlushes, len(rep.Ownership.Audit.Violations))
	fmt.Printf("rcchaos: concurrent/contention: %d ops, waits=%d timeouts=%d cancels=%d, acquires=%d releases=%d revocations=%d, audit violations=%d\n",
		rep.Contention.Ops, rep.Contention.AcquireWaits, rep.Contention.AcquireTimeouts,
		rep.Contention.AcquireCancels, rep.Contention.Acquires, rep.Contention.Releases,
		rep.Contention.Revocations, len(rep.Contention.Audit.Violations))
	fmt.Printf("rcchaos: concurrent/slab: %d ops, allocs=%d slab refills=%d releases=%d leaked=%d, audit violations=%d\n",
		rep.Slab.Ops, rep.Slab.AllocSuccesses, rep.Slab.SlabRefills,
		rep.Slab.SlabReleases, rep.Slab.SlabPagesLeaked, len(rep.Slab.Audit.Violations))
	fmt.Println("rcchaos: failpoint site coverage:")
	for _, st := range rep.Coverage {
		fmt.Printf("rcchaos:   %-24s evals=%-8d fires=%d\n", st.Name, st.Evals, st.Fires)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcchaos: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("rcchaos: PASS — zero divergences, zero audit violations, full site coverage")
}
