// Command rcbench regenerates the tables and figures of the paper's
// evaluation (Section 5 of Gay & Aiken, "Language Support for Regions",
// PLDI 2001) over the eight workload programs.
//
// Usage:
//
//	rcbench                  # everything
//	rcbench -table 2         # one table (1, 2 or 3)
//	rcbench -figure 8        # one figure (7, 8 or 9)
//	rcbench -scale 50 -reps 5 -workloads moss,tile
//	rcbench -json            # machine-readable report on stdout
//	rcbench -alloc-ab 10 -ab-cpu 8   # Go-native allocation fast-path A/B
//	rcbench -fabric-ab 10 -fabric-cpu 8 -fabric-live 256   # arena fabric A/B
//	rcbench -advisor-ab 10 -advisor-cpu 8   # annotation-advisor gate A/B
//	rcbench -own-ab 10 -own-cpu 2    # ownership fast-path A/B (shared vs Owner token)
//	rcbench -contend-ab 10 -contend-cpu 4   # blocking-acquisition A/B (fast path + hand-off storm)
//	rcbench -slab-ab 10 -slab-cpu 4  # off-heap slab A/B (GC-heap chunks vs slab store, with a GC-pressure cell)
//	rcbench -advise              # profile a deliberately un-annotated
//	                             # grobner-mix replay and print the
//	                             # advisor's upgrade table; exits non-zero
//	                             # if no upgrade candidate is found
//	rcbench -json -workloads grobner -alloc-ab 10   # record a parallel section
//
// With -json the human tables are skipped (-table/-figure/-space/-bars
// are ignored) and a single exp.BenchReport document — schema
// "rcgo.bench/1", see internal/exp/json.go — is written to stdout, for
// recording BENCH_*.json trajectory files and for cmd/benchlint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rcgo/internal/exp"
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table (1, 2 or 3)")
	space := flag.Bool("space", false, "also report peak heap footprint per backend")
	figure := flag.Int("figure", 0, "regenerate only this figure (7, 8 or 9)")
	scale := flag.Int("scale", 0, "override workload scale (0 = default)")
	reps := flag.Int("reps", 3, "timed repetitions per cell (best is reported)")
	names := flag.String("workloads", "", "comma-separated workload subset")
	bars := flag.Bool("bars", false, "also render figures as bar charts")
	jsonOut := flag.Bool("json", false, "emit a machine-readable report (rcgo.bench/1) instead of tables")
	allocAB := flag.Int("alloc-ab", 0, "run the Go-native allocation fast-path A/B benchmarks, best of N interleaved runs per side (0 = skip)")
	abCPU := flag.Int("ab-cpu", 8, "GOMAXPROCS for the -alloc-ab benchmarks")
	fabricAB := flag.Int("fabric-ab", 0, "run the arena fabric A/B benchmarks (1 shard vs GOMAXPROCS-wide), best of N interleaved runs per side (0 = skip)")
	fabricCPU := flag.Int("fabric-cpu", 8, "GOMAXPROCS for the -fabric-ab benchmarks")
	fabricLive := flag.Int("fabric-live", 256, "live-region backdrop population for the -fabric-ab benchmarks")
	advisorAB := flag.Int("advisor-ab", 0, "run the annotation-advisor gate A/B benchmarks (disarmed vs armed), best of N interleaved runs per side (0 = skip)")
	advisorCPU := flag.Int("advisor-cpu", 8, "GOMAXPROCS for the -advisor-ab benchmarks")
	ownAB := flag.Int("own-ab", 0, "run the ownership fast-path A/B benchmarks (shared path vs Owner token), best of N interleaved runs per side (0 = skip)")
	ownCPU := flag.Int("own-cpu", 2, "GOMAXPROCS for the -own-ab benchmarks")
	contendAB := flag.Int("contend-ab", 0, "run the blocking-acquisition A/B benchmarks (TryAcquire cycle vs AcquireContext, uncontended and under a hand-off storm), best of N interleaved runs per side (0 = skip)")
	contendCPU := flag.Int("contend-cpu", 4, "GOMAXPROCS (and contender count) for the -contend-ab benchmarks")
	slabAB := flag.Int("slab-ab", 0, "run the off-heap slab A/B benchmarks (GC-heap chunks vs the slab backing store, plus a GC-pressure cell), best of N interleaved runs per side (0 = skip)")
	slabCPU := flag.Int("slab-cpu", 4, "GOMAXPROCS for the -slab-ab benchmarks")
	advise := flag.Bool("advise", false, "replay the grobner op mix un-annotated through an advisor-armed arena and print the upgrade table; exit non-zero if no upgrade candidate is found")
	adviseAllocs := flag.Int("advise-allocs", 0, "allocation count for the -advise replay (0 = default)")
	flag.Parse()

	o := exp.Options{Scale: *scale, Reps: *reps}
	if *names != "" {
		o.Workloads = strings.Split(*names, ",")
	}

	all := *table == 0 && *figure == 0
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "rcbench:", err)
		os.Exit(1)
	}

	if *jsonOut {
		report, err := exp.BenchJSON(o)
		if err != nil {
			fail(err)
		}
		if *allocAB > 0 {
			report.Parallel, err = exp.AllocAB(*abCPU, *allocAB)
			if err != nil {
				fail(err)
			}
		}
		if *fabricAB > 0 {
			report.Fabric, err = exp.FabricAB(*fabricCPU, *fabricAB, *fabricLive)
			if err != nil {
				fail(err)
			}
		}
		if *advisorAB > 0 {
			report.Advisor, err = exp.AdvisorAB(*advisorCPU, *advisorAB)
			if err != nil {
				fail(err)
			}
		}
		if *ownAB > 0 {
			report.Ownership, err = exp.OwnAB(*ownCPU, *ownAB)
			if err != nil {
				fail(err)
			}
		}
		if *contendAB > 0 {
			report.Contention, err = exp.ContendAB(*contendCPU, *contendAB)
			if err != nil {
				fail(err)
			}
		}
		if *slabAB > 0 {
			report.Slab, err = exp.SlabAB(*slabCPU, *slabAB)
			if err != nil {
				fail(err)
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fail(err)
		}
		return
	}

	if *advise {
		rep, err := exp.AdviseReplay(*adviseAllocs)
		if err != nil {
			fail(err)
		}
		rep.WriteTable(os.Stdout)
		if rep.UpgradeCandidates == 0 {
			fail(fmt.Errorf("advise replay found no upgrade candidates — the advisor lost the flavour lattice"))
		}
		if *allocAB == 0 && *fabricAB == 0 && *advisorAB == 0 && *ownAB == 0 && *contendAB == 0 && *slabAB == 0 && *table == 0 && *figure == 0 {
			return
		}
		fmt.Println()
	}

	if *allocAB > 0 {
		cells, err := exp.AllocAB(*abCPU, *allocAB)
		if err != nil {
			fail(err)
		}
		exp.PrintAllocAB(os.Stdout, cells)
		if *fabricAB == 0 && *advisorAB == 0 && *ownAB == 0 && *contendAB == 0 && *slabAB == 0 && *table == 0 && *figure == 0 {
			return
		}
		fmt.Println()
	}

	if *fabricAB > 0 {
		cells, err := exp.FabricAB(*fabricCPU, *fabricAB, *fabricLive)
		if err != nil {
			fail(err)
		}
		exp.PrintFabricAB(os.Stdout, cells)
		if *advisorAB == 0 && *ownAB == 0 && *contendAB == 0 && *slabAB == 0 && *table == 0 && *figure == 0 {
			return
		}
		fmt.Println()
	}

	if *advisorAB > 0 {
		cells, err := exp.AdvisorAB(*advisorCPU, *advisorAB)
		if err != nil {
			fail(err)
		}
		exp.PrintAdvisorAB(os.Stdout, cells)
		if *ownAB == 0 && *contendAB == 0 && *slabAB == 0 && *table == 0 && *figure == 0 {
			return
		}
		fmt.Println()
	}

	if *ownAB > 0 {
		cells, err := exp.OwnAB(*ownCPU, *ownAB)
		if err != nil {
			fail(err)
		}
		exp.PrintOwnAB(os.Stdout, cells)
		if *contendAB == 0 && *slabAB == 0 && *table == 0 && *figure == 0 {
			return
		}
		fmt.Println()
	}

	if *contendAB > 0 {
		cells, err := exp.ContendAB(*contendCPU, *contendAB)
		if err != nil {
			fail(err)
		}
		exp.PrintContendAB(os.Stdout, cells)
		if *slabAB == 0 && *table == 0 && *figure == 0 {
			return
		}
		fmt.Println()
	}

	if *slabAB > 0 {
		cells, err := exp.SlabAB(*slabCPU, *slabAB)
		if err != nil {
			fail(err)
		}
		exp.PrintSlabAB(os.Stdout, cells)
		if *table == 0 && *figure == 0 {
			return
		}
		fmt.Println()
	}

	if all || *table == 1 {
		rows, err := exp.Table1(o)
		if err != nil {
			fail(err)
		}
		exp.PrintTable1(os.Stdout, rows)
		fmt.Println()
	}
	if all || *figure == 7 {
		rows, err := exp.Figure7(o)
		if err != nil {
			fail(err)
		}
		exp.PrintFigure7(os.Stdout, rows)
		if *bars {
			exp.PrintFigure7Bars(os.Stdout, rows)
		}
		fmt.Println()
	}
	if all || *table == 2 {
		rows, err := exp.Table2(o)
		if err != nil {
			fail(err)
		}
		exp.PrintTable2(os.Stdout, rows)
		fmt.Println()
	}
	if all || *table == 3 {
		rows, err := exp.Table3(o)
		if err != nil {
			fail(err)
		}
		exp.PrintTable3(os.Stdout, rows)
		fmt.Println()
	}
	if all || *figure == 8 {
		rows, err := exp.Figure8(o)
		if err != nil {
			fail(err)
		}
		exp.PrintFigure8(os.Stdout, rows)
		if *bars {
			exp.PrintFigure8Bars(os.Stdout, rows)
		}
		fmt.Println()
	}
	if all || *figure == 9 {
		rows, err := exp.Figure9(o)
		if err != nil {
			fail(err)
		}
		exp.PrintFigure9(os.Stdout, rows)
		if *bars {
			exp.PrintFigure9Bars(os.Stdout, rows)
		}
	}
	if *space {
		fmt.Println()
		rows, err := exp.TableSpace(o)
		if err != nil {
			fail(err)
		}
		exp.PrintTableSpace(os.Stdout, rows)
	}
}
