package rcgo

import (
	"sync/atomic"
	"unsafe"
)

// Arena-wide cumulative operation counters for the concurrent Go-native
// runtime, mirroring internal/region.Stats — the dynamic counts the
// paper's Table 2 reports (reference-count updates versus cheap
// annotated checks), kept online instead of per offline run.
//
// Design (DESIGN.md §"Observability"):
//
//   - Counters are sharded atomics: each op picks a shard by hashing a
//     pointer it already holds (the slot address on store paths, the
//     region on lifecycle paths), so concurrent goroutines working on
//     different slots rarely share a counter cache line and the shards
//     scale like the slot registry does.
//   - Counting is gated by a single atomic pointer, cached on every
//     Region (first cache line, next to the identity fields the store
//     paths read anyway) and owned by the arena. The annotated-store
//     fast paths (SetSame/SetTrad/SetParent) are the paper's whole cost
//     argument — check-only, no shared-memory writes — and on modern
//     x86 even an uncontended LOCK-prefixed add costs a store-buffer
//     drain comparable to the entire store; an extra dependent load
//     through the arena is measurable too, which is why the gate lives
//     on the region. Disabled (the default), instrumentation is one
//     already-hot pointer load and a never-taken branch, measured
//     within noise of the uninstrumented runtime (EXPERIMENTS.md
//     §"Observability overhead"); enabled, the full sharded-atomic cost
//     is paid and documented there.
//   - EnableMetrics is one-way and idempotent: counters are cumulative
//     from the moment of enabling and never reset, so deltas taken by a
//     monitoring scraper are always non-negative.
//
// Counters are exact, not sampled: every counted operation increments
// exactly one shard exactly once (verified under -race by
// region_trace_test.go).

// metricShards is the number of counter shards. Shards are padded to
// cache-line multiples so two shards never share a line.
const metricShards = 64

// counterShard is one shard of every counter. 24 counters * 8 bytes =
// 192 bytes — already a cache-line multiple, so shards start on
// separate cache lines with no explicit padding.
type counterShard struct {
	allocs           atomic.Int64
	countedStores    atomic.Int64
	rcIncrements     atomic.Int64
	rcDecrements     atomic.Int64
	sameChecks       atomic.Int64
	tradChecks       atomic.Int64
	parentChecks     atomic.Int64
	checkFailures    atomic.Int64
	deletes          atomic.Int64
	deletesBlocked   atomic.Int64
	deferredDeletes  atomic.Int64
	reclaims         atomic.Int64
	pinOps           atomic.Int64
	allocFlushes     atomic.Int64
	acquires         atomic.Int64
	releases         atomic.Int64
	ownerFlushes     atomic.Int64
	acquireWaits     atomic.Int64
	acquireTimeouts  atomic.Int64
	acquireCancels   atomic.Int64
	ownerRevocations atomic.Int64
	acquireWaitNanos atomic.Int64
	slabRefills      atomic.Int64
	slabReleases     atomic.Int64
}

// arenaMetrics is the sharded counter block, allocated when metrics are
// enabled (64 shards * 128 B = 8 KiB per arena).
type arenaMetrics struct {
	shards [metricShards]counterShard
}

// shard picks the counter shard for a pointer the caller already holds,
// with the same Fibonacci hash the slot registry uses.
func (m *arenaMetrics) shard(p unsafe.Pointer) *counterShard {
	h := uintptr(p) * 0x9E3779B97F4A7C15 >> 32
	return &m.shards[h%metricShards]
}

// EnableMetrics turns on the arena's cumulative operation counters.
// Idempotent; counters accumulate from the first call and are never
// reset. DebugHandler and PublishExpvar enable metrics implicitly.
//
// The gate each operation reads is the per-region cached pointer, so
// enabling walks the registry to arm every existing region; regions
// created concurrently with the first EnableMetrics arm themselves
// (newRegion registers before it reads a.metrics, so either the walk
// sees the region or the region sees the pointer). Operations already
// in flight when metrics come up may go uncounted — deltas are exact
// only between two snapshots taken while metrics are on.
//
// Deprecated: pass WithMetrics to NewArena instead, which arms the gate
// before any operation can run, so counters cover the arena's whole
// life. EnableMetrics remains for turning counters on mid-life
// (DebugHandler and PublishExpvar still use it).
func (a *Arena) EnableMetrics() {
	if a.metrics.CompareAndSwap(nil, &arenaMetrics{}) {
		m := a.metrics.Load()
		a.EachRegion(func(r *Region) { r.metrics.Store(m) })
	}
}

// MetricsEnabled reports whether the cumulative counters are active.
func (a *Arena) MetricsEnabled() bool { return a.metrics.Load() != nil }

// slotCounters returns the counter shard for a store against the given
// slot held by an object of region r, or nil when metrics are disabled.
// Small enough to inline into the store fast paths, and reads only the
// region's own first cache line until metrics are on.
func (r *Region) slotCounters(p unsafe.Pointer) *counterShard {
	if m := r.metrics.Load(); m != nil {
		return m.shard(p)
	}
	return nil
}

// counters returns the counter shard for a lifecycle operation on r, or
// nil when metrics are disabled.
func (r *Region) counters() *counterShard {
	if m := r.metrics.Load(); m != nil {
		return m.shard(unsafe.Pointer(r))
	}
	return nil
}

// ArenaCounters is a snapshot of the arena's cumulative operation
// counters (zero while metrics are disabled). It is the online analogue
// of internal/region.Stats: the paper's Table 2 compares RCIncrements +
// RCDecrements (the expensive protocol) against SameChecks + TradChecks
// + ParentChecks (the cheap annotated checks).
type ArenaCounters struct {
	// Allocs counts successful object allocations across all regions.
	Allocs int64 `json:"allocs"`
	// CountedStores counts completed SetRef stores (the paper's
	// Figure 3(a) full-update protocol).
	CountedStores int64 `json:"counted_stores"`
	// RCIncrements / RCDecrements count committed reference-count
	// updates, from counted stores, pins, and delete-time unscans.
	RCIncrements int64 `json:"rc_increments"`
	RCDecrements int64 `json:"rc_decrements"`
	// SameChecks / TradChecks / ParentChecks count annotated stores by
	// flavour (each SetSame/SetTrad/SetParent call runs one check).
	SameChecks   int64 `json:"same_checks"`
	TradChecks   int64 `json:"trad_checks"`
	ParentChecks int64 `json:"parent_checks"`
	// CheckFailures counts annotated stores rejected with ErrBadRef.
	CheckFailures int64 `json:"check_failures"`
	// Deletes counts successful explicit Deletes.
	Deletes int64 `json:"deletes"`
	// DeletesBlocked counts explicit Deletes that failed with
	// ErrRegionInUse (live references or subregions).
	DeletesBlocked int64 `json:"deletes_blocked"`
	// DeferredDeletes counts DeleteDeferred calls that marked a live
	// region (whether it reclaimed immediately or became a zombie).
	DeferredDeletes int64 `json:"deferred_deletes"`
	// Reclaims counts regions whose storage was released; every dead
	// region is reclaimed exactly once.
	Reclaims int64 `json:"reclaims"`
	// PinOps counts successful Pin/TryPin calls.
	PinOps int64 `json:"pin_ops"`
	// AllocFlushes counts non-empty drains of the allocation fast
	// path's batched counter deltas (region_alloccache.go) — flush
	// batching efficiency, not an object count: Allocs/AllocFlushes
	// approximates objects credited per flush.
	AllocFlushes int64 `json:"alloc_flushes"`
	// Acquires / Releases count successful exclusive-ownership
	// transitions (region_owner.go), whether uncontended or delivered by
	// hand-off. An Owner.Delete counts as one release and one delete; a
	// forced revocation (OwnerRevocations) retires a token without a
	// release, so at quiesce Acquires == Releases + OwnerRevocations.
	Acquires int64 `json:"acquires"`
	Releases int64 `json:"releases"`
	// OwnerFlushes counts Release-time merges of owner-local metric
	// deltas that carried at least one nonzero counter — the ownership
	// analogue of AllocFlushes.
	OwnerFlushes int64 `json:"owner_flushes"`
	// AcquireWaits counts AcquireContext calls that found the region
	// owned and parked on its wait queue; AcquireTimeouts and
	// AcquireCancels count the parked waits that ended with
	// context.DeadlineExceeded and context.Canceled respectively (the
	// remainder received a hand-off). AcquireWaitNanos accrues the wall
	// time parked waiters spent waiting, however the wait ended —
	// AcquireWaitNanos/AcquireWaits is the mean queueing delay.
	AcquireWaits     int64 `json:"acquire_waits"`
	AcquireTimeouts  int64 `json:"acquire_timeouts"`
	AcquireCancels   int64 `json:"acquire_cancels"`
	AcquireWaitNanos int64 `json:"acquire_wait_ns"`
	// OwnerRevocations counts stale tokens forcibly retired by the
	// OwnerWatchdog's escape hatch (region_watchdog.go).
	OwnerRevocations int64 `json:"owner_revocations"`
	// SlabRefills counts object chunks carved from the off-heap
	// backing store (region_slab.go); SlabReleases counts pages
	// returned to it at region reclaim. At quiesce with every
	// slab-backed region reclaimed, SlabRefills == SlabReleases — a
	// shortfall is a leaked page (the chaos slab phase's judge).
	SlabRefills  int64 `json:"slab_refills"`
	SlabReleases int64 `json:"slab_releases"`
}

// Counters returns a snapshot of the cumulative counters by summing the
// shards. Each shard is read atomically; the sum is a consistent total
// once the arena quiesces and a monotonic approximation while ops are in
// flight.
func (a *Arena) Counters() ArenaCounters {
	m := a.metrics.Load()
	if m == nil {
		return ArenaCounters{}
	}
	var c ArenaCounters
	for i := range m.shards {
		s := &m.shards[i]
		c.Allocs += s.allocs.Load()
		c.CountedStores += s.countedStores.Load()
		c.RCIncrements += s.rcIncrements.Load()
		c.RCDecrements += s.rcDecrements.Load()
		c.SameChecks += s.sameChecks.Load()
		c.TradChecks += s.tradChecks.Load()
		c.ParentChecks += s.parentChecks.Load()
		c.CheckFailures += s.checkFailures.Load()
		c.Deletes += s.deletes.Load()
		c.DeletesBlocked += s.deletesBlocked.Load()
		c.DeferredDeletes += s.deferredDeletes.Load()
		c.Reclaims += s.reclaims.Load()
		c.PinOps += s.pinOps.Load()
		c.AllocFlushes += s.allocFlushes.Load()
		c.Acquires += s.acquires.Load()
		c.Releases += s.releases.Load()
		c.OwnerFlushes += s.ownerFlushes.Load()
		c.AcquireWaits += s.acquireWaits.Load()
		c.AcquireTimeouts += s.acquireTimeouts.Load()
		c.AcquireCancels += s.acquireCancels.Load()
		c.AcquireWaitNanos += s.acquireWaitNanos.Load()
		c.OwnerRevocations += s.ownerRevocations.Load()
		c.SlabRefills += s.slabRefills.Load()
		c.SlabReleases += s.slabReleases.Load()
	}
	return c
}
