// Package rcgo is a Go reproduction of the system described in David Gay
// and Alex Aiken, "Language Support for Regions" (PLDI 2001): RC, a C
// dialect with reference-counted regions, its sameregion / traditional /
// parentptr type annotations, and the region type system with constraint
// inference that eliminates annotation checks statically.
//
// The package exposes two layers:
//
//   - The RC toolchain: Compile and Run take RC-dialect source through the
//     front end, the rlang constraint inference, the bytecode compiler and
//     the VM, over a choice of memory backends (reference-counted regions,
//     malloc/free emulation, or a conservative collector) and barrier
//     configurations (nq / qs / inf / nc / norc), mirroring the paper's
//     evaluation matrix.
//
//   - A Go-native safe region API (NewArena, Arena, Region, Alloc, Obj,
//     Ref, the Set*/MustSet* store flavours, Pin): arenas for Go programs
//     with the paper's dynamic safety guarantee — deleting a region fails
//     while external references remain. The runtime is safe for
//     concurrent use: reference counts are atomic, counted slots register
//     in sharded per-region registries, and the annotated stores
//     (SetSame, SetTrad, SetParent) stay check-only with no writes to
//     shared cache lines, so they scale linearly across goroutines. See
//     region_api.go, region_store.go and region_stats.go.
package rcgo

import (
	"fmt"
	"io"
	"time"

	"rcgo/internal/alloc"
	"rcgo/internal/compile"
	"rcgo/internal/ir"
	"rcgo/internal/rcc"
	"rcgo/internal/region"
	"rcgo/internal/rlang"
	"rcgo/internal/vm"
)

// Mode names a barrier configuration from the paper's evaluation.
type Mode string

const (
	// ModeNQ ignores annotations: every pointer store runs the full
	// reference-count update.
	ModeNQ Mode = "nq"
	// ModeQS uses annotations with runtime checks.
	ModeQS Mode = "qs"
	// ModeInf removes the checks the constraint inference proves safe.
	ModeInf Mode = "inf"
	// ModeNC (unsafely) removes all annotation checks.
	ModeNC Mode = "nc"
	// ModeNoRC disables reference counting entirely ("norc").
	ModeNoRC Mode = "norc"
)

// Backend names a memory manager.
type Backend string

const (
	// BackendRegion is the RC runtime (reference-counted regions).
	BackendRegion Backend = "region"
	// BackendMalloc is the region-emulation library over malloc/free
	// (the paper's "lea" configuration).
	BackendMalloc Backend = "malloc"
	// BackendGC is the emulation over the conservative mark-sweep
	// collector (the paper's "GC" configuration).
	BackendGC Backend = "gc"
)

// Compiled is a fully analyzed and compiled RC program.
type Compiled struct {
	Checked *rcc.CheckedProgram
	Rlang   *rlang.Program
	Infer   *rlang.InferResult
	Prog    *ir.Program
	Mode    Mode
}

// Compile runs the pipeline: parse, type-check, translate to rlang, run
// the constraint inference, and lower to bytecode under the given mode.
func Compile(src string, mode Mode) (*Compiled, error) {
	prog, err := rcc.Parse(src)
	if err != nil {
		return nil, err
	}
	cp, err := rcc.Check(prog, true)
	if err != nil {
		return nil, err
	}
	rp := rlang.Translate(cp)
	inf := rlang.Infer(rp)
	// Validate the inferred typing against the Figure 6 rules: check
	// eliminations rest on an admissible typing, never on a fixpoint bug.
	if err := rlang.CheckProgram(rp, inf); err != nil {
		return nil, err
	}
	cmode, err := compileMode(mode)
	if err != nil {
		return nil, err
	}
	bc, err := compile.Compile(cp, cmode, inf.SafeSite)
	if err != nil {
		return nil, err
	}
	return &Compiled{Checked: cp, Rlang: rp, Infer: inf, Prog: bc, Mode: mode}, nil
}

func compileMode(m Mode) (compile.Mode, error) {
	switch m {
	case ModeNQ:
		return compile.ModeNQ, nil
	case ModeQS:
		return compile.ModeQS, nil
	case ModeInf, "":
		return compile.ModeInf, nil
	case ModeNC:
		return compile.ModeNC, nil
	case ModeNoRC:
		return compile.ModeNoRC, nil
	}
	return 0, fmt.Errorf("rcgo: unknown mode %q", m)
}

// RunConfig configures program execution.
type RunConfig struct {
	// Backend selects the memory manager (default BackendRegion).
	Backend Backend
	// CAtStyle runs the region backend with C@'s local-variable protocol
	// (stack scan at deleteregion) instead of RC's pins.
	CAtStyle bool
	// Output receives print_* output.
	Output io.Writer
	// MaxSteps bounds execution (0 = unlimited).
	MaxSteps int64
	// StackPages sizes the simulated stack.
	StackPages int
	// ParentCheckByWalk and DisablePointerFree are ablation switches for
	// the region runtime.
	ParentCheckByWalk  bool
	DisablePointerFree bool
	// Profile enables per-function instruction counting.
	Profile bool
}

// RunResult reports an execution's statistics.
type RunResult struct {
	Duration time.Duration
	VM       vm.Stats
	// Region is non-nil for the region backend.
	Region *region.Stats
	// Malloc/GC are non-nil for the corresponding emulation backends.
	Malloc *alloc.MallocStats
	GC     *alloc.GCStats
	// MaxHeapBytes is the peak simulated heap footprint.
	MaxHeapBytes int64
	// Profile holds per-function instruction counts when requested.
	Profile map[string]int64
}

// Run executes a compiled program and returns its statistics; program
// aborts (failed checks, unsafe deletions) are returned as errors.
func Run(c *Compiled, cfg RunConfig) (*RunResult, error) {
	vcfg := vm.Config{
		Output:             cfg.Output,
		MaxSteps:           cfg.MaxSteps,
		StackPages:         cfg.StackPages,
		ParentCheckByWalk:  cfg.ParentCheckByWalk,
		DisablePointerFree: cfg.DisablePointerFree,
		Profile:            cfg.Profile,
	}
	switch cfg.Backend {
	case BackendRegion, "":
		vcfg.Backend = vm.BackendRegion
		vcfg.Counting = c.Mode != ModeNoRC
		vcfg.Locals = vm.LocalsPins
		if cfg.CAtStyle {
			vcfg.Locals = vm.LocalsStackScan
		}
		if !vcfg.Counting {
			vcfg.Locals = vm.LocalsNone
		}
	case BackendMalloc:
		vcfg.Backend = vm.BackendMalloc
	case BackendGC:
		vcfg.Backend = vm.BackendGC
	default:
		return nil, fmt.Errorf("rcgo: unknown backend %q", cfg.Backend)
	}
	m := vm.New(c.Prog, vcfg)
	start := time.Now()
	err := m.Run()
	res := &RunResult{Duration: time.Since(start), VM: m.Stats, Profile: m.Profile()}
	switch vcfg.Backend {
	case vm.BackendRegion:
		st := m.RT.Stats
		res.Region = &st
		res.MaxHeapBytes = st.MaxLiveBytes
	case vm.BackendMalloc:
		st := m.EmuMallocStats()
		res.Malloc = &st
		res.MaxHeapBytes = st.MaxLive * 8
	case vm.BackendGC:
		st := m.EmuGCStats()
		res.GC = &st
		res.MaxHeapBytes = st.MaxLive * 8
	}
	return res, err
}

// RunSource compiles and runs in one step.
func RunSource(src string, mode Mode, cfg RunConfig) (*RunResult, error) {
	c, err := Compile(src, mode)
	if err != nil {
		return nil, err
	}
	return Run(c, cfg)
}
