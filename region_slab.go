package rcgo

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"rcgo/internal/slab"
)

// Off-GC-heap backing store for region payloads (DESIGN.md §16).
//
// The paper's reclaim-at-delete win only materialises when payloads
// live outside the collected heap: with ordinary make/new chunks,
// deleting a region frees nothing until the next GC cycle, and heavy
// traffic pays heap-scan pressure proportional to total allocation.
// With a backing store attached (WithOffHeapSlabs / WithBackingStore),
// the allocation fast path (region_alloccache.go) carves its per-type
// object chunks out of 8 KiB slab blocks instead, and reclaim returns
// every one of the region's blocks to the store the moment the region
// dies — the GC never scans a slab-backed payload, and the memory is
// reusable immediately.
//
// What keeps this sound — the pointer-safety contract, stated in full
// in DESIGN.md §16 and enforced here in two places:
//
//  1. Admission: only pointer-free payload types are slab-backed.
//     chunkSlabEligible walks T with reflect once per instantiation;
//     any type containing a Go pointer (Ref fields included — a Ref
//     holds an atomic.Pointer) takes the ordinary GC-heap chunk path
//     unchanged. So the only pointer living in slab memory is the Obj
//     header's region back-pointer, which the arena's registry keeps
//     alive until reclaim — GC never needs to see it.
//  2. Reclaim: a page is returned to the store only after its chunk's
//     claim cursor is killed and every claim that preceded the kill
//     has published its Obj-header write (the writer gate below), so a
//     stale claimer can never write into a page the store has recycled
//     into another region.
//
// The writer gate: a slab chunk's claimer fetch-adds the cursor,
// writes the Obj header, then increments the chunk's claimed counter —
// one extra atomic per allocation over the heap-chunk path. Reclaim
// swaps a poisoned value into the cursor; the swap's return value is
// exactly the number of claim attempts that preceded the kill, of
// which min(attempts, len(buf)) succeeded and will each publish one
// claimed increment. Reclaim spins until claimed reaches that bound,
// then frees the page. Each claimed.Add is a release operation
// sequenced after its header write, and the read that observes the
// final count acquires the whole chain — so every pre-kill header
// write is visible (and done) before the page is reused; claims after
// the kill see an exhausted cursor and never touch the page.
//
// Dangling handles: a *Obj[T] into a slab-backed region is an off-heap
// pointer the GC cannot trace. While the region is alive the handle is
// as good as any heap pointer; once the region is deleted its pages
// are recycled, and using the handle reads (or, through Value writes,
// corrupts) whatever lives there now — unlike heap-backed objects,
// whose storage the GC keeps intact and whose Use() panics
// deterministically. Pin (or the rc protocol generally) is the
// sanctioned way to hold a handle across code that may delete regions;
// DESIGN.md §16 spells out the three sanctioned reference shapes.

// BackingStore is the pluggable page-level allocator behind slab-backed
// object chunks. Alloc returns a zeroed, 8-byte-aligned (in practice
// 8 KiB-aligned) block of at least size bytes, or an error — any error
// makes the runtime fall back to GC-heap chunks for that refill, so a
// store may refuse (budget spent, closed, map failure) without
// breaking allocation. Free returns a block for immediate reuse and is
// called exactly once per Alloc, always after the runtime has
// quiesced writers into the block. Implementations must be safe for
// concurrent use.
type BackingStore interface {
	Alloc(size int) (unsafe.Pointer, error)
	Free(p unsafe.Pointer, size int)
	Stats() SlabStats
	Close() error
}

// SlabStats is a snapshot of a backing store's page accounting,
// exact at quiesce like every other counter in the runtime. Pages are
// store blocks (8–64 KiB); CarvedPages partitions into InUsePages +
// FreePages.
type SlabStats struct {
	Segments    int64 `json:"segments"`
	MappedBytes int64 `json:"mapped_bytes"`
	CarvedPages int64 `json:"carved_pages"`
	InUsePages  int64 `json:"in_use_pages"`
	FreePages   int64 `json:"free_pages"`
	InUseBytes  int64 `json:"in_use_bytes"`
	FreeBytes   int64 `json:"free_bytes"`
}

// slabStore adapts internal/slab.Store to the BackingStore interface.
type slabStore struct{ s *slab.Store }

func (b slabStore) Alloc(size int) (unsafe.Pointer, error) { return b.s.Alloc(size) }
func (b slabStore) Free(p unsafe.Pointer, size int)        { b.s.Free(p, size) }
func (b slabStore) Close() error                           { return b.s.Close() }
func (b slabStore) Stats() SlabStats {
	st := b.s.Stats()
	return SlabStats{
		Segments:    st.Segments,
		MappedBytes: st.MappedBytes,
		CarvedPages: st.CarvedPages,
		InUsePages:  st.InUsePages,
		FreePages:   st.FreePages,
		InUseBytes:  st.InUseBytes,
		FreeBytes:   st.FreeBytes,
	}
}

// WithOffHeapSlabs attaches a fresh internal/slab store to the arena:
// pointer-free payload types are chunked out of mmap-backed 8 KiB
// blocks (a GC-heap segment backend on platforms without mmap), and
// reclaim returns a region's blocks immediately at delete. Close the
// store with Arena.CloseBackingStore once the arena quiesces. The
// option only engages the fast path — with WithAllocCache(false) the
// slow ablation path still allocates individual GC-heap objects.
func WithOffHeapSlabs() Option {
	return func(c *arenaConfig) { c.backing = NewSlabStore() }
}

// NewSlabStore returns a fresh off-heap slab store — the same store
// WithOffHeapSlabs attaches — for callers that want to share one
// long-lived store across several arenas via WithBackingStore (its
// page free lists stay warm across arena lifetimes). The caller owns
// Close; Arena.CloseBackingStore forwards to it.
func NewSlabStore() BackingStore {
	return slabStore{s: slab.New(slab.Config{})}
}

// WithBackingStore attaches a caller-supplied page store instead of
// the built-in slab store — the pluggable seam for capped stores,
// instrumented stores, or test doubles. nil detaches (the default:
// ordinary GC-heap chunks).
func WithBackingStore(bs BackingStore) Option {
	return func(c *arenaConfig) { c.backing = bs }
}

// SlabStats returns the backing store's page accounting and whether a
// store is attached at all.
func (a *Arena) SlabStats() (SlabStats, bool) {
	if a.backing == nil {
		return SlabStats{}, false
	}
	return a.backing.Stats(), true
}

// CloseBackingStore closes the attached backing store, unmapping its
// segments. Idempotent, nil without a store. Callers own the
// quiescence argument: every region whose payloads the store backed
// must already be reclaimed (or never touched again) — outstanding
// slab blocks become invalid at once, exactly like freeing a region's
// pages in the paper's runtime.
func (a *Arena) CloseBackingStore() error {
	if a.backing == nil {
		return nil
	}
	return a.backing.Close()
}

// ---------------------------------------------------------------------------
// The pointer-free admission gate.

// slabEligibleCache memoizes chunkSlabEligible per Obj instantiation,
// keyed by a nil *T exactly like chunkPools.
var slabEligibleCache sync.Map

// chunkSlabEligible reports whether T may be slab-backed: T must
// contain no Go pointers, so that nothing the GC must trace ever lives
// in an unscanned slab page. Ref, string, slice, map, chan, func and
// interface fields all disqualify; arrays and structs are walked
// recursively. The verdict is computed once per instantiation.
func chunkSlabEligible[T any]() bool {
	key := any((*T)(nil))
	if v, ok := slabEligibleCache.Load(key); ok {
		return v.(bool)
	}
	ok := typeIsPointerFree(reflect.TypeOf((*T)(nil)).Elem())
	slabEligibleCache.Store(key, ok)
	return ok
}

func typeIsPointerFree(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return typeIsPointerFree(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !typeIsPointerFree(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		// Ptr, UnsafePointer, Chan, Map, Func, Interface, Slice, String
		// all contain pointers the GC would need to scan.
		return false
	}
}

// ---------------------------------------------------------------------------
// Region-owned page tracking.

// slabChunkQuiescer is the type-erased face of a slab-backed
// objChunk[T]: quiesce kills the claim cursor and waits out in-flight
// claimers, after which the chunk's page has no writers and may be
// freed.
type slabChunkQuiescer interface{ quiesce() }

// slabPage is one store block owned by a region, with the chunk carved
// into it. The entry holds the chunk strongly so quiesce can reach its
// cursor even after the chunk left the parking slot.
type slabPage struct {
	chunk slabChunkQuiescer
	p     unsafe.Pointer
	size  int
}

// slabPageList tracks a region's slab pages from carve to reclaim.
// closed flips exactly once, under mu, at reclaim: a carve that loses
// the race (add returns false) frees its page immediately and the
// allocation falls back to the GC heap — the mutex's release/acquire
// edge guarantees the closing reclaim cannot miss a tracked page.
type slabPageList struct {
	mu     sync.Mutex
	closed bool
	pages  []slabPage
}

// add tracks a freshly carved page; false means the region is already
// reclaiming and the caller keeps ownership of the page.
func (l *slabPageList) add(pg slabPage) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	l.pages = append(l.pages, pg)
	l.mu.Unlock()
	return true
}

// close marks the list closed and surrenders the tracked pages to the
// caller, exactly once; later calls return nil.
func (l *slabPageList) close() []slabPage {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	pages := l.pages
	l.pages = nil
	l.mu.Unlock()
	return pages
}

// count returns the number of currently tracked pages (0 once closed);
// the auditor's slab-pages-total rule sums it across live regions.
func (l *slabPageList) count() int64 {
	l.mu.Lock()
	n := len(l.pages)
	l.mu.Unlock()
	return int64(n)
}

// slabPageCount is the auditor's accessor for the region's tracked
// pages.
func (r *Region) slabPageCount() int64 { return r.slabPages.count() }

// releaseSlabPages is reclaim's page return: close the list (exactly
// once), quiesce every chunk's writers, then hand each page back to
// the store for immediate reuse. Runs after the stateDead transition,
// so no new slab carve can be tracked (add observes closed) and every
// claimer either finished before the cursor kill or sees the poisoned
// cursor — the writer gate makes "finished" mean "its header write
// landed before the page is freed".
func (r *Region) releaseSlabPages() {
	pages := r.slabPages.close()
	if len(pages) == 0 {
		return
	}
	bs := r.arena.backing
	for _, pg := range pages {
		pg.chunk.quiesce()
		bs.Free(pg.p, pg.size)
	}
	if c := r.counters(); c != nil {
		c.slabReleases.Add(int64(len(pages)))
	}
	r.arena.traceEvent(TraceSlabReleased, r)
}

// ---------------------------------------------------------------------------
// The slab refill edge.

// slabCursorKill is the poisoned cursor value quiesce stores: any
// claimer's fetch-add lands far past every possible chunk length, so
// the claim check fails without wrapping.
const slabCursorKill = int64(1) << 62

// quiesce implements slabChunkQuiescer on slab-backed chunks: poison
// the cursor, capturing how many claim attempts preceded the poison,
// then wait until every successful one of them has published its
// header write through the claimed counter. New claimers after the
// poison see an exhausted chunk and leave immediately, so the spin is
// bounded by the handful of claims already in flight.
func (ch *objChunk[T]) quiesce() {
	attempts := ch.next.Swap(slabCursorKill)
	want := attempts
	if n := int64(len(ch.buf)); want > n {
		want = n
	}
	for ch.claimed.Load() < want {
		runtime.Gosched()
	}
}

// newSlabChunkedObj is the slab flavour of the chunk refill: carve one
// store block, wrap it in a region-owned chunk, claim the first header
// and park the remainder. Any store refusal (budget, closed, map
// failure) falls back to the ordinary GC-heap refill, so a backing
// store can never make allocation fail on its own — only the injected
// rcgo/slab.map failpoint error surfaces, as a transient allocator
// failure before anything is counted.
func newSlabChunkedObj[T any](r *Region, slot *atomic.Pointer[chunkBox]) (*Obj[T], error) {
	var probe Obj[T]
	// Failpoint on the map/refill window: an injected error is a
	// refused slab map surfaced before the object is counted (nothing
	// unwinds); perturbations widen the carve-vs-reclaim window the
	// page list's closed flag decides.
	if err := fpSlabMap.Eval(); err != nil {
		return nil, fmt.Errorf("%w: slab refill for region %d", err, r.id)
	}
	p, err := r.arena.backing.Alloc(chunkTargetBytes)
	if err != nil {
		return newHeapChunkedObj[T](r, slot)
	}
	n := chunkTargetBytes / int(unsafe.Sizeof(probe))
	ch := &objChunk[T]{buf: unsafe.Slice((*Obj[T])(p), n), slab: true}
	ch.box.c = ch
	if !r.slabPages.add(slabPage{chunk: ch, p: p, size: chunkTargetBytes}) {
		// The region is already reclaiming: return the untracked page
		// and let the heap path hand out a header the admission check
		// will reject against the settled state.
		r.arena.backing.Free(p, chunkTargetBytes)
		return newHeapChunkedObj[T](r, slot)
	}
	if c := r.counters(); c != nil {
		c.slabRefills.Add(1)
	}
	r.arena.traceEvent(TraceSlabMapped, r)
	if o := ch.claim(r); o != nil {
		// Offer the remainder to the parking slot; if a racer parked
		// first the chunk simply stays reachable through the page list
		// until reclaim (slab chunks never enter the sync.Pools).
		slot.CompareAndSwap(nil, &ch.box)
		return o, nil
	}
	// Quiesced before the first claim: reclaim won the race.
	return newHeapChunkedObj[T](r, slot)
}
