package rcgo

import (
	"errors"
	"math/rand"
	"testing"
)

type listNode struct {
	Next Ref[listNode] // same-region link
	Data int
}

type crossNode struct {
	Other Ref[crossNode] // counted link
	Up    Ref[crossNode] // parent link
}

func TestArenaBasics(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	n := Alloc[listNode](r)
	n.Value.Data = 42
	if n.Region() != r {
		t.Fatal("Region() wrong")
	}
	if *&n.Use().Data != 42 {
		t.Fatal("Use() wrong")
	}
	if a.LiveObjects() != 1 || r.Objects() != 1 {
		t.Fatal("object accounting wrong")
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if a.LiveObjects() != 0 {
		t.Fatal("live objects after delete")
	}
}

func TestUseAfterDeletePanics(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	n := Alloc[listNode](r)
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Use after delete did not panic")
		}
	}()
	n.Use()
}

func TestSetRefCounts(t *testing.T) {
	a := NewArena()
	r1 := a.NewRegion()
	r2 := a.NewRegion()
	x := Alloc[crossNode](r1)
	y := Alloc[crossNode](r2)
	if err := SetRef(x, &x.Value.Other, y); err != nil {
		t.Fatal(err)
	}
	if r2.RC() != 1 {
		t.Fatalf("r2.RC = %d, want 1", r2.RC())
	}
	if err := r2.Delete(); !errors.Is(err, ErrRegionInUse) {
		t.Fatalf("Delete of referenced region: %v", err)
	}
	if err := SetRef(x, &x.Value.Other, nil); err != nil {
		t.Fatal(err)
	}
	if r2.RC() != 0 {
		t.Fatalf("r2.RC after clearing = %d", r2.RC())
	}
	if err := r2.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := r1.Delete(); err != nil {
		t.Fatal(err)
	}
}

func TestSetRefInternalNotCounted(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	x := Alloc[crossNode](r)
	y := Alloc[crossNode](r)
	MustSetRef(x, &x.Value.Other, y)
	MustSetRef(y, &y.Value.Other, x) // internal cycle: never counted
	if r.RC() != 0 {
		t.Fatalf("internal refs counted: RC = %d", r.RC())
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
}

func TestSetSame(t *testing.T) {
	a := NewArena()
	r1 := a.NewRegion()
	r2 := a.NewRegion()
	x := Alloc[listNode](r1)
	y := Alloc[listNode](r1)
	z := Alloc[listNode](r2)
	if err := SetSame(x, &x.Value.Next, y); err != nil {
		t.Fatal(err)
	}
	if err := SetSame(x, &x.Value.Next, nil); err != nil {
		t.Fatal(err)
	}
	if err := SetSame(x, &x.Value.Next, z); !errors.Is(err, ErrBadRef) {
		t.Fatalf("cross-region sameregion store: %v", err)
	}
	if r1.RC() != 0 && r2.RC() != 0 {
		t.Error("sameregion stores touched counts")
	}
}

func TestSetParent(t *testing.T) {
	a := NewArena()
	top := a.NewRegion()
	sub := top.NewSubregion()
	sib := a.NewRegion()
	parent := Alloc[crossNode](top)
	child := Alloc[crossNode](sub)
	other := Alloc[crossNode](sib)
	if err := SetParent(child, &child.Value.Up, parent); err != nil {
		t.Fatal(err)
	}
	if err := SetParent(child, &child.Value.Up, child); err != nil {
		t.Fatal(err) // same region is an ancestor-or-self
	}
	if err := SetParent(child, &child.Value.Up, other); !errors.Is(err, ErrBadRef) {
		t.Fatalf("sibling parentptr store: %v", err)
	}
	if err := SetParent(parent, &parent.Value.Up, child); !errors.Is(err, ErrBadRef) {
		t.Fatalf("downward parentptr store: %v", err)
	}
}

func TestSubregionOrder(t *testing.T) {
	a := NewArena()
	top := a.NewRegion()
	sub := top.NewSubregion()
	if err := top.Delete(); !errors.Is(err, ErrRegionInUse) {
		t.Fatalf("parent deleted before child: %v", err)
	}
	if err := sub.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := top.Delete(); err != nil {
		t.Fatal(err)
	}
}

func TestPinProtectsLocals(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	n := Alloc[listNode](r)
	unpin := Pin(n)
	if err := r.Delete(); !errors.Is(err, ErrRegionInUse) {
		t.Fatalf("pinned region deleted: %v", err)
	}
	unpin()
	unpin() // idempotent
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if Pin[listNode](nil) == nil {
		t.Error("Pin(nil) should return a no-op unpin")
	}
}

func TestDeleteDeferred(t *testing.T) {
	a := NewArena()
	r1 := a.NewRegion()
	r2 := a.NewRegion()
	x := Alloc[crossNode](r1)
	y := Alloc[crossNode](r2)
	MustSetRef(x, &x.Value.Other, y)
	r2.DeleteDeferred()
	if a.LiveObjects() != 2 {
		t.Fatal("deferred delete reclaimed referenced region")
	}
	MustSetRef(x, &x.Value.Other, nil) // last reference: reclaim
	if a.LiveObjects() != 1 {
		t.Fatalf("deferred reclaim did not run: %d live", a.LiveObjects())
	}
	if err := r1.Delete(); err != nil {
		t.Fatal(err)
	}
}

func TestDeferredCascade(t *testing.T) {
	a := NewArena()
	top := a.NewRegion()
	sub := top.NewSubregion()
	Alloc[listNode](top)
	Alloc[listNode](sub)
	top.DeleteDeferred()
	if a.LiveObjects() != 2 {
		t.Fatal("parent reclaimed before child")
	}
	if err := sub.Delete(); err != nil {
		t.Fatal(err)
	}
	if a.LiveObjects() != 0 {
		t.Fatal("cascade did not reclaim deferred parent")
	}
}

// Property: the arena's counts match a shadow model under random
// operation sequences.
func TestQuickArenaInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewArena()
	var regions []*Region
	type slotRec struct {
		holder *Obj[crossNode]
	}
	var objs []*Obj[crossNode]
	_ = slotRec{}
	for i := 0; i < 4000; i++ {
		switch {
		case len(regions) == 0 || rng.Intn(6) == 0:
			regions = append(regions, a.NewRegion())
		case rng.Intn(4) == 0 && len(regions) > 0:
			r := regions[rng.Intn(len(regions))]
			if !r.Deleted() {
				regions = append(regions, r.NewSubregion())
			}
		case rng.Intn(3) == 0 && len(objs) > 1:
			h := objs[rng.Intn(len(objs))]
			v := objs[rng.Intn(len(objs))]
			if !h.Region().Deleted() && !v.Region().Deleted() {
				MustSetRef(h, &h.Value.Other, v)
			}
		case rng.Intn(5) == 0 && len(regions) > 0:
			r := regions[rng.Intn(len(regions))]
			if !r.Deleted() {
				_ = r.Delete() // may legitimately fail
			}
		default:
			r := regions[rng.Intn(len(regions))]
			if !r.Deleted() {
				objs = append(objs, Alloc[crossNode](r))
			}
		}
		// Invariant: every live region's rc equals the number of
		// external references from live holders.
		want := map[*Region]int64{}
		for _, o := range objs {
			if o.Region().Deleted() {
				continue
			}
			if tgt := o.Value.Other.Get(); tgt != nil && tgt.Region() != o.Region() {
				want[tgt.Region()]++
			}
		}
		for _, r := range regions {
			if !r.Deleted() && r.RC() != want[r] {
				t.Fatalf("step %d: region %d rc=%d, shadow=%d", i, r.id, r.RC(), want[r])
			}
		}
	}
}

// mustPanicErr runs f, which must panic with an error matching want.
func mustPanicErr(t *testing.T, want error, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want %v", want)
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, want) {
			t.Fatalf("panicked with %v, want %v", r, want)
		}
	}()
	f()
}

func TestDeletedRegionGuards(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	live := a.NewRegion()
	h := Alloc[crossNode](live)
	x := Alloc[crossNode](r)
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := TryAlloc[crossNode](r); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("TryAlloc in deleted region: %v", err)
	}
	if _, err := r.TryNewSubregion(); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("TryNewSubregion of deleted region: %v", err)
	}
	if _, err := TryPin(x); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("TryPin into deleted region: %v", err)
	}
	// Stores targeting the deleted region are rejected...
	if err := SetRef(h, &h.Value.Other, x); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("counted store to deleted region: %v", err)
	}
	// ...and so are stores held by it.
	if err := SetRef(x, &x.Value.Other, h); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("counted store from deleted region: %v", err)
	}
	if live.RC() != 0 {
		t.Fatalf("rejected store leaked a count: %d", live.RC())
	}
	mustPanicErr(t, ErrRegionDeleted, func() { Alloc[crossNode](r) })
	mustPanicErr(t, ErrRegionDeleted, func() { r.NewSubregion() })
	mustPanicErr(t, ErrRegionDeleted, func() { Pin(x) })
	mustPanicErr(t, ErrRegionDeleted, func() { MustSetRef(h, &h.Value.Other, x) })
}

// A DeleteDeferred zombie region rejects new inbound references instead
// of having its reclaim postponed indefinitely (the pre-redesign API
// silently incremented the zombie's rc).
func TestZombieRejectsNewReferences(t *testing.T) {
	a := NewArena()
	rz := a.NewRegion()
	live := a.NewRegion()
	h := Alloc[crossNode](live)
	z := Alloc[crossNode](rz)
	MustSetRef(h, &h.Value.Other, z) // keeps rz alive
	rz.DeleteDeferred()
	if !rz.Deferred() || rz.Objects() != 1 {
		t.Fatal("region should be a zombie with its object intact")
	}
	h2 := Alloc[crossNode](live)
	if err := SetRef(h2, &h2.Value.Other, z); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("counted store to zombie region: %v", err)
	}
	if _, err := TryPin(z); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("pin of zombie region: %v", err)
	}
	if _, err := TryAlloc[crossNode](rz); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("alloc in zombie region: %v", err)
	}
	MustSetRef(h, &h.Value.Other, nil) // last reference: reclaim
	if rz.Objects() != 0 || !rz.Stats().Reclaimed {
		t.Fatal("zombie did not reclaim after last release")
	}
}

// Nil stores from a zombie holder stay allowed: they are how a
// cross-region cycle between deferred-deleted regions is broken.
func TestZombieNilStoreBreaksCycle(t *testing.T) {
	a := NewArena()
	r1 := a.NewRegion()
	r2 := a.NewRegion()
	p := Alloc[crossNode](r1)
	q := Alloc[crossNode](r2)
	MustSetRef(p, &p.Value.Other, q)
	MustSetRef(q, &q.Value.Other, p)
	r1.DeleteDeferred()
	r2.DeleteDeferred()
	if a.LiveObjects() != 2 {
		t.Fatal("cycle reclaimed early")
	}
	// A non-nil store from the zombie is still rejected.
	if err := SetRef(q, &q.Value.Other, q); !errors.Is(err, ErrRegionDeleted) {
		t.Fatalf("non-nil store from zombie holder: %v", err)
	}
	if err := SetRef(q, &q.Value.Other, nil); err != nil {
		t.Fatalf("nil store from zombie holder: %v", err)
	}
	if a.LiveObjects() != 0 || !r1.Stats().Reclaimed || !r2.Stats().Reclaimed {
		t.Fatalf("cycle not reclaimed: %d live", a.LiveObjects())
	}
}

func TestMustStoreVariants(t *testing.T) {
	a := NewArena()
	r1 := a.NewRegion()
	r2 := a.NewRegion()
	x := Alloc[listNode](r1)
	y := Alloc[listNode](r1)
	z := Alloc[listNode](r2)
	MustSetSame(x, &x.Value.Next, y)
	if x.Value.Next.Get() != y {
		t.Fatal("MustSetSame did not store")
	}
	mustPanicErr(t, ErrBadRef, func() { MustSetSame(x, &x.Value.Next, z) })

	top := a.NewRegion()
	sub := top.NewSubregion()
	parent := Alloc[crossNode](top)
	child := Alloc[crossNode](sub)
	MustSetParent(child, &child.Value.Up, parent)
	mustPanicErr(t, ErrBadRef, func() { MustSetParent(parent, &parent.Value.Up, child) })

	g := Alloc[crossNode](a.Traditional())
	h := Alloc[crossNode](r2)
	MustSetTrad(h, &h.Value.Other, g)
	mustPanicErr(t, ErrBadRef, func() { MustSetTrad(h, &h.Value.Other, child) })
}

func TestStatsSnapshot(t *testing.T) {
	a := NewArena()
	r := a.NewRegion()
	sub := r.NewSubregion()
	o := Alloc[crossNode](r)
	Alloc[crossNode](r)
	unpin := Pin(o)
	h := Alloc[crossNode](a.NewRegion())
	MustSetRef(h, &h.Value.Other, o)
	st := r.Stats()
	if st.Objects != 2 || st.RC != 2 || st.Pins != 1 || st.Subregions != 1 ||
		st.Deleted || st.Deferred || st.Reclaimed {
		t.Fatalf("stats snapshot wrong: %+v", st)
	}
	unpin()
	MustSetRef(h, &h.Value.Other, nil)
	if err := sub.Delete(); err != nil {
		t.Fatal(err)
	}
	r.DeleteDeferred()
	st = r.Stats()
	if !st.Deleted || !st.Reclaimed || st.Objects != 0 {
		t.Fatalf("post-delete stats wrong: %+v", st)
	}
	as := a.Stats()
	if as.LiveObjects != a.LiveObjects() || as.RegionsCreated < 4 {
		t.Fatalf("arena stats wrong: %+v", as)
	}
}

func TestDeferredTraditionalIsNoop(t *testing.T) {
	a := NewArena()
	a.Traditional().DeleteDeferred()
	if a.Traditional().Deleted() {
		t.Fatal("DeleteDeferred deleted the traditional region")
	}
}

func TestTraditionalRegion(t *testing.T) {
	a := NewArena()
	trad := a.Traditional()
	if trad == nil || trad.Deleted() {
		t.Fatal("no traditional region")
	}
	if err := trad.Delete(); err == nil {
		t.Fatal("traditional region deleted")
	}
	r := a.NewRegion()
	holder := Alloc[crossNode](r)
	global := Alloc[crossNode](trad)
	regional := Alloc[crossNode](r)
	if err := SetTrad(holder, &holder.Value.Other, global); err != nil {
		t.Fatal(err)
	}
	if err := SetTrad(holder, &holder.Value.Other, nil); err != nil {
		t.Fatal(err)
	}
	if err := SetTrad(holder, &holder.Value.Other, regional); !errors.Is(err, ErrBadRef) {
		t.Fatalf("regional value accepted by traditional slot: %v", err)
	}
	// Traditional stores never count, so r deletes freely even while a
	// slot references the traditional region.
	if err := SetTrad(holder, &holder.Value.Other, global); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(); err != nil {
		t.Fatal(err)
	}
}
