package rcgo

// Random-program differential testing: generate well-typed RC programs
// with random region structure, annotated and unannotated stores, helper
// functions and loops, then check the pipeline's core soundness
// properties:
//
//  1. qs ≡ inf exactly (output and abort behaviour): the inference may
//     only remove checks that can never fail;
//  2. all configurations agree on non-aborting programs, across all
//     three memory backends;
//  3. after a successful region-backend run, the maintained reference
//     counts match a ground-truth heap scan.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

type progGen struct {
	rng *rand.Rand
	sb  strings.Builder
	// variables in scope, by type: v[i] has type struct T<v[i].ty> *
	ptrVars []genVar
	regions []string // region variable names, in creation order (parents first)
	ntemp   int
}

type genVar struct {
	name string
	ty   int // struct index
}

const genStructs = 2

var genQuals = []string{"", "sameregion", "traditional", "parentptr"}

func (g *progGen) pf(format string, args ...any) {
	fmt.Fprintf(&g.sb, format, args...)
}

// genProgram produces a complete RC program.
type fieldDecl struct {
	name string
	ty   int
	qual string
}

func genProgram(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	// Struct declarations: each struct gets pointer fields to random
	// struct types with random qualifiers, plus an int field.
	fields := make([][]fieldDecl, genStructs)
	for s := 0; s < genStructs; s++ {
		nf := 2 + g.rng.Intn(2)
		for f := 0; f < nf; f++ {
			fields[s] = append(fields[s], fieldDecl{
				name: fmt.Sprintf("f%d", f),
				ty:   g.rng.Intn(genStructs),
				qual: genQuals[g.rng.Intn(len(genQuals))],
			})
		}
	}
	for s := 0; s < genStructs; s++ {
		g.pf("struct t%d {\n", s)
		for _, f := range fields[s] {
			q := f.qual
			if q != "" {
				q = q + " "
			}
			g.pf("\tstruct t%d *%s%s;\n", f.ty, q, f.name)
		}
		g.pf("\tint val;\n};\n")
	}
	g.pf("int checksum;\n")

	// A helper constructor per struct type (the paper's hand-written
	// constructor idiom; sometimes verifiable, sometimes not).
	for s := 0; s < genStructs; s++ {
		g.pf("struct t%d *mk%d(region r, int v) {\n", s, s)
		g.pf("\tstruct t%d *n = ralloc(r, struct t%d);\n", s, s)
		g.pf("\tn->val = v;\n\treturn n;\n}\n")
	}

	// A traversal helper that reads fields (exercises reads and calls).
	g.pf(`int sum0(struct t0 *p, int depth) {
	if (!p || depth > 3) return 0;
	int s = p->val;
`)
	for _, f := range fields[0] {
		if f.ty == 0 {
			g.pf("\ts = s + sum0(p->%s, depth + 1);\n", f.name)
		}
	}
	g.pf("\treturn s;\n}\n")

	// main: create regions (some nested), populate random structures,
	// accumulate a checksum, tear down in a safe order.
	g.pf("deletes void main(void) {\n")
	nRegions := 2 + g.rng.Intn(2)
	for r := 0; r < nRegions; r++ {
		name := fmt.Sprintf("r%d", r)
		if r > 0 && g.rng.Intn(2) == 0 {
			parent := g.regions[g.rng.Intn(len(g.regions))]
			g.pf("\tregion %s = newsubregion(%s);\n", name, parent)
		} else {
			g.pf("\tregion %s = newregion();\n", name)
		}
		g.regions = append(g.regions, name)
	}
	// Seed objects.
	for i := 0; i < 3+g.rng.Intn(3); i++ {
		g.newObject(2)
	}
	// Random statements.
	for i := 0; i < 6+g.rng.Intn(10); i++ {
		g.stmt(fields)
	}
	// Checksum output.
	if len(g.ptrVars) > 0 {
		for _, v := range g.ptrVars {
			if v.ty == 0 {
				g.pf("\tchecksum = checksum + sum0(%s, 0);\n", v.name)
			} else {
				g.pf("\tif (%s) checksum = checksum + %s->val;\n", v.name, v.name)
			}
		}
	}
	g.pf("\tprint_int(checksum);\n")
	// Teardown: null every pointer local, then delete children before
	// parents (reverse creation order is a safe approximation since
	// parents are always created before their subregions).
	for _, v := range g.ptrVars {
		g.pf("\t%s = null;\n", v.name)
	}
	for i := len(g.regions) - 1; i >= 0; i-- {
		g.pf("\tdeleteregion(%s);\n", g.regions[i])
	}
	g.pf("\tprint_str(\" done\");\n}\n")
	return g.sb.String()
}

// newObject declares a fresh pointer local initialized by ralloc or a
// constructor call.
func (g *progGen) newObject(indent int) genVar {
	ty := g.rng.Intn(genStructs)
	name := fmt.Sprintf("p%d", g.ntemp)
	g.ntemp++
	reg := g.regions[g.rng.Intn(len(g.regions))]
	tabs := strings.Repeat("\t", 1)
	switch g.rng.Intn(3) {
	case 0:
		g.pf("%sstruct t%d *%s = mk%d(%s, %d);\n", tabs, ty, name, ty, reg, g.rng.Intn(100))
	case 1:
		g.pf("%sstruct t%d *%s = ralloc(%s, struct t%d);\n", tabs, ty, name, reg, ty)
	default:
		// The regionof idiom against an existing object, if any.
		if src, ok := g.pickVar(-1); ok {
			g.pf("%sstruct t%d *%s = %s ? ralloc(regionof(%s), struct t%d) : mk%d(%s, 1);\n",
				tabs, ty, name, src.name, src.name, ty, ty, reg)
		} else {
			g.pf("%sstruct t%d *%s = ralloc(%s, struct t%d);\n", tabs, ty, name, reg, ty)
		}
	}
	v := genVar{name: name, ty: ty}
	g.ptrVars = append(g.ptrVars, v)
	return v
}

func (g *progGen) pickVar(ty int) (genVar, bool) {
	var cands []genVar
	for _, v := range g.ptrVars {
		if ty < 0 || v.ty == ty {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return genVar{}, false
	}
	return cands[g.rng.Intn(len(cands))], true
}

// stmt emits one random statement.
func (g *progGen) stmt(fields [][]fieldDecl) {
	switch g.rng.Intn(6) {
	case 0:
		g.newObject(1)
	case 1, 2: // field store: obj->f = source
		obj, ok := g.pickVar(-1)
		if !ok {
			g.newObject(1)
			return
		}
		f := fields[obj.ty][g.rng.Intn(len(fields[obj.ty]))]
		var src string
		switch g.rng.Intn(4) {
		case 0:
			src = "null"
		case 1:
			if v, ok := g.pickVar(f.ty); ok {
				src = v.name
			} else {
				src = "null"
			}
		case 2:
			src = fmt.Sprintf("ralloc(regionof(%s), struct t%d)", obj.name, f.ty)
		default:
			reg := g.regions[g.rng.Intn(len(g.regions))]
			src = fmt.Sprintf("mk%d(%s, %d)", f.ty, reg, g.rng.Intn(50))
		}
		g.pf("\tif (%s) %s->%s = %s;\n", obj.name, obj.name, f.name, src)
	case 3: // field read into a fresh local
		obj, ok := g.pickVar(-1)
		if !ok {
			return
		}
		f := fields[obj.ty][g.rng.Intn(len(fields[obj.ty]))]
		name := fmt.Sprintf("p%d", g.ntemp)
		g.ntemp++
		g.pf("\tstruct t%d *%s = %s ? %s->%s : null;\n", f.ty, name, obj.name, obj.name, f.name)
		g.ptrVars = append(g.ptrVars, genVar{name: name, ty: f.ty})
	case 4: // arithmetic on checksum in a small loop
		g.pf("\t{ int i; for (i = 0; i < %d; i++) checksum = (checksum * 3 + i) %% 100003; }\n",
			2+g.rng.Intn(5))
	default: // conditional val update
		if obj, ok := g.pickVar(-1); ok {
			g.pf("\tif (%s && %s->val > %d) %s->val = %s->val - 1;\n",
				obj.name, obj.name, g.rng.Intn(50), obj.name, obj.name)
		}
	}
}

// runGen executes one generated program under a mode/backend, returning
// output and error.
func runGen(t *testing.T, c *Compiled, cfg RunConfig) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Output = &buf
	cfg.MaxSteps = 50_000_000
	_, err := Run(c, cfg)
	return buf.String(), err
}

func TestRandomProgramsDifferential(t *testing.T) {
	checkAborts := 0
	deleteAborts := 0
	clean := 0
	seeds := int64(120)
	if testing.Short() {
		seeds = 25
	}
	for seed := int64(1); seed <= seeds; seed++ {
		src := genProgram(seed)
		qs, err := Compile(src, ModeQS)
		if err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v\n%s", seed, err, src)
		}
		inf, err := Compile(src, ModeInf)
		if err != nil {
			t.Fatalf("seed %d: inf compile: %v", seed, err)
		}
		qsOut, qsErr := runGen(t, qs, RunConfig{})
		infOut, infErr := runGen(t, inf, RunConfig{})

		// Property 1: qs ≡ inf exactly. The inference may only remove
		// checks that cannot fail, and counting is identical.
		if qsOut != infOut || (qsErr == nil) != (infErr == nil) {
			t.Fatalf("seed %d: qs/inf diverge:\n qs : %q err=%v\n inf: %q err=%v\nprogram:\n%s",
				seed, qsOut, qsErr, infOut, infErr, src)
		}
		if qsErr != nil && infErr != nil && qsErr.Error() != infErr.Error() {
			t.Fatalf("seed %d: qs/inf abort differently:\n qs : %v\n inf: %v\nprogram:\n%s",
				seed, qsErr, infErr, src)
		}

		if qsErr != nil {
			msg := qsErr.Error()
			switch {
			case strings.Contains(msg, "check"):
				checkAborts++
			case strings.Contains(msg, "deleteregion"):
				deleteAborts++
			default:
				t.Fatalf("seed %d: unexpected abort %v\nprogram:\n%s", seed, qsErr, src)
			}
			continue
		}
		clean++

		// Property 2: all configurations agree on clean programs.
		for _, alt := range []struct {
			name string
			mode Mode
			cfg  RunConfig
		}{
			{"nq", ModeNQ, RunConfig{}},
			{"nc", ModeNC, RunConfig{}},
			{"norc", ModeNoRC, RunConfig{}},
			{"lea", ModeNoRC, RunConfig{Backend: BackendMalloc}},
			{"gc", ModeNoRC, RunConfig{Backend: BackendGC}},
		} {
			ac, err := Compile(src, alt.mode)
			if err != nil {
				t.Fatalf("seed %d: %s compile: %v", seed, alt.name, err)
			}
			out, err := runGen(t, ac, alt.cfg)
			if err != nil {
				t.Fatalf("seed %d: %s aborted where qs ran: %v\nprogram:\n%s",
					seed, alt.name, err, src)
			}
			if out != qsOut {
				t.Fatalf("seed %d: %s output %q, want %q\nprogram:\n%s",
					seed, alt.name, out, qsOut, src)
			}
		}

		// Property 3: counts match a ground-truth scan after the run.
		m := newVMForTest(inf)
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d: validation run failed: %v", seed, err)
		}
		if err := m.RT.ValidateCounts(); err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
	}
	t.Logf("random programs: %d clean, %d check aborts, %d delete aborts",
		clean, checkAborts, deleteAborts)
	if clean == 0 {
		t.Error("no clean programs generated; differential coverage is empty")
	}
	if checkAborts == 0 {
		t.Error("no check aborts generated; soundness branch never exercised")
	}
}
