package rcgo

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// The sharding fabric inside an Arena (DESIGN.md §12).
//
// One arena used to funnel every region through a single id counter, one
// pair of arena-wide population counters (liveRegions/deferredRegions),
// one liveObjs total, and one 16-way registry — shared cache lines that
// every region creation, deletion and batched-delta flush bounced
// between cores. The fabric splits the arena into N internal shards
// (default derived from GOMAXPROCS at construction): a region is
// assigned to one shard for life at creation, and everything the region
// updates on the arena's behalf — its id sequence, its registry entry,
// its contribution to the live-object and population totals — lives on
// that shard's cache lines. Regions created by different goroutines land
// on different shards (assignment hashes the region's own address, which
// the Go allocator hands out from the creating P's spans), so concurrent
// region churn stops sharing lines.
//
// The fabric still looks like exactly one arena to callers:
//
//   - ArenaStats, LiveObjects, LiveRegions, DeferredRegions and
//     Counters() aggregate across shards, with the same exact-at-quiesce
//     contract as before (each per-shard total is maintained at the same
//     program points the arena-wide total used to be).
//   - EachRegion walks the shards in ascending shard-index order (see
//     its doc comment for the consistency contract).
//   - Audit() cross-checks every shard's totals against the regions
//     assigned to it, so a region accounted on the wrong shard is a
//     reported violation, not silent drift.
//   - Region IDs are shard-encoded but globally unique and stable (see
//     Region.ID), so traces, debug reports and audits from different
//     shards can never collide.
//
// Cross-shard region relationships are unrestricted: a parent on shard A
// may have children on shard B. Parent/child bookkeeping (the children
// counter, cascaded zombie drains) lives on the regions themselves, not
// on the shards, so deletion order and population audits are unaffected
// by where the regions hash.

// shardIDBits is the width of the shard index inside a region id:
// id = seq<<shardIDBits | shardIndex. 8 bits bounds an arena at
// maxArenaShards shards and leaves 55 bits of per-shard sequence.
const shardIDBits = 8

// maxArenaShards caps WithShards: the shard index must fit in
// shardIDBits.
const maxArenaShards = 1 << shardIDBits

// registrySubShards is the number of id→region registry sub-shards per
// fabric shard, so create/reclaim of regions that hash to one fabric
// shard still rarely share a registry lock.
const registrySubShards = 4

// arenaShard is one shard of the fabric: an id sequence segment, the
// shard's slice of every arena-wide total, and a registry segment. The
// counters are grouped first and padded so two shards' hot counters
// never share a cache line.
type arenaShard struct {
	// nextSeq is the shard's region id sequence; region ids are
	// seq<<shardIDBits | shardIndex, so sequences on different shards can
	// never mint the same id.
	nextSeq atomic.Int64
	// liveObjs / liveRegions / deferredRegions / ownedRegions are this
	// shard's slice of the arena totals, covering exactly the regions
	// assigned to the shard. Updated at the same program points the
	// arena-wide counters used to be (creation, every delete-state
	// transition, batched-delta flushes, reclaim; ownedRegions at the
	// alive ⇄ owned transitions in region_owner.go), so summing the
	// shards preserves the exact-at-quiesce contract. An owned region
	// still counts in liveRegions — ownership is a mode of being alive.
	liveObjs        atomic.Int64
	liveRegions     atomic.Int64
	deferredRegions atomic.Int64
	ownedRegions    atomic.Int64
	// acquireWaiters is the shard's count of currently-parked
	// AcquireContext waiters (region_owner.go): +1 at park, -1 at
	// hand-off pop, cancellation splice and Owner.Delete's queue sweep.
	// Zero at quiesce; the audit cross-checks it against the sum of the
	// shard's wait-queue lengths.
	acquireWaiters atomic.Int64
	_              [16]byte // pad the hot counters to a line of their own

	// registry is the shard's segment of the id→region index behind
	// EachRegion and the debug inspector: regions register at creation
	// and unregister at reclaim, so it holds exactly the live and zombie
	// regions assigned to this shard.
	registry [registrySubShards]regionShard
}

type regionShard struct {
	mu sync.Mutex
	m  map[int64]*Region
}

// Option configures an Arena at construction. Options are applied in
// order by NewArena; later options win where they overlap.
type Option func(*arenaConfig)

type arenaConfig struct {
	shards     int
	metrics    bool
	advisor    bool
	tracer     Tracer
	allocCache bool
	backing    BackingStore
}

// WithShards fixes the number of internal fabric shards. n is clamped
// to [1, 256] and rounded up to the next power of two (the shard pick
// is a mask). WithShards(1) reproduces the pre-fabric single-arena
// behaviour — every region on one shard — and is the baseline side of
// the fabric A/B benchmarks (cmd/rcbench -fabric-ab). The default,
// without this option, derives the count from GOMAXPROCS at
// construction time.
func WithShards(n int) Option {
	return func(c *arenaConfig) { c.shards = n }
}

// WithMetrics enables the arena's cumulative operation counters from
// birth, equivalent to calling the deprecated EnableMetrics immediately
// after construction — except that no operation can ever predate the
// gate, so counters cover the arena's whole life.
func WithMetrics() Option {
	return func(c *arenaConfig) { c.metrics = true }
}

// WithTracer installs t as the arena's lifecycle tracer from birth; the
// traditional region's creation is the first event delivered. A tracer
// that needs the arena handle to construct (such as a ZombieWatchdog
// chain) cannot exist before NewArena returns; install it afterwards
// with SetTracer, which remains supported for exactly that pattern.
func WithTracer(t Tracer) Option {
	return func(c *arenaConfig) { c.tracer = t }
}

// WithAllocCache enables (true, the default) or disables the allocation
// fast path (region_alloccache.go) for the arena's regions — the A/B
// ablation knob, equivalent to the deprecated SetAllocCache called
// before any region is created.
func WithAllocCache(enabled bool) Option {
	return func(c *arenaConfig) { c.allocCache = enabled }
}

// defaultShardCount derives the fabric width from GOMAXPROCS at
// construction: the next power of two at or above it, within
// [1, maxArenaShards].
func defaultShardCount() int {
	return clampShards(runtime.GOMAXPROCS(0))
}

func clampShards(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxArenaShards {
		n = maxArenaShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewArena creates an empty arena, configured by the given options:
//
//	a := rcgo.NewArena(
//		rcgo.WithShards(8),          // fabric width (default: GOMAXPROCS-derived)
//		rcgo.WithMetrics(),          // cumulative op counters from birth
//		rcgo.WithAdvisor(),          // annotation advisor from birth
//		rcgo.WithTracer(tracer),     // lifecycle tracer from birth
//		rcgo.WithAllocCache(true),   // allocation fast path (the default)
//		rcgo.WithOffHeapSlabs(),     // off-heap slab backing store (region_slab.go)
//	)
//
// NewArena() with no options is the previous constructor, unchanged in
// behaviour apart from the fabric defaulting to a GOMAXPROCS-derived
// shard count. The deprecated knob setters (EnableMetrics,
// SetAllocCache) remain as thin wrappers over the same configuration.
func NewArena(opts ...Option) *Arena {
	cfg := arenaConfig{shards: 0, allocCache: true}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	n := defaultShardCount()
	if cfg.shards != 0 {
		n = clampShards(cfg.shards)
	}
	a := &Arena{
		shards:    make([]arenaShard, n),
		shardMask: uint64(n - 1),
		backing:   cfg.backing,
	}
	a.allocSlow.Store(!cfg.allocCache)
	if cfg.metrics {
		// Stored before any region exists, so every region arms its gate
		// in newRegion and no walk is needed.
		a.metrics.Store(&arenaMetrics{})
	}
	if cfg.advisor {
		// Same birth-before-any-region argument as the metrics gate.
		a.advisor.Store(&arenaAdvisor{})
	}
	if cfg.tracer != nil {
		a.tracer.Store(&tracerBox{t: cfg.tracer})
	}
	a.trad = a.NewRegion()
	return a
}

// Shards returns the number of internal fabric shards the arena was
// constructed with. Purely introspective: the fabric is invisible to
// every other API except the shard index encoded in region ids.
func (a *Arena) Shards() int { return len(a.shards) }

// shardIndexFor assigns a shard to a new region by Fibonacci-hashing
// the region's own address: goroutine-correlated (the Go allocator
// hands a goroutine addresses from its P's spans), so concurrent
// creators spread across shards without any shared assignment state.
func (a *Arena) shardIndexFor(p unsafe.Pointer) uint64 {
	h := uintptr(p) * 0x9E3779B97F4A7C15 >> 32
	return uint64(h) & a.shardMask
}

// shardOfID decodes the shard index a region id encodes. Valid for any
// id the arena minted; foreign values map to some shard and simply miss
// in its registry.
func (a *Arena) shardOfID(id int64) *arenaShard {
	return &a.shards[uint64(id)&a.shardMask]
}

// RegionShard returns the fabric shard index encoded in a region id
// (the inverse of the encoding documented on Region.ID). It does not
// check that a region with that id exists.
func (a *Arena) RegionShard(id int64) int {
	return int(uint64(id) & a.shardMask)
}

// registryShard returns the registry sub-shard responsible for id: the
// id's fabric shard, then a sub-shard picked by the sequence part so
// consecutive creations on one shard spread over its locks.
func (a *Arena) registryShard(id int64) *regionShard {
	sh := a.shardOfID(id)
	return &sh.registry[(uint64(id)>>shardIDBits)%registrySubShards]
}

func (a *Arena) register(r *Region) {
	sh := a.registryShard(r.id)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[int64]*Region)
	}
	sh.m[r.id] = r
	sh.mu.Unlock()
}

func (a *Arena) unregister(id int64) {
	sh := a.registryShard(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
}

// findRegion returns the registered region with the given id, or nil.
func (a *Arena) findRegion(id int64) *Region {
	sh := a.registryShard(id)
	sh.mu.Lock()
	r := sh.m[id]
	sh.mu.Unlock()
	return r
}

// EachRegion calls f for every region that is live or awaiting deferred
// reclaim (zombie), including the traditional region.
//
// Ordering and consistency across the fabric: regions are visited
// grouped by fabric shard in ascending shard-index order (all of shard
// 0's regions, then shard 1's, …); within one shard the order is
// unspecified. The snapshot is taken one registry sub-shard at a time,
// never holding more than one lock: regions created or reclaimed while
// the walk runs may or may not be visited (a region that migrates
// states mid-walk is visited at most once — assignment to a shard is
// permanent), and f is never called with a region whose storage was
// released before the walk began. The walk is not an atomic cut across
// shards; quiesce the arena first if an exact population is required.
func (a *Arena) EachRegion(f func(r *Region)) {
	for i := range a.shards {
		for j := range a.shards[i].registry {
			sh := &a.shards[i].registry[j]
			sh.mu.Lock()
			regions := make([]*Region, 0, len(sh.m))
			for _, r := range sh.m {
				regions = append(regions, r)
			}
			sh.mu.Unlock()
			for _, r := range regions {
				f(r)
			}
		}
	}
}
