package rcgo

import (
	"strings"
	"testing"
)

// The paper's Section 2 expressivity example: an array of regions indexed
// dynamically, with allocations into randomly chosen regions stored into a
// separate structure — "There is a type for r, but no type for d in Walker
// and Morrisett's type system ... Our system preserves the safety of
// deleteregion via reference counting."
func TestSection2ExpressivityExample(t *testing.T) {
	out := runOut(t, `
struct data { int v; };
deletes void main(void) {
	int n = 8;
	int m = 20;
	region holder = newregion();
	region *r = rarrayalloc(holder, n, region);
	struct data **d = rarrayalloc(holder, m, struct data *);
	int i;
	int seed = 7;
	for (i = 0; i < n; i++) r[i] = newregion();
	for (i = 0; i < m; i++) {
		seed = (seed * 1103 + 12345) % 30011;
		d[i] = ralloc(r[seed % n], struct data);
		d[i]->v = i;
	}
	int sum = 0;
	for (i = 0; i < m; i++) sum = sum + d[i]->v;
	print_int(sum);
	// Deleting a region while d still points into it aborts; clearing
	// the references first makes every deletion safe.
	for (i = 0; i < m; i++) d[i] = null;
	for (i = 0; i < n; i++) deleteregion(r[i]);
	deleteregion(holder);
	print_str(" ok");
}`, ModeInf, RunConfig{})
	if out != "190 ok" {
		t.Errorf("output = %q", out)
	}
}

// The same program aborts if a region is deleted while the lookup
// structure still references it — the dynamic safety that replaces Walker
// and Morrisett's static discipline.
func TestSection2ExampleAbortsWhenUnsafe(t *testing.T) {
	_, err := RunSource(`
struct data { int v; };
deletes void main(void) {
	region holder = newregion();
	region *r = rarrayalloc(holder, 4, region);
	struct data **d = rarrayalloc(holder, 4, struct data *);
	int i;
	for (i = 0; i < 4; i++) r[i] = newregion();
	for (i = 0; i < 4; i++) d[i] = ralloc(r[i], struct data);
	deleteregion(r[2]);   // d[2] still points in: must abort
}`, ModeInf, RunConfig{})
	if err == nil || !strings.Contains(err.Error(), "external references") {
		t.Errorf("unsafe deletion not caught: %v", err)
	}
}

// The paper's nested-environments pattern (the real-program shape behind
// the Section 2 example): a list of environments, each in its own region,
// with lookups returning pointers stored in a separate structure.
func TestNestedEnvironments(t *testing.T) {
	out := runOut(t, `
struct binding {
	struct binding *sameregion next;
	int name;
	int value;
};
struct env {
	struct env *up;               // counted: parent env in another region
	struct binding *sameregion bindings;
	region myregion;
};

struct env *env_push(struct env *parent) {
	region r = newregion();
	struct env *e = ralloc(r, struct env);
	e->up = parent;
	e->myregion = r;
	return e;
}

void env_bind(struct env *e, int name, int value) {
	struct binding *b = ralloc(regionof(e), struct binding);
	b->name = name;
	b->value = value;
	b->next = e->bindings;
	e->bindings = b;
}

int env_lookup(struct env *e, int name) {
	while (e) {
		struct binding *b = e->bindings;
		while (b) {
			if (b->name == name) return b->value;
			b = b->next;
		}
		e = e->up;
	}
	return -1;
}

deletes void main(void) {
	struct env *top = env_push(null);
	env_bind(top, 1, 100);
	struct env *inner = env_push(top);
	env_bind(inner, 2, 200);
	env_bind(inner, 1, 111);   // shadows
	print_int(env_lookup(inner, 1));
	print_int(env_lookup(inner, 2));
	print_int(env_lookup(top, 1));
	print_int(env_lookup(top, 2));
	// Pop the inner environment: delete its region.
	region ir = inner->myregion;
	inner = null;
	deleteregion(ir);
	print_int(env_lookup(top, 1));
	region tr = top->myregion;
	top = null;
	deleteregion(tr);
	print_str(" done");
}`, ModeInf, RunConfig{})
	if out != "111200100-1100 done" {
		t.Errorf("output = %q", out)
	}
}
