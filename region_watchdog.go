package rcgo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Graceful degradation for deletes that stay blocked. Delete is
// non-blocking by design — it fails with ErrRegionInUse rather than
// waiting for references to drain — so a caller that *wants* the region
// gone needs a retry policy, and an operator needs to know when a
// deferred-deleted region is never going to drain. This file provides
// both: DeleteWithRetry (bounded, jittered exponential backoff under a
// context) and ZombieWatchdog (tracer-driven detection of zombies older
// than a threshold, named with the holders that pin them, healing lost
// drain wakeups along the way).

// Backoff configures DeleteWithRetry's jittered exponential backoff.
// The zero value is usable: 1ms initial, 100ms cap, doubling, half the
// interval jittered.
type Backoff struct {
	// Initial is the first sleep (default 1ms).
	Initial time.Duration
	// Max caps the sleep (default 100ms).
	Max time.Duration
	// Multiplier grows the sleep after each failed attempt (default 2).
	Multiplier float64
	// Jitter is the fraction of each sleep drawn uniformly at random
	// (default 0.5): the actual sleep is d*(1-Jitter) + rand*d*Jitter,
	// decorrelating retry storms from concurrent deleters.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 100 * time.Millisecond
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
	return b
}

// sleep returns the jittered duration for attempt n (0-based).
func (b Backoff) sleep(n int) time.Duration {
	d := float64(b.Initial)
	for i := 0; i < n; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		d = d*(1-b.Jitter) + rand.Float64()*d*b.Jitter
	}
	return time.Duration(d)
}

// DeleteWithRetry calls Delete until it succeeds, retrying with
// jittered exponential backoff while the failure is transient — the
// region is in use (ErrRegionInUse) or a failpoint injected the failure
// (ErrInjected). It stops early on a terminal outcome (the region was
// already deleted, or it is the traditional region) and returns that
// error unchanged. When ctx expires first, the returned error wraps
// both the context error and the last Delete error, so callers can
// test either with errors.Is.
func (r *Region) DeleteWithRetry(ctx context.Context, b Backoff) error {
	b = b.withDefaults()
	for attempt := 0; ; attempt++ {
		err := r.Delete()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrRegionInUse) && !errors.Is(err, ErrInjected) {
			return err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("rcgo: delete retry on region %d gave up: %w", r.id,
				errors.Join(ctx.Err(), err))
		case <-time.After(b.sleep(attempt)):
		}
	}
}

// SweepZombies force-drains every zombie region whose references and
// subregions have already drained, returning the number of regions
// reclaimed. A healthy arena reclaims zombies inline (the last decRC or
// child reclaim drains them) and a sweep finds nothing; the sweep
// exists as the recovery path for lost drain wakeups — the condition
// the zombie.drain failpoint induces and AuditZombieReclaimable
// reports. It loops to a fixpoint so cascades (a drained child
// unblocking a zombie parent) complete in one call. Safe to run
// concurrently with anything.
func (a *Arena) SweepZombies() int {
	total := 0
	for {
		n := 0
		a.EachRegion(func(r *Region) {
			if r.drain(true) {
				n++
			}
		})
		total += n
		if n == 0 {
			return total
		}
	}
}

// StuckZombie describes one deferred-deleted region that has stayed
// unreclaimed longer than the watchdog's threshold, with the evidence
// an operator needs: how long it has been a zombie, its current counts,
// and which regions' counted slots pin it (from the blocked-deleters
// scan).
type StuckZombie struct {
	ID int64 `json:"id"`
	// Age is how long the region has been a zombie when flagged.
	Age time.Duration `json:"age_ns"`
	RC  int64         `json:"rc"`
	// Pins is the pin subset of RC.
	Pins int64 `json:"pins"`
	// Subregions counts live children; a zombie cannot reclaim while
	// any remain, even at rc 0.
	Subregions int64 `json:"subregions,omitempty"`
	// Holders names the regions whose registered counted slots point
	// into this region, sorted by slot count descending.
	Holders []BlockedHolder `json:"holders,omitempty"`
}

// ZombieWatchdog flags deferred-deleted regions that fail to reclaim
// within a threshold. It is a Tracer: install it with Arena.SetTracer
// (chaining any previous tracer through next) and it learns zombie
// birth and reclaim times from the TraceRegionDeferred /
// TraceRegionReclaimed events. Each Check (called directly, or
// periodically after Start):
//
//  1. heals lost drain wakeups — a zombie past the threshold that is
//     already drained (rc 0, no subregions) is reclaimed on the spot,
//     not flagged;
//  2. flags every zombie past the threshold that is genuinely pinned,
//     naming the pinning holder regions via the blocked-deleters scan,
//     and delivers each report to the OnStuck callback (if set).
type ZombieWatchdog struct {
	arena     *Arena
	next      Tracer
	threshold time.Duration

	// OnStuck, if non-nil, receives every flagged zombie, once per
	// Check that finds it still stuck. Set before installing the
	// watchdog as a tracer.
	OnStuck func(StuckZombie)

	// now is the clock, injectable in tests.
	now func() time.Time

	mu      sync.Mutex
	pending map[int64]time.Time // zombie id -> when it was deferred

	flagged atomic.Int64
	healed  atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewZombieWatchdog creates a watchdog for a with the given age
// threshold. next, if non-nil, receives every trace event after the
// watchdog has seen it, so a RingTracer keeps working underneath:
//
//	ring := rcgo.NewRingTracer(1024)
//	w := rcgo.NewZombieWatchdog(arena, time.Second, ring)
//	arena.SetTracer(w)
func NewZombieWatchdog(a *Arena, threshold time.Duration, next Tracer) *ZombieWatchdog {
	return &ZombieWatchdog{
		arena:     a,
		next:      next,
		threshold: threshold,
		now:       time.Now,
		pending:   make(map[int64]time.Time),
	}
}

// Trace implements Tracer: zombie births and reclaims update the
// pending set; every event is forwarded to the chained tracer.
func (w *ZombieWatchdog) Trace(ev TraceEvent) {
	switch ev.Kind {
	case TraceRegionDeferred:
		w.mu.Lock()
		w.pending[ev.Region] = w.now()
		w.mu.Unlock()
	case TraceRegionReclaimed:
		w.mu.Lock()
		delete(w.pending, ev.Region)
		w.mu.Unlock()
	}
	if w.next != nil {
		w.next.Trace(ev)
	}
}

// Unwrap returns the chained tracer, so inspectors (DebugHandler's
// trace stats) can reach a RingTracer underneath the watchdog.
func (w *ZombieWatchdog) Unwrap() Tracer { return w.next }

// Check runs one watchdog pass and returns the zombies flagged as
// stuck, sorted by id. See the type comment for what one pass does.
func (w *ZombieWatchdog) Check() []StuckZombie {
	now := w.now()
	w.mu.Lock()
	var due []int64
	for id, since := range w.pending {
		if now.Sub(since) >= w.threshold {
			due = append(due, id)
		}
	}
	w.mu.Unlock()
	if len(due) == 0 {
		return nil
	}

	// The blocked-deleters scan names the holders; index it by zombie.
	blocked := make(map[int64]BlockedRegion)
	for _, br := range w.arena.BlockedDeleters() {
		blocked[br.ID] = br
	}

	var stuck []StuckZombie
	for _, id := range due {
		r := w.arena.findRegion(id)
		if r == nil {
			// Reclaimed between the event and this pass; the reclaim
			// event will (or did) clear pending.
			w.forget(id)
			continue
		}
		st := r.Stats()
		if !st.Deferred {
			w.forget(id)
			continue
		}
		if st.RC == 0 && st.Subregions == 0 {
			// Drained but unreclaimed: a lost wakeup. Heal, don't flag.
			if r.drain(true) {
				w.healed.Add(1)
				w.forget(id)
				continue
			}
			// Lost the race with a pin/drain; re-read below.
			st = r.Stats()
			if !st.Deferred {
				w.forget(id)
				continue
			}
		}
		sz := StuckZombie{
			ID:         id,
			Age:        now.Sub(w.since(id)),
			RC:         st.RC,
			Pins:       st.Pins,
			Subregions: st.Subregions,
			Holders:    blocked[id].Holders,
		}
		stuck = append(stuck, sz)
		w.flagged.Add(1)
		if w.OnStuck != nil {
			w.OnStuck(sz)
		}
	}
	return stuck
}

func (w *ZombieWatchdog) forget(id int64) {
	w.mu.Lock()
	delete(w.pending, id)
	w.mu.Unlock()
}

func (w *ZombieWatchdog) since(id int64) time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending[id]
}

// Flagged returns the cumulative number of stuck-zombie reports made.
func (w *ZombieWatchdog) Flagged() int64 { return w.flagged.Load() }

// Healed returns the cumulative number of lost drain wakeups the
// watchdog repaired (zombies it reclaimed itself).
func (w *ZombieWatchdog) Healed() int64 { return w.healed.Load() }

// Start runs Check every interval on a background goroutine until
// Stop. Start may be called at most once.
func (w *ZombieWatchdog) Start(interval time.Duration) {
	if w.stop != nil {
		panic("rcgo: ZombieWatchdog.Start called twice")
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Check()
			}
		}
	}()
}

// Stop halts the background checker and waits for it to exit. No-op if
// Start was never called; safe to call more than once.
func (w *ZombieWatchdog) Stop() {
	if w.stop == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// StaleOwner describes one region held through an Owner token longer
// than the owner watchdog's threshold, with the evidence an operator
// needs: how long the current token has been held, where it was
// acquired, and how many AcquireContext contenders are queued behind
// it.
type StaleOwner struct {
	ID int64 `json:"id"`
	// Age is how long the current token had been held when flagged
	// (measured from the region's own acquire timestamp, so a hand-off
	// that re-minted the token resets it).
	Age time.Duration `json:"age_ns"`
	// AcquireSite is the "file:line (func)" of the call that minted the
	// current token — the TryAcquire/Acquire caller, or the parked
	// AcquireContext waiter the token was handed to. Empty if no frames
	// were captured.
	AcquireSite string `json:"acquire_site,omitempty"`
	// QueueDepth is the number of waiters parked behind the stale owner
	// at flag time.
	QueueDepth int `json:"queue_depth"`
	// Revoked reports that this pass forcibly revoked the token
	// (ForceReleaseAfter elapsed): the region moved on and the stale
	// token now fails every operation with ErrOwnerRevoked.
	Revoked bool `json:"revoked,omitempty"`
}

// OwnerWatchdog flags regions that stay exclusively owned longer than a
// threshold — the ownership analogue of ZombieWatchdog, for the failure
// mode where a goroutine acquires a region and then stalls or crashes
// without releasing, wedging every parked AcquireContext waiter behind
// it. It is a Tracer: install it with Arena.SetTracer (chaining any
// previous tracer through next) and it learns acquire and release times
// from the TraceRegionAcquired / TraceRegionReleased /
// TraceOwnerRevoked events. Each Check (called directly, or
// periodically after Start):
//
//  1. verifies against the region's own acquire timestamp — a region
//     whose token was handed onward since the trace event is younger
//     than the watchdog's notebook says and is skipped, not flagged;
//  2. flags every region owned past the threshold, reporting the
//     holder's acquire site and the current queue depth to the OnStale
//     callback (if set);
//  3. optionally, when ForceReleaseAfter is set and exceeded, revokes
//     the stale token (Region.revokeOwner): the token fails every
//     subsequent operation with ErrOwnerRevoked, its unflushed deltas
//     are discarded, and the region is handed to the next waiter or
//     returned to the shared state. The escape hatch is off by default
//     — revocation tears a token out of a possibly-running goroutine's
//     hands and is only safe when the owner is known to be wedged.
type OwnerWatchdog struct {
	arena     *Arena
	next      Tracer
	threshold time.Duration

	// ForceReleaseAfter, when positive, is the held-age beyond which a
	// Check forcibly revokes the stale token. Zero disables forced
	// release (detection only). Set before installing the watchdog.
	ForceReleaseAfter time.Duration

	// OnStale, if non-nil, receives every flagged stale owner, once per
	// Check that finds it still held. Set before installing the
	// watchdog as a tracer.
	OnStale func(StaleOwner)

	// now is the clock, injectable in tests.
	now func() time.Time

	mu      sync.Mutex
	pending map[int64]time.Time // owned region id -> when acquired

	flagged atomic.Int64
	revoked atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewOwnerWatchdog creates an owner watchdog for a with the given
// held-age threshold. next, if non-nil, receives every trace event
// after the watchdog has seen it, so it chains with a RingTracer or a
// ZombieWatchdog:
//
//	ring := rcgo.NewRingTracer(1024)
//	w := rcgo.NewOwnerWatchdog(arena, time.Second, ring)
//	arena.SetTracer(w)
func NewOwnerWatchdog(a *Arena, threshold time.Duration, next Tracer) *OwnerWatchdog {
	return &OwnerWatchdog{
		arena:     a,
		next:      next,
		threshold: threshold,
		now:       time.Now,
		pending:   make(map[int64]time.Time),
	}
}

// Trace implements Tracer: acquires start the clock on a region,
// releases and revocations clear it; every event is forwarded to the
// chained tracer. The hand-off protocol orders a released event before
// the successor's acquired event (the release is sequenced before the
// channel send that wakes the waiter), so the pending map never drops
// an update from out-of-order delivery of one region's events.
func (w *OwnerWatchdog) Trace(ev TraceEvent) {
	switch ev.Kind {
	case TraceRegionAcquired:
		w.mu.Lock()
		w.pending[ev.Region] = w.now()
		w.mu.Unlock()
	case TraceRegionReleased, TraceOwnerRevoked:
		w.mu.Lock()
		delete(w.pending, ev.Region)
		w.mu.Unlock()
	}
	if w.next != nil {
		w.next.Trace(ev)
	}
}

// Unwrap returns the chained tracer, so inspectors (DebugHandler's
// trace stats) can reach a RingTracer underneath the watchdog.
func (w *OwnerWatchdog) Unwrap() Tracer { return w.next }

// Check runs one watchdog pass and returns the regions flagged as
// stalely owned, sorted by id. See the type comment for what one pass
// does.
func (w *OwnerWatchdog) Check() []StaleOwner {
	now := w.now()
	w.mu.Lock()
	var due []int64
	for id, since := range w.pending {
		if now.Sub(since) >= w.threshold {
			due = append(due, id)
		}
	}
	w.mu.Unlock()
	if len(due) == 0 {
		return nil
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })

	var stale []StaleOwner
	for _, id := range due {
		r := w.arena.findRegion(id)
		if r == nil {
			// Released and reclaimed between the event and this pass.
			w.forget(id)
			continue
		}
		held, owner, since, site, depth := r.ownerInfo()
		if !held {
			// Released since; the released event will (or did) clear
			// pending.
			w.forget(id)
			continue
		}
		// The region's own timestamp is authoritative: a hand-off since
		// the traced acquire re-minted the token, and the new holder gets
		// its own full threshold. Update the notebook, don't flag.
		age := now.Sub(since)
		if age < w.threshold {
			w.mu.Lock()
			w.pending[id] = since
			w.mu.Unlock()
			continue
		}
		so := StaleOwner{ID: id, Age: age, AcquireSite: site, QueueDepth: depth}
		if w.ForceReleaseAfter > 0 && age >= w.ForceReleaseAfter {
			if r.revokeOwner(owner) {
				so.Revoked = true
				w.revoked.Add(1)
				w.forget(id)
			}
		}
		stale = append(stale, so)
		w.flagged.Add(1)
		if w.OnStale != nil {
			w.OnStale(so)
		}
	}
	return stale
}

func (w *OwnerWatchdog) forget(id int64) {
	w.mu.Lock()
	delete(w.pending, id)
	w.mu.Unlock()
}

// Flagged returns the cumulative number of stale-owner reports made.
func (w *OwnerWatchdog) Flagged() int64 { return w.flagged.Load() }

// Revoked returns the cumulative number of stale tokens the watchdog
// forcibly revoked.
func (w *OwnerWatchdog) Revoked() int64 { return w.revoked.Load() }

// Start runs Check every interval on a background goroutine until
// Stop. Start may be called at most once.
func (w *OwnerWatchdog) Start(interval time.Duration) {
	if w.stop != nil {
		panic("rcgo: OwnerWatchdog.Start called twice")
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Check()
			}
		}
	}()
}

// Stop halts the background checker and waits for it to exit. No-op if
// Start was never called; safe to call more than once.
func (w *OwnerWatchdog) Stop() {
	if w.stop == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}
