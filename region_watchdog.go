package rcgo

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Graceful degradation for deletes that stay blocked. Delete is
// non-blocking by design — it fails with ErrRegionInUse rather than
// waiting for references to drain — so a caller that *wants* the region
// gone needs a retry policy, and an operator needs to know when a
// deferred-deleted region is never going to drain. This file provides
// both: DeleteWithRetry (bounded, jittered exponential backoff under a
// context) and ZombieWatchdog (tracer-driven detection of zombies older
// than a threshold, named with the holders that pin them, healing lost
// drain wakeups along the way).

// Backoff configures DeleteWithRetry's jittered exponential backoff.
// The zero value is usable: 1ms initial, 100ms cap, doubling, half the
// interval jittered.
type Backoff struct {
	// Initial is the first sleep (default 1ms).
	Initial time.Duration
	// Max caps the sleep (default 100ms).
	Max time.Duration
	// Multiplier grows the sleep after each failed attempt (default 2).
	Multiplier float64
	// Jitter is the fraction of each sleep drawn uniformly at random
	// (default 0.5): the actual sleep is d*(1-Jitter) + rand*d*Jitter,
	// decorrelating retry storms from concurrent deleters.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 100 * time.Millisecond
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
	return b
}

// sleep returns the jittered duration for attempt n (0-based).
func (b Backoff) sleep(n int) time.Duration {
	d := float64(b.Initial)
	for i := 0; i < n; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		d = d*(1-b.Jitter) + rand.Float64()*d*b.Jitter
	}
	return time.Duration(d)
}

// DeleteWithRetry calls Delete until it succeeds, retrying with
// jittered exponential backoff while the failure is transient — the
// region is in use (ErrRegionInUse) or a failpoint injected the failure
// (ErrInjected). It stops early on a terminal outcome (the region was
// already deleted, or it is the traditional region) and returns that
// error unchanged. When ctx expires first, the returned error wraps
// both the context error and the last Delete error, so callers can
// test either with errors.Is.
func (r *Region) DeleteWithRetry(ctx context.Context, b Backoff) error {
	b = b.withDefaults()
	for attempt := 0; ; attempt++ {
		err := r.Delete()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrRegionInUse) && !errors.Is(err, ErrInjected) {
			return err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("rcgo: delete retry on region %d gave up: %w", r.id,
				errors.Join(ctx.Err(), err))
		case <-time.After(b.sleep(attempt)):
		}
	}
}

// SweepZombies force-drains every zombie region whose references and
// subregions have already drained, returning the number of regions
// reclaimed. A healthy arena reclaims zombies inline (the last decRC or
// child reclaim drains them) and a sweep finds nothing; the sweep
// exists as the recovery path for lost drain wakeups — the condition
// the zombie.drain failpoint induces and AuditZombieReclaimable
// reports. It loops to a fixpoint so cascades (a drained child
// unblocking a zombie parent) complete in one call. Safe to run
// concurrently with anything.
func (a *Arena) SweepZombies() int {
	total := 0
	for {
		n := 0
		a.EachRegion(func(r *Region) {
			if r.drain(true) {
				n++
			}
		})
		total += n
		if n == 0 {
			return total
		}
	}
}

// StuckZombie describes one deferred-deleted region that has stayed
// unreclaimed longer than the watchdog's threshold, with the evidence
// an operator needs: how long it has been a zombie, its current counts,
// and which regions' counted slots pin it (from the blocked-deleters
// scan).
type StuckZombie struct {
	ID int64 `json:"id"`
	// Age is how long the region has been a zombie when flagged.
	Age time.Duration `json:"age_ns"`
	RC  int64         `json:"rc"`
	// Pins is the pin subset of RC.
	Pins int64 `json:"pins"`
	// Subregions counts live children; a zombie cannot reclaim while
	// any remain, even at rc 0.
	Subregions int64 `json:"subregions,omitempty"`
	// Holders names the regions whose registered counted slots point
	// into this region, sorted by slot count descending.
	Holders []BlockedHolder `json:"holders,omitempty"`
}

// ZombieWatchdog flags deferred-deleted regions that fail to reclaim
// within a threshold. It is a Tracer: install it with Arena.SetTracer
// (chaining any previous tracer through next) and it learns zombie
// birth and reclaim times from the TraceRegionDeferred /
// TraceRegionReclaimed events. Each Check (called directly, or
// periodically after Start):
//
//  1. heals lost drain wakeups — a zombie past the threshold that is
//     already drained (rc 0, no subregions) is reclaimed on the spot,
//     not flagged;
//  2. flags every zombie past the threshold that is genuinely pinned,
//     naming the pinning holder regions via the blocked-deleters scan,
//     and delivers each report to the OnStuck callback (if set).
type ZombieWatchdog struct {
	arena     *Arena
	next      Tracer
	threshold time.Duration

	// OnStuck, if non-nil, receives every flagged zombie, once per
	// Check that finds it still stuck. Set before installing the
	// watchdog as a tracer.
	OnStuck func(StuckZombie)

	// now is the clock, injectable in tests.
	now func() time.Time

	mu      sync.Mutex
	pending map[int64]time.Time // zombie id -> when it was deferred

	flagged atomic.Int64
	healed  atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewZombieWatchdog creates a watchdog for a with the given age
// threshold. next, if non-nil, receives every trace event after the
// watchdog has seen it, so a RingTracer keeps working underneath:
//
//	ring := rcgo.NewRingTracer(1024)
//	w := rcgo.NewZombieWatchdog(arena, time.Second, ring)
//	arena.SetTracer(w)
func NewZombieWatchdog(a *Arena, threshold time.Duration, next Tracer) *ZombieWatchdog {
	return &ZombieWatchdog{
		arena:     a,
		next:      next,
		threshold: threshold,
		now:       time.Now,
		pending:   make(map[int64]time.Time),
	}
}

// Trace implements Tracer: zombie births and reclaims update the
// pending set; every event is forwarded to the chained tracer.
func (w *ZombieWatchdog) Trace(ev TraceEvent) {
	switch ev.Kind {
	case TraceRegionDeferred:
		w.mu.Lock()
		w.pending[ev.Region] = w.now()
		w.mu.Unlock()
	case TraceRegionReclaimed:
		w.mu.Lock()
		delete(w.pending, ev.Region)
		w.mu.Unlock()
	}
	if w.next != nil {
		w.next.Trace(ev)
	}
}

// Unwrap returns the chained tracer, so inspectors (DebugHandler's
// trace stats) can reach a RingTracer underneath the watchdog.
func (w *ZombieWatchdog) Unwrap() Tracer { return w.next }

// Check runs one watchdog pass and returns the zombies flagged as
// stuck, sorted by id. See the type comment for what one pass does.
func (w *ZombieWatchdog) Check() []StuckZombie {
	now := w.now()
	w.mu.Lock()
	var due []int64
	for id, since := range w.pending {
		if now.Sub(since) >= w.threshold {
			due = append(due, id)
		}
	}
	w.mu.Unlock()
	if len(due) == 0 {
		return nil
	}

	// The blocked-deleters scan names the holders; index it by zombie.
	blocked := make(map[int64]BlockedRegion)
	for _, br := range w.arena.BlockedDeleters() {
		blocked[br.ID] = br
	}

	var stuck []StuckZombie
	for _, id := range due {
		r := w.arena.findRegion(id)
		if r == nil {
			// Reclaimed between the event and this pass; the reclaim
			// event will (or did) clear pending.
			w.forget(id)
			continue
		}
		st := r.Stats()
		if !st.Deferred {
			w.forget(id)
			continue
		}
		if st.RC == 0 && st.Subregions == 0 {
			// Drained but unreclaimed: a lost wakeup. Heal, don't flag.
			if r.drain(true) {
				w.healed.Add(1)
				w.forget(id)
				continue
			}
			// Lost the race with a pin/drain; re-read below.
			st = r.Stats()
			if !st.Deferred {
				w.forget(id)
				continue
			}
		}
		sz := StuckZombie{
			ID:         id,
			Age:        now.Sub(w.since(id)),
			RC:         st.RC,
			Pins:       st.Pins,
			Subregions: st.Subregions,
			Holders:    blocked[id].Holders,
		}
		stuck = append(stuck, sz)
		w.flagged.Add(1)
		if w.OnStuck != nil {
			w.OnStuck(sz)
		}
	}
	return stuck
}

func (w *ZombieWatchdog) forget(id int64) {
	w.mu.Lock()
	delete(w.pending, id)
	w.mu.Unlock()
}

func (w *ZombieWatchdog) since(id int64) time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending[id]
}

// Flagged returns the cumulative number of stuck-zombie reports made.
func (w *ZombieWatchdog) Flagged() int64 { return w.flagged.Load() }

// Healed returns the cumulative number of lost drain wakeups the
// watchdog repaired (zombies it reclaimed itself).
func (w *ZombieWatchdog) Healed() int64 { return w.healed.Load() }

// Start runs Check every interval on a background goroutine until
// Stop. Start may be called at most once.
func (w *ZombieWatchdog) Start(interval time.Duration) {
	if w.stop != nil {
		panic("rcgo: ZombieWatchdog.Start called twice")
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Check()
			}
		}
	}()
}

// Stop halts the background checker and waits for it to exit. No-op if
// Start was never called; safe to call more than once.
func (w *ZombieWatchdog) Stop() {
	if w.stop == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}
