// Package ir defines the bytecode the RC compiler targets: a register
// machine over the simulated heap. Pointer stores come in barrier
// flavours corresponding to the paper's Figure 3: a full reference-count
// update, one of the three annotation checks, or nothing (statically safe
// or checking disabled).
package ir

import (
	"fmt"
	"strings"
)

// Op is a bytecode opcode.
type Op uint8

const (
	// OpConst: r[A] = K.
	OpConst Op = iota
	// OpMove: r[A] = r[B].
	OpMove
	// Arithmetic (signed 64-bit): r[A] = r[B] op r[C].
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	// OpNeg: r[A] = -r[B]. OpNot: r[A] = (r[B] == 0).
	OpNeg
	OpNot
	// Comparisons: r[A] = r[B] op r[C] (0/1).
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Control flow: Jmp to K; Jz/Jnz test r[A].
	OpJmp
	OpJz
	OpJnz
	// OpCall: call Funcs[K] with args r[B..B+C-1], result to r[A]
	// (A = -1 for void).
	OpCall
	// OpRet: return r[A] (A = -1 for void).
	OpRet
	// OpLea: r[A] = r[B] + K, with a null check on r[B].
	OpLea
	// OpLeaIdx: r[A] = r[B] + r[C]*K, with a null check on r[B].
	OpLeaIdx
	// OpLoad: r[A] = heap[r[B]].
	OpLoad
	// OpStore: heap[r[A]] = r[B] (scalar or region store, no barrier).
	OpStore
	// OpStoreP: heap[r[A]] = r[B] with pointer barrier K (Barrier*).
	OpStoreP
	// OpGlobalAddr: r[A] = &globals[K].
	OpGlobalAddr
	// OpStackAddr: r[A] = frame stack base + K.
	OpStackAddr
	// OpStrAddr: r[A] = address of interned string K.
	OpStrAddr
	// Region operations.
	OpNewRegion // r[A] = newregion()
	OpNewSub    // r[A] = newsubregion(r[B])
	OpDelRegion // deleteregion(r[A])
	OpRegionOf  // r[A] = regionof(r[B])
	OpAlloc     // r[A] = ralloc(r[B], type K)
	OpAllocArr  // r[A] = rarrayalloc(r[B], r[C], type K)
	OpArrLen    // r[A] = arraylen(r[B])
	// Builtins.
	OpPrintInt
	OpPrintChar
	OpPrintStr
	OpAssert
	// Local-variable pinning around deletes-calls: K indexes
	// Func.PinLists.
	OpPin
	OpUnpin
)

// Barrier kinds for OpStoreP (operand K).
const (
	BarrierFull   int64 = iota // Figure 3(a) reference-count update
	BarrierSame                // sameregion check
	BarrierTrad                // traditional check
	BarrierParent              // parentptr check
	BarrierNone                // statically safe / checking disabled
)

// Instr is one instruction.
type Instr struct {
	Op      Op
	A, B, C int32
	K       int64
}

// StackSlot describes one word of a function's stack area (an
// address-taken local).
type StackSlot struct {
	Off int32
	// Barrier is the store barrier its assignments use (BarrierFull for
	// counted pointer slots); -1 for non-pointer slots.
	Barrier int64
	Name    string
}

// Func is a compiled function.
type Func struct {
	Name       string
	NParams    int
	NRegs      int
	StackWords int32
	Slots      []StackSlot
	Code       []Instr
	Deletes    bool
	// PinLists holds, per pin site, the pointer-typed registers live
	// across the corresponding deletes-call.
	PinLists [][]int32
}

// TypeDesc mirrors region.TypeDesc; the compiler produces one per
// allocated type, with counted offsets depending on the barrier
// configuration.
type TypeDesc struct {
	Name           string
	Size           uint64
	CountedOffsets []uint64
	AllPtrOffsets  []uint64
}

// GlobalArray describes a global array to allocate at startup.
type GlobalArray struct {
	Slot     int32 // globals-area slot receiving the address
	Len      uint64
	ElemType int32 // index into Types
}

// GlobalInit is a constant scalar initializer.
type GlobalInit struct {
	Slot int32
	// Kind 0: integer K; kind 1: string index K.
	Kind int
	K    int64
}

// Program is a compiled program.
type Program struct {
	Funcs   []*Func
	ByName  map[string]int
	MainIdx int

	Types       []TypeDesc
	GlobalWords int32
	// GlobalDesc indexes the Types entry describing the globals area.
	GlobalDesc int32
	Arrays     []GlobalArray
	Inits      []GlobalInit
	Strings    []string
}

var opNames = [...]string{
	OpConst: "const", OpMove: "move", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpMod: "mod", OpNeg: "neg", OpNot: "not",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz", OpCall: "call", OpRet: "ret",
	OpLea: "lea", OpLeaIdx: "leaidx", OpLoad: "load", OpStore: "store",
	OpStoreP: "storep", OpGlobalAddr: "gaddr", OpStackAddr: "saddr",
	OpStrAddr: "straddr", OpNewRegion: "newregion", OpNewSub: "newsub",
	OpDelRegion: "delregion", OpRegionOf: "regionof", OpAlloc: "alloc",
	OpAllocArr: "allocarr", OpArrLen: "arrlen", OpPrintInt: "printi",
	OpPrintChar: "printc", OpPrintStr: "prints", OpAssert: "assert",
	OpPin: "pin", OpUnpin: "unpin",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

var barrierNames = map[int64]string{
	BarrierFull: "full", BarrierSame: "same", BarrierTrad: "trad",
	BarrierParent: "parent", BarrierNone: "none",
}

// Disasm renders a function's code for debugging and tests.
func Disasm(f *Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s: params=%d regs=%d stack=%d deletes=%v\n",
		f.Name, f.NParams, f.NRegs, f.StackWords, f.Deletes)
	for i, in := range f.Code {
		fmt.Fprintf(&sb, "  %3d: %-9s", i, in.Op)
		switch in.Op {
		case OpStoreP:
			fmt.Fprintf(&sb, "[r%d] = r%d  barrier=%s", in.A, in.B, barrierNames[in.K])
		case OpCall:
			fmt.Fprintf(&sb, "r%d = f%d(r%d..%d)", in.A, in.K, in.B, in.B+in.C-1)
		default:
			fmt.Fprintf(&sb, "A=%d B=%d C=%d K=%d", in.A, in.B, in.C, in.K)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
