package ir

import (
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	for op := OpConst; op <= OpUnpin; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if Op(200).String() != "op(200)" {
		t.Error("unknown opcode formatting wrong")
	}
}

func TestDisasmFormats(t *testing.T) {
	f := &Func{
		Name: "f", NParams: 1, NRegs: 4, StackWords: 2, Deletes: true,
		Code: []Instr{
			{Op: OpConst, A: 0, K: 7},
			{Op: OpStoreP, A: 1, B: 2, K: BarrierParent},
			{Op: OpCall, A: 3, B: 0, C: 2, K: 5},
			{Op: OpRet, A: 3},
		},
	}
	text := Disasm(f)
	for _, want := range []string{
		"func f: params=1 regs=4 stack=2 deletes=true",
		"barrier=parent",
		"r3 = f5(r0..1)",
		"ret",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestBarrierConstantsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for _, b := range []int64{BarrierFull, BarrierSame, BarrierTrad, BarrierParent, BarrierNone} {
		if seen[b] {
			t.Fatalf("duplicate barrier constant %d", b)
		}
		seen[b] = true
	}
}
