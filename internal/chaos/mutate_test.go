package chaos

import (
	"encoding/hex"
	"math/rand"
	"testing"
	"time"
)

// Go-fuzz-style mutations of the fuzz seed corpus (byte flips,
// truncations, span duplications, inserts, swaps), each run under a
// per-case watchdog: no decoded schedule may diverge from the model or
// wedge the engine. Guards the FuzzDeleteStateMachine target against
// inputs that would hang a fuzz worker (the Go fuzzer has no per-exec
// timeout, so a hang reads as a silent stall).
func TestMutatedSchedulesTerminate(t *testing.T) {
	var seeds [][]byte
	for _, s := range []int64{1, 2, 3} {
		var data []byte
		for _, op := range RandomOps(s, 200) {
			data = append(data, byte(op.Kind), byte(op.A), byte(op.B))
		}
		seeds = append(seeds, data)
	}
	rng := rand.New(rand.NewSource(7))
	mutate := func(in []byte) []byte {
		out := append([]byte(nil), in...)
		for k := 0; k <= rng.Intn(4); k++ {
			if len(out) == 0 {
				out = append(out, byte(rng.Intn(256)))
				continue
			}
			switch rng.Intn(5) {
			case 0: // flip byte
				out[rng.Intn(len(out))] = byte(rng.Intn(256))
			case 1: // truncate
				out = out[:rng.Intn(len(out))]
			case 2: // duplicate a span
				i := rng.Intn(len(out))
				j := i + rng.Intn(len(out)-i)
				out = append(out[:j], append(append([]byte(nil), out[i:j]...), out[j:]...)...)
			case 3: // insert random byte
				i := rng.Intn(len(out))
				out = append(out[:i], append([]byte{byte(rng.Intn(256))}, out[i:]...)...)
			case 4: // swap two bytes
				i, j := rng.Intn(len(out)), rng.Intn(len(out))
				out[i], out[j] = out[j], out[i]
			}
		}
		if len(out) > 4096 {
			out = out[:4096]
		}
		return out
	}
	cases := 5000
	if testing.Short() {
		cases = 1000
	}
	for i := 0; i < cases; i++ {
		data := mutate(seeds[rng.Intn(len(seeds))])
		done := make(chan error, 1)
		go func() {
			h := NewHarness()
			done <- RunSeq(h, DecodeOps(data), nil, 500)
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("case %d diverged: %v\ninput: %s", i, err, hex.EncodeToString(data))
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("case %d wedged the engine\ninput: %s", i, hex.EncodeToString(data))
		}
	}
}
