package chaos

import (
	"testing"

	"rcgo/internal/failpoint"
)

// The sequential engine with no failpoints must track the runtime
// exactly over a long random schedule.
func TestSequentialModelNoFailpoints(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		h := NewHarness()
		if err := RunSeq(h, RandomOps(seed, 4000), nil, 200); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out := h.Outcomes()
		for _, want := range []string{"ok", "in-use", "deleted"} {
			if out[want] == 0 {
				t.Fatalf("seed %d: outcome %q never observed: %v", seed, want, out)
			}
		}
	}
}

// The same schedules with error failpoints armed on every site: the
// model must still track the runtime (injected ops are no-ops), and
// every site must fire.
func TestSequentialModelWithFailpoints(t *testing.T) {
	before := fires(t)
	h := NewHarness()
	if err := RunSeq(h, RandomOps(7, 6000), SeqRules(7), 200); err != nil {
		t.Fatal(err)
	}
	if h.Outcomes()["injected"] == 0 {
		t.Fatalf("no injected outcomes: %v", h.Outcomes())
	}
	after := fires(t)
	for name, n := range after {
		if name == "rcgo/own.handoff" {
			// A hand-off needs a parked waiter, which a single-threaded
			// schedule cannot produce; the contention phase covers it.
			continue
		}
		if name == "rcgo/slab.map" {
			// The slab carve needs a backing store and a pointer-free
			// payload; the model's node carries Ref slots, so the
			// sequential schedule can never reach the site. The slab
			// phase covers it.
			continue
		}
		if n == before[name] {
			t.Errorf("site %s never fired", name)
		}
	}
}

// Same seed, same ops, same rules: the injected-outcome count is
// reproducible (sequential execution makes the per-site evaluation
// order deterministic too).
func TestSequentialDeterminism(t *testing.T) {
	run := func() map[string]int {
		h := NewHarness()
		if err := RunSeq(h, RandomOps(11, 3000), SeqRules(11), 0); err != nil {
			t.Fatal(err)
		}
		return h.Outcomes()
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("outcome %q: %d vs %d (a=%v b=%v)", k, v, b[k], a, b)
		}
	}
}

func TestConcurrentPhases(t *testing.T) {
	ops := 400
	if testing.Short() {
		ops = 150
	}
	for _, perturb := range []bool{true, false} {
		res, err := RunConc(ConcConfig{
			Seed: 3, Workers: 4, Ops: ops,
			Rules: ConcRules(3, perturb),
		})
		if err != nil {
			t.Fatalf("perturb=%v: %v", perturb, err)
		}
		if !res.Audit.OK {
			t.Fatalf("perturb=%v: audit: %s", perturb, res.Audit)
		}
		if res.TraceStats.Total == 0 {
			t.Fatalf("perturb=%v: no lifecycle events traced", perturb)
		}
	}
}

// The alloc-churn phase must keep exact allocation accounting (arena
// Allocs == worker-observed successes, LiveObjects 0, audit clean)
// while refills are refused and regions are deleted mid-allocation.
func TestAllocChurnPhase(t *testing.T) {
	ops := 2000
	if testing.Short() {
		ops = 500
	}
	res, err := RunAllocChurn(ConcConfig{
		Seed: 5, Workers: 4, Ops: ops,
		Rules: AllocChurnRules(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Audit.OK {
		t.Fatalf("audit: %s", res.Audit)
	}
	if res.AllocSuccesses == 0 {
		t.Fatal("no successful allocations — churn phase exercised nothing")
	}
	if res.AllocFlushes == 0 {
		t.Fatal("no delta flushes — the batched counter path never engaged")
	}
}

// The ownership phase must keep the flush-at-release exactness
// contract (arena Allocs == worker-observed owned-path successes,
// Acquires == Releases, OwnedRegions 0, audit clean) while tokens churn
// around the hand-off ring with injected release failures, and every
// shared-path probe against a held region must fail ErrRegionOwned.
func TestOwnershipPhase(t *testing.T) {
	ops := 400
	if testing.Short() {
		ops = 150
	}
	res, err := RunOwnership(ConcConfig{
		Seed: 9, Workers: 4, Ops: ops,
		Rules: OwnershipRules(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Audit.OK {
		t.Fatalf("audit: %s", res.Audit)
	}
	if res.Acquires == 0 {
		t.Fatal("no acquisitions — ownership phase exercised nothing")
	}
	if res.OwnerFlushes == 0 {
		t.Fatal("no owner flushes — the owned-path metric deltas never merged")
	}
	if res.TraceStats.Total == 0 {
		t.Fatal("no lifecycle events traced")
	}
}

// The contention phase must keep the acquisition ledger exact
// (Acquires == Releases + Revocations, zero leaked waiters, audit
// clean) while the own.handoff failpoint refuses hand-offs and the
// owner watchdog force-revokes abandoned tokens.
func TestContentionPhase(t *testing.T) {
	ops := 400
	if testing.Short() {
		ops = 150
	}
	res, err := RunContention(ConcConfig{
		Seed: 13, Workers: 4, Ops: ops,
		Rules: ContentionRules(13),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Audit.OK {
		t.Fatalf("audit: %s", res.Audit)
	}
	if res.AcquireWaits == 0 {
		t.Fatal("no blocking waits — contention phase exercised nothing")
	}
	if res.Acquires == 0 || res.Acquires != res.Releases+res.Revocations {
		t.Fatalf("ledger: acquires=%d releases=%d revocations=%d",
			res.Acquires, res.Releases, res.Revocations)
	}
}

// RunPhase reruns any single phase by name with the same seed offsets
// as the full run, and rejects unknown names with the phase list.
func TestRunPhase(t *testing.T) {
	for _, name := range PhaseNames() {
		rep, err := RunPhase(name, Config{Seed: 2, SeqOps: 500, Workers: 2, ConcOps: 60})
		if err != nil {
			t.Fatalf("phase %s: %v", name, err)
		}
		if rep == nil {
			t.Fatalf("phase %s: nil report", name)
		}
	}
	if _, err := RunPhase("no-such-phase", Config{Seed: 1}); err == nil {
		t.Fatal("unknown phase accepted")
	}
}

func fires(t *testing.T) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64)
	for _, st := range siteCoverage() {
		out[st.Name] = st.Fires
	}
	if len(out) != 9 {
		t.Fatalf("expected 9 rcgo sites, got %v", out)
	}
	return out
}

var _ = failpoint.Snapshot // keep the import obvious; Snapshot backs fires()
