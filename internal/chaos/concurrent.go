package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rcgo"
	"rcgo/internal/failpoint"
)

// Concurrent chaos phase: workers hammer a shared region tree while
// failpoints perturb and fail every instrumented lifecycle edge, a
// ZombieWatchdog (chained over a RingTracer) patrols for stuck
// zombies, and an audit sampler exercises Arena.Audit against the live
// arena. There is no reference model here — interleavings are not
// reproducible — so correctness is judged by the invariants that
// survive any interleaving: tolerated error classes only, exact
// accounting after quiesce, and a clean audit.

// ConcRules arms the sites with an interleaving-perturbation mix when
// perturb is true (yields and delays inside the race windows), or an
// error-injection mix otherwise (every unwind path under concurrency).
func ConcRules(seed uint64, perturb bool) map[string]failpoint.Rule {
	if perturb {
		return map[string]failpoint.Rule{
			"rcgo/alloc.admission": {Action: failpoint.ActionYield, Num: 1, Den: 5, Seed: seed},
			"rcgo/incrc.validate":  {Action: failpoint.ActionYield, Num: 1, Den: 3, Seed: seed, Yields: 2},
			"rcgo/delete.dying":    {Action: failpoint.ActionDelay, Num: 1, Den: 7, Seed: seed, Delay: 50 * time.Microsecond},
			"rcgo/zombie.drain":    {Action: failpoint.ActionYield, Num: 1, Den: 4, Seed: seed},
			"rcgo/slot.insert":     {Action: failpoint.ActionYield, Num: 1, Den: 4, Seed: seed},
			"rcgo/alloc.refill":    {Action: failpoint.ActionYield, Num: 1, Den: 3, Seed: seed, Yields: 2},
		}
	}
	return map[string]failpoint.Rule{
		"rcgo/alloc.admission": {Action: failpoint.ActionError, Num: 1, Den: 17, Seed: seed},
		"rcgo/incrc.validate":  {Action: failpoint.ActionError, Num: 1, Den: 19, Seed: seed},
		"rcgo/delete.dying":    {Action: failpoint.ActionError, Num: 1, Den: 11, Seed: seed},
		"rcgo/zombie.drain":    {Action: failpoint.ActionError, Num: 1, Den: 3, Seed: seed},
		"rcgo/slot.insert":     {Action: failpoint.ActionError, Num: 1, Den: 13, Seed: seed},
		"rcgo/alloc.refill":    {Action: failpoint.ActionError, Num: 1, Den: 5, Seed: seed},
	}
}

// AllocChurnRules arms the allocation-path sites for the alloc-churn
// phase: refused chunk refills at a high rate (the error path SeqRules
// cannot arm deterministically), transient admission failures, and
// yields inside the delete windows so reclaim's delta drain races the
// fast path's increment-then-validate loop as often as possible.
func AllocChurnRules(seed uint64) map[string]failpoint.Rule {
	return map[string]failpoint.Rule{
		"rcgo/alloc.admission": {Action: failpoint.ActionError, Num: 1, Den: 29, Seed: seed},
		"rcgo/alloc.refill":    {Action: failpoint.ActionError, Num: 1, Den: 3, Seed: seed},
		"rcgo/delete.dying":    {Action: failpoint.ActionYield, Num: 1, Den: 3, Seed: seed, Yields: 2},
		"rcgo/zombie.drain":    {Action: failpoint.ActionYield, Num: 1, Den: 4, Seed: seed},
	}
}

// FabricRules arms the sites for the fabric phase: transient admission
// failures plus yields inside every window where a fabric shard's
// counters are mid-update, so cross-shard accounting races as often as
// the scheduler allows.
func FabricRules(seed uint64) map[string]failpoint.Rule {
	return map[string]failpoint.Rule{
		"rcgo/alloc.admission": {Action: failpoint.ActionError, Num: 1, Den: 31, Seed: seed},
		"rcgo/alloc.refill":    {Action: failpoint.ActionYield, Num: 1, Den: 3, Seed: seed, Yields: 2},
		"rcgo/delete.dying":    {Action: failpoint.ActionYield, Num: 1, Den: 3, Seed: seed, Yields: 2},
		"rcgo/zombie.drain":    {Action: failpoint.ActionYield, Num: 1, Den: 4, Seed: seed},
		"rcgo/slot.insert":     {Action: failpoint.ActionYield, Num: 1, Den: 5, Seed: seed},
		"rcgo/incrc.validate":  {Action: failpoint.ActionYield, Num: 1, Den: 5, Seed: seed},
	}
}

// OwnershipRules arms the sites for the ownership hand-off phase:
// injected release failures in the flush window (the region stays owned
// and the token stays valid, so the worker must retry), refused chunk
// refills on the owned allocation path, and yields inside the windows
// the acquire barrier and the external incRC race against.
func OwnershipRules(seed uint64) map[string]failpoint.Rule {
	return map[string]failpoint.Rule{
		"rcgo/own.release":    {Action: failpoint.ActionError, Num: 1, Den: 5, Seed: seed},
		"rcgo/alloc.refill":   {Action: failpoint.ActionError, Num: 1, Den: 7, Seed: seed},
		"rcgo/incrc.validate": {Action: failpoint.ActionYield, Num: 1, Den: 3, Seed: seed, Yields: 2},
		"rcgo/delete.dying":   {Action: failpoint.ActionYield, Num: 1, Den: 3, Seed: seed},
		"rcgo/zombie.drain":   {Action: failpoint.ActionYield, Num: 1, Den: 4, Seed: seed},
	}
}

// ContentionRules arms the sites for the contention phase: refused
// hand-offs in the wake/transfer window (the waiter is requeued and the
// next tried, so FIFO delivery must survive refusals), injected release
// failures in the flush window (the releaser retries on a still-valid
// token while waiters stay parked), and refused chunk refills on the
// owned allocation path.
func ContentionRules(seed uint64) map[string]failpoint.Rule {
	return map[string]failpoint.Rule{
		"rcgo/own.handoff":  {Action: failpoint.ActionError, Num: 1, Den: 4, Seed: seed},
		"rcgo/own.release":  {Action: failpoint.ActionError, Num: 1, Den: 7, Seed: seed},
		"rcgo/alloc.refill": {Action: failpoint.ActionError, Num: 1, Den: 9, Seed: seed},
	}
}

// SlabRules arms the sites for the slab phase: injected map failures on
// the slab refill edge (the only error a backing store may surface, as
// a transient allocator failure), refused GC-heap refills so the
// fallback path churns too, and yields inside the delete windows so
// region reclaim — which returns slab pages for immediate reuse —
// races the carve-and-track window as often as possible.
func SlabRules(seed uint64) map[string]failpoint.Rule {
	return map[string]failpoint.Rule{
		"rcgo/slab.map":     {Action: failpoint.ActionError, Num: 1, Den: 7, Seed: seed},
		"rcgo/alloc.refill": {Action: failpoint.ActionError, Num: 1, Den: 11, Seed: seed},
		"rcgo/delete.dying": {Action: failpoint.ActionYield, Num: 1, Den: 3, Seed: seed, Yields: 2},
		"rcgo/zombie.drain": {Action: failpoint.ActionYield, Num: 1, Den: 4, Seed: seed},
	}
}

// ConcConfig sizes one concurrent phase.
type ConcConfig struct {
	Seed    int64
	Workers int
	// Ops is the per-worker op count.
	Ops int
	// Rules arms the failpoints for the duration of the phase.
	Rules map[string]failpoint.Rule
}

// ConcResult reports one concurrent phase.
type ConcResult struct {
	Ops              int
	WatchdogFlagged  int64
	WatchdogHealed   int64
	SweptAtQuiesce   int
	TraceStats       rcgo.TraceStats
	Audit            rcgo.AuditReport
	DeferredObserved int64
	// AllocSuccesses / AllocFlushes are set by the alloc-churn and
	// fabric phases only: successful TryAlloc calls counted by the
	// workers themselves, and the arena's batched-delta flush count. At
	// quiesce the arena's Allocs counter must equal AllocSuccesses
	// exactly.
	AllocSuccesses int64
	AllocFlushes   int64
	// ShardsPopulated / LiveBeforeQuiesce are set by the fabric phase
	// only: how many distinct fabric shards hosted regions, and how many
	// regions were alive, both sampled after the workers stopped but
	// before teardown — the evidence that the aggregation contract was
	// judged against a genuinely multi-shard population.
	ShardsPopulated   int
	LiveBeforeQuiesce int64
	// AdvisorObservations / AdvisorSites are set by phases that arm the
	// annotation advisor (rcgo.WithAdvisor): the advisor table's total
	// observation count and distinct call sites at quiesce. The phases
	// judge the table per flavour against the workers' own success
	// counts — the advisor's exact-at-quiesce contract under churn.
	AdvisorObservations int64
	AdvisorSites        int
	// Acquires / Releases / OwnerFlushes are set by the ownership and
	// contention phases: the arena's cumulative ownership counters at
	// quiesce. Owner.Delete counts as one release and one delete, so a
	// quiesced run must show Acquires == Releases + Revocations exactly
	// (Revocations is zero in the ownership phase, which runs no
	// watchdog escape hatch).
	Acquires     int64
	Releases     int64
	OwnerFlushes int64
	// Revocations / AcquireWaits / AcquireTimeouts / AcquireCancels are
	// set by the contention phase only: forced token revocations by the
	// OwnerWatchdog, and the parked/aborted AcquireContext tallies.
	Revocations     int64
	AcquireWaits    int64
	AcquireTimeouts int64
	AcquireCancels  int64
	// SlabRefills / SlabReleases / SlabPagesLeaked are set by the slab
	// phase only: chunks carved from the off-heap backing store, pages
	// returned at region reclaim, and the store's in-use page count at
	// quiesce. A quiesced run must show SlabRefills == SlabReleases and
	// SlabPagesLeaked == 0 — a shortfall is a page the reclaim path lost.
	SlabRefills     int64
	SlabReleases    int64
	SlabPagesLeaked int64
}

// advisorCounts is the workers' own tally of successful non-nil stores,
// per flavour — what the advisor's quiesced table must match exactly.
type advisorCounts struct {
	same, trad, parent, ref atomic.Int64
}

// judge compares the advisor's quiesced table against the workers'
// counts and returns the table's site and observation totals.
func (ac *advisorCounts) judge(a *rcgo.Arena) (sites int, observations int64, err error) {
	rep := a.AdvisorReport()
	if !rep.Enabled {
		return 0, 0, fmt.Errorf("advisor judge: advisor not armed")
	}
	var got [4]int64
	for _, s := range rep.Sites {
		got[s.Used] += s.Count
	}
	want := [4]int64{
		rcgo.FlavourSame:   ac.same.Load(),
		rcgo.FlavourTrad:   ac.trad.Load(),
		rcgo.FlavourParent: ac.parent.Load(),
		rcgo.FlavourRef:    ac.ref.Load(),
	}
	if got != want {
		return len(rep.Sites), rep.Observations, fmt.Errorf(
			"advisor drift: table counted same=%d trad=%d parent=%d ref=%d, workers observed same=%d trad=%d parent=%d ref=%d",
			got[rcgo.FlavourSame], got[rcgo.FlavourTrad], got[rcgo.FlavourParent], got[rcgo.FlavourRef],
			want[rcgo.FlavourSame], want[rcgo.FlavourTrad], want[rcgo.FlavourParent], want[rcgo.FlavourRef])
	}
	return len(rep.Sites), rep.Observations, nil
}

// tolerable reports whether err is an error class any op may see under
// concurrent churn with failpoints armed.
func tolerable(err error) bool {
	return err == nil ||
		errors.Is(err, rcgo.ErrRegionDeleted) ||
		errors.Is(err, rcgo.ErrRegionInUse) ||
		errors.Is(err, rcgo.ErrBadRef) ||
		errors.Is(err, rcgo.ErrRegionOwned) ||
		errors.Is(err, rcgo.ErrInjected)
}

// clearRef retries a nil-store until it lands: an injected failure
// leaves the slot holding its counted reference, and a worker that
// gives up on the clear would leak that reference into the quiesce.
func clearRef(holder *rcgo.Obj[node]) error {
	for {
		err := rcgo.SetRef(holder, &holder.Value.Other, nil)
		if err == nil || !errors.Is(err, rcgo.ErrInjected) {
			return err
		}
	}
}

// RunConc runs one concurrent phase and the quiesce that judges it:
// workers stop, failpoints disarm, the tree is torn down with
// DeleteWithRetry, lost drains are swept, and the audit must be clean
// with nothing left alive. The annotation advisor is armed for the
// whole phase, and judged like the counters: every successful non-nil
// store a worker performed must appear in the quiesced advisor table,
// exactly once.
func RunConc(cfg ConcConfig) (ConcResult, error) {
	var res ConcResult
	a := rcgo.NewArena(rcgo.WithAdvisor())
	a.EnableMetrics()
	var adv advisorCounts
	ring := rcgo.NewRingTracer(1 << 14)
	wd := rcgo.NewZombieWatchdog(a, 2*time.Millisecond, ring)
	a.SetTracer(wd)
	wd.Start(5 * time.Millisecond)
	defer wd.Stop()

	const mids = 4
	root := a.NewRegion()
	midRegions := make([]*rcgo.Region, mids)
	midObjs := make([]*rcgo.Obj[node], mids)
	for i := range midRegions {
		midRegions[i] = root.NewSubregion()
		midObjs[i] = rcgo.Alloc[node](midRegions[i])
	}
	rootObj := rcgo.Alloc[node](root)

	for name, r := range cfg.Rules {
		if err := failpoint.Enable(name, r); err != nil {
			return res, err
		}
	}
	defer failpoint.DisableAll()

	// Audit sampler: the auditor must be safe against a fully loaded
	// arena (its report is advisory here; only the quiesced audit
	// judges).
	samplerStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-samplerStop:
				return
			default:
				a.Audit()
				a.BlockedDeleters()
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers*3)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			// Private holder region for counted cross-references into the
			// shared tree; torn down (with retry, failpoints may inject)
			// on the way out.
			holderRegion := a.NewRegion()
			holder, err := rcgo.TryAlloc[node](holderRegion)
			for err != nil {
				holder, err = rcgo.TryAlloc[node](holderRegion)
			}
			defer func() {
				if err := clearRef(holder); err != nil && !tolerable(err) {
					errs <- fmt.Errorf("worker cleanup clear: %w", err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := holderRegion.DeleteWithRetry(ctx, rcgo.Backoff{Initial: 50 * time.Microsecond}); err != nil {
					errs <- fmt.Errorf("worker cleanup delete: %w", err)
				}
			}()
			for i := 0; i < cfg.Ops; i++ {
				mid := midRegions[rng.Intn(mids)]
				mo := midObjs[rng.Intn(mids)]
				var err error
				switch rng.Intn(6) {
				case 0: // alloc into the shared tree
					_, err = rcgo.TryAlloc[node](mid)
				case 1: // transient pin
					if unpin, perr := rcgo.TryPin(mo); perr == nil {
						unpin()
					} else {
						err = perr
					}
				case 2: // counted ref in, then out
					if serr := rcgo.SetRef(holder, &holder.Value.Other, mo); serr == nil {
						adv.ref.Add(1)
						err = clearRef(holder)
					} else {
						err = serr
					}
				case 3: // subregion churn with delete retry
					if sub, serr := mid.TryNewSubregion(); serr == nil {
						_, _ = rcgo.TryAlloc[node](sub)
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						err = sub.DeleteWithRetry(ctx, rcgo.Backoff{Initial: 20 * time.Microsecond})
						cancel()
					} else {
						err = serr
					}
				case 4: // deferred-delete a subregion pinned across the deferral
					if sub, serr := mid.TryNewSubregion(); serr == nil {
						if o, aerr := rcgo.TryAlloc[node](sub); aerr == nil {
							if unpin, perr := rcgo.TryPin(o); perr == nil {
								sub.DeleteDeferred()
								unpin() // the last reference: the zombie drains (or the watchdog heals it)
							} else {
								sub.DeleteDeferred()
							}
						} else {
							sub.DeleteDeferred()
						}
					} else {
						err = serr
					}
				case 5: // annotated stores on the shared objects
					if o, aerr := rcgo.TryAlloc[node](mid); aerr == nil {
						err = rcgo.SetSame(o, &o.Value.Same, mo)
						if err == nil {
							adv.same.Add(1)
						}
						if err == nil || tolerable(err) {
							err = rcgo.SetParent(o, &o.Value.Up, rootObj)
							if err == nil {
								adv.parent.Add(1)
							}
						}
					} else {
						err = aerr
					}
				}
				if !tolerable(err) {
					errs <- fmt.Errorf("worker op: %w", err)
					return
				}
			}
		}(cfg.Seed + int64(w)*7919)
	}
	wg.Wait()
	close(samplerStop)
	samplerWG.Wait()
	res.Ops = cfg.Workers * cfg.Ops
	select {
	case err := <-errs:
		return res, err
	default:
	}

	// Quiesce: disarm, tear the shared tree down children-first with
	// bounded retry, heal any failpoint-lost drains, then judge.
	failpoint.DisableAll()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, mid := range midRegions {
		if err := mid.DeleteWithRetry(ctx, rcgo.Backoff{}); err != nil {
			return res, fmt.Errorf("quiesce: delete mid region %d: %w", mid.ID(), err)
		}
	}
	if err := root.DeleteWithRetry(ctx, rcgo.Backoff{}); err != nil {
		return res, fmt.Errorf("quiesce: delete root region: %w", err)
	}
	res.SweptAtQuiesce = a.SweepZombies()
	wd.Stop()

	res.WatchdogFlagged = wd.Flagged()
	res.WatchdogHealed = wd.Healed()
	res.TraceStats = ring.TraceStats()
	res.Audit = a.Audit()
	if !res.Audit.OK {
		return res, fmt.Errorf("quiesced audit failed:\n%s", res.Audit)
	}
	if got := a.LiveObjects(); got != 0 {
		return res, fmt.Errorf("quiesce: LiveObjects = %d, want 0", got)
	}
	if got := a.LiveRegions(); got != 1 {
		return res, fmt.Errorf("quiesce: LiveRegions = %d, want 1 (traditional)", got)
	}
	if got := a.DeferredRegions(); got != 0 {
		return res, fmt.Errorf("quiesce: DeferredRegions = %d, want 0", got)
	}
	var err error
	if res.AdvisorSites, res.AdvisorObservations, err = adv.judge(a); err != nil {
		return res, err
	}
	return res, nil
}

// RunAllocChurn runs the allocation-churn phase: workers drive tight
// TryAlloc loops through the fast path's chunk pools and batched
// counter deltas (region_alloccache.go) while the regions being
// allocated into are concurrently deleted out from under them — private
// regions replaced mid-loop, and a small set of shared regions that any
// worker may swap out and deferred-delete while the others still hold
// the old pointer. Failpoints (AllocChurnRules) refuse chunk refills
// and stretch the delete windows, so reclaim's delta drain races the
// increment-then-validate admission loop constantly.
//
// The judge is exactness, not survival: every worker counts its own
// successful TryAlloc calls, and at quiesce the arena's cumulative
// Allocs counter must equal that total — any batched delta lost (or
// double-counted) across a racing delete shows up as drift there, as a
// nonzero LiveObjects, or as an audit violation. The annotation advisor
// rides along under the same contract: each fresh object gets a
// sameregion self-link, often into a region mid-deletion, and the
// quiesced advisor table must count exactly the links that succeeded.
func RunAllocChurn(cfg ConcConfig) (ConcResult, error) {
	var res ConcResult
	a := rcgo.NewArena(rcgo.WithAdvisor())
	a.EnableMetrics()
	var adv advisorCounts

	const sharedN = 4
	var shared [sharedN]atomic.Pointer[rcgo.Region]
	for i := range shared {
		shared[i].Store(a.NewRegion())
	}

	for name, r := range cfg.Rules {
		if err := failpoint.Enable(name, r); err != nil {
			return res, err
		}
	}
	defer failpoint.DisableAll()

	var successes atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			private := a.NewRegion()
			defer func() {
				private.DeleteDeferred()
			}()
			for i := 0; i < cfg.Ops; i++ {
				target := private
				if rng.Intn(3) == 0 {
					target = shared[rng.Intn(sharedN)].Load()
				}
				if o, err := rcgo.TryAlloc[node](target); err == nil {
					successes.Add(1)
					// Sameregion self-link on the fresh object, racing the
					// region's deletion: the advisor must count exactly the
					// links that land.
					if serr := rcgo.SetSame(o, &o.Value.Same, o); serr == nil {
						adv.same.Add(1)
					} else if !tolerable(serr) {
						errs <- fmt.Errorf("alloc churn store: %w", serr)
						return
					}
				} else if !tolerable(err) {
					errs <- fmt.Errorf("alloc churn: %w", err)
					return
				}
				switch {
				case rng.Intn(61) == 0:
					// Replace the private region mid-loop: its parked deltas
					// must drain through the deferred-delete flush.
					private.DeleteDeferred()
					private = a.NewRegion()
				case rng.Intn(127) == 0:
					// Swap a shared region while other workers still allocate
					// into the old one — the alloc-vs-reclaim race proper.
					old := shared[rng.Intn(sharedN)].Swap(a.NewRegion())
					old.DeleteDeferred()
				case rng.Intn(89) == 0:
					// Lock-free read that folds the pending deltas in.
					_ = target.Objects()
				case rng.Intn(149) == 0:
					_ = target.Stats() // flush point under mu
				}
			}
		}(cfg.Seed + int64(w)*104729)
	}
	wg.Wait()
	res.Ops = cfg.Workers * cfg.Ops
	select {
	case err := <-errs:
		return res, err
	default:
	}

	// Quiesce: disarm, delete what the swaps left behind, then judge.
	failpoint.DisableAll()
	for i := range shared {
		shared[i].Load().DeleteDeferred()
	}
	res.SweptAtQuiesce = a.SweepZombies()
	res.Audit = a.Audit()
	counters := a.Counters()
	res.AllocSuccesses = successes.Load()
	res.AllocFlushes = counters.AllocFlushes
	if !res.Audit.OK {
		return res, fmt.Errorf("quiesced audit failed:\n%s", res.Audit)
	}
	if counters.Allocs != res.AllocSuccesses {
		return res, fmt.Errorf("alloc drift: arena counted %d allocs, workers observed %d successes",
			counters.Allocs, res.AllocSuccesses)
	}
	if got := a.LiveObjects(); got != 0 {
		return res, fmt.Errorf("quiesce: LiveObjects = %d, want 0", got)
	}
	if got := a.LiveRegions(); got != 1 {
		return res, fmt.Errorf("quiesce: LiveRegions = %d, want 1 (traditional)", got)
	}
	if got := a.DeferredRegions(); got != 0 {
		return res, fmt.Errorf("quiesce: DeferredRegions = %d, want 0", got)
	}
	var jerr error
	if res.AdvisorSites, res.AdvisorObservations, jerr = adv.judge(a); jerr != nil {
		return res, jerr
	}
	return res, nil
}

// RunFabric runs the multi-shard fabric phase: a WithShards(8) arena
// carrying hundreds of concurrently live regions spread across the
// fabric, with every worker churning its own ring of regions —
// allocation + SetSame bursts, cross-shard subregion trees, and both
// delete flavours replacing ring slots mid-run — while failpoints
// (FabricRules) inject admission failures and stretch every window
// where a shard's slice of the arena totals is mid-update.
//
// The judge is the fabric aggregation contract (ISSUE 6): at quiesce
// the fabric-wide audit must be clean (each shard's counters checked
// against exactly the regions whose ids encode that shard), the
// cumulative Allocs counter must equal the workers' own success count,
// and nothing may be left alive — any region accounted on the wrong
// shard, or any delta flushed to the wrong shard's liveObjs, surfaces
// as an audit violation or counter drift here.
func RunFabric(cfg ConcConfig) (ConcResult, error) {
	var res ConcResult
	a := rcgo.NewArena(rcgo.WithShards(8), rcgo.WithMetrics())

	// Each worker owns a ring of regions it continually replaces; the
	// rings together keep workers*ringSize regions live for the whole
	// phase (256 at the default chaos sizing of 8 workers).
	const ringSize = 32
	rings := make([][]*rcgo.Region, cfg.Workers)
	for w := range rings {
		rings[w] = make([]*rcgo.Region, ringSize)
		for i := range rings[w] {
			rings[w][i] = a.NewRegion()
		}
	}

	for name, r := range cfg.Rules {
		if err := failpoint.Enable(name, r); err != nil {
			return res, err
		}
	}
	defer failpoint.DisableAll()

	var successes atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(ring []*rcgo.Region, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < cfg.Ops; i++ {
				r := ring[rng.Intn(ringSize)]
				var err error
				switch rng.Intn(5) {
				case 0, 1: // alloc + same-region annotated store
					if o, aerr := rcgo.TryAlloc[node](r); aerr == nil {
						successes.Add(1)
						err = rcgo.SetSame(o, &o.Value.Same, o)
					} else {
						err = aerr
					}
				case 2: // cross-shard subregion churn under the live parent
					if sub, serr := r.TryNewSubregion(); serr == nil {
						if _, aerr := rcgo.TryAlloc[node](sub); aerr == nil {
							successes.Add(1)
						}
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						err = sub.DeleteWithRetry(ctx, rcgo.Backoff{Initial: 20 * time.Microsecond})
						cancel()
					} else {
						err = serr
					}
				case 3: // replace a ring slot through the explicit delete path
					j := rng.Intn(ringSize)
					old := ring[j]
					ring[j] = a.NewRegion()
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err = old.DeleteWithRetry(ctx, rcgo.Backoff{Initial: 20 * time.Microsecond})
					cancel()
				case 4: // replace a ring slot through the zombie path, pinned
					j := rng.Intn(ringSize)
					old := ring[j]
					ring[j] = a.NewRegion()
					if o, aerr := rcgo.TryAlloc[node](old); aerr == nil {
						successes.Add(1)
						if unpin, perr := rcgo.TryPin(o); perr == nil {
							old.DeleteDeferred()
							unpin() // last reference: the zombie drains
						} else {
							old.DeleteDeferred()
						}
					} else {
						old.DeleteDeferred()
					}
				}
				if !tolerable(err) {
					errs <- fmt.Errorf("fabric op: %w", err)
					return
				}
			}
		}(rings[w], cfg.Seed+int64(w)*31337)
	}
	wg.Wait()
	res.Ops = cfg.Workers * cfg.Ops
	select {
	case err := <-errs:
		return res, err
	default:
	}

	// Sample the fabric population while the rings are still live: the
	// audit below must have judged a genuinely multi-shard arena.
	res.LiveBeforeQuiesce = a.LiveRegions()
	populated := map[int]bool{}
	a.EachRegion(func(r *rcgo.Region) { populated[a.RegionShard(r.ID())] = true })
	res.ShardsPopulated = len(populated)

	// Quiesce: disarm, tear the rings down, heal lost drains, judge.
	failpoint.DisableAll()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, ring := range rings {
		for _, r := range ring {
			if err := r.DeleteWithRetry(ctx, rcgo.Backoff{}); err != nil {
				return res, fmt.Errorf("quiesce: delete ring region %d: %w", r.ID(), err)
			}
		}
	}
	res.SweptAtQuiesce = a.SweepZombies()
	res.Audit = a.Audit()
	counters := a.Counters()
	res.AllocSuccesses = successes.Load()
	res.AllocFlushes = counters.AllocFlushes
	if !res.Audit.OK {
		return res, fmt.Errorf("quiesced fabric audit failed:\n%s", res.Audit)
	}
	if counters.Allocs != res.AllocSuccesses {
		return res, fmt.Errorf("fabric alloc drift: arena counted %d allocs, workers observed %d successes",
			counters.Allocs, res.AllocSuccesses)
	}
	if got := a.LiveObjects(); got != 0 {
		return res, fmt.Errorf("quiesce: LiveObjects = %d, want 0", got)
	}
	if got := a.LiveRegions(); got != 1 {
		return res, fmt.Errorf("quiesce: LiveRegions = %d, want 1 (traditional)", got)
	}
	if got := a.DeferredRegions(); got != 0 {
		return res, fmt.Errorf("quiesce: DeferredRegions = %d, want 0", got)
	}
	return res, nil
}

// RunOwnership runs the ownership hand-off phase: workers form a ring,
// and every iteration each worker builds a region through the owned
// fast path — TryAcquire, TryAllocOwned bursts, SetSameOwned links,
// SetRefOwned counted references into a shared hub region — then hands
// the Owner token to its ring neighbour over a channel (the memory-
// model edge that publishes the token's plain owner-local state), and
// consumes the token it receives: more owned allocations, then either
// Owner.Delete or a Release followed by a shared Delete. The
// rcgo/own.release failpoint (OwnershipRules) injects transient
// failures into the flush window, so workers constantly retry
// release/delete on still-valid tokens; while they hold a token they
// also probe the shared paths — second TryAcquire, shared TryAlloc,
// TryPin, Delete, SetRef with an owned holder — all of which must fail
// fast with exactly ErrRegionOwned.
//
// The judge is the flush-at-release exactness contract: every worker
// counts its own successful owned allocations, and at quiesce the
// arena's cumulative Allocs counter must equal that total — any owner-
// local delta lost (or double-counted) across an injected release
// retry or a token hand-off shows up as drift there, as a nonzero
// LiveObjects, or as an audit violation. Ownership itself must balance:
// Acquires == Releases and OwnedRegions == 0 once every token is
// consumed.
func RunOwnership(cfg ConcConfig) (ConcResult, error) {
	var res ConcResult
	a := rcgo.NewArena()
	a.EnableMetrics()
	ring := rcgo.NewRingTracer(1 << 14)
	a.SetTracer(ring)

	var successes atomic.Int64
	hub := a.NewRegion()
	hubObj := rcgo.Alloc[node](hub)
	successes.Add(1)

	for name, r := range cfg.Rules {
		if err := failpoint.Enable(name, r); err != nil {
			return res, err
		}
	}
	defer failpoint.DisableAll()

	// Tokens travel around the ring: worker w sends to chans[(w+1)%W]
	// and receives from chans[w]. Every worker sends and receives
	// exactly cfg.Ops tokens (nil on a failed build), so the ring
	// drains completely — no token is in flight after wg.Wait.
	chans := make([]chan *rcgo.Owner, cfg.Workers)
	for i := range chans {
		chans[i] = make(chan *rcgo.Owner, 4)
	}
	errs := make(chan error, cfg.Workers*2)
	// On an unexpected error the worker must keep the ring protocol
	// alive (a returning worker would deadlock its neighbour's receive),
	// so it records the error and carries on; the first one fails the
	// phase after the workers drain.
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			next := chans[(w+1)%cfg.Workers]
			for i := 0; i < cfg.Ops; i++ {
				// Build side: fresh region, acquired immediately.
				r := a.NewRegion()
				own, err := r.TryAcquire()
				if err != nil {
					fail(fmt.Errorf("ownership acquire: %w", err))
					_ = r.Delete()
					next <- nil
					continue
				}
				var obj *rcgo.Obj[node]
				for n := 1 + rng.Intn(3); n > 0; n-- {
					o, aerr := rcgo.TryAllocOwned[node](own)
					if aerr == nil {
						successes.Add(1)
						obj = o
					} else if !errors.Is(aerr, rcgo.ErrInjected) {
						fail(fmt.Errorf("owned alloc: %w", aerr))
					}
				}
				if obj != nil {
					if serr := rcgo.SetSameOwned(own, obj, &obj.Value.Same, obj); serr != nil {
						fail(fmt.Errorf("owned sameregion store: %w", serr))
					}
					if serr := rcgo.SetRefOwned(own, obj, &obj.Value.Other, hubObj); serr != nil && !tolerable(serr) {
						fail(fmt.Errorf("owned counted store: %w", serr))
					}
					// The owned annotation check still fires: a sameregion
					// store of an external target is a check failure.
					if rng.Intn(4) == 0 {
						if serr := rcgo.SetSameOwned(own, obj, &obj.Value.Same, hubObj); !errors.Is(serr, rcgo.ErrBadRef) {
							fail(fmt.Errorf("owned bad sameregion store: got %v, want ErrBadRef", serr))
						}
					}
				}
				// Shared-path probes while the token is held: every one
				// must fail fast with exactly ErrRegionOwned.
				if rng.Intn(3) == 0 {
					if _, perr := r.TryAcquire(); !errors.Is(perr, rcgo.ErrRegionOwned) {
						fail(fmt.Errorf("second acquire: got %v, want ErrRegionOwned", perr))
					}
					// The armed alloc.refill site may inject before the
					// admission loop reads the owned state; both rejections
					// prove the shared path cannot allocate here.
					if _, perr := rcgo.TryAlloc[node](r); !errors.Is(perr, rcgo.ErrRegionOwned) &&
						!errors.Is(perr, rcgo.ErrInjected) {
						fail(fmt.Errorf("shared alloc on owned region: got %v, want ErrRegionOwned", perr))
					}
					if perr := r.Delete(); !errors.Is(perr, rcgo.ErrRegionOwned) {
						fail(fmt.Errorf("shared delete of owned region: got %v, want ErrRegionOwned", perr))
					}
					if obj != nil {
						if _, perr := rcgo.TryPin(obj); !errors.Is(perr, rcgo.ErrRegionOwned) {
							fail(fmt.Errorf("pin into owned region: got %v, want ErrRegionOwned", perr))
						}
						if perr := rcgo.SetRef(obj, &obj.Value.Other, hubObj); !errors.Is(perr, rcgo.ErrRegionOwned) {
							fail(fmt.Errorf("shared store with owned holder: got %v, want ErrRegionOwned", perr))
						}
					}
				}
				// Hand-off: the channel send publishes the token's plain
				// owner-local state to the neighbour.
				next <- own

				// Consume side: the token received from the other
				// neighbour, with more owned work before the delete.
				tok := <-chans[w]
				if tok == nil {
					continue
				}
				if _, aerr := rcgo.TryAllocOwned[node](tok); aerr == nil {
					successes.Add(1)
				} else if !errors.Is(aerr, rcgo.ErrInjected) {
					fail(fmt.Errorf("owned alloc after hand-off: %w", aerr))
				}
				if rng.Intn(3) == 0 {
					// Release back to the shared state (retrying injected
					// flush failures on the still-valid token), then the
					// ordinary shared delete.
					tr := tok.Region()
					for {
						rerr := tok.Release()
						if rerr == nil {
							break
						}
						if !errors.Is(rerr, rcgo.ErrInjected) {
							fail(fmt.Errorf("release: %w", rerr))
							break
						}
					}
					if derr := tr.Delete(); derr != nil && !tolerable(derr) {
						fail(fmt.Errorf("delete after release: %w", derr))
					}
				} else {
					// Owner.Delete consumes the token in one step; injected
					// flush failures leave it valid for the retry.
					for {
						derr := tok.Delete()
						if derr == nil {
							break
						}
						if !errors.Is(derr, rcgo.ErrInjected) {
							fail(fmt.Errorf("owned delete: %w", derr))
							break
						}
					}
				}
			}
		}(w, cfg.Seed+int64(w)*6151)
	}
	wg.Wait()
	res.Ops = cfg.Workers * cfg.Ops
	select {
	case err := <-errs:
		return res, err
	default:
	}

	// Quiesce: disarm, delete the hub (its inbound counted references
	// all died with their token regions), then judge.
	failpoint.DisableAll()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hub.DeleteWithRetry(ctx, rcgo.Backoff{}); err != nil {
		return res, fmt.Errorf("quiesce: delete hub region: %w", err)
	}
	res.SweptAtQuiesce = a.SweepZombies()
	res.TraceStats = ring.TraceStats()
	res.Audit = a.Audit()
	counters := a.Counters()
	res.AllocSuccesses = successes.Load()
	res.Acquires = counters.Acquires
	res.Releases = counters.Releases
	res.OwnerFlushes = counters.OwnerFlushes
	if !res.Audit.OK {
		return res, fmt.Errorf("quiesced ownership audit failed:\n%s", res.Audit)
	}
	if counters.Allocs != res.AllocSuccesses {
		return res, fmt.Errorf("ownership alloc drift: arena counted %d allocs, workers observed %d successes",
			counters.Allocs, res.AllocSuccesses)
	}
	if res.Acquires == 0 || res.Acquires != res.Releases {
		return res, fmt.Errorf("ownership imbalance: %d acquires vs %d releases", res.Acquires, res.Releases)
	}
	if got := a.OwnedRegions(); got != 0 {
		return res, fmt.Errorf("quiesce: OwnedRegions = %d, want 0", got)
	}
	if got := a.LiveObjects(); got != 0 {
		return res, fmt.Errorf("quiesce: LiveObjects = %d, want 0", got)
	}
	if got := a.LiveRegions(); got != 1 {
		return res, fmt.Errorf("quiesce: LiveRegions = %d, want 1 (traditional)", got)
	}
	if got := a.DeferredRegions(); got != 0 {
		return res, fmt.Errorf("quiesce: DeferredRegions = %d, want 0", got)
	}
	return res, nil
}

// RunContention runs the contention phase: a token storm against one
// hub region. Every worker loops AcquireContext on the hub under a
// random short deadline (or an asynchronously-cancelled context), so
// the FIFO wait queue stays deep; the rcgo/own.handoff failpoint
// refuses a quarter of all hand-off attempts (requeueing the refused
// waiter), rcgo/own.release injects transient release failures, and a
// small fraction of successful acquirers ABANDON their token — never
// release it — simulating a crashed goroutine, so the OwnerWatchdog's
// forced-release escape hatch must revoke the stale token to unwedge
// the queue.
//
// The judges are the acquisition-accounting contract: every minted
// token is eventually paired with exactly one release or one
// revocation (Acquires == Releases + Revocations), no waiter leaks (the
// arena-wide parked-waiter gauge is zero at quiesce and the audit's
// queue-integrity rules are clean), and the flush-at-release exactness
// story extends to revocation — workers count an owned allocation only
// once the token that made it released successfully (a revoked token's
// unflushed deltas are discarded by contract), and the arena's Allocs
// counter must match that committed tally exactly.
func RunContention(cfg ConcConfig) (ConcResult, error) {
	var res ConcResult
	a := rcgo.NewArena()
	a.EnableMetrics()
	ring := rcgo.NewRingTracer(1 << 14)
	wd := rcgo.NewOwnerWatchdog(a, 2*time.Millisecond, ring)
	wd.ForceReleaseAfter = 5 * time.Millisecond
	a.SetTracer(wd)
	wd.Start(time.Millisecond)
	defer wd.Stop()

	hub := a.NewRegion()

	for name, r := range cfg.Rules {
		if err := failpoint.Enable(name, r); err != nil {
			return res, err
		}
	}
	defer failpoint.DisableAll()

	// successes counts owned allocations committed by a successful
	// Release; a token that is abandoned or revoked drops its tally,
	// matching the runtime's discard-on-revoke contract.
	var successes atomic.Int64
	errs := make(chan error, cfg.Workers*2)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < cfg.Ops; i++ {
				// A third of the acquirers wait patiently (generous
				// deadline), the rest race tight deadlines or an async
				// cancel against the hand-off.
				var ctx context.Context
				var cancel context.CancelFunc
				switch rng.Intn(3) {
				case 0:
					ctx, cancel = context.WithTimeout(context.Background(), time.Second)
				case 1:
					ctx, cancel = context.WithTimeout(context.Background(),
						time.Duration(50+rng.Intn(2000))*time.Microsecond)
				default:
					// Async cancel racing the hand-off; firing after the
					// acquire completed (or after the loop's own cancel)
					// is harmless.
					ctx, cancel = context.WithCancel(context.Background())
					time.AfterFunc(time.Duration(50+rng.Intn(2000))*time.Microsecond, cancel)
				}
				own, err := hub.AcquireContext(ctx)
				if err != nil {
					cancel()
					// The only legitimate failure here is a context abort,
					// and its unwrap chain must expose both the context
					// error and ErrRegionOwned.
					if !errors.Is(err, rcgo.ErrRegionOwned) ||
						(!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)) {
						fail(fmt.Errorf("contended acquire: error %v must wrap the context error and ErrRegionOwned", err))
					}
					continue
				}
				pending := int64(0)
				var obj *rcgo.Obj[node]
				for n := 1 + rng.Intn(3); n > 0; n-- {
					o, aerr := rcgo.TryAllocOwned[node](own)
					switch {
					case aerr == nil:
						pending++
						obj = o
					case errors.Is(aerr, rcgo.ErrInjected):
					case errors.Is(aerr, rcgo.ErrOwnerRevoked):
						// The watchdog tore the token away mid-burst (the
						// worker was descheduled past the force threshold);
						// everything this token did is discarded.
					default:
						fail(fmt.Errorf("owned alloc under contention: %w", aerr))
					}
				}
				if obj != nil {
					if serr := rcgo.SetSameOwned(own, obj, &obj.Value.Same, obj); serr != nil &&
						!errors.Is(serr, rcgo.ErrOwnerRevoked) {
						fail(fmt.Errorf("owned sameregion store under contention: %w", serr))
					}
				}
				if rng.Intn(40) == 0 {
					// Abandon: walk away without releasing, exactly what a
					// crashed holder does. The watchdog must revoke this
					// token; its tally is forfeit.
					cancel()
					continue
				}
				for {
					rerr := own.Release()
					if rerr == nil {
						successes.Add(pending)
						break
					}
					if errors.Is(rerr, rcgo.ErrInjected) {
						continue
					}
					if errors.Is(rerr, rcgo.ErrOwnerRevoked) {
						break
					}
					fail(fmt.Errorf("release under contention: %w", rerr))
					break
				}
				cancel()
			}
		}(cfg.Seed + int64(w)*7919)
	}
	wg.Wait()
	res.Ops = cfg.Workers * cfg.Ops
	select {
	case err := <-errs:
		return res, err
	default:
	}

	// Quiesce: disarm, then wait out any still-abandoned token — the
	// watchdog has to revoke it before the hub can be deleted.
	failpoint.DisableAll()
	deadline := time.Now().Add(10 * time.Second)
	for a.OwnedRegions() != 0 {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("quiesce: abandoned token never revoked, OwnedRegions = %d", a.OwnedRegions())
		}
		wd.Check()
		time.Sleep(time.Millisecond)
	}
	wd.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hub.DeleteWithRetry(ctx, rcgo.Backoff{}); err != nil {
		return res, fmt.Errorf("quiesce: delete hub region: %w", err)
	}
	res.SweptAtQuiesce = a.SweepZombies()
	res.TraceStats = ring.TraceStats()
	res.Audit = a.Audit()
	res.WatchdogFlagged = wd.Flagged()
	counters := a.Counters()
	res.AllocSuccesses = successes.Load()
	res.Acquires = counters.Acquires
	res.Releases = counters.Releases
	res.OwnerFlushes = counters.OwnerFlushes
	res.Revocations = counters.OwnerRevocations
	res.AcquireWaits = counters.AcquireWaits
	res.AcquireTimeouts = counters.AcquireTimeouts
	res.AcquireCancels = counters.AcquireCancels
	if !res.Audit.OK {
		return res, fmt.Errorf("quiesced contention audit failed:\n%s", res.Audit)
	}
	if res.Acquires == 0 || res.Acquires != res.Releases+res.Revocations {
		return res, fmt.Errorf("acquisition imbalance: %d acquires vs %d releases + %d revocations",
			res.Acquires, res.Releases, res.Revocations)
	}
	if res.AcquireWaits == 0 {
		return res, fmt.Errorf("contention phase saw no contention: AcquireWaits = 0")
	}
	if got := a.AcquireWaiters(); got != 0 {
		return res, fmt.Errorf("quiesce: %d waiters leaked on the shard gauges", got)
	}
	if got := a.Owners().TotalWaiters; got != 0 {
		return res, fmt.Errorf("quiesce: owners report still sees %d waiters", got)
	}
	if counters.Allocs != res.AllocSuccesses {
		return res, fmt.Errorf("contention alloc drift: arena counted %d allocs, workers committed %d",
			counters.Allocs, res.AllocSuccesses)
	}
	if got := a.OwnedRegions(); got != 0 {
		return res, fmt.Errorf("quiesce: OwnedRegions = %d, want 0", got)
	}
	if got := a.LiveObjects(); got != 0 {
		return res, fmt.Errorf("quiesce: LiveObjects = %d, want 0", got)
	}
	if got := a.LiveRegions(); got != 1 {
		return res, fmt.Errorf("quiesce: LiveRegions = %d, want 1 (traditional)", got)
	}
	if got := a.DeferredRegions(); got != 0 {
		return res, fmt.Errorf("quiesce: DeferredRegions = %d, want 0", got)
	}
	return res, nil
}

// slabRec is the slab phase's payload: pointer-free, so the admission
// gate (rcgo.chunkSlabEligible) routes its chunks to the off-heap
// backing store. The fields carry a checksum pattern the workers verify
// while they legitimately hold the object — any cross-region page
// recycling bug shows up as a corrupted payload here before the
// accounting judges even run.
type slabRec struct {
	Seq, Tag int64
	Pad      [4]int64
}

// RunSlab runs the off-heap slab phase: a rcgo.WithOffHeapSlabs arena
// whose workers churn regions full of pointer-free payloads (slab-
// backed chunks) interleaved with pointer-carrying node payloads
// (GC-heap chunks — the admission gate must keep the two apart), while
// the rcgo/slab.map failpoint (SlabRules) injects map failures into the
// refill edge and yields stretch the delete windows so reclaim's
// immediate page return races the carve-and-track window. Workers write
// and verify payload checksums only while they own the region or hold a
// pin — the pointer-safety contract's sanctioned shapes (DESIGN.md
// §16); shared regions are swapped out and deferred-deleted under the
// other workers' feet, so pinned verification races page recycling
// constantly.
//
// The judges are the page-accounting contract at quiesce: zero in-use
// pages left in the store (every page carved for a region came back at
// its reclaim), SlabRefills == SlabReleases exactly, a clean audit
// (including the slab-pages-total and slab-store-accounting rules), the
// usual alloc-exactness check, and nothing left alive. Closing the
// store must be idempotent.
func RunSlab(cfg ConcConfig) (ConcResult, error) {
	var res ConcResult
	a := rcgo.NewArena(rcgo.WithOffHeapSlabs(), rcgo.WithMetrics())
	defer a.CloseBackingStore()
	ring := rcgo.NewRingTracer(1 << 14)
	a.SetTracer(ring)

	const sharedN = 4
	var shared [sharedN]atomic.Pointer[rcgo.Region]
	for i := range shared {
		shared[i].Store(a.NewRegion())
	}

	for name, r := range cfg.Rules {
		if err := failpoint.Enable(name, r); err != nil {
			return res, err
		}
	}
	defer failpoint.DisableAll()

	var successes atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(wid int, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < cfg.Ops; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					// Private region burst: this worker is the region's only
					// user, so plain Value writes are sanctioned until its own
					// delete below. The burst spans chunk boundaries, and the
					// checksum verifies the slab pages were not recycled early.
					r := a.NewRegion()
					burst := 8 + rng.Intn(24)
					objs := make([]*rcgo.Obj[slabRec], 0, burst)
					for n := 0; n < burst; n++ {
						o, err := rcgo.TryAlloc[slabRec](r)
						if err != nil {
							if !tolerable(err) {
								errs <- fmt.Errorf("slab private alloc: %w", err)
								return
							}
							continue
						}
						successes.Add(1)
						o.Value.Seq, o.Value.Tag = int64(len(objs)), int64(wid)
						objs = append(objs, o)
					}
					for n, o := range objs {
						if o.Value.Seq != int64(n) || o.Value.Tag != int64(wid) {
							errs <- fmt.Errorf("slab payload corrupted: seq=%d tag=%d, want seq=%d tag=%d",
								o.Value.Seq, o.Value.Tag, n, wid)
							return
						}
					}
					if rng.Intn(2) == 0 {
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						err := r.DeleteWithRetry(ctx, rcgo.Backoff{Initial: 20 * time.Microsecond})
						cancel()
						if !tolerable(err) {
							errs <- fmt.Errorf("slab private delete: %w", err)
							return
						}
					} else {
						r.DeleteDeferred()
					}
				case 2:
					// Shared-region alloc with pinned verification: the pin is
					// the sanctioned handle shape — it holds the region past
					// any concurrent swap-and-delete, so the payload write
					// cannot land in a recycled page.
					target := shared[rng.Intn(sharedN)].Load()
					o, err := rcgo.TryAlloc[slabRec](target)
					if err != nil {
						if !tolerable(err) {
							errs <- fmt.Errorf("slab shared alloc: %w", err)
							return
						}
						break
					}
					successes.Add(1)
					if unpin, perr := rcgo.TryPin(o); perr == nil {
						o.Value.Seq, o.Value.Tag = int64(i), int64(wid)
						if o.Value.Tag != int64(wid) {
							errs <- fmt.Errorf("slab pinned payload corrupted: tag=%d want %d", o.Value.Tag, wid)
							unpin()
							return
						}
						unpin()
					} else if !tolerable(perr) {
						errs <- fmt.Errorf("slab pin: %w", perr)
						return
					}
				case 3:
					// Pointer-carrying payloads ride the ordinary GC-heap
					// chunk path through the same regions: the admission gate
					// must keep them off the slab pages without disturbing the
					// accounting.
					target := shared[rng.Intn(sharedN)].Load()
					if _, err := rcgo.TryAlloc[node](target); err == nil {
						successes.Add(1)
					} else if !tolerable(err) {
						errs <- fmt.Errorf("slab heap alloc: %w", err)
						return
					}
				}
				if rng.Intn(97) == 0 {
					// Swap a shared region while other workers still allocate
					// into the old one — reclaim's page return racing carves.
					old := shared[rng.Intn(sharedN)].Swap(a.NewRegion())
					old.DeleteDeferred()
				}
			}
		}(w, cfg.Seed+int64(w)*12289)
	}
	wg.Wait()
	res.Ops = cfg.Workers * cfg.Ops
	select {
	case err := <-errs:
		return res, err
	default:
	}

	// Quiesce: disarm, delete what the swaps left behind, then judge the
	// page accounting.
	failpoint.DisableAll()
	for i := range shared {
		shared[i].Load().DeleteDeferred()
	}
	res.SweptAtQuiesce = a.SweepZombies()
	res.TraceStats = ring.TraceStats()
	res.Audit = a.Audit()
	counters := a.Counters()
	res.AllocSuccesses = successes.Load()
	res.AllocFlushes = counters.AllocFlushes
	res.SlabRefills = counters.SlabRefills
	res.SlabReleases = counters.SlabReleases
	ss, attached := a.SlabStats()
	if !attached {
		return res, fmt.Errorf("slab phase: no backing store attached")
	}
	res.SlabPagesLeaked = ss.InUsePages
	if !res.Audit.OK {
		return res, fmt.Errorf("quiesced slab audit failed:\n%s", res.Audit)
	}
	if res.SlabPagesLeaked != 0 {
		return res, fmt.Errorf("slab pages leaked at quiesce: %d in use (refills=%d releases=%d)",
			res.SlabPagesLeaked, res.SlabRefills, res.SlabReleases)
	}
	if res.SlabRefills == 0 {
		return res, fmt.Errorf("slab phase inert: no chunk was ever slab-backed")
	}
	if res.SlabRefills != res.SlabReleases {
		return res, fmt.Errorf("slab page drift: %d refills vs %d releases", res.SlabRefills, res.SlabReleases)
	}
	if counters.Allocs != res.AllocSuccesses {
		return res, fmt.Errorf("slab alloc drift: arena counted %d allocs, workers observed %d successes",
			counters.Allocs, res.AllocSuccesses)
	}
	if got := a.LiveObjects(); got != 0 {
		return res, fmt.Errorf("quiesce: LiveObjects = %d, want 0", got)
	}
	if got := a.LiveRegions(); got != 1 {
		return res, fmt.Errorf("quiesce: LiveRegions = %d, want 1 (traditional)", got)
	}
	if got := a.DeferredRegions(); got != 0 {
		return res, fmt.Errorf("quiesce: DeferredRegions = %d, want 0", got)
	}
	if err := a.CloseBackingStore(); err != nil {
		return res, fmt.Errorf("quiesce: close backing store: %w", err)
	}
	if err := a.CloseBackingStore(); err != nil {
		return res, fmt.Errorf("quiesce: second close not idempotent: %w", err)
	}
	return res, nil
}

// Config sizes a full chaos run: one sequential model-checked phase,
// then a perturbation-mix and an error-mix concurrent phase, then the
// allocation-churn phase, then the multi-shard fabric phase, then the
// ownership hand-off phase, then the contention phase, then the
// off-heap slab phase.
type Config struct {
	Seed    int64
	SeqOps  int
	Workers int
	// ConcOps is the per-worker op count of each concurrent phase.
	ConcOps int
	// Log receives progress lines (nil discards them).
	Log func(format string, args ...any)
}

// Report is the outcome of a full chaos run.
type Report struct {
	SeqOps      int
	SeqOutcomes map[string]int
	Perturb     ConcResult
	Errors      ConcResult
	AllocChurn  ConcResult
	Fabric      ConcResult
	Ownership   ConcResult
	Contention  ConcResult
	Slab        ConcResult
	// Coverage is the post-run failpoint counter snapshot; every
	// instrumented site must show Fires > 0 for the run to count.
	Coverage []failpoint.Stats
}

// Uncovered returns the names of instrumented sites that never fired.
func (r *Report) Uncovered() []string {
	var out []string
	for _, st := range r.Coverage {
		if st.Fires == 0 {
			out = append(out, st.Name)
		}
	}
	return out
}

// Run executes a full chaos run. A nil error means: zero reference-
// model divergences, zero audit violations at every quiesce point, and
// failpoints fired on every instrumented site.
func Run(cfg Config) (*Report, error) {
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{SeqOps: cfg.SeqOps}

	logf("phase 1: sequential, %d ops against the reference model, error failpoints armed", cfg.SeqOps)
	h := NewHarness()
	ops := RandomOps(cfg.Seed, cfg.SeqOps)
	if err := RunSeq(h, ops, SeqRules(uint64(cfg.Seed)), 100); err != nil {
		return rep, fmt.Errorf("sequential phase: %w", err)
	}
	rep.SeqOutcomes = h.Outcomes()
	logf("phase 1: ok, outcomes %v", rep.SeqOutcomes)

	logf("phase 2: concurrent, %d workers x %d ops, perturbation failpoints (yield/delay)", cfg.Workers, cfg.ConcOps)
	res, err := RunConc(ConcConfig{
		Seed: cfg.Seed + 1, Workers: cfg.Workers, Ops: cfg.ConcOps,
		Rules: ConcRules(uint64(cfg.Seed)+1, true),
	})
	rep.Perturb = res
	if err != nil {
		return rep, fmt.Errorf("concurrent perturbation phase: %w", err)
	}
	logf("phase 2: ok, %d ops, watchdog flagged=%d healed=%d, swept=%d, trace total=%d dropped=%d, advisor %d stores over %d sites, zero drift",
		res.Ops, res.WatchdogFlagged, res.WatchdogHealed, res.SweptAtQuiesce,
		res.TraceStats.Total, res.TraceStats.Dropped, res.AdvisorObservations, res.AdvisorSites)

	logf("phase 3: concurrent, %d workers x %d ops, error failpoints on every site", cfg.Workers, cfg.ConcOps)
	res, err = RunConc(ConcConfig{
		Seed: cfg.Seed + 2, Workers: cfg.Workers, Ops: cfg.ConcOps,
		Rules: ConcRules(uint64(cfg.Seed)+2, false),
	})
	rep.Errors = res
	if err != nil {
		return rep, fmt.Errorf("concurrent error-injection phase: %w", err)
	}
	logf("phase 3: ok, %d ops, watchdog flagged=%d healed=%d, swept=%d, trace total=%d dropped=%d, advisor %d stores over %d sites, zero drift",
		res.Ops, res.WatchdogFlagged, res.WatchdogHealed, res.SweptAtQuiesce,
		res.TraceStats.Total, res.TraceStats.Dropped, res.AdvisorObservations, res.AdvisorSites)

	logf("phase 4: alloc churn, %d workers x %d ops, refused refills + stretched delete windows", cfg.Workers, cfg.ConcOps)
	res, err = RunAllocChurn(ConcConfig{
		Seed: cfg.Seed + 3, Workers: cfg.Workers, Ops: cfg.ConcOps,
		Rules: AllocChurnRules(uint64(cfg.Seed) + 3),
	})
	rep.AllocChurn = res
	if err != nil {
		return rep, fmt.Errorf("alloc-churn phase: %w", err)
	}
	logf("phase 4: ok, %d ops, %d allocs over %d delta flushes, advisor %d stores over %d sites, zero drift",
		res.Ops, res.AllocSuccesses, res.AllocFlushes, res.AdvisorObservations, res.AdvisorSites)

	logf("phase 5: multi-shard fabric, %d workers x %d ops across 8 shards", cfg.Workers, cfg.ConcOps)
	res, err = RunFabric(ConcConfig{
		Seed: cfg.Seed + 4, Workers: cfg.Workers, Ops: cfg.ConcOps,
		Rules: FabricRules(uint64(cfg.Seed) + 4),
	})
	rep.Fabric = res
	if err != nil {
		return rep, fmt.Errorf("fabric phase: %w", err)
	}
	logf("phase 5: ok, %d ops, %d regions live on %d shards at quiesce entry, %d allocs, zero drift",
		res.Ops, res.LiveBeforeQuiesce, res.ShardsPopulated, res.AllocSuccesses)

	logf("phase 6: ownership hand-off, %d workers x %d ops around the token ring, injected release failures", cfg.Workers, cfg.ConcOps)
	res, err = RunOwnership(ConcConfig{
		Seed: cfg.Seed + 5, Workers: cfg.Workers, Ops: cfg.ConcOps,
		Rules: OwnershipRules(uint64(cfg.Seed) + 5),
	})
	rep.Ownership = res
	if err != nil {
		return rep, fmt.Errorf("ownership phase: %w", err)
	}
	logf("phase 6: ok, %d ops, %d allocs through the owned path, acquires=%d releases=%d flushes=%d, zero drift",
		res.Ops, res.AllocSuccesses, res.Acquires, res.Releases, res.OwnerFlushes)

	logf("phase 7: contention, %d workers x %d ops storming one hub, refused hand-offs + abandoned tokens", cfg.Workers, cfg.ConcOps)
	res, err = RunContention(ConcConfig{
		Seed: cfg.Seed + 6, Workers: cfg.Workers, Ops: cfg.ConcOps,
		Rules: ContentionRules(uint64(cfg.Seed) + 6),
	})
	rep.Contention = res
	if err != nil {
		return rep, fmt.Errorf("contention phase: %w", err)
	}
	logf("phase 7: ok, %d ops, %d waits (%d timeouts, %d cancels), acquires=%d releases=%d revocations=%d, zero leaked waiters",
		res.Ops, res.AcquireWaits, res.AcquireTimeouts, res.AcquireCancels,
		res.Acquires, res.Releases, res.Revocations)

	logf("phase 8: off-heap slabs, %d workers x %d ops, injected map failures + swapped shared regions", cfg.Workers, cfg.ConcOps)
	res, err = RunSlab(ConcConfig{
		Seed: cfg.Seed + 7, Workers: cfg.Workers, Ops: cfg.ConcOps,
		Rules: SlabRules(uint64(cfg.Seed) + 7),
	})
	rep.Slab = res
	if err != nil {
		return rep, fmt.Errorf("slab phase: %w", err)
	}
	logf("phase 8: ok, %d ops, %d slab refills all released, zero leaked pages, zero drift",
		res.Ops, res.SlabRefills)

	rep.Coverage = siteCoverage()
	if un := rep.Uncovered(); len(un) > 0 {
		return rep, fmt.Errorf("failpoint sites never fired: %v", un)
	}
	return rep, nil
}

// PhaseNames lists the chaos phases in run order, by the names RunPhase
// accepts.
func PhaseNames() []string {
	return []string{"seq", "perturb", "errors", "alloc-churn", "fabric", "ownership", "contention", "slab"}
}

// RunPhase executes a single named phase with the same seed offset and
// failpoint rules it gets inside a full Run, so a failure reproduced by
// `rcchaos -phase X` is the same failure the full run would hit. The
// coverage gate is skipped: one phase cannot fire every site.
func RunPhase(name string, cfg Config) (*Report, error) {
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{}

	if name == "seq" {
		rep.SeqOps = cfg.SeqOps
		logf("phase seq: %d ops against the reference model, error failpoints armed", cfg.SeqOps)
		h := NewHarness()
		if err := RunSeq(h, RandomOps(cfg.Seed, cfg.SeqOps), SeqRules(uint64(cfg.Seed)), 100); err != nil {
			return rep, fmt.Errorf("sequential phase: %w", err)
		}
		rep.SeqOutcomes = h.Outcomes()
		logf("phase seq: ok, outcomes %v", rep.SeqOutcomes)
		return rep, nil
	}

	// The concurrent phases share a config shape; the table mirrors the
	// seed-offset and rule choices of Run exactly.
	type phase struct {
		offset int64
		rules  func(seed uint64) map[string]failpoint.Rule
		run    func(ConcConfig) (ConcResult, error)
		dst    *ConcResult
	}
	phases := map[string]phase{
		"perturb":     {1, func(s uint64) map[string]failpoint.Rule { return ConcRules(s, true) }, RunConc, &rep.Perturb},
		"errors":      {2, func(s uint64) map[string]failpoint.Rule { return ConcRules(s, false) }, RunConc, &rep.Errors},
		"alloc-churn": {3, AllocChurnRules, RunAllocChurn, &rep.AllocChurn},
		"fabric":      {4, FabricRules, RunFabric, &rep.Fabric},
		"ownership":   {5, OwnershipRules, RunOwnership, &rep.Ownership},
		"contention":  {6, ContentionRules, RunContention, &rep.Contention},
		"slab":        {7, SlabRules, RunSlab, &rep.Slab},
	}
	p, ok := phases[name]
	if !ok {
		return rep, fmt.Errorf("unknown phase %q (have %v)", name, PhaseNames())
	}
	seed := cfg.Seed + p.offset
	logf("phase %s: %d workers x %d ops, seed %d", name, cfg.Workers, cfg.ConcOps, seed)
	res, err := p.run(ConcConfig{
		Seed: seed, Workers: cfg.Workers, Ops: cfg.ConcOps,
		Rules: p.rules(uint64(seed)),
	})
	*p.dst = res
	if err != nil {
		return rep, fmt.Errorf("%s phase: %w", name, err)
	}
	logf("phase %s: ok, %d ops", name, res.Ops)
	return rep, nil
}

// siteCoverage returns the counter snapshot of the rcgo/* sites only
// (other packages may register sites of their own).
func siteCoverage() []failpoint.Stats {
	var out []failpoint.Stats
	for _, st := range failpoint.Snapshot() {
		if len(st.Name) >= 5 && st.Name[:5] == "rcgo/" {
			out = append(out, st)
		}
	}
	return out
}
