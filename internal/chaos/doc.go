// Package chaos is the randomized robustness harness for the
// concurrent region runtime: seeded workloads driven against the real
// Arena with failpoints (internal/failpoint) armed on every
// instrumented lifecycle edge, and Arena.Audit required clean at every
// quiesce point.
//
// A full run (Run) is four phases, each with a derived seed so a
// single top-level seed reproduces everything:
//
//  1. Sequential, model-checked: a single goroutine performs random
//     lifecycle operations while every outcome — success or specific
//     error — is checked op-by-op against a pure reference model of
//     the delete state machine (model.go). Failpoints here are
//     restricted to rules whose evaluation streams are deterministic
//     for a fixed seed, so two runs with the same seed must produce
//     identical traces (TestSequentialDeterminism).
//  2. Concurrent perturbation: workers race allocations, stores,
//     pins and deletes while yield/delay rules widen the runtime's
//     race windows. No errors are injected; the phase must quiesce
//     with an exact audit.
//  3. Concurrent error injection: the same workload with error rules
//     armed, checking that injected failures surface as wrapped
//     ErrInjected returns and never corrupt counters or leak regions.
//  4. Allocation churn: workers hammer TryAlloc through the
//     allocation fast path (region_alloccache.go) against region
//     recycling, with the rcgo/alloc.refill site armed for both
//     errors and yields; at quiesce, worker-counted successes must
//     equal the arena's metrics exactly and the audit must be clean —
//     the end-to-end proof that batched counter deltas never drift.
//
// Coverage is part of the gate: a run fails if any rcgo/* failpoint
// site never fired. cmd/rcchaos is the command-line front end;
// chaos_test.go and the FuzzDeleteStateMachine target run the same
// engine in-process.
package chaos
