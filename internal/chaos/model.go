package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"rcgo"
	"rcgo/internal/failpoint"
)

// node is the object type every chaos workload allocates: one counted
// slot, one sameregion slot and one parentptr slot, so every store
// flavour has a place to land.
type node struct {
	Other rcgo.Ref[node]
	Same  rcgo.Ref[node]
	Up    rcgo.Ref[node]
}

// OpKind enumerates the operations the harness can apply. Each op maps
// to exactly one public runtime call plus its reference-model shadow.
type OpKind int

const (
	OpNewRegion OpKind = iota
	OpNewSubregion
	OpAlloc
	OpPin
	OpUnpin
	OpSetRef
	OpClearRef
	OpSetSame
	OpDelete
	OpDeleteDeferred
	OpAcquire
	OpRelease
	OpOwnedAlloc
	OpOwnedSetRef
	OpOwnedStore
	OpOwnedDelete
	numOpKinds
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpNewRegion:
		return "new-region"
	case OpNewSubregion:
		return "new-subregion"
	case OpAlloc:
		return "alloc"
	case OpPin:
		return "pin"
	case OpUnpin:
		return "unpin"
	case OpSetRef:
		return "set-ref"
	case OpClearRef:
		return "clear-ref"
	case OpSetSame:
		return "set-same"
	case OpDelete:
		return "delete"
	case OpDeleteDeferred:
		return "delete-deferred"
	case OpAcquire:
		return "acquire"
	case OpRelease:
		return "release"
	case OpOwnedAlloc:
		return "owned-alloc"
	case OpOwnedSetRef:
		return "owned-set-ref"
	case OpOwnedStore:
		return "owned-store"
	case OpOwnedDelete:
		return "owned-delete"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation: a kind and two operand selectors, interpreted
// modulo the current population (region index, object index, pin index
// — whichever the kind needs).
type Op struct {
	Kind OpKind
	A, B int
}

func (op Op) String() string { return fmt.Sprintf("%s(%d,%d)", op.Kind, op.A, op.B) }

// DecodeOps turns a fuzzer byte string into an op sequence: three bytes
// per op (kind, A, B). Any input decodes to a valid sequence.
func DecodeOps(data []byte) []Op {
	ops := make([]Op, 0, len(data)/3)
	for i := 0; i+2 < len(data); i += 3 {
		ops = append(ops, Op{
			Kind: OpKind(int(data[i]) % int(numOpKinds)),
			A:    int(data[i+1]),
			B:    int(data[i+2]),
		})
	}
	return ops
}

// outcome is the error class of one operation — the granularity at
// which the runtime and the reference model must agree.
type outcome int

const (
	outOK outcome = iota
	outInUse
	outDeleted
	outBadRef
	outInjected
	outOwned
)

func (o outcome) String() string {
	switch o {
	case outOK:
		return "ok"
	case outInUse:
		return "in-use"
	case outDeleted:
		return "deleted"
	case outBadRef:
		return "bad-ref"
	case outInjected:
		return "injected"
	case outOwned:
		return "owned"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// classify maps a runtime error to its outcome class. Injected is
// checked first: a failpoint can fire before the operation reaches the
// check the model predicts, so an injected error always means "the
// operation did not happen", whatever the model expected.
func classify(err error) (outcome, error) {
	switch {
	case err == nil:
		return outOK, nil
	case errors.Is(err, rcgo.ErrInjected):
		return outInjected, nil
	case errors.Is(err, rcgo.ErrRegionInUse):
		return outInUse, nil
	case errors.Is(err, rcgo.ErrRegionDeleted):
		return outDeleted, nil
	case errors.Is(err, rcgo.ErrBadRef):
		return outBadRef, nil
	case errors.Is(err, rcgo.ErrRegionOwned):
		return outOwned, nil
	}
	return 0, fmt.Errorf("unclassifiable error: %w", err)
}

// mState is the reference model's region state.
type mState int

const (
	mAlive mState = iota
	mZombie
	mDead
	mOwned
)

// mRegion shadows one runtime region.
type mRegion struct {
	real     *rcgo.Region
	parent   *mRegion
	state    mState
	rc       int64 // pins + external counted slots pointing here
	pins     int64
	children int64
	objs     int64 // flushed objects; an owned region's token-local allocs are ownerObjs

	// owner is the live Owner token while state == mOwned; ownerObjs
	// counts its unflushed owned allocations, merged into objs at
	// Release exactly as the runtime flushes (verify compares objs
	// against the runtime's flushed count, so this split checks the
	// flush-at-release exactness contract op by op).
	owner     *rcgo.Owner
	ownerObjs int64
}

// mObj shadows one runtime object: where it lives and what its counted
// slot currently references.
type mObj struct {
	real   *rcgo.Obj[node]
	region *mRegion
	other  *mObj // counted-slot target, nil when the slot is null
}

// mPin is one outstanding pin.
type mPin struct {
	unpin  func()
	region *mRegion
}

// Harness drives one arena and its reference model through an op
// sequence, checking after every op that the two agree on every
// region's state and counters. It is strictly sequential; the
// concurrent phase (concurrent.go) uses invariant checks instead of a
// model.
type Harness struct {
	arena   *rcgo.Arena
	regions []*mRegion // every region ever created, dead ones included
	objs    []*mObj    // every object ever allocated
	pins    []mPin     // outstanding pins only

	// maxRegions/maxObjs bound the population so long op sequences churn
	// instead of growing without bound.
	maxRegions, maxObjs int

	// sweepEachOp force-drains after every op so a zombie.drain
	// failpoint skip cannot make the runtime lag the (eagerly draining)
	// model. Set whenever failpoints are armed.
	sweepEachOp bool

	applied int
	counts  map[outcome]int
	trace   []string // ring of recent ops, for divergence reports
}

// NewHarness creates a harness over a fresh arena.
func NewHarness() *Harness {
	return &Harness{
		arena:      rcgo.NewArena(),
		maxRegions: 96,
		maxObjs:    2048,
		counts:     make(map[outcome]int),
	}
}

// Arena exposes the arena under test (for final end-state checks).
func (h *Harness) Arena() *rcgo.Arena { return h.arena }

// Applied returns the number of ops applied (skips excluded).
func (h *Harness) Applied() int { return h.applied }

// Outcomes returns the per-outcome op counts, keyed by outcome name.
func (h *Harness) Outcomes() map[string]int {
	out := make(map[string]int, len(h.counts))
	for o, n := range h.counts {
		out[o.String()] = n
	}
	return out
}

func (h *Harness) note(format string, args ...any) {
	if len(h.trace) >= 20 {
		h.trace = h.trace[1:]
	}
	h.trace = append(h.trace, fmt.Sprintf(format, args...))
}

func (h *Harness) divergence(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("divergence at op %d: %s\nrecent ops:\n  %s",
		h.applied, msg, joinLines(h.trace))
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

func pick[T any](list []T, idx int) T { return list[idx%len(list)] }

// aliveRegions returns the model regions currently alive, including the
// exclusively owned (an owned region is alive — the population caps
// cover it too).
func (h *Harness) aliveRegions() []*mRegion {
	var out []*mRegion
	for _, r := range h.regions {
		if r.state == mAlive || r.state == mOwned {
			out = append(out, r)
		}
	}
	return out
}

// ownedRegions returns the model regions currently held through a token.
func (h *Harness) ownedRegions() []*mRegion {
	var out []*mRegion
	for _, r := range h.regions {
		if r.state == mOwned {
			out = append(out, r)
		}
	}
	return out
}

// objsIn returns the model objects living in r.
func (h *Harness) objsIn(r *mRegion) []*mObj {
	var out []*mObj
	for _, o := range h.objs {
		if o.region == r {
			out = append(out, o)
		}
	}
	return out
}

// Step applies one op to both the runtime and the model, then verifies
// they agree. It returns a divergence error, or nil.
func (h *Harness) Step(op Op) error {
	if err := h.apply(op); err != nil {
		return err
	}
	h.applied++
	if h.sweepEachOp {
		// Heal failpoint-skipped drains so the runtime catches up with
		// the eagerly-draining model before the comparison.
		h.arena.SweepZombies()
	}
	return h.verify()
}

// expect compares a real outcome against the model's prediction; the
// model transition fn runs only when both agree the op succeeded.
func (h *Harness) expect(op Op, err error, predicted outcome, transition func()) error {
	got, cerr := classify(err)
	if cerr != nil {
		return h.divergence("%s: %v", op, cerr)
	}
	h.counts[got]++
	h.note("%s -> %s", op, got)
	if got == outInjected {
		// The failpoint unwound the op before it took effect: the model
		// applies nothing, whatever it predicted.
		return nil
	}
	if got != predicted {
		return h.divergence("%s: runtime %s (%v), model predicted %s", op, got, err, predicted)
	}
	if got == outOK && transition != nil {
		transition()
	}
	return nil
}

func (h *Harness) apply(op Op) error {
	switch op.Kind {
	case OpNewRegion:
		if len(h.aliveRegions()) >= h.maxRegions {
			h.note("%s -> skipped (region cap)", op)
			return nil
		}
		r := h.arena.NewRegion()
		h.regions = append(h.regions, &mRegion{real: r, state: mAlive})
		h.counts[outOK]++
		h.note("%s -> ok (region %d)", op, r.ID())
		return nil

	case OpNewSubregion:
		if len(h.regions) == 0 {
			return nil
		}
		if len(h.aliveRegions()) >= h.maxRegions {
			h.note("%s -> skipped (region cap)", op)
			return nil
		}
		parent := pick(h.regions, op.A)
		sub, err := parent.real.TryNewSubregion()
		predicted := outOK
		switch {
		case parent.state == mOwned:
			predicted = outOwned
		case parent.state != mAlive:
			predicted = outDeleted
		}
		return h.expect(op, err, predicted, func() {
			parent.children++
			h.regions = append(h.regions, &mRegion{real: sub, parent: parent, state: mAlive})
		})

	case OpAlloc:
		if len(h.regions) == 0 {
			return nil
		}
		if len(h.objs) >= h.maxObjs {
			h.note("%s -> skipped (object cap)", op)
			return nil
		}
		r := pick(h.regions, op.A)
		o, err := rcgo.TryAlloc[node](r.real)
		predicted := outOK
		switch {
		case r.state == mOwned:
			predicted = outOwned
		case r.state != mAlive:
			predicted = outDeleted
		}
		return h.expect(op, err, predicted, func() {
			r.objs++
			h.objs = append(h.objs, &mObj{real: o, region: r})
		})

	case OpPin:
		if len(h.objs) == 0 {
			return nil
		}
		o := pick(h.objs, op.A)
		unpin, err := rcgo.TryPin(o.real)
		predicted := outOK
		switch {
		case o.region.state == mOwned:
			predicted = outOwned
		case o.region.state != mAlive:
			predicted = outDeleted
		}
		return h.expect(op, err, predicted, func() {
			o.region.rc++
			o.region.pins++
			h.pins = append(h.pins, mPin{unpin: unpin, region: o.region})
		})

	case OpUnpin:
		if len(h.pins) == 0 {
			return nil
		}
		i := op.A % len(h.pins)
		p := h.pins[i]
		h.pins = append(h.pins[:i], h.pins[i+1:]...)
		p.unpin()
		p.region.rc--
		p.region.pins--
		h.mMaybeDrain(p.region)
		h.counts[outOK]++
		h.note("%s -> ok (region %d)", op, p.region.real.ID())
		return nil

	case OpSetRef, OpClearRef:
		if len(h.objs) == 0 {
			return nil
		}
		holder := pick(h.objs, op.A)
		var target *mObj
		if op.Kind == OpSetRef {
			target = pick(h.objs, op.B)
		}
		var treal *rcgo.Obj[node]
		if target != nil {
			treal = target.real
		}
		err := rcgo.SetRef(holder.real, &holder.real.Value.Other, treal)
		external := target != nil && target.region != holder.region
		// Prediction order mirrors the runtime: the external target's
		// incRC decides first (owned beats deleted there too), then the
		// holder's state check under the shard lock.
		predicted := outOK
		switch {
		case external && target.region.state == mOwned:
			predicted = outOwned
		case external && target.region.state != mAlive:
			predicted = outDeleted
		case holder.region.state == mOwned:
			predicted = outOwned
		case holder.region.state != mAlive && !(holder.region.state == mZombie && target == nil):
			predicted = outDeleted
		}
		return h.expect(op, err, predicted, func() {
			old := holder.other
			holder.other = target
			if external {
				target.region.rc++
			}
			if old != nil && old.region != holder.region {
				old.region.rc--
				h.mMaybeDrain(old.region)
			}
		})

	case OpSetSame:
		if len(h.objs) == 0 {
			return nil
		}
		holder := pick(h.objs, op.A)
		target := pick(h.objs, op.B)
		err := rcgo.SetSame(holder.real, &holder.real.Value.Same, target.real)
		predicted := outOK
		switch {
		case target.region != holder.region:
			predicted = outBadRef
		case holder.region.state == mOwned:
			predicted = outOwned
		case holder.region.state != mAlive:
			predicted = outDeleted
		}
		// The sameregion slot is never counted: no model transition.
		return h.expect(op, err, predicted, nil)

	case OpDelete:
		if len(h.regions) == 0 {
			return nil
		}
		r := pick(h.regions, op.A)
		err := r.real.Delete()
		predicted := outOK
		switch {
		case r.state == mOwned:
			predicted = outOwned
		case r.state != mAlive:
			predicted = outDeleted
		case r.children > 0 || r.rc > 0:
			predicted = outInUse
		}
		return h.expect(op, err, predicted, func() { h.mReclaim(r) })

	case OpDeleteDeferred:
		if len(h.regions) == 0 {
			return nil
		}
		r := pick(h.regions, op.A)
		r.real.DeleteDeferred()
		h.counts[outOK]++
		h.note("%s -> ok (region %d)", op, r.real.ID())
		if r.state != mAlive {
			return nil
		}
		if r.rc == 0 && r.children == 0 {
			h.mReclaim(r)
		} else {
			r.state = mZombie
		}
		return nil

	case OpAcquire:
		if len(h.regions) == 0 {
			return nil
		}
		r := pick(h.regions, op.A)
		own, err := r.real.TryAcquire()
		predicted := outOK
		switch {
		case r.state == mOwned:
			predicted = outOwned
		case r.state != mAlive:
			predicted = outDeleted
		}
		return h.expect(op, err, predicted, func() {
			r.state = mOwned
			r.owner = own
		})

	case OpRelease:
		owned := h.ownedRegions()
		if len(owned) == 0 {
			return nil
		}
		r := pick(owned, op.A)
		err := r.owner.Release()
		// An injected own.release error leaves the region owned and the
		// token valid (nothing flushed); expect applies no transition on
		// outInjected, so model and runtime stay in step.
		return h.expect(op, err, outOK, func() {
			r.objs += r.ownerObjs
			r.ownerObjs = 0
			r.state = mAlive
			r.owner = nil
		})

	case OpOwnedAlloc:
		owned := h.ownedRegions()
		if len(owned) == 0 {
			return nil
		}
		if len(h.objs) >= h.maxObjs {
			h.note("%s -> skipped (object cap)", op)
			return nil
		}
		r := pick(owned, op.A)
		o, err := rcgo.TryAllocOwned[node](r.owner)
		return h.expect(op, err, outOK, func() {
			r.ownerObjs++
			h.objs = append(h.objs, &mObj{real: o, region: r})
		})

	case OpOwnedSetRef:
		owned := h.ownedRegions()
		if len(owned) == 0 || len(h.objs) == 0 {
			return nil
		}
		r := pick(owned, op.A)
		holders := h.objsIn(r)
		if len(holders) == 0 {
			return nil
		}
		holder := pick(holders, op.A)
		target := pick(h.objs, op.B)
		err := rcgo.SetRefOwned(r.owner, holder.real, &holder.real.Value.Other, target.real)
		external := target.region != r
		predicted := outOK
		switch {
		case external && target.region.state == mOwned:
			predicted = outOwned
		case external && target.region.state != mAlive:
			predicted = outDeleted
		}
		return h.expect(op, err, predicted, func() {
			old := holder.other
			holder.other = target
			if external {
				target.region.rc++
			}
			if old != nil && old.region != r {
				old.region.rc--
				h.mMaybeDrain(old.region)
			}
		})

	case OpOwnedStore:
		owned := h.ownedRegions()
		if len(owned) == 0 || len(h.objs) == 0 {
			return nil
		}
		r := pick(owned, op.A)
		holders := h.objsIn(r)
		if len(holders) == 0 {
			return nil
		}
		holder := pick(holders, op.A)
		target := pick(h.objs, op.B)
		err := rcgo.SetSameOwned(r.owner, holder.real, &holder.real.Value.Same, target.real)
		predicted := outOK
		if target.region != r {
			predicted = outBadRef
		}
		// Never counted: no model transition.
		return h.expect(op, err, predicted, nil)

	case OpOwnedDelete:
		owned := h.ownedRegions()
		if len(owned) == 0 {
			return nil
		}
		r := pick(owned, op.A)
		err := r.owner.Delete()
		predicted := outOK
		if r.children > 0 || r.rc > 0 {
			predicted = outInUse
		}
		if e := h.expect(op, err, predicted, func() {
			r.ownerObjs = 0
			r.owner = nil
			h.mReclaim(r)
		}); e != nil {
			return e
		}
		if errors.Is(err, rcgo.ErrRegionInUse) {
			// Owner.Delete flushes before deciding: a blocked delete
			// leaves the region owned with the token's deltas already
			// merged — mirror the early flush or the object counts
			// diverge on the very next verify.
			r.objs += r.ownerObjs
			r.ownerObjs = 0
		}
		return nil
	}
	return nil
}

// mReclaim is the model's reclaim: release the region's outbound
// counted references (cascading drains), drop its objects, and detach
// from the parent, mirroring Region.reclaim.
func (h *Harness) mReclaim(r *mRegion) {
	r.state = mDead
	r.objs = 0
	for _, o := range h.objs {
		if o.region != r || o.other == nil {
			continue
		}
		t := o.other
		o.other = nil
		if t.region != r {
			t.region.rc--
			h.mMaybeDrain(t.region)
		}
	}
	if p := r.parent; p != nil {
		p.children--
		h.mMaybeDrain(p)
	}
}

// mMaybeDrain is the model's zombie drain.
func (h *Harness) mMaybeDrain(r *mRegion) {
	if r.state == mZombie && r.rc == 0 && r.children == 0 {
		h.mReclaim(r)
	}
}

// verify compares every model region against the runtime and the
// arena-wide totals against the model's sums.
func (h *Harness) verify() error {
	var alive, zombie, owned, objTotal int64
	for _, r := range h.regions {
		st := r.real.Stats()
		switch r.state {
		case mAlive:
			if st.Deleted || st.Owned {
				return h.divergence("region %d: model alive, runtime %+v", st.ID, st)
			}
			alive++
		case mOwned:
			if st.Deleted || !st.Owned {
				return h.divergence("region %d: model owned, runtime %+v", st.ID, st)
			}
			// Counts as alive in the population totals; the counter
			// comparison below checks the flushed objs only (r.objs
			// excludes ownerObjs), which is exactly what the runtime
			// exposes while the token holds the rest.
			alive++
			owned++
		case mZombie:
			if !st.Deferred || st.Reclaimed {
				return h.divergence("region %d: model zombie, runtime %+v", st.ID, st)
			}
			zombie++
		case mDead:
			if !st.Reclaimed {
				return h.divergence("region %d: model dead, runtime %+v", st.ID, st)
			}
			continue
		}
		objTotal += r.objs
		if st.RC != r.rc || st.Pins != r.pins || st.Objects != r.objs || st.Subregions != r.children {
			return h.divergence(
				"region %d: runtime rc=%d pins=%d objs=%d children=%d, model rc=%d pins=%d objs=%d children=%d",
				st.ID, st.RC, st.Pins, st.Objects, st.Subregions, r.rc, r.pins, r.objs, r.children)
		}
	}
	ast := h.arena.Stats()
	if ast.LiveObjects != objTotal {
		return h.divergence("arena LiveObjects=%d, model %d", ast.LiveObjects, objTotal)
	}
	// +1: the traditional region, which the model never touches.
	if ast.LiveRegions != alive+1 {
		return h.divergence("arena LiveRegions=%d, model %d", ast.LiveRegions, alive+1)
	}
	if ast.DeferredRegions != zombie {
		return h.divergence("arena DeferredRegions=%d, model %d", ast.DeferredRegions, zombie)
	}
	if ast.OwnedRegions != owned {
		return h.divergence("arena OwnedRegions=%d, model %d", ast.OwnedRegions, owned)
	}
	return nil
}

// Drain unwinds the workload: every pin released, every counted slot
// cleared, every region deferred-deleted, every zombie swept. A
// correct runtime ends with only the traditional region alive and
// nothing live or deferred; anything else is a divergence.
func (h *Harness) Drain() error {
	// Release every outstanding token first: counted slots cannot be
	// cleared through the shared path while their holder is owned.
	// RunSeq disarms failpoints before draining, so Release cannot be
	// injected here.
	for _, r := range h.regions {
		if r.state != mOwned {
			continue
		}
		if err := r.owner.Release(); err != nil {
			return h.divergence("drain release: %v", err)
		}
		r.objs += r.ownerObjs
		r.ownerObjs = 0
		r.state = mAlive
		r.owner = nil
	}
	for _, p := range h.pins {
		p.unpin()
		p.region.rc--
		p.region.pins--
		h.mMaybeDrain(p.region)
	}
	h.pins = nil
	for _, o := range h.objs {
		if o.region.state == mDead || o.other == nil {
			continue
		}
		if err := rcgo.SetRef(o.real, &o.real.Value.Other, nil); err != nil {
			return h.divergence("drain clear: %v", err)
		}
		t := o.other
		o.other = nil
		if t.region != o.region {
			t.region.rc--
			h.mMaybeDrain(t.region)
		}
	}
	for _, r := range h.regions {
		if r.state != mAlive {
			continue
		}
		r.real.DeleteDeferred()
		if r.rc == 0 && r.children == 0 {
			h.mReclaim(r)
		} else {
			r.state = mZombie
		}
	}
	h.arena.SweepZombies()
	if err := h.verify(); err != nil {
		return err
	}
	for _, r := range h.regions {
		if r.state != mDead {
			return h.divergence("region %d not reclaimed after drain (model state %d)",
				r.real.ID(), r.state)
		}
	}
	if got := h.arena.LiveObjects(); got != 0 {
		return h.divergence("LiveObjects=%d after drain", got)
	}
	return nil
}

// RandomOps generates n ops from the seed with workload-shaped
// weights: allocation and stores dominate, lifecycle ops churn
// underneath.
func RandomOps(seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		var k OpKind
		switch p := rng.Intn(100); {
		case p < 14:
			k = OpAlloc
		case p < 28:
			k = OpSetRef
		case p < 36:
			k = OpClearRef
		case p < 43:
			k = OpSetSame
		case p < 51:
			k = OpPin
		case p < 59:
			k = OpUnpin
		case p < 65:
			k = OpNewSubregion
		case p < 69:
			k = OpNewRegion
		case p < 75:
			k = OpDelete
		case p < 78:
			k = OpDeleteDeferred
		case p < 83:
			k = OpAcquire
		case p < 86:
			k = OpRelease
		case p < 91:
			k = OpOwnedAlloc
		case p < 94:
			k = OpOwnedSetRef
		case p < 97:
			k = OpOwnedStore
		default:
			k = OpOwnedDelete
		}
		ops = append(ops, Op{Kind: k, A: rng.Intn(1 << 20), B: rng.Intn(1 << 20)})
	}
	return ops
}

// SeqRules arms every instrumented site with a deterministic
// error-injection rule derived from seed. Error actions are the right
// sequential chaos: they exercise every unwind path, and the harness's
// per-op sweep heals the drains they suppress. The one exception is
// rcgo/alloc.refill, which gets a yield rule: its evaluation stream
// depends on chunk-pool and GC state (a refill only happens when the
// pool comes up empty), so an error rule there would make the injected
// outcome counts irreproducible across same-seed runs. Its error path
// is exercised by the concurrent alloc-churn phase (AllocChurnRules)
// and by unit tests instead.
func SeqRules(seed uint64) map[string]failpoint.Rule {
	return map[string]failpoint.Rule{
		"rcgo/alloc.admission": {Action: failpoint.ActionError, Num: 1, Den: 13, Seed: seed},
		"rcgo/incrc.validate":  {Action: failpoint.ActionError, Num: 1, Den: 11, Seed: seed},
		"rcgo/delete.dying":    {Action: failpoint.ActionError, Num: 1, Den: 7, Seed: seed},
		"rcgo/zombie.drain":    {Action: failpoint.ActionError, Num: 1, Den: 5, Seed: seed},
		"rcgo/slot.insert":     {Action: failpoint.ActionError, Num: 1, Den: 9, Seed: seed},
		"rcgo/alloc.refill":    {Action: failpoint.ActionYield, Num: 1, Den: 3, Seed: seed},
		"rcgo/own.release":     {Action: failpoint.ActionError, Num: 1, Den: 6, Seed: seed},
	}
}

// RunSeq runs a sequential model-checked phase: ops applied one at a
// time, every op's outcome and every region's counters compared against
// the reference model, Arena.Audit clean every auditEvery ops and after
// the final drain. rules (nil for none) arms failpoints for the run and
// disarms them before the drain.
func RunSeq(h *Harness, ops []Op, rules map[string]failpoint.Rule, auditEvery int) error {
	if len(rules) > 0 {
		h.sweepEachOp = true
		for name, r := range rules {
			if err := failpoint.Enable(name, r); err != nil {
				return err
			}
		}
		defer failpoint.DisableAll()
	}
	for i, op := range ops {
		if err := h.Step(op); err != nil {
			return err
		}
		if auditEvery > 0 && (i+1)%auditEvery == 0 {
			if rep := h.arena.Audit(); !rep.OK {
				return h.divergence("mid-run audit failed:\n%s", rep)
			}
		}
	}
	failpoint.DisableAll()
	h.sweepEachOp = false
	if err := h.Drain(); err != nil {
		return err
	}
	if rep := h.arena.Audit(); !rep.OK {
		return h.divergence("final audit failed:\n%s", rep)
	}
	return nil
}
