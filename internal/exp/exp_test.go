package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rcgo"
	"rcgo/internal/region"
	"rcgo/internal/vm"
)

// small runs the harness over a single fast workload.
func small() Options {
	return Options{Scale: 3, Reps: 1, Workloads: []string{"apache"}}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "apache" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Allocs <= 0 || rows[0].MemAllocKB <= 0 || rows[0].Lines < 30 {
		t.Errorf("implausible row: %+v", rows[0])
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "apache") {
		t.Error("rendered table missing workload")
	}
}

func TestFigure7(t *testing.T) {
	rows, err := Figure7(small())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	for _, cfg := range Fig7Configs {
		if r.Sim[cfg] <= 0 || r.Wall[cfg] <= 0 {
			t.Errorf("config %s has no time", cfg)
		}
	}
	// Deterministic shape: counting costs more than not counting, and
	// C@ (full counting everywhere) costs at least as much as RC.
	if r.Sim["RC"] <= r.Sim["norc"] {
		t.Errorf("RC (%v) should exceed norc (%v)", r.Sim["RC"], r.Sim["norc"])
	}
	if r.Sim["C@"] < r.Sim["RC"] {
		t.Errorf("C@ (%v) should be at least RC (%v)", r.Sim["C@"], r.Sim["RC"])
	}
	var buf bytes.Buffer
	PrintFigure7(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("render missing title")
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(small())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.RCOverhead <= 0 || r.CAtOverhead <= 0 {
		t.Errorf("overheads not positive: %+v", r)
	}
	if r.RCOverhead >= r.CAtOverhead {
		t.Errorf("RC overhead (%v) should be below C@'s (%v)", r.RCOverhead, r.CAtOverhead)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "unscan") {
		t.Error("render missing unscan column")
	}
}

func TestTable3(t *testing.T) {
	rows, err := Table3(small())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Keywords == 0 || r.AnnotatedSites == 0 {
		t.Errorf("no annotations found: %+v", r)
	}
	if r.SafePct() < 0 || r.SafePct() > 100 {
		t.Errorf("SafePct = %v", r.SafePct())
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "%safe") {
		t.Error("render missing safe-percentage header")
	}
}

func TestFigure8(t *testing.T) {
	rows, err := Figure8(small())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Deterministic ordering: nq ≥ qs ≥ inf ≥ nc in simulated time.
	order := []string{"nq", "qs", "inf", "nc"}
	for i := 0; i+1 < len(order); i++ {
		if r.Sim[order[i]] < r.Sim[order[i+1]] {
			t.Errorf("%s (%v) should be ≥ %s (%v)",
				order[i], r.Sim[order[i]], order[i+1], r.Sim[order[i+1]])
		}
	}
	var buf bytes.Buffer
	PrintFigure8(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Error("render missing title")
	}
}

func TestFigure9(t *testing.T) {
	rows, err := Figure9(small())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	s, c, n := r.Pct()
	if r.Total() == 0 || s+c+n < 99.9 || s+c+n > 100.1 {
		t.Errorf("percentages do not sum: %v %v %v (total %d)", s, c, n, r.Total())
	}
	var buf bytes.Buffer
	PrintFigure9(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("render missing title")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	if o.reps() != 3 {
		t.Errorf("default reps = %d", o.reps())
	}
	if len(o.list()) != 8 {
		t.Errorf("default workload list = %d", len(o.list()))
	}
	bad := Options{Workloads: []string{"nonexistent"}}
	if len(bad.list()) != 0 {
		t.Error("unknown workload not filtered")
	}
}

func TestSimTimeComponents(t *testing.T) {
	// simTime is strictly monotone in each stat it charges.
	base := simTime(&resFixture)
	if base <= 0 {
		t.Fatal("zero sim time")
	}
	more := resFixture
	moreRegion := *resFixture.Region
	moreRegion.FullUpdates++
	more.Region = &moreRegion
	if simTime(&more) != base+costExtraFull*time.Nanosecond {
		t.Error("full-update charge wrong")
	}
}

// resFixture is a minimal run result for simTime unit tests.
var resFixture = rcgo.RunResult{
	VM:     vm.Stats{Instructions: 1000},
	Region: &region.Stats{FullUpdates: 3, SameChecks: 2, Allocs: 5},
}

func TestTableSpace(t *testing.T) {
	rows, err := TableSpace(Options{Scale: 3, Workloads: []string{"grobner"}})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.RegionKB <= 0 || r.MallocKB <= 0 || r.GCKB <= 0 {
		t.Fatalf("implausible row: %+v", r)
	}
	// The collector trades space for not freeing eagerly: its peak
	// footprint must exceed the region allocator's.
	if r.GCKB < r.RegionKB {
		t.Errorf("GC peak (%d) below regions (%d)", r.GCKB, r.RegionKB)
	}
	var buf bytes.Buffer
	PrintTableSpace(&buf, rows)
	if !strings.Contains(buf.String(), "grobner") {
		t.Error("render missing workload")
	}
}
