package exp

// Interleaved A/B benchmarking of the Go-native allocation fast path
// (region_alloccache.go). Each scenario is measured with the fast path
// enabled and disabled (rcgo.WithAllocCache) in strict alternation —
// A, B, A, B, … — so thermal drift, background load and GC phase hit
// both sides equally, and the best of N is reported per side, following
// the paper's best-of-five convention. cmd/rcbench exposes this as
// -alloc-ab and records the cells in the rcgo.bench/1 "parallel"
// section (EXPERIMENTS.md §"Allocation fast path").

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"rcgo"
	"rcgo/internal/workloads"
)

// ParallelReport is one interleaved A/B parallel benchmark cell: the
// scenario timed at the given GOMAXPROCS with the allocation fast path
// on (ns_op) and off (baseline_ns_op), best of best_of runs per side.
type ParallelReport struct {
	Name   string `json:"name"`
	CPU    int    `json:"cpu"`
	BestOf int    `json:"best_of"`
	// BaselineNs is ns/op down the pre-cache slow path
	// (WithAllocCache(false)); NsPerOp is the fast path.
	BaselineNs float64 `json:"baseline_ns_op"`
	NsPerOp    float64 `json:"ns_op"`
	// DeltaPct is the improvement, (baseline - fast) / baseline * 100.
	DeltaPct float64 `json:"delta_pct"`
}

type abNode struct{ next rcgo.Ref[abNode] }

// allocLoop is the per-P body of every scenario: allocate, run
// storesPerAlloc annotated sameregion stores against the fresh object,
// and recycle the region every 8192 allocations (the webserver pattern
// of a region per request, matching BenchmarkParallelAlloc).
func allocLoop(b *testing.B, a *rcgo.Arena, pb *testing.PB, storesPerAlloc int) {
	r := a.NewRegion()
	var prev *rcgo.Obj[abNode]
	n := 0
	for pb.Next() {
		o := rcgo.Alloc[abNode](r)
		for s := 0; s < storesPerAlloc; s++ {
			rcgo.MustSetSame(o, &o.Value.next, prev)
		}
		prev = o
		if n++; n == 8192 {
			prev = nil
			if err := r.Delete(); err != nil {
				b.Error(err)
				return
			}
			r = a.NewRegion()
			n = 0
		}
	}
	if err := r.Delete(); err != nil {
		b.Error(err)
	}
}

// measureAlloc times one side of one scenario under testing.Benchmark.
func measureAlloc(cache bool, storesPerAlloc int) (float64, error) {
	res := testing.Benchmark(func(b *testing.B) {
		a := rcgo.NewArena(rcgo.WithAllocCache(cache))
		b.RunParallel(func(pb *testing.PB) { allocLoop(b, a, pb, storesPerAlloc) })
	})
	if res.N == 0 {
		return 0, fmt.Errorf("benchmark failed (cache=%v)", cache)
	}
	return float64(res.T.Nanoseconds()) / float64(res.N), nil
}

// workloadStoresPerAlloc runs the named workload once through the
// compiler pipeline and distills its store-per-allocation ratio
// (annotated + unchecked stores over allocations, rounded), so the
// Go-native replay scenario carries the workload's real op mix rather
// than an invented one.
func workloadStoresPerAlloc(name string, scale int) (int, error) {
	w := workloads.ByName(name)
	if w == nil {
		return 0, fmt.Errorf("no workload %q", name)
	}
	c, err := compileAll(w, scale, rcgo.ModeInf)
	if err != nil {
		return 0, err
	}
	res, err := rcgo.Run(c.prog[rcgo.ModeInf], rcgo.RunConfig{Output: io.Discard})
	if err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	st := res.Region
	if st.Allocs == 0 {
		return 0, fmt.Errorf("%s: no allocations recorded", name)
	}
	stores := st.SameChecks + st.TradChecks + st.ParentChecks + st.UncheckedPtrs
	return int((stores + st.Allocs/2) / st.Allocs), nil
}

// AllocAB runs the interleaved A/B parallel allocation benchmarks at
// the given GOMAXPROCS, best of bestOf runs per side: a pure Alloc
// loop, Alloc+SetSame, and a replay of grobner (the alloc-heaviest
// workload) with its measured store-per-alloc mix.
func AllocAB(cpu, bestOf int) ([]ParallelReport, error) {
	if bestOf <= 0 {
		bestOf = 10
	}
	if cpu <= 0 {
		cpu = 8
	}
	grobnerStores, err := workloadStoresPerAlloc("grobner", 2)
	if err != nil {
		return nil, err
	}
	scenarios := []struct {
		name   string
		stores int
	}{
		{"parallel-alloc", 0},
		{"parallel-alloc-setsame", 1},
		{"parallel-alloc-grobner-mix", grobnerStores},
	}
	prev := runtime.GOMAXPROCS(cpu)
	defer runtime.GOMAXPROCS(prev)
	var out []ParallelReport
	for _, sc := range scenarios {
		rep := ParallelReport{Name: sc.name, CPU: cpu, BestOf: bestOf}
		for i := 0; i < bestOf; i++ {
			fast, err := measureAlloc(true, sc.stores)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sc.name, err)
			}
			slow, err := measureAlloc(false, sc.stores)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sc.name, err)
			}
			if rep.NsPerOp == 0 || fast < rep.NsPerOp {
				rep.NsPerOp = fast
			}
			if rep.BaselineNs == 0 || slow < rep.BaselineNs {
				rep.BaselineNs = slow
			}
		}
		rep.DeltaPct = 100 * (rep.BaselineNs - rep.NsPerOp) / rep.BaselineNs
		out = append(out, rep)
	}
	return out, nil
}

// PrintAllocAB renders the A/B cells as a small table.
func PrintAllocAB(w io.Writer, reps []ParallelReport) {
	fmt.Fprintf(w, "%-28s %6s %8s %12s %12s %8s\n",
		"scenario", "cpu", "best-of", "slow ns/op", "fast ns/op", "delta")
	for _, r := range reps {
		fmt.Fprintf(w, "%-28s %6d %8d %12.1f %12.1f %+7.1f%%\n",
			r.Name, r.CPU, r.BestOf, r.BaselineNs, r.NsPerOp, r.DeltaPct)
	}
}
