package exp

// Interleaved A/B benchmarking of the arena's sharding fabric
// (region_fabric.go). Each scenario is measured on a single-shard arena
// (WithShards(1), the pre-fabric behaviour: every region on one id
// sequence, one set of population counters, one registry segment) and
// on a multi-shard fabric. Every run carries a backdrop of hundreds of
// live regions, each holding an object, so the id registry and
// population counters are loaded the way a region-per-request server
// would load them; the timed loops then churn regions and allocations
// through the shared structures the fabric shards.
//
// Methodology. The harness is fixed-work rather than testing.Benchmark:
// every run spins up `cpu` workers that each execute a fixed number of
// operations, and ns/op is wall time over total operations. That keeps
// the A and B runs of a round adjacent in time (testing.Benchmark's
// b.N calibration runs would otherwise separate them by seconds on a
// loaded machine) and makes both sides execute identical work. The GC
// is quiesced (runtime.GC, then GOGC off) for the timed window so GC
// pacing differences between rounds do not masquerade as fabric
// effects. Rounds alternate ABBA order, BaselineNs/NsPerOp are the
// per-side minima across rounds, and DeltaPct is the *median of the
// per-round paired deltas* — pairing cancels machine-load drift that
// per-side minima cannot (the two runs of a pair see the same machine
// state; two minima taken seconds apart need not).
//
// cmd/rcbench exposes this as -fabric-ab and records the cells in the
// rcgo.bench/1 "fabric" section (BENCH_pr6_fabric.json).

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"rcgo"
)

// FabricReport is one interleaved A/B fabric benchmark cell: the
// scenario timed at the given GOMAXPROCS with a backdrop of
// live_regions live regions, on a single-shard arena (baseline_ns_op)
// and on a shards-wide fabric (ns_op), over best_of ABBA-ordered
// rounds.
type FabricReport struct {
	Name   string `json:"name"`
	CPU    int    `json:"cpu"`
	BestOf int    `json:"best_of"`
	// LiveRegions is the backdrop population held live (each with one
	// object) for the whole measurement, on both sides.
	LiveRegions int `json:"live_regions"`
	// Shards is the fabric width of the fast side; the baseline side is
	// always WithShards(1).
	Shards int `json:"shards"`
	// BaselineNs is the minimum ns/op on the single-shard arena across
	// rounds; NsPerOp is the same for the multi-shard fabric.
	BaselineNs float64 `json:"baseline_ns_op"`
	NsPerOp    float64 `json:"ns_op"`
	// DeltaPct is the median across rounds of the per-round paired
	// improvement, (baseline - fabric) / baseline * 100. The paired
	// median, not the delta of the minima: the two runs of a round are
	// adjacent in time, so pairing cancels machine-load drift.
	DeltaPct float64 `json:"delta_pct"`
}

// fabricBody is one worker's share of a scenario: iters operations
// against the arena.
type fabricBody func(a *rcgo.Arena, iters int) error

// churnBody is the region-lifecycle scenario: every operation creates
// a region and deletes it. Create/delete is exactly the traffic that
// funnels through the population counters and registry locks a
// single-shard arena shares — the paper's region-per-phase pattern at
// server request rates.
func churnBody(a *rcgo.Arena, iters int) error {
	for i := 0; i < iters; i++ {
		r := a.NewRegion()
		if err := r.Delete(); err != nil {
			return err
		}
	}
	return nil
}

// allocBatchBody is the region-per-request scenario: allocate batch
// objects into a region (with storesPerAlloc same-region stores each),
// then delete it and start the next. Operations are allocations, so
// ns/op is comparable with the parallel alloc A/B (parallel.go), but
// unlike that A/B's long-lived regions, every batch boundary crosses
// the shard structures.
func allocBatchBody(storesPerAlloc, batch int) fabricBody {
	return func(a *rcgo.Arena, iters int) error {
		r := a.NewRegion()
		var prev *rcgo.Obj[abNode]
		n := 0
		for i := 0; i < iters; i++ {
			o := rcgo.Alloc[abNode](r)
			for s := 0; s < storesPerAlloc; s++ {
				rcgo.MustSetSame(o, &o.Value.next, prev)
			}
			prev = o
			if n++; n == batch {
				prev = nil
				if err := r.Delete(); err != nil {
					return err
				}
				r = a.NewRegion()
				n = 0
			}
		}
		return r.Delete()
	}
}

// measureFabric times one side of one scenario once: an arena of the
// given width with a live backdrop, then workers goroutines each
// running iters operations, wall-clocked with the GC quiesced.
func measureFabric(shards, liveRegions, workers, iters int, body fabricBody) (float64, error) {
	a := rcgo.NewArena(rcgo.WithShards(shards))
	backdrop := make([]*rcgo.Region, liveRegions)
	for i := range backdrop {
		backdrop[i] = a.NewRegion()
		rcgo.Alloc[abNode](backdrop[i])
	}
	runtime.GC()
	oldGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(oldGC)
	errs := make(chan error, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := body(a, iters); err != nil {
				errs <- err
			}
		}()
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	select {
	case err := <-errs:
		return 0, fmt.Errorf("shards=%d: %w", shards, err)
	default:
	}
	return float64(elapsed.Nanoseconds()) / float64(workers*iters), nil
}

// FabricAB runs the interleaved A/B fabric benchmarks at the given
// GOMAXPROCS with a backdrop of liveRegions live regions, over bestOf
// rounds per scenario: parallel allocation and allocation+SetSame in
// region-per-request batches, and the region create/delete churn loop.
// The fast side's shard count is the next power of two at or above cpu
// (capped like WithShards).
func FabricAB(cpu, bestOf, liveRegions int) ([]FabricReport, error) {
	if bestOf <= 0 {
		bestOf = 10
	}
	if cpu <= 0 {
		cpu = 8
	}
	if liveRegions <= 0 {
		liveRegions = 256
	}
	shards := 1
	for shards < cpu && shards < 256 {
		shards <<= 1
	}
	scenarios := []struct {
		name string
		// iters is per-worker operation count, sized so one run lasts
		// roughly 100-200ms: long enough to average scheduler jitter,
		// short enough that a round's A and B runs share machine state.
		iters int
		body  fabricBody
	}{
		{"fabric-parallel-alloc", 120000, allocBatchBody(0, 8)},
		{"fabric-parallel-alloc-setsame", 100000, allocBatchBody(1, 8)},
		{"fabric-parallel-delete", 20000, churnBody},
	}
	prev := runtime.GOMAXPROCS(cpu)
	defer runtime.GOMAXPROCS(prev)
	var out []FabricReport
	for _, sc := range scenarios {
		rep := FabricReport{
			Name: sc.name, CPU: cpu, BestOf: bestOf,
			LiveRegions: liveRegions, Shards: shards,
		}
		// Unrecorded warmup of each side: the first run after a scenario
		// switch pays one-time costs (code paging, heap regrowth after
		// the previous scenario's teardown) that would skew round 0.
		if _, err := measureFabric(1, liveRegions, cpu, sc.iters/4, sc.body); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		if _, err := measureFabric(shards, liveRegions, cpu, sc.iters/4, sc.body); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		var deltas []float64
		for i := 0; i < bestOf; i++ {
			var slow, fast float64
			var err error
			run := func(s int) (float64, error) {
				return measureFabric(s, liveRegions, cpu, sc.iters, sc.body)
			}
			// ABBA: alternate which side runs first so a systematic
			// first-runner advantage (or penalty) cancels across rounds.
			if i%2 == 0 {
				if slow, err = run(1); err == nil {
					fast, err = run(shards)
				}
			} else {
				if fast, err = run(shards); err == nil {
					slow, err = run(1)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sc.name, err)
			}
			if rep.BaselineNs == 0 || slow < rep.BaselineNs {
				rep.BaselineNs = slow
			}
			if rep.NsPerOp == 0 || fast < rep.NsPerOp {
				rep.NsPerOp = fast
			}
			deltas = append(deltas, 100*(slow-fast)/slow)
		}
		sort.Float64s(deltas)
		if n := len(deltas); n%2 == 1 {
			rep.DeltaPct = deltas[n/2]
		} else {
			rep.DeltaPct = (deltas[n/2-1] + deltas[n/2]) / 2
		}
		out = append(out, rep)
	}
	return out, nil
}

// PrintFabricAB renders the fabric A/B cells as a small table.
func PrintFabricAB(w io.Writer, reps []FabricReport) {
	fmt.Fprintf(w, "%-30s %4s %7s %6s %6s %12s %12s %8s\n",
		"scenario", "cpu", "best-of", "live", "shards", "1-shard ns", "fabric ns", "delta")
	for _, r := range reps {
		fmt.Fprintf(w, "%-30s %4d %7d %6d %6d %12.1f %12.1f %+7.1f%%\n",
			r.Name, r.CPU, r.BestOf, r.LiveRegions, r.Shards, r.BaselineNs, r.NsPerOp, r.DeltaPct)
	}
}
