package exp

import (
	"time"

	"rcgo"
)

// Simulated-time cost model.
//
// The paper measures wall time on a 333 MHz in-order UltraSPARC, where
// memory-management work is a large, predictable fraction of execution:
// a full reference-count update is 23 instructions, the annotation checks
// 6–14, and allocator operations tens of instructions. On this VM the
// same operations are implemented as a handful of Go statements whose
// real cost is dwarfed by interpreter dispatch, so wall-clock differences
// between configurations sit inside measurement noise.
//
// The experiments therefore report a deterministic simulated time: every
// VM instruction costs one cycle, and memory-management operations charge
// the extra cycles below (the barrier numbers are the paper's own
// instruction counts; the allocator numbers are typical path lengths for
// a segregated-fit malloc and a mark-sweep collector). Simulated time is
// rendered at 1 GHz, i.e. one cycle = 1 ns. Wall time is reported
// alongside as a secondary, noisy measurement.
const (
	// Extra cycles per pointer-store barrier, beyond the 1-cycle store
	// already counted as a VM instruction (paper Figure 3: 23 for the
	// full update, 6 for sameregion/traditional, 14 for parentptr).
	costExtraFull   = 22
	costExtraSame   = 5
	costExtraTrad   = 5
	costExtraParent = 13

	// Allocation: a region allocation is a bump plus a header write; a
	// malloc allocation is a size-class lookup and free-list pop; free
	// pushes back and merges accounting; a collected allocation matches
	// malloc's path.
	costRegionAlloc = 10
	costMallocAlloc = 40
	costMallocFree  = 25
	costGCAlloc     = 40

	// Collection work: per marked object, per conservatively scanned
	// word, per swept block.
	costGCMarked = 3
	costGCScan   = 1
	costGCSwept  = 2

	// Region bookkeeping: creation (page + hierarchy renumbering),
	// deletion base cost, per-word delete-time unscan, pin/unpin pair at
	// a deletes-call, per-slot C@ stack scan.
	costNewRegion  = 60
	costDelRegion  = 30
	costUnscanWord = 2
	costPinPair    = 12
	costScanSlot   = 3
)

// simTime computes the simulated duration of a run (1 cycle = 1 ns).
func simTime(res *rcgo.RunResult) time.Duration {
	cycles := res.VM.Instructions
	if st := res.Region; st != nil {
		cycles += st.FullUpdates * costExtraFull
		cycles += st.SameChecks * costExtraSame
		cycles += st.TradChecks * costExtraTrad
		cycles += st.ParentChecks * costExtraParent
		cycles += st.Allocs * costRegionAlloc
		cycles += st.RegionsCreated * costNewRegion
		cycles += st.RegionsDeleted * costDelRegion
		cycles += st.UnscanWords * costUnscanWord
		cycles += st.PinOps * costPinPair
	}
	if st := res.Malloc; st != nil {
		cycles += st.Allocs * costMallocAlloc
		cycles += st.Frees * costMallocFree
	}
	if st := res.GC; st != nil {
		cycles += st.Allocs * costGCAlloc
		cycles += st.Marked * costGCMarked
		cycles += st.ScanWords * costGCScan
		cycles += st.Swept * costGCSwept
	}
	cycles += res.VM.ScanSlots * costScanSlot
	return time.Duration(cycles) // ns at 1 GHz
}

// simUnscanTime is the simulated cost of the delete-time scans alone.
func simUnscanTime(res *rcgo.RunResult) time.Duration {
	if res.Region == nil {
		return 0
	}
	return time.Duration(res.Region.UnscanWords * costUnscanWord)
}
