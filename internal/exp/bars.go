package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// barWidth is the maximum bar length in cells.
const barWidth = 36

// bar renders a proportional bar.
func bar(v, max time.Duration) string {
	if max <= 0 {
		return ""
	}
	n := int(float64(barWidth) * float64(v) / float64(max))
	if n < 1 && v > 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}

// printBarGroups renders grouped horizontal bars, one group per
// benchmark, normalized within the group (as in the paper's per-benchmark
// panels of Figures 7 and 8).
func printBarGroups(w io.Writer, title string, names []string,
	groups []string, value func(group, name string) time.Duration) {
	fmt.Fprintln(w, title)
	for _, g := range groups {
		var max time.Duration
		for _, n := range names {
			if v := value(g, n); v > max {
				max = v
			}
		}
		fmt.Fprintf(w, "%s\n", g)
		for _, n := range names {
			v := value(g, n)
			fmt.Fprintf(w, "  %-5s %-*s %8.3fs\n", n, barWidth, bar(v, max), v.Seconds())
		}
	}
}

// PrintFigure7Bars renders Figure 7 as per-benchmark bar groups.
func PrintFigure7Bars(w io.Writer, rows []Fig7Row) {
	byName := map[string]Fig7Row{}
	var groups []string
	for _, r := range rows {
		byName[r.Name] = r
		groups = append(groups, r.Name)
	}
	printBarGroups(w, "Figure 7 (bars, simulated time)", Fig7Configs, groups,
		func(g, n string) time.Duration { return byName[g].Sim[n] })
}

// PrintFigure8Bars renders Figure 8 as per-benchmark bar groups.
func PrintFigure8Bars(w io.Writer, rows []Fig8Row) {
	byName := map[string]Fig8Row{}
	var groups []string
	for _, r := range rows {
		byName[r.Name] = r
		groups = append(groups, r.Name)
	}
	printBarGroups(w, "Figure 8 (bars, simulated time)", Fig8Configs, groups,
		func(g, n string) time.Duration { return byName[g].Sim[n] })
}

// PrintFigure9Bars renders Figure 9 as stacked percentage bars (safe,
// checked, counted), mirroring the paper's stacked chart.
func PrintFigure9Bars(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9 (bars: █ safe, ▒ checked, ░ counted)")
	for _, r := range rows {
		s, c, n := r.Pct()
		ns := int(float64(barWidth) * s / 100)
		nc := int(float64(barWidth) * c / 100)
		nn := int(float64(barWidth) * n / 100)
		fmt.Fprintf(w, "  %-8s %s%s%s %5.1f/%5.1f/%5.1f%%\n", r.Name,
			strings.Repeat("█", ns), strings.Repeat("▒", nc), strings.Repeat("░", nn),
			s, c, n)
	}
}
