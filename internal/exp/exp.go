// Package exp regenerates every table and figure of the paper's
// evaluation (Section 5) over the eight workloads:
//
//	Table 1   benchmark characteristics (lines, allocations, memory)
//	Figure 7  execution time under C@ / lea / GC / norc / RC
//	Table 2   reference-counting overhead for C@ and RC, and unscan time
//	Table 3   annotation counts and statically-verified assignment sites
//	Figure 8  execution time under nq / qs / inf / nc
//	Figure 9  runtime pointer-assignment categories (safe/checked/counted)
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not a 333 MHz UltraSPARC), but the comparisons — who wins, by roughly
// what factor, where the overheads lie — are the reproduction targets.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"rcgo"
	"rcgo/internal/workloads"
)

// Options configures experiment runs.
type Options struct {
	// Scale overrides every workload's default scale (0 = defaults).
	Scale int
	// Reps is the number of timed runs per cell; the best is reported,
	// following the paper ("the best of five runs"). Default 3.
	Reps int
	// Workloads restricts the set (nil = all eight).
	Workloads []string
}

func (o *Options) reps() int {
	if o.Reps <= 0 {
		return 3
	}
	return o.Reps
}

func (o *Options) list() []*workloads.Workload {
	if len(o.Workloads) == 0 {
		return workloads.All()
	}
	var out []*workloads.Workload
	for _, n := range o.Workloads {
		if w := workloads.ByName(n); w != nil {
			out = append(out, w)
		}
	}
	return out
}

// compiled caches one workload's compilation under each mode.
type compiled struct {
	w    *workloads.Workload
	prog map[rcgo.Mode]*rcgo.Compiled
}

func compileAll(w *workloads.Workload, scale int, modes ...rcgo.Mode) (*compiled, error) {
	c := &compiled{w: w, prog: make(map[rcgo.Mode]*rcgo.Compiled)}
	src := w.Source(scale)
	for _, m := range modes {
		p, err := rcgo.Compile(src, m)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", w.Name, m, err)
		}
		c.prog[m] = p
	}
	return c, nil
}

// timeRun executes a compiled program reps times and returns the best
// duration and the last run's result. The Go collector runs between reps
// so its pauses do not land inside a timed region.
func timeRun(c *rcgo.Compiled, cfg rcgo.RunConfig, reps int) (time.Duration, *rcgo.RunResult, error) {
	best := time.Duration(0)
	var last *rcgo.RunResult
	for i := 0; i < reps; i++ {
		runtime.GC()
		res, err := rcgo.Run(c, cfg)
		if err != nil {
			return 0, nil, err
		}
		if best == 0 || res.Duration < best {
			best = res.Duration
		}
		last = res
	}
	return best, last, nil
}

// ---------------------------------------------------------------------------
// Table 1 — benchmark characteristics.

// Table1Row is one line of Table 1.
type Table1Row struct {
	Name       string
	Lines      int
	Allocs     int64
	MemAllocKB int64
	MaxUseKB   int64
}

// Table1 regenerates the paper's Table 1.
func Table1(o Options) ([]Table1Row, error) {
	var rows []Table1Row
	for _, w := range o.list() {
		c, err := rcgo.Compile(w.Source(o.Scale), rcgo.ModeInf)
		if err != nil {
			return nil, err
		}
		res, err := rcgo.Run(c, rcgo.RunConfig{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		rows = append(rows, Table1Row{
			Name:       w.Name,
			Lines:      w.Lines(),
			Allocs:     res.Region.Allocs,
			MemAllocKB: res.Region.AllocWords * 8 / 1024,
			MaxUseKB:   res.Region.MaxLiveBytes / 1024,
		})
	}
	return rows, nil
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: Benchmark characteristics\n")
	fmt.Fprintf(w, "%-8s %7s %12s %12s %10s\n", "Name", "Lines", "Number", "Mem alloc", "Max use")
	fmt.Fprintf(w, "%-8s %7s %12s %12s %10s\n", "", "", "allocs", "(kB)", "(kB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %7d %12d %12d %10d\n",
			r.Name, r.Lines, r.Allocs, r.MemAllocKB, r.MaxUseKB)
	}
}

// ---------------------------------------------------------------------------
// Figure 7 — execution time under the five allocator configurations.

// Fig7Configs are the paper's five columns.
var Fig7Configs = []string{"C@", "lea", "GC", "norc", "RC"}

// Fig7Row is one benchmark's bar group: deterministic simulated time
// (primary, see simtime.go) and wall time (secondary, noisy).
type Fig7Row struct {
	Name string
	Sim  map[string]time.Duration
	Wall map[string]time.Duration
}

// Figure7 regenerates Figure 7.
func Figure7(o Options) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, w := range o.list() {
		c, err := compileAll(w, o.Scale, rcgo.ModeNQ, rcgo.ModeInf, rcgo.ModeNoRC)
		if err != nil {
			return nil, err
		}
		sim := make(map[string]time.Duration)
		wall := make(map[string]time.Duration)
		cells := []struct {
			name string
			mode rcgo.Mode
			cfg  rcgo.RunConfig
		}{
			{"C@", rcgo.ModeNQ, rcgo.RunConfig{CAtStyle: true}},
			{"lea", rcgo.ModeNoRC, rcgo.RunConfig{Backend: rcgo.BackendMalloc}},
			{"GC", rcgo.ModeNoRC, rcgo.RunConfig{Backend: rcgo.BackendGC}},
			{"norc", rcgo.ModeNoRC, rcgo.RunConfig{}},
			{"RC", rcgo.ModeInf, rcgo.RunConfig{}},
		}
		for _, cell := range cells {
			best, res, err := timeRun(c.prog[cell.mode], cell.cfg, o.reps())
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, cell.name, err)
			}
			wall[cell.name] = best
			sim[cell.name] = simTime(res)
		}
		rows = append(rows, Fig7Row{Name: w.Name, Sim: sim, Wall: wall})
	}
	return rows, nil
}

// PrintFigure7 renders Figure 7.
func PrintFigure7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Figure 7: Execution time (simulated seconds; wall seconds in parens)\n")
	fmt.Fprintf(w, "%-8s", "Name")
	for _, c := range Fig7Configs {
		fmt.Fprintf(w, " %16s", c)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s", r.Name)
		for _, c := range Fig7Configs {
			fmt.Fprintf(w, " %8.3f (%5.2f)", r.Sim[c].Seconds(), r.Wall[c].Seconds())
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Table 2 — reference counting overhead.

// Table2Row is one line of Table 2.
type Table2Row struct {
	Name string
	// C@ overhead: time(C@) - time(norc).
	CAtOverhead time.Duration
	CAtPct      float64
	// RC overhead: time(RC) - time(norc).
	RCOverhead time.Duration
	RCPct      float64
	// Unscan is the delete-time scan portion of the RC run.
	Unscan time.Duration
}

// Table2 regenerates the paper's Table 2 from simulated time (the
// deterministic cost model of simtime.go), so overheads are exact rather
// than differences of noisy wall-clock measurements.
func Table2(o Options) ([]Table2Row, error) {
	var rows []Table2Row
	for _, w := range o.list() {
		c, err := compileAll(w, o.Scale, rcgo.ModeNQ, rcgo.ModeInf, rcgo.ModeNoRC)
		if err != nil {
			return nil, err
		}
		run := func(m rcgo.Mode, cfg rcgo.RunConfig) (*rcgo.RunResult, error) {
			res, err := rcgo.Run(c.prog[m], cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, m, err)
			}
			return res, nil
		}
		norc, err := run(rcgo.ModeNoRC, rcgo.RunConfig{})
		if err != nil {
			return nil, err
		}
		cat, err := run(rcgo.ModeNQ, rcgo.RunConfig{CAtStyle: true})
		if err != nil {
			return nil, err
		}
		rct, err := run(rcgo.ModeInf, rcgo.RunConfig{})
		if err != nil {
			return nil, err
		}
		base := simTime(norc)
		catT := simTime(cat)
		rcT := simTime(rct)
		row := Table2Row{
			Name:        w.Name,
			CAtOverhead: catT - base,
			RCOverhead:  rcT - base,
			Unscan:      simUnscanTime(rct),
		}
		if catT > 0 {
			row.CAtPct = 100 * float64(row.CAtOverhead) / float64(catT)
		}
		if rcT > 0 {
			row.RCPct = 100 * float64(row.RCOverhead) / float64(rcT)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable2 renders Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: Reference counting overhead (C@-style vs RC)\n")
	fmt.Fprintf(w, "%-8s %10s %7s %10s %7s %12s\n",
		"Name", "C@ (s)", "(%)", "RC (s)", "(%)", "unscan (s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10.3f %6.1f%% %10.3f %6.1f%% %12.4f\n",
			r.Name, r.CAtOverhead.Seconds(), r.CAtPct,
			r.RCOverhead.Seconds(), r.RCPct, r.Unscan.Seconds())
	}
}

// ---------------------------------------------------------------------------
// Table 3 — annotation statistics.

// Table3Row is one line of Table 3.
type Table3Row struct {
	Name string
	// Keywords is the number of sameregion/traditional/parentptr
	// annotations in the source.
	Keywords int
	// SafeSites / AnnotatedSites: check sites proven safe statically.
	SafeSites      int
	AnnotatedSites int
	// PaperSafePct is the paper's reported percentage, for comparison.
	PaperSafePct int
}

// SafePct is the percentage of annotated sites proven safe.
func (r Table3Row) SafePct() float64 {
	if r.AnnotatedSites == 0 {
		return 0
	}
	return 100 * float64(r.SafeSites) / float64(r.AnnotatedSites)
}

// Table3 regenerates the paper's Table 3.
func Table3(o Options) ([]Table3Row, error) {
	var rows []Table3Row
	for _, w := range o.list() {
		src := w.Source(o.Scale)
		c, err := rcgo.Compile(src, rcgo.ModeInf)
		if err != nil {
			return nil, err
		}
		row := Table3Row{Name: w.Name, PaperSafePct: w.PaperSafePct}
		for _, kw := range []string{"sameregion", "traditional", "parentptr"} {
			row.Keywords += strings.Count(src, kw)
		}
		for i := range c.Infer.SafeSite {
			if c.Infer.SiteSeen[i] {
				row.AnnotatedSites++
				if c.Infer.SafeSite[i] {
					row.SafeSites++
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable3 renders Table 3.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3: sameregion, parentptr and traditional static statistics\n")
	fmt.Fprintf(w, "%-8s %9s %12s %12s %14s\n",
		"Name", "Keywords", "safe sites", "total sites", "%safe (paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %9d %12d %12d %6.0f%% (%d%%)\n",
			r.Name, r.Keywords, r.SafeSites, r.AnnotatedSites,
			r.SafePct(), r.PaperSafePct)
	}
}

// ---------------------------------------------------------------------------
// Figure 8 — execution time under nq / qs / inf / nc.

// Fig8Configs are the paper's four bars.
var Fig8Configs = []string{"nq", "qs", "inf", "nc"}

// Fig8Row is one benchmark's bar group: deterministic simulated time per
// configuration, plus wall time as the secondary measurement.
type Fig8Row struct {
	Name string
	Sim  map[string]time.Duration
	Wall map[string]time.Duration
}

// Figure8 regenerates Figure 8.
func Figure8(o Options) ([]Fig8Row, error) {
	var rows []Fig8Row
	modes := map[string]rcgo.Mode{
		"nq": rcgo.ModeNQ, "qs": rcgo.ModeQS,
		"inf": rcgo.ModeInf, "nc": rcgo.ModeNC,
	}
	for _, w := range o.list() {
		c, err := compileAll(w, o.Scale, rcgo.ModeNQ, rcgo.ModeQS, rcgo.ModeInf, rcgo.ModeNC)
		if err != nil {
			return nil, err
		}
		sim := make(map[string]time.Duration)
		wall := make(map[string]time.Duration)
		for _, name := range Fig8Configs {
			best, res, err := timeRun(c.prog[modes[name]], rcgo.RunConfig{}, o.reps())
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, name, err)
			}
			wall[name] = best
			sim[name] = simTime(res)
		}
		rows = append(rows, Fig8Row{Name: w.Name, Sim: sim, Wall: wall})
	}
	return rows, nil
}

// PrintFigure8 renders Figure 8.
func PrintFigure8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintf(w, "Figure 8: Execution time with annotations (simulated seconds; wall in parens)\n")
	fmt.Fprintf(w, "%-8s", "Name")
	for _, c := range Fig8Configs {
		fmt.Fprintf(w, " %16s", c)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s", r.Name)
		for _, c := range Fig8Configs {
			fmt.Fprintf(w, " %8.3f (%5.2f)", r.Sim[c].Seconds(), r.Wall[c].Seconds())
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Figure 9 — pointer-assignment categories.

// Fig9Row is one benchmark's bar: the runtime breakdown of pointer
// assignments (excluding register locals, as in the paper) into statically
// safe, runtime-checked, and reference-counted.
type Fig9Row struct {
	Name    string
	Safe    int64
	Checked int64
	Counted int64
}

// Total is the denominator.
func (r Fig9Row) Total() int64 { return r.Safe + r.Checked + r.Counted }

// Pct returns the three percentages.
func (r Fig9Row) Pct() (safe, checked, counted float64) {
	t := float64(r.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return 100 * float64(r.Safe) / t, 100 * float64(r.Checked) / t, 100 * float64(r.Counted) / t
}

// Figure9 regenerates Figure 9 from the inf configuration's runtime
// counters.
func Figure9(o Options) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, w := range o.list() {
		c, err := rcgo.Compile(w.Source(o.Scale), rcgo.ModeInf)
		if err != nil {
			return nil, err
		}
		res, err := rcgo.Run(c, rcgo.RunConfig{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		st := res.Region
		rows = append(rows, Fig9Row{
			Name:    w.Name,
			Safe:    st.UncheckedPtrs,
			Checked: st.SameChecks + st.TradChecks + st.ParentChecks,
			Counted: st.FullUpdates,
		})
	}
	return rows, nil
}

// PrintFigure9 renders Figure 9.
func PrintFigure9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintf(w, "Figure 9: Pointer assignment categories at runtime (inf configuration)\n")
	fmt.Fprintf(w, "%-8s %8s %9s %9s %12s\n", "Name", "safe%", "checked%", "counted%", "assignments")
	for _, r := range rows {
		s, ch, co := r.Pct()
		fmt.Fprintf(w, "%-8s %7.1f%% %8.1f%% %8.1f%% %12d\n", r.Name, s, ch, co, r.Total())
	}
}

// ---------------------------------------------------------------------------
// Bonus: space usage per backend. The paper's companion study ([6], Gay &
// Aiken PLDI'98) compared the space behaviour of regions against explicit
// deallocation and garbage collection; this table reports peak simulated
// heap footprint for the same three backends.

// SpaceRow is one benchmark's peak heap footprint per backend.
type SpaceRow struct {
	Name     string
	RegionKB int64
	MallocKB int64
	GCKB     int64
}

// TableSpace measures peak heap usage under each backend.
func TableSpace(o Options) ([]SpaceRow, error) {
	var rows []SpaceRow
	for _, w := range o.list() {
		c, err := compileAll(w, o.Scale, rcgo.ModeInf, rcgo.ModeNoRC)
		if err != nil {
			return nil, err
		}
		row := SpaceRow{Name: w.Name}
		cells := []struct {
			dst  *int64
			mode rcgo.Mode
			cfg  rcgo.RunConfig
		}{
			{&row.RegionKB, rcgo.ModeInf, rcgo.RunConfig{}},
			{&row.MallocKB, rcgo.ModeNoRC, rcgo.RunConfig{Backend: rcgo.BackendMalloc}},
			{&row.GCKB, rcgo.ModeNoRC, rcgo.RunConfig{Backend: rcgo.BackendGC}},
		}
		for _, cell := range cells {
			res, err := rcgo.Run(c.prog[cell.mode], cell.cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", w.Name, err)
			}
			*cell.dst = res.MaxHeapBytes / 1024
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTableSpace renders the space table.
func PrintTableSpace(w io.Writer, rows []SpaceRow) {
	fmt.Fprintf(w, "Space: peak heap footprint (kB)\n")
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "Name", "regions", "malloc", "GC")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10d %10d %10d\n", r.Name, r.RegionKB, r.MallocKB, r.GCKB)
	}
}
