package exp

// Interleaved A/B benchmarking of the exclusive-ownership fast path
// (region_owner.go). Each scenario executes identical logical work
// twice: once through the shared-path API (Alloc/SetSame/SetRef/Delete
// — atomic counters, shard locks, state checks on every operation) and
// once through an Owner token (AllocOwned/SetSameOwned/SetRefOwned/
// Owner.Delete — plain owner-local counters flushed once at release).
// Every worker owns private regions, so the shared side measures the
// uncontended cost of the synchronized bookkeeping itself, which is
// exactly what the owned path removes; the external targets of the
// counted-store scenario still pay the shared incRC on both sides,
// because that protocol is unchanged while owned.
//
// Methodology: identical to the fabric A/B (fabric.go) — fixed-work
// wall-clocked rounds with the GC quiesced, ABBA ordering, per-side
// minima, and DeltaPct as the median of per-round paired deltas.
//
// cmd/rcbench exposes this as -own-ab and records the cells in the
// rcgo.bench/1 "ownership" section (BENCH_pr8_ownership.json).

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"rcgo"
)

// OwnershipReport is one interleaved A/B ownership benchmark cell: the
// scenario timed at the given GOMAXPROCS through the shared path
// (baseline_ns_op) and through an Owner token (ns_op), over best_of
// ABBA-ordered rounds.
type OwnershipReport struct {
	Name   string `json:"name"`
	CPU    int    `json:"cpu"`
	BestOf int    `json:"best_of"`
	// BaselineNs is the minimum ns/op down the shared path across
	// rounds; NsPerOp is the same through the Owner token.
	BaselineNs float64 `json:"baseline_ns_op"`
	NsPerOp    float64 `json:"ns_op"`
	// DeltaPct is the median across rounds of the per-round paired
	// improvement, (shared - owned) / shared * 100.
	DeltaPct float64 `json:"delta_pct"`
}

// ownBody is one worker's share of a scenario: iters operations against
// private regions of the arena.
type ownBody func(a *rcgo.Arena, iters int) error

// ownAllocShared / ownAllocOwned: the build loop — allocate and
// sameregion-link into a private region, recycling it every batch
// allocations. With a large batch the cell isolates the per-operation
// cost (batched-delta atomics and state checks vs plain increments);
// with a small batch it folds the region lifecycle in, so the owned
// side also pays Acquire's barrier sweep and Release's flush per batch.
func ownAllocShared(batch int) ownBody {
	return func(a *rcgo.Arena, iters int) error {
		r := a.NewRegion()
		var prev *rcgo.Obj[abNode]
		n := 0
		for i := 0; i < iters; i++ {
			o := rcgo.Alloc[abNode](r)
			rcgo.MustSetSame(o, &o.Value.next, prev)
			prev = o
			if n++; n == batch {
				prev = nil
				if err := r.Delete(); err != nil {
					return err
				}
				r = a.NewRegion()
				n = 0
			}
		}
		return r.Delete()
	}
}

func ownAllocOwned(batch int) ownBody {
	return func(a *rcgo.Arena, iters int) error {
		own, err := a.NewRegion().TryAcquire()
		if err != nil {
			return err
		}
		var prev *rcgo.Obj[abNode]
		n := 0
		for i := 0; i < iters; i++ {
			o := rcgo.AllocOwned[abNode](own)
			if err := rcgo.SetSameOwned(own, o, &o.Value.next, prev); err != nil {
				return err
			}
			prev = o
			if n++; n == batch {
				prev = nil
				if err := own.Delete(); err != nil {
					return err
				}
				if own, err = a.NewRegion().TryAcquire(); err != nil {
					return err
				}
				n = 0
			}
		}
		return own.Delete()
	}
}

// ownSetRefShared / ownSetRefOwned: the counted-store loop — a private
// holder stores references to two objects in an external region,
// alternating so every store displaces the previous reference (one
// incRC and one decRC per operation on both sides). The owned side
// saves the holder-side shard lock and state re-check, not the
// target-side atomics.
func ownSetRefShared(a *rcgo.Arena, iters int) error {
	tr := a.NewRegion()
	t0, t1 := rcgo.Alloc[abNode](tr), rcgo.Alloc[abNode](tr)
	hr := a.NewRegion()
	h := rcgo.Alloc[abNode](hr)
	for i := 0; i < iters; i++ {
		t := t0
		if i&1 == 1 {
			t = t1
		}
		if err := rcgo.SetRef(h, &h.Value.next, t); err != nil {
			return err
		}
	}
	if err := rcgo.SetRef(h, &h.Value.next, nil); err != nil {
		return err
	}
	if err := hr.Delete(); err != nil {
		return err
	}
	return tr.Delete()
}

func ownSetRefOwned(a *rcgo.Arena, iters int) error {
	tr := a.NewRegion()
	t0, t1 := rcgo.Alloc[abNode](tr), rcgo.Alloc[abNode](tr)
	own, err := a.NewRegion().TryAcquire()
	if err != nil {
		return err
	}
	h, err := rcgo.TryAllocOwned[abNode](own)
	if err != nil {
		return err
	}
	for i := 0; i < iters; i++ {
		t := t0
		if i&1 == 1 {
			t = t1
		}
		if err := rcgo.SetRefOwned(own, h, &h.Value.next, t); err != nil {
			return err
		}
	}
	if err := rcgo.SetRefOwned(own, h, &h.Value.next, nil); err != nil {
		return err
	}
	if err := own.Delete(); err != nil {
		return err
	}
	return tr.Delete()
}

// measureOwn times one side of one scenario once: workers goroutines
// each running iters operations against private regions of one arena,
// wall-clocked with the GC quiesced.
func measureOwn(workers, iters int, body ownBody) (float64, error) {
	a := rcgo.NewArena()
	runtime.GC()
	oldGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(oldGC)
	errs := make(chan error, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := body(a, iters); err != nil {
				errs <- err
			}
		}()
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(elapsed.Nanoseconds()) / float64(workers*iters), nil
}

// OwnAB runs the interleaved A/B ownership benchmarks at the given
// GOMAXPROCS over bestOf rounds per scenario: the build loop with a
// long-lived region (per-op cost), the build loop with a short batch
// (region lifecycle folded in, including Acquire/Release per batch),
// and the counted-store loop against an external shared target.
func OwnAB(cpu, bestOf int) ([]OwnershipReport, error) {
	if bestOf <= 0 {
		bestOf = 10
	}
	if cpu <= 0 {
		cpu = 2
	}
	scenarios := []struct {
		name string
		// iters is per-worker operation count, sized like the fabric
		// A/B: one run in the low-hundreds of milliseconds.
		iters  int
		shared ownBody
		owned  ownBody
	}{
		{"own-alloc-setsame", 150000, ownAllocShared(8192), ownAllocOwned(8192)},
		{"own-build-delete", 120000, ownAllocShared(8), ownAllocOwned(8)},
		{"own-setref", 80000, ownSetRefShared, ownSetRefOwned},
	}
	prev := runtime.GOMAXPROCS(cpu)
	defer runtime.GOMAXPROCS(prev)
	var out []OwnershipReport
	for _, sc := range scenarios {
		rep := OwnershipReport{Name: sc.name, CPU: cpu, BestOf: bestOf}
		// Unrecorded warmup of each side (see FabricAB).
		if _, err := measureOwn(cpu, sc.iters/4, sc.shared); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		if _, err := measureOwn(cpu, sc.iters/4, sc.owned); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		var deltas []float64
		for i := 0; i < bestOf; i++ {
			var slow, fast float64
			var err error
			// ABBA: alternate which side runs first so a systematic
			// first-runner advantage (or penalty) cancels across rounds.
			if i%2 == 0 {
				if slow, err = measureOwn(cpu, sc.iters, sc.shared); err == nil {
					fast, err = measureOwn(cpu, sc.iters, sc.owned)
				}
			} else {
				if fast, err = measureOwn(cpu, sc.iters, sc.owned); err == nil {
					slow, err = measureOwn(cpu, sc.iters, sc.shared)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sc.name, err)
			}
			if rep.BaselineNs == 0 || slow < rep.BaselineNs {
				rep.BaselineNs = slow
			}
			if rep.NsPerOp == 0 || fast < rep.NsPerOp {
				rep.NsPerOp = fast
			}
			deltas = append(deltas, 100*(slow-fast)/slow)
		}
		sort.Float64s(deltas)
		if n := len(deltas); n%2 == 1 {
			rep.DeltaPct = deltas[n/2]
		} else {
			rep.DeltaPct = (deltas[n/2-1] + deltas[n/2]) / 2
		}
		out = append(out, rep)
	}
	return out, nil
}

// PrintOwnAB renders the ownership A/B cells as a small table.
func PrintOwnAB(w io.Writer, reps []OwnershipReport) {
	fmt.Fprintf(w, "%-24s %4s %7s %12s %12s %8s\n",
		"scenario", "cpu", "best-of", "shared ns", "owned ns", "delta")
	for _, r := range reps {
		fmt.Fprintf(w, "%-24s %4d %7d %12.1f %12.1f %+7.1f%%\n",
			r.Name, r.CPU, r.BestOf, r.BaselineNs, r.NsPerOp, r.DeltaPct)
	}
}
