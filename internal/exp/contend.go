package exp

// Interleaved A/B benchmarking of blocking ownership acquisition
// (Region.AcquireContext, region_owner.go). Two questions, one cell
// each:
//
//   - acquire-fastpath: what does the context-aware entry point cost
//     when the region is free? Both sides run a single uncontended
//     worker acquiring and releasing one hub region; the baseline goes
//     through TryAcquire, the treatment through AcquireContext with a
//     background context. The delta is the price of the cancellation
//     pre-check and the extra call frame — it should be near zero.
//
//   - contend-handoff: what does a FIFO hand-off cost? The baseline is
//     the same single-worker TryAcquire/Release spin (the uncontended
//     token cycle); the treatment storms the hub with GOMAXPROCS
//     workers through AcquireContext, so nearly every acquisition is a
//     parked waiter woken by the releasing owner's direct hand-off.
//     The delta is strongly negative by design: it quantifies the
//     goroutine wake + channel transfer that blocking acquisition
//     pays per hand-off, the number DESIGN.md §15 tells operators to
//     budget for.
//
// Methodology: identical to the ownership A/B (own.go) — fixed-work
// wall-clocked rounds with the GC quiesced, ABBA ordering, per-side
// minima, and DeltaPct as the median of per-round paired deltas.
//
// cmd/rcbench exposes this as -contend-ab and records the cells in the
// rcgo.bench/1 "contention" section (BENCH_pr9_contention.json).

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"rcgo"
)

// ContentionReport is one interleaved A/B contention benchmark cell:
// the scenario timed at the given GOMAXPROCS through the uncontended
// baseline (baseline_ns_op) and the treatment side (ns_op), over
// best_of ABBA-ordered rounds.
type ContentionReport struct {
	Name   string `json:"name"`
	CPU    int    `json:"cpu"`
	BestOf int    `json:"best_of"`
	// BaselineNs is the minimum ns per acquisition across rounds on the
	// baseline side; NsPerOp is the same on the treatment side.
	BaselineNs float64 `json:"baseline_ns_op"`
	NsPerOp    float64 `json:"ns_op"`
	// DeltaPct is the median across rounds of the per-round paired
	// improvement, (baseline - treatment) / baseline * 100. For the
	// hand-off cell this is negative: contended acquisition is slower
	// than the uncontended cycle, and the magnitude is the point.
	DeltaPct float64 `json:"delta_pct"`
}

// contendBody is one worker's share of a scenario: iters acquire/release
// cycles against the shared hub region.
type contendBody func(hub *rcgo.Region, iters int) error

// contendTry is the uncontended baseline cycle. It is only ever run
// single-worker, so TryAcquire cannot lose a race and every error is
// real.
func contendTry(hub *rcgo.Region, iters int) error {
	for i := 0; i < iters; i++ {
		own, err := hub.TryAcquire()
		if err != nil {
			return err
		}
		if err := own.Release(); err != nil {
			return err
		}
	}
	return nil
}

// contendCtx is the blocking cycle: with one worker it exercises
// AcquireContext's uncontended fast path, with many it parks on the
// wait queue and is woken by the previous owner's hand-off.
func contendCtx(hub *rcgo.Region, iters int) error {
	ctx := context.Background()
	for i := 0; i < iters; i++ {
		own, err := hub.AcquireContext(ctx)
		if err != nil {
			return err
		}
		if err := own.Release(); err != nil {
			return err
		}
	}
	return nil
}

// measureContend times one side of one scenario once: workers
// goroutines sharing one hub region, totalIters acquisitions split
// evenly between them, wall-clocked with the GC quiesced.
func measureContend(workers, totalIters int, body contendBody) (float64, error) {
	a := rcgo.NewArena()
	hub := a.NewRegion()
	runtime.GC()
	oldGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(oldGC)
	per := totalIters / workers
	errs := make(chan error, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := body(hub, per); err != nil {
				errs <- err
			}
		}()
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	if err := hub.Delete(); err != nil {
		return 0, err
	}
	return float64(elapsed.Nanoseconds()) / float64(workers*per), nil
}

// ContendAB runs the interleaved A/B contention benchmarks at the given
// GOMAXPROCS over bestOf rounds per scenario.
func ContendAB(cpu, bestOf int) ([]ContentionReport, error) {
	if bestOf <= 0 {
		bestOf = 10
	}
	if cpu <= 1 {
		cpu = 2 // the hand-off cell needs at least two contenders
	}
	scenarios := []struct {
		name string
		// iters is the total acquisition count per run, sized like the
		// ownership A/B: one run in the low-hundreds of milliseconds.
		// Hand-offs cost microseconds each, so the contended cell runs
		// far fewer cycles than the uncontended one.
		iters       int
		baseWorkers int
		base        contendBody
		workers     int
		treat       contendBody
	}{
		{"acquire-fastpath", 400000, 1, contendTry, 1, contendCtx},
		{"contend-handoff", 60000, 1, contendTry, cpu, contendCtx},
	}
	prev := runtime.GOMAXPROCS(cpu)
	defer runtime.GOMAXPROCS(prev)
	var out []ContentionReport
	for _, sc := range scenarios {
		rep := ContentionReport{Name: sc.name, CPU: cpu, BestOf: bestOf}
		// Unrecorded warmup of each side (see OwnAB).
		if _, err := measureContend(sc.baseWorkers, sc.iters/4, sc.base); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		if _, err := measureContend(sc.workers, sc.iters/4, sc.treat); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		var deltas []float64
		for i := 0; i < bestOf; i++ {
			var slow, fast float64
			var err error
			// ABBA: alternate which side runs first so a systematic
			// first-runner advantage (or penalty) cancels across rounds.
			if i%2 == 0 {
				if slow, err = measureContend(sc.baseWorkers, sc.iters, sc.base); err == nil {
					fast, err = measureContend(sc.workers, sc.iters, sc.treat)
				}
			} else {
				if fast, err = measureContend(sc.workers, sc.iters, sc.treat); err == nil {
					slow, err = measureContend(sc.baseWorkers, sc.iters, sc.base)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sc.name, err)
			}
			if rep.BaselineNs == 0 || slow < rep.BaselineNs {
				rep.BaselineNs = slow
			}
			if rep.NsPerOp == 0 || fast < rep.NsPerOp {
				rep.NsPerOp = fast
			}
			deltas = append(deltas, 100*(slow-fast)/slow)
		}
		sort.Float64s(deltas)
		if n := len(deltas); n%2 == 1 {
			rep.DeltaPct = deltas[n/2]
		} else {
			rep.DeltaPct = (deltas[n/2-1] + deltas[n/2]) / 2
		}
		out = append(out, rep)
	}
	return out, nil
}

// PrintContendAB renders the contention A/B cells as a small table.
func PrintContendAB(w io.Writer, reps []ContentionReport) {
	fmt.Fprintf(w, "%-24s %4s %7s %12s %12s %8s\n",
		"scenario", "cpu", "best-of", "baseline ns", "treated ns", "delta")
	for _, r := range reps {
		fmt.Fprintf(w, "%-24s %4d %7d %12.1f %12.1f %+7.1f%%\n",
			r.Name, r.CPU, r.BestOf, r.BaselineNs, r.NsPerOp, r.DeltaPct)
	}
}
