package exp

// Machine-readable benchmark results for cmd/rcbench -json. The schema
// is versioned so recorded trajectory files (BENCH_*.json) stay
// comparable across runs: consumers must check Schema before reading
// any other field, and additions bump the minor suffix only when a
// field changes meaning. cmd/benchlint validates the invariants below
// (see its source for the exact rules); `make bench-smoke` runs a tiny
// rcbench -json through it.

import (
	"fmt"

	"rcgo"
)

// BenchSchema identifies the report layout. Format: "rcgo.bench/<n>".
const BenchSchema = "rcgo.bench/1"

// BenchOptions echoes the options the report was produced under, so a
// recorded file is self-describing.
type BenchOptions struct {
	// Scale is the workload scale override (0 = per-workload defaults).
	Scale int `json:"scale"`
	// Reps is the number of timed runs per configuration; sim_ns is
	// deterministic, wall_ns is the best of the reps.
	Reps int `json:"reps"`
}

// WorkloadReport is one workload's cells: the RC configuration's
// deterministic simulated time and operation counters, with the norc
// configuration as the overhead baseline.
type WorkloadReport struct {
	Name string `json:"name"`
	// SimNanos is the deterministic simulated execution time of the RC
	// configuration (the paper's primary comparison axis).
	SimNanos int64 `json:"sim_ns"`
	// WallNanos is the best wall-clock time across reps (noisy,
	// secondary).
	WallNanos int64 `json:"wall_ns"`
	// BaselineSimNanos is the norc configuration's simulated time.
	BaselineSimNanos int64 `json:"baseline_sim_ns"`
	// RCOverheadPct is (sim - baseline) / sim * 100, Table 2's RC column.
	RCOverheadPct float64 `json:"rc_overhead_pct"`

	// Operation counters from the RC run (Table 1 / Table 2 / Figure 9
	// inputs).
	Allocs          int64 `json:"allocs"`
	RCIncrements    int64 `json:"rc_increments"`
	RCDecrements    int64 `json:"rc_decrements"`
	FullUpdates     int64 `json:"full_updates"`
	SameChecks      int64 `json:"same_checks"`
	TradChecks      int64 `json:"trad_checks"`
	ParentChecks    int64 `json:"parent_checks"`
	UncheckedStores int64 `json:"unchecked_stores"`
	PinOps          int64 `json:"pin_ops"`
	UnscanWords     int64 `json:"unscan_words"`
	UnscanNanos     int64 `json:"unscan_ns"`
}

// Stores is the total pointer-assignment count of the report (Figure
// 9's denominator).
func (r *WorkloadReport) Stores() int64 {
	return r.UncheckedStores + r.SameChecks + r.TradChecks + r.ParentChecks + r.FullUpdates
}

// BenchReport is the top-level rcbench -json document.
type BenchReport struct {
	Schema    string           `json:"schema"`
	Options   BenchOptions     `json:"options"`
	Workloads []WorkloadReport `json:"workloads"`
	// Parallel is the optional interleaved A/B section over the
	// Go-native allocation fast path (rcbench -alloc-ab, parallel.go);
	// absent from workload-only reports, so older recorded files stay
	// valid under the same schema.
	Parallel []ParallelReport `json:"parallel,omitempty"`
	// Fabric is the optional interleaved A/B section over the arena's
	// sharding fabric (rcbench -fabric-ab, fabric.go): single-shard
	// baseline against a multi-shard fabric under a live multi-region
	// population. Optional for the same reason as Parallel.
	Fabric []FabricReport `json:"fabric,omitempty"`
	// Advisor is the optional interleaved A/B section over the
	// annotation advisor's gate (rcbench -advisor-ab, advise.go):
	// advisor disarmed (the default configuration, whose cost bound is
	// the point) against armed-from-birth profiling. Optional for the
	// same reason as Parallel.
	Advisor []AdvisorBenchReport `json:"advisor,omitempty"`
	// Ownership is the optional interleaved A/B section over the
	// exclusive-ownership fast path (rcbench -own-ab, own.go): the
	// shared-path API against the same work through an Owner token.
	// Optional for the same reason as Parallel.
	Ownership []OwnershipReport `json:"ownership,omitempty"`
	// Contention is the optional interleaved A/B section over blocking
	// ownership acquisition (rcbench -contend-ab, contend.go): the
	// uncontended TryAcquire cycle against AcquireContext, first on the
	// fast path and then under a many-worker hand-off storm. Optional
	// for the same reason as Parallel.
	Contention []ContentionReport `json:"contention,omitempty"`
	// Slab is the optional interleaved A/B section over the off-heap
	// slab backing store (rcbench -slab-ab, slab.go): GC-heap object
	// chunks against rcgo.WithOffHeapSlabs, including a GC-pressure
	// cell with the collector live. Optional for the same reason as
	// Parallel.
	Slab []SlabReport `json:"slab,omitempty"`
}

// BenchJSON runs every selected workload under the RC and norc
// configurations and assembles the machine-readable report.
func BenchJSON(o Options) (*BenchReport, error) {
	report := &BenchReport{
		Schema:  BenchSchema,
		Options: BenchOptions{Scale: o.Scale, Reps: o.reps()},
	}
	for _, w := range o.list() {
		c, err := compileAll(w, o.Scale, rcgo.ModeInf, rcgo.ModeNoRC)
		if err != nil {
			return nil, err
		}
		wall, res, err := timeRun(c.prog[rcgo.ModeInf], rcgo.RunConfig{}, o.reps())
		if err != nil {
			return nil, fmt.Errorf("%s/rc: %w", w.Name, err)
		}
		norc, err := rcgo.Run(c.prog[rcgo.ModeNoRC], rcgo.RunConfig{})
		if err != nil {
			return nil, fmt.Errorf("%s/norc: %w", w.Name, err)
		}
		st := res.Region
		wr := WorkloadReport{
			Name:             w.Name,
			SimNanos:         int64(simTime(res)),
			WallNanos:        int64(wall),
			BaselineSimNanos: int64(simTime(norc)),
			Allocs:           st.Allocs,
			RCIncrements:     st.RCIncrements,
			RCDecrements:     st.RCDecrements,
			FullUpdates:      st.FullUpdates,
			SameChecks:       st.SameChecks,
			TradChecks:       st.TradChecks,
			ParentChecks:     st.ParentChecks,
			UncheckedStores:  st.UncheckedPtrs,
			PinOps:           st.PinOps,
			UnscanWords:      st.UnscanWords,
			UnscanNanos:      int64(simUnscanTime(res)),
		}
		if wr.SimNanos > 0 {
			wr.RCOverheadPct = 100 * float64(wr.SimNanos-wr.BaselineSimNanos) / float64(wr.SimNanos)
		}
		report.Workloads = append(report.Workloads, wr)
	}
	return report, nil
}
