package exp

// The annotation advisor's experiment harness (DESIGN.md §13): an
// interleaved disarmed-vs-armed A/B over the parallel store benchmarks
// — the measured cost of rcgo.WithAdvisor, recorded in the rcgo.bench/1
// "advisor" section — and a Go-native replay of the grobner op mix with
// every store deliberately un-annotated (SetRef), which the advisor
// must profile back into upgrade candidates. cmd/rcbench exposes the
// replay as -advise (non-zero exit when no candidate is found, the
// `make advise-smoke` gate) and the A/B as -advisor-ab
// (EXPERIMENTS.md §"Annotation advisor").

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"rcgo"
)

// AdvisorBenchReport is one interleaved A/B advisor benchmark cell: the
// scenario timed at the given GOMAXPROCS with the advisor disarmed
// (baseline_ns_op, the default configuration) and armed from birth
// (ns_op), best of best_of runs per side.
type AdvisorBenchReport struct {
	Name   string `json:"name"`
	CPU    int    `json:"cpu"`
	BestOf int    `json:"best_of"`
	// BaselineNs is ns/op with the advisor disarmed; NsPerOp is with
	// WithAdvisor armed from birth.
	BaselineNs float64 `json:"baseline_ns_op"`
	NsPerOp    float64 `json:"ns_op"`
	// OverheadPct is the armed side's cost, (armed - disarmed) /
	// disarmed * 100 — positive when profiling costs time, which it
	// does (a two-frame stack walk per store).
	OverheadPct float64 `json:"overhead_pct"`
}

// advNode carries one slot per store flavour, like the parallel
// benchmark node in bench_test.go.
type advNode struct {
	next  rcgo.Ref[advNode] // sameregion link
	cross rcgo.Ref[advNode] // counted link
	conf  rcgo.Ref[advNode] // traditional link
	up    rcgo.Ref[advNode] // parentptr link
}

// measureAdvisor times one side of one scenario under
// testing.Benchmark: every P hammers annotated sameregion stores
// (scenario "setsame", the fast path the <5% disarmed bound guards) or
// counted cross-region stores (scenario "setref").
func measureAdvisor(armed bool, scenario string) (float64, error) {
	var opts []rcgo.Option
	if armed {
		opts = append(opts, rcgo.WithAdvisor())
	}
	res := testing.Benchmark(func(b *testing.B) {
		a := rcgo.NewArena(opts...)
		switch scenario {
		case "setsame":
			r := a.NewRegion()
			b.RunParallel(func(pb *testing.PB) {
				h := rcgo.Alloc[advNode](r)
				v := rcgo.Alloc[advNode](r)
				for pb.Next() {
					rcgo.MustSetSame(h, &h.Value.next, v)
				}
			})
		case "setref":
			shared := a.NewRegion()
			target := rcgo.Alloc[advNode](shared)
			b.RunParallel(func(pb *testing.PB) {
				h := rcgo.Alloc[advNode](a.NewRegion())
				clear := false
				for pb.Next() {
					if clear {
						rcgo.MustSetRef(h, &h.Value.cross, nil)
					} else {
						rcgo.MustSetRef(h, &h.Value.cross, target)
					}
					clear = !clear
				}
			})
		default:
			b.Fatalf("unknown scenario %q", scenario)
		}
	})
	if res.N == 0 {
		return 0, fmt.Errorf("benchmark failed (armed=%v, scenario=%s)", armed, scenario)
	}
	return float64(res.T.Nanoseconds()) / float64(res.N), nil
}

// AdvisorAB runs the interleaved disarmed-vs-armed advisor benchmarks
// at the given GOMAXPROCS, best of bestOf runs per side, in strict
// A, B, A, B alternation so drift hits both sides equally (the
// convention of AllocAB and the paper's best-of runs).
func AdvisorAB(cpu, bestOf int) ([]AdvisorBenchReport, error) {
	if bestOf <= 0 {
		bestOf = 10
	}
	if cpu <= 0 {
		cpu = 8
	}
	prev := runtime.GOMAXPROCS(cpu)
	defer runtime.GOMAXPROCS(prev)
	var out []AdvisorBenchReport
	for _, sc := range []string{"setsame", "setref"} {
		rep := AdvisorBenchReport{Name: "parallel-" + sc, CPU: cpu, BestOf: bestOf}
		for i := 0; i < bestOf; i++ {
			off, err := measureAdvisor(false, sc)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", rep.Name, err)
			}
			on, err := measureAdvisor(true, sc)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", rep.Name, err)
			}
			if rep.BaselineNs == 0 || off < rep.BaselineNs {
				rep.BaselineNs = off
			}
			if rep.NsPerOp == 0 || on < rep.NsPerOp {
				rep.NsPerOp = on
			}
		}
		rep.OverheadPct = 100 * (rep.NsPerOp - rep.BaselineNs) / rep.BaselineNs
		out = append(out, rep)
	}
	return out, nil
}

// PrintAdvisorAB renders the A/B cells as a small table.
func PrintAdvisorAB(w io.Writer, reps []AdvisorBenchReport) {
	fmt.Fprintf(w, "%-20s %6s %8s %14s %14s %10s\n",
		"scenario", "cpu", "best-of", "disarmed ns/op", "armed ns/op", "overhead")
	for _, r := range reps {
		fmt.Fprintf(w, "%-20s %6d %8d %14.2f %14.2f %+9.1f%%\n",
			r.Name, r.CPU, r.BestOf, r.BaselineNs, r.NsPerOp, r.OverheadPct)
	}
}

// AdviseReplay replays the grobner workload's op mix through the
// Go-native API with every store deliberately un-annotated — each one
// a counted SetRef, the conservative choice a porter makes before
// thinking about flavours — on an advisor-armed arena, and returns the
// profile. grobner's measured stores-per-allocation ratio sets how many
// stores ride on each allocation, so the replay carries the workload's
// real mix rather than an invented one. The replay's call sites are
// upgradeable by construction:
//
//   - the linking store targets the holder's own region → SetSame
//   - the config store targets the traditional region → SetTrad
//   - the uplink store targets the parent region → SetParent
//
// plus one correctly annotated SetSame site as a keep-as-is control.
// A report without upgrade candidates means the advisor lost the
// lattice, and rcbench -advise exits non-zero (`make advise-smoke`).
func AdviseReplay(allocs int) (rcgo.AdvisorReport, error) {
	if allocs <= 0 {
		allocs = 20000
	}
	storesPerAlloc, err := workloadStoresPerAlloc("grobner", 2)
	if err != nil {
		return rcgo.AdvisorReport{}, err
	}
	if storesPerAlloc < 1 {
		storesPerAlloc = 1
	}

	a := rcgo.NewArena(rcgo.WithAdvisor())
	conf := rcgo.Alloc[advNode](a.Traditional())
	parent := a.NewRegion()
	up := rcgo.Alloc[advNode](parent)

	r := parent.NewSubregion()
	var prev *rcgo.Obj[advNode]
	n := 0
	for i := 0; i < allocs; i++ {
		o := rcgo.Alloc[advNode](r)
		for s := 0; s < storesPerAlloc; s++ {
			// Un-annotated same-region link: upgradeable to SetSame.
			if err := rcgo.SetRef(o, &o.Value.next, prev); err != nil {
				return rcgo.AdvisorReport{}, err
			}
		}
		// Un-annotated store of the shared config: upgradeable to
		// SetTrad, and every one pays a real rc update pair.
		if err := rcgo.SetRef(o, &o.Value.conf, conf); err != nil {
			return rcgo.AdvisorReport{}, err
		}
		// Un-annotated uplink into the parent region: upgradeable to
		// SetParent, also paying rc updates.
		if err := rcgo.SetRef(o, &o.Value.up, up); err != nil {
			return rcgo.AdvisorReport{}, err
		}
		// The control: a correctly annotated sameregion store the
		// report must list as keep-as-is.
		if err := rcgo.SetSame(o, &o.Value.cross, o); err != nil {
			return rcgo.AdvisorReport{}, err
		}
		prev = o
		if n++; n == 8192 {
			prev = nil
			r.DeleteDeferred()
			r = parent.NewSubregion()
			n = 0
		}
	}
	r.DeleteDeferred()
	return a.AdvisorReport(), nil
}
