package exp

// Interleaved A/B benchmarking of the off-heap slab backing store
// (region_slab.go, internal/slab). Each scenario executes identical
// logical work twice: once with ordinary GC-heap object chunks (the
// default arena) and once with rcgo.WithOffHeapSlabs, where pointer-
// free payload chunks are carved from mmap-backed slab pages and
// returned to the store the moment the region is deleted.
//
// Two kinds of cells:
//
//   - Throughput cells follow the house methodology exactly (fabric.go,
//     own.go): fixed-work wall-clocked rounds with the GC quiesced,
//     ABBA ordering, per-side minima, DeltaPct as the median of
//     per-round paired deltas. They answer "what does the slab path
//     cost per allocation?" — the acceptance bound is that the alloc
//     fast path stays within a few percent of the heap-chunk baseline.
//   - The GC-pressure cell deliberately leaves the GC ON — it exists to
//     measure what the other cells quiesce away. Both sides run the
//     same build/delete volume while runtime.ReadMemStats brackets the
//     run; the cell records the cumulative GC-heap allocation bytes
//     (the memory the collector must eventually scan and sweep) and
//     the cumulative GC pause total per side. With slabs on, payload
//     chunks never touch the GC heap, so both numbers must drop — the
//     paper's reclaim-at-delete argument made measurable.
//
// cmd/rcbench exposes this as -slab-ab and records the cells in the
// rcgo.bench/1 "slab" section (BENCH_pr10_slab.json).

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"rcgo"
)

// slabBench is the A/B payload: pointer-free, so the slab side's
// admission gate (the pointer-safety contract's first clause) routes
// its chunks to the backing store. Six words — a realistic small record.
type slabBench struct {
	K, V    int64
	Payload [4]int64
}

// SlabReport is one slab A/B cell. The throughput cells carry the usual
// timing triple; the GC-pressure cell additionally carries the per-side
// runtime.ReadMemStats deltas summed over its rounds (zero on the
// throughput cells, whose GC is quiesced).
type SlabReport struct {
	Name   string `json:"name"`
	CPU    int    `json:"cpu"`
	BestOf int    `json:"best_of"`
	// BaselineNs is the minimum ns/op with GC-heap chunks across
	// rounds; NsPerOp is the same with the slab store attached.
	BaselineNs float64 `json:"baseline_ns_op"`
	NsPerOp    float64 `json:"ns_op"`
	// DeltaPct is the median across rounds of the per-round paired
	// improvement, (heap - slab) / heap * 100.
	DeltaPct float64 `json:"delta_pct"`
	// HeapBytes / SlabHeapBytes: cumulative GC-heap allocation
	// (MemStats.TotalAlloc delta) per side over the cell's rounds — the
	// bytes the collector must scan and sweep. GC-pressure cell only.
	HeapBytes     int64 `json:"baseline_heap_bytes,omitempty"`
	SlabHeapBytes int64 `json:"heap_bytes,omitempty"`
	// GCPauseNs / SlabGCPauseNs: cumulative stop-the-world pause time
	// (MemStats.PauseTotalNs delta) per side. GC-pressure cell only.
	GCPauseNs     int64 `json:"baseline_gc_pause_ns,omitempty"`
	SlabGCPauseNs int64 `json:"gc_pause_ns,omitempty"`
	// NumGC / SlabNumGC: collection cycles per side. GC-pressure cell
	// only.
	NumGC     int64 `json:"baseline_num_gc,omitempty"`
	SlabNumGC int64 `json:"num_gc,omitempty"`
}

// slabGCDelta is one side's ReadMemStats bracket.
type slabGCDelta struct {
	heapBytes int64
	pauseNs   int64
	numGC     int64
}

// measureSlab times one side of one scenario once: workers goroutines
// each running iters build-batch-delete operations against private
// regions of one arena (slab-backed when bs is non-nil; the store is
// shared across rounds so its page free lists stay as warm as the Go
// heap the baseline side reuses). With gcOn false the GC is quiesced
// like every other throughput cell; with gcOn true the collector runs
// free and the MemStats bracket is returned.
func measureSlab(workers, iters, batch int, bs rcgo.BackingStore, gcOn bool) (float64, slabGCDelta, error) {
	var opts []rcgo.Option
	if bs != nil {
		opts = append(opts, rcgo.WithBackingStore(bs))
	}
	a := rcgo.NewArena(opts...)
	runtime.GC()
	if !gcOn {
		oldGC := debug.SetGCPercent(-1)
		defer debug.SetGCPercent(oldGC)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)

	errs := make(chan error, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			r := a.NewRegion()
			n := 0
			for i := 0; i < iters; i++ {
				o := rcgo.Alloc[slabBench](r)
				o.Value.K, o.Value.V = int64(i), int64(n)
				if n++; n == batch {
					if err := r.Delete(); err != nil {
						errs <- err
						return
					}
					r = a.NewRegion()
					n = 0
				}
			}
			if err := r.Delete(); err != nil {
				errs <- err
			}
		}()
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	select {
	case err := <-errs:
		return 0, slabGCDelta{}, err
	default:
	}
	d := slabGCDelta{
		heapBytes: int64(m1.TotalAlloc - m0.TotalAlloc),
		pauseNs:   int64(m1.PauseTotalNs - m0.PauseTotalNs),
		numGC:     int64(m1.NumGC - m0.NumGC),
	}
	return float64(elapsed.Nanoseconds()) / float64(workers*iters), d, nil
}

// SlabAB runs the interleaved A/B slab benchmarks at the given
// GOMAXPROCS over bestOf rounds per scenario: the alloc fast path with
// a long-lived region (per-op cost, where the slab side must stay
// within a few percent of heap chunks), the build/delete loop with a
// short batch (carve and page-return folded in — the slab side's
// reclaim-at-delete actually runs per batch), and the GC-pressure cell
// with the collector live.
func SlabAB(cpu, bestOf int) ([]SlabReport, error) {
	if bestOf <= 0 {
		bestOf = 10
	}
	if cpu <= 0 {
		cpu = 2
	}
	scenarios := []struct {
		name string
		// iters is per-worker operation count, sized like the other
		// A/Bs: one run in the low-hundreds of milliseconds.
		iters int
		batch int
		gcOn  bool
	}{
		{"slab-alloc", 200000, 1 << 20, false},
		{"slab-build-delete", 150000, 64, false},
		{"slab-gc-pressure", 150000, 64, true},
	}
	prev := runtime.GOMAXPROCS(cpu)
	defer runtime.GOMAXPROCS(prev)
	var out []SlabReport
	for _, sc := range scenarios {
		rep := SlabReport{Name: sc.name, CPU: cpu, BestOf: bestOf}
		// One store for the scenario's slab rounds: pages freed by each
		// round's deletes recycle into the next round, so the slab side
		// is not charged a cold mmap-and-fault per round the heap side's
		// warm runtime spans never pay.
		store := rcgo.NewSlabStore()
		// Unrecorded warmup of each side (see FabricAB).
		if _, _, err := measureSlab(cpu, sc.iters/4, sc.batch, nil, sc.gcOn); err != nil {
			store.Close()
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		if _, _, err := measureSlab(cpu, sc.iters/4, sc.batch, store, sc.gcOn); err != nil {
			store.Close()
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		var deltas []float64
		for i := 0; i < bestOf; i++ {
			var slow, fast float64
			var dSlow, dFast slabGCDelta
			var err error
			// ABBA: alternate which side runs first so a systematic
			// first-runner advantage (or penalty) cancels across rounds.
			if i%2 == 0 {
				if slow, dSlow, err = measureSlab(cpu, sc.iters, sc.batch, nil, sc.gcOn); err == nil {
					fast, dFast, err = measureSlab(cpu, sc.iters, sc.batch, store, sc.gcOn)
				}
			} else {
				if fast, dFast, err = measureSlab(cpu, sc.iters, sc.batch, store, sc.gcOn); err == nil {
					slow, dSlow, err = measureSlab(cpu, sc.iters, sc.batch, nil, sc.gcOn)
				}
			}
			if err != nil {
				store.Close()
				return nil, fmt.Errorf("%s: %w", sc.name, err)
			}
			if rep.BaselineNs == 0 || slow < rep.BaselineNs {
				rep.BaselineNs = slow
			}
			if rep.NsPerOp == 0 || fast < rep.NsPerOp {
				rep.NsPerOp = fast
			}
			deltas = append(deltas, 100*(slow-fast)/slow)
			if sc.gcOn {
				// Cumulative, not best-of: pause time and heap bytes are
				// volumes; both sides run the same number of rounds so the
				// sums stay paired.
				rep.HeapBytes += dSlow.heapBytes
				rep.GCPauseNs += dSlow.pauseNs
				rep.NumGC += dSlow.numGC
				rep.SlabHeapBytes += dFast.heapBytes
				rep.SlabGCPauseNs += dFast.pauseNs
				rep.SlabNumGC += dFast.numGC
			}
		}
		store.Close()
		sort.Float64s(deltas)
		if n := len(deltas); n%2 == 1 {
			rep.DeltaPct = deltas[n/2]
		} else {
			rep.DeltaPct = (deltas[n/2-1] + deltas[n/2]) / 2
		}
		out = append(out, rep)
	}
	return out, nil
}

// PrintSlabAB renders the slab A/B cells as a small table, with the
// GC-pressure bracket on the cells that carry one.
func PrintSlabAB(w io.Writer, reps []SlabReport) {
	fmt.Fprintf(w, "%-20s %4s %7s %12s %12s %8s\n",
		"scenario", "cpu", "best-of", "heap ns", "slab ns", "delta")
	for _, r := range reps {
		fmt.Fprintf(w, "%-20s %4d %7d %12.1f %12.1f %+7.1f%%\n",
			r.Name, r.CPU, r.BestOf, r.BaselineNs, r.NsPerOp, r.DeltaPct)
		if r.NumGC != 0 || r.SlabNumGC != 0 || r.HeapBytes != 0 {
			fmt.Fprintf(w, "%-20s      heap: %d MiB allocated, %d GCs, %.2f ms paused; slab: %d MiB, %d GCs, %.2f ms\n",
				"", r.HeapBytes>>20, r.NumGC, float64(r.GCPauseNs)/1e6,
				r.SlabHeapBytes>>20, r.SlabNumGC, float64(r.SlabGCPauseNs)/1e6)
		}
	}
}
