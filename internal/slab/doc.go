// Package slab provides off-GC-heap slab arenas for the Go-native
// region runtime's backing store (rcgo.WithOffHeapSlabs).
//
// The paper's RC runtime owns its pages: allocation carves objects out
// of 8 KiB region-owned blocks, and deleting a region returns its
// blocks to the allocator immediately. This package is the Go-side
// analogue of that page layer, following internal/alloc's segregated
// free-list discipline: a Store maps large anonymous segments with
// mmap (on platforms that have it; a GC-heap []byte backend is the
// portability fallback, also selectable with Config.ForceHeap), carves
// them into power-of-two size-class blocks (8/16/32/64 KiB), and
// recycles freed blocks through per-class free lists. Blocks handed
// out of the Store live outside the collected heap, so the GC never
// scans region payloads and Free really does return the memory for
// immediate reuse.
//
// Contract with callers (rcgo's pointer-safety contract, DESIGN.md
// §16, builds on this):
//
//   - A block returned by Alloc is zeroed and at least 8 KiB-aligned.
//   - Free(p, size) must be called at most once per Alloc with the
//     same size; the Store does not detect double frees.
//   - Memory inside a block is invisible to the garbage collector.
//     Callers must not store the only reference to a Go heap object
//     inside a block; anything a block points at must be kept alive by
//     GC-visible references elsewhere.
//   - Close unmaps every segment (idempotently); all outstanding
//     blocks become invalid at once.
//
// Error conditions carry errors.Is-able sentinels: ErrMapFailed wraps
// the OS error when mapping a segment fails, ErrExhausted reports the
// Config.MaxBytes budget is spent, ErrClosed reports allocation from a
// closed store, and ErrTooLarge rejects requests above the largest
// size class. Callers that can fall back to ordinary GC-heap
// allocation (rcgo does) treat all four as "use the fallback".
package slab
