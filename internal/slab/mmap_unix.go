//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package slab

import "syscall"

// mmapAvailable selects the anonymous-mmap segment backend on the
// platforms whose syscall package exposes Mmap with MAP_ANON.
const mmapAvailable = true

// sysMap maps one anonymous read-write segment outside the Go heap.
func sysMap(size int) ([]byte, error) {
	return syscall.Mmap(-1, 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
}

// sysUnmap returns a mapped segment to the OS.
func sysUnmap(b []byte) error { return syscall.Munmap(b) }
