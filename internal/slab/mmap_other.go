//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package slab

import "errors"

// mmapAvailable is false here: the store always takes the GC-heap
// []byte segment backend (the same path Config.ForceHeap selects), so
// the package builds and behaves identically on platforms without a
// usable syscall.Mmap — the blocks just live in pointerless heap
// slices the GC will not scan, and Close releases them to the GC
// instead of the OS.
const mmapAvailable = false

// sysMap and sysUnmap are never called when mmapAvailable is false;
// the stubs exist so the package compiles everywhere.
func sysMap(int) ([]byte, error) { return nil, errors.New("slab: mmap unavailable") }

func sysUnmap([]byte) error { return nil }
