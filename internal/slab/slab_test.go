package slab

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

// checkAccounting asserts the store invariant the rcgo auditor also
// cross-checks: carved pages partition into in-use and free, and the
// monotone alloc/free counts agree with the in-use gauge.
func checkAccounting(t *testing.T, s *Store) {
	t.Helper()
	st := s.Stats()
	if st.CarvedPages != st.InUsePages+st.FreePages {
		t.Fatalf("carved %d != in-use %d + free %d", st.CarvedPages, st.InUsePages, st.FreePages)
	}
	if st.Allocs-st.Frees != st.InUsePages {
		t.Fatalf("allocs %d - frees %d != in-use %d", st.Allocs, st.Frees, st.InUsePages)
	}
}

func TestAllocFreeRecycle(t *testing.T) {
	for _, forceHeap := range []bool{false, true} {
		t.Run(fmt.Sprintf("forceHeap=%v", forceHeap), func(t *testing.T) {
			s := New(Config{ForceHeap: forceHeap})
			defer s.Close()
			p, err := s.Alloc(8 << 10)
			if err != nil {
				t.Fatalf("Alloc: %v", err)
			}
			b := unsafe.Slice((*byte)(p), 8<<10)
			for i := range b {
				if b[i] != 0 {
					t.Fatalf("fresh block not zeroed at %d", i)
				}
			}
			b[0], b[len(b)-1] = 0xAA, 0xBB
			s.Free(p, 8<<10)
			checkAccounting(t, s)
			q, err := s.Alloc(8 << 10)
			if err != nil {
				t.Fatalf("Alloc after Free: %v", err)
			}
			if q != p {
				t.Fatalf("free list did not recycle the block: %p != %p", q, p)
			}
			b = unsafe.Slice((*byte)(q), 8<<10)
			if b[0] != 0 || b[len(b)-1] != 0 {
				t.Fatalf("recycled block not zeroed: %x %x", b[0], b[len(b)-1])
			}
			checkAccounting(t, s)
		})
	}
}

func TestClassRoundingAndAlignment(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	for _, size := range []int{1, 8 << 10, (8 << 10) + 1, 16 << 10, 64 << 10} {
		p, err := s.Alloc(size)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", size, err)
		}
		if uintptr(p)%(8<<10) != 0 {
			t.Fatalf("Alloc(%d) = %p not 8 KiB-aligned", size, p)
		}
	}
	checkAccounting(t, s)
	if _, err := s.Alloc((64 << 10) + 1); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized alloc: got %v, want ErrTooLarge", err)
	}
	if _, err := s.Alloc(0); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("zero alloc: got %v, want ErrTooLarge", err)
	}
}

func TestExhaustedUnwrapChain(t *testing.T) {
	s := New(Config{MaxBytes: 64 << 10, SegmentBytes: 64 << 10})
	defer s.Close()
	for i := 0; i < 8; i++ {
		if _, err := s.Alloc(8 << 10); err != nil {
			t.Fatalf("Alloc %d within budget: %v", i, err)
		}
	}
	_, err := s.Alloc(8 << 10)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("over budget: got %v, want ErrExhausted in the chain", err)
	}
	wrapped := fmt.Errorf("outer: %w", err)
	if !errors.Is(wrapped, ErrExhausted) {
		t.Fatalf("re-wrapped exhaustion lost the sentinel: %v", wrapped)
	}
}

func TestMapFailureUnwrapChain(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	osErr := errors.New("boom: out of address space")
	s.mapFn = func(int) ([]byte, error) { return nil, fmt.Errorf("%w: %v", ErrMapFailed, osErr) }
	_, err := s.Alloc(8 << 10)
	if !errors.Is(err, ErrMapFailed) {
		t.Fatalf("map failure: got %v, want ErrMapFailed in the chain", err)
	}
	// Heal the backend: the store must stay usable after a failed map.
	s.mapFn = s.mapSegment
	if _, err := s.Alloc(8 << 10); err != nil {
		t.Fatalf("Alloc after healed map failure: %v", err)
	}
	checkAccounting(t, s)
}

func TestCloseIdempotentAndClosedErrors(t *testing.T) {
	s := New(Config{})
	p, err := s.Alloc(8 << 10)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	if _, err := s.Alloc(8 << 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("Alloc on closed store: got %v, want ErrClosed", err)
	}
	// Free after Close must be a harmless no-op, however many times.
	s.Free(p, 8<<10)
	s.Free(p, 8<<10)
	if st := s.Stats(); st.FreePages != 0 {
		t.Fatalf("Free after Close changed accounting: %+v", st)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	s := New(Config{SegmentBytes: 256 << 10})
	defer s.Close()
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			size := classSizes[w%len(classSizes)]
			for i := 0; i < rounds; i++ {
				p, err := s.Alloc(size)
				if err != nil {
					t.Errorf("worker %d: Alloc: %v", w, err)
					return
				}
				// Touch the block: first and last byte, to catch
				// overlapping carves under the race detector.
				b := unsafe.Slice((*byte)(p), size)
				b[0], b[size-1] = byte(w), byte(i)
				s.Free(p, size)
			}
		}(w)
	}
	wg.Wait()
	checkAccounting(t, s)
	if st := s.Stats(); st.InUsePages != 0 {
		t.Fatalf("pages leaked after churn: %+v", st)
	}
}
