package slab

import (
	"errors"
	"fmt"
	"sync"
	"unsafe"
)

// Sentinel errors, wrapped (never returned bare) so callers can
// errors.Is through the chain fmt.Errorf builds.
var (
	// ErrMapFailed reports that mapping a new segment failed; the OS
	// error is in the chain behind it.
	ErrMapFailed = errors.New("slab: mapping backing memory failed")
	// ErrExhausted reports the Config.MaxBytes budget is spent.
	ErrExhausted = errors.New("slab: store byte budget exhausted")
	// ErrClosed reports an allocation from a closed store.
	ErrClosed = errors.New("slab: store closed")
	// ErrTooLarge rejects a request above the largest size class.
	ErrTooLarge = errors.New("slab: allocation exceeds the largest size class")
)

// classSizes are the block size classes, all multiples of the smallest
// so bump-carving mixed classes out of one segment keeps every block
// 8 KiB-aligned. 8 KiB is the paper's region block size; the larger
// classes exist for callers that batch more aggressively.
var classSizes = [...]int{8 << 10, 16 << 10, 32 << 10, 64 << 10}

// defaultSegmentBytes is the mapping granularity: segments are mapped
// rarely and carved often, so they are much larger than any class.
const defaultSegmentBytes = 1 << 20

// classFor returns the index of the smallest class holding size, or -1
// when no class does.
func classFor(size int) int {
	if size <= 0 {
		return -1
	}
	for i, cs := range classSizes {
		if size <= cs {
			return i
		}
	}
	return -1
}

// Config configures a Store. The zero value is ready to use: unlimited
// budget, 1 MiB segments, mmap where available.
type Config struct {
	// MaxBytes caps the total bytes of segments the store will map;
	// 0 means unlimited. Alloc fails with ErrExhausted once a refill
	// would exceed it.
	MaxBytes int64
	// SegmentBytes overrides the mapping granularity (rounded up to
	// the largest class size); 0 means the 1 MiB default. Small
	// segments exist for tests that want to exercise many map calls.
	SegmentBytes int
	// ForceHeap selects the GC-heap []byte segment backend even on
	// platforms with mmap — the same code path platforms without mmap
	// always take. Heap segments hold no pointers, so the GC still
	// never scans block contents; what ForceHeap gives up is only the
	// immediate return of memory to the OS at Close.
	ForceHeap bool
}

// segment is one mapped (or heap-allocated) region of backing memory,
// bump-carved into class blocks.
type segment struct {
	buf    []byte
	mapped bool // true: syscall-mapped, Close must munmap
	off    int  // carve cursor
}

// class is one size class: its block size and the segregated free list
// of recycled blocks.
type class struct {
	free []unsafe.Pointer
}

// Stats is a snapshot of a Store's accounting. The internal invariant
// the auditor (rcgo's slab-store-accounting rule) checks:
// CarvedPages == InUsePages + FreePages, and Allocs - Frees ==
// InUsePages, always, even mid-flight, because every transition
// happens under the store mutex.
type Stats struct {
	// Segments / MappedBytes describe the raw backing memory.
	Segments    int64 `json:"segments"`
	MappedBytes int64 `json:"mapped_bytes"`
	// CarvedPages counts blocks ever carved out of segments;
	// InUsePages and FreePages partition them.
	CarvedPages int64 `json:"carved_pages"`
	InUsePages  int64 `json:"in_use_pages"`
	FreePages   int64 `json:"free_pages"`
	// InUseBytes / FreeBytes are the byte views of the same partition.
	InUseBytes int64 `json:"in_use_bytes"`
	FreeBytes  int64 `json:"free_bytes"`
	// Maps / Allocs / Frees are monotone operation counts.
	Maps   int64 `json:"maps"`
	Allocs int64 `json:"allocs"`
	Frees  int64 `json:"frees"`
}

// Store is a slab arena: segments of off-heap memory carved into
// size-class blocks recycled through per-class free lists. All methods
// are safe for concurrent use; the store mutex is taken only on the
// block-refill edge of callers that batch (rcgo carves one 8 KiB block
// per object-chunk refill), never per object.
type Store struct {
	mu       sync.Mutex
	segBytes int
	maxBytes int64
	useMmap  bool
	closed   bool
	segs     []segment
	classes  [len(classSizes)]class
	stats    Stats

	// mapFn maps one segment; defaults to the platform backend and is
	// swappable by in-package tests to exercise the ErrMapFailed path.
	mapFn func(size int) ([]byte, error)
}

// New creates an empty store. No memory is mapped until the first
// Alloc.
func New(cfg Config) *Store {
	seg := cfg.SegmentBytes
	if seg <= 0 {
		seg = defaultSegmentBytes
	}
	if max := classSizes[len(classSizes)-1]; seg < max {
		seg = max
	}
	s := &Store{segBytes: seg, maxBytes: cfg.MaxBytes, useMmap: mmapAvailable && !cfg.ForceHeap}
	s.mapFn = s.mapSegment
	return s
}

// mapSegment obtains one segment from the configured backend.
func (s *Store) mapSegment(size int) ([]byte, error) {
	if s.useMmap {
		b, err := sysMap(size)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMapFailed, err)
		}
		return b, nil
	}
	return make([]byte, size), nil
}

// Alloc returns a zeroed block of the smallest class holding size.
// Recycled blocks are zeroed here (freshly mapped memory already is),
// so callers always see the zero-value guarantee and no stale word in
// a reused block can masquerade as a pointer.
func (s *Store) Alloc(size int) (unsafe.Pointer, error) {
	ci := classFor(size)
	if ci < 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, size)
	}
	cs := classSizes[ci]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: alloc of %d bytes", ErrClosed, size)
	}
	c := &s.classes[ci]
	if n := len(c.free); n > 0 {
		p := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		s.stats.FreePages--
		s.stats.FreeBytes -= int64(cs)
		s.stats.InUsePages++
		s.stats.InUseBytes += int64(cs)
		s.stats.Allocs++
		s.mu.Unlock()
		// Zero-on-recycle, outside the lock: the block is exclusively
		// the caller's from the moment it left the free list.
		clear(unsafe.Slice((*byte)(p), cs))
		return p, nil
	}
	p, err := s.carveLocked(cs)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.stats.CarvedPages++
	s.stats.InUsePages++
	s.stats.InUseBytes += int64(cs)
	s.stats.Allocs++
	s.mu.Unlock()
	return p, nil
}

// carveLocked bump-carves one block of cs bytes, mapping a new segment
// when the current one's remainder is too small (the remainder is
// wasted — at most one largest-class block per segment, a bounded
// price for keeping the carve a cursor bump).
func (s *Store) carveLocked(cs int) (unsafe.Pointer, error) {
	if n := len(s.segs); n > 0 {
		if seg := &s.segs[n-1]; seg.off+cs <= len(seg.buf) {
			p := unsafe.Pointer(&seg.buf[seg.off])
			seg.off += cs
			return p, nil
		}
	}
	segSize := s.segBytes
	if segSize < cs {
		segSize = cs
	}
	if s.maxBytes > 0 && s.stats.MappedBytes+int64(segSize) > s.maxBytes {
		return nil, fmt.Errorf("%w: %d of %d bytes mapped", ErrExhausted, s.stats.MappedBytes, s.maxBytes)
	}
	buf, err := s.mapFn(segSize)
	if err != nil {
		return nil, err
	}
	s.segs = append(s.segs, segment{buf: buf, mapped: s.useMmap})
	s.stats.Segments++
	s.stats.MappedBytes += int64(segSize)
	s.stats.Maps++
	seg := &s.segs[len(s.segs)-1]
	p := unsafe.Pointer(&seg.buf[0])
	seg.off = cs
	return p, nil
}

// Free returns a block to its class free list for immediate reuse.
// The size must be the one passed to Alloc. Freeing into a closed
// store is a harmless no-op (the segments are already unmapped or on
// their way); freeing nil is too.
func (s *Store) Free(p unsafe.Pointer, size int) {
	ci := classFor(size)
	if p == nil || ci < 0 {
		return
	}
	cs := classSizes[ci]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.classes[ci].free = append(s.classes[ci].free, p)
	s.stats.FreePages++
	s.stats.FreeBytes += int64(cs)
	s.stats.InUsePages--
	s.stats.InUseBytes -= int64(cs)
	s.stats.Frees++
	s.mu.Unlock()
}

// Stats returns a snapshot of the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	return st
}

// Close unmaps every segment and marks the store closed. Idempotent:
// the second and later calls return nil and do nothing. Every
// outstanding block becomes invalid at once — callers own the
// quiescence argument (rcgo closes only after its arena quiesces).
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	segs := s.segs
	s.segs = nil
	for i := range s.classes {
		s.classes[i].free = nil
	}
	s.mu.Unlock()
	var first error
	for _, seg := range segs {
		if seg.mapped {
			if err := sysUnmap(seg.buf); err != nil && first == nil {
				first = fmt.Errorf("%w: unmap: %v", ErrMapFailed, err)
			}
		}
	}
	return first
}
