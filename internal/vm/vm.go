// Package vm executes compiled RC programs over one of three memory
// backends, matching the allocator configurations of the paper's
// evaluation:
//
//	BackendRegion  the RC runtime (reference-counted regions); with
//	               counting disabled this is the "norc" column
//	BackendMalloc  the region-emulation library over malloc/free ("lea")
//	BackendGC      the region-emulation library over the conservative
//	               mark-sweep collector ("GC")
//
// Under BackendRegion the VM also implements the paper's two strategies
// for local variables: RC's pin/unpin of live locals around deletes-calls,
// and C@'s scan of the stack at deleteregion.
package vm

import (
	"fmt"
	"io"

	"rcgo/internal/alloc"
	"rcgo/internal/ir"
	"rcgo/internal/mem"
	"rcgo/internal/region"
)

// Backend selects the memory manager.
type Backend int

const (
	BackendRegion Backend = iota
	BackendMalloc
	BackendGC
)

// LocalsStrategy selects how local-variable references are protected
// (BackendRegion only).
type LocalsStrategy int

const (
	// LocalsPins is RC's scheme: pin live locals around deletes-calls.
	LocalsPins LocalsStrategy = iota
	// LocalsStackScan is C@'s scheme: deleteregion scans the stack.
	LocalsStackScan
	// LocalsNone disables protection (used with counting disabled).
	LocalsNone
)

// Config configures a VM run.
type Config struct {
	Backend Backend
	// Counting enables reference counting (BackendRegion). When false,
	// deleteregion reclaims without checks (the "norc" configuration).
	Counting bool
	Locals   LocalsStrategy
	// DeletePolicy applies to the region backend.
	DeletePolicy region.DeletePolicy
	// RegionConfig carries ablation switches to the region runtime.
	ParentCheckByWalk  bool
	DisablePointerFree bool
	// StackPages sizes the simulated stack (default 512 pages = 4 MiB).
	StackPages int
	// Output receives print_* output (defaults to io.Discard).
	Output io.Writer
	// MaxSteps aborts runaway programs (0 = no limit).
	MaxSteps int64
	// Profile enables per-function instruction counting (see Profile()).
	Profile bool
}

// Stats aggregates execution counters.
type Stats struct {
	Instructions int64
	Calls        int64
	MaxFrames    int
	StackScans   int64 // C@ deleteregion stack scans
	ScanSlots    int64 // slots visited by those scans
}

// RuntimeError is a program abort (failed check, null dereference, etc.).
type RuntimeError struct {
	Msg string
	PC  int
	Fn  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("vm: %s (in %s at pc %d)", e.Msg, e.Fn, e.PC)
}

// VM executes one compiled program.
type VM struct {
	prog *ir.Program
	cfg  Config

	Stats Stats

	// Region backend.
	RT      *region.Runtime
	typeIDs []region.TypeID
	handles []*region.Region
	hof     map[*region.Region]int32

	// Emulation backends.
	emu        *alloc.Emu
	emuHandles []*alloc.EmuRegion
	heap       *mem.Heap

	globals mem.Addr
	strs    []mem.Addr

	stackBase mem.Addr
	stackCap  uint64
	sp        uint64

	frames  []frame
	out     io.Writer
	profile map[string]int64
}

type frame struct {
	fn        *ir.Func
	regs      []uint64
	pc        int
	retReg    int32
	stackOff  uint64 // sp at entry
	pins      [][]*region.Region
	activePin int // pin-list index of the in-flight call, -1 otherwise
}

// New prepares a VM for the program.
func New(prog *ir.Program, cfg Config) *VM {
	if cfg.Output == nil {
		cfg.Output = io.Discard
	}
	if cfg.StackPages == 0 {
		cfg.StackPages = 512
	}
	v := &VM{prog: prog, cfg: cfg, out: cfg.Output}
	if cfg.Profile {
		v.profile = make(map[string]int64)
	}
	switch cfg.Backend {
	case BackendRegion:
		v.RT = region.NewRuntime(region.Config{
			Policy:             cfg.DeletePolicy,
			ParentCheckByWalk:  cfg.ParentCheckByWalk,
			DisablePointerFree: cfg.DisablePointerFree,
		})
		v.heap = v.RT.Heap
		v.typeIDs = make([]region.TypeID, len(prog.Types))
		for i, t := range prog.Types {
			v.typeIDs[i] = v.RT.RegisterType(region.TypeDesc{
				Name: t.Name, Size: t.Size,
				CountedOffsets: countedFor(t, cfg.Counting),
				AllPtrOffsets:  t.AllPtrOffsets,
			})
		}
		v.hof = make(map[*region.Region]int32)
		v.addHandle(v.RT.Traditional())
	case BackendMalloc:
		h := mem.NewHeap()
		v.heap = h
		v.emu = alloc.NewEmuMalloc(h, 1)
		v.emuHandles = []*alloc.EmuRegion{nil} // handle 0 = traditional
	case BackendGC:
		h := mem.NewHeap()
		v.heap = h
		v.emu = alloc.NewEmuGC(h, 1)
		v.emu.G.Roots = v.gcRoots
		v.emuHandles = []*alloc.EmuRegion{nil}
	}
	v.initMemory()
	return v
}

// countedFor disables counted offsets entirely when counting is off, so
// the runtime performs no unscan work in the norc configuration.
func countedFor(t ir.TypeDesc, counting bool) []uint64 {
	if !counting {
		return nil
	}
	return t.CountedOffsets
}

func (v *VM) addHandle(r *region.Region) int32 {
	id := int32(len(v.handles))
	v.handles = append(v.handles, r)
	v.hof[r] = id
	return id
}

// initMemory lays out the stack, globals area, global arrays and interned
// strings.
func (v *VM) initMemory() {
	// Stack.
	if v.cfg.Backend == BackendRegion {
		v.stackBase = v.RT.MapStack(v.cfg.StackPages)
	} else {
		// Reserved owner tag 1000 keeps stack pages distinct from the
		// allocators' pages (the GC ignores pages it does not own).
		first := v.heap.MapPages(v.cfg.StackPages, 1000, region.KindStack)
		v.stackBase = mem.Addr(first << mem.PageShift)
	}
	v.stackCap = uint64(v.cfg.StackPages) * mem.PageWords

	// Globals area.
	gw := uint64(v.prog.GlobalWords)
	if gw == 0 {
		gw = 1
	}
	if v.cfg.Backend == BackendRegion {
		v.globals = v.RT.Traditional().Alloc(v.typeIDs[v.prog.GlobalDesc])
	} else {
		v.globals = v.emuAllocRaw(gw, uint64(v.prog.GlobalDesc))
	}

	// Interned strings: NUL-terminated char arrays in the traditional
	// region (or tag-0 emulated storage).
	charDesc := ir.TypeDesc{Name: "char", Size: 1}
	charID := v.findOrRegister(charDesc)
	v.strs = make([]mem.Addr, len(v.prog.Strings))
	for i, s := range v.prog.Strings {
		n := uint64(len(s) + 1)
		var a mem.Addr
		if v.cfg.Backend == BackendRegion {
			a = v.RT.Traditional().AllocArray(v.typeIDs[charID], n)
		} else {
			a = v.emuAllocRaw(n, uint64(charID))
		}
		for j := 0; j < len(s); j++ {
			v.heap.Store(a.Add(uint64(j)), uint64(s[j]))
		}
		v.strs[i] = a
	}

	// Global arrays.
	for _, ga := range v.prog.Arrays {
		var a mem.Addr
		if v.cfg.Backend == BackendRegion {
			a = v.RT.Traditional().AllocArray(v.typeIDs[ga.ElemType], ga.Len)
		} else {
			elemSize := v.prog.Types[ga.ElemType].Size
			a = v.emuAllocRaw(elemSize*ga.Len, uint64(ga.ElemType))
		}
		v.heap.Store(v.globals.Add(uint64(ga.Slot)), uint64(a))
	}
	// Constant initializers.
	for _, gi := range v.prog.Inits {
		var val uint64
		if gi.Kind == 1 {
			val = uint64(v.strs[gi.K])
		} else {
			val = uint64(gi.K)
		}
		v.heap.Store(v.globals.Add(uint64(gi.Slot)), val)
	}
}

// findOrRegister registers an auxiliary type descriptor (region backend
// uses real type IDs; emulation backends pack the descriptor index into
// the type header).
func (v *VM) findOrRegister(t ir.TypeDesc) int32 {
	for i, existing := range v.prog.Types {
		if existing.Name == t.Name && existing.Size == t.Size &&
			len(existing.CountedOffsets) == len(t.CountedOffsets) {
			return int32(i)
		}
	}
	idx := int32(len(v.prog.Types))
	v.prog.Types = append(v.prog.Types, t)
	if v.cfg.Backend == BackendRegion {
		v.typeIDs = append(v.typeIDs, v.RT.RegisterType(region.TypeDesc{
			Name: t.Name, Size: t.Size,
			CountedOffsets: countedFor(t, v.cfg.Counting),
			AllPtrOffsets:  t.AllPtrOffsets,
		}))
	}
	return idx
}

// emuAllocRaw allocates a raw object via the emulation allocator (tag 0,
// never freed), returning the body address.
func (v *VM) emuAllocRaw(words uint64, typeID uint64) mem.Addr {
	hdr := uint64(uint32(typeID))<<32 | 1
	var blk mem.Addr
	if v.emu.M != nil {
		blk = v.emu.M.Alloc(words+1, 0)
	} else {
		blk = v.emu.G.Alloc(words+1, 0)
	}
	v.heap.Store(blk.Add(1), hdr)
	return blk.Add(2)
}

// Profile returns per-function executed-instruction counts (nil unless
// Config.Profile was set).
func (v *VM) Profile() map[string]int64 { return v.profile }

// EmuMallocStats returns the malloc backend's statistics.
func (v *VM) EmuMallocStats() alloc.MallocStats { return v.emu.M.Stats }

// EmuGCStats returns the GC backend's statistics.
func (v *VM) EmuGCStats() alloc.GCStats { return v.emu.G.Stats }

// gcRoots conservatively enumerates the VM's roots for the GC backend:
// all frame registers, the used stack area, the globals area, and the
// interned strings.
func (v *VM) gcRoots(emit func(uint64)) {
	for fi := range v.frames {
		for _, r := range v.frames[fi].regs {
			emit(r)
		}
	}
	for off := uint64(0); off < v.sp; off++ {
		emit(uint64(v.heap.Load(v.stackBase.Add(off))))
	}
	emit(uint64(v.globals))
	gw := uint64(v.prog.GlobalWords)
	for off := uint64(0); off < gw; off++ {
		emit(uint64(v.heap.Load(v.globals.Add(off))))
	}
	for _, s := range v.strs {
		emit(uint64(s))
	}
}
