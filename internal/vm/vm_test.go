package vm

import (
	"bytes"
	"strings"
	"testing"

	"rcgo/internal/compile"
	"rcgo/internal/ir"
	"rcgo/internal/rcc"
	"rcgo/internal/rlang"
)

func build(t *testing.T, src string, mode compile.Mode) *ir.Program {
	t.Helper()
	prog, err := rcc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := rcc.Check(prog, true)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	var safe []bool
	if mode == compile.ModeInf {
		safe = rlang.Infer(rlang.Translate(cp)).SafeSite
	}
	p, err := compile.Compile(cp, mode, safe)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func run(t *testing.T, src string, cfg Config) (string, error) {
	t.Helper()
	mode := compile.ModeInf
	if !cfg.Counting && cfg.Backend == BackendRegion {
		mode = compile.ModeNoRC
	}
	p := build(t, src, mode)
	var buf bytes.Buffer
	cfg.Output = &buf
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 10_000_000
	}
	v := New(p, cfg)
	err := v.Run()
	return buf.String(), err
}

func regionCfg() Config {
	return Config{Backend: BackendRegion, Counting: true, Locals: LocalsPins}
}

func TestStackOverflow(t *testing.T) {
	// Deep recursion with an address-taken local forces stack growth.
	src := `
int deep(int n) {
	int x = n;
	int *p = &x;
	if (n <= 0) return *p;
	return deep(n - 1) + *p;
}
void main(void) { print_int(deep(1000000)); }`
	cfg := regionCfg()
	cfg.StackPages = 2
	_, err := run(t, src, cfg)
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("expected stack overflow, got %v", err)
	}
}

func TestMaxSteps(t *testing.T) {
	cfg := regionCfg()
	cfg.MaxSteps = 1000
	_, err := run(t, `void main(void) { while (1) {} }`, cfg)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("expected step limit, got %v", err)
	}
}

func TestRuntimeErrorContext(t *testing.T) {
	_, err := run(t, `
struct s { int v; };
int f(struct s *p) { return p->v; }
void main(void) { print_int(f(null)); }`, regionCfg())
	re, ok := err.(*RuntimeError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if re.Fn != "f" {
		t.Errorf("error in %q, want f", re.Fn)
	}
}

func TestGCBackendCollectsDuringRun(t *testing.T) {
	// Allocate far more than the GC threshold with only a window live.
	src := `
struct s { struct s *next; int v; };
void main(void) {
	region r = newregion();
	struct s *keep = null;
	int i;
	for (i = 0; i < 50000; i++) {
		struct s *n = ralloc(r, struct s);
		n->v = i;
		if (i % 1000 == 0) { n->next = keep; keep = n; }
	}
	int sum = 0;
	while (keep) { sum = sum + keep->v; keep = keep->next; }
	print_int(sum);
}`
	p := build(t, src, compile.ModeNoRC)
	var buf bytes.Buffer
	v := New(p, Config{Backend: BackendGC, Output: &buf, MaxSteps: 50_000_000})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.emu.G.Stats.Collections == 0 {
		t.Error("GC never collected")
	}
	if buf.String() != "1225000" {
		t.Errorf("output = %q", buf.String())
	}
	// The heap must stay bounded despite 50k allocations.
	if v.heap.MappedPages() > 3000 {
		t.Errorf("GC heap grew to %d pages", v.heap.MappedPages())
	}
}

func TestMallocBackendRegionof(t *testing.T) {
	// regionof must work under the emulation backends, including for
	// values reached through data structures.
	src := `
struct s { int v; };
void main(void) {
	region r1 = newregion();
	region r2 = newregion();
	struct s *a = ralloc(r1, struct s);
	struct s *b = ralloc(r2, struct s);
	assert(regionof(a) == r1);
	assert(regionof(b) == r2);
	assert(regionof(a) != regionof(b));
	print_str("ok");
}`
	for _, be := range []Backend{BackendMalloc, BackendGC} {
		p := build(t, src, compile.ModeNoRC)
		var buf bytes.Buffer
		v := New(p, Config{Backend: be, Output: &buf, MaxSteps: 1_000_000})
		if err := v.Run(); err != nil {
			t.Fatalf("backend %v: %v", be, err)
		}
		if buf.String() != "ok" {
			t.Errorf("backend %v: output %q", be, buf.String())
		}
	}
}

func TestEmuDeleteFreesUnderMalloc(t *testing.T) {
	src := `
struct s { int v; };
deletes void main(void) {
	int i;
	for (i = 0; i < 100; i++) {
		region r = newregion();
		int j;
		for (j = 0; j < 50; j++) { struct s *p = ralloc(r, struct s); p->v = j; }
		deleteregion(r);
	}
	print_str("done");
}`
	p := build(t, src, compile.ModeNoRC)
	var buf bytes.Buffer
	v := New(p, Config{Backend: BackendMalloc, Output: &buf, MaxSteps: 10_000_000})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.emu.M.Stats.Frees != 5000 {
		t.Errorf("Frees = %d, want 5000 (object-by-object)", v.emu.M.Stats.Frees)
	}
}

func TestDeferredDeletePolicy(t *testing.T) {
	// The VM runs with the runtime's deferred policy: deleteregion on a
	// referenced region succeeds and reclaims later.
	src := `
struct s { struct s *other; int v; };
deletes void main(void) {
	region r1 = newregion();
	region r2 = newregion();
	struct s *a = ralloc(r1, struct s);
	a->other = ralloc(r2, struct s);
	a->other->v = 7;
	deleteregion(r2);        // deferred: still referenced from r1
	print_int(a->other->v);  // still accessible
	a->other = null;         // last reference: reclaimed now
	a = null;
	deleteregion(r1);
	print_str(" ok");
}`
	p := build(t, src, compile.ModeInf)
	var buf bytes.Buffer
	cfg := regionCfg()
	cfg.DeletePolicy = 2 // region.DeleteDeferred
	cfg.Output = &buf
	cfg.MaxSteps = 1_000_000
	v := New(p, cfg)
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "7 ok" {
		t.Errorf("output = %q", buf.String())
	}
	if v.RT.LiveRegions() != 0 {
		t.Errorf("LiveRegions = %d after deferred reclamation", v.RT.LiveRegions())
	}
}

func TestInvalidRegionHandle(t *testing.T) {
	// A region variable used before initialization holds handle 0 (the
	// traditional region); deleting it must abort.
	_, err := run(t, `
deletes void main(void) {
	region r;
	deleteregion(r);
}`, regionCfg())
	if err == nil || !strings.Contains(err.Error(), "traditional") {
		t.Errorf("expected traditional-region abort, got %v", err)
	}
}

func TestPrintBuiltins(t *testing.T) {
	out, err := run(t, `
void main(void) {
	print_int(-12);
	print_char('x');
	print_str("abc");
	char *nullstr = null;
	print_str(nullstr);
}`, regionCfg())
	if err != nil {
		t.Fatal(err)
	}
	if out != "-12xabc" {
		t.Errorf("output = %q", out)
	}
}

func TestNegativeArrayAlloc(t *testing.T) {
	_, err := run(t, `
void main(void) {
	region r = newregion();
	int n = 0 - 5;
	int *a = rarrayalloc(r, n, int);
	if (a) print_int(1);
}`, regionCfg())
	if err == nil || !strings.Contains(err.Error(), "negative array") {
		t.Errorf("expected negative array abort, got %v", err)
	}
}
