package vm

import (
	"fmt"

	"rcgo/internal/alloc"
	"rcgo/internal/ir"
	"rcgo/internal/mem"
	"rcgo/internal/region"
)

// Run executes the program's main function. A program abort (failed
// safety check, null dereference, assertion failure, runaway execution)
// is returned as an error.
func (v *VM) Run() (err error) {
	if v.prog.MainIdx < 0 {
		return fmt.Errorf("vm: program has no main")
	}
	defer func() {
		if r := recover(); r != nil {
			switch e := r.(type) {
			case *region.CheckError:
				err = v.runtimeErr(e.Error())
			case *RuntimeError:
				err = e
			case mem.SegFault:
				err = v.runtimeErr(e.Error())
			default:
				panic(r)
			}
		}
	}()
	v.push(v.prog.Funcs[v.prog.MainIdx], nil, -1)
	v.loop()
	return nil
}

func (v *VM) runtimeErr(msg string) *RuntimeError {
	e := &RuntimeError{Msg: msg}
	if len(v.frames) > 0 {
		f := &v.frames[len(v.frames)-1]
		e.Fn = f.fn.Name
		e.PC = f.pc
	}
	return e
}

func (v *VM) fail(format string, args ...any) {
	panic(v.runtimeErr(fmt.Sprintf(format, args...)))
}

func (v *VM) push(fn *ir.Func, args []uint64, retReg int32) {
	if v.sp+uint64(fn.StackWords) > v.stackCap {
		v.fail("stack overflow")
	}
	f := frame{
		fn:        fn,
		regs:      make([]uint64, fn.NRegs),
		retReg:    retReg,
		stackOff:  v.sp,
		activePin: -1,
	}
	copy(f.regs, args)
	// Zero this frame's stack area (address-taken locals start null).
	for i := int32(0); i < fn.StackWords; i++ {
		v.heap.Store(v.stackBase.Add(v.sp+uint64(i)), 0)
	}
	v.sp += uint64(fn.StackWords)
	v.frames = append(v.frames, f)
	v.Stats.Calls++
	if len(v.frames) > v.Stats.MaxFrames {
		v.Stats.MaxFrames = len(v.frames)
	}
}

// pop unwinds the top frame, releasing counted references held by its
// address-taken pointer slots.
func (v *VM) pop(retVal uint64, hasVal bool) {
	f := &v.frames[len(v.frames)-1]
	if v.cfg.Backend == BackendRegion && v.cfg.Counting {
		for _, slot := range f.fn.Slots {
			if slot.Barrier == ir.BarrierFull {
				addr := v.stackBase.Add(f.stackOff + uint64(slot.Off))
				if v.heap.Load(addr) != 0 {
					v.RT.StorePtr(addr, mem.Nil)
				}
			}
		}
	}
	v.sp = f.stackOff
	retReg := f.retReg
	v.frames = v.frames[:len(v.frames)-1]
	if len(v.frames) > 0 && hasVal && retReg >= 0 {
		v.frames[len(v.frames)-1].regs[retReg] = retVal
	}
}

func (v *VM) loop() {
	for len(v.frames) > 0 {
		f := &v.frames[len(v.frames)-1]
		code := f.fn.Code
		regs := f.regs
		pc := f.pc
		startInstr := v.Stats.Instructions
	inner:
		for {
			if v.cfg.MaxSteps > 0 && v.Stats.Instructions >= v.cfg.MaxSteps {
				f.pc = pc
				v.fail("step limit exceeded")
			}
			in := code[pc]
			v.Stats.Instructions++
			switch in.Op {
			case ir.OpConst:
				regs[in.A] = uint64(in.K)
			case ir.OpMove:
				regs[in.A] = regs[in.B]
			case ir.OpAdd:
				regs[in.A] = uint64(int64(regs[in.B]) + int64(regs[in.C]))
			case ir.OpSub:
				regs[in.A] = uint64(int64(regs[in.B]) - int64(regs[in.C]))
			case ir.OpMul:
				regs[in.A] = uint64(int64(regs[in.B]) * int64(regs[in.C]))
			case ir.OpDiv:
				if regs[in.C] == 0 {
					f.pc = pc
					v.fail("division by zero")
				}
				regs[in.A] = uint64(int64(regs[in.B]) / int64(regs[in.C]))
			case ir.OpMod:
				if regs[in.C] == 0 {
					f.pc = pc
					v.fail("modulo by zero")
				}
				regs[in.A] = uint64(int64(regs[in.B]) % int64(regs[in.C]))
			case ir.OpNeg:
				regs[in.A] = uint64(-int64(regs[in.B]))
			case ir.OpNot:
				regs[in.A] = b2u(regs[in.B] == 0)
			case ir.OpEq:
				regs[in.A] = b2u(regs[in.B] == regs[in.C])
			case ir.OpNe:
				regs[in.A] = b2u(regs[in.B] != regs[in.C])
			case ir.OpLt:
				regs[in.A] = b2u(int64(regs[in.B]) < int64(regs[in.C]))
			case ir.OpLe:
				regs[in.A] = b2u(int64(regs[in.B]) <= int64(regs[in.C]))
			case ir.OpGt:
				regs[in.A] = b2u(int64(regs[in.B]) > int64(regs[in.C]))
			case ir.OpGe:
				regs[in.A] = b2u(int64(regs[in.B]) >= int64(regs[in.C]))
			case ir.OpJmp:
				pc = int(in.K)
				continue inner
			case ir.OpJz:
				if regs[in.A] == 0 {
					pc = int(in.K)
					continue inner
				}
			case ir.OpJnz:
				if regs[in.A] != 0 {
					pc = int(in.K)
					continue inner
				}
			case ir.OpCall:
				f.pc = pc + 1
				callee := v.prog.Funcs[in.K]
				v.push(callee, regs[in.B:in.B+in.C], in.A)
				break inner
			case ir.OpRet:
				f.pc = pc
				if in.A >= 0 {
					v.pop(regs[in.A], true)
				} else {
					v.pop(0, false)
				}
				break inner
			case ir.OpLea:
				if regs[in.B] == 0 {
					f.pc = pc
					v.fail("null pointer dereference")
				}
				regs[in.A] = regs[in.B] + uint64(in.K)
			case ir.OpLeaIdx:
				if regs[in.B] == 0 {
					f.pc = pc
					v.fail("null pointer dereference")
				}
				regs[in.A] = regs[in.B] + regs[in.C]*uint64(in.K)
			case ir.OpLoad:
				regs[in.A] = v.heap.Load(mem.Addr(regs[in.B]))
			case ir.OpStore:
				v.heap.Store(mem.Addr(regs[in.A]), regs[in.B])
			case ir.OpStoreP:
				f.pc = pc
				v.storeP(mem.Addr(regs[in.A]), mem.Addr(regs[in.B]), in.K)
			case ir.OpGlobalAddr:
				regs[in.A] = uint64(v.globals) + uint64(in.K)
			case ir.OpStackAddr:
				regs[in.A] = uint64(v.stackBase) + f.stackOff + uint64(in.K)
			case ir.OpStrAddr:
				regs[in.A] = uint64(v.strs[in.K])
			case ir.OpNewRegion:
				regs[in.A] = uint64(v.newRegion(0))
			case ir.OpNewSub:
				f.pc = pc
				regs[in.A] = uint64(v.newRegion(int32(regs[in.B])))
			case ir.OpDelRegion:
				f.pc = pc
				v.deleteRegion(int32(regs[in.A]))
			case ir.OpRegionOf:
				regs[in.A] = uint64(v.regionOf(mem.Addr(regs[in.B])))
			case ir.OpAlloc:
				f.pc = pc
				regs[in.A] = uint64(v.allocObj(int32(regs[in.B]), int32(in.K), 1))
			case ir.OpAllocArr:
				f.pc = pc
				n := int64(regs[in.C])
				if n < 0 {
					v.fail("negative array allocation")
				}
				regs[in.A] = uint64(v.allocObj(int32(regs[in.B]), int32(in.K), uint64(n)))
			case ir.OpArrLen:
				a := mem.Addr(regs[in.B])
				if a == mem.Nil {
					f.pc = pc
					v.fail("arraylen of null")
				}
				regs[in.A] = v.heap.Load(a-1) & 0xffffffff
			case ir.OpPrintInt:
				fmt.Fprintf(v.out, "%d", int64(regs[in.A]))
			case ir.OpPrintChar:
				fmt.Fprintf(v.out, "%c", rune(regs[in.A]&0xff))
			case ir.OpPrintStr:
				v.printStr(mem.Addr(regs[in.A]))
			case ir.OpAssert:
				if regs[in.A] == 0 {
					f.pc = pc
					v.fail("assertion failed")
				}
			case ir.OpPin:
				f.activePin = int(in.K)
				if v.cfg.Backend == BackendRegion && v.cfg.Counting &&
					v.cfg.Locals == LocalsPins {
					var group []*region.Region
					for _, r := range f.fn.PinLists[in.K] {
						val := mem.Addr(regs[r])
						if val == mem.Nil {
							continue
						}
						reg := v.RT.RegionOf(val)
						if reg != v.RT.Traditional() {
							reg.Pin()
							group = append(group, reg)
						}
					}
					f.pins = append(f.pins, group)
				}
			case ir.OpUnpin:
				f.activePin = -1
				if v.cfg.Backend == BackendRegion && v.cfg.Counting &&
					v.cfg.Locals == LocalsPins {
					n := len(f.pins) - 1
					for _, reg := range f.pins[n] {
						reg.Unpin()
					}
					f.pins = f.pins[:n]
				}
			default:
				f.pc = pc
				v.fail("invalid opcode %v", in.Op)
			}
			pc++
		}
		if v.profile != nil {
			v.profile[f.fn.Name] += v.Stats.Instructions - startInstr
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// storeP performs a pointer store with the given barrier.
func (v *VM) storeP(p, val mem.Addr, barrier int64) {
	if v.cfg.Backend != BackendRegion {
		// The emulation backends run the original, unsafe program: no
		// counting, no checks.
		v.heap.Store(p, uint64(val))
		return
	}
	if !v.cfg.Counting {
		v.heap.Store(p, uint64(val))
		return
	}
	switch barrier {
	case ir.BarrierFull:
		v.RT.StorePtr(p, val)
	case ir.BarrierSame:
		v.RT.StoreSameRegion(p, val)
	case ir.BarrierTrad:
		v.RT.StoreTraditional(p, val)
	case ir.BarrierParent:
		v.RT.StoreParentPtr(p, val)
	default:
		v.RT.StoreUnchecked(p, val)
	}
}

func (v *VM) newRegion(parent int32) int32 {
	if v.cfg.Backend == BackendRegion {
		var r *region.Region
		if parent == 0 {
			r = v.RT.NewRegion()
		} else {
			r = v.RT.NewSubregion(v.handle(parent))
		}
		return v.addHandle(r)
	}
	var p *alloc.EmuRegion
	if parent != 0 {
		if parent < 0 || int(parent) >= len(v.emuHandles) {
			v.fail("newsubregion of invalid handle %d", parent)
		}
		p = v.emuHandles[parent]
	}
	nr := v.emu.NewSubregion(p)
	v.emuHandles = append(v.emuHandles, nr)
	return int32(len(v.emuHandles) - 1)
}

func (v *VM) handle(h int32) *region.Region {
	if h < 0 || int(h) >= len(v.handles) || v.handles[h] == nil {
		v.fail("invalid region handle %d", h)
	}
	return v.handles[h]
}

func (v *VM) deleteRegion(h int32) {
	if v.cfg.Backend != BackendRegion {
		if h <= 0 || int(h) >= len(v.emuHandles) {
			v.fail("deleteregion of invalid handle %d", h)
		}
		v.emu.DeleteRegion(v.emuHandles[h])
		return
	}
	if h == 0 {
		v.fail("deleteregion of the traditional region")
	}
	r := v.handle(h)
	if !v.cfg.Counting {
		v.RT.DeleteRegionUnsafe(r)
		return
	}
	if v.cfg.Locals == LocalsStackScan {
		// C@'s protocol: scan live locals of every frame for references
		// into the dying region.
		v.Stats.StackScans++
		for fi := range v.frames {
			fr := &v.frames[fi]
			if fr.activePin < 0 || fr.activePin >= len(fr.fn.PinLists) {
				continue
			}
			for _, reg := range fr.fn.PinLists[fr.activePin] {
				v.Stats.ScanSlots++
				val := mem.Addr(fr.regs[reg])
				if val != mem.Nil && v.RT.RegionOf(val) == r {
					v.fail("deleteregion: region %s referenced from the stack", r.Name())
				}
			}
		}
	}
	if err := v.RT.DeleteRegion(r); err != nil {
		v.fail("%v", err)
	}
}

func (v *VM) regionOf(a mem.Addr) int32 {
	if v.cfg.Backend == BackendRegion {
		return v.hof[v.RT.RegionOf(a)]
	}
	return v.emu.RegionIDOfAny(a)
}

func (v *VM) allocObj(h, typeIdx int32, count uint64) mem.Addr {
	if count == 0 {
		count = 1
	}
	if v.cfg.Backend == BackendRegion {
		return v.handle(h).AllocArray(v.typeIDs[typeIdx], count)
	}
	if h <= 0 || int(h) >= len(v.emuHandles) {
		v.fail("allocation in invalid region handle %d", h)
	}
	t := v.prog.Types[typeIdx]
	hdr := uint64(uint32(typeIdx))<<32 | uint64(uint32(count))
	return v.emu.Alloc(v.emuHandles[h], t.Size, count, hdr)
}

func (v *VM) printStr(a mem.Addr) {
	if a == mem.Nil {
		return
	}
	var buf []byte
	for {
		c := v.heap.Load(a)
		if c == 0 {
			break
		}
		buf = append(buf, byte(c))
		a++
	}
	v.out.Write(buf)
}
