package rcc

import (
	"reflect"
	"strings"
	"testing"
)

// shape reduces a program to a comparable structural fingerprint:
// declaration names/kinds and the Dump of every statement's expressions.
func shape(p *Program) []string {
	var out []string
	for _, s := range p.Structs {
		line := "struct " + s.Name
		for _, f := range s.Fields {
			line += " " + f.Type.String() + ":" + f.Name
		}
		out = append(out, line)
	}
	for _, g := range p.Globals {
		out = append(out, "global "+g.Name+" "+g.Type.String())
	}
	var walk func(s Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, sub := range st.Stmts {
				walk(sub)
			}
		case *DeclStmt:
			line := "decl " + st.Name + " " + st.Type.String()
			if st.Init != nil {
				line += " = " + Dump(st.Init)
			}
			out = append(out, line)
		case *ExprStmt:
			out = append(out, "expr "+Dump(st.X))
		case *IfStmt:
			out = append(out, "if "+Dump(st.Cond))
			walk(st.Then)
			if st.Else != nil {
				out = append(out, "else")
				walk(st.Else)
			}
		case *WhileStmt:
			out = append(out, "while "+Dump(st.Cond))
			walk(st.Body)
		case *DoWhileStmt:
			out = append(out, "do")
			walk(st.Body)
			out = append(out, "dowhile "+Dump(st.Cond))
		case *ForStmt:
			out = append(out, "for")
			walk(st.Body)
		case *SwitchStmt:
			out = append(out, "switch "+Dump(st.Cond))
			for _, cl := range st.Clauses {
				if cl.IsDefault {
					out = append(out, "default")
				} else {
					out = append(out, "case")
				}
				for _, sub := range cl.Stmts {
					walk(sub)
				}
			}
		case *ReturnStmt:
			if st.X != nil {
				out = append(out, "return "+Dump(st.X))
			} else {
				out = append(out, "return")
			}
		case *BreakStmt:
			out = append(out, "break")
		case *ContinueStmt:
			out = append(out, "continue")
		}
	}
	for _, fn := range p.Funcs {
		sig := "func " + fn.Name
		if fn.Deletes {
			sig = "deletes " + sig
		}
		out = append(out, sig)
		if fn.Body != nil {
			walk(fn.Body)
		}
	}
	return out
}

const formatCorpus = `
struct finfo { int value; };
struct rlist {
	struct rlist *sameregion next;
	struct finfo *sameregion data;
	struct rlist *parentptr up;
	char *traditional tag;
};
int counter = 7;
char buf[64];
char *msg = "hi\n";
struct rlist *cache;

struct rlist *mk(region r, int v);

int helper(struct rlist *l, int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) {
		switch (i % 3) {
		case 0:
			s += i;
			break;
		case 1:
		case 2:
			s -= 1;
		default:
			s++;
			break;
		}
		if (l && l->next != null) l = l->next; else break;
	}
	while (s > 100) { s = s / 2; continue; }
	do { s--; } while (s > 50);
	return s > 0 ? s : -s;
}

deletes void main(void) {
	region r = newregion();
	region sub = newsubregion(r);
	struct rlist *x = ralloc(r, struct rlist);
	int *arr = rarrayalloc(r, 10, int);
	x->data = ralloc(regionof(x), struct finfo);
	x->tag = msg;
	arr[3] = arraylen(arr);
	int q;
	int *qp = &q;
	*qp = arr[3];
	print_int(*qp);
	print_str("bye");
	x = null;
	deleteregion(sub);
	deleteregion(r);
}
`

// The formatter round-trips: formatting a parsed program and reparsing it
// yields the same structure, and formatting is idempotent.
func TestFormatRoundTrip(t *testing.T) {
	p1, err := Parse(formatCorpus)
	if err != nil {
		t.Fatal(err)
	}
	text1 := Format(p1)
	p2, err := Parse(text1)
	if err != nil {
		t.Fatalf("formatted output does not reparse: %v\n%s", err, text1)
	}
	s1, s2 := shape(p1), shape(p2)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("round-trip changed structure:\nbefore: %v\nafter:  %v\ntext:\n%s", s1, s2, text1)
	}
	text2 := Format(p2)
	if text1 != text2 {
		t.Errorf("formatting not idempotent:\n--- first\n%s\n--- second\n%s", text1, text2)
	}
	// The round-tripped program still type checks.
	if _, err := Check(p2, true); err != nil {
		t.Fatalf("formatted program does not check: %v", err)
	}
}

func TestFormatQualifiers(t *testing.T) {
	p, err := Parse(`struct t { struct t *sameregion *sameregion arr; };`)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(p)
	if !strings.Contains(text, "*sameregion *sameregion") {
		t.Errorf("qualifiers lost:\n%s", text)
	}
}
