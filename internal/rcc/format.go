package rcc

import (
	"fmt"
	"strings"
)

// Format pretty-prints a parsed program back to RC source. The output
// reparses to a structurally identical program (the round-trip property
// tested in format_test.go), which makes it usable as a formatter and as
// a debugging aid for generated programs.
func Format(p *Program) string {
	f := &formatter{}
	for _, s := range p.Structs {
		f.structDecl(s)
	}
	if len(p.Structs) > 0 {
		f.nl()
	}
	for _, g := range p.Globals {
		f.globalDecl(g)
	}
	if len(p.Globals) > 0 {
		f.nl()
	}
	for i, fn := range p.Funcs {
		if i > 0 {
			f.nl()
		}
		f.funcDecl(fn)
	}
	return f.sb.String()
}

type formatter struct {
	sb     strings.Builder
	indent int
}

func (f *formatter) pf(format string, args ...any) {
	fmt.Fprintf(&f.sb, format, args...)
}

func (f *formatter) line(format string, args ...any) {
	f.sb.WriteString(strings.Repeat("\t", f.indent))
	f.pf(format, args...)
	f.nl()
}

func (f *formatter) nl() { f.sb.WriteByte('\n') }

func (f *formatter) structDecl(s *StructDecl) {
	f.line("struct %s {", s.Name)
	f.indent++
	for _, fd := range s.Fields {
		f.line("%s;", declString(fd.Type, fd.Name))
	}
	f.indent--
	f.line("};")
}

// declString renders "type name" with C pointer placement.
func declString(t Type, name string) string {
	return t.String() + " " + name
}

func (f *formatter) globalDecl(g *GlobalDecl) {
	switch {
	case g.ArrayLen > 0:
		f.line("%s[%d];", declString(g.Type, g.Name), g.ArrayLen)
	case g.Init != nil:
		f.line("%s = %s;", declString(g.Type, g.Name), Dump(g.Init))
	default:
		f.line("%s;", declString(g.Type, g.Name))
	}
}

func (f *formatter) funcDecl(fn *FuncDecl) {
	var params []string
	for _, p := range fn.Params {
		params = append(params, declString(p.Type, p.Name))
	}
	if len(params) == 0 {
		params = []string{"void"}
	}
	prefix := ""
	if fn.Deletes {
		prefix = "deletes "
	}
	if fn.Body == nil {
		f.line("%s%s %s(%s);", prefix, fn.Ret, fn.Name, strings.Join(params, ", "))
		return
	}
	f.line("%s%s %s(%s) {", prefix, fn.Ret, fn.Name, strings.Join(params, ", "))
	f.indent++
	for _, s := range fn.Body.Stmts {
		f.stmt(s)
	}
	f.indent--
	f.line("}")
}

func (f *formatter) stmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		f.line("{")
		f.indent++
		for _, sub := range st.Stmts {
			f.stmt(sub)
		}
		f.indent--
		f.line("}")
	case *DeclStmt:
		if st.Init != nil {
			f.line("%s = %s;", declString(st.Type, st.Name), Dump(st.Init))
		} else {
			f.line("%s;", declString(st.Type, st.Name))
		}
	case *ExprStmt:
		f.line("%s;", Dump(st.X))
	case *IfStmt:
		f.line("if (%s)", Dump(st.Cond))
		f.blockOrStmt(st.Then)
		if st.Else != nil {
			f.line("else")
			f.blockOrStmt(st.Else)
		}
	case *WhileStmt:
		f.line("while (%s)", Dump(st.Cond))
		f.blockOrStmt(st.Body)
	case *DoWhileStmt:
		f.line("do")
		f.blockOrStmt(st.Body)
		f.line("while (%s);", Dump(st.Cond))
	case *ForStmt:
		init, cond, post := "", "", ""
		if st.Init != nil {
			init = Dump(st.Init)
		}
		if st.Cond != nil {
			cond = Dump(st.Cond)
		}
		if st.Post != nil {
			post = Dump(st.Post)
		}
		f.line("for (%s; %s; %s)", init, cond, post)
		f.blockOrStmt(st.Body)
	case *SwitchStmt:
		f.line("switch (%s) {", Dump(st.Cond))
		for _, cl := range st.Clauses {
			if cl.IsDefault {
				f.line("default:")
			} else {
				f.line("case %d:", cl.Value)
			}
			f.indent++
			for _, sub := range cl.Stmts {
				f.stmt(sub)
			}
			f.indent--
		}
		f.line("}")
	case *ReturnStmt:
		if st.X != nil {
			f.line("return %s;", Dump(st.X))
		} else {
			f.line("return;")
		}
	case *BreakStmt:
		f.line("break;")
	case *ContinueStmt:
		f.line("continue;")
	}
}

func (f *formatter) blockOrStmt(s Stmt) {
	if b, ok := s.(*Block); ok {
		f.stmt(b)
		return
	}
	f.indent++
	f.stmt(s)
	f.indent--
}
