package rcc

import (
	"strings"
	"testing"
)

func mustCheck(t *testing.T, src string) *CheckedProgram {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := Check(prog, true)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return cp
}

func checkErr(t *testing.T, src, want string) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(prog, true)
	if err == nil {
		t.Fatalf("no check error, want %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

const checkPrelude = `
struct node { struct node *sameregion next; int v; };
`

func TestCheckOK(t *testing.T) {
	cp := mustCheck(t, checkPrelude+`
deletes void main(void) {
	region r = newregion();
	struct node *n = ralloc(r, struct node);
	n->next = n;
	n->v = 3;
	print_int(n->v);
	deleteregion(r);
}`)
	if cp.NumSites != 1 {
		t.Errorf("NumSites = %d, want 1 (n->next = n)", cp.NumSites)
	}
}

func TestCheckAssignInfo(t *testing.T) {
	cp := mustCheck(t, checkPrelude+`
struct node *cache;
void main(void) {
	struct node *local = null;
	local = null;         // register store
	cache = local;        // global: memory pointer store
	local->next = local;  // field: memory pointer store, sameregion
	local->v = 1;         // field scalar store
}`)
	fn := cp.FuncByName["main"]
	var assigns []*Assign
	walkCalls(fn.Body, func(*Call, Pos) {}) // smoke: walk runs
	var collect func(s Stmt)
	collect = func(s Stmt) {
		if b, ok := s.(*Block); ok {
			for _, sub := range b.Stmts {
				collect(sub)
			}
			return
		}
		if es, ok := s.(*ExprStmt); ok {
			if a, ok := es.X.(*Assign); ok {
				assigns = append(assigns, a)
			}
		}
	}
	collect(fn.Body)
	if len(assigns) != 4 {
		t.Fatalf("found %d assigns", len(assigns))
	}
	if assigns[0].Info.Class != StoreReg || assigns[0].Info.PtrStore {
		t.Error("local = null misclassified")
	}
	if assigns[1].Info.Class != StoreMem || !assigns[1].Info.PtrStore || assigns[1].Info.Qual != QualNone {
		t.Error("cache = local misclassified")
	}
	if !assigns[2].Info.PtrStore || assigns[2].Info.Qual != QualSameRegion {
		t.Error("local->next misclassified")
	}
	if assigns[3].Info.PtrStore {
		t.Error("scalar field store marked as pointer store")
	}
	if cp.NumSites != 2 {
		t.Errorf("NumSites = %d, want 2", cp.NumSites)
	}
}

func TestCheckAddrTaken(t *testing.T) {
	cp := mustCheck(t, `
void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
void main(void) {
	int x = 1;
	int y = 2;
	swap(&x, &y);
}`)
	fn := cp.FuncByName["main"]
	if !fn.Vars[0].AddrTaken || !fn.Vars[1].AddrTaken {
		t.Error("address-taken locals not marked")
	}
}

func TestCheckDeletesPropagation(t *testing.T) {
	checkErr(t, `
void helper(region r) { deleteregion(r); }
void main(void) {}`,
		"not qualified deletes")
	checkErr(t, `
deletes void helper(region r) { deleteregion(r); }
void main(void) { region r = newregion(); helper(r); }`,
		"not qualified deletes")
	// Correctly qualified chain passes.
	mustCheck(t, `
deletes void helper(region r) { deleteregion(r); }
deletes void main(void) { region r = newregion(); helper(r); }`)
}

func TestCheckDeletesFixitChain(t *testing.T) {
	// A direct deleteregion call names the builtin as the forcing chain.
	checkErr(t, `
void helper(region r) { deleteregion(r); }
void main(void) {}`,
		"forced by call chain helper -> deleteregion")
	// A deep chain is traced through every deletes callee down to the
	// deleteregion at its root.
	checkErr(t, `
deletes void leaf(region r) { deleteregion(r); }
deletes void mid(region r) { leaf(r); }
void caller(region r) { mid(r); }
void main(void) {}`,
		"forced by call chain caller -> mid -> leaf -> deleteregion")
	// The hint names the function to qualify.
	checkErr(t, `
deletes void leaf(region r) { deleteregion(r); }
void caller(region r) { leaf(r); }
void main(void) {}`,
		"fix: declare 'caller' with the deletes qualifier")
}

func TestCheckQualifierPlacement(t *testing.T) {
	checkErr(t, `void main(void) { int *sameregion p; p = null; }`,
		"only meaningful on struct fields")
	checkErr(t, `struct s { int x; }; struct s *parentptr g; void main(void) {}`,
		"only meaningful on struct fields")
	// traditional is fine on locals and globals.
	mustCheck(t, `
int *traditional g;
void main(void) { int *traditional p = null; g = p; }`)
	// Inner levels may be qualified anywhere.
	mustCheck(t, `
struct s { int v; };
void main(void) { struct s *sameregion *stack = null; if (stack) print_int(0); }`)
}

func TestCheckTypeErrors(t *testing.T) {
	checkErr(t, `void main(void) { int x = null; }`, "cannot initialize")
	checkErr(t, `void main(void) { undefined_fn(); }`, "undefined function")
	checkErr(t, `void main(void) { print_int(y); }`, "undefined variable")
	checkErr(t, `struct a { int x; }; struct b { int x; };
void main(void) { struct a *p = null; struct b *q = null; p = q; }`, "cannot assign")
	checkErr(t, `void main(void) { region r = newregion(); int x = r; }`, "cannot initialize")
	checkErr(t, `void main(void) { int x; x->f = 1; }`, "-> on non-pointer")
	checkErr(t, `struct s { int v; }; void main(void) { struct s *p = null; p->w = 1; }`, "no field")
	checkErr(t, `void main(void) { break; }`, "break outside loop")
	checkErr(t, `int f(void) { return; } void main(void) {}`, "missing return value")
	checkErr(t, `void f(void) { return 1; } void main(void) {}`, "return with value")
	checkErr(t, `void main(void) { int x = 3 + null; }`, "arithmetic")
	checkErr(t, `void main(void) { ralloc(3, int); }`, "region argument")
	checkErr(t, `struct s { struct s inner; }; void main(void) {}`, "struct value")
	checkErr(t, `void main(void) { region r = newregion(); region *p = &r; }`,
		"address of region")
}

func TestCheckMainRequired(t *testing.T) {
	checkErr(t, `void notmain(void) {}`, "no main function")
	prog, err := Parse(`void notmain(void) {}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(prog, false); err != nil {
		t.Errorf("requireMain=false still errored: %v", err)
	}
}

func TestCheckGlobalArrays(t *testing.T) {
	cp := mustCheck(t, `
char buf[128];
int nums[16];
void main(void) {
	buf[0] = 'a';
	nums[1] = 2;
	print_char(buf[0]);
}`)
	if cp.GlobalWords != 2 {
		t.Errorf("GlobalWords = %d", cp.GlobalWords)
	}
}

func TestCheckStringLiterals(t *testing.T) {
	cp := mustCheck(t, `
void main(void) {
	char *s = "hello";
	char *t = "hello";
	char *u = "world";
	print_str(s); print_str(t); print_str(u);
}`)
	if len(cp.Strings) != 2 {
		t.Errorf("interned %d strings, want 2", len(cp.Strings))
	}
}

func TestCheckCharIntInterchange(t *testing.T) {
	mustCheck(t, `
void main(void) {
	char c = 65;
	int i = c;
	c = i + 1;
	print_char(c);
}`)
}

func TestCheckBuiltins(t *testing.T) {
	mustCheck(t, `
struct s { int v; };
deletes void main(void) {
	region r = newregion();
	region sub = newsubregion(r);
	struct s *p = ralloc(sub, struct s);
	region q = regionof(p);
	assert(q == sub);
	int *arr = rarrayalloc(r, 32, int);
	assert(arraylen(arr) == 32);
	deleteregion(sub);
	deleteregion(r);
}`)
	checkErr(t, `void main(void) { newregion(3); }`, "takes 0")
	checkErr(t, `void main(void) { regionof(5); }`, "must be a pointer")
	checkErr(t, `deletes void main(void) { deleteregion(5); }`, "must be a region")
}

func TestCheckPrototypeMismatch(t *testing.T) {
	checkErr(t, `
int f(int a);
int f(char *a) { return 0; }
void main(void) {}`, "conflicting declarations")
	checkErr(t, `
int f(int a) { return a; }
int f(int a) { return a; }
void main(void) {}`, "duplicate definition")
}

func TestCheckDuplicates(t *testing.T) {
	checkErr(t, `int g; int g; void main(void) {}`, "duplicate global")
	checkErr(t, `struct s { int a; }; struct s { int b; }; void main(void) {}`, "duplicate struct")
	checkErr(t, `void f(int a, int a) {} void main(void) {}`, "duplicate parameter")
	checkErr(t, `void main(void) { int x; int x; }`, "duplicate variable")
	// Shadowing in a nested scope is legal.
	mustCheck(t, `void main(void) { int x = 1; { int x = 2; print_int(x); } print_int(x); }`)
}

func TestCheckBuiltinRedefinition(t *testing.T) {
	checkErr(t, `int regionof(int x) { return x; } void main(void) {}`, "builtin")
}
