package rcc

import (
	"fmt"
	"strings"
)

// CheckedProgram is the result of type checking: the annotated AST plus
// program-wide tables the later phases need.
type CheckedProgram struct {
	Prog *Program
	// Strings holds interned string literal contents, indexed by
	// StrLit.Idx.
	Strings []string
	// NumSites is the number of pointer-store sites (Assign.SiteID
	// values range over [0, NumSites)).
	NumSites int
	// GlobalWords is the size of the globals area in words.
	GlobalWords int
	// FuncByName resolves function names.
	FuncByName map[string]*FuncDecl
	// StructByName resolves struct names.
	StructByName map[string]*StructDecl
}

// StoreClass classifies an assignment's target for code generation.
type StoreClass int

const (
	// StoreReg assigns a non-address-taken local: a register move.
	StoreReg StoreClass = iota
	// StoreMem assigns through memory (global, address-taken local,
	// field, deref or index target).
	StoreMem
)

// Extra fields the checker records on Assign nodes live here to keep
// ast.go declarative. They are attached via the Assign.Info pointer.
type AssignInfo struct {
	Class StoreClass
	// PtrStore is true when the assigned slot holds a counted or
	// annotated pointer (i.e. the value is pointer-typed and the slot is
	// in memory).
	PtrStore bool
	// Qual is the target slot's qualifier for PtrStore sites.
	Qual Qual
}

// checker carries checking state.
type checker struct {
	cp   *CheckedProgram
	errs []string

	fn      *FuncDecl
	scopes  []map[string]*VarInfo
	globals map[string]*VarInfo
	strIdx  map[string]int
	loop    int
	swDepth int
}

// Check resolves and type-checks a parsed program. requireMain demands a
// main function with no parameters.
func Check(prog *Program, requireMain bool) (*CheckedProgram, error) {
	c := &checker{
		cp: &CheckedProgram{
			Prog:         prog,
			FuncByName:   make(map[string]*FuncDecl),
			StructByName: make(map[string]*StructDecl),
		},
		globals: make(map[string]*VarInfo),
		strIdx:  make(map[string]int),
	}
	c.collect()
	if len(c.errs) == 0 {
		for _, fn := range prog.Funcs {
			if fn.Body != nil {
				c.checkFunc(fn)
			}
		}
	}
	if len(c.errs) == 0 {
		c.checkDeletes()
	}
	if requireMain && len(c.errs) == 0 {
		m := c.cp.FuncByName["main"]
		if m == nil || m.Body == nil {
			c.errs = append(c.errs, "program has no main function")
		} else if len(m.Params) != 0 {
			c.errs = append(c.errs, "main must take no parameters")
		}
	}
	if len(c.errs) > 0 {
		return nil, fmt.Errorf("rcc: %s", strings.Join(c.errs, "\n"))
	}
	return c.cp, nil
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Sprintf("%s: ", pos)+fmt.Sprintf(format, args...))
	if len(c.errs) > 50 {
		panic(tooManyErrors{})
	}
}

type tooManyErrors struct{}

// collect gathers top-level declarations and resolves struct references.
func (c *checker) collect() {
	for _, s := range c.cp.Prog.Structs {
		if _, dup := c.cp.StructByName[s.Name]; dup {
			c.errorf(s.Pos, "duplicate struct %s", s.Name)
			continue
		}
		c.cp.StructByName[s.Name] = s
	}
	for _, s := range c.cp.Prog.Structs {
		for _, f := range s.Fields {
			c.resolveType(f.Type, f.Pos)
			if sr, ok := f.Type.(*StructRef); ok {
				c.errorf(f.Pos, "field %s has struct value type %s; use a pointer", f.Name, sr)
			}
			if IsVoid(f.Type) {
				c.errorf(f.Pos, "field %s has void type", f.Name)
			}
		}
	}
	// Functions: prototypes and definitions must agree; at most one body.
	for _, fn := range c.cp.Prog.Funcs {
		c.resolveType(fn.Ret, fn.Pos)
		for _, p := range fn.Params {
			c.resolveType(p.Type, p.Pos)
			c.checkDeclQual(p.Type, p.Pos, "parameter")
			if IsVoid(p.Type) || isStructValue(p.Type) {
				c.errorf(p.Pos, "parameter %s has invalid type %s", p.Name, p.Type)
			}
		}
		if prev, ok := c.cp.FuncByName[fn.Name]; ok {
			if !c.sameSignature(prev, fn) {
				c.errorf(fn.Pos, "conflicting declarations of %s", fn.Name)
			}
			if prev.Body != nil && fn.Body != nil {
				c.errorf(fn.Pos, "duplicate definition of %s", fn.Name)
			}
			if fn.Body != nil {
				c.cp.FuncByName[fn.Name] = fn
			}
		} else {
			if builtinByName[fn.Name] != BNone || fn.Name == "ralloc" || fn.Name == "rarrayalloc" {
				c.errorf(fn.Pos, "%s is a builtin and cannot be redefined", fn.Name)
			}
			c.cp.FuncByName[fn.Name] = fn
		}
	}
	// Globals.
	for _, g := range c.cp.Prog.Globals {
		c.resolveType(g.Type, g.Pos)
		c.checkDeclQual(g.Type, g.Pos, "global")
		if IsVoid(g.Type) || isStructValue(g.Type) {
			c.errorf(g.Pos, "global %s has invalid type %s", g.Name, g.Type)
		}
		if _, dup := c.globals[g.Name]; dup {
			c.errorf(g.Pos, "duplicate global %s", g.Name)
			continue
		}
		if g.ArrayLen < 0 || (g.ArrayLen == 0 && g.Init != nil && !c.constInit(g)) {
			continue
		}
		v := &VarInfo{Name: g.Name, Kind: VarGlobal, Index: c.cp.GlobalWords, Decl: g.Pos}
		if g.ArrayLen > 0 {
			// The global's value is a pointer to the startup-allocated
			// array.
			v.Type = &Pointer{Elem: g.Type}
			v.ArrayGlobal = true
		} else {
			v.Type = g.Type
		}
		g.Index = v.Index
		c.cp.GlobalWords++
		c.globals[g.Name] = v
	}
}

// constInit validates a global initializer (constants only) and reports
// whether it is acceptable.
func (c *checker) constInit(g *GlobalDecl) bool {
	switch x := g.Init.(type) {
	case *IntLit:
		if !IsNumeric(g.Type) {
			c.errorf(g.Pos, "numeric initializer for %s global %s", g.Type, g.Name)
			return false
		}
		return true
	case *NullLit:
		if _, ok := g.Type.(*Pointer); !ok {
			c.errorf(g.Pos, "null initializer for non-pointer global %s", g.Name)
			return false
		}
		return true
	case *StrLit:
		p, ok := g.Type.(*Pointer)
		if !ok || !IsNumeric(p.Elem) {
			c.errorf(g.Pos, "string initializer needs char* global, have %s", g.Type)
			return false
		}
		c.internString(x)
		return true
	case *Unary:
		if x.Op == OpNeg {
			if lit, ok := x.X.(*IntLit); ok {
				_ = lit
				if !IsNumeric(g.Type) {
					c.errorf(g.Pos, "numeric initializer for %s global %s", g.Type, g.Name)
					return false
				}
				return true
			}
		}
	}
	c.errorf(g.Pos, "global initializer for %s must be a constant", g.Name)
	return false
}

func isStructValue(t Type) bool {
	_, ok := t.(*StructRef)
	return ok
}

// checkDeclQual rejects sameregion/parentptr as the outermost qualifier of
// a variable declaration: those annotations are relative to a containing
// heap object, which locals, parameters and globals do not have.
// traditional is allowed anywhere. Inner pointer levels may carry any
// qualifier (they describe heap slots reached through the pointer).
func (c *checker) checkDeclQual(t Type, pos Pos, what string) {
	if p, ok := t.(*Pointer); ok {
		if p.Qual == QualSameRegion || p.Qual == QualParentPtr {
			c.errorf(pos, "%s qualifier is only meaningful on struct fields, not on a %s", p.Qual, what)
		}
	}
}

func (c *checker) resolveType(t Type, pos Pos) {
	switch x := t.(type) {
	case *Pointer:
		c.resolveType(x.Elem, pos)
	case *StructRef:
		if x.Decl == nil {
			d, ok := c.cp.StructByName[x.Name]
			if !ok {
				c.errorf(pos, "undefined struct %s", x.Name)
				return
			}
			x.Decl = d
		}
	}
}

func (c *checker) sameSignature(a, b *FuncDecl) bool {
	if !SameType(a.Ret, b.Ret) || len(a.Params) != len(b.Params) || a.Deletes != b.Deletes {
		return false
	}
	for i := range a.Params {
		if !SameType(a.Params[i].Type, b.Params[i].Type) {
			return false
		}
	}
	return true
}

func (c *checker) internString(s *StrLit) {
	idx, ok := c.strIdx[s.Value]
	if !ok {
		idx = len(c.cp.Strings)
		c.cp.Strings = append(c.cp.Strings, s.Value)
		c.strIdx[s.Value] = idx
	}
	s.Idx = idx
	s.setType(&Pointer{Elem: CharT})
}

// ---------------------------------------------------------------------------
// Function bodies.

func (c *checker) checkFunc(fn *FuncDecl) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(tooManyErrors); !ok {
				panic(r)
			}
		}
	}()
	c.fn = fn
	c.scopes = []map[string]*VarInfo{make(map[string]*VarInfo)}
	fn.Vars = nil
	for _, p := range fn.Params {
		v := &VarInfo{Name: p.Name, Type: p.Type, Kind: VarParam, Index: len(fn.Vars), Decl: p.Pos}
		if _, dup := c.scopes[0][p.Name]; dup {
			c.errorf(p.Pos, "duplicate parameter %s", p.Name)
		}
		c.scopes[0][p.Name] = v
		fn.Vars = append(fn.Vars, v)
	}
	c.checkBlock(fn.Body)
	c.fn = nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*VarInfo)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *VarInfo {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	return c.globals[name]
}

func (c *checker) checkBlock(b *Block) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		c.checkBlock(st)
	case *DeclStmt:
		c.resolveType(st.Type, st.Pos)
		c.checkDeclQual(st.Type, st.Pos, "local")
		if IsVoid(st.Type) || isStructValue(st.Type) {
			c.errorf(st.Pos, "local %s has invalid type %s", st.Name, st.Type)
			return
		}
		if st.Init != nil {
			t := c.checkExpr(st.Init)
			if !c.assignable(st.Type, t, st.Init) {
				c.errorf(st.Pos, "cannot initialize %s %s with %s", st.Type, st.Name, t)
			}
		}
		if _, dup := c.scopes[len(c.scopes)-1][st.Name]; dup {
			c.errorf(st.Pos, "duplicate variable %s in this scope", st.Name)
			return
		}
		v := &VarInfo{Name: st.Name, Type: st.Type, Kind: VarLocal, Index: len(c.fn.Vars), Decl: st.Pos}
		c.fn.Vars = append(c.fn.Vars, v)
		c.scopes[len(c.scopes)-1][st.Name] = v
		st.Var = v
	case *ExprStmt:
		c.checkExpr(st.X)
	case *IfStmt:
		c.checkCond(st.Cond)
		c.checkStmt(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *WhileStmt:
		c.checkCond(st.Cond)
		c.loop++
		c.checkStmt(st.Body)
		c.loop--
	case *DoWhileStmt:
		c.loop++
		c.checkStmt(st.Body)
		c.loop--
		c.checkCond(st.Cond)
	case *ForStmt:
		if st.Init != nil {
			c.checkExpr(st.Init)
		}
		if st.Cond != nil {
			c.checkCond(st.Cond)
		}
		if st.Post != nil {
			c.checkExpr(st.Post)
		}
		c.loop++
		c.checkStmt(st.Body)
		c.loop--
	case *ReturnStmt:
		if st.X == nil {
			if !IsVoid(c.fn.Ret) {
				c.errorf(st.Pos, "missing return value in %s", c.fn.Name)
			}
			return
		}
		if IsVoid(c.fn.Ret) {
			c.errorf(st.Pos, "return with value in void function %s", c.fn.Name)
			return
		}
		t := c.checkExpr(st.X)
		if !c.assignable(c.fn.Ret, t, st.X) {
			c.errorf(st.Pos, "cannot return %s from function returning %s", t, c.fn.Ret)
		}
	case *SwitchStmt:
		t := c.checkExpr(st.Cond)
		if t != nil && !IsNumeric(t) {
			c.errorf(st.Pos, "switch condition has type %s", t)
		}
		seen := map[int64]bool{}
		defaults := 0
		c.swDepth++
		for _, cl := range st.Clauses {
			if cl.IsDefault {
				defaults++
				if defaults > 1 {
					c.errorf(cl.Pos, "multiple default clauses")
				}
			} else {
				if seen[cl.Value] {
					c.errorf(cl.Pos, "duplicate case %d", cl.Value)
				}
				seen[cl.Value] = true
			}
			c.pushScope()
			for _, s := range cl.Stmts {
				c.checkStmt(s)
			}
			c.popScope()
		}
		c.swDepth--
	case *BreakStmt:
		if c.loop == 0 && c.swDepth == 0 {
			c.errorf(st.Pos, "break outside loop or switch")
		}
	case *ContinueStmt:
		if c.loop == 0 {
			c.errorf(st.Pos, "continue outside loop")
		}
	}
}

// checkCond types a condition: numeric, pointer or region (tested against
// zero/null).
func (c *checker) checkCond(e Expr) {
	t := c.checkExpr(e)
	if t == nil {
		return
	}
	switch t.(type) {
	case *Pointer:
		return
	case *Basic:
		if !IsVoid(t) {
			return
		}
	}
	c.errorf(e.Position(), "invalid condition of type %s", t)
}

// assignable reports whether a value of type src (from expression rhs,
// used to special-case null) may be assigned to a slot of type dst.
func (c *checker) assignable(dst, src Type, rhs Expr) bool {
	if src == nil || dst == nil {
		return true // prior error
	}
	if _, isNull := rhs.(*NullLit); isNull {
		_, ok := dst.(*Pointer)
		return ok
	}
	return SameType(dst, src)
}

// checkExpr types an expression and records the type on the node.
func (c *checker) checkExpr(e Expr) Type {
	t := c.typeExpr(e)
	if t != nil {
		setExprType(e, t)
	}
	return t
}

func setExprType(e Expr, t Type) {
	switch x := e.(type) {
	case *IntLit:
		x.setType(t)
	case *StrLit:
		x.setType(t)
	case *NullLit:
		x.setType(t)
	case *VarRef:
		x.setType(t)
	case *Unary:
		x.setType(t)
	case *Binary:
		x.setType(t)
	case *Ternary:
		x.setType(t)
	case *Assign:
		x.setType(t)
	case *Call:
		x.setType(t)
	case *RallocExpr:
		x.setType(t)
	case *FieldAccess:
		x.setType(t)
	case *Index:
		x.setType(t)
	}
}

var builtinByName = map[string]Builtin{
	"newregion":    BNewRegion,
	"newsubregion": BNewSubregion,
	"deleteregion": BDeleteRegion,
	"regionof":     BRegionOf,
	"arraylen":     BArrayLen,
	"print_int":    BPrintInt,
	"print_char":   BPrintChar,
	"print_str":    BPrintStr,
	"assert":       BAssert,
}

func (c *checker) typeExpr(e Expr) Type {
	switch x := e.(type) {
	case *IntLit:
		if x.Type() != nil {
			return x.Type()
		}
		return IntT
	case *StrLit:
		c.internString(x)
		return x.Type()
	case *NullLit:
		// Typed as a wildcard pointer; assignability special-cases it.
		return &Pointer{Elem: VoidT}
	case *VarRef:
		v := c.lookup(x.Name)
		if v == nil {
			c.errorf(x.Position(), "undefined variable %s", x.Name)
			return nil
		}
		x.Var = v
		return v.Type
	case *Unary:
		return c.typeUnary(x)
	case *Binary:
		return c.typeBinary(x)
	case *Ternary:
		c.checkCond(x.Cond)
		t1 := c.checkExpr(x.Then)
		t2 := c.checkExpr(x.Else)
		if t1 == nil || t2 == nil {
			return t1
		}
		if _, isNull := x.Then.(*NullLit); isNull {
			return t2
		}
		if _, isNull := x.Else.(*NullLit); isNull {
			return t1
		}
		if !SameType(t1, t2) {
			c.errorf(x.Position(), "ternary branches have mismatched types %s and %s", t1, t2)
		}
		return t1
	case *Assign:
		return c.typeAssign(x)
	case *Call:
		return c.typeCall(x)
	case *RallocExpr:
		return c.typeRalloc(x)
	case *FieldAccess:
		t := c.checkExpr(x.X)
		if t == nil {
			return nil
		}
		p, ok := t.(*Pointer)
		if !ok {
			c.errorf(x.Position(), "-> on non-pointer type %s", t)
			return nil
		}
		sr, ok := p.Elem.(*StructRef)
		if !ok || sr.Decl == nil {
			c.errorf(x.Position(), "-> on pointer to non-struct type %s", p.Elem)
			return nil
		}
		f := sr.Decl.FieldByName(x.Name)
		if f == nil {
			c.errorf(x.Position(), "struct %s has no field %s", sr.Name, x.Name)
			return nil
		}
		x.Field = f
		return f.Type
	case *Index:
		t := c.checkExpr(x.X)
		it := c.checkExpr(x.Idx)
		if t == nil {
			return nil
		}
		p, ok := t.(*Pointer)
		if !ok {
			c.errorf(x.Position(), "index on non-pointer type %s", t)
			return nil
		}
		if it != nil && !IsNumeric(it) {
			c.errorf(x.Position(), "index of type %s", it)
		}
		if IsVoid(p.Elem) {
			c.errorf(x.Position(), "index on void pointer")
			return nil
		}
		if isStructValue(p.Elem) {
			c.errorf(x.Position(), "cannot use struct array element as a value; use &%s[...]", Dump(x.X))
			return nil
		}
		return p.Elem
	}
	c.errorf(e.Position(), "unsupported expression")
	return nil
}

func (c *checker) typeUnary(x *Unary) Type {
	switch x.Op {
	case OpNeg:
		t := c.checkExpr(x.X)
		if t != nil && !IsNumeric(t) {
			c.errorf(x.Position(), "unary - on type %s", t)
		}
		return IntT
	case OpNot:
		c.checkCond(x.X)
		return IntT
	case OpDeref:
		t := c.checkExpr(x.X)
		if t == nil {
			return nil
		}
		p, ok := t.(*Pointer)
		if !ok {
			c.errorf(x.Position(), "* on non-pointer type %s", t)
			return nil
		}
		if isStructValue(p.Elem) {
			c.errorf(x.Position(), "cannot use struct value; use ->")
			return nil
		}
		if IsVoid(p.Elem) {
			c.errorf(x.Position(), "* on void pointer")
			return nil
		}
		return p.Elem
	case OpAddr:
		// &p[i] is legal even for struct elements (it is the only way to
		// address into a struct array), so type the index directly.
		if ix, ok := x.X.(*Index); ok {
			bt := c.checkExpr(ix.X)
			it := c.checkExpr(ix.Idx)
			if bt == nil {
				return nil
			}
			p, okp := bt.(*Pointer)
			if !okp {
				c.errorf(x.Position(), "index on non-pointer type %s", bt)
				return nil
			}
			if it != nil && !IsNumeric(it) {
				c.errorf(x.Position(), "index of type %s", it)
			}
			setExprType(ix, p.Elem)
			return &Pointer{Elem: p.Elem}
		}
		t := c.checkExpr(x.X)
		if t == nil {
			return nil
		}
		switch lv := x.X.(type) {
		case *VarRef:
			if lv.Var != nil {
				if IsRegion(lv.Var.Type) {
					// Region handles are not addressable: their storage
					// is runtime metadata.
					c.errorf(x.Position(), "cannot take the address of region variable %s", lv.Name)
					return nil
				}
				lv.Var.AddrTaken = true
			}
		case *FieldAccess, *Index:
			// Heap lvalues are addressable as-is.
		case *Unary:
			if lv.Op == OpDeref {
				return lv.X.Type() // &*p == p
			}
			c.errorf(x.Position(), "& of non-lvalue")
			return nil
		default:
			c.errorf(x.Position(), "& of non-lvalue")
			return nil
		}
		return &Pointer{Elem: t}
	}
	return nil
}

func (c *checker) typeBinary(x *Binary) Type {
	if x.Op == OpAnd || x.Op == OpOr {
		c.checkCond(x.L)
		c.checkCond(x.R)
		return IntT
	}
	lt := c.checkExpr(x.L)
	rt := c.checkExpr(x.R)
	if lt == nil || rt == nil {
		return IntT
	}
	switch x.Op {
	case OpEq, OpNe:
		_, lp := lt.(*Pointer)
		_, rp := rt.(*Pointer)
		_, lNull := x.L.(*NullLit)
		_, rNull := x.R.(*NullLit)
		switch {
		case IsNumeric(lt) && IsNumeric(rt):
		case lNull || rNull:
			if !lp && !rp {
				c.errorf(x.Position(), "invalid comparison between %s and %s", lt, rt)
			}
		case lp && rp:
			if !SameType(lt, rt) {
				c.errorf(x.Position(), "comparison of distinct pointer types %s and %s", lt, rt)
			}
		case IsRegion(lt) && IsRegion(rt):
		default:
			c.errorf(x.Position(), "invalid comparison between %s and %s", lt, rt)
		}
		return IntT
	case OpLt, OpLe, OpGt, OpGe:
		if !IsNumeric(lt) || !IsNumeric(rt) {
			c.errorf(x.Position(), "ordered comparison between %s and %s", lt, rt)
		}
		return IntT
	default: // arithmetic
		if !IsNumeric(lt) || !IsNumeric(rt) {
			c.errorf(x.Position(), "arithmetic on %s and %s", lt, rt)
		}
		return IntT
	}
}

func (c *checker) typeAssign(x *Assign) Type {
	lt := c.checkExpr(x.LHS)
	rt := c.checkExpr(x.RHS)
	if lt == nil {
		return nil
	}
	info := &AssignInfo{}
	// Classify the target.
	switch lv := x.LHS.(type) {
	case *VarRef:
		if lv.Var == nil {
			return nil
		}
		if lv.Var.ArrayGlobal {
			c.errorf(x.Position(), "cannot assign to array %s", lv.Name)
			return nil
		}
		if lv.Var.Kind == VarGlobal || lv.Var.AddrTaken {
			info.Class = StoreMem
		} else {
			info.Class = StoreReg
		}
		if p, ok := lv.Var.Type.(*Pointer); ok {
			info.Qual = p.Qual
		}
	case *FieldAccess:
		info.Class = StoreMem
		if lv.Field != nil {
			if p, ok := lv.Field.Type.(*Pointer); ok {
				info.Qual = p.Qual
			}
		}
	case *Index:
		info.Class = StoreMem
		if p, ok := lv.X.Type().(*Pointer); ok {
			if ep, ok := p.Elem.(*Pointer); ok {
				info.Qual = ep.Qual
			}
		}
	case *Unary:
		if lv.Op != OpDeref {
			c.errorf(x.Position(), "assignment to non-lvalue")
			return nil
		}
		info.Class = StoreMem
		if p, ok := lv.X.Type().(*Pointer); ok {
			if ep, ok := p.Elem.(*Pointer); ok {
				info.Qual = ep.Qual
			}
		}
	default:
		c.errorf(x.Position(), "assignment to non-lvalue")
		return nil
	}
	if x.Op == PlusAssign || x.Op == MinusAssign {
		if !IsNumeric(lt) || (rt != nil && !IsNumeric(rt)) {
			c.errorf(x.Position(), "compound assignment on %s and %s", lt, rt)
		}
	} else if !c.assignable(lt, rt, x.RHS) {
		c.errorf(x.Position(), "cannot assign %s to %s", rt, lt)
	}
	// Pointer-store sites get a site ID for the inference results. A
	// memory store of a pointer-typed value is a barrier site; stores of
	// regions and scalars are not.
	if _, isPtr := lt.(*Pointer); isPtr && info.Class == StoreMem {
		info.PtrStore = true
		x.SiteID = c.cp.NumSites
		c.cp.NumSites++
	} else {
		x.SiteID = -1
	}
	x.Info = info
	return lt
}

func (c *checker) typeRalloc(x *RallocExpr) Type {
	rt := c.checkExpr(x.Region)
	if rt != nil && !IsRegion(rt) {
		c.errorf(x.Position(), "ralloc region argument has type %s", rt)
	}
	if x.Count != nil {
		ct := c.checkExpr(x.Count)
		if ct != nil && !IsNumeric(ct) {
			c.errorf(x.Position(), "rarrayalloc count has type %s", ct)
		}
	}
	c.resolveType(x.AllocTy, x.Position())
	switch t := x.AllocTy.(type) {
	case *StructRef:
		x.IsStruct = true
		if t.Decl == nil {
			return nil
		}
		return &Pointer{Elem: t}
	case *Basic:
		if t.Kind == Void {
			c.errorf(x.Position(), "cannot allocate void")
			return nil
		}
		return &Pointer{Elem: t}
	case *Pointer:
		return &Pointer{Elem: t}
	}
	return nil
}

func (c *checker) typeCall(x *Call) Type {
	if b, ok := builtinByName[x.Name]; ok {
		x.Builtin = b
		return c.typeBuiltin(x, b)
	}
	fn, ok := c.cp.FuncByName[x.Name]
	if !ok {
		c.errorf(x.Position(), "undefined function %s", x.Name)
		return nil
	}
	x.Func = fn
	if len(x.Args) != len(fn.Params) {
		c.errorf(x.Position(), "%s takes %d arguments, got %d", fn.Name, len(fn.Params), len(x.Args))
		return fn.Ret
	}
	for i, a := range x.Args {
		at := c.checkExpr(a)
		if !c.assignable(fn.Params[i].Type, at, a) {
			c.errorf(a.Position(), "argument %d of %s: cannot pass %s as %s",
				i+1, fn.Name, at, fn.Params[i].Type)
		}
	}
	return fn.Ret
}

func (c *checker) typeBuiltin(x *Call, b Builtin) Type {
	argTypes := make([]Type, len(x.Args))
	for i, a := range x.Args {
		argTypes[i] = c.checkExpr(a)
	}
	want := func(n int) bool {
		if len(x.Args) != n {
			c.errorf(x.Position(), "%s takes %d argument(s), got %d", x.Name, n, len(x.Args))
			return false
		}
		return true
	}
	isPtrArg := func(i int) bool {
		if argTypes[i] == nil {
			return true
		}
		_, ok := argTypes[i].(*Pointer)
		if !ok {
			c.errorf(x.Args[i].Position(), "%s argument %d must be a pointer, have %s", x.Name, i+1, argTypes[i])
		}
		return ok
	}
	isRegionArg := func(i int) bool {
		if argTypes[i] == nil {
			return true
		}
		if !IsRegion(argTypes[i]) {
			c.errorf(x.Args[i].Position(), "%s argument %d must be a region, have %s", x.Name, i+1, argTypes[i])
			return false
		}
		return true
	}
	isNumArg := func(i int) {
		if argTypes[i] != nil && !IsNumeric(argTypes[i]) {
			c.errorf(x.Args[i].Position(), "%s argument %d must be numeric, have %s", x.Name, i+1, argTypes[i])
		}
	}
	switch b {
	case BNewRegion:
		want(0)
		return RegionT
	case BNewSubregion:
		if want(1) {
			isRegionArg(0)
		}
		return RegionT
	case BDeleteRegion:
		if want(1) {
			isRegionArg(0)
		}
		return VoidT
	case BRegionOf:
		if want(1) {
			isPtrArg(0)
		}
		return RegionT
	case BArrayLen:
		if want(1) {
			isPtrArg(0)
		}
		return IntT
	case BPrintInt, BPrintChar, BAssert:
		if want(1) {
			isNumArg(0)
		}
		return VoidT
	case BPrintStr:
		if want(1) {
			isPtrArg(0)
		}
		return VoidT
	}
	return nil
}

// checkDeletes enforces the deletes-qualifier rule: any function that
// calls a deletes function (or deleteregion) must itself be qualified
// deletes (Section 3.3.2 of the paper). The diagnostic carries a fix-it
// hint naming the call chain that forces the qualifier, from the
// offending function down to the deleteregion call at its root, so the
// author of a deep call tree sees why the qualifier is demanded and
// where to stop propagating it.
func (c *checker) checkDeletes() {
	for _, fn := range c.cp.Prog.Funcs {
		if fn.Body == nil {
			continue
		}
		walkCalls(fn.Body, func(call *Call, pos Pos) {
			deletes := call.Builtin == BDeleteRegion ||
				(call.Func != nil && call.Func.Deletes)
			if deletes && !fn.Deletes {
				chain := append([]string{fn.Name}, c.deletesChain(call)...)
				c.errorf(pos, "%s calls deletes function %s but is not qualified deletes (fix: declare '%s' with the deletes qualifier; forced by call chain %s)",
					fn.Name, call.Name, fn.Name, strings.Join(chain, " -> "))
			}
		})
	}
}

// deletesChain names the calls that force a deletes qualifier through
// the given call: a shortest path from the callee through declared
// deletes functions down to a deleteregion call. A body-less deletes
// function (an extern declaration) ends the chain at its own name —
// the qualifier is its contract, not something the checker can see
// through.
func (c *checker) deletesChain(call *Call) []string {
	if call.Builtin == BDeleteRegion {
		return []string{"deleteregion"}
	}
	type node struct {
		fn   *FuncDecl
		path []string
	}
	seen := map[*FuncDecl]bool{call.Func: true}
	queue := []node{{call.Func, []string{call.Func.Name}}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.fn.Body == nil {
			return n.path
		}
		direct := false
		var next []*FuncDecl
		walkCalls(n.fn.Body, func(sub *Call, _ Pos) {
			if sub.Builtin == BDeleteRegion {
				direct = true
			} else if sub.Func != nil && sub.Func.Deletes && !seen[sub.Func] {
				seen[sub.Func] = true
				next = append(next, sub.Func)
			}
		})
		if direct {
			return append(n.path, "deleteregion")
		}
		for _, g := range next {
			path := append(append([]string(nil), n.path...), g.Name)
			queue = append(queue, node{g, path})
		}
	}
	// A deletes qualifier with no reachable deleteregion: declared more
	// broadly than needed, but still binding on callers.
	return []string{call.Func.Name}
}

// walkCalls visits every Call in a statement tree.
func walkCalls(s Stmt, f func(*Call, Pos)) {
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *Unary:
			walkExpr(x.X)
		case *Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Ternary:
			walkExpr(x.Cond)
			walkExpr(x.Then)
			walkExpr(x.Else)
		case *Assign:
			walkExpr(x.LHS)
			walkExpr(x.RHS)
		case *Call:
			for _, a := range x.Args {
				walkExpr(a)
			}
			f(x, x.Position())
		case *RallocExpr:
			walkExpr(x.Region)
			if x.Count != nil {
				walkExpr(x.Count)
			}
		case *FieldAccess:
			walkExpr(x.X)
		case *Index:
			walkExpr(x.X)
			walkExpr(x.Idx)
		}
	}
	var walkStmt func(Stmt)
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, sub := range st.Stmts {
				walkStmt(sub)
			}
		case *DeclStmt:
			if st.Init != nil {
				walkExpr(st.Init)
			}
		case *ExprStmt:
			walkExpr(st.X)
		case *IfStmt:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *WhileStmt:
			walkExpr(st.Cond)
			walkStmt(st.Body)
		case *DoWhileStmt:
			walkStmt(st.Body)
			walkExpr(st.Cond)
		case *ForStmt:
			if st.Init != nil {
				walkExpr(st.Init)
			}
			if st.Cond != nil {
				walkExpr(st.Cond)
			}
			if st.Post != nil {
				walkExpr(st.Post)
			}
			walkStmt(st.Body)
		case *SwitchStmt:
			walkExpr(st.Cond)
			for _, cl := range st.Clauses {
				for _, sub := range cl.Stmts {
					walkStmt(sub)
				}
			}
		case *ReturnStmt:
			if st.X != nil {
				walkExpr(st.X)
			}
		}
	}
	walkStmt(s)
}
