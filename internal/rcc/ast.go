package rcc

import (
	"fmt"
	"strings"
)

// Qual is a pointer type annotation (Section 3.2 of the paper).
type Qual int

const (
	QualNone Qual = iota
	QualSameRegion
	QualTraditional
	QualParentPtr
)

func (q Qual) String() string {
	switch q {
	case QualSameRegion:
		return "sameregion"
	case QualTraditional:
		return "traditional"
	case QualParentPtr:
		return "parentptr"
	default:
		return ""
	}
}

// Type is an RC dialect type. Every value is one word; structs exist only
// behind pointers.
type Type interface {
	String() string
	isType()
}

// BasicKind enumerates the scalar types.
type BasicKind int

const (
	Int BasicKind = iota
	Char
	Void
	RegionK
)

// Basic is a scalar type.
type Basic struct{ Kind BasicKind }

func (b *Basic) isType() {}
func (b *Basic) String() string {
	switch b.Kind {
	case Int:
		return "int"
	case Char:
		return "char"
	case Void:
		return "void"
	default:
		return "region"
	}
}

// Shared basic type instances.
var (
	IntT    = &Basic{Int}
	CharT   = &Basic{Char}
	VoidT   = &Basic{Void}
	RegionT = &Basic{RegionK}
)

// Pointer is a pointer type with an optional qualifier on this level.
type Pointer struct {
	Elem Type
	Qual Qual
}

func (p *Pointer) isType() {}
func (p *Pointer) String() string {
	s := p.Elem.String() + " *"
	if p.Qual != QualNone {
		s += p.Qual.String()
	}
	return strings.TrimRight(s, " ")
}

// StructRef is a named struct type; Decl is resolved by the checker.
type StructRef struct {
	Name string
	Decl *StructDecl
}

func (s *StructRef) isType()        {}
func (s *StructRef) String() string { return "struct " + s.Name }

// IsNumeric reports whether t is int or char.
func IsNumeric(t Type) bool {
	b, ok := t.(*Basic)
	return ok && (b.Kind == Int || b.Kind == Char)
}

// IsRegion reports whether t is the region type.
func IsRegion(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.Kind == RegionK
}

// IsVoid reports whether t is void.
func IsVoid(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.Kind == Void
}

// SameType reports type identity, ignoring pointer qualifiers (annotations
// are dynamic properties; converting between differently-qualified
// pointers is legal and checked at runtime).
func SameType(a, b Type) bool {
	switch x := a.(type) {
	case *Basic:
		y, ok := b.(*Basic)
		if !ok {
			return false
		}
		if x.Kind == y.Kind {
			return true
		}
		// char and int are interchangeable.
		return IsNumeric(x) && IsNumeric(y)
	case *Pointer:
		y, ok := b.(*Pointer)
		return ok && SameType(x.Elem, y.Elem)
	case *StructRef:
		y, ok := b.(*StructRef)
		return ok && x.Name == y.Name
	}
	return false
}

// ---------------------------------------------------------------------------
// Declarations.

// Program is a parsed RC translation unit.
type Program struct {
	Structs []*StructDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// StructDecl declares a struct. Field offsets are word indexes (every
// field is one word).
type StructDecl struct {
	Name   string
	Fields []*Field
	Pos    Pos
}

// Field is a struct member.
type Field struct {
	Name   string
	Type   Type
	Offset uint64
	Pos    Pos
}

// FieldByName returns the named field or nil.
func (s *StructDecl) FieldByName(name string) *Field {
	for _, f := range s.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// SizeWords is the struct size in words.
func (s *StructDecl) SizeWords() uint64 { return uint64(len(s.Fields)) }

// GlobalDecl declares a global variable. If ArrayLen > 0 the global is a
// statically sized array of Type elements, allocated in the traditional
// region at startup; the global's value is the array's address.
type GlobalDecl struct {
	Name     string
	Type     Type
	ArrayLen int64
	Init     Expr // optional constant initializer
	Pos      Pos

	Index int // filled by the checker: slot in the globals area
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
	Pos  Pos
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name    string
	Ret     Type
	Params  []*Param
	Deletes bool
	// Static mirrors C's static storage class: the function is private
	// to its translation unit, so separate-compilation analyses may keep
	// its inferred properties (non-static functions must assume unknown
	// callers — the paper's file-boundary rule).
	Static bool
	Body   *Block // nil for a prototype
	Pos    Pos

	// Filled by the checker.
	Vars []*VarInfo // params then locals, in declaration order
}

// VarKind distinguishes variable storage.
type VarKind int

const (
	VarParam VarKind = iota
	VarLocal
	VarGlobal
)

// VarInfo is the checker's record of a variable.
type VarInfo struct {
	Name      string
	Type      Type
	Kind      VarKind
	Index     int  // per-function var index, or global slot
	AddrTaken bool // address-of applied: lives in the stack area
	// ArrayGlobal marks a global declared as a static array: its value
	// is the address of the startup-allocated array in the traditional
	// region. Like a C array name, it is not assignable.
	ArrayGlobal bool
	Decl        Pos
}

// ---------------------------------------------------------------------------
// Statements.

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt declares (and optionally initializes) a local variable.
type DeclStmt struct {
	Name string
	Type Type
	Init Expr
	Pos  Pos

	Var *VarInfo // filled by the checker
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// DoWhileStmt is a C do/while loop: the body runs at least once.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	Pos  Pos
}

// ForStmt is a C for loop. Init and Post may be nil; Cond may be nil
// (infinite).
type ForStmt struct {
	Init Expr
	Cond Expr
	Post Expr
	Body Stmt
	Pos  Pos
}

// SwitchStmt is a C switch with fallthrough semantics. Clauses appear in
// source order; control falls from one clause's statements into the next
// unless a break intervenes.
type SwitchStmt struct {
	Cond    Expr
	Clauses []*CaseClause
	Pos     Pos
}

// CaseClause is one case (or default) label and its statements.
type CaseClause struct {
	Value     int64 // case constant; ignored for default
	IsDefault bool
	Stmts     []Stmt
	Pos       Pos
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	X   Expr // nil for void
	Pos Pos
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Expressions.

// Expr is an expression node. The checker fills in types via SetType.
type Expr interface {
	exprNode()
	Type() Type
	Position() Pos
}

type exprBase struct {
	typ Type
	pos Pos
}

func (e *exprBase) exprNode()     {}
func (e *exprBase) Type() Type    { return e.typ }
func (e *exprBase) Position() Pos { return e.pos }
func (e *exprBase) setType(t Type) {
	e.typ = t
}

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Value int64
}

// StrLit is a string literal; its value is a pointer to a NUL-terminated
// char array in the traditional region. Idx is the intern-table index,
// assigned by the checker.
type StrLit struct {
	exprBase
	Value string
	Idx   int
}

// NullLit is the null pointer literal.
type NullLit struct{ exprBase }

// VarRef references a variable.
type VarRef struct {
	exprBase
	Name string
	Var  *VarInfo // filled by the checker
}

// UnOp enumerates unary operators.
type UnOp int

const (
	OpNeg UnOp = iota
	OpNot
	OpDeref
	OpAddr
)

// Unary is a unary operation.
type Unary struct {
	exprBase
	Op UnOp
	X  Expr
}

// BinOp enumerates binary operators.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpAnd // short-circuit &&
	OpOr  // short-circuit ||
)

// Binary is a binary operation.
type Binary struct {
	exprBase
	Op   BinOp
	L, R Expr
}

// Ternary is cond ? a : b.
type Ternary struct {
	exprBase
	Cond, Then, Else Expr
}

// Assign is an assignment expression. Op is Assign, PlusAssign or
// MinusAssign (compound forms are valid on numeric lvalues only).
type Assign struct {
	exprBase
	Op  Tok
	LHS Expr
	RHS Expr

	// SiteID is a unique ID for pointer-store sites, assigned by the
	// checker and used by the rlang constraint inference to report which
	// runtime checks are statically safe. -1 for non-pointer stores.
	SiteID int
	// Info is the checker's classification of the assignment target.
	Info *AssignInfo
}

// Call is a function call (user function or builtin).
type Call struct {
	exprBase
	Name string
	Args []Expr

	Func    *FuncDecl // resolved user function, nil for builtins
	Builtin Builtin   // resolved builtin, BNone for user functions
}

// Builtin identifies the built-in functions.
type Builtin int

const (
	BNone Builtin = iota
	BNewRegion
	BNewSubregion
	BDeleteRegion
	BRegionOf
	BArrayLen
	BPrintInt
	BPrintChar
	BPrintStr
	BAssert
)

// RallocExpr is ralloc(r, T) or rarrayalloc(r, n, T).
type RallocExpr struct {
	exprBase
	Region   Expr
	Count    Expr // nil for single-object ralloc
	AllocTy  Type // the T argument
	IsStruct bool
}

// FieldAccess is x->f (the dialect has no struct values, so only the arrow
// form exists).
type FieldAccess struct {
	exprBase
	X    Expr
	Name string

	Field *Field // filled by the checker
}

// Index is x[i] on a pointer.
type Index struct {
	exprBase
	X   Expr
	Idx Expr
}

// QuoteRC renders a string as an RC string literal, using only the escape
// sequences the RC lexer understands (other bytes, including newlines,
// appear raw — the lexer accepts them).
func QuoteRC(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case 0:
			sb.WriteString(`\0`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// Dump renders an expression for diagnostics.
func Dump(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return fmt.Sprint(x.Value)
	case *StrLit:
		return QuoteRC(x.Value)
	case *NullLit:
		return "null"
	case *VarRef:
		return x.Name
	case *Unary:
		ops := map[UnOp]string{OpNeg: "-", OpNot: "!", OpDeref: "*", OpAddr: "&"}
		return ops[x.Op] + Dump(x.X)
	case *Binary:
		ops := map[BinOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
			OpMod: "%", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
			OpEq: "==", OpNe: "!=", OpAnd: "&&", OpOr: "||"}
		return "(" + Dump(x.L) + " " + ops[x.Op] + " " + Dump(x.R) + ")"
	case *Ternary:
		return "(" + Dump(x.Cond) + " ? " + Dump(x.Then) + " : " + Dump(x.Else) + ")"
	case *Assign:
		op := "="
		switch x.Op {
		case PlusAssign:
			op = "+="
		case MinusAssign:
			op = "-="
		}
		return "(" + Dump(x.LHS) + " " + op + " " + Dump(x.RHS) + ")"
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = Dump(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *RallocExpr:
		if x.Count != nil {
			return "rarrayalloc(" + Dump(x.Region) + ", " + Dump(x.Count) + ", " + x.AllocTy.String() + ")"
		}
		return "ralloc(" + Dump(x.Region) + ", " + x.AllocTy.String() + ")"
	case *FieldAccess:
		return Dump(x.X) + "->" + x.Name
	case *Index:
		return Dump(x.X) + "[" + Dump(x.Idx) + "]"
	}
	return "?"
}
