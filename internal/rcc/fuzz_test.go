package rcc

import (
	"testing"
)

// FuzzParse checks that the front end never panics on arbitrary input,
// and that every program it accepts survives a Format round-trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"void main(void) {}",
		"struct s { int x; };",
		`struct rlist { struct rlist *sameregion next; };
deletes void main(void) { region r = newregion(); deleteregion(r); }`,
		`int f(int a) { switch (a) { case -1: return 0; default: break; } return a; }`,
		`char *s = "a\"b\\c\0d"; void main(void) { print_str(s); }`,
		`void main(void) { int x = 'q' + 0x1F; for (;;) break; }`,
		"void f() { x. }",
		"struct { }",
		"deletes deletes int x;",
		"int a[99999999999];",
		"void main(void) { a(b(c(d(e()))))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		out := Format(prog)
		if _, err := Parse(out); err != nil {
			t.Fatalf("formatted output does not reparse: %v\ninput: %q\noutput:\n%s",
				err, src, out)
		}
		// Checking must also be panic-free (errors are fine).
		_, _ = Check(prog, false)
	})
}

// FuzzLexer checks the lexer alone never panics or loops.
func FuzzLexer(f *testing.F) {
	for _, s := range []string{"", `"`, "'", "/*", "//", "0x", "->>", "|", "\\", "\x00\xff"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		l := NewLexer(src)
		for i := 0; i < len(src)+10; i++ {
			tok, err := l.Next()
			if err != nil || tok.Kind == EOF {
				return
			}
		}
		t.Fatalf("lexer did not terminate on %q", src)
	})
}
