package rcc

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return prog
}

func TestParseFigure1(t *testing.T) {
	// The paper's Figure 1 example, adapted to the dialect.
	prog := mustParse(t, `
struct finfo { int value; };
struct rlist {
	struct rlist *sameregion next;
	struct finfo *sameregion data;
};
void output_rlist(struct rlist *l) {
	while (l) {
		print_int(l->data->value);
		l = l->next;
	}
}
deletes void main(void) {
	struct rlist *rl;
	struct rlist *last = null;
	region r = newregion();
	int i = 0;
	while (i < 10) {
		rl = ralloc(r, struct rlist);
		rl->data = ralloc(r, struct finfo);
		rl->data->value = i;
		rl->next = last;
		last = rl;
		i = i + 1;
	}
	output_rlist(last);
	deleteregion(r);
}
`)
	if len(prog.Structs) != 2 || len(prog.Funcs) != 2 {
		t.Fatalf("got %d structs, %d funcs", len(prog.Structs), len(prog.Funcs))
	}
	if prog.Structs[1].Name != "rlist" || len(prog.Structs[1].Fields) != 2 {
		t.Error("rlist struct wrong")
	}
	f := prog.Structs[1].Fields[0]
	p, ok := f.Type.(*Pointer)
	if !ok || p.Qual != QualSameRegion {
		t.Errorf("next field type = %v", f.Type)
	}
	if !prog.Funcs[1].Deletes {
		t.Error("main not marked deletes")
	}
}

func TestParseQualifiers(t *testing.T) {
	prog := mustParse(t, `
struct t {
	int *traditional a;
	struct t *parentptr up;
	struct t *sameregion *sameregion arr;
};
`)
	fs := prog.Structs[0].Fields
	if fs[0].Type.(*Pointer).Qual != QualTraditional {
		t.Error("traditional qual lost")
	}
	if fs[1].Type.(*Pointer).Qual != QualParentPtr {
		t.Error("parentptr qual lost")
	}
	outer := fs[2].Type.(*Pointer)
	if outer.Qual != QualSameRegion || outer.Elem.(*Pointer).Qual != QualSameRegion {
		t.Error("nested quals lost")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustParse(t, `int f(int a, int b) { return a + b * 2 - -a % 3; }`)
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	got := Dump(ret.X)
	want := "((a + (b * 2)) - (-a % 3))"
	if got != want {
		t.Errorf("precedence: got %s, want %s", got, want)
	}
}

func TestParseTernaryAndLogic(t *testing.T) {
	prog := mustParse(t, `int f(int a) { return a > 0 && a < 10 || !a ? 1 : 0; }`)
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	if _, ok := ret.X.(*Ternary); !ok {
		t.Errorf("not a ternary: %s", Dump(ret.X))
	}
}

func TestParsePostIncrement(t *testing.T) {
	prog := mustParse(t, `void f(void) { int i = 0; i++; i--; }`)
	s := prog.Funcs[0].Body.Stmts[1].(*ExprStmt)
	a, ok := s.X.(*Assign)
	if !ok {
		t.Fatalf("i++ not desugared to assignment: %s", Dump(s.X))
	}
	if Dump(a) != "(i = (i + 1))" {
		t.Errorf("i++ desugared to %s", Dump(a))
	}
}

func TestParseCompoundAssign(t *testing.T) {
	prog := mustParse(t, `void f(void) { int i = 0; i += 2; i -= 3; }`)
	s := prog.Funcs[0].Body.Stmts[1].(*ExprStmt)
	if a, ok := s.X.(*Assign); !ok || a.Op != PlusAssign {
		t.Error("+= not parsed")
	}
}

func TestParseRalloc(t *testing.T) {
	prog := mustParse(t, `
struct v { int x; };
void f(region r) {
	struct v *a = ralloc(r, struct v);
	int *b = rarrayalloc(r, 10, int);
	a = a;
	b = b;
}`)
	decl := prog.Funcs[0].Body.Stmts[0].(*DeclStmt)
	ra, ok := decl.Init.(*RallocExpr)
	if !ok || ra.Count != nil {
		t.Fatalf("ralloc parse: %s", Dump(decl.Init))
	}
	decl2 := prog.Funcs[0].Body.Stmts[1].(*DeclStmt)
	ra2, ok := decl2.Init.(*RallocExpr)
	if !ok || ra2.Count == nil {
		t.Fatalf("rarrayalloc parse: %s", Dump(decl2.Init))
	}
}

func TestParseGlobalsAndArrays(t *testing.T) {
	prog := mustParse(t, `
int counter = 0;
char buf[4096];
struct s { int x; };
struct s *cache;
`)
	if len(prog.Globals) != 3 {
		t.Fatalf("got %d globals", len(prog.Globals))
	}
	if prog.Globals[1].ArrayLen != 4096 {
		t.Errorf("array len = %d", prog.Globals[1].ArrayLen)
	}
}

func TestParsePrototypeAndStatic(t *testing.T) {
	prog := mustParse(t, `
deletes void helper(region r);
static int util(int x) { return x; }
deletes void helper(region r) { deleteregion(r); }
`)
	if len(prog.Funcs) != 3 {
		t.Fatalf("got %d funcs", len(prog.Funcs))
	}
	if prog.Funcs[0].Body != nil {
		t.Error("prototype has a body")
	}
	if !prog.Funcs[2].Deletes {
		t.Error("deletes lost on definition")
	}
}

func TestParseAddressOfAndDeref(t *testing.T) {
	prog := mustParse(t, `
void f(int **qp) {
	int x = 1;
	*qp = &x;
	x = **qp + (*qp)[0];
}`)
	if len(prog.Funcs[0].Body.Stmts) != 3 {
		t.Fatal("wrong statement count")
	}
}

func TestParseForLoop(t *testing.T) {
	prog := mustParse(t, `void f(void) { int i; for (i = 0; i < 10; i++) print_int(i); for (;;) break; }`)
	f := prog.Funcs[0].Body.Stmts[1].(*ForStmt)
	if f.Init == nil || f.Cond == nil || f.Post == nil {
		t.Error("for clauses missing")
	}
	inf := prog.Funcs[0].Body.Stmts[2].(*ForStmt)
	if inf.Init != nil || inf.Cond != nil || inf.Post != nil {
		t.Error("empty for clauses not nil")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`void f() { x. y; }`, "struct values"},
		{`void f() { return }`, "expected"},
		{`struct s { int x }`, "expected"},
		{`deletes int g;`, "deletes qualifier on a variable"},
		{`void f() { int x = ; }`, "expected expression"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("no error for %q", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error for %q = %v, want substring %q", tc.src, err, tc.want)
		}
	}
}
