package rcc

import "testing"

func kinds(toks []Token) []Tok {
	out := make([]Tok, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := LexAll(`struct rlist *sameregion next; int x = 42;`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Tok{KwStruct, IDENT, Star, KwSameregion, IDENT, Semi,
		KwInt, IDENT, TokAssign, INTLIT, Semi, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if toks[9].Int != 42 {
		t.Errorf("int literal = %d", toks[9].Int)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll(`-> ++ -- += -= == != <= >= && || ? : . & * !`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Tok{Arrow, PlusPlus, MinusMinus, PlusAssign, MinusAssign,
		EqEq, NotEq, Le, Ge, AndAnd, OrOr, Question, Colon, Dot, Amp, Star, Not, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll("a // line comment\n/* block\ncomment */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Errorf("comment handling wrong: %v", toks)
	}
}

func TestLexCharAndString(t *testing.T) {
	toks, err := LexAll(`'a' '\n' '\0' "hi\tthere"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Int != 'a' || toks[1].Int != '\n' || toks[2].Int != 0 {
		t.Errorf("char literals: %v", toks[:3])
	}
	if toks[3].Text != "hi\tthere" {
		t.Errorf("string literal: %q", toks[3].Text)
	}
}

func TestLexHex(t *testing.T) {
	toks, err := LexAll("0x1F 0X10")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Int != 31 || toks[1].Int != 16 {
		t.Errorf("hex literals: %d %d", toks[0].Int, toks[1].Int)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("positions: %v %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'a", `"abc`, "/* unterminated", "'\\q'", "@"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}
