package rcc

// Parser is a recursive-descent parser for the RC dialect.
type Parser struct {
	lex *Lexer
	tok Token
	// one-token lookahead beyond tok
	ahead    *Token
	filename string
	// pendingStatic carries a leading 'static' into the declaration.
	pendingStatic bool
}

// Parse parses a complete RC translation unit.
func Parse(src string) (*Program, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	return p.program()
}

func (p *Parser) next() error {
	if p.ahead != nil {
		p.tok = *p.ahead
		p.ahead = nil
		return nil
	}
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peekAhead() (Token, error) {
	if p.ahead == nil {
		t, err := p.lex.Next()
		if err != nil {
			return Token{}, err
		}
		p.ahead = &t
	}
	return *p.ahead, nil
}

func (p *Parser) expect(k Tok) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %v, found %v", k, p.tok.Kind)
	}
	t := p.tok
	return t, p.next()
}

func (p *Parser) accept(k Tok) (bool, error) {
	if p.tok.Kind == k {
		return true, p.next()
	}
	return false, nil
}

func (p *Parser) isTypeStart() bool {
	switch p.tok.Kind {
	case KwInt, KwChar, KwVoid, KwRegion, KwStruct:
		return true
	}
	return false
}

// parseType parses: baseType ('*' qual?)*
func (p *Parser) parseType() (Type, error) {
	var base Type
	switch p.tok.Kind {
	case KwInt:
		base = IntT
	case KwChar:
		base = CharT
	case KwVoid:
		base = VoidT
	case KwRegion:
		base = RegionT
	case KwStruct:
		if err := p.next(); err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		return p.parseStars(&StructRef{Name: name.Text})
	default:
		return nil, errf(p.tok.Pos, "expected type, found %v", p.tok.Kind)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	return p.parseStars(base)
}

func (p *Parser) parseStars(base Type) (Type, error) {
	t := base
	for p.tok.Kind == Star {
		if err := p.next(); err != nil {
			return nil, err
		}
		q := QualNone
		switch p.tok.Kind {
		case KwSameregion:
			q = QualSameRegion
		case KwTraditional:
			q = QualTraditional
		case KwParentptr:
			q = QualParentPtr
		}
		if q != QualNone {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		t = &Pointer{Elem: t, Qual: q}
	}
	return t, nil
}

func (p *Parser) program() (*Program, error) {
	prog := &Program{}
	for p.tok.Kind != EOF {
		static, err := p.accept(KwStatic)
		if err != nil {
			return nil, err
		}
		deletes, err := p.accept(KwDeletes)
		if err != nil {
			return nil, err
		}
		p.pendingStatic = static
		if p.tok.Kind == KwStruct && !deletes {
			// Could be a struct declaration or a struct-typed
			// global/function: struct NAME '{' starts a declaration.
			ahead, err := p.peekAhead()
			if err != nil {
				return nil, err
			}
			if ahead.Kind == IDENT {
				pos := p.tok.Pos
				// Need 2-token lookahead: check for '{' after the name.
				if err := p.next(); err != nil { // at IDENT
					return nil, err
				}
				name := p.tok.Text
				if err := p.next(); err != nil {
					return nil, err
				}
				if p.tok.Kind == LBrace {
					sd, err := p.structBody(name, pos)
					if err != nil {
						return nil, err
					}
					prog.Structs = append(prog.Structs, sd)
					continue
				}
				if p.tok.Kind == Semi {
					// Forward declaration: struct NAME; — a no-op, the
					// definition lives elsewhere (possibly another file).
					if err := p.next(); err != nil {
						return nil, err
					}
					continue
				}
				// Not a struct declaration: reconstruct the type.
				t, err := p.parseStars(&StructRef{Name: name})
				if err != nil {
					return nil, err
				}
				if err := p.topDecl(prog, t, deletes); err != nil {
					return nil, err
				}
				continue
			}
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.topDecl(prog, t, deletes); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *Parser) structBody(name string, pos Pos) (*StructDecl, error) {
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	sd := &StructDecl{Name: name, Pos: pos}
	for p.tok.Kind != RBrace {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fname, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, &Field{
			Name: fname.Text, Type: ft,
			Offset: uint64(len(sd.Fields)), Pos: fname.Pos,
		})
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	if err := p.next(); err != nil { // consume '}'
		return nil, err
	}
	_, err := p.expect(Semi)
	return sd, err
}

// topDecl parses a global variable or function after its leading type.
func (p *Parser) topDecl(prog *Program, t Type, deletes bool) error {
	name, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	switch p.tok.Kind {
	case LParen:
		fn, err := p.funcRest(t, name, deletes)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fn)
		return nil
	case LBracket:
		if deletes {
			return errf(name.Pos, "deletes qualifier on a variable")
		}
		if err := p.next(); err != nil {
			return err
		}
		n, err := p.expect(INTLIT)
		if err != nil {
			return err
		}
		if _, err := p.expect(RBracket); err != nil {
			return err
		}
		if _, err := p.expect(Semi); err != nil {
			return err
		}
		prog.Globals = append(prog.Globals, &GlobalDecl{
			Name: name.Text, Type: t, ArrayLen: n.Int, Pos: name.Pos,
		})
		return nil
	default:
		if deletes {
			return errf(name.Pos, "deletes qualifier on a variable")
		}
		g := &GlobalDecl{Name: name.Text, Type: t, Pos: name.Pos}
		ok, err := p.accept(TokAssign)
		if err != nil {
			return err
		}
		if ok {
			init, err := p.assignment()
			if err != nil {
				return err
			}
			g.Init = init
		}
		if _, err := p.expect(Semi); err != nil {
			return err
		}
		prog.Globals = append(prog.Globals, g)
		return nil
	}
}

func (p *Parser) funcRest(ret Type, name Token, deletes bool) (*FuncDecl, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, Ret: ret, Deletes: deletes,
		Static: p.pendingStatic, Pos: name.Pos}
	if p.tok.Kind == KwVoid {
		// void parameter list: 'void )'
		ahead, err := p.peekAhead()
		if err != nil {
			return nil, err
		}
		if ahead.Kind == RParen {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	for p.tok.Kind != RParen {
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, &Param{Name: pn.Text, Type: pt, Pos: pn.Pos})
		if p.tok.Kind != RParen {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
	}
	if err := p.next(); err != nil { // consume ')'
		return nil, err
	}
	if ok, err := p.accept(Semi); err != nil || ok {
		return fn, err // prototype
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// ---------------------------------------------------------------------------
// Statements.

func (p *Parser) block() (*Block, error) {
	pos := p.tok.Pos
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	b := &Block{Pos: pos}
	for p.tok.Kind != RBrace {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	return b, p.next()
}

func (p *Parser) stmt() (Stmt, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case LBrace:
		return p.block()
	case Semi:
		return nil, p.next()
	case KwIf:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if ok, err := p.accept(KwElse); err != nil {
			return nil, err
		} else if ok {
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}, nil
	case KwWhile:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil
	case KwFor:
		if err := p.next(); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		f := &ForStmt{Pos: pos}
		if p.tok.Kind != Semi {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Init = e
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		if p.tok.Kind != Semi {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Cond = e
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		if p.tok.Kind != RParen {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Post = e
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		f.Body = body
		return f, nil
	case KwDo:
		if err := p.next(); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond, Pos: pos}, nil
	case KwSwitch:
		return p.switchStmt(pos)
	case KwReturn:
		if err := p.next(); err != nil {
			return nil, err
		}
		r := &ReturnStmt{Pos: pos}
		if p.tok.Kind != Semi {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = e
		}
		_, err := p.expect(Semi)
		return r, err
	case KwBreak:
		if err := p.next(); err != nil {
			return nil, err
		}
		_, err := p.expect(Semi)
		return &BreakStmt{Pos: pos}, err
	case KwContinue:
		if err := p.next(); err != nil {
			return nil, err
		}
		_, err := p.expect(Semi)
		return &ContinueStmt{Pos: pos}, err
	}
	if p.isTypeStart() {
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Name: name.Text, Type: t, Pos: pos}
		if ok, err := p.accept(TokAssign); err != nil {
			return nil, err
		} else if ok {
			init, err := p.assignment()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		_, err = p.expect(Semi)
		return d, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Pos: pos}, nil
}

// switchStmt parses: switch '(' expr ')' '{' clause* '}' where each
// clause is (case CONST | default) ':' stmt*.
func (p *Parser) switchStmt(pos Pos) (Stmt, error) {
	if err := p.next(); err != nil { // consume 'switch'
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{Cond: cond, Pos: pos}
	for p.tok.Kind != RBrace {
		cpos := p.tok.Pos
		clause := &CaseClause{Pos: cpos}
		switch p.tok.Kind {
		case KwCase:
			if err := p.next(); err != nil {
				return nil, err
			}
			neg := false
			if ok, err := p.accept(Minus); err != nil {
				return nil, err
			} else if ok {
				neg = true
			}
			lit := p.tok
			if lit.Kind != INTLIT && lit.Kind != CHARLIT {
				return nil, errf(lit.Pos, "case label must be an integer or character constant")
			}
			if err := p.next(); err != nil {
				return nil, err
			}
			clause.Value = lit.Int
			if neg {
				clause.Value = -clause.Value
			}
		case KwDefault:
			if err := p.next(); err != nil {
				return nil, err
			}
			clause.IsDefault = true
		default:
			return nil, errf(cpos, "expected 'case' or 'default', found %v", p.tok.Kind)
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		for p.tok.Kind != KwCase && p.tok.Kind != KwDefault && p.tok.Kind != RBrace {
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				clause.Stmts = append(clause.Stmts, s)
			}
		}
		sw.Clauses = append(sw.Clauses, clause)
	}
	return sw, p.next()
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing).

func (p *Parser) expr() (Expr, error) { return p.assignment() }

func (p *Parser) assignment() (Expr, error) {
	lhs, err := p.ternary()
	if err != nil {
		return nil, err
	}
	switch p.tok.Kind {
	case TokAssign, PlusAssign, MinusAssign:
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.assignment()
		if err != nil {
			return nil, err
		}
		a := &Assign{Op: op, LHS: lhs, RHS: rhs}
		a.pos = pos
		return a, nil
	}
	return lhs, nil
}

func (p *Parser) ternary() (Expr, error) {
	cond, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != Question {
		return cond, nil
	}
	pos := p.tok.Pos
	if err := p.next(); err != nil {
		return nil, err
	}
	then, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon); err != nil {
		return nil, err
	}
	els, err := p.ternary()
	if err != nil {
		return nil, err
	}
	t := &Ternary{Cond: cond, Then: then, Else: els}
	t.pos = pos
	return t, nil
}

var binPrec = map[Tok]int{
	OrOr: 1, AndAnd: 2,
	EqEq: 3, NotEq: 3,
	Lt: 4, Le: 4, Gt: 4, Ge: 4,
	Plus: 5, Minus: 5,
	Star: 6, Slash: 6, Percent: 6,
}

var binOps = map[Tok]BinOp{
	OrOr: OpOr, AndAnd: OpAnd, EqEq: OpEq, NotEq: OpNe,
	Lt: OpLt, Le: OpLe, Gt: OpGt, Ge: OpGe,
	Plus: OpAdd, Minus: OpSub, Star: OpMul, Slash: OpDiv, Percent: OpMod,
}

func (p *Parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.tok.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := binOps[p.tok.Kind]
		pos := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		b := &Binary{Op: op, L: lhs, R: rhs}
		b.pos = pos
		lhs = b
	}
}

func (p *Parser) unary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case Minus:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: OpNeg, X: x}
		u.pos = pos
		return u, nil
	case Not:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: OpNot, X: x}
		u.pos = pos
		return u, nil
	case Star:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: OpDeref, X: x}
		u.pos = pos
		return u, nil
	case Amp:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: OpAddr, X: x}
		u.pos = pos
		return u, nil
	}
	return p.postfix()
}

func (p *Parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.tok.Pos
		switch p.tok.Kind {
		case Arrow:
			if err := p.next(); err != nil {
				return nil, err
			}
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			fa := &FieldAccess{X: x, Name: name.Text}
			fa.pos = pos
			x = fa
		case Dot:
			return nil, errf(pos, "the dialect has no struct values; use '->'")
		case LBracket:
			if err := p.next(); err != nil {
				return nil, err
			}
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			ix := &Index{X: x, Idx: idx}
			ix.pos = pos
			x = ix
		case PlusPlus, MinusMinus:
			// Post-increment/decrement as statement sugar: x++ becomes
			// x = x + 1. Valid only where the value is unused; the
			// checker enforces numeric lvalues.
			op := OpAdd
			if p.tok.Kind == MinusMinus {
				op = OpSub
			}
			if err := p.next(); err != nil {
				return nil, err
			}
			one := &IntLit{Value: 1}
			one.pos = pos
			b := &Binary{Op: op, L: x, R: one}
			b.pos = pos
			a := &Assign{Op: TokAssign, LHS: x, RHS: b}
			a.pos = pos
			return a, nil
		default:
			return x, nil
		}
	}
}

func (p *Parser) primary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case INTLIT, CHARLIT:
		v := p.tok.Int
		kind := p.tok.Kind
		if err := p.next(); err != nil {
			return nil, err
		}
		lit := &IntLit{Value: v}
		lit.pos = pos
		if kind == CHARLIT {
			lit.setType(CharT)
		}
		return lit, nil
	case STRLIT:
		s := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		lit := &StrLit{Value: s}
		lit.pos = pos
		return lit, nil
	case KwNull:
		if err := p.next(); err != nil {
			return nil, err
		}
		n := &NullLit{}
		n.pos = pos
		return n, nil
	case LParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(RParen)
		return e, err
	case IDENT:
		name := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind != LParen {
			v := &VarRef{Name: name}
			v.pos = pos
			return v, nil
		}
		// Call; ralloc and rarrayalloc take a type argument.
		if err := p.next(); err != nil { // consume '('
			return nil, err
		}
		if name == "ralloc" || name == "rarrayalloc" {
			return p.rallocRest(name, pos)
		}
		call := &Call{Name: name}
		call.pos = pos
		for p.tok.Kind != RParen {
			a, err := p.assignment()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if p.tok.Kind != RParen {
				if _, err := p.expect(Comma); err != nil {
					return nil, err
				}
			}
		}
		return call, p.next()
	}
	return nil, errf(pos, "expected expression, found %v", p.tok.Kind)
}

func (p *Parser) rallocRest(name string, pos Pos) (Expr, error) {
	r := &RallocExpr{}
	r.pos = pos
	reg, err := p.assignment()
	if err != nil {
		return nil, err
	}
	r.Region = reg
	if _, err := p.expect(Comma); err != nil {
		return nil, err
	}
	if name == "rarrayalloc" {
		n, err := p.assignment()
		if err != nil {
			return nil, err
		}
		r.Count = n
		if _, err := p.expect(Comma); err != nil {
			return nil, err
		}
	}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	r.AllocTy = t
	_, err = p.expect(RParen)
	return r, err
}
