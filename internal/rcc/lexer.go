package rcc

import (
	"strings"
)

// Lexer turns RC source text into tokens. It supports //- and /* */-style
// comments, decimal and hexadecimal integers, character literals with the
// usual escapes, and string literals.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{l.line, l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpace() error {
	for l.off < len(l.src) {
		switch c := l.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) escape(pos Pos) (byte, error) {
	if l.off >= len(l.src) {
		return 0, errf(pos, "unterminated escape")
	}
	switch c := l.advance(); c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	default:
		return 0, errf(pos, "unknown escape '\\%c'", c)
	}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.advance()
	switch {
	case isIdentStart(c):
		start := l.off - 1
		for l.off < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.off]
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Pos: pos, Text: word}, nil
		}
		return Token{Kind: IDENT, Pos: pos, Text: word}, nil
	case isDigit(c):
		var v int64
		if c == '0' && (l.peek() == 'x' || l.peek() == 'X') {
			l.advance()
			n := 0
			for l.off < len(l.src) {
				d := l.peek()
				var dv int64
				switch {
				case isDigit(d):
					dv = int64(d - '0')
				case d >= 'a' && d <= 'f':
					dv = int64(d-'a') + 10
				case d >= 'A' && d <= 'F':
					dv = int64(d-'A') + 10
				default:
					goto doneHex
				}
				v = v*16 + dv
				n++
				l.advance()
			}
		doneHex:
			if n == 0 {
				return Token{}, errf(pos, "malformed hex literal")
			}
		} else {
			v = int64(c - '0')
			for l.off < len(l.src) && isDigit(l.peek()) {
				v = v*10 + int64(l.advance()-'0')
			}
		}
		return Token{Kind: INTLIT, Pos: pos, Int: v}, nil
	case c == '\'':
		if l.off >= len(l.src) {
			return Token{}, errf(pos, "unterminated character literal")
		}
		ch := l.advance()
		if ch == '\\' {
			e, err := l.escape(pos)
			if err != nil {
				return Token{}, err
			}
			ch = e
		}
		if l.off >= len(l.src) || l.advance() != '\'' {
			return Token{}, errf(pos, "unterminated character literal")
		}
		return Token{Kind: CHARLIT, Pos: pos, Int: int64(ch)}, nil
	case c == '"':
		var sb strings.Builder
		for {
			if l.off >= len(l.src) {
				return Token{}, errf(pos, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				e, err := l.escape(pos)
				if err != nil {
					return Token{}, err
				}
				ch = e
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: STRLIT, Pos: pos, Text: sb.String()}, nil
	}

	two := func(next byte, yes, no Tok) Token {
		if l.peek() == next {
			l.advance()
			return Token{Kind: yes, Pos: pos}
		}
		return Token{Kind: no, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case '?':
		return Token{Kind: Question, Pos: pos}, nil
	case ':':
		return Token{Kind: Colon, Pos: pos}, nil
	case '=':
		return two('=', EqEq, TokAssign), nil
	case '!':
		return two('=', NotEq, Not), nil
	case '<':
		return two('=', Le, Lt), nil
	case '>':
		return two('=', Ge, Gt), nil
	case '&':
		return two('&', AndAnd, Amp), nil
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OrOr, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '|'")
	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: PlusPlus, Pos: pos}, nil
		}
		return two('=', PlusAssign, Plus), nil
	case '-':
		switch l.peek() {
		case '-':
			l.advance()
			return Token{Kind: MinusMinus, Pos: pos}, nil
		case '>':
			l.advance()
			return Token{Kind: Arrow, Pos: pos}, nil
		}
		return two('=', MinusAssign, Minus), nil
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '%':
		return Token{Kind: Percent, Pos: pos}, nil
	case '.':
		return Token{Kind: Dot, Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// LexAll lexes the whole input, for tests and tools.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
