// Package rcc implements the front end for the RC dialect: a C subset
// extended with the paper's region API and type annotations (sameregion,
// traditional, parentptr on pointers; deletes on functions).
//
// The dialect covers what the paper's benchmarks need: ints and chars,
// structs, (multi-level) pointers with per-level qualifiers, global
// scalars/pointers/arrays, functions, the usual statements and expressions,
// address-of, string literals, and the region builtins newregion,
// newsubregion, deleteregion, ralloc, rarrayalloc, regionof.
package rcc

import "fmt"

// Tok is a lexical token kind.
type Tok int

const (
	EOF Tok = iota
	IDENT
	INTLIT
	CHARLIT
	STRLIT

	// Keywords.
	KwStruct
	KwInt
	KwChar
	KwVoid
	KwRegion
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwNull
	KwSwitch
	KwCase
	KwDefault
	KwDo
	KwSameregion
	KwTraditional
	KwParentptr
	KwDeletes
	KwStatic

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semi
	Comma
	TokAssign
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Not
	Lt
	Gt
	Le
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Arrow
	Dot
	Question
	Colon
	PlusPlus
	MinusMinus
	PlusAssign
	MinusAssign
)

var keywords = map[string]Tok{
	"struct":      KwStruct,
	"int":         KwInt,
	"char":        KwChar,
	"void":        KwVoid,
	"region":      KwRegion,
	"if":          KwIf,
	"else":        KwElse,
	"while":       KwWhile,
	"for":         KwFor,
	"return":      KwReturn,
	"break":       KwBreak,
	"continue":    KwContinue,
	"null":        KwNull,
	"NULL":        KwNull,
	"switch":      KwSwitch,
	"case":        KwCase,
	"default":     KwDefault,
	"do":          KwDo,
	"sameregion":  KwSameregion,
	"traditional": KwTraditional,
	"parentptr":   KwParentptr,
	"deletes":     KwDeletes,
	"static":      KwStatic,
}

var tokNames = map[Tok]string{
	EOF: "end of file", IDENT: "identifier", INTLIT: "integer literal",
	CHARLIT: "character literal", STRLIT: "string literal",
	KwStruct: "'struct'", KwInt: "'int'", KwChar: "'char'", KwVoid: "'void'",
	KwRegion: "'region'", KwIf: "'if'", KwElse: "'else'", KwWhile: "'while'",
	KwFor: "'for'", KwReturn: "'return'", KwBreak: "'break'",
	KwContinue: "'continue'", KwNull: "'null'",
	KwSwitch: "'switch'", KwCase: "'case'", KwDefault: "'default'",
	KwDo:         "'do'",
	KwSameregion: "'sameregion'", KwTraditional: "'traditional'",
	KwParentptr: "'parentptr'", KwDeletes: "'deletes'", KwStatic: "'static'",
	LParen: "'('", RParen: "')'", LBrace: "'{'", RBrace: "'}'",
	LBracket: "'['", RBracket: "']'", Semi: "';'", Comma: "','",
	TokAssign: "'='", Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'",
	Percent: "'%'", Amp: "'&'", Not: "'!'", Lt: "'<'", Gt: "'>'",
	Le: "'<='", Ge: "'>='", EqEq: "'=='", NotEq: "'!='",
	AndAnd: "'&&'", OrOr: "'||'", Arrow: "'->'", Dot: "'.'",
	Question: "'?'", Colon: "':'", PlusPlus: "'++'", MinusMinus: "'--'",
	PlusAssign: "'+='", MinusAssign: "'-='",
}

func (t Tok) String() string {
	if s, ok := tokNames[t]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(t))
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token with its position and payload.
type Token struct {
	Kind Tok
	Pos  Pos
	Text string // identifier or string contents
	Int  int64  // integer/char value
}

// Error is a front-end diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
