package workloads

// Tile mirrors the tile benchmark: a small text processor (the smallest
// program of the suite, with the lowest allocation count). Like moss and
// mudlle it is dominated by flex-style buffer scanning with traditional
// cursor pointers; its tile list uses sameregion links that the inference
// verifies (84% of annotated sites safe in the paper).
var Tile = &Workload{
	Name:          "tile",
	Description:   "text tiling with flex-style scanning",
	DefaultScale:  90,
	PaperSafePct:  84,
	PaperKeywords: 20,
	source: `
// tile workload: split generated text into fixed-width tiles, merge
// adjacent tiles with equal checksums.

char text_buf[8192];
int text_len;
char *traditional scan_cp;
int scan_pos;

struct tile {
	struct tile *sameregion next;
	int start;
	int width;
	int sum;
};

int tseed;
int trand(int n) {
	tseed = (tseed * 1103515 + 12345) %% 2147483;
	return tseed %% n;
}

void gen_text(int seed) {
	tseed = seed;
	text_len = 0;
	while (text_len < 8000) {
		text_buf[text_len] = ' ' + trand(64);
		text_len++;
	}
}

int checksum(int start, int width) {
	int s = 0;
	int i;
	for (i = 0; i < width; i++) {
		scan_cp = &text_buf[start + i];
		s = (s * 17 + *scan_cp) %% 65521;
	}
	return s;
}

struct tile *tiles_build(region r, int width) {
	struct tile *head = null;
	struct tile *tail = null;
	scan_pos = 0;
	while (scan_pos + width <= text_len) {
		struct tile *t = ralloc(r, struct tile);
		t->start = scan_pos;
		t->width = width;
		t->sum = checksum(scan_pos, width);
		if (tail)
			tail->next = t;
		else
			head = t;
		tail = t;
		scan_pos = scan_pos + width;
	}
	return head;
}

// Merge runs of tiles with equal checksums into wider tiles (in place).
int tiles_merge(struct tile *head) {
	int merges = 0;
	struct tile *t = head;
	while (t && t->next) {
		if (t->sum %% 7 == t->next->sum %% 7) {
			t->width = t->width + t->next->width;
			t->next = t->next->next;
			merges++;
		} else {
			t = t->next;
		}
	}
	return merges;
}

int tiles_hash(struct tile *head) {
	int h = 0;
	struct tile *t = head;
	while (t) {
		h = (h * 31 + t->start + t->width * 7 + t->sum) %% 1000003;
		t = t->next;
	}
	return h;
}

deletes void main(void) {
	int scale = %d;
	int acc = 0;
	int round;
	for (round = 0; round < scale; round++) {
		gen_text(round + 5);
		region r = newregion();
		struct tile *ts = tiles_build(r, 8 + round %% 8);
		int m = tiles_merge(ts);
		acc = (acc + tiles_hash(ts) + m) %% 1000003;
		ts = null;
		deleteregion(r);
	}
	print_str("tile ");
	print_int(acc);
	print_char('\n');
}
`,
}
