package workloads

// Grobner mirrors the grobner benchmark: Gröbner-basis-style polynomial
// arithmetic whose large integers are "a structure with a pointer to an
// array"; the paper allocated both in the same region so the array pointer
// could be declared sameregion, and reports that the large integers
// "follow the pattern" of construction-after-allocation, so virtually all
// checks are eliminated by the inference. Allocation volume is the
// highest of the suite with a small live set: each reduction round runs in
// a region that is deleted afterwards.
var Grobner = &Workload{
	Name:          "grobner",
	Description:   "polynomial reduction with sameregion bignum arrays",
	DefaultScale:  700,
	PaperSafePct:  80,
	PaperKeywords: 22,
	source: `
// grobner workload: sparse polynomials over big coefficients.
struct big {
	int len;
	int neg;
	int *sameregion d;
};

struct mono {
	struct mono *sameregion next;
	struct big *sameregion coef;
	int deg;
};

struct big *big_make(region r, int len) {
	struct big *b = ralloc(r, struct big);
	b->d = rarrayalloc(regionof(b), len, int);
	b->len = len;
	return b;
}

struct big *big_from_int(region r, int v) {
	struct big *b = big_make(r, 3);
	if (v < 0) { b->neg = 1; v = -v; }
	int i = 0;
	while (v > 0) { b->d[i] = v %% 32768; v = v / 32768; i++; }
	b->len = i ? i : 1;
	return b;
}

int big_sign(struct big *b) {
	int i;
	for (i = 0; i < b->len; i++)
		if (b->d[i]) return b->neg ? -1 : 1;
	return 0;
}

// c = a * b (magnitudes), sign handled by caller.
struct big *big_mul(region r, struct big *a, struct big *b) {
	struct big *c = big_make(r, a->len + b->len);
	int i;
	for (i = 0; i < a->len; i++) {
		int carry = 0;
		int j;
		for (j = 0; j < b->len; j++) {
			int cur = c->d[i + j] + a->d[i] * b->d[j] + carry;
			c->d[i + j] = cur %% 32768;
			carry = cur / 32768;
		}
		c->d[i + b->len] = c->d[i + b->len] + carry;
	}
	int len = a->len + b->len;
	while (len > 1 && c->d[len - 1] == 0) len--;
	if (len > 12) len = 12;   // working precision cap
	c->len = len;
	c->neg = a->neg != b->neg;
	return c;
}

// c = a - b assuming |a| >= |b| and both positive (workload invariant).
struct big *big_sub(region r, struct big *a, struct big *b) {
	struct big *c = big_make(r, a->len);
	int borrow = 0;
	int i;
	for (i = 0; i < a->len; i++) {
		int bv = i < b->len ? b->d[i] : 0;
		int cur = a->d[i] - bv - borrow;
		if (cur < 0) { cur = cur + 32768; borrow = 1; } else borrow = 0;
		c->d[i] = cur;
	}
	int len = a->len;
	while (len > 1 && c->d[len - 1] == 0) len--;
	c->len = len;
	return c;
}

struct mono *mono_cons(region r, int deg, struct big *coef, struct mono *rest) {
	struct mono *m = ralloc(r, struct mono);
	m->deg = deg;
	m->coef = coef;
	m->next = rest;
	return m;
}

// Build a deterministic polynomial of n terms in region r.
struct mono *poly_gen(region r, int n, int seed) {
	struct mono *p = null;
	int i;
	for (i = 0; i < n; i++) {
		seed = (seed * 1103 + 12345) %% 30011;
		struct big *c = big_from_int(r, seed + 1);
		p = mono_cons(r, i * 2 + seed %% 3, c, p);
	}
	return p;
}

// One S-polynomial-style reduction step: combine leading terms of a and b
// into a new polynomial in region r.
struct mono *poly_reduce(region r, struct mono *a, struct mono *b) {
	struct mono *out = null;
	while (a && b) {
		struct big *prod = big_mul(r, a->coef, b->coef);
		struct big *diff;
		if (a->coef->len >= b->coef->len)
			diff = big_sub(r, a->coef, b->coef);
		else
			diff = big_sub(r, b->coef, a->coef);
		struct big *keep = big_sign(diff) ? diff : prod;
		out = mono_cons(r, a->deg + b->deg, keep, out);
		a = a->next;
		b = b->next;
	}
	return out;
}

int poly_hash(struct mono *p) {
	int h = 0;
	while (p) {
		h = (h * 31 + p->deg + p->coef->d[0]) %% 1000003;
		p = p->next;
	}
	return h;
}

deletes void main(void) {
	int scale = %d;
	int rounds;
	int acc = 0;
	for (rounds = 0; rounds < scale; rounds++) {
		region r = newregion();
		struct mono *a = poly_gen(r, 40, rounds + 1);
		struct mono *b = poly_gen(r, 40, rounds + 7);
		int step;
		for (step = 0; step < 4; step++) {
			struct mono *c = poly_reduce(r, a, b);
			a = b;
			b = c;
		}
		acc = (acc + poly_hash(b)) %% 1000003;
		a = null; b = null;
		deleteregion(r);
	}
	print_str("grobner ");
	print_int(acc);
	print_char('\n');
}
`,
}
