// Package workloads contains the eight benchmark programs of the
// paper's evaluation, rewritten in the RC dialect. The originals
// (cfrac, grobner, mudlle, lcc, moss, tile, rc, apache) are large C
// applications that cannot run on this VM; each workload here is a
// synthetic program modelled on the paper's description of the
// original's behaviour — its dominant data structures, allocation
// volume and lifetime profile, and its mix of sameregion /
// traditional / parentptr / unannotated pointer assignments (Table 1,
// Table 3 and Figure 9 of the paper, plus the Section 5.2 prose).
//
// Each Workload carries its RC source as a function of a scale knob
// (so tests can shrink runs and benchmarks can grow them), its default
// scale, and the expected shape of its inference results. All returns
// the fixed eight in paper order; ByName looks one up. The programs
// are consumed by internal/exp for the tables and figures, by
// cmd/rcc -workload for ad-hoc runs, and by the differential tests,
// which execute every workload under all five compiler configurations
// and three memory backends and require identical program output.
package workloads
