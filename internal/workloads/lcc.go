package workloads

// Lcc mirrors the lcc benchmark: a compiler allocating ASTs, symbols and
// generated code into per-function arenas. The paper reports that 56% of
// runtime pointer assignments write a pointer into an object of the same
// region, that most of those stay runtime-checked ("most checks remain in
// lcc"), and that lcc has the highest reference-counting overhead of the
// suite. As in the original, the current arena lives in a global variable
// — exactly the pattern the paper says defeats the inference ("our region
// type system does not represent the region of global variables").
var Lcc = &Workload{
	Name:          "lcc",
	Description:   "compiler front end with per-function arenas",
	DefaultScale:  3500,
	PaperSafePct:  31,
	PaperKeywords: 331,
	source: `
// lcc workload: build ASTs for synthetic functions, fold constants,
// linearize to three-address code. The arena region lives in a global.

region func_arena;   // the paper's global-region pattern

struct tree {
	struct tree *sameregion kid0;
	struct tree *sameregion kid1;
	struct sym *def;   // unannotated cross-reference: full RC update
	int op;     // 0 const, 1 add, 2 mul, 3 sub
	int value;
};

struct sym {
	struct sym *sameregion next;
	int name;
	int offset;
};

struct code {
	struct code *sameregion next;
	int op;
	int a;
	int b;
};

struct state {
	struct sym *sameregion syms;
	struct code *sameregion head;
	struct code *sameregion tail;
	int ntemps;
	int seed;
};

int st_rand(struct state *st, int n) {
	st->seed = (st->seed * 1103515 + 12345) %% 2147483;
	return st->seed %% n;
}

struct tree *mktree(int op, struct tree *l, struct tree *r, int v) {
	// Allocation from the global arena: the inference cannot relate the
	// kids' regions to the new node's, so these stores stay checked.
	struct tree *t = ralloc(func_arena, struct tree);
	t->op = op;
	t->kid0 = l;
	t->kid1 = r;
	t->value = v;
	return t;
}

struct tree *gen_tree(struct state *st, int depth) {
	if (depth <= 0 || st_rand(st, 4) == 0) {
		struct tree *leaf = mktree(0, null, null, st_rand(st, 100));
		leaf->def = st->syms;   // unannotated: counted traffic
		return leaf;
	}
	int op = 1 + st_rand(st, 3);
	struct tree *l = gen_tree(st, depth - 1);
	struct tree *r = gen_tree(st, depth - 1);
	return mktree(op, l, r, 0);
}

// Constant folding: rebuild the tree bottom-up in the same arena.
struct tree *fold(struct tree *t) {
	if (t->op == 0) return t;
	struct tree *l = fold(t->kid0);
	struct tree *r = fold(t->kid1);
	if (l->op == 0 && r->op == 0) {
		int v;
		if (t->op == 1) v = l->value + r->value;
		else if (t->op == 2) v = l->value * r->value;
		else v = l->value - r->value;
		return mktree(0, null, null, v %% 65536);
	}
	return mktree(t->op, l, r, 0);
}

void emit_code(struct state *st, int op, int a, int b) {
	struct code *c = ralloc(func_arena, struct code);
	c->op = op;
	c->a = a;
	c->b = b;
	if (st->tail)
		st->tail->next = c;
	else
		st->head = c;
	st->tail = c;
}

int linearize(struct state *st, struct tree *t) {
	if (t->op == 0) {
		int temp = st->ntemps;
		st->ntemps++;
		emit_code(st, 0, temp, t->value);
		return temp;
	}
	int a = linearize(st, t->kid0);
	int b = linearize(st, t->kid1);
	int temp = st->ntemps;
	st->ntemps++;
	emit_code(st, t->op, a, b);
	return temp;
}

void declare(struct state *st, int name) {
	struct sym *s = ralloc(func_arena, struct sym);
	s->name = name;
	s->offset = st->ntemps;
	s->next = st->syms;
	st->syms = s;
}

int lookup(struct state *st, int name) {
	struct sym *s = st->syms;
	while (s) {
		if (s->name == name) return s->offset;
		s = s->next;
	}
	return -1;
}

int code_hash(struct state *st) {
	int h = 0;
	struct code *c = st->head;
	while (c) {
		h = (h * 37 + c->op * 7 + c->a + c->b) %% 1000003;
		c = c->next;
	}
	return h;
}

deletes int compile_function(int fnum) {
	func_arena = newregion();
	struct state *st = ralloc(func_arena, struct state);
	st->seed = fnum * 977 + 13;
	int decls;
	for (decls = 0; decls < 20; decls++)
		declare(st, decls * 3 + fnum);
	struct tree *t = gen_tree(st, 7);
	struct tree *opt = fold(t);
	linearize(st, opt);
	int h = (code_hash(st) + lookup(st, fnum %% 60)) %% 1000003;
	st = null; t = null; opt = null;
	region dead = func_arena;
	func_arena = null_region();
	deleteregion(dead);
	return h;
}

// The dialect has no null literal for regions; a tiny permanent region
// stands in for "no arena".
region no_arena;
region null_region(void) { return no_arena; }

deletes void main(void) {
	int scale = %d;
	no_arena = newregion();
	int acc = 0;
	int f;
	for (f = 0; f < scale; f++) {
		acc = (acc + compile_function(f)) %% 1000003;
	}
	print_str("lcc ");
	print_int(acc);
	print_char('\n');
}
`,
}
