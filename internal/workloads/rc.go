package workloads

// RC mirrors the rc benchmark: the RC compiler compiling itself. Its
// defining trait in the paper is the bison-generated parser whose parse
// stack "is like the objects array and prevents verification of the
// construction of parse trees" — sameregion node links built from values
// popped off an untracked stack array stay runtime-checked (31% of
// annotated sites safe).
var RC = &Workload{
	Name:          "rc",
	Description:   "compiler with a bison-style parse stack",
	DefaultScale:  700,
	PaperSafePct:  31,
	PaperKeywords: 64,
	source: `
// rc workload: shift-reduce parse of generated token streams into trees,
// then a scan pass over the trees.

struct node {
	struct node *sameregion left;
	struct node *sameregion right;
	int kind;
	int value;
};

int tok_seed;
int tok_rand(int n) {
	tok_seed = (tok_seed * 1103515 + 12345) %% 2147483;
	return tok_seed %% n;
}

struct node *mknode(region r, int kind, int value) {
	struct node *n = ralloc(r, struct node);
	n->kind = kind;
	n->value = value;
	return n;
}

// Bison-style parser: a value stack of node pointers in an array. The
// array is untracked (like bison's), so values popped from it have
// unknown regions and the sameregion tree links stay runtime-checked.
deletes int parse_unit(int unit) {
	region r = newregion();
	struct node **stack = rarrayalloc(r, 512, struct node *);
	int sp = 0;
	tok_seed = unit * 1237 + 7;
	int steps;
	for (steps = 0; steps < 400; steps++) {
		int action = tok_rand(3);
		if (action < 2 || sp < 2) {
			// shift: push a leaf
			stack[sp] = mknode(r, 0, tok_rand(1000));
			sp++;
			if (sp >= 511) sp = 511;
		} else {
			// reduce: pop two, push an interior node. These stores are
			// the paper's unverifiable parse-tree construction.
			struct node *b = stack[sp - 1];
			struct node *a = stack[sp - 2];
			sp = sp - 2;
			struct node *n = mknode(r, 1, 0);
			n->left = a;
			n->right = b;
			stack[sp] = n;
			sp++;
		}
	}
	// Fold the remaining stack into one tree.
	while (sp > 1) {
		struct node *b = stack[sp - 1];
		struct node *a = stack[sp - 2];
		sp = sp - 2;
		struct node *n = mknode(r, 2, 0);
		n->left = a;
		n->right = b;
		stack[sp] = n;
		sp++;
	}
	struct node *root = stack[0];
	int h = tree_hash(root, 0);
	root = null;
	stack = null;
	deleteregion(r);
	return h;
}

int tree_hash(struct node *n, int depth) {
	if (!n || depth > 60) return 1;
	return (n->kind * 131 + n->value
		+ tree_hash(n->left, depth + 1) * 31
		+ tree_hash(n->right, depth + 1) * 17) %% 1000003;
}

deletes void main(void) {
	int scale = %d;
	int acc = 0;
	int unit;
	for (unit = 0; unit < scale; unit++)
		acc = (acc + parse_unit(unit)) %% 1000003;
	print_str("rc ");
	print_int(acc);
	print_char('\n');
}
`,
}
