package workloads

// Mudlle mirrors the mudlle benchmark: a small-language interpreter whose
// dominant structure is "an instruction list" with sameregion internal
// pointers, plus flex-generated scanner code whose buffer pointers are
// traditional. Each compiled program lives in its own region, deleted
// after execution.
var Mudlle = &Workload{
	Name:          "mudlle",
	Description:   "expression-language compiler and stack interpreter",
	DefaultScale:  4000,
	PaperSafePct:  88,
	PaperKeywords: 21,
	source: `
// mudlle workload: compile arithmetic expressions to a stack machine.
//
// Grammar (recursive descent over a generated buffer):
//   expr   := term (('+'|'-') term)*
//   term   := factor (('*') factor)*
//   factor := digit+ | '(' expr ')'

char src_buf[4096];
int src_len;
char *traditional yy_cp;   // flex-style scan cursor (traditional region)
int yy_pos;

struct instr {
	struct instr *sameregion next;
	int op;     // 0 push, 1 add, 2 sub, 3 mul
	int arg;
};

struct prog {
	struct instr *sameregion first;
	struct instr *sameregion last;
	int count;
};

// Deterministic expression generator (LCG).
int gen_seed;
int gen_rand(int n) {
	gen_seed = (gen_seed * 1103515 + 12345) %% 2147483;
	return gen_seed %% n;
}

void gen_expr(int depth) {
	if (depth <= 0 || gen_rand(3) == 0) {
		int digits = 1 + gen_rand(3);
		int i;
		for (i = 0; i < digits; i++) {
			src_buf[src_len] = '0' + gen_rand(10);
			src_len++;
		}
		return;
	}
	src_buf[src_len] = '(';
	src_len++;
	gen_expr(depth - 1);
	int op = gen_rand(3);
	src_buf[src_len] = op == 0 ? '+' : op == 1 ? '-' : '*';
	src_len++;
	gen_expr(depth - 1);
	src_buf[src_len] = ')';
	src_len++;
}

char peek(void) {
	yy_cp = &src_buf[yy_pos];   // traditional pointer update per char
	if (yy_pos >= src_len) return 0;
	return *yy_cp;
}

char advance(void) {
	char c = peek();
	yy_pos++;
	return c;
}

void emit(region r, struct prog *p, int op, int arg) {
	struct instr *in = ralloc(regionof(p), struct instr);
	in->op = op;
	in->arg = arg;
	if (p->last)
		p->last->next = in;
	else
		p->first = in;
	p->last = in;
	p->count++;
}

void parse_expr(region r, struct prog *p);

void parse_factor(region r, struct prog *p) {
	char c = peek();
	if (c == '(') {
		advance();
		parse_expr(r, p);
		advance(); // ')'
		return;
	}
	int v = 0;
	while (peek() >= '0' && peek() <= '9')
		v = v * 10 + (advance() - '0');
	emit(r, p, 0, v);
}

void parse_term(region r, struct prog *p) {
	parse_factor(r, p);
	while (peek() == '*') {
		advance();
		parse_factor(r, p);
		emit(r, p, 3, 0);
	}
}

void parse_expr(region r, struct prog *p) {
	parse_term(r, p);
	while (peek() == '+' || peek() == '-') {
		char c = advance();
		parse_term(r, p);
		emit(r, p, c == '+' ? 1 : 2, 0);
	}
}

int run(region r, struct prog *p) {
	int *stack = rarrayalloc(r, 256, int);
	int sp = 0;
	struct instr *in = p->first;
	while (in) {
		switch (in->op) {
		case 0:
			stack[sp] = in->arg;
			sp++;
			break;
		default: {
			int b = stack[sp - 1];
			int a = stack[sp - 2];
			sp = sp - 2;
			int v;
			switch (in->op) {
			case 1: v = a + b; break;
			case 2: v = a - b; break;
			default: v = a * b; break;
			}
			stack[sp] = v %% 65536;
			sp++;
			break;
		}
		}
		in = in->next;
	}
	return stack[0];
}

deletes void main(void) {
	int scale = %d;
	int acc = 0;
	int total_instrs = 0;
	gen_seed = 42;
	int round;
	for (round = 0; round < scale; round++) {
		src_len = 0;
		yy_pos = 0;
		gen_expr(6);
		region r = newregion();
		struct prog *p = ralloc(r, struct prog);
		parse_expr(r, p);
		int v = run(r, p);
		acc = (acc + v + p->count) %% 1000003;
		total_instrs = total_instrs + p->count;
		deleteregion(r);
	}
	print_str("mudlle ");
	print_int(acc);
	print_char(' ');
	print_int(total_instrs);
	print_char('\n');
}
`,
}
