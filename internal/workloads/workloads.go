package workloads

import (
	"fmt"
	"strings"
)

// Workload is one benchmark program.
type Workload struct {
	Name        string
	Description string
	// source is the program template; %d receives the scale.
	source       string
	DefaultScale int
	// Paper-reported numbers used by EXPERIMENTS.md for shape
	// comparison: percentage of annotated assignment sites proven safe
	// statically (Table 3) and the annotation keyword count.
	PaperSafePct  int
	PaperKeywords int
}

// Source renders the program at the given scale (0 = default).
func (w *Workload) Source(scale int) string {
	if scale <= 0 {
		scale = w.DefaultScale
	}
	return fmt.Sprintf(w.source, scale)
}

// Lines reports the source line count (the analogue of Table 1's "Lines").
func (w *Workload) Lines() int {
	return strings.Count(w.Source(0), "\n")
}

// All returns the eight workloads in the paper's order.
func All() []*Workload {
	return []*Workload{
		Cfrac, Grobner, Mudlle, Lcc, Moss, Tile, RC, Apache,
	}
}

// ByName finds a workload.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}
