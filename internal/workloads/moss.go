package workloads

// Moss mirrors the moss benchmark: text fingerprinting for plagiarism
// detection. The paper reports that 94% of runtime pointer assignments
// are traditional pointers "in code produced by the flex lexical analyser
// generator" (the scanner's buffer cursors), and that moss's hash-table
// idiom — creating an entry's contents right after the entry itself — is
// verified by the inference (89% of annotated sites safe).
var Moss = &Workload{
	Name:          "moss",
	Description:   "document fingerprinting with flex-style scanning",
	DefaultScale:  75,
	PaperSafePct:  89,
	PaperKeywords: 75,
	source: `
// moss workload: scan generated documents, hash k-grams of tokens into a
// region-allocated hash table, report collision statistics.

char doc_buf[8192];
int doc_len;

// Flex-style scanner state: traditional pointers into the buffer.
char *traditional yy_cp;
char *traditional yy_start;
int yy_pos;

struct entry {
	struct entry *sameregion next;
	int hash;
	int pos;
};

struct table {
	struct entry *sameregion *sameregion buckets;
	int nbuckets;
	int count;
};

int doc_seed;
int doc_rand(int n) {
	doc_seed = (doc_seed * 1103515 + 12345) %% 2147483;
	return doc_seed %% n;
}

void gen_doc(int seed) {
	doc_seed = seed;
	doc_len = 0;
	while (doc_len < 7900) {
		int wordlen = 2 + doc_rand(6);
		int i;
		for (i = 0; i < wordlen; i++) {
			doc_buf[doc_len] = 'a' + doc_rand(26);
			doc_len++;
		}
		doc_buf[doc_len] = ' ';
		doc_len++;
	}
	doc_buf[doc_len] = 0;
}

// Scan the next token, flex-style: the cursor pointers are traditional
// and updated per character.
int next_token(void) {
	yy_cp = &doc_buf[yy_pos];
	while (yy_pos < doc_len && *yy_cp == ' ') {
		yy_pos++;
		yy_cp = &doc_buf[yy_pos];
	}
	if (yy_pos >= doc_len) return -1;
	yy_start = yy_cp;
	int h = 0;
	while (yy_pos < doc_len && *yy_cp != ' ') {
		h = (h * 131 + *yy_cp) %% 1000003;
		yy_pos++;
		yy_cp = &doc_buf[yy_pos];
	}
	return h;
}

struct table *table_new(region r, int nbuckets) {
	struct table *t = ralloc(r, struct table);
	t->buckets = rarrayalloc(regionof(t), nbuckets, struct entry *sameregion);
	t->nbuckets = nbuckets;
	return t;
}

// The verified idiom: the entry's storage is created in the table's own
// region, then linked.
void table_add(struct table *t, int hash, int pos) {
	struct entry *e = ralloc(regionof(t), struct entry);
	e->hash = hash;
	e->pos = pos;
	int b = hash %% t->nbuckets;
	if (b < 0) b = -b;
	e->next = t->buckets[b];
	t->buckets[b] = e;
	t->count++;
}

int table_lookups(struct table *t, int hash) {
	int b = hash %% t->nbuckets;
	if (b < 0) b = -b;
	struct entry *e = t->buckets[b];
	int n = 0;
	while (e) {
		if (e->hash == hash) n++;
		e = e->next;
	}
	return n;
}

deletes int fingerprint_doc(int docnum) {
	gen_doc(docnum * 7919 + 11);
	region r = newregion();
	struct table *t = table_new(r, 256);
	yy_pos = 0;
	int window0 = 0;
	int window1 = 0;
	int tok;
	int matches = 0;
	while ((tok = next_token()) >= 0) {
		// 3-gram fingerprint.
		int kgram = (window0 * 31 + window1 * 17 + tok) %% 1000003;
		matches = matches + table_lookups(t, kgram);
		table_add(t, kgram, yy_pos);
		window0 = window1;
		window1 = tok;
	}
	int total = matches * 1000 + t->count;
	t = null;
	deleteregion(r);
	return total;
}

deletes void main(void) {
	int scale = %d;
	int acc = 0;
	int d;
	for (d = 0; d < scale; d++)
		acc = (acc + fingerprint_doc(d)) %% 1000003;
	print_str("moss ");
	print_int(acc);
	print_char('\n');
}
`,
}
