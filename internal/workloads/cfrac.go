package workloads

// Cfrac mirrors the cfrac benchmark: continued-fraction factorization
// dominated by arbitrary-precision integer churn. The paper notes that
// "essentially all pointer assignments are of pointers to local variables
// used for by-reference parameters in functions with signatures such as
// int *pdivmod(int *u, int *v, int **qp, int **rp)", so the bignum
// kernels here return results through pointer-to-pointer out-parameters,
// and reference-counting traffic is dominated by stores through those.
// Allocation is very high volume with a tiny live set: each factorization
// runs in its own region, deleted when the number is done.
var Cfrac = &Workload{
	Name:          "cfrac",
	Description:   "continued-fraction factoring with bignum arithmetic",
	DefaultScale:  1500,
	PaperSafePct:  50,
	PaperKeywords: 8,
	source: `
// cfrac workload: trial-division factoring with base-10000 bignums.
struct bn {
	int len;
	int *sameregion d;
};

struct bn *bn_make(region r, int len) {
	struct bn *b = ralloc(r, struct bn);
	b->d = rarrayalloc(regionof(b), len, int);
	b->len = len;
	return b;
}

struct bn *bn_from_int(region r, int v) {
	struct bn *b = bn_make(r, 4);
	int i = 0;
	while (v > 0) {
		b->d[i] = v %% 10000;
		v = v / 10000;
		i++;
	}
	b->len = i ? i : 1;
	return b;
}

int bn_is_zero(struct bn *b) {
	int i;
	for (i = 0; i < b->len; i++)
		if (b->d[i]) return 0;
	return 1;
}

int bn_to_int(struct bn *b) {
	int v = 0;
	int i;
	for (i = b->len - 1; i >= 0; i--)
		v = v * 10000 + b->d[i];
	return v;
}

// Divide u by small v, returning the quotient and remainder through
// by-reference parameters (the cfrac signature pattern).
void bn_divmod_small(region r, struct bn *u, int v, struct bn **qp, int *rp) {
	struct bn *q = bn_make(r, u->len);
	int rem = 0;
	int i;
	for (i = u->len - 1; i >= 0; i--) {
		int cur = rem * 10000 + u->d[i];
		q->d[i] = cur / v;
		rem = cur %% v;
	}
	int len = u->len;
	while (len > 1 && q->d[len - 1] == 0) len--;
	q->len = len;
	*qp = q;
	*rp = rem;
}

void bn_mul_small(region r, struct bn *u, int v, struct bn **pp) {
	struct bn *p = bn_make(r, u->len + 2);
	int carry = 0;
	int i;
	for (i = 0; i < u->len; i++) {
		int cur = u->d[i] * v + carry;
		p->d[i] = cur %% 10000;
		carry = cur / 10000;
	}
	int len = u->len;
	while (carry) {
		p->d[len] = carry %% 10000;
		carry = carry / 10000;
		len++;
	}
	p->len = len;
	*pp = p;
}

// Factor n by trial division over bignums; returns the sum of the prime
// factors found.
deletes int factor(int n) {
	region r = newregion();
	struct bn *cur = bn_from_int(r, n);
	int sum = 0;
	int d = 2;
	while (!bn_is_zero(cur) && bn_to_int(cur) > 1) {
		struct bn *q;
		int rem;
		bn_divmod_small(r, cur, d, &q, &rem);
		if (rem == 0) {
			sum = sum + d;
			cur = q;
			// Exercise the multiply kernel too (verification step:
			// q * d + rem should reproduce magnitude class).
			struct bn *back;
			bn_mul_small(r, q, d, &back);
			if (bn_is_zero(back) && d > 2) sum = sum - 1;
			back = null;   // release the by-ref slot's count before deleteregion
		} else {
			d++;
			if (d * d > bn_to_int(cur)) {
				sum = sum + bn_to_int(cur);
				q = null;   // clear the by-ref slot on the early exit too
				break;
			}
		}
		q = null;
	}
	cur = null;
	deleteregion(r);
	return sum;
}

deletes void main(void) {
	int scale = %d;
	int total = 0;
	int n;
	for (n = 10001; n < 10001 + scale; n++) {
		total = total + factor(n * 17 + 3);
	}
	print_str("cfrac ");
	print_int(total);
	print_char('\n');
}
`,
}
