package workloads_test

import (
	"bytes"
	"strings"
	"testing"

	"rcgo"
	"rcgo/internal/rcc"
	"rcgo/internal/workloads"
)

// Every workload must compile and run in every mode and backend with
// identical output (small scale).
func TestWorkloadsDifferential(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src := w.Source(w.DefaultScale/10 + 1)
			var ref string
			configs := []struct {
				name string
				mode rcgo.Mode
				cfg  rcgo.RunConfig
			}{
				{"nq", rcgo.ModeNQ, rcgo.RunConfig{}},
				{"qs", rcgo.ModeQS, rcgo.RunConfig{}},
				{"inf", rcgo.ModeInf, rcgo.RunConfig{}},
				{"nc", rcgo.ModeNC, rcgo.RunConfig{}},
				{"norc", rcgo.ModeNoRC, rcgo.RunConfig{}},
				{"cat", rcgo.ModeNQ, rcgo.RunConfig{CAtStyle: true}},
				{"lea", rcgo.ModeInf, rcgo.RunConfig{Backend: rcgo.BackendMalloc}},
				{"gc", rcgo.ModeInf, rcgo.RunConfig{Backend: rcgo.BackendGC}},
			}
			for i, c := range configs {
				var buf bytes.Buffer
				c.cfg.Output = &buf
				c.cfg.MaxSteps = 500_000_000
				_, err := rcgo.RunSource(src, c.mode, c.cfg)
				if err != nil {
					t.Fatalf("%s: %v (output: %s)", c.name, err, buf.String())
				}
				out := buf.String()
				if !strings.HasPrefix(out, w.Name+" ") {
					t.Fatalf("%s: unexpected output %q", c.name, out)
				}
				if i == 0 {
					ref = out
				} else if out != ref {
					t.Errorf("%s: output %q, want %q", c.name, out, ref)
				}
			}
		})
	}
}

// The per-workload static verification rates must reproduce the paper's
// ordering: grobner/moss/tile/mudlle high, lcc/rc low.
func TestWorkloadsInferenceShape(t *testing.T) {
	rates := map[string]float64{}
	for _, w := range workloads.All() {
		c, err := rcgo.Compile(w.Source(1), rcgo.ModeInf)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		seen, safe := 0, 0
		for i := range c.Infer.SafeSite {
			if c.Infer.SiteSeen[i] {
				seen++
				if c.Infer.SafeSite[i] {
					safe++
				}
			}
		}
		if seen == 0 {
			t.Errorf("%s: no annotated sites", w.Name)
			continue
		}
		rates[w.Name] = float64(safe) / float64(seen)
		t.Logf("%s: %d/%d annotated sites proven safe (paper: %d%%)",
			w.Name, safe, seen, w.PaperSafePct)
	}
	for _, high := range []string{"grobner", "moss", "tile", "mudlle"} {
		for _, low := range []string{"lcc", "rc"} {
			if rates[high] <= rates[low] {
				t.Errorf("verification rate of %s (%.2f) should exceed %s (%.2f)",
					high, rates[high], low, rates[low])
			}
		}
	}
}

func TestWorkloadLines(t *testing.T) {
	for _, w := range workloads.All() {
		if w.Lines() < 30 {
			t.Errorf("%s suspiciously small: %d lines", w.Name, w.Lines())
		}
	}
	if workloads.ByName("moss") != workloads.Moss || workloads.ByName("nope") != nil {
		t.Error("ByName broken")
	}
}

// Formatting each workload and reparsing must preserve behaviour exactly.
func TestWorkloadsFormatRoundTrip(t *testing.T) {
	for _, w := range workloads.All() {
		src := w.Source(w.DefaultScale/20 + 1)
		parsed, err := rcc.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		formatted := rcc.Format(parsed)
		run := func(s string) string {
			var buf bytes.Buffer
			_, err := rcgo.RunSource(s, rcgo.ModeInf, rcgo.RunConfig{
				Output: &buf, MaxSteps: 200_000_000,
			})
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			return buf.String()
		}
		if orig, rt := run(src), run(formatted); orig != rt {
			t.Errorf("%s: formatted program output %q, want %q", w.Name, rt, orig)
		}
	}
}
