package workloads

// Apache mirrors the apache benchmark: a web server creating a region per
// request and subregions for subrequests; "the Apache web server uses
// subregions to handle subrequests created to handle an original request.
// On our test input, 10% of runtime pointer assignments in Apache are to
// pointers that always stay within the same region or point to a parent
// region" — the parentptr pattern. Requests churn quickly with small live
// state.
var Apache = &Workload{
	Name:          "apache",
	Description:   "server with per-request regions and subrequest subregions",
	DefaultScale:  3300,
	PaperSafePct:  31,
	PaperKeywords: 0,
	source: `
// apache workload: simulate request handling with header tables per
// request and recursive subrequests in subregions.

struct header {
	struct header *sameregion next;
	int key;
	int value;
};

struct request {
	struct request *parentptr parent;
	struct header *sameregion headers;
	struct request *main_req;    // unannotated: counted cross-reference
	int id;
	int depth;
	int status;
};

// Server state reached through globals, as in Apache's pools: the
// inference does not track global regions, so stores involving these stay
// checked or counted.
struct request *current_req;
struct header *last_header;

int req_seed;
int req_rand(int n) {
	req_seed = (req_seed * 1103515 + 12345) %% 2147483;
	return req_seed %% n;
}

void add_header(struct request *req, int key, int value) {
	struct header *h = ralloc(regionof(req), struct header);
	h->key = key;
	h->value = value;
	h->next = req->headers;
	req->headers = h;
	last_header = h;             // global store: full reference count
}

int find_header(struct request *req, int key) {
	struct header *h = req->headers;
	while (h) {
		if (h->key == key) return h->value;
		h = h->next;
	}
	if (req->parent) return find_header(req->parent, key);
	return -1;
}

// Handle a request allocated in region r; recursive subrequests run in
// subregions of r and may consult parent headers through parentptr links.
deletes int handle(region r, struct request *req) {
	int nh = 4 + req_rand(12);
	int i;
	for (i = 0; i < nh; i++)
		add_header(req, req_rand(32), req_rand(1000));
	int sum = 0;
	for (i = 0; i < 8; i++)
		sum = sum + find_header(req, i * 3);
	// Subrequests (internal redirects) in subregions.
	if (req->depth < 2 && req_rand(3) == 0) {
		region sub = newsubregion(r);
		struct request *sr = ralloc(sub, struct request);
		sr->parent = current_req;  // via the global: check stays at runtime
		sr->main_req = req;        // unannotated: counted
		sr->id = req->id * 10 + 1;
		sr->depth = req->depth + 1;
		struct request *saved = current_req;
		current_req = sr;
		sum = sum + handle(sub, sr);
		current_req = saved;
		sr->main_req = null;
		last_header = null;        // may point into sub
		sr = null;
		deleteregion(sub);
	}
	req->status = sum %% 1000;
	return req->status;
}

deletes void main(void) {
	int scale = %d;
	req_seed = 31337;
	int acc = 0;
	int conn;
	for (conn = 0; conn < scale; conn++) {
		int keepalive = 1 + req_rand(4);
		int k;
		for (k = 0; k < keepalive; k++) {
			region r = newregion();
			struct request *req = ralloc(r, struct request);
			req->id = conn * 100 + k;
			current_req = req;
			acc = (acc + handle(r, req)) %% 1000003;
			current_req = null;
			last_header = null;
			req = null;
			deleteregion(r);
		}
	}
	print_str("apache ");
	print_int(acc);
	print_char('\n');
}
`,
}
