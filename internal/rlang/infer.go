package rlang

import (
	"rcgo/internal/rcc"
)

// Infer runs the paper's Section 4.3 constraint inference over a
// translated program: a greatest-fixed-point dataflow analysis that
// computes, for every function, input/output/result constraint sets over
// its abstract region parameters, and then eliminates every chk statement
// whose property is implied by the facts holding at that point.
//
// All sets start at the universal set (the lattice top) and only shrink,
// and all transfer functions are monotone, so the iteration converges to
// the most precise typing expressible with these constraint sets.
//
// The paper restricts the analysis to one source file and assumes empty
// sets for external functions; our programs are whole single translation
// units, so the analysis is whole-program, with main's input set empty.
// InferExternal reproduces the paper's file-boundary pessimism for a
// chosen set of functions.
func Infer(p *Program) *InferResult { return InferExternal(p, nil) }

// InferExternal is Infer with the paper's separate-compilation rule:
// every function for which external returns true is treated as crossing a
// translation-unit boundary — "any non-static C function and any function
// called via a function pointer has empty input, output and result
// constraint sets" — so no caller facts flow into it and no callee facts
// flow out of it.
func InferExternal(p *Program, external func(name string) bool) *InferResult {
	inf := &inference{
		prog:    p,
		sums:    make(map[string]*Summary, len(p.Funcs)),
		callers: make(map[string]map[string]bool),
	}
	for name := range p.Funcs {
		inf.sums[name] = &Summary{
			Input:  Universe(),
			Output: Universe(),
			Result: Universe(),
		}
		if external != nil && external(name) {
			inf.sums[name] = &Summary{Input: Empty(), Output: Empty(), Result: Empty()}
			inf.external = append(inf.external, name)
		}
		inf.callers[name] = make(map[string]bool)
	}
	inf.isExt = make(map[string]bool, len(inf.external))
	for _, n := range inf.external {
		inf.isExt[n] = true
	}
	// Record the static call graph for requeuing.
	for name, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, s := range b.Stmts {
				if s.Kind == SCall {
					if _, ok := inf.callers[s.Callee]; ok {
						inf.callers[s.Callee][name] = true
					}
				}
			}
		}
	}
	// Entry points — main and functions with no static callers — have no
	// caller-supplied facts, so their input property is empty.
	for name := range p.Funcs {
		if name == "main" || len(inf.callers[name]) == 0 {
			inf.sums[name].Input = Empty()
		}
	}
	// Worklist to convergence.
	work := make([]string, 0, len(p.Funcs))
	inWork := make(map[string]bool, len(p.Funcs))
	push := func(n string) {
		if !inWork[n] {
			inWork[n] = true
			work = append(work, n)
		}
	}
	runFixpoint := func() {
		for len(work) > 0 {
			name := work[len(work)-1]
			work = work[:len(work)-1]
			inWork[name] = false
			changedCallees, summaryChanged := inf.analyze(name, nil)
			for _, c := range changedCallees {
				push(c)
			}
			if summaryChanged {
				for caller := range inf.callers[name] {
					push(caller)
				}
			}
		}
	}
	for name := range p.Funcs {
		push(name)
	}
	runFixpoint()
	// Functions in call cycles reachable from no entry point may still
	// carry universal inputs; ground them (they never execute, but their
	// sites are classified and their summaries must be admissible) and
	// re-converge.
	for {
		grounded := false
		for name := range p.Funcs {
			if inf.sums[name].Input.IsUniverse() {
				inf.sums[name].Input = Empty()
				push(name)
				grounded = true
			}
		}
		if !grounded {
			break
		}
		runFixpoint()
	}
	// Final pass: classify every annotated check site against the
	// converged facts.
	res := &InferResult{
		SafeSite:  make([]bool, p.NumSites),
		SiteSeen:  make([]bool, p.NumSites),
		Summaries: inf.sums,
	}
	for name := range p.Funcs {
		inf.analyze(name, res)
	}
	return res
}

// InferResult reports which pointer-store sites were proven safe.
type InferResult struct {
	// SafeSite[i] is true when the runtime check of site i is statically
	// redundant. Only meaningful where SiteSeen[i].
	SafeSite []bool
	// SiteSeen[i] is true when site i is an annotated check site that the
	// translation produced (unannotated sites are full reference-count
	// updates and have no check to eliminate).
	SiteSeen  []bool
	Summaries map[string]*Summary
}

// Summary is a function's inferred properties, over its Params variable
// space; the result region is resultVar(f).
type Summary struct {
	Input  *Set
	Output *Set
	Result *Set
}

func resultVar(f *Func) Var { return Var(f.NumVars) }

type inference struct {
	prog    *Program
	sums    map[string]*Summary
	callers map[string]map[string]bool
	// external lists functions pinned to empty summaries (the paper's
	// separate-compilation boundary); isExt resolves membership.
	external []string
	isExt    map[string]bool
}

// chkFact is the property an annotated field write must satisfy
// (Section 4.3's translation): the value's region ρ_val against the
// containing object's region ρ_obj.
func chkFact(q rcc.Qual, obj, val Var) (Fact, bool) {
	switch q {
	case rcc.QualSameRegion:
		return CondEq(val, obj), true
	case rcc.QualTraditional:
		return CondEq(val, RT), true
	case rcc.QualParentPtr:
		return Leq(obj, val), true
	}
	return Fact{}, false
}

// analyze runs the intraprocedural dataflow for one function using current
// callee summaries. It returns callees whose Input shrank and whether this
// function's Output/Result summary shrank. When res is non-nil it instead
// records site classifications (the summaries are converged).
func (inf *inference) analyze(name string, res *InferResult) (changedCallees []string, summaryChanged bool) {
	f := inf.prog.Funcs[name]
	sum := inf.sums[name]

	ins := make([]*Set, len(f.Blocks))
	for i := range ins {
		ins[i] = Universe()
	}
	ins[0] = sum.Input.Clone()

	outputAcc := Universe()
	resultAcc := Universe()

	calleeShrunk := map[string]bool{}

	work := []int{0}
	inWork := make([]bool, len(f.Blocks))
	inWork[0] = true
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		facts := ins[bi].Clone()
		for si := range f.Blocks[bi].Stmts {
			s := &f.Blocks[bi].Stmts[si]
			facts = inf.transfer(f, s, facts, res, calleeShrunk, &outputAcc, &resultAcc)
		}
		for _, succ := range f.Blocks[bi].Succs {
			merged := Meet(ins[succ], facts)
			if !merged.Equal(ins[succ]) {
				ins[succ] = merged
				if !inWork[succ] {
					inWork[succ] = true
					work = append(work, succ)
				}
			}
		}
	}

	if res == nil && !inf.isExt[name] {
		if !outputAcc.Equal(sum.Output) {
			sum.Output = outputAcc
			summaryChanged = true
		}
		if !resultAcc.Equal(sum.Result) {
			sum.Result = resultAcc
			summaryChanged = true
		}
	}
	if res == nil {
		for c := range calleeShrunk {
			changedCallees = append(changedCallees, c)
		}
	}
	return changedCallees, summaryChanged
}

// expandTops materializes, over the given variable space, the weakenings
// of null facts: σ=⊤ entails σ=⊤∨σ=v and v≤σ for every v. The closure
// only materializes weakenings over variables a set already mentions, so
// without this step a meet across call sites or return paths can lose
// consequences involving parameters one side never constrained.
func expandTops(s *Set, vars []Var) *Set {
	if s.IsUniverse() {
		return s
	}
	out := s.Clone()
	for _, a := range vars {
		if a == NoVar || !s.Implies(EqTop(a)) {
			continue
		}
		for _, b := range vars {
			if b == NoVar || b == a {
				continue
			}
			out.Add(CondEq(a, b))
			out.Add(Leq(b, a))
		}
		out.Add(CondEq(a, RT))
		out.Add(Leq(RT, a))
	}
	return out
}

// transfer applies one statement's effect to the fact set.
func (inf *inference) transfer(f *Func, s *Stmt, in *Set, res *InferResult,
	calleeShrunk map[string]bool, outputAcc, resultAcc **Set) *Set {

	kill := func(v Var) *Set {
		if v == NoVar {
			return in
		}
		return in.KillVar(v)
	}

	switch s.Kind {
	case SCopy:
		if s.Dst == s.Src || s.Dst == NoVar {
			return in
		}
		out := kill(s.Dst)
		if s.Src != NoVar {
			out.Add(Eq(s.Dst, s.Src))
		}
		return out
	case SNull:
		out := kill(s.Dst)
		out.Add(EqTop(s.Dst))
		return out
	case SFresh:
		return kill(s.Dst)
	case SMkTrad:
		out := kill(s.Dst)
		out.Add(Eq(s.Dst, RT))
		out.Add(NeTop(s.Dst))
		return out
	case SFieldRead:
		withObj := in
		if s.Src != NoVar && s.Src != s.Dst {
			withObj = in.Clone()
			withObj.Add(NeTop(s.Src))
		}
		in = withObj
		out := kill(s.Dst)
		if s.Src != NoVar && s.Src != s.Dst {
			switch s.Qual {
			case rcc.QualSameRegion:
				out.Add(CondEq(s.Dst, s.Src))
			case rcc.QualTraditional:
				out.Add(CondEq(s.Dst, RT))
			case rcc.QualParentPtr:
				out.Add(Leq(s.Src, s.Dst))
			}
		} else if s.Qual == rcc.QualTraditional {
			out.Add(CondEq(s.Dst, RT))
		}
		return out
	case SFieldWrite:
		out := in.Clone()
		if fact, annotated := chkFact(s.Qual, s.Src, s.Val); annotated {
			if res != nil && s.Site >= 0 {
				res.SiteSeen[s.Site] = true
				if in.Implies(fact) {
					res.SafeSite[s.Site] = true
				}
			}
			// After the (possibly runtime) check, the property holds.
			out.Add(fact)
		}
		if s.Src != NoVar {
			out.Add(NeTop(s.Src))
		}
		return out
	case SAlloc:
		out := kill(s.Dst)
		out.Add(NeTop(s.Dst))
		if s.Src != NoVar && s.Src != s.Dst {
			out.Add(NeTop(s.Src))
			out.Add(Eq(s.Dst, s.Src))
		}
		return out
	case SNewRegion:
		out := kill(s.Dst)
		out.Add(NeTop(s.Dst))
		return out
	case SNewSub:
		withP := in
		if s.Src != NoVar && s.Src != s.Dst {
			withP = in.Clone()
			withP.Add(NeTop(s.Src))
		}
		in = withP
		out := kill(s.Dst)
		out.Add(NeTop(s.Dst))
		if s.Src != NoVar && s.Src != s.Dst {
			out.Add(Leq(s.Dst, s.Src))
		}
		return out
	case SRegionOf:
		// regionof requires a live object, so the argument is non-null
		// and the result names its region.
		withP := in
		if s.Src != NoVar && s.Src != s.Dst {
			withP = in.Clone()
			withP.Add(NeTop(s.Src))
		}
		in = withP
		out := kill(s.Dst)
		out.Add(NeTop(s.Dst))
		if s.Src != NoVar && s.Src != s.Dst {
			out.Add(Eq(s.Dst, s.Src))
		}
		return out
	case SAssume:
		out := in.Clone()
		out.Add(s.F)
		return out
	case SNonNull:
		if s.Src == NoVar {
			return in
		}
		out := in.Clone()
		out.Add(NeTop(s.Src))
		return out
	case SKillTemps:
		return in.Restrict(f.NamedRename())
	case SReturn:
		// Fold this return's facts into the function summary.
		rename := make(map[Var]Var)
		for _, pv := range f.Params {
			if pv != NoVar {
				rename[pv] = pv
			}
		}
		space := append([]Var{}, f.Params...)
		space = append(space, resultVar(f))
		outFacts := expandTops(in.Restrict(rename), space)
		*outputAcc = Meet(*outputAcc, outFacts)
		switch {
		case s.Src == NoVar:
			*resultAcc = Meet(*resultAcc, outFacts)
		default:
			if _, isParam := rename[s.Src]; isParam {
				// Returning a parameter: keep the parameter's identity
				// and record result = parameter.
				rs := in.Restrict(rename)
				rs.Add(Eq(resultVar(f), s.Src))
				*resultAcc = Meet(*resultAcc, expandTops(rs, space))
			} else {
				rename[s.Src] = resultVar(f)
				*resultAcc = Meet(*resultAcc, expandTops(in.Restrict(rename), space))
			}
		}
		return in
	case SCall:
		callee, known := inf.prog.Funcs[s.Callee]
		if !known {
			// External/unknown function: pessimistic.
			return kill(s.Dst)
		}
		csum := inf.sums[s.Callee]
		// Contribute caller facts to the callee's input set.
		rename := make(map[Var]Var)
		var dups []Fact
		for i, pv := range callee.Params {
			if i >= len(s.Args) || pv == NoVar || s.Args[i] == NoVar {
				continue
			}
			if prev, ok := rename[s.Args[i]]; ok {
				// Same actual passed twice: the params are equal.
				dups = append(dups, Eq(prev, pv))
				continue
			}
			rename[s.Args[i]] = pv
		}
		contribution := in.Restrict(rename)
		for _, d := range dups {
			contribution.Add(d)
		}
		contribution = expandTops(contribution, callee.Params)
		if res == nil && !inf.isExt[s.Callee] {
			merged := Meet(csum.Input, contribution)
			if !merged.Equal(csum.Input) {
				csum.Input = merged
				calleeShrunk[s.Callee] = true
			}
		}
		// Apply the callee's output/result properties in the caller.
		out := kill(s.Dst)
		back := make(map[Var]Var)
		for i, pv := range callee.Params {
			if i >= len(s.Args) || pv == NoVar || s.Args[i] == NoVar {
				continue
			}
			if _, taken := back[pv]; !taken {
				back[pv] = s.Args[i]
			}
		}
		effect := csum.Output
		if s.Dst != NoVar {
			back[resultVar(callee)] = s.Dst
			effect = csum.Result
		}
		return Union(out, effect.Restrict(back))
	}
	return in
}
