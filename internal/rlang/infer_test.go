package rlang

import (
	"testing"

	"rcgo/internal/rcc"
)

// inferSrc runs the whole front-end pipeline and the inference, returning
// per-site results. Sites are numbered in source order of pointer stores.
func inferSrc(t *testing.T, src string) (*rcc.CheckedProgram, *InferResult) {
	t.Helper()
	prog, err := rcc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := rcc.Check(prog, true)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res := Infer(Translate(cp))
	return cp, res
}

func wantSites(t *testing.T, res *InferResult, want []bool) {
	t.Helper()
	if len(res.SafeSite) != len(want) {
		t.Fatalf("have %d sites, want %d", len(res.SafeSite), len(want))
	}
	for i, w := range want {
		if res.SafeSite[i] != w {
			t.Errorf("site %d: safe=%v, want %v", i, res.SafeSite[i], w)
		}
	}
}

const listDecl = `
struct finfo { int v; };
struct rlist {
	struct rlist *sameregion next;
	struct finfo *sameregion data;
};
`

// The paper's first successfully verified idiom: creating the contents of
// x after x itself exists.
func TestInferConstructorAfterAlloc(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
void main(void) {
	region r = newregion();
	struct rlist *x = ralloc(r, struct rlist);
	x->next = ralloc(regionof(x), struct rlist);
}`)
	wantSites(t, res, []bool{true})
}

// The paper's Figure 1 loop: "we can successfully verify all the
// assignments in Figure 1".
func TestInferFigure1Loop(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
deletes void main(void) {
	struct rlist *rl;
	struct rlist *last = null;
	region r = newregion();
	int i = 0;
	while (i < 10) {
		rl = ralloc(r, struct rlist);
		rl->data = ralloc(r, struct finfo);
		rl->next = last;
		last = rl;
		i++;
	}
	deleteregion(r);
}`)
	// Sites in order: rl->data = ..., rl->next = last. Both verified.
	wantSites(t, res, []bool{true, true})
}

// The paper's heap-access idiom: x = ralloc(regionof(y), ...);
// x->next = y->next.
func TestInferRegionOfHeapAccess(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
void f(struct rlist *y) {
	struct rlist *x = ralloc(regionof(y), struct rlist);
	x->next = y->next;
}
void main(void) {
	region r = newregion();
	struct rlist *y = ralloc(r, struct rlist);
	f(y);
}`)
	wantSites(t, res, []bool{true})
}

// The paper's failing idiom: "Nothing is known about objects accessed from
// arbitrary arrays": x->next = objects[23].
func TestInferArrayAccessNotVerified(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
struct rlist **objects;
void main(void) {
	region r = newregion();
	objects = rarrayalloc(r, 100, struct rlist *);
	struct rlist *x = ralloc(r, struct rlist);
	x->next = objects[23];
}`)
	// Sites: objects = rarrayalloc (global pointer store, unannotated:
	// site but no check), x->next = objects[23] (sameregion, NOT safe).
	if res.SafeSite[1] {
		t.Error("array-sourced store must not be verified")
	}
	if res.SiteSeen[0] {
		t.Error("unannotated global store should have no check site")
	}
}

// The paper's failing idiom: hand-written constructors. new_rlist's
// assignment cannot be verified when callers pass unrelated regions.
func TestInferHandWrittenConstructor(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
struct rlist *new_rlist(region r, struct rlist *next) {
	struct rlist *n = ralloc(r, struct rlist);
	n->next = next;
	return n;
}
struct rlist **objects;
void main(void) {
	region r = newregion();
	objects = rarrayalloc(r, 10, struct rlist *);
	struct rlist *a = new_rlist(r, null);
	struct rlist *b = new_rlist(r, objects[3]);
	objects[0] = b;
	if (a) print_int(1);
}`)
	// Site 0 is n->next = next inside the constructor: the second call
	// passes an array-sourced pointer, so the input property cannot
	// relate next's region to r and the check stays.
	if res.SafeSite[0] {
		t.Error("constructor store verified despite unrelated call site")
	}
}

// But a constructor whose every call site passes matching regions IS
// verified interprocedurally (the paper: "a more elaborate version of this
// loop (involving inter-procedural analysis) is found in moss and is also
// verified").
func TestInferConstructorInterprocedural(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
struct rlist *new_rlist(region r, struct rlist *next) {
	struct rlist *n = ralloc(r, struct rlist);
	n->next = next;
	return n;
}
void main(void) {
	region r = newregion();
	struct rlist *head = null;
	int i = 0;
	while (i < 5) {
		head = new_rlist(r, head);
		i++;
	}
}`)
	// Call sites pass (r, null) then (r, head) where head came from
	// new_rlist(r, ...) whose result is in r. Input property:
	// next=⊤ ∨ next=r, which discharges the check.
	wantSites(t, res, []bool{true})
}

// Globals defeat the inference (the paper: "our region type system does
// not represent the region of global variables, so verification of
// annotations often fails in these programs").
func TestInferGlobalRegionNotVerified(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
region g;
void main(void) {
	g = newregion();
	struct rlist *x = ralloc(g, struct rlist);
	x->next = ralloc(g, struct rlist);
}`)
	// The two ralloc(g) calls read the untracked global twice; the
	// regions cannot be proven equal.
	wantSites(t, res, []bool{false})
}

// ... and the paper's fix: "where possible, we changed these programs to
// keep regions in local variables, or used regionof to find the
// appropriate region in which to allocate objects".
func TestInferGlobalRegionFixedWithRegionof(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
region g;
void main(void) {
	g = newregion();
	struct rlist *x = ralloc(g, struct rlist);
	x->next = ralloc(regionof(x), struct rlist);
}`)
	wantSites(t, res, []bool{true})
}

func TestInferTraditional(t *testing.T) {
	_, res := inferSrc(t, `
struct buf { char *traditional data; };
char storage[256];
void main(void) {
	region r = newregion();
	struct buf *b = ralloc(r, struct buf);
	b->data = storage;        // global array: traditional, safe
	b->data = "literal";      // string literal: traditional, safe
	char *p = b->data;        // traditional read
	b->data = p;              // value known null-or-traditional: safe
}`)
	wantSites(t, res, []bool{true, true, true})
}

func TestInferParentPtr(t *testing.T) {
	_, res := inferSrc(t, `
struct req { struct req *parentptr parent; int id; };
void main(void) {
	region r = newregion();
	region sub = newsubregion(r);
	struct req *outer = ralloc(r, struct req);
	struct req *inner = ralloc(sub, struct req);
	inner->parent = outer;   // up the hierarchy: safe
	inner->parent = null;    // null: safe
	outer->parent = inner;   // DOWN the hierarchy: not provable
}`)
	wantSites(t, res, []bool{true, true, false})
}

func TestInferNullCheckBranches(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
void main(void) {
	region r = newregion();
	struct rlist *x = ralloc(r, struct rlist);
	struct rlist *y = x->next;   // sameregion read: y=⊤ ∨ y=x's region
	if (y != null) {
		x->next = y;             // y ≠ ⊤ resolves to y = region(x): safe
	}
	x->next = y;                 // also safe: CondEq holds directly
}`)
	wantSites(t, res, []bool{true, true})
}

func TestInferAddressTakenDefeats(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
void setp(struct rlist **pp, struct rlist *v) { *pp = v; }
void main(void) {
	region r = newregion();
	struct rlist *x = ralloc(r, struct rlist);
	setp(&x, ralloc(r, struct rlist));
	x->next = x;   // x is address-taken: untracked, check remains
}`)
	// Sites: *pp = v (unannotated: no check), x->next = x. An
	// address-taken variable is untracked, so each read produces a fresh
	// unknown region: even x->next = x cannot be verified (the two reads
	// of x could in principle differ).
	if res.SafeSite[1] {
		t.Error("store through address-taken pointer verified unsoundly")
	}
	// A store of a DIFFERENT untracked value is not safe.
	_, res2 := inferSrc(t, listDecl+`
void main(void) {
	region r = newregion();
	struct rlist *x = ralloc(r, struct rlist);
	struct rlist *y = ralloc(r, struct rlist);
	int used = 0;
	struct rlist **px = &x;
	if (px) used = 1;
	x->next = y;   // x addr-taken: its region is unknown at the store
}`)
	last := len(res2.SafeSite) - 1
	if res2.SafeSite[last] {
		t.Error("store into address-taken pointer's target verified unsoundly")
	}
}

func TestInferTernary(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
void main(void) {
	region r = newregion();
	struct rlist *a = ralloc(r, struct rlist);
	struct rlist *b = ralloc(r, struct rlist);
	int flag = 1;
	struct rlist *c = flag ? a : b;  // both in r
	a->next = c;                     // safe
}`)
	wantSites(t, res, []bool{true})
}

func TestInferLoopInvariant(t *testing.T) {
	// A pointer that escapes to another region inside a loop must defeat
	// verification on the loop's back edge.
	_, res := inferSrc(t, listDecl+`
void main(void) {
	region r1 = newregion();
	region r2 = newregion();
	struct rlist *x = ralloc(r1, struct rlist);
	int i = 0;
	while (i < 4) {
		x->next = x;                  // x same as x: safe
		if (i == 2) {
			x = ralloc(r2, struct rlist);
		}
		i++;
	}
}`)
	wantSites(t, res, []bool{true})
}

func TestInferCrossRegionNotSafe(t *testing.T) {
	_, res := inferSrc(t, listDecl+`
void main(void) {
	region r1 = newregion();
	region r2 = newregion();
	struct rlist *a = ralloc(r1, struct rlist);
	struct rlist *b = ralloc(r2, struct rlist);
	a->next = b;   // cross-region: must stay checked (and would abort)
}`)
	wantSites(t, res, []bool{false})
}

// Summaries: a function returning a new region has result ≠ ⊤ but
// unrelated to its argument; myregionof relates result to its parameter
// (the paper's Section 4.3 example).
func TestInferSummaries(t *testing.T) {
	cp, res := inferSrc(t, listDecl+`
region myregionof(struct rlist *x) { return regionof(x); }
region mynewregion(struct rlist *x) { return newregion(); }
void main(void) {
	region r = newregion();
	struct rlist *y = ralloc(r, struct rlist);
	region a = myregionof(y);
	struct rlist *z = ralloc(a, struct rlist);
	y->next = z;   // a = regionof(y), so z is in y's region: safe
	region b = mynewregion(y);
	struct rlist *w = ralloc(b, struct rlist);
	y->next = w;   // w is in a fresh region: not safe
}`)
	_ = cp
	wantSites(t, res, []bool{true, false})
	mro := res.Summaries["myregionof"]
	if mro == nil || mro.Result.IsUniverse() {
		t.Fatal("myregionof has no result summary")
	}
}

// The paper's separate-compilation rule: non-static functions crossing a
// file boundary get empty input/output/result sets, so interprocedural
// verification is lost exactly there.
func TestInferExternalBoundary(t *testing.T) {
	src := listDecl + `
struct rlist *new_rlist(region r, struct rlist *next) {
	struct rlist *n = ralloc(r, struct rlist);
	n->next = next;
	return n;
}
void main(void) {
	region r = newregion();
	struct rlist *head = null;
	int i = 0;
	while (i < 5) { head = new_rlist(r, head); i++; }
}`
	prog, err := rcc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := rcc.Check(prog, true)
	if err != nil {
		t.Fatal(err)
	}
	p := Translate(cp)

	// Whole-program: the constructor's store is verified (all call sites
	// pass matching regions).
	whole := Infer(p)
	if !whole.SafeSite[0] {
		t.Fatal("whole-program inference should verify the constructor store")
	}
	// With new_rlist treated as external (callable from other files),
	// its input property must stay empty and the check remains.
	sep := InferExternal(p, func(name string) bool { return name == "new_rlist" })
	if sep.SafeSite[0] {
		t.Error("separate-compilation inference verified across the file boundary")
	}
	if !sep.Summaries["new_rlist"].Input.Equal(Empty()) ||
		!sep.Summaries["new_rlist"].Output.Equal(Empty()) {
		t.Error("external function's summary not pinned to empty sets")
	}
	// Callers also stop learning from the external function's result:
	// head's region is unknown, but the loop still runs (no errors) and
	// the typing stays admissible.
	if err := CheckProgram(p, sep); err != nil {
		t.Errorf("separate-compilation typing inadmissible: %v", err)
	}
}
