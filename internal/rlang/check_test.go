package rlang

import (
	"strings"
	"testing"

	"rcgo/internal/rcc"
)

func translateSrc(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := rcc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := rcc.Check(prog, true)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return Translate(cp)
}

// Every inferred typing over the test corpus must pass the Figure 6
// checker.
func TestCheckerAcceptsInference(t *testing.T) {
	srcs := []string{
		listDecl + `
struct rlist *new_rlist(region r, struct rlist *next) {
	struct rlist *n = ralloc(r, struct rlist);
	n->next = next;
	return n;
}
deletes void main(void) {
	region r = newregion();
	struct rlist *head = null;
	int i = 0;
	while (i < 5) { head = new_rlist(r, head); i++; }
	head = null;
	deleteregion(r);
}`,
		listDecl + `
region myregionof(struct rlist *x) { return regionof(x); }
void main(void) {
	region r = newregion();
	struct rlist *y = ralloc(r, struct rlist);
	struct rlist *z = ralloc(myregionof(y), struct rlist);
	y->next = z;
}`,
		`
struct req { struct req *parentptr up; };
deletes void main(void) {
	region a = newregion();
	region b = newsubregion(a);
	struct req *x = ralloc(b, struct req);
	x->up = ralloc(a, struct req);
	x = null;
	deleteregion(b);
	deleteregion(a);
}`,
		// Mutual recursion in dead code: exercises the grounding loop.
		listDecl + `
void ping(struct rlist *x);
void pong(struct rlist *x) { if (x) ping(x->next); }
void ping(struct rlist *x) { if (x) pong(x->next); }
void main(void) { print_int(1); }`,
	}
	for i, src := range srcs {
		p := translateSrc(t, src)
		res := Infer(p)
		if err := CheckProgram(p, res); err != nil {
			t.Errorf("program %d: checker rejected inferred typing: %v", i, err)
		}
	}
}

// Corrupting a summary with an unjustified fact must be caught.
func TestCheckerRejectsBogusOutput(t *testing.T) {
	p := translateSrc(t, listDecl+`
struct rlist *mk(region r) { return ralloc(r, struct rlist); }
void main(void) {
	region r = newregion();
	struct rlist *x = mk(r);
	if (x) print_int(1);
}`)
	res := Infer(p)
	if err := CheckProgram(p, res); err != nil {
		t.Fatalf("clean typing rejected: %v", err)
	}
	// Claim mk's parameter region equals the traditional region — never
	// justified at the return.
	mk := p.Funcs["mk"]
	var pv Var
	for _, v := range mk.Params {
		if v != NoVar {
			pv = v
		}
	}
	bogus := res.Summaries["mk"].Output.Clone()
	bogus.Add(Eq(pv, RT))
	res.Summaries["mk"].Output = bogus
	err := CheckProgram(p, res)
	if err == nil || !strings.Contains(err.Error(), "output property") {
		t.Fatalf("bogus output accepted: %v", err)
	}
}

func TestCheckerRejectsBogusInput(t *testing.T) {
	p := translateSrc(t, listDecl+`
void use(struct rlist *x) { if (x) print_int(1); }
void main(void) {
	struct rlist *n = null;
	use(n);
}`)
	res := Infer(p)
	// Demand that use's argument is never null; main passes null.
	use := p.Funcs["use"]
	var pv Var
	for _, v := range use.Params {
		if v != NoVar {
			pv = v
		}
	}
	stronger := Empty()
	stronger.Add(NeTop(pv))
	res.Summaries["use"].Input = stronger
	// The corruption is caught either at main's call site (the input
	// property is not satisfied) or inside use itself (whose inferred
	// output property no longer follows from the strengthened input).
	err := CheckProgram(p, res)
	if err == nil || !strings.Contains(err.Error(), "property not satisfied") {
		t.Fatalf("bogus input accepted: %v", err)
	}
}

func TestCheckerRejectsBogusElimination(t *testing.T) {
	p := translateSrc(t, listDecl+`
struct rlist **objects;
void main(void) {
	region r = newregion();
	objects = rarrayalloc(r, 4, struct rlist *);
	struct rlist *x = ralloc(r, struct rlist);
	x->next = objects[2];
}`)
	res := Infer(p)
	// Force-eliminate the unverifiable array-sourced store.
	forced := false
	for i := range res.SafeSite {
		if res.SiteSeen[i] && !res.SafeSite[i] {
			res.SafeSite[i] = true
			forced = true
		}
	}
	if !forced {
		t.Fatal("no unverified site to corrupt")
	}
	err := CheckProgram(p, res)
	if err == nil || !strings.Contains(err.Error(), "eliminated check") {
		t.Fatalf("bogus elimination accepted: %v", err)
	}
}
