// Package rlang implements the region type system of Section 4 of Gay &
// Aiken, "Language Support for Regions" (PLDI 2001): types that annotate
// every pointer with a (possibly existentially quantified) abstract region,
// and a constraint-based inference that verifies the sameregion,
// traditional and parentptr annotations statically, eliminating their
// runtime checks.
//
// Following the paper's implementation (Section 4.3), boolean region
// properties are approximated by constraint sets over the facts
//
//	σ = ⊤        (the value is null)
//	σ ≠ ⊤        (the value is not null)
//	σ1 ≤ σ2      (σ1 is a subregion of — below — σ2)
//	σ1 = σ2      (same region)
//	σ1 = ⊤ ∨ σ1 = σ2
//
// over abstract regions σ drawn from one variable per local/parameter plus
// the constants ⊤ (the region of null) and R_T (the traditional region).
// Constraint sets form a finite lattice under ⊇ with meet = intersection;
// all transfer functions are monotone, so a greatest fixed point exists and
// is the most precise typing expressible with these facts.
package rlang

import (
	"fmt"
	"sort"
	"strings"
)

// Var names an abstract region. Top and RT are the distinguished
// constants; per-function variables start at FirstVar.
type Var int32

const (
	// Top is ⊤, the region of the null pointer. Every region is ≤ ⊤.
	Top Var = 0
	// RT is the traditional region constant (stack, globals, strings).
	RT Var = 1
	// NoVar marks expressions with no region (scalars).
	NoVar Var = -1
	// FirstVar is the first per-function variable.
	FirstVar Var = 2
)

// FactKind enumerates constraint forms.
type FactKind uint8

const (
	// FEqTop is a = ⊤.
	FEqTop FactKind = iota
	// FNeTop is a ≠ ⊤.
	FNeTop
	// FEq is a = b.
	FEq
	// FLeq is a ≤ b (a is a descendant of, or equal to, b).
	FLeq
	// FCondEq is a = ⊤ ∨ a = b.
	FCondEq
)

// Fact is one constraint. For FEq the pair is stored with A < B
// (normalized); for FLeq and FCondEq the order is significant; for
// FEqTop/FNeTop only A is used.
type Fact struct {
	Kind FactKind
	A, B Var
}

// EqTop builds a = ⊤.
func EqTop(a Var) Fact { return Fact{Kind: FEqTop, A: a} }

// NeTop builds a ≠ ⊤.
func NeTop(a Var) Fact { return Fact{Kind: FNeTop, A: a} }

// Eq builds a = b (normalized).
func Eq(a, b Var) Fact {
	if a > b {
		a, b = b, a
	}
	return Fact{Kind: FEq, A: a, B: b}
}

// Leq builds a ≤ b.
func Leq(a, b Var) Fact { return Fact{Kind: FLeq, A: a, B: b} }

// CondEq builds a = ⊤ ∨ a = b.
func CondEq(a, b Var) Fact { return Fact{Kind: FCondEq, A: a, B: b} }

func (f Fact) String() string {
	v := func(x Var) string {
		switch x {
		case Top:
			return "⊤"
		case RT:
			return "R_T"
		default:
			return fmt.Sprintf("ρ%d", int(x)-int(FirstVar))
		}
	}
	switch f.Kind {
	case FEqTop:
		return v(f.A) + "=⊤"
	case FNeTop:
		return v(f.A) + "≠⊤"
	case FEq:
		return v(f.A) + "=" + v(f.B)
	case FLeq:
		return v(f.A) + "≤" + v(f.B)
	case FCondEq:
		return v(f.A) + "=⊤∨" + v(f.A) + "=" + v(f.B)
	}
	return "?"
}

// Set is a constraint set: a conjunction of facts, or the universal set
// (the lattice top, standing for "all facts" — the property of unreachable
// code and the optimistic starting point of the greatest-fixed-point
// inference).
type Set struct {
	univ  bool
	facts map[Fact]struct{}
	// closed memoizes Closure(): the transfer functions close the same
	// set many times (meets, implications, kills). Mutation through Add
	// invalidates it. A closed set points to itself.
	closed *Set
}

// Universe returns the universal (top) set.
func Universe() *Set { return &Set{univ: true} }

// Empty returns the empty set (the lattice bottom: no information).
func Empty() *Set { return &Set{facts: map[Fact]struct{}{}} }

// IsUniverse reports whether the set is universal.
func (s *Set) IsUniverse() bool { return s.univ }

// Len returns the number of facts (0 for the universal set, which is
// symbolic).
func (s *Set) Len() int {
	if s.univ {
		return 0
	}
	return len(s.facts)
}

// Clone copies the set. The clone shares the memoized closure until it
// is mutated.
func (s *Set) Clone() *Set {
	if s.univ {
		return Universe()
	}
	n := &Set{facts: make(map[Fact]struct{}, len(s.facts)), closed: s.closed}
	for f := range s.facts {
		n.facts[f] = struct{}{}
	}
	return n
}

// Add inserts a fact (no-op on the universal set). Trivially true facts
// are dropped.
func (s *Set) Add(f Fact) {
	if s.univ {
		return
	}
	if trivial(f) {
		return
	}
	if _, ok := s.facts[f]; !ok {
		s.facts[f] = struct{}{}
		s.closed = nil
	}
}

// trivial reports facts that hold by definition and need not be stored.
func trivial(f Fact) bool {
	switch f.Kind {
	case FEq:
		return f.A == f.B
	case FLeq:
		return f.A == f.B || f.B == Top // r ≤ r and r ≤ ⊤ always hold
	case FCondEq:
		return f.A == f.B || f.A == Top
	case FNeTop:
		return f.A == RT // the traditional region is not ⊤
	case FEqTop:
		return f.A == Top
	}
	return false
}

// Has reports literal membership (used by tests; prefer Implies).
func (s *Set) Has(f Fact) bool {
	if s.univ {
		return true
	}
	_, ok := s.facts[f]
	return ok
}

// Equal reports set equality.
func (s *Set) Equal(o *Set) bool {
	if s.univ || o.univ {
		return s.univ == o.univ
	}
	if len(s.facts) != len(o.facts) {
		return false
	}
	for f := range s.facts {
		if _, ok := o.facts[f]; !ok {
			return false
		}
	}
	return true
}

// Meet intersects two sets (the dataflow meet: facts that hold on both
// paths). The universal set is the identity.
func Meet(a, b *Set) *Set {
	if a.univ {
		return b.Clone()
	}
	if b.univ {
		return a.Clone()
	}
	// Close both sides first so shared consequences survive the
	// intersection even when derived from different premises.
	ac, bc := a.Closure(), b.Closure()
	out := Empty()
	for f := range ac.facts {
		if _, ok := bc.facts[f]; ok {
			out.facts[f] = struct{}{}
		}
	}
	return out
}

// Union conjoins two sets of facts that both hold (e.g. caller facts plus
// a callee's guaranteed output facts). The universal set absorbs.
func Union(a, b *Set) *Set {
	if a.univ || b.univ {
		return Universe()
	}
	out := a.Clone()
	for f := range b.facts {
		out.facts[f] = struct{}{}
	}
	return out
}

// Closure returns the set closed under the derivation rules of the
// constraint language: equality symmetry/transitivity/congruence,
// propagation of (non-)nullness across equalities, resolution of
// conditional equalities by non-nullness, ≤-transitivity, and substitution
// of equals. Closure is a no-op on the universal set.
func (s *Set) Closure() *Set {
	if s.univ {
		return s
	}
	if s.closed != nil {
		return s.closed
	}
	out := s.Clone()
	changed := true
	add := func(f Fact) {
		if trivial(f) {
			return
		}
		if _, ok := out.facts[f]; !ok {
			out.facts[f] = struct{}{}
			changed = true
		}
	}
	for changed {
		changed = false
		facts := make([]Fact, 0, len(out.facts))
		vars := map[Var]struct{}{RT: {}}
		for f := range out.facts {
			facts = append(facts, f)
			if f.A != Top {
				vars[f.A] = struct{}{}
			}
			if (f.Kind == FEq || f.Kind == FLeq || f.Kind == FCondEq) && f.B != Top {
				vars[f.B] = struct{}{}
			}
		}
		for _, f := range facts {
			switch f.Kind {
			case FEqTop:
				// Weakenings over the mentioned variables, so that
				// consequences common to both sides survive the meet
				// (set intersection): a=⊤ entails a=⊤∨a=v for every v,
				// and v ≤ a for every v (everything is ≤ ⊤).
				for v := range vars {
					if v != f.A {
						add(CondEq(f.A, v))
						add(Leq(v, f.A))
					}
				}
			case FEq:
				// Weakenings: a=b entails the conditional equalities and
				// both orderings.
				add(CondEq(f.A, f.B))
				add(CondEq(f.B, f.A))
				add(Leq(f.A, f.B))
				add(Leq(f.B, f.A))
				for _, g := range facts {
					switch g.Kind {
					case FEq: // transitivity
						switch {
						case f.B == g.A:
							add(Eq(f.A, g.B))
						case f.B == g.B:
							add(Eq(f.A, g.A))
						case f.A == g.A:
							add(Eq(f.B, g.B))
						case f.A == g.B:
							add(Eq(f.B, g.A))
						}
					case FEqTop:
						if g.A == f.A {
							add(EqTop(f.B))
						}
						if g.A == f.B {
							add(EqTop(f.A))
						}
					case FNeTop:
						if g.A == f.A {
							add(NeTop(f.B))
						}
						if g.A == f.B {
							add(NeTop(f.A))
						}
					case FLeq: // substitution of equals
						add(substLeq(g, f.A, f.B))
						add(substLeq(g, f.B, f.A))
					case FCondEq:
						add(substCond(g, f.A, f.B))
						add(substCond(g, f.B, f.A))
					}
				}
			case FCondEq:
				// a=⊤ ∨ a=b resolved by a ≠ ⊤.
				if _, ok := out.facts[NeTop(f.A)]; ok {
					add(Eq(f.A, f.B))
				}
				// Resolved the other way by a = ⊤: trivially true,
				// nothing new.
			case FLeq:
				for _, g := range facts {
					if g.Kind == FLeq && f.B == g.A {
						add(Leq(f.A, g.B))
					}
				}
				// ⊤ ≤ b forces b = ⊤.
				if _, ok := out.facts[EqTop(f.A)]; ok {
					add(EqTop(f.B))
				}
			}
		}
	}
	out.closed = out // a closed set is its own closure
	s.closed = out
	return out
}

func substLeq(g Fact, from, to Var) Fact {
	a, b := g.A, g.B
	if a == from {
		a = to
	}
	if b == from {
		b = to
	}
	return Leq(a, b)
}

func substCond(g Fact, from, to Var) Fact {
	a, b := g.A, g.B
	if a == from {
		a = to
	}
	if b == from {
		b = to
	}
	return CondEq(a, b)
}

// Implies reports whether the (closed) set entails the fact, using the
// axioms of the region order: r ≤ ⊤ for every r, R_T ≠ ⊤, r = r.
func (s *Set) Implies(f Fact) bool {
	if s.univ || trivial(f) {
		return true
	}
	c := s.Closure()
	if _, ok := c.facts[f]; ok {
		return true
	}
	switch f.Kind {
	case FCondEq:
		// a=⊤ suffices; a=b suffices.
		if _, ok := c.facts[EqTop(f.A)]; ok {
			return true
		}
		if _, ok := c.facts[Eq(f.A, f.B)]; ok {
			return true
		}
	case FLeq:
		// b=⊤ suffices (everything is ≤ ⊤); a=b suffices.
		if _, ok := c.facts[EqTop(f.B)]; ok {
			return true
		}
		if _, ok := c.facts[Eq(f.A, f.B)]; ok {
			return true
		}
		// a=⊤ and b=⊤... covered by b=⊤.
	case FEq:
		// a=⊤ and b=⊤ imply a=b.
		_, aTop := c.facts[EqTop(f.A)]
		_, bTop := c.facts[EqTop(f.B)]
		if aTop && bTop {
			return true
		}
	}
	return false
}

// KillVar removes all knowledge about v (used when v is rebound). The set
// is closed first so consequences between other variables survive.
func (s *Set) KillVar(v Var) *Set {
	if s.univ {
		return s
	}
	c := s.Closure()
	out := Empty()
	for f := range c.facts {
		if f.A == v || (f.Kind == FEq || f.Kind == FLeq || f.Kind == FCondEq) && f.B == v {
			continue
		}
		out.facts[f] = struct{}{}
	}
	return out
}

// Restrict keeps only facts whose variables are all in keep (constants Top
// and RT are always kept) and renames them through the map. Used to build
// function summaries from caller/return facts.
func (s *Set) Restrict(rename map[Var]Var) *Set {
	if s.univ {
		return s
	}
	c := s.Closure()
	out := Empty()
	lookup := func(v Var) (Var, bool) {
		if v == Top || v == RT {
			return v, true
		}
		n, ok := rename[v]
		return n, ok
	}
	for f := range c.facts {
		a, okA := lookup(f.A)
		if !okA {
			continue
		}
		switch f.Kind {
		case FEqTop:
			out.Add(EqTop(a))
		case FNeTop:
			out.Add(NeTop(a))
		default:
			b, okB := lookup(f.B)
			if !okB {
				continue
			}
			switch f.Kind {
			case FEq:
				out.Add(Eq(a, b))
			case FLeq:
				out.Add(Leq(a, b))
			case FCondEq:
				out.Add(CondEq(a, b))
			}
		}
	}
	return out
}

// Rename maps variables through rename (variables not present map to
// themselves). Unlike Restrict it never drops facts.
func (s *Set) Rename(rename map[Var]Var) *Set {
	if s.univ {
		return s
	}
	out := Empty()
	lookup := func(v Var) Var {
		if n, ok := rename[v]; ok {
			return n
		}
		return v
	}
	for f := range s.facts {
		g := f
		g.A = lookup(f.A)
		if f.Kind == FEq || f.Kind == FLeq || f.Kind == FCondEq {
			g.B = lookup(f.B)
		}
		if f.Kind == FEq {
			g = Eq(g.A, g.B)
		}
		out.Add(g)
	}
	return out
}

func (s *Set) String() string {
	if s.univ {
		return "{*}"
	}
	strs := make([]string, 0, len(s.facts))
	for f := range s.facts {
		strs = append(strs, f.String())
	}
	sort.Strings(strs)
	return "{" + strings.Join(strs, ", ") + "}"
}
