package rlang

import (
	"fmt"
	"strings"

	"rcgo/internal/rcc"
)

// The rlang intermediate form: each RC function becomes a control-flow
// graph of region-relevant statements (Figure 5 of the paper, flattened to
// three-address form). Scalars carry no region information and disappear;
// every pointer- or region-typed local, parameter and temporary gets an
// abstract region variable, and each statement's effect on the constraint
// set mirrors the typing rules of Figure 6 under the translation of
// Section 4.3:
//
//   - an unannotated pointer field has type ∃ρ'. T[ρ']@ρ'
//   - a traditional field has type ∃ρ'/ρ'=⊤ ∨ ρ'=R_T. T[ρ']@ρ'
//   - a sameregion field of an object in ρ has type ∃ρ'/ρ'=⊤ ∨ ρ'=ρ. T[ρ']@ρ'
//   - a parentptr field of an object in ρ has type ∃ρ'/ρ≤ρ'. T[ρ']@ρ'
//
// Reads instantiate the existential into the destination variable; writes
// are preceded by a chk of the property, which the inference tries to
// discharge statically.

// StmtKind enumerates rlang IR statements.
type StmtKind uint8

const (
	// SCopy: Dst = Src (pointer or region copy).
	SCopy StmtKind = iota
	// SNull: Dst = null.
	SNull
	// SFresh: Dst = unknown value (global read, address-taken local read,
	// or any source the type system does not track).
	SFresh
	// SMkTrad: Dst = value known to be null-or-traditional and non-null
	// (string literal, address of a stack slot or global array).
	SMkTrad
	// SFieldRead: Dst = Obj.f where the field has qualifier Qual.
	// Implies Obj ≠ ⊤; Dst gets the field type's property.
	SFieldRead
	// SFieldWrite: Obj.f = Val, field qualifier Qual, check site Site.
	// Emits chk(property); afterwards the property and Obj ≠ ⊤ hold.
	SFieldWrite
	// SAlloc: Dst = ralloc(Region, ...): Dst = Region, both non-null.
	SAlloc
	// SNewRegion: Dst = newregion(): Dst non-null, fresh.
	SNewRegion
	// SNewSub: Dst = newsubregion(Src): Dst ≤ Src, both non-null.
	SNewSub
	// SRegionOf: Dst = regionof(Src): Dst = Src (the paper's signature
	// regionof_T[ρ](x : T[ρ]@ρ) : region@ρ).
	SRegionOf
	// SCall: Dst = Callee(Args...). Scalars in Args are NoVar.
	SCall
	// SAssume: the branch fact F holds on this path.
	SAssume
	// SReturn: function returns Src (NoVar for void/scalar returns).
	SReturn
	// SNonNull: Src is known non-null (e.g. arraylen(Src) succeeded).
	SNonNull
	// SKillTemps drops all facts about temporary (non-named) variables.
	// The translation emits one at every source-statement boundary, where
	// all expression temporaries are dead; this is the tractability
	// device the paper describes as "ignoring local variables that are
	// effectively temporaries".
	SKillTemps
)

// Stmt is one rlang IR statement.
type Stmt struct {
	Kind StmtKind
	Dst  Var
	Src  Var // Obj for field ops, Src otherwise
	Val  Var // value for SFieldWrite
	Qual rcc.Qual
	Site int  // pointer-store site ID for SFieldWrite (-1 if none)
	F    Fact // for SAssume

	Callee string
	Args   []Var
}

// Block is a basic block: straight-line statements and successor edges.
type Block struct {
	Stmts []Stmt
	Succs []int
}

// Func is a translated function.
type Func struct {
	Name string
	// Params are the region variables of the declared parameters, in
	// order; scalar parameters have NoVar.
	Params []Var
	// NumVars is the number of region variables allocated (FirstVar..).
	NumVars int
	Blocks  []*Block
	// Deletes mirrors the RC deletes qualifier.
	Deletes bool
	// Named[v] is true for region variables of declared RC variables
	// (params and locals); false entries are expression temporaries,
	// whose facts SKillTemps discards.
	Named []bool

	namedRename map[Var]Var // lazily built identity map over named vars
}

// NamedRename returns (building once) the identity renaming over the
// function's named variables, used to restrict fact sets at statement
// boundaries.
func (f *Func) NamedRename() map[Var]Var {
	if f.namedRename == nil {
		f.namedRename = make(map[Var]Var)
		for v := FirstVar; int(v) < len(f.Named); v++ {
			if f.Named[v] {
				f.namedRename[v] = v
			}
		}
	}
	return f.namedRename
}

// Program is a set of translated functions.
type Program struct {
	Funcs map[string]*Func
	// NumSites is the number of pointer-store check sites, shared with
	// the front end's numbering.
	NumSites int
}

func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s params=%v vars=%d\n", f.Name, f.Params, f.NumVars)
	for i, b := range f.Blocks {
		fmt.Fprintf(&sb, "  b%d -> %v\n", i, b.Succs)
		for _, s := range b.Stmts {
			fmt.Fprintf(&sb, "    %s\n", s)
		}
	}
	return sb.String()
}

func (s Stmt) String() string {
	v := func(x Var) string {
		if x == NoVar {
			return "_"
		}
		return fmt.Sprintf("v%d", x)
	}
	switch s.Kind {
	case SCopy:
		return fmt.Sprintf("%s = %s", v(s.Dst), v(s.Src))
	case SNull:
		return fmt.Sprintf("%s = null", v(s.Dst))
	case SFresh:
		return fmt.Sprintf("%s = ?", v(s.Dst))
	case SMkTrad:
		return fmt.Sprintf("%s = trad", v(s.Dst))
	case SFieldRead:
		return fmt.Sprintf("%s = %s.[%v]", v(s.Dst), v(s.Src), s.Qual)
	case SFieldWrite:
		return fmt.Sprintf("%s.[%v] = %s (site %d)", v(s.Src), s.Qual, v(s.Val), s.Site)
	case SAlloc:
		return fmt.Sprintf("%s = ralloc(%s)", v(s.Dst), v(s.Src))
	case SNewRegion:
		return fmt.Sprintf("%s = newregion()", v(s.Dst))
	case SNewSub:
		return fmt.Sprintf("%s = newsubregion(%s)", v(s.Dst), v(s.Src))
	case SRegionOf:
		return fmt.Sprintf("%s = regionof(%s)", v(s.Dst), v(s.Src))
	case SCall:
		return fmt.Sprintf("%s = %s(%v)", v(s.Dst), s.Callee, s.Args)
	case SAssume:
		return "assume " + s.F.String()
	case SReturn:
		return "return " + v(s.Src)
	case SNonNull:
		return "nonnull " + v(s.Src)
	case SKillTemps:
		return "killtemps"
	}
	return "?"
}
