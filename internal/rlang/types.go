package rlang

import (
	"fmt"
	"strings"
)

// This file implements the paper's Figure 4 type language and the
// assignability judgment of Figure 6,
//
//	δ, L ⊢ τ1 ← τ2 ⇒ δ', L'
//
// ("a value of type τ2 is assignable to a location of type τ1, given
// input property δ and live abstract region set L, producing updated
// property δ' and live set L'"). Types annotate every pointer with a
// region expression; existential quantification (∃ρ/δ.τ) represents
// pointers whose region is partially or totally unknown — the paper's
// main type-system novelty.
//
// The dataflow inference (infer.go) is the paper's *implementation* of
// this system over constraint sets; the judgment here is the declarative
// rule set, used by tests to validate the translation's field types and
// available to clients exploring the type system directly.

// Type is an rlang type (Figure 4: τ ::= region@σ | T[σ1..σm]@σ |
// ∃ρ/δ.τ).
type Type interface {
	typeNode()
	String() string
}

// RegionType is region@σ: a region value denoting region σ.
type RegionType struct {
	At Var
}

// NamedType is T[σ1..σm]@σ: a pointer to a T-structure in region σ, with
// the structure's abstract region parameters instantiated at σ1..σm.
type NamedType struct {
	Name string
	Args []Var
	At   Var
}

// ExistsType is ∃ρ/δ.τ: there exists a region ρ satisfying the facts in
// Prop such that the value has type τ.
type ExistsType struct {
	Bound Var
	Prop  []Fact
	Inner Type
}

func (*RegionType) typeNode() {}
func (*NamedType) typeNode()  {}
func (*ExistsType) typeNode() {}

func varName(v Var) string {
	switch v {
	case Top:
		return "⊤"
	case RT:
		return "R_T"
	default:
		return fmt.Sprintf("ρ%d", int(v)-int(FirstVar))
	}
}

func (t *RegionType) String() string { return "region@" + varName(t.At) }

func (t *NamedType) String() string {
	var args []string
	for _, a := range t.Args {
		args = append(args, varName(a))
	}
	return t.Name + "[" + strings.Join(args, ",") + "]@" + varName(t.At)
}

func (t *ExistsType) String() string {
	var props []string
	for _, f := range t.Prop {
		props = append(props, f.String())
	}
	p := "true"
	if len(props) > 0 {
		p = strings.Join(props, "∧")
	}
	return "∃" + varName(t.Bound) + "/" + p + "." + t.Inner.String()
}

// SubstVar replaces free occurrences of from with to in a type (capture
// is avoided: substitution stops at a binder for from).
func SubstVar(t Type, from, to Var) Type {
	switch x := t.(type) {
	case *RegionType:
		if x.At == from {
			return &RegionType{At: to}
		}
		return x
	case *NamedType:
		changed := false
		args := make([]Var, len(x.Args))
		for i, a := range x.Args {
			args[i] = a
			if a == from {
				args[i] = to
				changed = true
			}
		}
		at := x.At
		if at == from {
			at = to
			changed = true
		}
		if !changed {
			return x
		}
		return &NamedType{Name: x.Name, Args: args, At: at}
	case *ExistsType:
		if x.Bound == from {
			return x // shadowed
		}
		props := make([]Fact, len(x.Prop))
		for i, f := range x.Prop {
			g := f
			if g.A == from {
				g.A = to
			}
			if (g.Kind == FEq || g.Kind == FLeq || g.Kind == FCondEq) && g.B == from {
				g.B = to
			}
			if g.Kind == FEq {
				g = Eq(g.A, g.B)
			}
			props[i] = g
		}
		return &ExistsType{Bound: x.Bound, Prop: props, Inner: SubstVar(x.Inner, from, to)}
	}
	return t
}

// AssignErr reports why an assignment is ill-typed.
type AssignErr struct {
	Dst, Src Type
	Reason   string
}

func (e *AssignErr) Error() string {
	return fmt.Sprintf("rlang: cannot assign %s to %s: %s", e.Src, e.Dst, e.Reason)
}

// Assignable implements the judgment δ, L ⊢ dst ← src ⇒ δ', L'. live is
// the set of live abstract regions (the paper's L): an abstract region
// NOT in live may be (re)bound by the assignment, adding its new
// properties to δ. A successful assignment returns the updated property
// set and live set (inputs are not mutated).
func Assignable(delta *Set, live map[Var]bool, dst, src Type) (*Set, map[Var]bool, error) {
	d := delta.Clone()
	l := make(map[Var]bool, len(live))
	for v := range live {
		l[v] = true
	}
	if err := assign(&d, l, dst, src, Var(1_000_000)); err != nil {
		return nil, nil, err
	}
	return d, l, nil
}

// assign is the recursive judgment; fresh supplies variables for
// instantiating existentials on the source side.
func assign(d **Set, l map[Var]bool, dst, src Type, fresh Var) error {
	switch dt := dst.(type) {
	case *ExistsType:
		// (∃gen.): find a witness σ' for the bound variable by matching
		// the source's structure against the inner type, then require
		// δ ⊨ prop[σ'/ρ].
		// First strip source existentials ((∃inst.)): instantiate into a
		// dead variable.
		if st, ok := src.(*ExistsType); ok {
			p := fresh
			fresh++
			for _, f := range st.Prop {
				g := renameFact(f, st.Bound, p)
				(*d).Add(g)
			}
			return assign(d, l, dst, SubstVar(st.Inner, st.Bound, p), fresh)
		}
		witness, ok := findWitness(dt, src)
		if !ok {
			return &AssignErr{dst, src, "no witness for the existential"}
		}
		for _, f := range dt.Prop {
			need := renameFact(f, dt.Bound, witness)
			if !(*d).Implies(need) {
				return &AssignErr{dst, src,
					fmt.Sprintf("property %v not implied for witness %s", need, varName(witness))}
			}
		}
		return assign(d, l, SubstVar(dt.Inner, dt.Bound, witness), src, fresh)
	}
	// Source existential against a non-existential destination:
	// instantiate ((∃inst.)).
	if st, ok := src.(*ExistsType); ok {
		p := fresh
		fresh++
		for _, f := range st.Prop {
			(*d).Add(renameFact(f, st.Bound, p))
		}
		return assign(d, l, dst, SubstVar(st.Inner, st.Bound, p), fresh)
	}
	switch dt := dst.(type) {
	case *RegionType:
		st, ok := src.(*RegionType)
		if !ok {
			return &AssignErr{dst, src, "kind mismatch"}
		}
		return matchRegion(d, l, dt.At, st.At, dst, src)
	case *NamedType:
		st, ok := src.(*NamedType)
		if !ok || st.Name != dt.Name || len(st.Args) != len(dt.Args) {
			return &AssignErr{dst, src, "structure mismatch"}
		}
		for i := range dt.Args {
			if err := matchRegion(d, l, dt.Args[i], st.Args[i], dst, src); err != nil {
				return err
			}
		}
		return matchRegion(d, l, dt.At, st.At, dst, src)
	}
	return &AssignErr{dst, src, "unsupported type"}
}

// matchRegion implements the bottom rules of Figure 6: two region
// expressions match if δ implies they are equal, or if the destination's
// abstract region is dead, in which case it is rebound (added to L with
// the equality recorded in δ).
func matchRegion(d **Set, l map[Var]bool, dv, sv Var, dst, src Type) error {
	if dv == sv || (*d).Implies(Eq(dv, sv)) {
		return nil
	}
	if dv != Top && dv != RT && !l[dv] {
		// Dead destination variable: rebind.
		*d = (*d).KillVar(dv)
		(*d).Add(Eq(dv, sv))
		l[dv] = true
		return nil
	}
	return &AssignErr{dst, src,
		fmt.Sprintf("regions %s and %s not provably equal and %s is live",
			varName(dv), varName(sv), varName(dv))}
}

func renameFact(f Fact, from, to Var) Fact {
	g := f
	if g.A == from {
		g.A = to
	}
	if (g.Kind == FEq || g.Kind == FLeq || g.Kind == FCondEq) && g.B == from {
		g.B = to
	}
	if g.Kind == FEq {
		g = Eq(g.A, g.B)
	}
	return g
}

// findWitness matches the destination existential's inner type against
// the source type to locate the region expression playing the bound
// variable's role.
func findWitness(dt *ExistsType, src Type) (Var, bool) {
	var walk func(inner, s Type) (Var, bool)
	walk = func(inner, s Type) (Var, bool) {
		switch it := inner.(type) {
		case *RegionType:
			st, ok := s.(*RegionType)
			if !ok {
				return 0, false
			}
			if it.At == dt.Bound {
				return st.At, true
			}
		case *NamedType:
			st, ok := s.(*NamedType)
			if !ok || len(st.Args) != len(it.Args) {
				return 0, false
			}
			if it.At == dt.Bound {
				return st.At, true
			}
			for i := range it.Args {
				if it.Args[i] == dt.Bound {
					return st.Args[i], true
				}
			}
		}
		return 0, false
	}
	if w, ok := walk(dt.Inner, src); ok {
		return w, ok
	}
	// The bound variable does not occur in the inner type: any witness
	// works; ⊤ satisfies vacuous properties most often.
	return Top, true
}

// FieldType builds the translated rlang type of a struct field with the
// given qualifier, relative to the containing object's region (Section
// 4.3's table):
//
//	unannotated  ∃ρ'.           T[ρ']@ρ'
//	traditional  ∃ρ'/ρ'=⊤∨ρ'=R_T. T[ρ']@ρ'
//	sameregion   ∃ρ'/ρ'=⊤∨ρ'=ρ.   T[ρ']@ρ'
//	parentptr    ∃ρ'/ρ≤ρ'.        T[ρ']@ρ'
//
// bound must be a variable unused elsewhere.
func FieldType(name string, qual string, containing, bound Var) *ExistsType {
	inner := &NamedType{Name: name, Args: []Var{bound}, At: bound}
	switch qual {
	case "traditional":
		return &ExistsType{Bound: bound, Prop: []Fact{CondEq(bound, RT)}, Inner: inner}
	case "sameregion":
		return &ExistsType{Bound: bound, Prop: []Fact{CondEq(bound, containing)}, Inner: inner}
	case "parentptr":
		return &ExistsType{Bound: bound, Prop: []Fact{Leq(containing, bound)}, Inner: inner}
	default:
		return &ExistsType{Bound: bound, Inner: inner}
	}
}
