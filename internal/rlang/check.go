package rlang

import (
	"fmt"
)

// CheckProgram validates an inferred typing against the typing rules of
// the paper's Figure 6, playing the role of the declarative type checker
// for which Infer computes a witness. It re-derives the facts holding at
// every program point from the summaries alone and verifies that
//
//   - at every call site, the caller's facts imply the callee's input
//     property (the premise of the (fncall) rule);
//   - at every return, the facts imply the function's output property and
//     the result's property (the premise of the (fndef) rule);
//   - every chk eliminated by the inference is implied by the facts at
//     that point (the (check) rule made statically redundant).
//
// A sound inference always produces a typing that passes; the checker
// exists so that bugs in the fixpoint machinery cannot silently produce
// an inadmissible (unsound) typing.
func CheckProgram(p *Program, res *InferResult) error {
	for name, f := range p.Funcs {
		if err := checkFunc(p, f, res); err != nil {
			return fmt.Errorf("rlang: function %s: %w", name, err)
		}
	}
	return nil
}

func checkFunc(p *Program, f *Func, res *InferResult) error {
	sum := res.Summaries[f.Name]
	if sum == nil {
		return fmt.Errorf("missing summary")
	}
	ins := make([]*Set, len(f.Blocks))
	for i := range ins {
		ins[i] = Universe()
	}
	entry := sum.Input
	if entry.IsUniverse() {
		entry = Empty()
	}
	ins[0] = entry.Clone()

	ck := &checker{
		prog: p,
		res:  res,
		scratch: &InferResult{
			SafeSite:  make([]bool, p.NumSites),
			SiteSeen:  make([]bool, p.NumSites),
			Summaries: res.Summaries,
		},
	}
	work := []int{0}
	inWork := make([]bool, len(f.Blocks))
	inWork[0] = true
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		facts := ins[bi].Clone()
		for si := range f.Blocks[bi].Stmts {
			var err error
			facts, err = ck.step(f, &f.Blocks[bi].Stmts[si], facts, sum)
			if err != nil {
				return fmt.Errorf("block %d stmt %d: %w", bi, si, err)
			}
		}
		for _, succ := range f.Blocks[bi].Succs {
			merged := Meet(ins[succ], facts)
			if !merged.Equal(ins[succ]) {
				ins[succ] = merged
				if !inWork[succ] {
					inWork[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return nil
}

type checker struct {
	prog *Program
	res  *InferResult
	// scratch receives the transfer function's site classifications so
	// checking never mutates the result under validation.
	scratch *InferResult
}

// step applies one statement, verifying its side conditions. It reuses
// the inference's transfer semantics but demands rather than computes the
// judgment premises.
func (ck *checker) step(f *Func, s *Stmt, in *Set, sum *Summary) (*Set, error) {
	switch s.Kind {
	case SFieldWrite:
		if fact, annotated := chkFact(s.Qual, s.Src, s.Val); annotated {
			if s.Site >= 0 && s.Site < len(ck.res.SafeSite) && ck.res.SafeSite[s.Site] {
				if !in.Implies(fact) {
					return nil, fmt.Errorf("eliminated check at site %d not implied: %v ⊬ %v",
						s.Site, in, fact)
				}
			}
		}
	case SCall:
		callee, known := ck.prog.Funcs[s.Callee]
		if known {
			csum := ck.res.Summaries[s.Callee]
			// The (fncall) premise: caller facts imply the callee's
			// input property under the formal-for-actual substitution.
			if !csum.Input.IsUniverse() {
				back := make(map[Var]Var)
				for i, pv := range callee.Params {
					if i >= len(s.Args) || pv == NoVar || s.Args[i] == NoVar {
						continue
					}
					if _, taken := back[pv]; !taken {
						back[pv] = s.Args[i]
					}
				}
				renamed := csum.Input.Restrict(back)
				if err := implied(in, renamed); err != nil {
					return nil, fmt.Errorf("call to %s: input property not satisfied: %w",
						s.Callee, err)
				}
			}
		}
	case SReturn:
		// The (fndef) premise: the facts at return imply the declared
		// output property; the result value satisfies the result
		// property.
		rename := make(map[Var]Var)
		for _, pv := range f.Params {
			if pv != NoVar {
				rename[pv] = pv
			}
		}
		have := in.Restrict(rename)
		if err := implied(have, sum.Output); err != nil {
			return nil, fmt.Errorf("output property not satisfied: %w", err)
		}
		if s.Src != NoVar {
			rename2 := make(map[Var]Var)
			for _, pv := range f.Params {
				if pv != NoVar {
					rename2[pv] = pv
				}
			}
			var haveR *Set
			if _, isParam := rename2[s.Src]; isParam {
				haveR = in.Restrict(rename2)
				haveR.Add(Eq(resultVar(f), s.Src))
			} else {
				rename2[s.Src] = resultVar(f)
				haveR = in.Restrict(rename2)
			}
			if err := implied(haveR, sum.Result); err != nil {
				return nil, fmt.Errorf("result property not satisfied: %w", err)
			}
		}
	}
	// Advance using the inference's (shared) transfer semantics.
	inf := &inference{prog: ck.prog, sums: ck.res.Summaries}
	var oAcc, rAcc *Set = Universe(), Universe()
	out := inf.transfer(f, s, in, ck.scratch, map[string]bool{}, &oAcc, &rAcc)
	return out, nil
}

// implied verifies that have entails every fact of want.
func implied(have, want *Set) error {
	if want.IsUniverse() {
		// The universal property only types unreachable code; reaching
		// it with concrete facts is a fixpoint bug.
		return fmt.Errorf("reached code with universal (unreachable) property")
	}
	for f := range want.facts {
		if !have.Implies(f) {
			return fmt.Errorf("%v ⊬ %v", have, f)
		}
	}
	return nil
}
