package rlang

import (
	"rcgo/internal/rcc"
)

// Translate lowers a checked RC program into the rlang IR, following the
// translation of Section 4.3 of the paper:
//
//   - every pointer- or region-typed local and parameter gets a distinct
//     abstract region variable;
//   - global variables are fields of an (untracked) Global structure in the
//     traditional region, so global reads produce unknown regions and
//     global writes are field writes against R_T;
//   - address-taken locals live on the stack (inside the traditional
//     region) and are likewise untracked;
//   - every field write of a pointer is preceded by the chk corresponding
//     to its qualifier, recorded under the front end's site ID.
func Translate(cp *rcc.CheckedProgram) *Program {
	p := &Program{Funcs: make(map[string]*Func), NumSites: cp.NumSites}
	for _, fn := range cp.Prog.Funcs {
		if fn.Body == nil {
			continue
		}
		p.Funcs[fn.Name] = translateFunc(fn)
	}
	return p
}

// tracked reports whether a variable's region is tracked by the type
// system: pointer- or region-typed, and not address-taken.
func tracked(v *rcc.VarInfo) bool {
	if v == nil || v.AddrTaken || v.Kind == rcc.VarGlobal {
		return false
	}
	switch v.Type.(type) {
	case *rcc.Pointer:
		return true
	}
	return rcc.IsRegion(v.Type)
}

// hasRegionType reports whether an expression type carries a region.
func hasRegionType(t rcc.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.(*rcc.Pointer); ok {
		return true
	}
	return rcc.IsRegion(t)
}

type xlate struct {
	fn     *Func
	vars   map[*rcc.VarInfo]Var
	next   Var
	blocks []*Block
	cur    int
	// loop stack for break/continue: (continue target, break target)
	loops []loopCtx
}

type loopCtx struct{ cont, brk int }

func translateFunc(fd *rcc.FuncDecl) *Func {
	x := &xlate{
		fn:   &Func{Name: fd.Name, Deletes: fd.Deletes},
		vars: make(map[*rcc.VarInfo]Var),
		next: FirstVar,
	}
	x.newBlock() // entry
	for i, v := range fd.Vars {
		if i >= len(fd.Params) {
			break
		}
		if tracked(v) {
			x.fn.Params = append(x.fn.Params, x.varFor(v))
		} else {
			x.fn.Params = append(x.fn.Params, NoVar)
		}
	}
	x.stmt(fd.Body)
	x.emit(Stmt{Kind: SReturn, Src: NoVar})
	x.fn.Blocks = x.blocks
	x.fn.NumVars = int(x.next)
	x.fn.Named = make([]bool, x.fn.NumVars)
	for _, v := range x.vars {
		x.fn.Named[v] = true
	}
	return x.fn
}

func (x *xlate) newBlock() int {
	x.blocks = append(x.blocks, &Block{})
	x.cur = len(x.blocks) - 1
	return x.cur
}

func (x *xlate) emit(s Stmt) { x.blocks[x.cur].Stmts = append(x.blocks[x.cur].Stmts, s) }

func (x *xlate) link(from, to int) {
	x.blocks[from].Succs = append(x.blocks[from].Succs, to)
}

func (x *xlate) fresh() Var {
	v := x.next
	x.next++
	return v
}

func (x *xlate) varFor(v *rcc.VarInfo) Var {
	if r, ok := x.vars[v]; ok {
		return r
	}
	r := x.fresh()
	x.vars[v] = r
	return r
}

// ---------------------------------------------------------------------------
// Statements.

func (x *xlate) stmt(s rcc.Stmt) {
	// All expression temporaries of preceding statements are dead here;
	// dropping their facts keeps the constraint sets small (the paper's
	// "effectively temporaries" tractability device).
	if _, isBlock := s.(*rcc.Block); !isBlock {
		x.emit(Stmt{Kind: SKillTemps})
	}
	switch st := s.(type) {
	case *rcc.Block:
		for _, sub := range st.Stmts {
			x.stmt(sub)
		}
	case *rcc.DeclStmt:
		if st.Init == nil {
			if tracked(st.Var) {
				// Uninitialized pointer locals start as garbage; the
				// region is unknown. (C semantics; workloads initialize
				// before use.)
				x.emit(Stmt{Kind: SFresh, Dst: x.varFor(st.Var)})
			}
			return
		}
		iv := x.expr(st.Init)
		if tracked(st.Var) {
			x.assignVar(x.varFor(st.Var), iv, st.Init)
		}
	case *rcc.ExprStmt:
		x.expr(st.X)
	case *rcc.IfStmt:
		thenB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		elseB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		x.cond(st.Cond, thenB, elseB)
		joinB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		x.cur = thenB
		x.stmt(st.Then)
		x.link(x.cur, joinB)
		x.cur = elseB
		if st.Else != nil {
			x.stmt(st.Else)
		}
		x.link(x.cur, joinB)
		x.cur = joinB
	case *rcc.WhileStmt:
		headB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		x.link(x.cur, headB)
		bodyB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		exitB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		x.cur = headB
		x.cond(st.Cond, bodyB, exitB)
		x.loops = append(x.loops, loopCtx{cont: headB, brk: exitB})
		x.cur = bodyB
		x.stmt(st.Body)
		x.link(x.cur, headB)
		x.loops = x.loops[:len(x.loops)-1]
		x.cur = exitB
	case *rcc.ForStmt:
		if st.Init != nil {
			x.expr(st.Init)
		}
		headB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		x.link(x.cur, headB)
		bodyB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		postB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		exitB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		x.cur = headB
		if st.Cond != nil {
			x.cond(st.Cond, bodyB, exitB)
		} else {
			x.link(headB, bodyB)
		}
		x.loops = append(x.loops, loopCtx{cont: postB, brk: exitB})
		x.cur = bodyB
		x.stmt(st.Body)
		x.link(x.cur, postB)
		x.loops = x.loops[:len(x.loops)-1]
		x.cur = postB
		if st.Post != nil {
			x.expr(st.Post)
		}
		x.link(x.cur, headB)
		x.cur = exitB
	case *rcc.DoWhileStmt:
		bodyB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		x.link(x.cur, bodyB)
		condB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		exitB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		x.loops = append(x.loops, loopCtx{cont: condB, brk: exitB})
		x.cur = bodyB
		x.stmt(st.Body)
		x.link(x.cur, condB)
		x.loops = x.loops[:len(x.loops)-1]
		x.cur = condB
		x.cond(st.Cond, bodyB, exitB)
		x.cur = exitB
	case *rcc.SwitchStmt:
		x.expr(st.Cond) // numeric: effects only, no branch facts
		exitB := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		// Continue (if legal here) binds to the enclosing loop.
		cont := exitB
		if n := len(x.loops); n > 0 {
			cont = x.loops[n-1].cont
		}
		x.loops = append(x.loops, loopCtx{cont: cont, brk: exitB})
		dispatch := x.cur
		hasDefault := false
		var prevEnd = -1 // fallthrough source
		for _, cl := range st.Clauses {
			if cl.IsDefault {
				hasDefault = true
			}
			head := len(x.blocks)
			x.blocks = append(x.blocks, &Block{})
			x.link(dispatch, head)
			if prevEnd >= 0 {
				x.link(prevEnd, head) // fallthrough from previous clause
			}
			x.cur = head
			for _, s := range cl.Stmts {
				x.stmt(s)
			}
			prevEnd = x.cur
		}
		if prevEnd >= 0 {
			x.link(prevEnd, exitB)
		}
		if !hasDefault || len(st.Clauses) == 0 {
			x.link(dispatch, exitB)
		}
		x.loops = x.loops[:len(x.loops)-1]
		x.cur = exitB
	case *rcc.ReturnStmt:
		src := NoVar
		if st.X != nil {
			v := x.expr(st.X)
			if hasRegionType(st.X.Type()) {
				src = v
			}
		}
		x.emit(Stmt{Kind: SReturn, Src: src})
		x.newBlock() // dead code after return
	case *rcc.BreakStmt:
		if n := len(x.loops); n > 0 {
			x.link(x.cur, x.loops[n-1].brk)
		}
		x.newBlock()
	case *rcc.ContinueStmt:
		if n := len(x.loops); n > 0 {
			x.link(x.cur, x.loops[n-1].cont)
		}
		x.newBlock()
	}
}

// assignVar models dst = (value of e held in src var).
func (x *xlate) assignVar(dst, src Var, e rcc.Expr) {
	if _, isNull := e.(*rcc.NullLit); isNull || src == NoVar {
		x.emit(Stmt{Kind: SNull, Dst: dst})
		return
	}
	x.emit(Stmt{Kind: SCopy, Dst: dst, Src: src})
}

// ---------------------------------------------------------------------------
// Conditions: translated into CFG edges with Assume facts.

// cond translates a condition so control reaches thenB when it is true and
// elseB when it is false, emitting Assume facts for region-relevant tests.
func (x *xlate) cond(e rcc.Expr, thenB, elseB int) {
	switch c := e.(type) {
	case *rcc.Unary:
		if c.Op == rcc.OpNot {
			x.cond(c.X, elseB, thenB)
			return
		}
	case *rcc.Binary:
		switch c.Op {
		case rcc.OpAnd:
			midB := len(x.blocks)
			x.blocks = append(x.blocks, &Block{})
			x.cond(c.L, midB, elseB)
			x.cur = midB
			x.cond(c.R, thenB, elseB)
			return
		case rcc.OpOr:
			midB := len(x.blocks)
			x.blocks = append(x.blocks, &Block{})
			x.cond(c.L, thenB, midB)
			x.cur = midB
			x.cond(c.R, thenB, elseB)
			return
		case rcc.OpEq, rcc.OpNe:
			lv := x.exprRegion(c.L)
			rv := x.exprRegion(c.R)
			_, lNull := c.L.(*rcc.NullLit)
			_, rNull := c.R.(*rcc.NullLit)
			var eqFact, neFact []Fact
			switch {
			case lNull && rv != NoVar:
				eqFact = []Fact{EqTop(rv)}
				neFact = []Fact{NeTop(rv)}
			case rNull && lv != NoVar:
				eqFact = []Fact{EqTop(lv)}
				neFact = []Fact{NeTop(lv)}
			case lv != NoVar && rv != NoVar:
				// x == y (pointers): equal addresses means equal regions
				// (both null gives ⊤ = ⊤).
				eqFact = []Fact{Eq(lv, rv)}
			}
			if c.Op == rcc.OpNe {
				eqFact, neFact = neFact, eqFact
			}
			x.branch(thenB, elseB, eqFact, neFact)
			return
		}
	}
	// General condition: a pointer tested for truth is a null test.
	v := x.exprRegion(e)
	if v != NoVar {
		x.branch(thenB, elseB, []Fact{NeTop(v)}, []Fact{EqTop(v)})
		return
	}
	x.link(x.cur, thenB)
	x.link(x.cur, elseB)
}

// exprRegion evaluates e and returns its region var (NoVar for scalars).
func (x *xlate) exprRegion(e rcc.Expr) Var {
	v := x.expr(e)
	if !hasRegionType(e.Type()) {
		return NoVar
	}
	return v
}

// branch splits control into then/else blocks with assumption facts.
func (x *xlate) branch(thenB, elseB int, thenFacts, elseFacts []Fact) {
	from := x.cur
	if len(thenFacts) > 0 {
		mid := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		x.link(from, mid)
		x.cur = mid
		for _, f := range thenFacts {
			x.emit(Stmt{Kind: SAssume, F: f})
		}
		x.link(mid, thenB)
	} else {
		x.link(from, thenB)
	}
	if len(elseFacts) > 0 {
		mid := len(x.blocks)
		x.blocks = append(x.blocks, &Block{})
		x.link(from, mid)
		x.cur = mid
		for _, f := range elseFacts {
			x.emit(Stmt{Kind: SAssume, F: f})
		}
		x.link(mid, elseB)
	} else {
		x.link(from, elseB)
	}
}

// ---------------------------------------------------------------------------
// Expressions. Every call returns the region var of the value (NoVar for
// scalars), emitting IR for region-relevant effects along the way.

func (x *xlate) expr(e rcc.Expr) Var {
	switch ex := e.(type) {
	case *rcc.IntLit:
		return NoVar
	case *rcc.StrLit:
		t := x.fresh()
		x.emit(Stmt{Kind: SMkTrad, Dst: t})
		return t
	case *rcc.NullLit:
		t := x.fresh()
		x.emit(Stmt{Kind: SNull, Dst: t})
		return t
	case *rcc.VarRef:
		if tracked(ex.Var) {
			return x.vars[ex.Var] // params pre-bound; locals bound at decl
		}
		if ex.Var != nil && ex.Var.ArrayGlobal {
			// A global array's address is a constant pointer into the
			// traditional region.
			t := x.fresh()
			x.emit(Stmt{Kind: SMkTrad, Dst: t})
			return t
		}
		if hasRegionType(ex.Type()) {
			// Global or address-taken: the region is untracked.
			t := x.fresh()
			x.emit(Stmt{Kind: SFresh, Dst: t})
			return t
		}
		return NoVar
	case *rcc.Unary:
		return x.unary(ex)
	case *rcc.Binary:
		if ex.Op == rcc.OpAnd || ex.Op == rcc.OpOr {
			// Value context: evaluate both for effects via cond into a
			// dead join; the result is scalar.
			thenB := len(x.blocks)
			x.blocks = append(x.blocks, &Block{})
			elseB := len(x.blocks)
			x.blocks = append(x.blocks, &Block{})
			x.cond(ex, thenB, elseB)
			join := len(x.blocks)
			x.blocks = append(x.blocks, &Block{})
			x.link(thenB, join)
			x.link(elseB, join)
			x.cur = join
			return NoVar
		}
		x.expr(ex.L)
		x.expr(ex.R)
		return NoVar
	case *rcc.Ternary:
		return x.ternary(ex)
	case *rcc.Assign:
		return x.assign(ex)
	case *rcc.Call:
		return x.call(ex)
	case *rcc.RallocExpr:
		rv := x.expr(ex.Region)
		if ex.Count != nil {
			x.expr(ex.Count)
		}
		t := x.fresh()
		x.emit(Stmt{Kind: SAlloc, Dst: t, Src: rv})
		return t
	case *rcc.FieldAccess:
		obj := x.expr(ex.X)
		t := x.fresh()
		if hasRegionType(ex.Type()) {
			x.emit(Stmt{Kind: SFieldRead, Dst: t, Src: obj, Qual: fieldQual(ex)})
		} else {
			// Scalar read still asserts the object is non-null.
			x.emit(Stmt{Kind: SNonNull, Src: obj})
			return NoVar
		}
		return t
	case *rcc.Index:
		arr := x.expr(ex.X)
		x.expr(ex.Idx)
		if hasRegionType(ex.Type()) {
			t := x.fresh()
			x.emit(Stmt{Kind: SFieldRead, Dst: t, Src: arr, Qual: indexQual(ex)})
			return t
		}
		x.emit(Stmt{Kind: SNonNull, Src: arr})
		return NoVar
	}
	return NoVar
}

// fieldQual returns the qualifier of an accessed field's pointer type.
func fieldQual(f *rcc.FieldAccess) rcc.Qual {
	if f.Field != nil {
		if p, ok := f.Field.Type.(*rcc.Pointer); ok {
			return p.Qual
		}
	}
	return rcc.QualNone
}

// indexQual returns the qualifier of an array element's pointer type.
func indexQual(ix *rcc.Index) rcc.Qual {
	if p, ok := ix.X.Type().(*rcc.Pointer); ok {
		if ep, ok := p.Elem.(*rcc.Pointer); ok {
			return ep.Qual
		}
	}
	return rcc.QualNone
}

func derefQual(u *rcc.Unary) rcc.Qual {
	if p, ok := u.X.Type().(*rcc.Pointer); ok {
		if ep, ok := p.Elem.(*rcc.Pointer); ok {
			return ep.Qual
		}
	}
	return rcc.QualNone
}

func (x *xlate) unary(ex *rcc.Unary) Var {
	switch ex.Op {
	case rcc.OpNeg, rcc.OpNot:
		x.expr(ex.X)
		return NoVar
	case rcc.OpDeref:
		p := x.expr(ex.X)
		if hasRegionType(ex.Type()) {
			t := x.fresh()
			x.emit(Stmt{Kind: SFieldRead, Dst: t, Src: p, Qual: derefQual(ex)})
			return t
		}
		x.emit(Stmt{Kind: SNonNull, Src: p})
		return NoVar
	case rcc.OpAddr:
		switch lv := ex.X.(type) {
		case *rcc.VarRef:
			// Address of a local or global scalar: a pointer into the
			// stack or globals area, both in the traditional region.
			x.expr(ex.X)
			t := x.fresh()
			x.emit(Stmt{Kind: SMkTrad, Dst: t})
			return t
		case *rcc.FieldAccess:
			obj := x.expr(lv.X)
			t := x.fresh()
			if obj != NoVar {
				x.emit(Stmt{Kind: SNonNull, Src: obj})
				x.emit(Stmt{Kind: SCopy, Dst: t, Src: obj})
				x.emit(Stmt{Kind: SAssume, F: NeTop(t)})
			} else {
				x.emit(Stmt{Kind: SFresh, Dst: t})
			}
			return t
		case *rcc.Index:
			arr := x.expr(lv.X)
			x.expr(lv.Idx)
			t := x.fresh()
			if arr != NoVar {
				x.emit(Stmt{Kind: SNonNull, Src: arr})
				x.emit(Stmt{Kind: SCopy, Dst: t, Src: arr})
				x.emit(Stmt{Kind: SAssume, F: NeTop(t)})
			} else {
				x.emit(Stmt{Kind: SFresh, Dst: t})
			}
			return t
		case *rcc.Unary:
			if lv.Op == rcc.OpDeref {
				return x.expr(lv.X) // &*p == p
			}
		}
		t := x.fresh()
		x.emit(Stmt{Kind: SFresh, Dst: t})
		return t
	}
	return NoVar
}

func (x *xlate) ternary(ex *rcc.Ternary) Var {
	thenB := len(x.blocks)
	x.blocks = append(x.blocks, &Block{})
	elseB := len(x.blocks)
	x.blocks = append(x.blocks, &Block{})
	x.cond(ex.Cond, thenB, elseB)
	join := len(x.blocks)
	x.blocks = append(x.blocks, &Block{})
	isRegion := hasRegionType(ex.Type())
	t := NoVar
	if isRegion {
		t = x.fresh()
	}
	x.cur = thenB
	tv := x.expr(ex.Then)
	if isRegion {
		x.assignVar(t, tv, ex.Then)
	}
	x.link(x.cur, join)
	x.cur = elseB
	ev := x.expr(ex.Else)
	if isRegion {
		x.assignVar(t, ev, ex.Else)
	}
	x.link(x.cur, join)
	x.cur = join
	return t
}

func (x *xlate) assign(ex *rcc.Assign) Var {
	// Compound assignments are numeric-only.
	if ex.Op != rcc.TokAssign {
		x.expr(ex.LHS)
		x.expr(ex.RHS)
		return NoVar
	}
	switch lv := ex.LHS.(type) {
	case *rcc.VarRef:
		rv := x.expr(ex.RHS)
		if tracked(lv.Var) {
			x.assignVar(x.vars[lv.Var], rv, ex.RHS)
			return x.vars[lv.Var]
		}
		// Global or address-taken target: a memory write. Pointer-typed
		// globals and stack slots live in the traditional region.
		if ex.Info != nil && ex.Info.PtrStore {
			x.emit(Stmt{Kind: SFieldWrite, Src: RT, Val: rv,
				Qual: ex.Info.Qual, Site: ex.SiteID})
		}
		return rv
	case *rcc.FieldAccess:
		obj := x.expr(lv.X)
		rv := x.expr(ex.RHS)
		if ex.Info != nil && ex.Info.PtrStore {
			x.emit(Stmt{Kind: SFieldWrite, Src: obj, Val: rv,
				Qual: ex.Info.Qual, Site: ex.SiteID})
		} else {
			x.emit(Stmt{Kind: SNonNull, Src: obj})
		}
		return rv
	case *rcc.Index:
		arr := x.expr(lv.X)
		x.expr(lv.Idx)
		rv := x.expr(ex.RHS)
		if ex.Info != nil && ex.Info.PtrStore {
			x.emit(Stmt{Kind: SFieldWrite, Src: arr, Val: rv,
				Qual: ex.Info.Qual, Site: ex.SiteID})
		} else {
			x.emit(Stmt{Kind: SNonNull, Src: arr})
		}
		return rv
	case *rcc.Unary: // *p = v
		p := x.expr(lv.X)
		rv := x.expr(ex.RHS)
		if ex.Info != nil && ex.Info.PtrStore {
			x.emit(Stmt{Kind: SFieldWrite, Src: p, Val: rv,
				Qual: ex.Info.Qual, Site: ex.SiteID})
		} else {
			x.emit(Stmt{Kind: SNonNull, Src: p})
		}
		return rv
	}
	return NoVar
}

func (x *xlate) call(ex *rcc.Call) Var {
	switch ex.Builtin {
	case rcc.BNewRegion:
		t := x.fresh()
		x.emit(Stmt{Kind: SNewRegion, Dst: t})
		return t
	case rcc.BNewSubregion:
		pv := x.expr(ex.Args[0])
		t := x.fresh()
		x.emit(Stmt{Kind: SNewSub, Dst: t, Src: pv})
		return t
	case rcc.BDeleteRegion:
		x.expr(ex.Args[0])
		return NoVar
	case rcc.BRegionOf:
		pv := x.expr(ex.Args[0])
		t := x.fresh()
		x.emit(Stmt{Kind: SRegionOf, Dst: t, Src: pv})
		return t
	case rcc.BArrayLen:
		pv := x.expr(ex.Args[0])
		if pv != NoVar {
			x.emit(Stmt{Kind: SNonNull, Src: pv})
		}
		return NoVar
	case rcc.BPrintInt, rcc.BPrintChar, rcc.BPrintStr, rcc.BAssert:
		for _, a := range ex.Args {
			x.expr(a)
		}
		return NoVar
	}
	args := make([]Var, len(ex.Args))
	for i, a := range ex.Args {
		v := x.expr(a)
		if !hasRegionType(a.Type()) {
			v = NoVar
		} else if _, isNull := a.(*rcc.NullLit); isNull {
			// x.expr already made a null temp; keep it.
		}
		args[i] = v
	}
	dst := NoVar
	if ex.Func != nil && hasRegionType(ex.Func.Ret) {
		dst = x.fresh()
	}
	x.emit(Stmt{Kind: SCall, Dst: dst, Callee: ex.Name, Args: args})
	return dst
}
