package rlang

import (
	"strings"
	"testing"
)

// Variables for the judgment tests.
const (
	tP = FirstVar + 10 + iota // ρ (a containing object's region)
	tQ                        // another region
	tX                        // a value's region
	tB                        // an existential binder
)

func live(vs ...Var) map[Var]bool {
	m := map[Var]bool{}
	for _, v := range vs {
		m[v] = true
	}
	return m
}

func facts(fs ...Fact) *Set {
	s := Empty()
	for _, f := range fs {
		s.Add(f)
	}
	return s
}

func TestAssignSameRegionField(t *testing.T) {
	// Storing a value of type L[ρx]@ρx into a sameregion field of an
	// object in ρp requires δ ⊨ ρx=⊤ ∨ ρx=ρp.
	field := FieldType("L", "sameregion", tP, tB)
	val := &NamedType{Name: "L", Args: []Var{tX}, At: tX}

	// Provably same region: accepted.
	if _, _, err := Assignable(facts(Eq(tX, tP)), live(tP, tX), field, val); err != nil {
		t.Errorf("same-region store rejected: %v", err)
	}
	// Provably null: accepted.
	if _, _, err := Assignable(facts(EqTop(tX)), live(tP, tX), field, val); err != nil {
		t.Errorf("null store rejected: %v", err)
	}
	// Nothing known: rejected.
	if _, _, err := Assignable(facts(), live(tP, tX), field, val); err == nil {
		t.Error("unknown-region store accepted by sameregion field")
	}
	// Known different live region, no relation: rejected.
	if _, _, err := Assignable(facts(Eq(tX, tQ), NeTop(tX)), live(tP, tQ, tX), field, val); err == nil {
		t.Error("cross-region store accepted by sameregion field")
	}
}

func TestAssignParentPtrField(t *testing.T) {
	field := FieldType("R", "parentptr", tP, tB)
	val := &NamedType{Name: "R", Args: []Var{tX}, At: tX}
	// ρp ≤ ρx (value in an ancestor region): accepted.
	if _, _, err := Assignable(facts(Leq(tP, tX)), live(tP, tX), field, val); err != nil {
		t.Errorf("upward store rejected: %v", err)
	}
	// Null: ρx=⊤ implies ρp ≤ ρx (everything is ≤ ⊤).
	if _, _, err := Assignable(facts(EqTop(tX)), live(tP, tX), field, val); err != nil {
		t.Errorf("null parentptr store rejected: %v", err)
	}
	// Downward (ρx ≤ ρp only): rejected.
	if _, _, err := Assignable(facts(Leq(tX, tP), NeTop(tX)), live(tP, tX), field, val); err == nil {
		t.Error("downward parentptr store accepted")
	}
}

func TestAssignTraditionalField(t *testing.T) {
	field := FieldType("C", "traditional", tP, tB)
	val := &NamedType{Name: "C", Args: []Var{tX}, At: tX}
	if _, _, err := Assignable(facts(Eq(tX, RT)), live(tP, tX), field, val); err != nil {
		t.Errorf("traditional store rejected: %v", err)
	}
	if _, _, err := Assignable(facts(Eq(tX, tP), NeTop(tX)), live(tP, tX), field, val); err == nil {
		t.Error("region value accepted by traditional field")
	}
}

func TestAssignUnannotatedFieldAlwaysOK(t *testing.T) {
	// ∃ρ'.T[ρ']@ρ' accepts any value of the right structure.
	field := FieldType("L", "", tP, tB)
	val := &NamedType{Name: "L", Args: []Var{tX}, At: tX}
	if _, _, err := Assignable(facts(), live(tP, tX), field, val); err != nil {
		t.Errorf("unannotated field rejected a value: %v", err)
	}
	// But not a structurally different value.
	other := &NamedType{Name: "M", Args: []Var{tX}, At: tX}
	if _, _, err := Assignable(facts(), live(tP, tX), field, other); err == nil {
		t.Error("structure mismatch accepted")
	}
}

func TestAssignRebindsDeadVariable(t *testing.T) {
	// Reading into a variable whose abstract region is dead rebinds it:
	// region@ρq ← region@ρx with ρq ∉ L records ρq = ρx.
	dst := &RegionType{At: tQ}
	src := &RegionType{At: tX}
	d, l, err := Assignable(facts(NeTop(tX)), live(tX), dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Implies(Eq(tQ, tX)) || !d.Implies(NeTop(tQ)) {
		t.Errorf("rebinding did not record facts: %v", d)
	}
	if !l[tQ] {
		t.Error("rebound variable not added to the live set")
	}
	// The same assignment with ρq live and unrelated is rejected.
	if _, _, err := Assignable(facts(), live(tQ, tX), dst, src); err == nil {
		t.Error("live unrelated variable rebound")
	}
}

func TestAssignExistentialSource(t *testing.T) {
	// The paper's myregionof signature: result ∃ρ/ρ=ρx.region@ρ. The
	// result is assignable into a dead variable, and the instantiated
	// property ρ=ρx transfers.
	res := &ExistsType{Bound: tB, Prop: []Fact{Eq(tB, tX)}, Inner: &RegionType{At: tB}}
	dst := &RegionType{At: tQ}
	d, _, err := Assignable(facts(NeTop(tX)), live(tX), dst, res)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Implies(Eq(tQ, tX)) {
		t.Errorf("existential property lost: %v", d)
	}
}

func TestAssignExistentialToExistential(t *testing.T) {
	// The paper's struct L: next : ∃ρ''/ρ''=⊤∨ρ''=ρ.L[ρ'']@ρ''.
	// Assigning a value of the SAME existential field type read from an
	// object in the same region is accepted (instantiate, then
	// generalize with the instantiated variable as witness).
	field := FieldType("L", "sameregion", tP, tB)
	src := FieldType("L", "sameregion", tP, tB+100)
	if _, _, err := Assignable(facts(), live(tP), field, src); err != nil {
		t.Errorf("same-field-to-same-field store rejected: %v", err)
	}
	// But a sameregion field value from a DIFFERENT (unrelated) region's
	// object is rejected.
	src2 := FieldType("L", "sameregion", tQ, tB+101)
	if _, _, err := Assignable(facts(NeTop(tQ), NeTop(tP)), live(tP, tQ), field, src2); err == nil {
		t.Error("other-region field value accepted")
	}
}

func TestSubstAndString(t *testing.T) {
	lt := FieldType("L", "sameregion", tP, tB)
	s := lt.String()
	if !strings.Contains(s, "∃") || !strings.Contains(s, "L[") {
		t.Errorf("String() = %q", s)
	}
	// Substitution respects binders.
	sub := SubstVar(lt, tB, tX).(*ExistsType)
	if sub.Bound != tB {
		t.Error("substitution entered a binder")
	}
	sub2 := SubstVar(lt, tP, tQ).(*ExistsType)
	if sub2.Prop[0] != CondEq(tB, tQ) {
		t.Errorf("substitution missed the property: %v", sub2.Prop[0])
	}
	if (&RegionType{At: Top}).String() != "region@⊤" {
		t.Error("region type string wrong")
	}
}

func TestAssignErrMessage(t *testing.T) {
	_, _, err := Assignable(facts(), live(tP, tX),
		FieldType("L", "sameregion", tP, tB),
		&NamedType{Name: "L", Args: []Var{tX}, At: tX})
	if err == nil || !strings.Contains(err.Error(), "cannot assign") {
		t.Errorf("error = %v", err)
	}
}
