package rlang

import "testing"

const (
	vA = FirstVar + iota
	vB
	vC
	vD
)

func TestFactNormalization(t *testing.T) {
	if Eq(vB, vA) != Eq(vA, vB) {
		t.Error("Eq not normalized")
	}
	if Leq(vA, vB) == Leq(vB, vA) {
		t.Error("Leq should be ordered")
	}
}

func TestTrivialFacts(t *testing.T) {
	s := Empty()
	s.Add(Eq(vA, vA))
	s.Add(Leq(vA, Top)) // r ≤ ⊤ always
	s.Add(Leq(vA, vA))
	s.Add(CondEq(vA, vA))
	s.Add(NeTop(RT))
	if s.Len() != 0 {
		t.Errorf("trivial facts stored: %s", s)
	}
	if !s.Implies(Leq(vA, Top)) || !s.Implies(NeTop(RT)) || !s.Implies(Eq(vA, vA)) {
		t.Error("axioms not implied by empty set")
	}
}

func TestClosureEqTransitivity(t *testing.T) {
	s := Empty()
	s.Add(Eq(vA, vB))
	s.Add(Eq(vB, vC))
	if !s.Implies(Eq(vA, vC)) {
		t.Error("transitivity failed")
	}
}

func TestClosureTopPropagation(t *testing.T) {
	s := Empty()
	s.Add(Eq(vA, vB))
	s.Add(EqTop(vA))
	if !s.Implies(EqTop(vB)) {
		t.Error("= ⊤ did not propagate across equality")
	}
	s2 := Empty()
	s2.Add(Eq(vA, vB))
	s2.Add(NeTop(vB))
	if !s2.Implies(NeTop(vA)) {
		t.Error("≠ ⊤ did not propagate across equality")
	}
}

func TestClosureCondEqResolution(t *testing.T) {
	// (a=⊤ ∨ a=b) together with a≠⊤ gives a=b.
	s := Empty()
	s.Add(CondEq(vA, vB))
	s.Add(NeTop(vA))
	if !s.Implies(Eq(vA, vB)) {
		t.Error("conditional equality not resolved by non-nullness")
	}
}

func TestClosureLeqTransitivity(t *testing.T) {
	s := Empty()
	s.Add(Leq(vA, vB))
	s.Add(Leq(vB, vC))
	if !s.Implies(Leq(vA, vC)) {
		t.Error("≤ transitivity failed")
	}
}

func TestClosureLeqSubstitution(t *testing.T) {
	s := Empty()
	s.Add(Leq(vA, vB))
	s.Add(Eq(vB, vC))
	if !s.Implies(Leq(vA, vC)) {
		t.Error("substitution of equals into ≤ failed")
	}
}

func TestClosureTopLeqForcesTop(t *testing.T) {
	s := Empty()
	s.Add(EqTop(vA))
	s.Add(Leq(vA, vB))
	if !s.Implies(EqTop(vB)) {
		t.Error("⊤ ≤ b should force b = ⊤")
	}
}

func TestImpliesCondEqFromParts(t *testing.T) {
	s := Empty()
	s.Add(EqTop(vA))
	if !s.Implies(CondEq(vA, vB)) {
		t.Error("a=⊤ should imply a=⊤∨a=b")
	}
	s2 := Empty()
	s2.Add(Eq(vA, vB))
	if !s2.Implies(CondEq(vA, vB)) {
		t.Error("a=b should imply a=⊤∨a=b")
	}
}

func TestImpliesLeqFromTop(t *testing.T) {
	s := Empty()
	s.Add(EqTop(vB))
	if !s.Implies(Leq(vA, vB)) {
		t.Error("b=⊤ should imply a≤b (null parentptr target)")
	}
}

func TestMeet(t *testing.T) {
	a := Empty()
	a.Add(Eq(vA, vB))
	a.Add(NeTop(vC))
	b := Empty()
	b.Add(Eq(vA, vB))
	b.Add(EqTop(vC))
	m := Meet(a, b)
	if !m.Implies(Eq(vA, vB)) {
		t.Error("common fact lost in meet")
	}
	if m.Implies(NeTop(vC)) || m.Implies(EqTop(vC)) {
		t.Error("path-specific fact survived meet")
	}
}

func TestMeetUsesClosure(t *testing.T) {
	// a derives Eq(vA,vC) via transitivity, b holds it directly: the
	// meet must keep it.
	a := Empty()
	a.Add(Eq(vA, vB))
	a.Add(Eq(vB, vC))
	b := Empty()
	b.Add(Eq(vA, vC))
	if !Meet(a, b).Implies(Eq(vA, vC)) {
		t.Error("meet lost a derived common fact")
	}
}

func TestMeetUniverse(t *testing.T) {
	a := Empty()
	a.Add(NeTop(vA))
	if !Meet(Universe(), a).Equal(a) || !Meet(a, Universe()).Equal(a) {
		t.Error("universe is not the meet identity")
	}
	if !Universe().Implies(EqTop(vA)) {
		t.Error("universe should imply everything")
	}
}

func TestUnion(t *testing.T) {
	a := Empty()
	a.Add(NeTop(vA))
	b := Empty()
	b.Add(NeTop(vB))
	u := Union(a, b)
	if !u.Implies(NeTop(vA)) || !u.Implies(NeTop(vB)) {
		t.Error("union lost facts")
	}
	if !Union(a, Universe()).IsUniverse() {
		t.Error("universe should absorb in union")
	}
}

func TestKillVar(t *testing.T) {
	s := Empty()
	s.Add(Eq(vA, vB))
	s.Add(Eq(vB, vC))
	s.Add(NeTop(vB))
	k := s.KillVar(vB)
	if k.Implies(NeTop(vB)) || k.Implies(Eq(vA, vB)) {
		t.Error("killed variable facts survive")
	}
	// Consequences between other variables survive via pre-kill closure.
	if !k.Implies(Eq(vA, vC)) {
		t.Error("derived fact between surviving vars lost")
	}
}

func TestRestrict(t *testing.T) {
	s := Empty()
	s.Add(Eq(vA, vB))
	s.Add(NeTop(vB))
	s.Add(Eq(vC, vD))
	s.Add(Eq(vA, RT))
	r := s.Restrict(map[Var]Var{vA: vC})
	if !r.Implies(NeTop(vC)) {
		t.Error("derived fact on renamed var lost (vA=vB ∧ vB≠⊤ ⊨ vA≠⊤)")
	}
	if !r.Implies(Eq(vC, RT)) {
		t.Error("constant-related fact lost")
	}
	if r.Implies(Eq(vC, vD)) {
		t.Error("fact mentioning dropped var survived")
	}
}

func TestSetEqualAndClone(t *testing.T) {
	a := Empty()
	a.Add(NeTop(vA))
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Add(NeTop(vB))
	if a.Equal(b) {
		t.Error("mutation aliased")
	}
	if a.Equal(Universe()) || !Universe().Equal(Universe()) {
		t.Error("universe equality wrong")
	}
}

func TestStringForms(t *testing.T) {
	s := Empty()
	s.Add(CondEq(vA, RT))
	s.Add(Leq(vA, vB))
	if s.String() == "" || EqTop(vA).String() == "" {
		t.Error("empty string forms")
	}
}
