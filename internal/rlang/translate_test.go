package rlang

import (
	"strings"
	"testing"
)

func countStmts(f *Func, kind StmtKind) int {
	n := 0
	for _, b := range f.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == kind {
				n++
			}
		}
	}
	return n
}

func TestTranslateShapes(t *testing.T) {
	p := translateSrc(t, listDecl+`
struct rlist *build(region r, int n) {
	struct rlist *head = null;
	int i;
	for (i = 0; i < n; i++) {
		struct rlist *x = ralloc(r, struct rlist);
		x->next = head;
		head = x;
	}
	return head;
}
void main(void) {
	region r = newregion();
	struct rlist *l = build(r, 3);
	if (l != null) {
		struct rlist *m = l->next;
		if (m) l = m;
	}
}`)
	build := p.Funcs["build"]
	if build == nil {
		t.Fatal("build not translated")
	}
	// The region parameter is tracked, the int parameter is not.
	if len(build.Params) != 2 || build.Params[0] == NoVar || build.Params[1] != NoVar {
		t.Errorf("params = %v", build.Params)
	}
	if countStmts(build, SAlloc) != 1 {
		t.Error("ralloc not translated to SAlloc")
	}
	if countStmts(build, SFieldWrite) != 1 {
		t.Error("x->next = head not translated to SFieldWrite")
	}
	if countStmts(build, SReturn) < 1 {
		t.Error("no return")
	}
	main := p.Funcs["main"]
	if countStmts(main, SNewRegion) != 1 || countStmts(main, SCall) != 1 {
		t.Error("main shape wrong")
	}
	// Null-test branches emit assumptions.
	if countStmts(main, SAssume) < 2 {
		t.Errorf("expected branch assumptions, got %d", countStmts(main, SAssume))
	}
	// Statement boundaries kill temporaries.
	if countStmts(main, SKillTemps) < 3 {
		t.Errorf("expected kill-temps at statement boundaries, got %d",
			countStmts(main, SKillTemps))
	}
	// Named variables are exactly the declared ones.
	named := 0
	for _, ok := range main.Named {
		if ok {
			named++
		}
	}
	if named != 3 { // r, l, m
		t.Errorf("main named vars = %d, want 3", named)
	}
}

func TestTranslateGlobalWrites(t *testing.T) {
	p := translateSrc(t, listDecl+`
struct rlist *cache;
void main(void) {
	region r = newregion();
	cache = ralloc(r, struct rlist);
}`)
	main := p.Funcs["main"]
	found := false
	for _, b := range main.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == SFieldWrite && s.Src == RT {
				found = true
			}
		}
	}
	if !found {
		t.Error("global pointer write not translated as a store against R_T")
	}
}

func TestTranslateStringAndAddr(t *testing.T) {
	p := translateSrc(t, `
char *traditional g;
void main(void) {
	int x = 1;
	int *px = &x;
	g = "lit";
	if (px) print_int(*px);
}`)
	main := p.Funcs["main"]
	if countStmts(main, SMkTrad) < 2 {
		t.Errorf("string literal and address-of-local should both be MkTrad, got %d",
			countStmts(main, SMkTrad))
	}
}

func TestFuncString(t *testing.T) {
	p := translateSrc(t, listDecl+`
void main(void) {
	region r = newregion();
	struct rlist *x = ralloc(r, struct rlist);
	x->next = null;
}`)
	text := p.Funcs["main"].String()
	for _, want := range []string{"func main", "newregion", "ralloc", "sameregion"} {
		if !strings.Contains(text, want) {
			t.Errorf("Func.String missing %q:\n%s", want, text)
		}
	}
}
