package region

import (
	"strings"
	"testing"

	"rcgo/internal/mem"
)

// Test fixture types: a two-pointer list node and a pointer-free payload.
func newTestRuntime(t *testing.T, cfg Config) (*Runtime, TypeID, TypeID) {
	t.Helper()
	rt := NewRuntime(cfg)
	node := rt.RegisterType(TypeDesc{
		Name: "node", Size: 3,
		CountedOffsets: []uint64{0, 1},
		AllPtrOffsets:  []uint64{0, 1},
	})
	leaf := rt.RegisterType(TypeDesc{Name: "leaf", Size: 2})
	return rt, node, leaf
}

func expectCheckError(t *testing.T, op string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: expected CheckError panic", op)
		}
		ce, ok := r.(*CheckError)
		if !ok {
			t.Fatalf("%s: panicked with %v, want *CheckError", op, r)
		}
		if !strings.Contains(ce.Op, op) {
			t.Fatalf("%s: got op %q", op, ce.Op)
		}
	}()
	f()
}

func TestAllocAndRegionOf(t *testing.T) {
	rt, node, leaf := newTestRuntime(t, Config{})
	r := rt.NewRegion()
	a := r.Alloc(node)
	b := r.Alloc(leaf)
	if rt.RegionOf(a) != r || rt.RegionOf(b) != r {
		t.Fatal("RegionOf does not map allocations to their region")
	}
	if rt.RegionOf(mem.Nil) != rt.Traditional() {
		t.Error("RegionOf(nil) should be the traditional region")
	}
	if rt.TypeOf(a) != node {
		t.Errorf("TypeOf = %d, want %d", rt.TypeOf(a), node)
	}
	// Fields start null.
	if rt.Heap.Load(a) != 0 || rt.Heap.Load(a.Add(2)) != 0 {
		t.Error("fresh object not zeroed")
	}
}

func TestPointerFreeSegregation(t *testing.T) {
	rt, node, leaf := newTestRuntime(t, Config{})
	r := rt.NewRegion()
	a := r.Alloc(node)
	b := r.Alloc(leaf)
	if rt.Heap.PageKind((a - 1).Page()) != KindNormal {
		t.Error("node allocated on non-normal page")
	}
	if rt.Heap.PageKind((b - 1).Page()) != KindPointerFree {
		t.Error("pointer-free object allocated on normal page")
	}
	// Ablation: disabling the split puts everything on normal pages.
	rt2 := NewRuntime(Config{DisablePointerFree: true})
	leaf2 := rt2.RegisterType(TypeDesc{Name: "leaf", Size: 2})
	c := rt2.NewRegion().Alloc(leaf2)
	if rt2.Heap.PageKind((c - 1).Page()) != KindNormal {
		t.Error("DisablePointerFree did not force normal pages")
	}
}

func TestArrayAlloc(t *testing.T) {
	rt, _, leaf := newTestRuntime(t, Config{})
	r := rt.NewRegion()
	a := r.AllocArray(leaf, 10)
	if rt.ArrayLen(a) != 10 {
		t.Errorf("ArrayLen = %d, want 10", rt.ArrayLen(a))
	}
	// Elements are contiguous: 10 elements of size 2.
	for i := uint64(0); i < 20; i++ {
		rt.Heap.Store(a.Add(i), i+1)
	}
	for i := uint64(0); i < 20; i++ {
		if rt.Heap.Load(a.Add(i)) != i+1 {
			t.Fatalf("element word %d corrupted", i)
		}
	}
}

func TestLargeObject(t *testing.T) {
	rt := NewRuntime(Config{})
	big := rt.RegisterType(TypeDesc{Name: "big", Size: 3 * mem.PageWords})
	r := rt.NewRegion()
	a := r.Alloc(big)
	rt.Heap.Store(a.Add(3*mem.PageWords-1), 7)
	if rt.Heap.Load(a.Add(3*mem.PageWords-1)) != 7 {
		t.Error("large object tail inaccessible")
	}
	if rt.RegionOf(a.Add(2*mem.PageWords)) != r {
		t.Error("interior page of large object not owned by region")
	}
	if err := rt.DeleteRegion(r); err != nil {
		t.Fatal(err)
	}
}

func TestRefCountBasic(t *testing.T) {
	rt, node, _ := newTestRuntime(t, Config{})
	r1 := rt.NewRegion()
	r2 := rt.NewRegion()
	a := r1.Alloc(node)
	b := r2.Alloc(node)
	// Store b into a.field0: external reference r1 -> r2.
	rt.StorePtr(a, b)
	if r2.RC() != 1 {
		t.Fatalf("r2.RC = %d, want 1", r2.RC())
	}
	if r1.RC() != 0 {
		t.Fatalf("r1.RC = %d, want 0", r1.RC())
	}
	// Overwrite with an internal pointer: count drops.
	a2 := r1.Alloc(node)
	rt.StorePtr(a, a2)
	if r2.RC() != 0 {
		t.Fatalf("r2.RC after overwrite = %d, want 0", r2.RC())
	}
	if err := rt.ValidateCounts(); err != nil {
		t.Fatal(err)
	}
}

func TestRefCountSameRegionAssignsFree(t *testing.T) {
	rt, node, _ := newTestRuntime(t, Config{})
	r := rt.NewRegion()
	a := r.Alloc(node)
	b := r.Alloc(node)
	rt.StorePtr(a, b) // internal: no count changes
	if r.RC() != 0 {
		t.Errorf("internal pointer counted: RC = %d", r.RC())
	}
	if rt.Stats.RCIncrements != 0 {
		t.Errorf("RCIncrements = %d, want 0", rt.Stats.RCIncrements)
	}
}

func TestRefCountNullTransitions(t *testing.T) {
	rt, node, _ := newTestRuntime(t, Config{})
	r1 := rt.NewRegion()
	r2 := rt.NewRegion()
	a := r1.Alloc(node)
	b := r2.Alloc(node)
	rt.StorePtr(a, b)
	rt.StorePtr(a, mem.Nil) // null out: count restored
	if r2.RC() != 0 {
		t.Fatalf("r2.RC = %d, want 0", r2.RC())
	}
	if err := rt.ValidateCounts(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAbortOnExternalRef(t *testing.T) {
	rt, node, _ := newTestRuntime(t, Config{})
	r1 := rt.NewRegion()
	r2 := rt.NewRegion()
	a := r1.Alloc(node)
	rt.StorePtr(a, r2.Alloc(node))
	expectCheckError(t, "deleteregion", func() { _ = rt.DeleteRegion(r2) })
}

func TestDeleteFailPolicy(t *testing.T) {
	rt := NewRuntime(Config{Policy: DeleteFail})
	node := rt.RegisterType(TypeDesc{Name: "node", Size: 1, CountedOffsets: []uint64{0}, AllPtrOffsets: []uint64{0}})
	r1 := rt.NewRegion()
	r2 := rt.NewRegion()
	rt.StorePtr(r1.Alloc(node), r2.Alloc(node))
	if err := rt.DeleteRegion(r2); err == nil {
		t.Fatal("DeleteFail returned nil for referenced region")
	}
	if r2.Deleted() {
		t.Fatal("region deleted despite references")
	}
	// Clearing the reference makes deletion succeed.
	r1.EachObject(func(a mem.Addr, _ TypeID, _ uint64) { rt.StorePtr(a, mem.Nil) })
	if err := rt.DeleteRegion(r2); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteDeferredPolicy(t *testing.T) {
	rt := NewRuntime(Config{Policy: DeleteDeferred})
	node := rt.RegisterType(TypeDesc{Name: "node", Size: 1, CountedOffsets: []uint64{0}, AllPtrOffsets: []uint64{0}})
	r1 := rt.NewRegion()
	r2 := rt.NewRegion()
	slot := r1.Alloc(node)
	rt.StorePtr(slot, r2.Alloc(node))
	if err := rt.DeleteRegion(r2); err != nil {
		t.Fatal(err)
	}
	if r2.Deleted() {
		t.Fatal("deferred delete reclaimed a referenced region")
	}
	// Dropping the last reference reclaims implicitly.
	rt.StorePtr(slot, mem.Nil)
	if !r2.Deleted() {
		t.Fatal("deferred delete did not reclaim at rc==0")
	}
}

func TestDeleteDeferredCascadeToParent(t *testing.T) {
	rt := NewRuntime(Config{Policy: DeleteDeferred})
	parent := rt.NewRegion()
	child := rt.NewSubregion(parent)
	if err := rt.DeleteRegion(parent); err != nil {
		t.Fatal(err)
	}
	if parent.Deleted() {
		t.Fatal("parent reclaimed while child lives")
	}
	if err := rt.DeleteRegion(child); err != nil {
		t.Fatal(err)
	}
	if !child.Deleted() || !parent.Deleted() {
		t.Fatal("cascade did not reclaim parent after last child")
	}
}

func TestDeleteSubregionOrder(t *testing.T) {
	rt, _, _ := newTestRuntime(t, Config{})
	parent := rt.NewRegion()
	child := rt.NewSubregion(parent)
	expectCheckError(t, "deleteregion", func() { _ = rt.DeleteRegion(parent) })
	if err := rt.DeleteRegion(child); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeleteRegion(parent); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteTraditionalForbidden(t *testing.T) {
	rt, _, _ := newTestRuntime(t, Config{})
	expectCheckError(t, "deleteregion", func() { _ = rt.DeleteRegion(rt.Traditional()) })
}

func TestDoubleDelete(t *testing.T) {
	rt, _, _ := newTestRuntime(t, Config{})
	r := rt.NewRegion()
	if err := rt.DeleteRegion(r); err != nil {
		t.Fatal(err)
	}
	expectCheckError(t, "deleteregion", func() { _ = rt.DeleteRegion(r) })
}

func TestAllocInDeletedRegion(t *testing.T) {
	rt, node, _ := newTestRuntime(t, Config{})
	r := rt.NewRegion()
	if err := rt.DeleteRegion(r); err != nil {
		t.Fatal(err)
	}
	expectCheckError(t, "ralloc", func() { r.Alloc(node) })
}

func TestUnscanDecrementsOutboundCounts(t *testing.T) {
	rt, node, _ := newTestRuntime(t, Config{})
	r1 := rt.NewRegion()
	r2 := rt.NewRegion()
	// r1 holds three pointers into r2.
	for i := 0; i < 3; i++ {
		rt.StorePtr(r1.Alloc(node), r2.Alloc(node))
	}
	if r2.RC() != 3 {
		t.Fatalf("r2.RC = %d, want 3", r2.RC())
	}
	if err := rt.DeleteRegion(r1); err != nil {
		t.Fatal(err)
	}
	if r2.RC() != 0 {
		t.Fatalf("r2.RC after unscan = %d, want 0", r2.RC())
	}
	if rt.Stats.UnscanObjects == 0 {
		t.Error("unscan did not visit objects")
	}
	if err := rt.DeleteRegion(r2); err != nil {
		t.Fatal(err)
	}
}

func TestUnscanSkipsPointerFreePages(t *testing.T) {
	rt, _, leaf := newTestRuntime(t, Config{})
	r := rt.NewRegion()
	for i := 0; i < 100; i++ {
		r.Alloc(leaf)
	}
	if err := rt.DeleteRegion(r); err != nil {
		t.Fatal(err)
	}
	if rt.Stats.UnscanObjects != 0 {
		t.Errorf("unscan visited %d pointer-free objects", rt.Stats.UnscanObjects)
	}
}

func TestSameRegionCheck(t *testing.T) {
	rt, node, _ := newTestRuntime(t, Config{})
	r1 := rt.NewRegion()
	r2 := rt.NewRegion()
	a := r1.Alloc(node)
	rt.StoreSameRegion(a, r1.Alloc(node)) // ok
	rt.StoreSameRegion(a, mem.Nil)        // null ok
	expectCheckError(t, "sameregion", func() { rt.StoreSameRegion(a, r2.Alloc(node)) })
	if r2.RC() != 0 || r1.RC() != 0 {
		t.Error("sameregion store touched reference counts")
	}
}

func TestTraditionalCheck(t *testing.T) {
	rt, node, _ := newTestRuntime(t, Config{})
	r1 := rt.NewRegion()
	a := r1.Alloc(node)
	tradObj := rt.Traditional().Alloc(node)
	rt.StoreTraditional(a, tradObj) // ok
	rt.StoreTraditional(a, mem.Nil) // null ok
	expectCheckError(t, "traditional", func() { rt.StoreTraditional(a, r1.Alloc(node)) })
}

func TestParentPtrCheck(t *testing.T) {
	for _, walk := range []bool{false, true} {
		rt := NewRuntime(Config{ParentCheckByWalk: walk})
		node := rt.RegisterType(TypeDesc{Name: "node", Size: 2, CountedOffsets: []uint64{0}, AllPtrOffsets: []uint64{0}})
		parent := rt.NewRegion()
		child := rt.NewSubregion(parent)
		sibling := rt.NewRegion()
		a := child.Alloc(node)
		rt.StoreParentPtr(a.Add(1), parent.Alloc(node)) // up: ok
		rt.StoreParentPtr(a.Add(1), child.Alloc(node))  // same region: ok
		rt.StoreParentPtr(a.Add(1), mem.Nil)            // null: ok
		expectCheckError(t, "parentptr", func() {
			rt.StoreParentPtr(a.Add(1), sibling.Alloc(node))
		})
		// Downward pointers are rejected too.
		b := parent.Alloc(node)
		expectCheckError(t, "parentptr", func() {
			rt.StoreParentPtr(b.Add(1), child.Alloc(node))
		})
	}
}

func TestParentPtrToTraditional(t *testing.T) {
	// The traditional region is the root of the forest, so a parentptr may
	// legally point at traditional data.
	rt, node, _ := newTestRuntime(t, Config{})
	r := rt.NewSubregion(rt.NewRegion())
	a := r.Alloc(node)
	rt.StoreParentPtr(a, rt.Traditional().Alloc(node))
}

func TestPinsBlockDeletion(t *testing.T) {
	rt := NewRuntime(Config{Policy: DeleteFail})
	r := rt.NewRegion()
	r.Pin()
	if err := rt.DeleteRegion(r); err == nil {
		t.Fatal("pinned region deleted")
	}
	r.Unpin()
	if err := rt.DeleteRegion(r); err != nil {
		t.Fatal(err)
	}
}

func TestPinUnpinDeferredReclaims(t *testing.T) {
	rt := NewRuntime(Config{Policy: DeleteDeferred})
	r := rt.NewRegion()
	r.Pin()
	if err := rt.DeleteRegion(r); err != nil {
		t.Fatal(err)
	}
	if r.Deleted() {
		t.Fatal("pinned region reclaimed")
	}
	r.Unpin()
	if !r.Deleted() {
		t.Fatal("unpin did not trigger deferred reclaim")
	}
}

func TestNumbering(t *testing.T) {
	rt, _, _ := newTestRuntime(t, Config{})
	a := rt.NewRegion()
	b := rt.NewSubregion(a)
	c := rt.NewSubregion(b)
	d := rt.NewRegion()
	if err := rt.ValidateNumbering(); err != nil {
		t.Fatal(err)
	}
	if !a.IsAncestorOf(c) || !a.IsAncestorOf(b) || !b.IsAncestorOf(c) {
		t.Error("ancestry via numbering failed")
	}
	if a.IsAncestorOf(d) || d.IsAncestorOf(a) || c.IsAncestorOf(a) {
		t.Error("false ancestry via numbering")
	}
	if !rt.Traditional().IsAncestorOf(c) {
		t.Error("traditional region should be everyone's ancestor")
	}
	if err := rt.DeleteRegion(c); err != nil {
		t.Fatal(err)
	}
	if err := rt.ValidateNumbering(); err != nil {
		t.Fatal(err)
	}
}

func TestNewSubregionOfDeletedPanics(t *testing.T) {
	rt, _, _ := newTestRuntime(t, Config{})
	r := rt.NewRegion()
	if err := rt.DeleteRegion(r); err != nil {
		t.Fatal(err)
	}
	expectCheckError(t, "newsubregion", func() { rt.NewSubregion(r) })
}

func TestCycleWithinRegionIsFine(t *testing.T) {
	rt, node, _ := newTestRuntime(t, Config{})
	r := rt.NewRegion()
	a := r.Alloc(node)
	b := r.Alloc(node)
	rt.StorePtr(a, b)
	rt.StorePtr(b, a) // cycle inside one region: no counts, freely deletable
	if r.RC() != 0 {
		t.Fatalf("RC = %d, want 0", r.RC())
	}
	if err := rt.DeleteRegion(r); err != nil {
		t.Fatal(err)
	}
}

func TestCrossRegionCycleBlocksAndBreaks(t *testing.T) {
	rt := NewRuntime(Config{Policy: DeleteFail})
	node := rt.RegisterType(TypeDesc{Name: "node", Size: 1, CountedOffsets: []uint64{0}, AllPtrOffsets: []uint64{0}})
	r1 := rt.NewRegion()
	r2 := rt.NewRegion()
	a := r1.Alloc(node)
	b := r2.Alloc(node)
	rt.StorePtr(a, b)
	rt.StorePtr(b, a)
	if rt.DeleteRegion(r1) == nil || rt.DeleteRegion(r2) == nil {
		t.Fatal("cross-region cycle did not block deletion")
	}
	// Breaking the cycle (programmer's responsibility per the paper)
	// unblocks deletion.
	rt.StorePtr(a, mem.Nil)
	if err := rt.DeleteRegion(r2); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeleteRegion(r1); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	rt, node, leaf := newTestRuntime(t, Config{})
	r := rt.NewRegion()
	a := r.Alloc(node)
	r.Alloc(leaf)
	rt.StorePtr(a, mem.Nil)
	rt.StoreSameRegion(a, mem.Nil)
	rt.StoreUnchecked(a, mem.Nil)
	s := rt.Stats
	if s.Allocs != 2 || s.FullUpdates != 1 || s.SameChecks != 1 || s.UncheckedPtrs != 1 {
		t.Errorf("stats = %+v", s)
	}
	wantCost := int64(CostFullUpdate + CostSameCheck + CostPlainStore)
	if s.Cost != wantCost {
		t.Errorf("Cost = %d, want %d", s.Cost, wantCost)
	}
	if s.MaxLiveBytes <= 0 {
		t.Error("MaxLiveBytes not tracked")
	}
}

func TestPageRecyclingAcrossRegions(t *testing.T) {
	rt, _, leaf := newTestRuntime(t, Config{})
	for i := 0; i < 50; i++ {
		r := rt.NewRegion()
		for j := 0; j < 200; j++ {
			r.Alloc(leaf)
		}
		if err := rt.DeleteRegion(r); err != nil {
			t.Fatal(err)
		}
	}
	// Heap should not grow without bound: live pages are zero, page table
	// stays small thanks to recycling.
	if rt.Heap.MappedPages() != 0 {
		t.Errorf("MappedPages = %d, want 0", rt.Heap.MappedPages())
	}
	if rt.Heap.NumPages() > 16 {
		t.Errorf("page table grew to %d entries; recycling broken?", rt.Heap.NumPages())
	}
}
