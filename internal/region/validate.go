package region

import (
	"fmt"

	"rcgo/internal/mem"
)

// ValidateCounts recomputes every region's external reference count by a
// full scan of all counted pointer fields in the heap and compares it with
// the maintained count (minus live-local pins). It returns an error
// describing the first mismatch, or nil.
//
// This is the runtime's ground-truth invariant: for every region r,
//
//	r.rc - r.pins == #{ counted heap slots s outside r : *s points into r }
//
// Annotated (sameregion/traditional/parentptr) fields are excluded, exactly
// as in the paper: their checks guarantee they never create unaccounted
// unsafe references.
func (rt *Runtime) ValidateCounts() error {
	want := make(map[*Region]int64)
	rt.EachRegion(func(src *Region) {
		src.EachObject(func(a mem.Addr, tid TypeID, count uint64) {
			t := rt.types[tid]
			for i := uint64(0); i < count; i++ {
				elem := a.Add(i * t.Size)
				for _, po := range t.CountedOffsets {
					val := mem.Addr(rt.Heap.Load(elem.Add(po)))
					if val == mem.Nil {
						continue
					}
					target := rt.RegionOf(val)
					if target != src {
						want[target]++
					}
				}
			}
		})
	})
	var err error
	rt.EachRegion(func(r *Region) {
		if err != nil || r == rt.traditional {
			return
		}
		if got := r.rc - r.pins; got != want[r] {
			err = fmt.Errorf("region %s: maintained count %d (rc %d - pins %d), heap scan found %d external references",
				r.name, got, r.rc, r.pins, want[r])
		}
	})
	return err
}

// ValidateNumbering checks that the depth-first numbering is consistent
// with the region hierarchy: intervals nest exactly along parent links.
func (rt *Runtime) ValidateNumbering() error {
	var err error
	var walk func(r *Region)
	walk = func(r *Region) {
		if err != nil {
			return
		}
		if r.id >= r.nextid {
			err = fmt.Errorf("region %s: empty interval [%d,%d)", r.name, r.id, r.nextid)
			return
		}
		prev := r.id + 1
		for _, c := range r.children {
			if c.id != prev {
				err = fmt.Errorf("region %s: child %s id %d, want %d", r.name, c.name, c.id, prev)
				return
			}
			walk(c)
			prev = c.nextid
		}
		if prev != r.nextid {
			err = fmt.Errorf("region %s: nextid %d, children end at %d", r.name, r.nextid, prev)
		}
	}
	walk(rt.traditional)
	return err
}
