package region

import (
	"testing"

	"rcgo/internal/mem"
)

func TestMapStack(t *testing.T) {
	rt := NewRuntime(Config{})
	base := rt.MapStack(4)
	// Stack pages belong to the traditional region.
	if rt.RegionOf(base) != rt.Traditional() {
		t.Error("stack not in the traditional region")
	}
	if rt.Heap.PageKind(base.Page()) != KindStack {
		t.Error("stack page kind wrong")
	}
	// Stack words are plain storage.
	rt.Heap.Store(base.Add(100), 42)
	if rt.Heap.Load(base.Add(100)) != 42 {
		t.Error("stack storage broken")
	}
	// Stack pages are never visited by EachObject.
	n := 0
	rt.Traditional().EachObject(func(mem.Addr, TypeID, uint64) { n++ })
	if n != 0 {
		t.Errorf("EachObject visited %d stack objects", n)
	}
}

func TestDeleteRegionUnsafe(t *testing.T) {
	rt := NewRuntime(Config{})
	node := rt.RegisterType(TypeDesc{Name: "n", Size: 1, CountedOffsets: []uint64{0}, AllPtrOffsets: []uint64{0}})
	r1 := rt.NewRegion()
	r2 := rt.NewRegion()
	// Build a (bogus, norc-style) external reference without counting.
	a := r1.Alloc(node)
	rt.StoreUnchecked(a, r2.Alloc(node))
	// Unsafe delete ignores counts and performs no unscan.
	before := rt.Stats.UnscanObjects
	rt.DeleteRegionUnsafe(r2)
	if !r2.Deleted() {
		t.Fatal("not deleted")
	}
	if rt.Stats.UnscanObjects != before {
		t.Error("unsafe delete ran the unscan")
	}
	rt.DeleteRegionUnsafe(r1)
	// Subregion structure is still enforced.
	p := rt.NewRegion()
	rt.NewSubregion(p)
	expectCheckError(t, "deleteregion", func() { rt.DeleteRegionUnsafe(p) })
}

func TestUnscanTimeTracked(t *testing.T) {
	rt := NewRuntime(Config{})
	node := rt.RegisterType(TypeDesc{Name: "n", Size: 2, CountedOffsets: []uint64{0}, AllPtrOffsets: []uint64{0}})
	r := rt.NewRegion()
	for i := 0; i < 5000; i++ {
		r.Alloc(node)
	}
	if err := rt.DeleteRegion(r); err != nil {
		t.Fatal(err)
	}
	if rt.Stats.UnscanNanos <= 0 {
		t.Error("unscan time not tracked")
	}
	if rt.Stats.UnscanWords != 5000 {
		t.Errorf("UnscanWords = %d", rt.Stats.UnscanWords)
	}
}

func TestRegionOfInterior(t *testing.T) {
	rt := NewRuntime(Config{})
	big := rt.RegisterType(TypeDesc{Name: "big", Size: 3000})
	r := rt.NewRegion()
	a := r.AllocArray(big, 2)
	// Interior addresses anywhere in the multi-page run resolve to r.
	for _, off := range []uint64{0, 1000, 2999, 3000, 5999} {
		if rt.RegionOf(a.Add(off)) != r {
			t.Errorf("interior offset %d not in region", off)
		}
	}
}

func TestPointerFreeAblation(t *testing.T) {
	// DisablePointerFree routes pointer-free objects onto normal pages,
	// making the delete-time scan visit them.
	for _, disable := range []bool{false, true} {
		rt := NewRuntime(Config{DisablePointerFree: disable})
		leaf := rt.RegisterType(TypeDesc{Name: "leaf", Size: 4})
		r := rt.NewRegion()
		for i := 0; i < 100; i++ {
			r.Alloc(leaf)
		}
		if err := rt.DeleteRegion(r); err != nil {
			t.Fatal(err)
		}
		if disable && rt.Stats.UnscanObjects != 100 {
			t.Errorf("nosplit: scanned %d objects, want 100", rt.Stats.UnscanObjects)
		}
		if !disable && rt.Stats.UnscanObjects != 0 {
			t.Errorf("split: scanned %d objects, want 0", rt.Stats.UnscanObjects)
		}
	}
}

func TestCheckErrorMessage(t *testing.T) {
	e := &CheckError{Op: "x", Msg: "y"}
	if e.Error() != "region: x: y" {
		t.Errorf("Error() = %q", e.Error())
	}
}
