package region

import (
	"math/rand"
	"testing"

	"rcgo/internal/mem"
)

// randomWorkload drives the runtime through a random sequence of region
// operations (create, subregion, alloc, pointer stores of every flavour,
// delete) and checks the two core invariants after every step batch:
//
//  1. every region's maintained reference count equals the count found by
//     a ground-truth heap scan (ValidateCounts);
//  2. the depth-first numbering matches the hierarchy (ValidateNumbering).
//
// All operations run under DeleteFail so unsafe deletions are (correctly)
// refused rather than aborting; annotated stores are wrapped to tolerate
// check failures, which the random driver will legitimately provoke.
func randomWorkload(t *testing.T, seed int64, steps int, policy DeletePolicy) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rt := NewRuntime(Config{Policy: policy})
	node := rt.RegisterType(TypeDesc{
		Name: "node", Size: 4,
		CountedOffsets: []uint64{0, 1},
		AllPtrOffsets:  []uint64{0, 1, 2},
	})

	var regions []*Region
	var objects []mem.Addr // live objects (removed when their region dies)

	pruneDead := func() {
		live := objects[:0]
		for _, o := range objects {
			if !rt.RegionOf(o).Deleted() && rt.Heap.Mapped(o) {
				live = append(live, o)
			}
		}
		objects = live
		liveR := regions[:0]
		for _, r := range regions {
			if !r.Deleted() {
				liveR = append(liveR, r)
			}
		}
		regions = liveR
	}

	tolerateCheck := func(f func()) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*CheckError); !ok {
					panic(r)
				}
			}
		}()
		f()
	}

	for i := 0; i < steps; i++ {
		pruneDead() // deferred policy reclaims regions implicitly
		switch op := rng.Intn(10); {
		case op == 0 || len(regions) == 0:
			regions = append(regions, rt.NewRegion())
		case op == 1:
			regions = append(regions, rt.NewSubregion(regions[rng.Intn(len(regions))]))
		case op <= 4: // alloc
			objects = append(objects, regions[rng.Intn(len(regions))].Alloc(node))
		case op <= 7 && len(objects) > 0: // counted pointer store
			p := objects[rng.Intn(len(objects))].Add(uint64(rng.Intn(2)))
			var val mem.Addr
			if rng.Intn(4) > 0 {
				val = objects[rng.Intn(len(objects))]
			}
			rt.StorePtr(p, val)
		case op == 8 && len(objects) > 0: // annotated store (slot 2, uncounted)
			p := objects[rng.Intn(len(objects))].Add(2)
			var val mem.Addr
			if rng.Intn(3) > 0 {
				val = objects[rng.Intn(len(objects))]
			}
			switch rng.Intn(3) {
			case 0:
				tolerateCheck(func() { rt.StoreSameRegion(p, val) })
			case 1:
				tolerateCheck(func() { rt.StoreParentPtr(p, val) })
			default:
				tolerateCheck(func() { rt.StoreTraditional(p, val) })
			}
		case op == 9 && len(regions) > 0: // try to delete
			r := regions[rng.Intn(len(regions))]
			err := rt.DeleteRegion(r)
			if policy == DeleteFail && err == nil && !r.Deleted() {
				t.Fatalf("step %d: DeleteRegion returned nil but region live", i)
			}
			pruneDead()
		}
		if i%16 == 0 {
			if err := rt.ValidateCounts(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
			if err := rt.ValidateNumbering(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
		}
	}
	if err := rt.ValidateCounts(); err != nil {
		t.Fatalf("seed %d final: %v", seed, err)
	}
	if err := rt.ValidateNumbering(); err != nil {
		t.Fatalf("seed %d final: %v", seed, err)
	}
}

func TestQuickRefcountInvariant(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		randomWorkload(t, seed, 400, DeleteFail)
	}
}

func TestQuickRefcountInvariantDeferred(t *testing.T) {
	for seed := int64(100); seed <= 106; seed++ {
		randomWorkload(t, seed, 300, DeleteDeferred)
	}
}

// Property: after any sequence of creations and deletions, IsAncestorOf
// computed from the numbering agrees with walking parent links.
func TestQuickNumberingAgreesWithParentWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rt := NewRuntime(Config{Policy: DeleteFail})
	var regions []*Region
	for i := 0; i < 300; i++ {
		switch {
		case len(regions) == 0 || rng.Intn(4) == 0:
			regions = append(regions, rt.NewRegion())
		case rng.Intn(3) == 0 && len(regions) > 0:
			r := regions[rng.Intn(len(regions))]
			if !r.Deleted() && r.Subregions() == 0 && r.RC() == 0 {
				_ = rt.DeleteRegion(r)
			}
		default:
			p := regions[rng.Intn(len(regions))]
			if !p.Deleted() {
				regions = append(regions, rt.NewSubregion(p))
			}
		}
		// Cross-check all live pairs.
		var live []*Region
		for _, r := range regions {
			if !r.Deleted() {
				live = append(live, r)
			}
		}
		for _, a := range live {
			for _, b := range live {
				walkUp := false
				for s := b; s != nil; s = s.Parent() {
					if s == a {
						walkUp = true
						break
					}
				}
				if got := a.IsAncestorOf(b); got != walkUp {
					t.Fatalf("iter %d: IsAncestorOf(%s,%s) = %v, parent walk says %v",
						i, a.Name(), b.Name(), got, walkUp)
				}
			}
		}
	}
}
