// Package region implements the RC runtime of Gay & Aiken, "Language
// Support for Regions" (PLDI 2001), Section 3.3: reference-counted regions
// over a paged simulated heap.
//
// A region is a growable set of pages holding objects that are freed all at
// once when the region is deleted. Safety is dynamic: each region keeps a
// count of the external pointers into it (pointers stored outside the
// region), and deletion fails while that count is non-zero. Pointer
// assignments to fields annotated sameregion, traditional or parentptr
// never update a count; they run the cheap checks of the paper's
// Figure 3(b) instead of the full update of Figure 3(a).
//
// Mirroring the paper's struct region, every Region carries a reference
// count, a depth-first numbering (id, nextid) of the region hierarchy used
// by the parentptr check, and two bump allocators: "normal" for objects
// containing counted pointers (these pages are scanned at delete time) and
// "pointer-free" for objects containing only non-pointer data or annotated
// pointers (never scanned).
package region

import (
	"fmt"
	"time"

	"rcgo/internal/mem"
)

// Page kind tags in the heap page table.
const (
	KindNormal      int8 = 0
	KindPointerFree int8 = 1
	// KindStack tags pages of the simulated program stack. They belong to
	// the traditional region (the paper: the traditional region contains
	// the code, stack, global data and malloc heap) but are not walked by
	// EachObject or the delete-time scan.
	KindStack int8 = 2
)

// DeletePolicy selects what DeleteRegion does when unsafe, corresponding to
// the three notions of memory safety discussed in Section 3 of the paper.
type DeletePolicy int

const (
	// DeleteAbort aborts the program (panics with *CheckError) when a
	// region with remaining external references or subregions is deleted.
	// This is the paper's default.
	DeleteAbort DeletePolicy = iota
	// DeleteFail makes DeleteRegion return an error instead of aborting.
	DeleteFail
	// DeleteDeferred marks the region dead and reclaims it implicitly
	// when its reference count drops to zero and it has no subregions
	// (garbage-collection-like semantics).
	DeleteDeferred
)

// Abstract cost units per operation, from the paper's SPARC instruction
// counts: a full reference-count update takes 23 instructions, the
// annotation checks between 6 and 14, a plain store 1.
const (
	CostFullUpdate  = 23
	CostSameCheck   = 6
	CostTradCheck   = 6
	CostParentCheck = 14
	CostPlainStore  = 1
)

// TypeDesc describes an allocated type to the runtime: its size and where
// its pointers live. CountedOffsets lists word offsets of unannotated
// pointer fields (the ones maintained by reference counting and visited by
// the delete-time scan). AllPtrOffsets additionally includes annotated
// pointer fields; the conservative GC baseline and heap validators use it.
type TypeDesc struct {
	Name           string
	Size           uint64 // words, excluding the object header
	CountedOffsets []uint64
	AllPtrOffsets  []uint64
}

// PointerFree reports whether objects of this type can live on
// pointer-free pages (no counted pointers, so no delete-time scan needed).
func (t *TypeDesc) PointerFree() bool { return len(t.CountedOffsets) == 0 }

// TypeID names a registered TypeDesc.
type TypeID int32

// CheckError is the panic/error value for failed safety checks: a failed
// annotation check, an unsafe deleteregion, or use of a deleted region.
type CheckError struct {
	Op  string
	Msg string
}

func (e *CheckError) Error() string { return "region: " + e.Op + ": " + e.Msg }

// Stats accumulates the dynamic counts the paper's evaluation reports.
type Stats struct {
	Allocs         int64 // objects allocated in regions
	AllocWords     int64 // words allocated (incl. headers)
	RCIncrements   int64
	RCDecrements   int64
	FullUpdates    int64 // pointer stores that ran the Figure 3(a) protocol
	SameChecks     int64 // pointer stores that ran the sameregion check
	TradChecks     int64
	ParentChecks   int64
	UncheckedPtrs  int64 // pointer stores with no runtime work (statically safe)
	UnscanWords    int64 // words visited by delete-time scans
	UnscanObjects  int64
	UnscanNanos    int64 // wall time spent in delete-time scans
	RegionsCreated int64
	RegionsDeleted int64
	Cost           int64 // abstract cost units charged to pointer stores
	MaxLiveBytes   int64
	LiveBytes      int64
	PinOps         int64 // local-variable pin/unpin pairs at deletes-calls
}

func (s *Stats) addLive(words int64) {
	s.LiveBytes += words * 8
	if s.LiveBytes > s.MaxLiveBytes {
		s.MaxLiveBytes = s.LiveBytes
	}
}

// Config controls optional runtime behaviour, including the ablation
// switches benchmarked in bench_test.go.
type Config struct {
	Policy DeletePolicy
	// DisablePointerFree forces every object onto normal (scanned) pages,
	// ablating the pointer-free allocator split.
	DisablePointerFree bool
	// ParentCheckByWalk implements the parentptr check by walking the
	// parent chain instead of the depth-first numbering, ablating the
	// (id, nextid) scheme.
	ParentCheckByWalk bool
}

// Region is a reference-counted region of the heap.
type Region struct {
	rt *Runtime

	rc     int64 // external references (heap pointers from outside + pins)
	pins   int64 // live-local pins active during deletes-calls
	id     int32 // depth-first numbering: descendants have id in [id, nextid)
	nextid int32

	parent   *Region
	children []*Region

	normal      bumpAllocator
	pointerFree bumpAllocator

	regID   int32 // owner tag in the heap page table
	deleted bool
	zombie  bool // DeleteDeferred: marked for implicit deletion
	name    string
}

// A bumpAllocator carves objects out of runs of contiguous pages.
type bumpAllocator struct {
	runs []pageRun
	kind int8
}

type pageRun struct {
	first uint64 // first page number
	pages int
	used  uint64 // words used in the run
}

func (r pageRun) base() mem.Addr { return mem.Addr(r.first << mem.PageShift) }
func (r pageRun) capWords() uint64 {
	return uint64(r.pages) * mem.PageWords
}

// Runtime owns the heap, the region forest and the type registry. The
// distinguished traditional region (holding globals and malloc-emulated
// data; never deletable) is the root of the forest, so every region is a
// descendant of it.
type Runtime struct {
	Heap   *mem.Heap
	Stats  Stats
	Config Config

	regions     []*Region // indexed by regID; nil for deleted slots
	freeIDs     []int32
	traditional *Region
	types       []*TypeDesc
}

// NewRuntime creates a runtime with a fresh heap and the traditional
// region already in place.
func NewRuntime(cfg Config) *Runtime {
	rt := &Runtime{Heap: mem.NewHeap(), Config: cfg}
	trad := &Region{rt: rt, name: "traditional"}
	trad.normal.kind = KindNormal
	trad.pointerFree.kind = KindPointerFree
	trad.regID = int32(len(rt.regions))
	rt.regions = append(rt.regions, trad)
	rt.traditional = trad
	rt.renumber()
	return rt
}

// Traditional returns the distinguished traditional region, the paper's
// region constant R_T. It can allocate but never be deleted.
func (rt *Runtime) Traditional() *Region { return rt.traditional }

// RegisterType records a type descriptor and returns its ID.
func (rt *Runtime) RegisterType(d TypeDesc) TypeID {
	cp := d
	rt.types = append(rt.types, &cp)
	return TypeID(len(rt.types) - 1)
}

// Type returns the descriptor for id.
func (rt *Runtime) Type(id TypeID) *TypeDesc { return rt.types[id] }

// NewRegion creates a new top-level region (a child of the traditional
// region), corresponding to newregion().
func (rt *Runtime) NewRegion() *Region { return rt.NewSubregion(rt.traditional) }

// NewSubregion creates a region below parent, corresponding to
// newsubregion(parent). Subregions must be deleted before their parents.
func (rt *Runtime) NewSubregion(parent *Region) *Region {
	if parent.deleted {
		panic(&CheckError{Op: "newsubregion", Msg: "parent region already deleted"})
	}
	r := &Region{rt: rt, parent: parent, name: fmt.Sprintf("r%d", rt.Stats.RegionsCreated+1)}
	r.normal.kind = KindNormal
	r.pointerFree.kind = KindPointerFree
	if n := len(rt.freeIDs); n > 0 {
		r.regID = rt.freeIDs[n-1]
		rt.freeIDs = rt.freeIDs[:n-1]
		rt.regions[r.regID] = r
	} else {
		r.regID = int32(len(rt.regions))
		rt.regions = append(rt.regions, r)
	}
	parent.children = append(parent.children, r)
	rt.Stats.RegionsCreated++
	// The paper's implementation renumbers the hierarchy on every region
	// creation; we do the same (see also Config.ParentCheckByWalk).
	rt.renumber()
	return r
}

// renumber assigns depth-first (id, nextid) intervals across the forest:
// region a is an ancestor-or-self of b iff b.id ∈ [a.id, a.nextid).
func (rt *Runtime) renumber() {
	var next int32
	var walk func(r *Region)
	walk = func(r *Region) {
		r.id = next
		next++
		for _, c := range r.children {
			walk(c)
		}
		r.nextid = next
	}
	walk(rt.traditional)
}

// RegionOf returns the region containing address a. The null pointer and
// any address outside region pages belong to the traditional region,
// matching the paper's view of traditional C pointers.
func (rt *Runtime) RegionOf(a mem.Addr) *Region {
	owner := rt.Heap.Owner(a)
	if owner < 0 {
		return rt.traditional
	}
	return rt.regions[owner]
}

// Parent returns the region's parent (nil for the traditional region).
func (r *Region) Parent() *Region { return r.parent }

// Deleted reports whether the region has been deleted.
func (r *Region) Deleted() bool { return r.deleted }

// RC returns the current external reference count (including pins).
func (r *Region) RC() int64 { return r.rc }

// Name returns a debug name for the region.
func (r *Region) Name() string { return r.name }

// Subregions returns the number of live subregions.
func (r *Region) Subregions() int { return len(r.children) }

// ID returns the region's current depth-first number (for tests).
func (r *Region) ID() int32 { return r.id }

// NextID returns the end of the region's depth-first interval (for tests).
func (r *Region) NextID() int32 { return r.nextid }

// IsAncestorOf reports whether r is an ancestor of (or equal to) s, using
// the depth-first numbering.
func (r *Region) IsAncestorOf(s *Region) bool {
	return s.id >= r.id && s.id < r.nextid
}

// objHeader packs a type ID and an element count into the word that
// precedes every object on normal pages. Pointer-free objects carry the
// header too: it costs one word and keeps ArrayLen/validation uniform.
func objHeader(t TypeID, count uint64) uint64 {
	return uint64(uint32(t))<<32 | uint64(uint32(count))
}

func headerType(h uint64) TypeID { return TypeID(uint32(h >> 32)) }
func headerCount(h uint64) uint64 {
	return uint64(uint32(h))
}

// Alloc allocates one object of type t in the region (ralloc). The
// returned address points at the object body; all fields start as zero
// (null). Aborts if the region is deleted.
func (r *Region) Alloc(t TypeID) mem.Addr {
	return r.AllocArray(t, 1)
}

// AllocArray allocates count contiguous objects of type t (rarrayalloc).
func (r *Region) AllocArray(t TypeID, count uint64) mem.Addr {
	if r.deleted {
		panic(&CheckError{Op: "ralloc", Msg: "allocation in deleted region " + r.name})
	}
	if count == 0 {
		count = 1
	}
	desc := r.rt.types[t]
	words := desc.Size*count + 1 // +1 for header
	alloc := &r.normal
	if desc.PointerFree() && !r.rt.Config.DisablePointerFree {
		alloc = &r.pointerFree
	}
	a := r.bump(alloc, words)
	r.rt.Heap.Store(a, objHeader(t, count))
	r.rt.Stats.Allocs++
	r.rt.Stats.AllocWords += int64(words)
	r.rt.Stats.addLive(int64(words))
	return a.Add(1)
}

func (r *Region) bump(alloc *bumpAllocator, words uint64) mem.Addr {
	if n := len(alloc.runs); n > 0 {
		run := &alloc.runs[n-1]
		if run.used+words <= run.capWords() {
			a := run.base().Add(run.used)
			run.used += words
			return a
		}
	}
	pages := int((words + mem.PageWords - 1) / mem.PageWords)
	if pages == 0 {
		pages = 1
	}
	first := r.rt.Heap.MapPages(pages, r.regID, alloc.kind)
	alloc.runs = append(alloc.runs, pageRun{first: first, pages: pages, used: words})
	return mem.Addr(first << mem.PageShift)
}

// ArrayLen returns the element count recorded in the header of an object
// allocated by Alloc/AllocArray.
func (rt *Runtime) ArrayLen(a mem.Addr) uint64 {
	return headerCount(rt.Heap.Load(a - 1))
}

// TypeOf returns the type of an allocated object.
func (rt *Runtime) TypeOf(a mem.Addr) TypeID {
	return headerType(rt.Heap.Load(a - 1))
}

// ---------------------------------------------------------------------------
// Pointer stores: the Figure 3(a) full update and Figure 3(b) checks.

// StorePtr performs *p = newval on an unannotated pointer field, running
// the full reference-count update of Figure 3(a).
func (rt *Runtime) StorePtr(p, newval mem.Addr) {
	old := mem.Addr(rt.Heap.Load(p))
	rold := rt.RegionOf(old)
	rnew := rt.RegionOf(newval)
	if rold != rnew {
		rp := rt.RegionOf(p)
		if rold != rp {
			rt.decRC(rold)
		}
		if rnew != rp {
			rnew.rc++
			rt.Stats.RCIncrements++
		}
	}
	rt.Stats.FullUpdates++
	rt.Stats.Cost += CostFullUpdate
	rt.Heap.Store(p, uint64(newval))
}

func (rt *Runtime) decRC(r *Region) {
	r.rc--
	rt.Stats.RCDecrements++
	if r.zombie && r.rc == 0 && r.pins == 0 && len(r.children) == 0 {
		rt.reclaim(r)
	}
}

// StoreSameRegion performs *p = newval on a sameregion field: newval must
// be null or in the same region as p. No reference count is touched.
func (rt *Runtime) StoreSameRegion(p, newval mem.Addr) {
	rt.Stats.SameChecks++
	rt.Stats.Cost += CostSameCheck
	if newval != mem.Nil && rt.RegionOf(newval) != rt.RegionOf(p) {
		panic(&CheckError{Op: "sameregion check",
			Msg: fmt.Sprintf("value in region %s stored into field in region %s",
				rt.RegionOf(newval).name, rt.RegionOf(p).name)})
	}
	rt.Heap.Store(p, uint64(newval))
}

// StoreTraditional performs *p = newval on a traditional field: newval
// must be null or point into the traditional region.
func (rt *Runtime) StoreTraditional(p, newval mem.Addr) {
	rt.Stats.TradChecks++
	rt.Stats.Cost += CostTradCheck
	if newval != mem.Nil && rt.RegionOf(newval) != rt.traditional {
		panic(&CheckError{Op: "traditional check",
			Msg: fmt.Sprintf("value in region %s stored into traditional field",
				rt.RegionOf(newval).name)})
	}
	rt.Heap.Store(p, uint64(newval))
}

// StoreParentPtr performs *p = newval on a parentptr field: newval must be
// null or point into an ancestor (or the same) region of p's region. The
// check uses the depth-first numbering: rp.id ∈ [rn.id, rn.nextid).
func (rt *Runtime) StoreParentPtr(p, newval mem.Addr) {
	rt.Stats.ParentChecks++
	rt.Stats.Cost += CostParentCheck
	if newval != mem.Nil {
		rn := rt.RegionOf(newval)
		rp := rt.RegionOf(p)
		ok := false
		if rt.Config.ParentCheckByWalk {
			for s := rp; s != nil; s = s.parent {
				if s == rn {
					ok = true
					break
				}
			}
		} else {
			ok = rp.id >= rn.id && rp.id < rn.nextid
		}
		if !ok {
			panic(&CheckError{Op: "parentptr check",
				Msg: fmt.Sprintf("value in region %s is not an ancestor of field region %s",
					rn.name, rp.name)})
		}
	}
	rt.Heap.Store(p, uint64(newval))
}

// StoreUnchecked performs *p = newval with no runtime work: the assignment
// was proven safe statically by the constraint inference, or checking is
// disabled ("nc" configuration).
func (rt *Runtime) StoreUnchecked(p, newval mem.Addr) {
	rt.Stats.UncheckedPtrs++
	rt.Stats.Cost += CostPlainStore
	rt.Heap.Store(p, uint64(newval))
}

// ---------------------------------------------------------------------------
// Local-variable handling: pins around deletes-calls.

// Pin increments the region's count on behalf of a live local variable for
// the duration of a call to a deletes-qualified function.
func (r *Region) Pin() {
	r.rc++
	r.pins++
	r.rt.Stats.PinOps++
	r.rt.Stats.RCIncrements++
}

// Unpin undoes Pin.
func (r *Region) Unpin() {
	r.pins--
	r.rt.decRC(r)
}

// MapStack maps a run of pages in the traditional region to serve as the
// simulated program stack and returns its base address. Stack pages are
// never scanned by the runtime; the VM manages their contents.
func (rt *Runtime) MapStack(pages int) mem.Addr {
	first := rt.Heap.MapPages(pages, rt.traditional.regID, KindStack)
	return mem.Addr(first << mem.PageShift)
}

// ---------------------------------------------------------------------------
// Deletion.

// DeleteRegion deletes the region, freeing all its objects
// (deleteregion(r)). Under DeleteAbort it panics with *CheckError if the
// region still has subregions or a non-zero external reference count;
// under DeleteFail it returns the error instead; under DeleteDeferred it
// marks the region and reclaims it when it becomes unreferenced.
func (rt *Runtime) DeleteRegion(r *Region) error {
	if r == rt.traditional {
		err := &CheckError{Op: "deleteregion", Msg: "cannot delete the traditional region"}
		if rt.Config.Policy == DeleteFail {
			return err
		}
		panic(err)
	}
	if r.deleted {
		err := &CheckError{Op: "deleteregion", Msg: "region " + r.name + " already deleted"}
		if rt.Config.Policy == DeleteFail {
			return err
		}
		panic(err)
	}
	unsafe := len(r.children) > 0 || r.rc != 0
	if unsafe {
		switch rt.Config.Policy {
		case DeleteAbort:
			panic(rt.deleteError(r))
		case DeleteFail:
			return rt.deleteError(r)
		case DeleteDeferred:
			r.zombie = true
			return nil
		}
	}
	rt.reclaim(r)
	return nil
}

func (rt *Runtime) deleteError(r *Region) *CheckError {
	if len(r.children) > 0 {
		return &CheckError{Op: "deleteregion",
			Msg: fmt.Sprintf("region %s has %d live subregions", r.name, len(r.children))}
	}
	return &CheckError{Op: "deleteregion",
		Msg: fmt.Sprintf("region %s has %d external references", r.name, r.rc)}
}

// DeleteRegionUnsafe reclaims the region without any safety check and
// without the delete-time unscan. It implements the "norc" configuration
// of the paper's evaluation, in which reference counting is disabled
// entirely (no counts exist, so there is nothing to check or fix up).
// Subregion structure is still maintained. It panics if subregions remain,
// since reclaiming a parent under live children would corrupt the
// hierarchy rather than merely being memory-unsafe.
func (rt *Runtime) DeleteRegionUnsafe(r *Region) {
	if r == rt.traditional || r.deleted {
		panic(&CheckError{Op: "deleteregion", Msg: "unsafe delete of traditional or deleted region"})
	}
	if len(r.children) > 0 {
		panic(&CheckError{Op: "deleteregion", Msg: "unsafe delete of region with subregions"})
	}
	rt.release(r)
}

// reclaim performs the actual deletion: the "region unscan" that removes
// the dying region's references to other regions, then page release.
func (rt *Runtime) reclaim(r *Region) {
	rt.unscan(r)
	rt.release(r)
}

func (rt *Runtime) release(r *Region) {
	for _, run := range r.normal.runs {
		for i := 0; i < run.pages; i++ {
			rt.Heap.UnmapPage(run.first + uint64(i))
		}
		rt.Stats.addLive(-int64(run.used))
	}
	for _, run := range r.pointerFree.runs {
		for i := 0; i < run.pages; i++ {
			rt.Heap.UnmapPage(run.first + uint64(i))
		}
		rt.Stats.addLive(-int64(run.used))
	}
	r.normal.runs = nil
	r.pointerFree.runs = nil
	r.deleted = true
	rt.Stats.RegionsDeleted++
	// Detach from the hierarchy.
	p := r.parent
	for i, c := range p.children {
		if c == r {
			p.children = append(p.children[:i], p.children[i+1:]...)
			break
		}
	}
	rt.regions[r.regID] = nil
	rt.freeIDs = append(rt.freeIDs, r.regID)
	rt.renumber()
	// Deferred policy: deleting the last subregion may unblock a zombie
	// parent.
	if p.zombie && p.rc == 0 && p.pins == 0 && len(p.children) == 0 {
		rt.reclaim(p)
	}
}

// unscan walks every object on the region's normal pages and decrements
// the counts of other regions referenced from counted pointer fields. The
// pointer-free pages are skipped — that is the point of the split.
func (rt *Runtime) unscan(r *Region) {
	if len(r.normal.runs) > 0 {
		start := time.Now()
		defer func() { rt.Stats.UnscanNanos += time.Since(start).Nanoseconds() }()
	}
	for _, run := range r.normal.runs {
		base := run.base()
		off := uint64(0)
		for off < run.used {
			h := rt.Heap.Load(base.Add(off))
			t := rt.types[headerType(h)]
			count := headerCount(h)
			rt.Stats.UnscanObjects++
			body := base.Add(off + 1)
			for i := uint64(0); i < count; i++ {
				elem := body.Add(i * t.Size)
				for _, po := range t.CountedOffsets {
					rt.Stats.UnscanWords++
					val := mem.Addr(rt.Heap.Load(elem.Add(po)))
					if val == mem.Nil {
						continue
					}
					target := rt.RegionOf(val)
					if target != r {
						rt.decRC(target)
					}
				}
			}
			off += t.Size*count + 1
		}
	}
}

// ---------------------------------------------------------------------------
// Introspection used by tests, validators and the experiment harness.

// EachObject calls f(addr, type, count) for every live object in the
// region, on both normal and pointer-free pages.
func (r *Region) EachObject(f func(a mem.Addr, t TypeID, count uint64)) {
	for _, alloc := range []*bumpAllocator{&r.normal, &r.pointerFree} {
		for _, run := range alloc.runs {
			base := run.base()
			off := uint64(0)
			for off < run.used {
				h := r.rt.Heap.Load(base.Add(off))
				t := headerType(h)
				count := headerCount(h)
				f(base.Add(off+1), t, count)
				off += r.rt.types[t].Size*count + 1
			}
		}
	}
}

// EachRegion calls f for every live region, including the traditional one.
func (rt *Runtime) EachRegion(f func(r *Region)) {
	for _, r := range rt.regions {
		if r != nil && !r.deleted {
			f(r)
		}
	}
}

// LiveRegions returns the number of live regions, excluding traditional.
func (rt *Runtime) LiveRegions() int {
	n := 0
	rt.EachRegion(func(r *Region) {
		if r != rt.traditional {
			n++
		}
	})
	return n
}

// UsedWords returns the words consumed by live allocations in the region.
func (r *Region) UsedWords() uint64 {
	var n uint64
	for _, run := range r.normal.runs {
		n += run.used
	}
	for _, run := range r.pointerFree.runs {
		n += run.used
	}
	return n
}
