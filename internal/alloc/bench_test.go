package alloc

import (
	"testing"

	"rcgo/internal/mem"
)

// Allocator microbenchmarks: the per-object costs behind the paper's
// Figure 7 comparison (region bump allocation vs malloc/free vs collected
// allocation).

func BenchmarkMallocAllocFree(b *testing.B) {
	h := mem.NewHeap()
	m := NewMalloc(h, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := m.Alloc(6, 0)
		m.Free(a)
	}
}

func BenchmarkMallocChurn(b *testing.B) {
	h := mem.NewHeap()
	m := NewMalloc(h, 1)
	var ring [64]mem.Addr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 63
		if ring[k] != 0 {
			m.Free(ring[k])
		}
		ring[k] = m.Alloc(uint64(2+(i%5)*8), 0)
	}
}

func BenchmarkGCAlloc(b *testing.B) {
	h := mem.NewHeap()
	g := NewGC(h, 1)
	g.Roots = func(func(uint64)) {} // nothing lives: everything collectable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Alloc(6, 0)
	}
}

func BenchmarkGCCollect(b *testing.B) {
	h := mem.NewHeap()
	g := NewGC(h, 1)
	// A live linked structure to mark plus garbage to sweep.
	var roots []uint64
	g.Roots = func(emit func(uint64)) {
		for _, r := range roots {
			emit(r)
		}
	}
	prev := mem.Addr(0)
	for i := 0; i < 2000; i++ {
		a := g.Alloc(6, 0)
		if i%2 == 0 {
			h.Store(a.Add(1), uint64(prev))
			prev = a
		}
	}
	roots = []uint64{uint64(prev)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Collect()
	}
}
