package alloc

import (
	"rcgo/internal/mem"
)

// GCStats counts collector activity.
type GCStats struct {
	Allocs      int64
	AllocWords  int64
	LiveWords   int64
	MaxLive     int64
	Collections int64
	Marked      int64
	Swept       int64
	ScanWords   int64
}

// GC is a conservative mark-sweep collector, the stand-in for the
// Boehm-Weiser collector in the paper's "GC" configuration. It uses the
// same size-segregated block layout as Malloc. Roots are supplied by the
// client (the VM scans its frames and globals); root and heap scanning is
// conservative: any word whose value is the address of an allocated block
// (or an interior pointer into one) keeps that block alive.
type GC struct {
	Heap  *mem.Heap
	Owner int32
	Stats GCStats

	// Roots must call emit for every potential pointer word in the root
	// set. Set by the client before the first collection.
	Roots func(emit func(uint64))

	freeLists  [len(classes)][]mem.Addr
	smallPages []uint64
	largeRuns  map[uint64]int

	threshold int64 // collect when LiveWords-estimate exceeds this
	markStack []mem.Addr
}

// NewGC creates a collector over the heap.
func NewGC(h *mem.Heap, owner int32) *GC {
	return &GC{Heap: h, Owner: owner, largeRuns: make(map[uint64]int), threshold: 4 * mem.PageWords}
}

// Alloc returns a zeroed block with at least words usable words after the
// header, collecting first if the heap has grown past the threshold.
func (g *GC) Alloc(words uint64, region int32) mem.Addr {
	total := words + 1
	if g.Stats.LiveWords >= g.threshold {
		g.Collect()
		// Grow the threshold to roughly twice the surviving heap.
		if t := 2 * g.Stats.LiveWords; t > g.threshold {
			g.threshold = t
		}
	}
	g.Stats.Allocs++
	ci, small := classFor(total)
	if !small {
		pages := int((total + mem.PageWords - 1) / mem.PageWords)
		first := g.Heap.MapPages(pages, g.Owner, kindLarge)
		g.largeRuns[first] = pages
		rounded := int64(pages) * mem.PageWords
		g.Stats.AllocWords += rounded
		g.Stats.LiveWords += rounded
		if g.Stats.LiveWords > g.Stats.MaxLive {
			g.Stats.MaxLive = g.Stats.LiveWords
		}
		a := mem.Addr(first << mem.PageShift)
		g.Heap.Store(a, headerMake(-1, region))
		return a
	}
	g.Stats.AllocWords += int64(classes[ci])
	g.Stats.LiveWords += int64(classes[ci])
	if g.Stats.LiveWords > g.Stats.MaxLive {
		g.Stats.MaxLive = g.Stats.LiveWords
	}
	fl := &g.freeLists[ci]
	if len(*fl) == 0 {
		g.refill(ci)
		fl = &g.freeLists[ci]
	}
	a := (*fl)[len(*fl)-1]
	*fl = (*fl)[:len(*fl)-1]
	g.Heap.Store(a, headerMake(ci, region))
	for i := uint64(1); i < classes[ci]; i++ {
		g.Heap.Store(a.Add(i), 0)
	}
	return a
}

func (g *GC) refill(ci int) {
	first := g.Heap.MapPages(1, g.Owner, int8(ci))
	g.smallPages = append(g.smallPages, first)
	size := classes[ci]
	base := mem.Addr(first << mem.PageShift)
	n := uint64(mem.PageWords) / size
	for i := uint64(0); i < n; i++ {
		g.Heap.Store(base.Add(i*size), 0)
		g.freeLists[ci] = append(g.freeLists[ci], base.Add(i*size))
	}
}

// blockStart resolves a conservative pointer guess to the start of an
// allocated block it points into, or (0, false).
func (g *GC) blockStart(v uint64) (mem.Addr, bool) {
	a := mem.Addr(v)
	if a == mem.Nil || !g.Heap.Mapped(a) {
		return 0, false
	}
	page := a.Page()
	if g.Heap.PageOwner(page) != g.Owner {
		return 0, false
	}
	kind := g.Heap.PageKind(page)
	if kind == kindLarge {
		// Walk back to the run start (runs are short; largeRuns keys are
		// run starts).
		for p := page; ; p-- {
			if _, ok := g.largeRuns[p]; ok {
				blk := mem.Addr(p << mem.PageShift)
				if g.Heap.Load(blk)&hdrAllocBit != 0 {
					return blk, true
				}
				return 0, false
			}
			if p == 0 || g.Heap.PageKind(p) != kindLarge || g.Heap.PageOwner(p) != g.Owner {
				return 0, false
			}
		}
	}
	if int(kind) < 0 || int(kind) >= len(classes) {
		return 0, false
	}
	size := classes[kind]
	blk := mem.Addr(page<<mem.PageShift + (a.Offset()/size)*size)
	if g.Heap.Load(blk)&hdrAllocBit == 0 {
		return 0, false
	}
	return blk, true
}

func (g *GC) mark(v uint64) {
	blk, ok := g.blockStart(v)
	if !ok {
		return
	}
	h := g.Heap.Load(blk)
	if h&hdrMarkBit != 0 {
		return
	}
	g.Heap.Store(blk, h|hdrMarkBit)
	g.Stats.Marked++
	g.markStack = append(g.markStack, blk)
}

func (g *GC) blockWords(blk mem.Addr) uint64 {
	h := g.Heap.Load(blk)
	cls := h & hdrClassMask
	if cls == hdrLargeClass {
		return uint64(g.largeRuns[blk.Page()]) * mem.PageWords
	}
	return classes[cls-1]
}

// Collect runs a full conservative mark-sweep collection.
func (g *GC) Collect() {
	g.Stats.Collections++
	if g.Roots != nil {
		g.Roots(g.mark)
	}
	for len(g.markStack) > 0 {
		blk := g.markStack[len(g.markStack)-1]
		g.markStack = g.markStack[:len(g.markStack)-1]
		n := g.blockWords(blk)
		for i := uint64(1); i < n; i++ {
			g.Stats.ScanWords++
			g.mark(uint64(g.Heap.Load(blk.Add(i))))
		}
	}
	// Sweep small pages.
	for _, page := range g.smallPages {
		size := classes[g.Heap.PageKind(page)]
		base := mem.Addr(page << mem.PageShift)
		n := uint64(mem.PageWords) / size
		for i := uint64(0); i < n; i++ {
			blk := base.Add(i * size)
			h := g.Heap.Load(blk)
			if h&hdrAllocBit == 0 {
				continue
			}
			if h&hdrMarkBit != 0 {
				g.Heap.Store(blk, h&^hdrMarkBit)
				continue
			}
			g.Heap.Store(blk, 0)
			ci := int(h&hdrClassMask) - 1
			g.freeLists[ci] = append(g.freeLists[ci], blk)
			g.Stats.Swept++
			g.Stats.LiveWords -= int64(size)
		}
	}
	// Sweep large runs.
	for first, pages := range g.largeRuns {
		blk := mem.Addr(first << mem.PageShift)
		h := g.Heap.Load(blk)
		if h&hdrAllocBit == 0 {
			continue
		}
		if h&hdrMarkBit != 0 {
			g.Heap.Store(blk, h&^hdrMarkBit)
			continue
		}
		delete(g.largeRuns, first)
		for i := 0; i < pages; i++ {
			g.Heap.UnmapPage(first + uint64(i))
		}
		g.Stats.Swept++
		g.Stats.LiveWords -= int64(pages) * mem.PageWords
	}
}
