package alloc

import (
	"math/rand"
	"testing"

	"rcgo/internal/mem"
)

func TestMallocAllocFree(t *testing.T) {
	h := mem.NewHeap()
	m := NewMalloc(h, 1)
	a := m.Alloc(3, 0)
	if m.BlockWords(a) < 3 {
		t.Fatalf("BlockWords = %d, want >= 3", m.BlockWords(a))
	}
	h.Store(a.Add(1), 42)
	m.Free(a)
	b := m.Alloc(3, 0)
	if b != a {
		t.Errorf("free block not reused: got %#x, want %#x", uint64(b), uint64(a))
	}
	if h.Load(b.Add(1)) != 0 {
		t.Error("recycled block not zeroed")
	}
}

func TestMallocSizeClasses(t *testing.T) {
	h := mem.NewHeap()
	m := NewMalloc(h, 1)
	sizes := []uint64{1, 3, 7, 15, 31, 63, 127, 255, 511}
	var blocks []mem.Addr
	for _, s := range sizes {
		a := m.Alloc(s, 0)
		if got := m.BlockWords(a); got < s {
			t.Errorf("size %d: block words %d", s, got)
		}
		blocks = append(blocks, a)
	}
	for _, a := range blocks {
		m.Free(a)
	}
	if m.Stats.Frees != int64(len(blocks)) {
		t.Errorf("Frees = %d", m.Stats.Frees)
	}
}

func TestMallocLargeBlocks(t *testing.T) {
	h := mem.NewHeap()
	m := NewMalloc(h, 1)
	a := m.Alloc(3*mem.PageWords, 0)
	if m.BlockWords(a) < 3*mem.PageWords {
		t.Fatalf("large block too small: %d", m.BlockWords(a))
	}
	h.Store(a.Add(3*mem.PageWords-1), 9)
	before := h.MappedPages()
	m.Free(a)
	if h.MappedPages() >= before {
		t.Error("large free did not unmap pages")
	}
}

func TestMallocDoubleFreePanics(t *testing.T) {
	h := mem.NewHeap()
	m := NewMalloc(h, 1)
	a := m.Alloc(2, 0)
	m.Free(a)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	m.Free(a)
}

func TestMallocRegionTag(t *testing.T) {
	h := mem.NewHeap()
	m := NewMalloc(h, 1)
	a := m.Alloc(2, 77)
	if HeaderRegion(h.Load(a)) != 77 {
		t.Errorf("region tag = %d, want 77", HeaderRegion(h.Load(a)))
	}
}

func TestQuickMallocChurn(t *testing.T) {
	h := mem.NewHeap()
	m := NewMalloc(h, 1)
	rng := rand.New(rand.NewSource(3))
	type obj struct {
		a     mem.Addr
		size  uint64
		stamp uint64
	}
	var live []obj
	for i := 0; i < 5000; i++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			k := rng.Intn(len(live))
			o := live[k]
			// Verify stamp integrity before free: no other block
			// overwrote us.
			if h.Load(o.a.Add(o.size)) != o.stamp {
				t.Fatalf("iter %d: block %#x corrupted", i, uint64(o.a))
			}
			m.Free(o.a)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			size := uint64(1 + rng.Intn(700))
			a := m.Alloc(size, 0)
			stamp := rng.Uint64()
			h.Store(a.Add(size), stamp) // last usable word
			live = append(live, obj{a, size, stamp})
		}
	}
	for _, o := range live {
		if h.Load(o.a.Add(o.size)) != o.stamp {
			t.Fatalf("final: block %#x corrupted", uint64(o.a))
		}
	}
}

// gcWorld is a root set for GC tests: a slice of words scanned
// conservatively.
type gcWorld struct{ roots []uint64 }

func (w *gcWorld) scan(emit func(uint64)) {
	for _, v := range w.roots {
		emit(v)
	}
}

func TestGCKeepsReachable(t *testing.T) {
	h := mem.NewHeap()
	g := NewGC(h, 1)
	w := &gcWorld{}
	g.Roots = w.scan

	a := g.Alloc(4, 0)
	h.Store(a.Add(1), 0xdeadbeef)
	w.roots = append(w.roots, uint64(a))
	// b is reachable only through a.
	b := g.Alloc(4, 0)
	h.Store(a.Add(2), uint64(b))
	h.Store(b.Add(1), 0xfeedface)
	// c is garbage.
	c := g.Alloc(4, 0)
	h.Store(c.Add(1), 0x1111)

	g.Collect()
	if h.Load(a.Add(1)) != 0xdeadbeef || h.Load(b.Add(1)) != 0xfeedface {
		t.Fatal("collector reclaimed reachable data")
	}
	if h.Load(c)&hdrAllocBit != 0 {
		t.Error("collector kept garbage block")
	}
	if g.Stats.Swept == 0 {
		t.Error("nothing swept")
	}
}

func TestGCInteriorPointers(t *testing.T) {
	h := mem.NewHeap()
	g := NewGC(h, 1)
	w := &gcWorld{}
	g.Roots = w.scan
	a := g.Alloc(30, 0)
	h.Store(a.Add(1), 7)
	// Only an interior pointer survives in the roots.
	w.roots = []uint64{uint64(a.Add(15))}
	g.Collect()
	if h.Load(a.Add(1)) != 7 {
		t.Fatal("interior pointer did not keep block alive")
	}
}

func TestGCLargeObjects(t *testing.T) {
	h := mem.NewHeap()
	g := NewGC(h, 1)
	w := &gcWorld{}
	g.Roots = w.scan
	a := g.Alloc(2*mem.PageWords+10, 0)
	h.Store(a.Add(2*mem.PageWords), 5)
	w.roots = []uint64{uint64(a.Add(2 * mem.PageWords))} // interior, 3rd page
	g.Collect()
	if h.Load(a.Add(2*mem.PageWords)) != 5 {
		t.Fatal("large object reclaimed while reachable")
	}
	w.roots = nil
	g.Collect()
	if h.Mapped(a) {
		t.Fatal("unreachable large object not reclaimed")
	}
}

func TestGCAutoTrigger(t *testing.T) {
	h := mem.NewHeap()
	g := NewGC(h, 1)
	w := &gcWorld{}
	g.Roots = w.scan
	// Allocate far past the initial threshold with no roots: collections
	// must happen and memory must stay bounded.
	for i := 0; i < 20000; i++ {
		g.Alloc(8, 0)
	}
	if g.Stats.Collections == 0 {
		t.Fatal("no automatic collections")
	}
	if h.MappedPages() > 200 {
		t.Errorf("heap grew to %d pages despite garbage", h.MappedPages())
	}
}

func TestGCConservativeNonPointer(t *testing.T) {
	h := mem.NewHeap()
	g := NewGC(h, 1)
	w := &gcWorld{roots: []uint64{12345678901234}} // not a heap address
	g.Roots = w.scan
	g.Collect() // must not crash
}

func TestQuickGCReachabilityInvariant(t *testing.T) {
	h := mem.NewHeap()
	g := NewGC(h, 1)
	w := &gcWorld{}
	g.Roots = w.scan
	rng := rand.New(rand.NewSource(9))
	type node struct {
		a     mem.Addr
		stamp uint64
		slots uint64 // next free link slot (2..4)
	}
	var reach []*node // all transitively reachable from roots
	for i := 0; i < 3000; i++ {
		a := g.Alloc(6, 0)
		stamp := rng.Uint64()
		h.Store(a.Add(1), stamp)
		switch rng.Intn(3) {
		case 0: // new root
			w.roots = append(w.roots, uint64(a))
			reach = append(reach, &node{a: a, stamp: stamp, slots: 2})
		case 1: // linked from a reachable node with a free slot
			linked := false
			for try := 0; try < 4 && len(reach) > 0; try++ {
				p := reach[rng.Intn(len(reach))]
				if p.slots <= 4 {
					h.Store(p.a.Add(p.slots), uint64(a))
					p.slots++
					linked = true
					break
				}
			}
			if linked {
				reach = append(reach, &node{a: a, stamp: stamp, slots: 2})
			}
		default: // garbage
		}
	}
	g.Collect()
	for _, n := range reach {
		if h.Load(n.a.Add(1)) != n.stamp {
			t.Fatalf("reachable node %#x reclaimed or corrupted", uint64(n.a))
		}
	}
}

func TestEmuMallocLifecycle(t *testing.T) {
	h := mem.NewHeap()
	e := NewEmuMalloc(h, 1)
	r := e.NewRegion()
	a := e.Alloc(r, 3, 1, 123)
	if h.Load(a-1) != 123 {
		t.Error("type header not written")
	}
	if e.RegionIDOf(a) != 1 || e.Region(e.RegionIDOf(a)) != r {
		t.Error("region tag lookup failed")
	}
	frees := e.M.Stats.Frees
	e.DeleteRegion(r)
	if e.M.Stats.Frees != frees+1 {
		t.Error("emulated delete did not free object-by-object")
	}
}

func TestEmuGCDeleteIsNoopOnObjects(t *testing.T) {
	h := mem.NewHeap()
	e := NewEmuGC(h, 1)
	w := &gcWorld{}
	e.G.Roots = w.scan
	r := e.NewRegion()
	a := e.Alloc(r, 3, 1, 9)
	w.roots = []uint64{uint64(a)}
	e.DeleteRegion(r)
	e.G.Collect()
	if !h.Mapped(a) || h.Load(a-1) != 9 {
		t.Fatal("GC emulation reclaimed a reachable object at deleteregion")
	}
}

func TestEmuDoubleDeletePanics(t *testing.T) {
	h := mem.NewHeap()
	e := NewEmuMalloc(h, 1)
	r := e.NewRegion()
	e.DeleteRegion(r)
	defer func() {
		if recover() == nil {
			t.Error("double delete did not panic")
		}
	}()
	e.DeleteRegion(r)
}

func TestEmuSubregions(t *testing.T) {
	h := mem.NewHeap()
	e := NewEmuMalloc(h, 1)
	p := e.NewRegion()
	c := e.NewSubregion(p)
	if c.parent != p {
		t.Error("subregion parent not recorded")
	}
	e.Alloc(c, 2, 1, 1)
	e.DeleteRegion(c)
	e.DeleteRegion(p)
}
