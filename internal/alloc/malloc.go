// Package alloc provides the baseline memory managers the paper compares
// against: a segregated free-list malloc/free allocator (standing in for
// Doug Lea's malloc, the paper's "lea" column) and a conservative
// mark-sweep garbage collector (standing in for the Boehm-Weiser collector,
// the "GC" column), plus the region-emulation layer that runs region-based
// programs on top of either (allocating each object individually and, for
// malloc, freeing object-by-object on deleteregion).
//
// Both allocators manage blocks on the same simulated heap as the region
// runtime. Small blocks live on size-segregated pages (every page holds
// blocks of one size class); large blocks get dedicated contiguous page
// runs. Every block starts with a header word encoding its size class,
// allocation state, mark bit, and an emulation region tag.
package alloc

import (
	"fmt"

	"rcgo/internal/mem"
)

// Size classes in words. A block of class i holds classes[i] words
// including the header. Objects needing more than the largest class get a
// dedicated page run.
var classes = [...]uint64{4, 8, 16, 32, 64, 128, 256, 512}

// Page kind tags. Small pages use the class index (0..len(classes)-1);
// every page of a large run uses kindLarge, and the allocator's largeRuns
// map resolves interior pointers to the run start.
const kindLarge int8 = 100

// Block header bit layout.
const (
	hdrClassMask  = 0xffff // class index + 1; 0xffff = large
	hdrLargeClass = 0xffff
	hdrAllocBit   = 1 << 16
	hdrMarkBit    = 1 << 17
	hdrRegionShl  = 32 // high 32 bits: emulation region tag
)

func classFor(words uint64) (int, bool) {
	for i, c := range classes {
		if words <= c {
			return i, true
		}
	}
	return -1, false
}

// HeaderRegion extracts the emulation region tag from a block header.
func HeaderRegion(h uint64) int32 { return int32(h >> hdrRegionShl) }

// headerMake builds a block header.
func headerMake(classIdx int, region int32) uint64 {
	var c uint64
	if classIdx < 0 {
		c = hdrLargeClass
	} else {
		c = uint64(classIdx + 1)
	}
	return c | hdrAllocBit | uint64(uint32(region))<<hdrRegionShl
}

// MallocStats counts allocator activity.
type MallocStats struct {
	Allocs     int64
	Frees      int64
	AllocWords int64
	LiveWords  int64
	MaxLive    int64
}

// Malloc is a segregated free-list allocator with per-object free,
// standing in for the paper's "lea" configuration.
type Malloc struct {
	Heap  *mem.Heap
	Owner int32
	Stats MallocStats

	freeLists [len(classes)][]mem.Addr
	largeRuns map[uint64]int // first page -> page count, for Free
}

// NewMalloc creates a malloc allocator over the heap, tagging its pages
// with owner.
func NewMalloc(h *mem.Heap, owner int32) *Malloc {
	return &Malloc{Heap: h, Owner: owner, largeRuns: make(map[uint64]int)}
}

// Alloc returns a block with at least words usable words after the header.
// The returned address is the block start; the header occupies word 0. The
// block body (words 1..) is zeroed. The region tag records which emulated
// region the object belongs to (0 when unused).
func (m *Malloc) Alloc(words uint64, region int32) mem.Addr {
	total := words + 1
	m.Stats.Allocs++
	m.Stats.AllocWords += int64(total)
	m.Stats.LiveWords += int64(total)
	if m.Stats.LiveWords > m.Stats.MaxLive {
		m.Stats.MaxLive = m.Stats.LiveWords
	}
	ci, small := classFor(total)
	if !small {
		pages := int((total + mem.PageWords - 1) / mem.PageWords)
		first := m.Heap.MapPages(pages, m.Owner, kindLarge)
		m.largeRuns[first] = pages
		// Account large blocks by their whole page run.
		rounded := int64(pages)*mem.PageWords - int64(total)
		m.Stats.AllocWords += rounded
		m.Stats.LiveWords += rounded
		if m.Stats.LiveWords > m.Stats.MaxLive {
			m.Stats.MaxLive = m.Stats.LiveWords
		}
		a := mem.Addr(first << mem.PageShift)
		m.Heap.Store(a, headerMake(-1, region))
		return a
	}
	fl := &m.freeLists[ci]
	if len(*fl) == 0 {
		m.refill(ci)
		fl = &m.freeLists[ci]
	}
	a := (*fl)[len(*fl)-1]
	*fl = (*fl)[:len(*fl)-1]
	m.Heap.Store(a, headerMake(ci, region))
	for i := uint64(1); i < classes[ci]; i++ {
		m.Heap.Store(a.Add(i), 0)
	}
	return a
}

func (m *Malloc) refill(ci int) {
	first := m.Heap.MapPages(1, m.Owner, int8(ci))
	size := classes[ci]
	base := mem.Addr(first << mem.PageShift)
	n := uint64(mem.PageWords) / size
	for i := uint64(0); i < n; i++ {
		m.freeLists[ci] = append(m.freeLists[ci], base.Add(i*size))
	}
}

// Free releases a block returned by Alloc.
func (m *Malloc) Free(block mem.Addr) {
	h := m.Heap.Load(block)
	if h&hdrAllocBit == 0 {
		panic(fmt.Sprintf("alloc: double free of %#x", uint64(block)))
	}
	cls := h & hdrClassMask
	m.Stats.Frees++
	if cls == hdrLargeClass {
		first := block.Page()
		pages, ok := m.largeRuns[first]
		if !ok {
			panic(fmt.Sprintf("alloc: free of unknown large block %#x", uint64(block)))
		}
		delete(m.largeRuns, first)
		for i := 0; i < pages; i++ {
			m.Heap.UnmapPage(first + uint64(i))
		}
		m.Stats.LiveWords -= int64(pages) * mem.PageWords // approximation: run size
		return
	}
	ci := int(cls - 1)
	m.Heap.Store(block, 0) // clear header: not allocated
	m.Stats.LiveWords -= int64(classes[ci])
	m.freeLists[ci] = append(m.freeLists[ci], block)
}

// BlockWords returns the usable words of a block (excluding header).
func (m *Malloc) BlockWords(block mem.Addr) uint64 {
	h := m.Heap.Load(block)
	cls := h & hdrClassMask
	if cls == hdrLargeClass {
		return uint64(m.largeRuns[block.Page()])*mem.PageWords - 1
	}
	return classes[cls-1] - 1
}
