package alloc

import (
	"fmt"

	"rcgo/internal/mem"
)

// Emu is the region-emulation library of the paper's evaluation: for
// benchmarks that were region-based, the "lea" column uses "a simple
// region-emulation library that uses malloc and free to allocate and free
// each individual object", and the "GC" column "uses the same code, except
// that calls to malloc are replaced by calls to garbage collected
// allocation and calls to free are removed".
//
// Emu provides the region API over either backend. It performs no safety
// checks (the emulation is unsafe, as in the paper) and maintains no
// reference counts. Object layout matches the region runtime: the returned
// address points at the body, with the type header one word before it, so
// compiled code is oblivious to the backend. One extra allocator header
// word precedes the type header.
type Emu struct {
	Heap *mem.Heap
	// Exactly one of M, G is set.
	M *Malloc
	G *GC

	regions []*EmuRegion
}

// EmuRegion is an emulated region: a list of individually allocated
// objects (tracked only in malloc mode, where deleteregion frees them).
type EmuRegion struct {
	id      int32
	objects []mem.Addr // block starts; malloc mode only
	parent  *EmuRegion
	deleted bool
}

// NewEmuMalloc creates the malloc/free-backed emulation ("lea").
func NewEmuMalloc(h *mem.Heap, owner int32) *Emu {
	return &Emu{Heap: h, M: NewMalloc(h, owner)}
}

// NewEmuGC creates the GC-backed emulation ("GC").
func NewEmuGC(h *mem.Heap, owner int32) *Emu {
	return &Emu{Heap: h, G: NewGC(h, owner)}
}

// NewRegion creates an emulated top-level region.
func (e *Emu) NewRegion() *EmuRegion { return e.NewSubregion(nil) }

// NewSubregion creates an emulated subregion.
func (e *Emu) NewSubregion(parent *EmuRegion) *EmuRegion {
	r := &EmuRegion{id: int32(len(e.regions)) + 1, parent: parent}
	e.regions = append(e.regions, r)
	return r
}

// Alloc allocates count objects of bodyWords words each in the emulated
// region, writing the given type header word, and returns the body address.
func (e *Emu) Alloc(r *EmuRegion, bodyWords, count uint64, typeHeader uint64) mem.Addr {
	if r.deleted {
		panic(fmt.Sprintf("alloc: emulated allocation in deleted region %d", r.id))
	}
	words := bodyWords*count + 1 // + type header; allocator adds its own header
	var blk mem.Addr
	if e.M != nil {
		blk = e.M.Alloc(words, r.id)
		r.objects = append(r.objects, blk)
	} else {
		blk = e.G.Alloc(words, r.id)
	}
	e.Heap.Store(blk.Add(1), typeHeader)
	return blk.Add(2)
}

// RegionIDOf returns the emulated region tag of an object body address.
func (e *Emu) RegionIDOf(body mem.Addr) int32 {
	return HeaderRegion(e.Heap.Load(body - 2))
}

// RegionIDOfAny resolves any pointer — including interior pointers — to
// its object's emulated region tag, mirroring regionof()'s page-map
// behaviour in the real runtime. Returns 0 (the traditional tag) for nil
// or foreign addresses.
func (e *Emu) RegionIDOfAny(a mem.Addr) int32 {
	var owner int32
	var runs map[uint64]int
	if e.M != nil {
		owner, runs = e.M.Owner, e.M.largeRuns
	} else {
		owner, runs = e.G.Owner, e.G.largeRuns
	}
	if a == mem.Nil || !e.Heap.Mapped(a) || e.Heap.PageOwner(a.Page()) != owner {
		return 0
	}
	kind := e.Heap.PageKind(a.Page())
	var blk mem.Addr
	switch {
	case kind == kindLarge:
		for p := a.Page(); ; p-- {
			if _, ok := runs[p]; ok {
				blk = mem.Addr(p << mem.PageShift)
				break
			}
			if p == 0 || e.Heap.PageKind(p) != kindLarge {
				return 0
			}
		}
	case int(kind) >= 0 && int(kind) < len(classes):
		size := classes[kind]
		blk = mem.Addr(a.Page()<<mem.PageShift + (a.Offset()/size)*size)
	default:
		return 0
	}
	h := e.Heap.Load(blk)
	if h&hdrAllocBit == 0 {
		return 0
	}
	return HeaderRegion(h)
}

// Region returns the emulated region with the given tag (1-based).
func (e *Emu) Region(id int32) *EmuRegion {
	if id <= 0 || int(id) > len(e.regions) {
		return nil
	}
	return e.regions[id-1]
}

// DeleteRegion deletes an emulated region: under malloc every object is
// freed individually (the paper's lea column); under GC it is a no-op on
// the objects, which the collector reclaims once unreachable.
func (e *Emu) DeleteRegion(r *EmuRegion) {
	if r.deleted {
		panic(fmt.Sprintf("alloc: emulated double delete of region %d", r.id))
	}
	r.deleted = true
	if e.M != nil {
		for _, blk := range r.objects {
			e.M.Free(blk)
		}
	}
	r.objects = nil
}
