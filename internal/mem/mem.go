// Package mem provides the simulated word-addressed heap that underlies
// every allocator in this repository.
//
// The paper's RC runtime allocates memory in blocks that are multiples of
// an 8 KiB page, aligned on page boundaries, and keeps a map from pages to
// regions so that regionof(p) is a shift and a table lookup. We reproduce
// that structure exactly, but over a simulated address space: addresses are
// 64-bit word indices, and each page holds PageWords 64-bit words.
//
// Address 0 is the null pointer and is never backed by a page.
package mem

import (
	"fmt"
)

const (
	// PageShift is log2 of the page size in words. 8 KiB pages of 8-byte
	// words gives 1024 words per page, so PageShift is 10.
	PageShift = 10
	// PageWords is the number of 64-bit words in a page.
	PageWords = 1 << PageShift
	// PageMask extracts the offset-within-page bits of an address.
	PageMask = PageWords - 1
)

// Addr is a simulated heap address: an index into the word-addressed
// address space. Addr 0 is the null pointer.
type Addr uint64

// Nil is the null address.
const Nil Addr = 0

// Page returns the page number containing a.
func (a Addr) Page() uint64 { return uint64(a) >> PageShift }

// Offset returns the word offset of a within its page.
func (a Addr) Offset() uint64 { return uint64(a) & PageMask }

// Add returns the address n words past a.
func (a Addr) Add(n uint64) Addr { return a + Addr(n) }

// Heap is a paged, word-addressed simulated memory. Pages are allocated
// on demand and tagged with an integer owner (an allocator-defined ID; the
// region runtime uses region IDs, the malloc and GC allocators use a single
// owner). Page 0 is reserved so that address 0 stays invalid.
type Heap struct {
	pages []*pageInfo // index = page number; nil entries are unmapped
	free  []uint64    // recycled page numbers
	// spare holds pageInfo structs of unmapped pages for reuse, so the
	// region runtime's rapid map/unmap churn does not allocate.
	spare []*pageInfo
	// Live counts for accounting.
	mappedPages int64
}

type pageInfo struct {
	words [PageWords]uint64
	owner int32
	// kind is an allocator-defined tag (e.g. region "normal" vs
	// "pointer-free" pages).
	kind int8
}

// NewHeap returns an empty heap. The zeroth page is reserved.
func NewHeap() *Heap {
	return &Heap{pages: make([]*pageInfo, 1, 64)}
}

// MapPages maps n fresh contiguous... pages need not be contiguous for the
// page table design, but contiguous runs make multi-page objects simple, so
// MapPages returns the first page number of a run of n contiguous pages all
// owned by owner with the given kind tag.
func (h *Heap) MapPages(n int, owner int32, kind int8) uint64 {
	if n <= 0 {
		panic("mem: MapPages with non-positive count")
	}
	newPage := func(owner int32, kind int8) *pageInfo {
		if k := len(h.spare); k > 0 {
			p := h.spare[k-1]
			h.spare = h.spare[:k-1]
			p.words = [PageWords]uint64{}
			p.owner = owner
			p.kind = kind
			return p
		}
		return &pageInfo{owner: owner, kind: kind}
	}
	var first uint64
	if n == 1 && len(h.free) > 0 {
		first = h.free[len(h.free)-1]
		h.free = h.free[:len(h.free)-1]
		h.pages[first] = newPage(owner, kind)
	} else {
		first = uint64(len(h.pages))
		for i := 0; i < n; i++ {
			h.pages = append(h.pages, newPage(owner, kind))
		}
	}
	h.mappedPages += int64(n)
	return first
}

// UnmapPage releases a page. Its addresses become invalid.
func (h *Heap) UnmapPage(page uint64) {
	if page == 0 || page >= uint64(len(h.pages)) || h.pages[page] == nil {
		panic(fmt.Sprintf("mem: unmap of invalid page %d", page))
	}
	if len(h.spare) < 64 {
		h.spare = append(h.spare, h.pages[page])
	}
	h.pages[page] = nil
	h.free = append(h.free, page)
	h.mappedPages--
}

// Owner returns the owner tag of the page containing a, or -1 if a is nil
// or unmapped.
func (h *Heap) Owner(a Addr) int32 {
	p := a.Page()
	if a == Nil || p >= uint64(len(h.pages)) || h.pages[p] == nil {
		return -1
	}
	return h.pages[p].owner
}

// PageOwner returns the owner tag of a page, or -1 if unmapped.
func (h *Heap) PageOwner(page uint64) int32 {
	if page >= uint64(len(h.pages)) || h.pages[page] == nil {
		return -1
	}
	return h.pages[page].owner
}

// PageKind returns the kind tag of a page, or -1 if unmapped.
func (h *Heap) PageKind(page uint64) int8 {
	if page >= uint64(len(h.pages)) || h.pages[page] == nil {
		return -1
	}
	return h.pages[page].kind
}

// SetOwner retags the page containing a. Used by allocators that recycle
// pages between owners without unmapping.
func (h *Heap) SetOwner(page uint64, owner int32) {
	if page >= uint64(len(h.pages)) || h.pages[page] == nil {
		panic(fmt.Sprintf("mem: SetOwner of unmapped page %d", page))
	}
	h.pages[page].owner = owner
}

// Mapped reports whether the address lies on a mapped page.
func (h *Heap) Mapped(a Addr) bool {
	p := a.Page()
	return a != Nil && p < uint64(len(h.pages)) && h.pages[p] != nil
}

// Load reads the word at a. Panics on nil or unmapped addresses: in the
// simulated machine that is a segmentation fault, and it indicates a bug in
// an allocator or in compiled code, never a user-level condition.
func (h *Heap) Load(a Addr) uint64 {
	p := a.Page()
	if a == Nil || p >= uint64(len(h.pages)) || h.pages[p] == nil {
		panic(SegFault{Addr: a, Op: "load"})
	}
	return h.pages[p].words[a.Offset()]
}

// Store writes the word at a. Panics on nil or unmapped addresses.
func (h *Heap) Store(a Addr, v uint64) {
	p := a.Page()
	if a == Nil || p >= uint64(len(h.pages)) || h.pages[p] == nil {
		panic(SegFault{Addr: a, Op: "store"})
	}
	h.pages[p].words[a.Offset()] = v
}

// PageWordsSlice returns the backing word slice of a page for bulk scans
// (the region delete-time unscan and the GC mark phase). The caller must
// not retain the slice across an UnmapPage.
func (h *Heap) PageWordsSlice(page uint64) []uint64 {
	if page >= uint64(len(h.pages)) || h.pages[page] == nil {
		panic(fmt.Sprintf("mem: PageWordsSlice of unmapped page %d", page))
	}
	return h.pages[page].words[:]
}

// NumPages returns the size of the page table (including unmapped slots).
func (h *Heap) NumPages() uint64 { return uint64(len(h.pages)) }

// MappedPages returns the number of currently mapped pages.
func (h *Heap) MappedPages() int64 { return h.mappedPages }

// MappedBytes returns the number of currently mapped bytes (8 per word).
func (h *Heap) MappedBytes() int64 { return h.mappedPages * PageWords * 8 }

// SegFault is the panic value raised by access to invalid addresses.
type SegFault struct {
	Addr Addr
	Op   string
}

func (s SegFault) Error() string {
	return fmt.Sprintf("mem: segmentation fault: %s at %#x", s.Op, uint64(s.Addr))
}
