package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddrArithmetic(t *testing.T) {
	a := Addr(3*PageWords + 17)
	if a.Page() != 3 {
		t.Errorf("Page() = %d, want 3", a.Page())
	}
	if a.Offset() != 17 {
		t.Errorf("Offset() = %d, want 17", a.Offset())
	}
	if a.Add(5).Offset() != 22 {
		t.Errorf("Add(5).Offset() = %d, want 22", a.Add(5).Offset())
	}
}

func TestNilAddr(t *testing.T) {
	h := NewHeap()
	if h.Mapped(Nil) {
		t.Error("nil address reported as mapped")
	}
	if h.Owner(Nil) != -1 {
		t.Errorf("Owner(Nil) = %d, want -1", h.Owner(Nil))
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("Load(Nil) did not panic")
		} else if _, ok := r.(SegFault); !ok {
			t.Errorf("Load(Nil) panicked with %v, want SegFault", r)
		}
	}()
	h.Load(Nil)
}

func TestMapLoadStore(t *testing.T) {
	h := NewHeap()
	p := h.MapPages(1, 7, 2)
	if p == 0 {
		t.Fatal("MapPages returned reserved page 0")
	}
	a := Addr(p << PageShift)
	h.Store(a, 42)
	h.Store(a.Add(PageWords-1), 99)
	if got := h.Load(a); got != 42 {
		t.Errorf("Load = %d, want 42", got)
	}
	if got := h.Load(a.Add(PageWords - 1)); got != 99 {
		t.Errorf("Load = %d, want 99", got)
	}
	if h.Owner(a) != 7 {
		t.Errorf("Owner = %d, want 7", h.Owner(a))
	}
	if h.PageKind(p) != 2 {
		t.Errorf("PageKind = %d, want 2", h.PageKind(p))
	}
}

func TestContiguousRun(t *testing.T) {
	h := NewHeap()
	first := h.MapPages(4, 1, 0)
	for i := uint64(0); i < 4; i++ {
		if h.PageOwner(first+i) != 1 {
			t.Errorf("page %d of run not owned", i)
		}
	}
	// A multi-page object spans the run.
	base := Addr(first << PageShift)
	for i := uint64(0); i < 4*PageWords; i += 512 {
		h.Store(base.Add(i), i)
	}
	for i := uint64(0); i < 4*PageWords; i += 512 {
		if h.Load(base.Add(i)) != i {
			t.Errorf("word %d corrupted", i)
		}
	}
}

func TestUnmapAndRecycle(t *testing.T) {
	h := NewHeap()
	p := h.MapPages(1, 1, 0)
	a := Addr(p << PageShift)
	h.Store(a, 5)
	h.UnmapPage(p)
	if h.Mapped(a) {
		t.Error("address mapped after unmap")
	}
	if h.MappedPages() != 0 {
		t.Errorf("MappedPages = %d, want 0", h.MappedPages())
	}
	q := h.MapPages(1, 2, 0)
	if q != p {
		t.Errorf("recycled page = %d, want %d", q, p)
	}
	if h.PageOwner(q) != 2 {
		t.Errorf("recycled owner = %d, want 2", h.PageOwner(q))
	}
}

func TestUnmapInvalidPanics(t *testing.T) {
	h := NewHeap()
	for _, page := range []uint64{0, 999} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("UnmapPage(%d) did not panic", page)
				}
			}()
			h.UnmapPage(page)
		}()
	}
}

func TestSetOwner(t *testing.T) {
	h := NewHeap()
	p := h.MapPages(1, 1, 0)
	h.SetOwner(p, 9)
	if h.PageOwner(p) != 9 {
		t.Errorf("owner = %d, want 9", h.PageOwner(p))
	}
}

func TestStoreUnmappedPanics(t *testing.T) {
	h := NewHeap()
	p := h.MapPages(1, 1, 0)
	h.UnmapPage(p)
	defer func() {
		if recover() == nil {
			t.Error("Store to unmapped page did not panic")
		}
	}()
	h.Store(Addr(p<<PageShift), 1)
}

func TestMappedBytes(t *testing.T) {
	h := NewHeap()
	h.MapPages(3, 1, 0)
	if got := h.MappedBytes(); got != 3*PageWords*8 {
		t.Errorf("MappedBytes = %d, want %d", got, 3*PageWords*8)
	}
}

func TestSegFaultError(t *testing.T) {
	e := SegFault{Addr: 16, Op: "load"}
	if e.Error() == "" {
		t.Error("empty error string")
	}
}

// Property: a store to any mapped address is read back exactly, and never
// disturbs a different mapped address.
func TestQuickStoreIsolation(t *testing.T) {
	h := NewHeap()
	const npages = 8
	first := h.MapPages(npages, 1, 0)
	base := Addr(first << PageShift)
	size := uint64(npages * PageWords)
	shadow := make(map[Addr]uint64)
	f := func(off uint64, v uint64) bool {
		a := base.Add(off % size)
		h.Store(a, v)
		shadow[a] = v
		// Verify a random sample of previously stored addresses.
		for sa, sv := range shadow {
			if h.Load(sa) != sv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: page ownership is stable across unrelated map/unmap traffic.
func TestQuickOwnershipStability(t *testing.T) {
	h := NewHeap()
	rng := rand.New(rand.NewSource(1))
	type rec struct {
		page  uint64
		owner int32
	}
	var live []rec
	for i := 0; i < 2000; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			h.UnmapPage(live[k].page)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			owner := int32(rng.Intn(100))
			p := h.MapPages(1, owner, 0)
			live = append(live, rec{p, owner})
		}
		for _, r := range live {
			if h.PageOwner(r.page) != r.owner {
				t.Fatalf("iteration %d: page %d owner = %d, want %d",
					i, r.page, h.PageOwner(r.page), r.owner)
			}
		}
	}
	if h.MappedPages() != int64(len(live)) {
		t.Errorf("MappedPages = %d, want %d", h.MappedPages(), len(live))
	}
}
