package failpoint

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by a site firing ActionError (unless
// the rule overrides Err). Runtime operations that surface it wrap it,
// so callers detect induced failures with errors.Is.
var ErrInjected = errors.New("failpoint: injected failure")

// Action is what a firing site does.
type Action int

const (
	// ActionError makes Eval return an error (the rule's Err, or
	// ErrInjected); the call site unwinds as if the operation failed.
	ActionError Action = iota
	// ActionDelay sleeps the rule's Delay, widening the race window the
	// site sits in.
	ActionDelay
	// ActionYield calls runtime.Gosched the rule's Yields times (at
	// least once), perturbing the scheduler at the site.
	ActionYield
	// ActionHook calls the rule's Hook function — test-only, for
	// deterministic interleaving control (block the site on a channel,
	// signal another goroutine, ...).
	ActionHook
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionError:
		return "error"
	case ActionDelay:
		return "delay"
	case ActionYield:
		return "yield"
	case ActionHook:
		return "hook"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Rule arms a site: what to do when it fires and how often.
type Rule struct {
	Action Action
	// Num/Den set the firing rate: evaluation n fires iff
	// splitmix64(seed, n) mod Den < Num. Den <= 1 means fire always.
	Num, Den uint64
	// Seed makes the firing pattern reproducible; it is mixed with a
	// hash of the site name so one chaos seed drives all sites without
	// correlating them.
	Seed uint64
	// Delay is the ActionDelay sleep (default 100µs).
	Delay time.Duration
	// Yields is the ActionYield Gosched count (default 1).
	Yields int
	// Err overrides ErrInjected for ActionError. It is returned wrapped
	// in ErrInjected so errors.Is(err, ErrInjected) always detects an
	// induced failure.
	Err error
	// Hook is the ActionHook callback.
	Hook func()
}

// rule is the armed form of a Rule. The decision counter lives here,
// not on the site: every Enable starts a fresh deterministic firing
// stream, so re-arming with the same seed replays the same decisions
// (the site's eval/fire counters stay cumulative for coverage).
type rule struct {
	Rule
	seed uint64 // Seed ^ hash(site name)
	n    atomic.Uint64
}

// Site is one named injection point. Sites are created once (typically
// in package init of the instrumented runtime) and armed/disarmed any
// number of times. All methods are safe for concurrent use.
type Site struct {
	name  string
	armed atomic.Pointer[rule]
	evals atomic.Uint64 // evaluations while armed
	fires atomic.Uint64 // evaluations whose action triggered
}

// registry of all sites, keyed by name. New is idempotent per name so
// package-level site variables and by-name lookups agree.
var (
	regMu sync.Mutex
	reg   = make(map[string]*Site)
)

// New registers (or returns the existing) site with the given name.
func New(name string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := reg[name]; ok {
		return s
	}
	s := &Site{name: name}
	reg[name] = s
	return s
}

// Lookup returns the site with the given name, or nil.
func Lookup(name string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	return reg[name]
}

// Names returns the names of every registered site, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Enable arms the named site with r, replacing any previous rule.
// It returns an error if no such site is registered.
func Enable(name string, r Rule) error {
	s := Lookup(name)
	if s == nil {
		return fmt.Errorf("failpoint: no site %q", name)
	}
	s.Enable(r)
	return nil
}

// Disable disarms the named site. Unknown names are a no-op.
func Disable(name string) {
	if s := Lookup(name); s != nil {
		s.Disable()
	}
}

// DisableAll disarms every registered site.
func DisableAll() {
	regMu.Lock()
	sites := make([]*Site, 0, len(reg))
	for _, s := range reg {
		sites = append(sites, s)
	}
	regMu.Unlock()
	for _, s := range sites {
		s.Disable()
	}
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Enable arms the site with r.
func (s *Site) Enable(r Rule) {
	if r.Den <= 1 {
		r.Num, r.Den = 1, 1
	}
	if r.Delay <= 0 {
		r.Delay = 100 * time.Microsecond
	}
	if r.Yields <= 0 {
		r.Yields = 1
	}
	s.armed.Store(&rule{Rule: r, seed: r.Seed ^ hashName(s.name)})
}

// Disable disarms the site. Evaluation and fire counters are kept (they
// are cumulative, like the arena's op counters) so coverage can be
// reported after a run has disarmed everything.
func (s *Site) Disable() { s.armed.Store(nil) }

// Armed reports whether the site currently has a rule.
func (s *Site) Armed() bool { return s.armed.Load() != nil }

// Eval is the call made at the injection point. Disarmed (the steady
// state) it is one atomic load and a branch. Armed, it decides
// deterministically whether evaluation n fires and applies the rule's
// action; only ActionError produces a non-nil result.
func (s *Site) Eval() error {
	r := s.armed.Load()
	if r == nil {
		return nil
	}
	return s.evalSlow(r, true)
}

// Perturb is Eval for call sites that cannot unwind: ActionDelay,
// ActionYield and ActionHook apply as usual, but a firing ActionError
// only counts as a fire and injects nothing. Used on void lifecycle
// edges (DeleteDeferred's dying window) where an error has no channel
// to the caller.
func (s *Site) Perturb() {
	r := s.armed.Load()
	if r == nil {
		return
	}
	s.evalSlow(r, false)
}

func (s *Site) evalSlow(r *rule, canErr bool) error {
	s.evals.Add(1)
	if n := r.n.Add(1); r.Den > 1 && splitmix64(r.seed, n)%r.Den >= r.Num {
		return nil
	}
	s.fires.Add(1)
	switch r.Action {
	case ActionError:
		if !canErr {
			return nil
		}
		if r.Err != nil {
			return fmt.Errorf("%w: %w at %s", ErrInjected, r.Err, s.name)
		}
		return fmt.Errorf("%w at %s", ErrInjected, s.name)
	case ActionDelay:
		time.Sleep(r.Delay)
	case ActionYield:
		for i := 0; i < r.Yields; i++ {
			runtime.Gosched()
		}
	case ActionHook:
		if r.Hook != nil {
			r.Hook()
		}
	}
	return nil
}

// Stats is a snapshot of one site's counters.
type Stats struct {
	Name  string `json:"name"`
	Armed bool   `json:"armed"`
	// Evals counts evaluations made while the site was armed (disarmed
	// evaluations are not counted — they are the zero-cost fast path).
	Evals uint64 `json:"evals"`
	// Fires counts evaluations whose action triggered.
	Fires uint64 `json:"fires"`
}

// Snapshot returns the counters of every registered site, sorted by
// name.
func Snapshot() []Stats {
	regMu.Lock()
	sites := make([]*Site, 0, len(reg))
	for _, s := range reg {
		sites = append(sites, s)
	}
	regMu.Unlock()
	out := make([]Stats, 0, len(sites))
	for _, s := range sites {
		out = append(out, Stats{
			Name:  s.name,
			Armed: s.Armed(),
			Evals: s.evals.Load(),
			Fires: s.fires.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// hashName is FNV-1a over the site name, so each site gets an
// uncorrelated firing stream from one chaos seed.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the SplitMix64 output function over seed+n: a high
// quality, allocation-free, deterministic per-evaluation coin.
func splitmix64(seed, n uint64) uint64 {
	z := seed + n*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
