// Package failpoint is a deterministic fault-injection registry for the
// concurrent region runtime. A Site is a named point in the runtime
// where a controlled failure can be provoked: an injected error return,
// an injected delay, or a scheduling perturbation (runtime.Gosched),
// plus a test-only hook for deterministic interleaving control.
//
// The design mirrors the metrics gate of region_metrics.go: a disabled
// site costs its caller exactly one atomic pointer load and a
// never-taken branch — no map lookup, no mutex, no time read — so the
// sites can live permanently on the runtime's hot lifecycle edges
// (EXPERIMENTS.md records the overhead as within benchmark noise).
//
// Triggering is deterministic given a seed: each site numbers its
// evaluations with an atomic counter and fires evaluation n iff
// splitmix64(seed ^ hash(site name), n) mod Den < Num. Two runs with
// the same seed and the same per-site evaluation sequence provoke the
// same failures; under concurrency the interleaving of evaluations may
// differ between runs, but the decision for "the n-th evaluation of
// site S" never does.
//
// A site exposes two call shapes. Site.Eval is for error-capable
// edges: it returns the injected error (callers wrap it, and tests
// match with errors.Is(err, ErrInjected)). Site.Perturb is for edges
// that cannot fail: it applies delay/yield/hook actions and counts a
// fire for ActionError rules without injecting anything, so one rule
// set can drive both shapes and coverage accounting stays uniform.
//
// The runtime's sites are declared in region_failpoint.go (the rcgo/*
// namespace); internal/chaos arms them in anger and requires every one
// to fire.
package failpoint
