package failpoint

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisabledSiteIsSilent(t *testing.T) {
	s := New("test/disabled")
	for i := 0; i < 1000; i++ {
		if err := s.Eval(); err != nil {
			t.Fatalf("disarmed Eval returned %v", err)
		}
	}
	if got := s.evals.Load(); got != 0 {
		t.Fatalf("disarmed evals counted: %d", got)
	}
}

func TestErrorActionFiresAndWraps(t *testing.T) {
	s := New("test/error")
	defer s.Disable()
	base := errors.New("boom")
	s.Enable(Rule{Action: ActionError, Err: base})
	err := s.Eval()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !errors.Is(err, base) {
		t.Fatalf("err = %v, want wrapped %v", err, base)
	}
	st := snapshotOf(t, "test/error")
	if st.Evals != 1 || st.Fires != 1 {
		t.Fatalf("stats = %+v, want 1 eval, 1 fire", st)
	}
}

func TestDeterministicFiringPattern(t *testing.T) {
	s := New("test/deterministic")
	defer s.Disable()
	pattern := func(seed uint64) []bool {
		s.Enable(Rule{Action: ActionError, Num: 1, Den: 4, Seed: seed})
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, s.Eval() != nil)
		}
		return out
	}
	// The pattern is a pure function of (seed, evaluation index within
	// one arming): re-arming with the same seed replays it exactly.
	a := pattern(42)
	fires := 0
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("1/4 rule fired %d/%d times", fires, len(a))
	}
	b := pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("re-armed pattern diverged at evaluation %d", i)
		}
	}
	if c := pattern(43); equalBools(a, c) {
		t.Fatal("different seeds produced identical patterns")
	}
	// Different sites decorrelate: identical rules on two sites must
	// not produce the identical decision stream.
	sa, sb := New("test/decor-a"), New("test/decor-b")
	defer sa.Disable()
	defer sb.Disable()
	sa.Enable(Rule{Action: ActionError, Num: 1, Den: 2, Seed: 1})
	sb.Enable(Rule{Action: ActionError, Num: 1, Den: 2, Seed: 1})
	same := 0
	const rounds = 256
	for i := 0; i < rounds; i++ {
		if (sa.Eval() != nil) == (sb.Eval() != nil) {
			same++
		}
	}
	if same == rounds {
		t.Fatal("two sites with the same seed produced identical streams")
	}
}

func TestHookAndYieldReturnNil(t *testing.T) {
	s := New("test/hook")
	defer s.Disable()
	ran := 0
	s.Enable(Rule{Action: ActionHook, Hook: func() { ran++ }})
	if err := s.Eval(); err != nil {
		t.Fatalf("hook Eval = %v", err)
	}
	if ran != 1 {
		t.Fatalf("hook ran %d times", ran)
	}
	s.Enable(Rule{Action: ActionYield, Yields: 3})
	if err := s.Eval(); err != nil {
		t.Fatalf("yield Eval = %v", err)
	}
}

func TestDelayActionSleeps(t *testing.T) {
	s := New("test/delay")
	defer s.Disable()
	s.Enable(Rule{Action: ActionDelay, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := s.Eval(); err != nil {
		t.Fatalf("delay Eval = %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delay slept %v, want >= 5ms", d)
	}
}

func TestPerturbNeverErrors(t *testing.T) {
	s := New("test/perturb")
	defer s.Disable()
	s.Enable(Rule{Action: ActionError})
	s.Perturb()
	st := snapshotOf(t, "test/perturb")
	if st.Fires != 1 {
		t.Fatalf("Perturb did not count a fire: %+v", st)
	}
}

func TestEnableByNameAndUnknownSite(t *testing.T) {
	New("test/byname")
	defer Disable("test/byname")
	if err := Enable("test/byname", Rule{Action: ActionError}); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	if err := Lookup("test/byname").Eval(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Eval = %v, want ErrInjected", err)
	}
	if err := Enable("test/no-such-site", Rule{}); err == nil {
		t.Fatal("Enable of unknown site succeeded")
	}
	Disable("test/no-such-site") // no-op, must not panic
}

func TestNewIsIdempotent(t *testing.T) {
	a := New("test/idempotent")
	b := New("test/idempotent")
	if a != b {
		t.Fatal("New returned distinct sites for one name")
	}
}

func TestConcurrentEvalAndArm(t *testing.T) {
	s := New("test/concurrent")
	defer s.Disable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				err := s.Eval()
				if err != nil && !errors.Is(err, ErrInjected) {
					t.Errorf("Eval = %v", err)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Enable(Rule{Action: ActionError, Num: 1, Den: 3, Seed: uint64(i)})
			s.Disable()
		}
	}()
	wg.Wait()
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func snapshotOf(t *testing.T, name string) Stats {
	t.Helper()
	for _, st := range Snapshot() {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("site %q not in snapshot", name)
	return Stats{}
}
