package compile

import (
	"fmt"

	"rcgo/internal/ir"
	"rcgo/internal/rcc"
)

// Mode selects the barrier configuration.
type Mode int

const (
	ModeNQ Mode = iota
	ModeQS
	ModeInf
	ModeNC
	ModeNoRC
)

func (m Mode) String() string {
	switch m {
	case ModeNQ:
		return "nq"
	case ModeQS:
		return "qs"
	case ModeInf:
		return "inf"
	case ModeNC:
		return "nc"
	default:
		return "norc"
	}
}

// Compile lowers the checked program. safeSites is the inference result
// (required for ModeInf, ignored otherwise).
func Compile(cp *rcc.CheckedProgram, mode Mode, safeSites []bool) (*ir.Program, error) {
	if mode == ModeInf && safeSites == nil {
		return nil, fmt.Errorf("compile: ModeInf requires inference results")
	}
	c := &compiler{
		cp:    cp,
		mode:  mode,
		safe:  safeSites,
		prog:  &ir.Program{ByName: make(map[string]int), MainIdx: -1},
		types: make(map[string]int32),
	}
	c.prog.GlobalWords = int32(cp.GlobalWords)
	c.prog.Strings = cp.Strings
	c.layoutGlobals()
	for _, fn := range cp.Prog.Funcs {
		if fn.Body == nil {
			continue
		}
		f, err := c.compileFunc(fn)
		if err != nil {
			return nil, err
		}
		c.prog.ByName[fn.Name] = len(c.prog.Funcs)
		c.prog.Funcs = append(c.prog.Funcs, f)
	}
	// Patch call targets now that all indexes are known.
	for _, f := range c.prog.Funcs {
		for i := range f.Code {
			if f.Code[i].Op == ir.OpCall && f.Code[i].K < 0 {
				name := c.callNames[-f.Code[i].K-1]
				idx, ok := c.prog.ByName[name]
				if !ok {
					return nil, fmt.Errorf("compile: call to undefined function %s", name)
				}
				f.Code[i].K = int64(idx)
			}
		}
	}
	if idx, ok := c.prog.ByName["main"]; ok {
		c.prog.MainIdx = idx
	}
	return c.prog, nil
}

type compiler struct {
	cp        *rcc.CheckedProgram
	mode      Mode
	safe      []bool
	prog      *ir.Program
	types     map[string]int32
	callNames []string // pending call-target names (negative K encoding)

	// per function state
	fn *funcState
}

type funcState struct {
	out        *ir.Func
	regOf      map[*rcc.VarInfo]int32
	slotOf     map[*rcc.VarInfo]int32
	nextReg    int32
	ptrReg     map[int32]bool // registers that may hold object pointers
	freeScalar []int32
	freePtr    []int32
	breaks     [][]int // pending jump indexes per loop
	continues  [][]int
}

// ---------------------------------------------------------------------------
// Types and globals.

// counted reports whether a pointer slot with qualifier q is maintained by
// reference counting under the current mode.
func (c *compiler) counted(q rcc.Qual) bool {
	switch c.mode {
	case ModeNoRC:
		return false
	case ModeNQ:
		return true
	default:
		return q == rcc.QualNone
	}
}

// typeID returns (registering if needed) the runtime type descriptor for
// an allocated type.
func (c *compiler) typeID(t rcc.Type) int32 {
	key, desc := c.describe(t)
	if id, ok := c.types[key]; ok {
		return id
	}
	id := int32(len(c.prog.Types))
	c.prog.Types = append(c.prog.Types, desc)
	c.types[key] = id
	return id
}

func (c *compiler) describe(t rcc.Type) (string, ir.TypeDesc) {
	switch x := t.(type) {
	case *rcc.StructRef:
		key := "struct " + x.Name + "|" + c.mode.String()
		d := ir.TypeDesc{Name: "struct " + x.Name, Size: x.Decl.SizeWords()}
		for _, f := range x.Decl.Fields {
			if p, ok := f.Type.(*rcc.Pointer); ok {
				d.AllPtrOffsets = append(d.AllPtrOffsets, f.Offset)
				if c.counted(p.Qual) {
					d.CountedOffsets = append(d.CountedOffsets, f.Offset)
				}
			}
		}
		return key, d
	case *rcc.Pointer:
		key := "ptr/" + x.Qual.String() + "|" + c.mode.String()
		d := ir.TypeDesc{Name: "ptr", Size: 1, AllPtrOffsets: []uint64{0}}
		if c.counted(x.Qual) {
			d.CountedOffsets = []uint64{0}
		}
		return key, d
	default:
		return t.String(), ir.TypeDesc{Name: t.String(), Size: 1}
	}
}

func (c *compiler) layoutGlobals() {
	d := ir.TypeDesc{Name: "<globals>", Size: uint64(c.cp.GlobalWords)}
	for _, g := range c.cp.Prog.Globals {
		off := uint64(g.Index)
		switch {
		case g.ArrayLen > 0:
			// The slot holds the array address (traditional region).
			d.AllPtrOffsets = append(d.AllPtrOffsets, off)
			if c.counted(rcc.QualNone) {
				d.CountedOffsets = append(d.CountedOffsets, off)
			}
			c.prog.Arrays = append(c.prog.Arrays, ir.GlobalArray{
				Slot: int32(g.Index), Len: uint64(g.ArrayLen),
				ElemType: c.typeID(g.Type),
			})
		default:
			if p, ok := g.Type.(*rcc.Pointer); ok {
				d.AllPtrOffsets = append(d.AllPtrOffsets, off)
				if c.counted(p.Qual) {
					d.CountedOffsets = append(d.CountedOffsets, off)
				}
			}
			if g.Init != nil {
				c.prog.Inits = append(c.prog.Inits, c.globalInit(g))
			}
		}
	}
	c.prog.GlobalDesc = int32(len(c.prog.Types))
	c.prog.Types = append(c.prog.Types, d)
}

func (c *compiler) globalInit(g *rcc.GlobalDecl) ir.GlobalInit {
	switch x := g.Init.(type) {
	case *rcc.IntLit:
		return ir.GlobalInit{Slot: int32(g.Index), Kind: 0, K: x.Value}
	case *rcc.NullLit:
		return ir.GlobalInit{Slot: int32(g.Index), Kind: 0, K: 0}
	case *rcc.StrLit:
		return ir.GlobalInit{Slot: int32(g.Index), Kind: 1, K: int64(x.Idx)}
	case *rcc.Unary: // -intlit, validated by the checker
		lit := x.X.(*rcc.IntLit)
		return ir.GlobalInit{Slot: int32(g.Index), Kind: 0, K: -lit.Value}
	}
	return ir.GlobalInit{Slot: int32(g.Index)}
}

// ---------------------------------------------------------------------------
// Function compilation.

func isPtrType(t rcc.Type) bool {
	_, ok := t.(*rcc.Pointer)
	return ok
}

func (c *compiler) compileFunc(fd *rcc.FuncDecl) (*ir.Func, error) {
	fs := &funcState{
		out: &ir.Func{
			Name:    fd.Name,
			NParams: len(fd.Params),
			Deletes: fd.Deletes,
		},
		regOf:  make(map[*rcc.VarInfo]int32),
		slotOf: make(map[*rcc.VarInfo]int32),
		ptrReg: make(map[int32]bool),
	}
	c.fn = fs
	// Parameters occupy registers 0..n-1.
	for i, v := range fd.Vars {
		if i >= len(fd.Params) {
			break
		}
		r := fs.nextReg
		fs.nextReg++
		fs.regOf[v] = r
		if isPtrType(v.Type) {
			fs.ptrReg[r] = true
		}
	}
	// Address-taken variables get stack slots; address-taken params are
	// copied into their slot at entry.
	for i, v := range fd.Vars {
		if !v.AddrTaken {
			continue
		}
		slot := fs.out.StackWords
		fs.out.StackWords++
		fs.slotOf[v] = slot
		barrier := int64(-1)
		if p, ok := v.Type.(*rcc.Pointer); ok {
			barrier = c.slotBarrier(p.Qual)
		}
		fs.out.Slots = append(fs.out.Slots, ir.StackSlot{Off: slot, Barrier: barrier, Name: v.Name})
		if i < len(fd.Params) {
			addr := c.tempPtr()
			c.emit(ir.Instr{Op: ir.OpStackAddr, A: addr, K: int64(slot)})
			c.emitSlotStore(addr, fs.regOf[v], barrier)
			c.free(addr)
		}
	}
	c.stmt(fd.Body)
	// Implicit return (falling off the end returns 0 for non-void).
	if rcc.IsVoid(fd.Ret) {
		c.emit(ir.Instr{Op: ir.OpRet, A: -1})
	} else {
		r := c.tempScalar()
		c.emit(ir.Instr{Op: ir.OpConst, A: r, K: 0})
		c.emit(ir.Instr{Op: ir.OpRet, A: r})
		c.free(r)
	}
	fs.out.NRegs = int(fs.nextReg)
	fillPinLists(fs.out, fs.ptrReg)
	c.fn = nil
	return fs.out, nil
}

// slotBarrier is the store barrier for a stack slot holding a pointer with
// qualifier q (used for frame-pop cleanup and declaration inits).
func (c *compiler) slotBarrier(q rcc.Qual) int64 {
	switch c.mode {
	case ModeNoRC:
		return ir.BarrierNone
	case ModeNQ:
		return ir.BarrierFull
	}
	switch q {
	case rcc.QualNone:
		return ir.BarrierFull
	case rcc.QualTraditional:
		if c.mode == ModeNC {
			return ir.BarrierNone
		}
		return ir.BarrierTrad
	}
	return ir.BarrierNone
}

// barrierFor selects the store barrier for an assignment site.
func (c *compiler) barrierFor(info *rcc.AssignInfo, siteID int) int64 {
	if c.mode == ModeNoRC {
		return ir.BarrierNone
	}
	if c.mode == ModeNQ || info.Qual == rcc.QualNone {
		return ir.BarrierFull
	}
	switch c.mode {
	case ModeNC:
		return ir.BarrierNone
	case ModeInf:
		if siteID >= 0 && siteID < len(c.safe) && c.safe[siteID] {
			return ir.BarrierNone
		}
	}
	switch info.Qual {
	case rcc.QualSameRegion:
		return ir.BarrierSame
	case rcc.QualTraditional:
		return ir.BarrierTrad
	case rcc.QualParentPtr:
		return ir.BarrierParent
	}
	return ir.BarrierFull
}

func (c *compiler) emit(in ir.Instr) int {
	c.fn.out.Code = append(c.fn.out.Code, in)
	return len(c.fn.out.Code) - 1
}

func (c *compiler) pc() int { return len(c.fn.out.Code) }

func (c *compiler) patch(idx, target int) { c.fn.out.Code[idx].K = int64(target) }

// emitSlotStore stores val through addr with the slot's barrier.
func (c *compiler) emitSlotStore(addr, val int32, barrier int64) {
	if barrier < 0 {
		c.emit(ir.Instr{Op: ir.OpStore, A: addr, B: val})
		return
	}
	c.emit(ir.Instr{Op: ir.OpStoreP, A: addr, B: val, K: barrier})
}

// ---------------------------------------------------------------------------
// Register pools. Pointer-holding and scalar temporaries never share
// registers, so the liveness-based pin sets can classify registers
// statically.

func (c *compiler) tempScalar() int32 {
	fs := c.fn
	if n := len(fs.freeScalar); n > 0 {
		r := fs.freeScalar[n-1]
		fs.freeScalar = fs.freeScalar[:n-1]
		return r
	}
	r := fs.nextReg
	fs.nextReg++
	return r
}

func (c *compiler) tempPtr() int32 {
	fs := c.fn
	if n := len(fs.freePtr); n > 0 {
		r := fs.freePtr[n-1]
		fs.freePtr = fs.freePtr[:n-1]
		return r
	}
	r := fs.nextReg
	fs.nextReg++
	fs.ptrReg[r] = true
	return r
}

func (c *compiler) temp(t rcc.Type) int32 {
	if isPtrType(t) {
		return c.tempPtr()
	}
	return c.tempScalar()
}

// free returns a temporary to its pool. Registers of named variables are
// never freed; the caller only frees temps it allocated.
func (c *compiler) free(r int32) {
	fs := c.fn
	if fs.ptrReg[r] {
		fs.freePtr = append(fs.freePtr, r)
	} else {
		fs.freeScalar = append(fs.freeScalar, r)
	}
}

// ---------------------------------------------------------------------------
// Statements.

func (c *compiler) stmt(s rcc.Stmt) {
	switch st := s.(type) {
	case *rcc.Block:
		for _, sub := range st.Stmts {
			c.stmt(sub)
		}
	case *rcc.DeclStmt:
		c.declStmt(st)
	case *rcc.ExprStmt:
		r := c.expr(st.X)
		if r >= 0 {
			c.free(r)
		}
	case *rcc.IfStmt:
		elseJ := []int{}
		c.cond(st.Cond, &elseJ, false)
		c.stmt(st.Then)
		if st.Else != nil {
			endJ := c.emit(ir.Instr{Op: ir.OpJmp})
			for _, j := range elseJ {
				c.patch(j, c.pc())
			}
			c.stmt(st.Else)
			c.patch(endJ, c.pc())
		} else {
			for _, j := range elseJ {
				c.patch(j, c.pc())
			}
		}
	case *rcc.WhileStmt:
		head := c.pc()
		exitJ := []int{}
		c.cond(st.Cond, &exitJ, false)
		c.pushLoop()
		c.stmt(st.Body)
		conts, brks := c.popLoop()
		for _, j := range conts {
			c.patch(j, head)
		}
		c.emit(ir.Instr{Op: ir.OpJmp, K: int64(head)})
		for _, j := range append(exitJ, brks...) {
			c.patch(j, c.pc())
		}
	case *rcc.ForStmt:
		if st.Init != nil {
			if r := c.expr(st.Init); r >= 0 {
				c.free(r)
			}
		}
		head := c.pc()
		exitJ := []int{}
		if st.Cond != nil {
			c.cond(st.Cond, &exitJ, false)
		}
		c.pushLoop()
		c.stmt(st.Body)
		conts, brks := c.popLoop()
		postPC := c.pc()
		for _, j := range conts {
			c.patch(j, postPC)
		}
		if st.Post != nil {
			if r := c.expr(st.Post); r >= 0 {
				c.free(r)
			}
		}
		c.emit(ir.Instr{Op: ir.OpJmp, K: int64(head)})
		for _, j := range append(exitJ, brks...) {
			c.patch(j, c.pc())
		}
	case *rcc.DoWhileStmt:
		head := c.pc()
		c.pushLoop()
		c.stmt(st.Body)
		conts, brks := c.popLoop()
		condPC := c.pc()
		for _, j := range conts {
			c.patch(j, condPC)
		}
		backJ := []int{}
		c.cond(st.Cond, &backJ, true) // jump back to head while true
		for _, j := range backJ {
			c.patch(j, head)
		}
		for _, j := range brks {
			c.patch(j, c.pc())
		}
	case *rcc.SwitchStmt:
		c.switchStmt(st)
	case *rcc.ReturnStmt:
		if st.X == nil {
			c.emit(ir.Instr{Op: ir.OpRet, A: -1})
			return
		}
		r := c.expr(st.X)
		c.emit(ir.Instr{Op: ir.OpRet, A: r})
		c.free(r)
	case *rcc.BreakStmt:
		j := c.emit(ir.Instr{Op: ir.OpJmp})
		n := len(c.fn.breaks) - 1
		c.fn.breaks[n] = append(c.fn.breaks[n], j)
	case *rcc.ContinueStmt:
		j := c.emit(ir.Instr{Op: ir.OpJmp})
		n := len(c.fn.continues) - 1
		c.fn.continues[n] = append(c.fn.continues[n], j)
	}
}

// switchStmt compiles a C switch: a comparison chain dispatching to the
// clause bodies, which fall through in source order; break exits.
func (c *compiler) switchStmt(st *rcc.SwitchStmt) {
	cond := c.expr(st.Cond)
	// Dispatch: one conditional jump per case clause, then default (or
	// exit).
	caseJumps := make([]int, len(st.Clauses))
	defaultIdx := -1
	for i, cl := range st.Clauses {
		if cl.IsDefault {
			defaultIdx = i
			continue
		}
		k := c.tempScalar()
		c.emit(ir.Instr{Op: ir.OpConst, A: k, K: cl.Value})
		eq := c.tempScalar()
		c.emit(ir.Instr{Op: ir.OpEq, A: eq, B: cond, C: k})
		caseJumps[i] = c.emit(ir.Instr{Op: ir.OpJnz, A: eq})
		c.free(k)
		c.free(eq)
	}
	c.free(cond)
	defaultJump := c.emit(ir.Instr{Op: ir.OpJmp})
	// Bodies with fallthrough; break targets collect on a switch-only
	// break frame (continue still binds to the enclosing loop).
	c.fn.breaks = append(c.fn.breaks, nil)
	for i, cl := range st.Clauses {
		target := c.pc()
		if cl.IsDefault {
			c.patch(defaultJump, target)
		} else {
			c.patch(caseJumps[i], target)
		}
		for _, s := range cl.Stmts {
			c.stmt(s)
		}
	}
	if defaultIdx < 0 {
		c.patch(defaultJump, c.pc())
	}
	n := len(c.fn.breaks) - 1
	for _, j := range c.fn.breaks[n] {
		c.patch(j, c.pc())
	}
	c.fn.breaks = c.fn.breaks[:n]
}

func (c *compiler) pushLoop() {
	c.fn.breaks = append(c.fn.breaks, nil)
	c.fn.continues = append(c.fn.continues, nil)
}

func (c *compiler) popLoop() (conts, brks []int) {
	n := len(c.fn.breaks) - 1
	brks = c.fn.breaks[n]
	conts = c.fn.continues[n]
	c.fn.breaks = c.fn.breaks[:n]
	c.fn.continues = c.fn.continues[:n]
	return conts, brks
}

func (c *compiler) declStmt(st *rcc.DeclStmt) {
	v := st.Var
	if v.AddrTaken {
		slot := c.fn.slotOf[v]
		if st.Init == nil {
			return // stack area is zeroed at frame entry
		}
		val := c.expr(st.Init)
		addr := c.tempPtr()
		c.emit(ir.Instr{Op: ir.OpStackAddr, A: addr, K: int64(slot)})
		barrier := int64(-1)
		if p, ok := v.Type.(*rcc.Pointer); ok {
			barrier = c.slotBarrier(p.Qual)
		}
		c.emitSlotStore(addr, val, barrier)
		c.free(addr)
		c.free(val)
		return
	}
	r := c.fn.nextReg
	c.fn.nextReg++
	c.fn.regOf[v] = r
	if isPtrType(v.Type) {
		c.fn.ptrReg[r] = true
	}
	if st.Init != nil {
		val := c.expr(st.Init)
		c.emit(ir.Instr{Op: ir.OpMove, A: r, B: val})
		c.free(val)
	} else {
		c.emit(ir.Instr{Op: ir.OpConst, A: r, K: 0})
	}
}

// ---------------------------------------------------------------------------
// Conditions.

// cond compiles a branch: when the condition is false (or true, if
// jumpIfTrue), a jump is emitted and appended to jumps for later patching.
func (c *compiler) cond(e rcc.Expr, jumps *[]int, jumpIfTrue bool) {
	switch x := e.(type) {
	case *rcc.Unary:
		if x.Op == rcc.OpNot {
			c.cond(x.X, jumps, !jumpIfTrue)
			return
		}
	case *rcc.Binary:
		switch x.Op {
		case rcc.OpAnd:
			if !jumpIfTrue {
				c.cond(x.L, jumps, false)
				c.cond(x.R, jumps, false)
			} else {
				falseJ := []int{}
				c.cond(x.L, &falseJ, false)
				c.cond(x.R, jumps, true)
				for _, j := range falseJ {
					c.patch(j, c.pc())
				}
			}
			return
		case rcc.OpOr:
			if jumpIfTrue {
				c.cond(x.L, jumps, true)
				c.cond(x.R, jumps, true)
			} else {
				trueJ := []int{}
				c.cond(x.L, &trueJ, true)
				c.cond(x.R, jumps, false)
				for _, j := range trueJ {
					c.patch(j, c.pc())
				}
			}
			return
		}
	}
	r := c.expr(e)
	op := ir.OpJz
	if jumpIfTrue {
		op = ir.OpJnz
	}
	*jumps = append(*jumps, c.emit(ir.Instr{Op: op, A: r}))
	c.free(r)
}

// ---------------------------------------------------------------------------
// Expressions. Each returns the register holding the value, or -1 for
// void. Returned registers for named variables are the variable's own
// register; temps must be freed by the caller via freeValue.

func (c *compiler) expr(e rcc.Expr) int32 {
	switch x := e.(type) {
	case *rcc.IntLit:
		r := c.tempScalar()
		c.emit(ir.Instr{Op: ir.OpConst, A: r, K: x.Value})
		return r
	case *rcc.NullLit:
		r := c.tempPtr()
		c.emit(ir.Instr{Op: ir.OpConst, A: r, K: 0})
		return r
	case *rcc.StrLit:
		r := c.tempPtr()
		c.emit(ir.Instr{Op: ir.OpStrAddr, A: r, K: int64(x.Idx)})
		return r
	case *rcc.VarRef:
		return c.varRead(x.Var)
	case *rcc.Unary:
		return c.unary(x)
	case *rcc.Binary:
		return c.binary(x)
	case *rcc.Ternary:
		return c.ternary(x)
	case *rcc.Assign:
		return c.assign(x)
	case *rcc.Call:
		return c.call(x)
	case *rcc.RallocExpr:
		return c.ralloc(x)
	case *rcc.FieldAccess:
		addr, _ := c.addrOf(x)
		r := c.temp(x.Type())
		c.emit(ir.Instr{Op: ir.OpLoad, A: r, B: addr})
		c.free(addr)
		return r
	case *rcc.Index:
		addr, _ := c.addrOf(x)
		r := c.temp(x.Type())
		c.emit(ir.Instr{Op: ir.OpLoad, A: r, B: addr})
		c.free(addr)
		return r
	}
	panic(fmt.Sprintf("compile: unhandled expression %T", e))
}

// varRead loads a variable's value into a register. For plain locals this
// is the variable's own register (not to be freed — free() is safe because
// named registers are never in the temp pools... they are: free would pool
// them. So varRead returns a COPY for named registers? No: callers free
// returned regs. To keep ownership simple, named variables return a fresh
// temp copy only when needed; instead we mark ownership by copying.
func (c *compiler) varRead(v *rcc.VarInfo) int32 {
	switch {
	case v.Kind == rcc.VarGlobal:
		addr := c.tempPtr()
		c.emit(ir.Instr{Op: ir.OpGlobalAddr, A: addr, K: int64(v.Index)})
		r := c.temp(v.Type)
		c.emit(ir.Instr{Op: ir.OpLoad, A: r, B: addr})
		c.free(addr)
		return r
	case v.AddrTaken:
		addr := c.tempPtr()
		c.emit(ir.Instr{Op: ir.OpStackAddr, A: addr, K: int64(c.fn.slotOf[v])})
		r := c.temp(v.Type)
		c.emit(ir.Instr{Op: ir.OpLoad, A: r, B: addr})
		c.free(addr)
		return r
	default:
		// Copy into a temp so the caller may free it uniformly.
		r := c.temp(v.Type)
		c.emit(ir.Instr{Op: ir.OpMove, A: r, B: c.fn.regOf[v]})
		return r
	}
}

// addrOf computes the address of a memory lvalue, returning the register
// holding it and the element words (for diagnostics).
func (c *compiler) addrOf(e rcc.Expr) (int32, uint64) {
	switch x := e.(type) {
	case *rcc.FieldAccess:
		base := c.expr(x.X)
		addr := c.tempPtr()
		c.emit(ir.Instr{Op: ir.OpLea, A: addr, B: base, K: int64(x.Field.Offset)})
		c.free(base)
		return addr, 1
	case *rcc.Index:
		base := c.expr(x.X)
		idx := c.expr(x.Idx)
		stride := int64(1)
		if p, ok := x.X.Type().(*rcc.Pointer); ok {
			if sr, ok := p.Elem.(*rcc.StructRef); ok {
				stride = int64(sr.Decl.SizeWords())
			}
		}
		addr := c.tempPtr()
		c.emit(ir.Instr{Op: ir.OpLeaIdx, A: addr, B: base, C: idx, K: stride})
		c.free(base)
		c.free(idx)
		return addr, uint64(stride)
	case *rcc.Unary: // *p
		base := c.expr(x.X)
		addr := c.tempPtr()
		c.emit(ir.Instr{Op: ir.OpLea, A: addr, B: base, K: 0}) // null check
		c.free(base)
		return addr, 1
	}
	panic(fmt.Sprintf("compile: addrOf on %T", e))
}

func (c *compiler) unary(x *rcc.Unary) int32 {
	switch x.Op {
	case rcc.OpNeg:
		v := c.expr(x.X)
		r := c.tempScalar()
		c.emit(ir.Instr{Op: ir.OpNeg, A: r, B: v})
		c.free(v)
		return r
	case rcc.OpNot:
		v := c.expr(x.X)
		r := c.tempScalar()
		c.emit(ir.Instr{Op: ir.OpNot, A: r, B: v})
		c.free(v)
		return r
	case rcc.OpDeref:
		addr, _ := c.addrOf(x)
		r := c.temp(x.Type())
		c.emit(ir.Instr{Op: ir.OpLoad, A: r, B: addr})
		c.free(addr)
		return r
	case rcc.OpAddr:
		switch lv := x.X.(type) {
		case *rcc.VarRef:
			v := lv.Var
			r := c.tempPtr()
			if v.Kind == rcc.VarGlobal {
				c.emit(ir.Instr{Op: ir.OpGlobalAddr, A: r, K: int64(v.Index)})
			} else {
				c.emit(ir.Instr{Op: ir.OpStackAddr, A: r, K: int64(c.fn.slotOf[v])})
			}
			return r
		case *rcc.FieldAccess, *rcc.Index:
			addr, _ := c.addrOf(lv)
			return addr
		case *rcc.Unary: // &*p == p
			return c.expr(lv.X)
		}
	}
	panic("compile: invalid unary")
}

var binOps = map[rcc.BinOp]ir.Op{
	rcc.OpAdd: ir.OpAdd, rcc.OpSub: ir.OpSub, rcc.OpMul: ir.OpMul,
	rcc.OpDiv: ir.OpDiv, rcc.OpMod: ir.OpMod,
	rcc.OpEq: ir.OpEq, rcc.OpNe: ir.OpNe, rcc.OpLt: ir.OpLt,
	rcc.OpLe: ir.OpLe, rcc.OpGt: ir.OpGt, rcc.OpGe: ir.OpGe,
}

func (c *compiler) binary(x *rcc.Binary) int32 {
	if x.Op == rcc.OpAnd || x.Op == rcc.OpOr {
		// Value context: materialize 0/1 with short-circuit evaluation.
		r := c.tempScalar()
		falseJ := []int{}
		c.cond(x, &falseJ, false)
		c.emit(ir.Instr{Op: ir.OpConst, A: r, K: 1})
		endJ := c.emit(ir.Instr{Op: ir.OpJmp})
		for _, j := range falseJ {
			c.patch(j, c.pc())
		}
		c.emit(ir.Instr{Op: ir.OpConst, A: r, K: 0})
		c.patch(endJ, c.pc())
		return r
	}
	l := c.expr(x.L)
	rr := c.expr(x.R)
	r := c.tempScalar()
	c.emit(ir.Instr{Op: binOps[x.Op], A: r, B: l, C: rr})
	c.free(l)
	c.free(rr)
	return r
}

func (c *compiler) ternary(x *rcc.Ternary) int32 {
	r := c.temp(x.Type())
	falseJ := []int{}
	c.cond(x.Cond, &falseJ, false)
	tv := c.expr(x.Then)
	c.emit(ir.Instr{Op: ir.OpMove, A: r, B: tv})
	c.free(tv)
	endJ := c.emit(ir.Instr{Op: ir.OpJmp})
	for _, j := range falseJ {
		c.patch(j, c.pc())
	}
	ev := c.expr(x.Else)
	c.emit(ir.Instr{Op: ir.OpMove, A: r, B: ev})
	c.free(ev)
	c.patch(endJ, c.pc())
	return r
}

func (c *compiler) assign(x *rcc.Assign) int32 {
	// Compound assignment: load, op, store.
	if x.Op != rcc.TokAssign {
		op := ir.OpAdd
		if x.Op == rcc.MinusAssign {
			op = ir.OpSub
		}
		if lv, ok := x.LHS.(*rcc.VarRef); ok && !lv.Var.AddrTaken &&
			lv.Var.Kind != rcc.VarGlobal {
			v := c.expr(x.RHS)
			reg := c.fn.regOf[lv.Var]
			c.emit(ir.Instr{Op: op, A: reg, B: reg, C: v})
			c.free(v)
			res := c.tempScalar()
			c.emit(ir.Instr{Op: ir.OpMove, A: res, B: reg})
			return res
		}
		addr, _ := c.lvalueAddr(x.LHS)
		old := c.tempScalar()
		c.emit(ir.Instr{Op: ir.OpLoad, A: old, B: addr})
		v := c.expr(x.RHS)
		c.emit(ir.Instr{Op: op, A: old, B: old, C: v})
		c.free(v)
		c.emit(ir.Instr{Op: ir.OpStore, A: addr, B: old})
		c.free(addr)
		return old
	}
	// Plain assignment.
	if lv, ok := x.LHS.(*rcc.VarRef); ok && !lv.Var.AddrTaken &&
		lv.Var.Kind != rcc.VarGlobal {
		v := c.expr(x.RHS)
		c.emit(ir.Instr{Op: ir.OpMove, A: c.fn.regOf[lv.Var], B: v})
		return v
	}
	addr, _ := c.lvalueAddr(x.LHS)
	v := c.expr(x.RHS)
	if x.Info != nil && x.Info.PtrStore {
		c.emit(ir.Instr{Op: ir.OpStoreP, A: addr, B: v, K: c.barrierFor(x.Info, x.SiteID)})
	} else {
		c.emit(ir.Instr{Op: ir.OpStore, A: addr, B: v})
	}
	c.free(addr)
	return v
}

// lvalueAddr computes the address of any memory lvalue, including globals
// and address-taken locals.
func (c *compiler) lvalueAddr(e rcc.Expr) (int32, uint64) {
	if lv, ok := e.(*rcc.VarRef); ok {
		addr := c.tempPtr()
		if lv.Var.Kind == rcc.VarGlobal {
			c.emit(ir.Instr{Op: ir.OpGlobalAddr, A: addr, K: int64(lv.Var.Index)})
		} else {
			c.emit(ir.Instr{Op: ir.OpStackAddr, A: addr, K: int64(c.fn.slotOf[lv.Var])})
		}
		return addr, 1
	}
	return c.addrOf(e)
}

func (c *compiler) ralloc(x *rcc.RallocExpr) int32 {
	reg := c.expr(x.Region)
	tid := c.typeID(x.AllocTy)
	r := c.tempPtr()
	if x.Count != nil {
		n := c.expr(x.Count)
		c.emit(ir.Instr{Op: ir.OpAllocArr, A: r, B: reg, C: n, K: int64(tid)})
		c.free(n)
	} else {
		c.emit(ir.Instr{Op: ir.OpAlloc, A: r, B: reg, K: int64(tid)})
	}
	c.free(reg)
	return r
}

func (c *compiler) call(x *rcc.Call) int32 {
	if x.Builtin != rcc.BNone {
		return c.builtin(x)
	}
	// Arguments are marshalled into a contiguous register block.
	n := len(x.Args)
	base := c.fn.nextReg
	c.fn.nextReg += int32(n)
	for i, a := range x.Args {
		if isPtrType(x.Func.Params[i].Type) {
			c.fn.ptrReg[base+int32(i)] = true
		}
		v := c.expr(a)
		c.emit(ir.Instr{Op: ir.OpMove, A: base + int32(i), B: v})
		c.free(v)
	}
	dst := int32(-1)
	if !rcc.IsVoid(x.Func.Ret) {
		dst = c.temp(x.Func.Ret)
	}
	deletes := x.Func.Deletes && c.mode != ModeNoRC
	var pinIdx int
	if deletes {
		pinIdx = len(c.fn.out.PinLists)
		c.fn.out.PinLists = append(c.fn.out.PinLists, nil)
		c.emit(ir.Instr{Op: ir.OpPin, K: int64(pinIdx)})
	}
	// Negative K encodes a pending name reference, patched after all
	// functions are compiled.
	c.callNames = append(c.callNames, x.Name)
	c.emit(ir.Instr{Op: ir.OpCall, A: dst, B: base, C: int32(n),
		K: -int64(len(c.callNames))})
	if deletes {
		c.emit(ir.Instr{Op: ir.OpUnpin, K: int64(pinIdx)})
	}
	return dst
}

func (c *compiler) builtin(x *rcc.Call) int32 {
	arg := func(i int) int32 { return c.expr(x.Args[i]) }
	switch x.Builtin {
	case rcc.BNewRegion:
		r := c.tempScalar()
		c.emit(ir.Instr{Op: ir.OpNewRegion, A: r})
		return r
	case rcc.BNewSubregion:
		p := arg(0)
		r := c.tempScalar()
		c.emit(ir.Instr{Op: ir.OpNewSub, A: r, B: p})
		c.free(p)
		return r
	case rcc.BDeleteRegion:
		p := arg(0)
		if c.mode != ModeNoRC {
			pinIdx := len(c.fn.out.PinLists)
			c.fn.out.PinLists = append(c.fn.out.PinLists, nil)
			c.emit(ir.Instr{Op: ir.OpPin, K: int64(pinIdx)})
			c.emit(ir.Instr{Op: ir.OpDelRegion, A: p})
			c.emit(ir.Instr{Op: ir.OpUnpin, K: int64(pinIdx)})
		} else {
			c.emit(ir.Instr{Op: ir.OpDelRegion, A: p})
		}
		c.free(p)
		return -1
	case rcc.BRegionOf:
		p := arg(0)
		r := c.tempScalar()
		c.emit(ir.Instr{Op: ir.OpRegionOf, A: r, B: p})
		c.free(p)
		return r
	case rcc.BArrayLen:
		p := arg(0)
		r := c.tempScalar()
		c.emit(ir.Instr{Op: ir.OpArrLen, A: r, B: p})
		c.free(p)
		return r
	case rcc.BPrintInt:
		p := arg(0)
		c.emit(ir.Instr{Op: ir.OpPrintInt, A: p})
		c.free(p)
		return -1
	case rcc.BPrintChar:
		p := arg(0)
		c.emit(ir.Instr{Op: ir.OpPrintChar, A: p})
		c.free(p)
		return -1
	case rcc.BPrintStr:
		p := arg(0)
		c.emit(ir.Instr{Op: ir.OpPrintStr, A: p})
		c.free(p)
		return -1
	case rcc.BAssert:
		p := arg(0)
		c.emit(ir.Instr{Op: ir.OpAssert, A: p})
		c.free(p)
		return -1
	}
	panic("compile: unknown builtin")
}
