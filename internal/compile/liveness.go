package compile

import (
	"rcgo/internal/ir"
)

// fillPinLists computes, for every pin site in the function, the set of
// pointer-holding registers that are live across the bracketed
// deletes-call, via a standard backward liveness analysis over the
// bytecode. This implements the paper's local-variable protocol: "when
// calling a function that may delete a region, RC increments the reference
// count of all regions referred to by live local variables and decrements
// these reference counts on return."
//
// Precision matters semantically, not just for performance: pinning a dead
// local would make legitimate deletions fail (in Figure 1 of the paper,
// rl and last still hold pointers into r at deleteregion(r), but both are
// dead by then).
func fillPinLists(f *ir.Func, ptrReg map[int32]bool) {
	if len(f.PinLists) == 0 {
		return
	}
	n := len(f.Code)
	nregs := f.NRegs

	words := (nregs + 63) / 64
	liveIn := make([][]uint64, n)
	liveOut := make([][]uint64, n)
	for i := range liveIn {
		liveIn[i] = make([]uint64, words)
		liveOut[i] = make([]uint64, words)
	}
	get := func(bs []uint64, r int32) bool {
		return r >= 0 && int(r) < nregs && bs[r/64]&(1<<(uint(r)%64)) != 0
	}

	// Defs and uses per instruction.
	defs := make([]int32, n)
	uses := make([][]int32, n)
	for i, in := range f.Code {
		defs[i] = -1
		switch in.Op {
		case ir.OpConst, ir.OpGlobalAddr, ir.OpStackAddr, ir.OpStrAddr,
			ir.OpNewRegion:
			defs[i] = in.A
		case ir.OpMove, ir.OpNeg, ir.OpNot, ir.OpLoad, ir.OpNewSub,
			ir.OpRegionOf, ir.OpArrLen:
			defs[i] = in.A
			uses[i] = []int32{in.B}
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
			ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			defs[i] = in.A
			uses[i] = []int32{in.B, in.C}
		case ir.OpLea:
			defs[i] = in.A
			uses[i] = []int32{in.B}
		case ir.OpLeaIdx:
			defs[i] = in.A
			uses[i] = []int32{in.B, in.C}
		case ir.OpAlloc:
			defs[i] = in.A
			uses[i] = []int32{in.B}
		case ir.OpAllocArr:
			defs[i] = in.A
			uses[i] = []int32{in.B, in.C}
		case ir.OpJz, ir.OpJnz, ir.OpDelRegion, ir.OpPrintInt,
			ir.OpPrintChar, ir.OpPrintStr, ir.OpAssert:
			uses[i] = []int32{in.A}
		case ir.OpRet:
			if in.A >= 0 {
				uses[i] = []int32{in.A}
			}
		case ir.OpStore, ir.OpStoreP:
			uses[i] = []int32{in.A, in.B}
		case ir.OpCall:
			if in.A >= 0 {
				defs[i] = in.A
			}
			for k := int32(0); k < in.C; k++ {
				uses[i] = append(uses[i], in.B+k)
			}
		}
	}

	succs := func(i int) []int {
		in := f.Code[i]
		switch in.Op {
		case ir.OpJmp:
			return []int{int(in.K)}
		case ir.OpJz, ir.OpJnz:
			return []int{i + 1, int(in.K)}
		case ir.OpRet:
			return nil
		default:
			if i+1 < n {
				return []int{i + 1}
			}
			return nil
		}
	}

	// Iterate to fixpoint (backwards).
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := liveOut[i]
			for w := range out {
				out[w] = 0
			}
			for _, s := range succs(i) {
				for w := range out {
					out[w] |= liveIn[s][w]
				}
			}
			// in = use ∪ (out \ def)
			for w := range liveIn[i] {
				nv := out[w]
				if d := defs[i]; d >= 0 && int(d)/64 == w {
					nv &^= 1 << (uint(d) % 64)
				}
				for _, u := range uses[i] {
					if u >= 0 && int(u)/64 == w {
						nv |= 1 << (uint(u) % 64)
					}
				}
				if nv != liveIn[i][w] {
					liveIn[i][w] = nv
					changed = true
				}
			}
		}
	}

	// Pin sets: pointer registers live after the matching Unpin (their
	// values survive the call; the callee protects what it was passed).
	for i, in := range f.Code {
		if in.Op != ir.OpUnpin {
			continue
		}
		idx := int(in.K)
		var regs []int32
		for r := int32(0); int(r) < nregs; r++ {
			if ptrReg[r] && get(liveOut[i], r) {
				regs = append(regs, r)
			}
		}
		f.PinLists[idx] = regs
	}
}
