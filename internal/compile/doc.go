// Package compile lowers checked RC programs (internal/rcc) to
// bytecode (internal/ir), selecting a pointer-store barrier for every
// assignment according to the configuration under evaluation:
//
//	NQ   annotations ignored: every pointer store runs the full
//	     reference-count update (the paper's "nq" bars and the C@ system)
//	QS   annotations used, checked at runtime ("qs")
//	Inf  annotations used; checks proven safe by the constraint
//	     inference (internal/rlang) are removed ("inf")
//	NC   all annotation checks (unsafely) removed ("nc")
//	NoRC reference counting disabled entirely ("norc")
//
// Compile is the single entry point: it takes the checked program, the
// mode, and the per-site safety verdicts from inference, and emits one
// ir.Program. The barrier op chosen per store is what the VM's cost
// model charges, so the five configurations reproduce the paper's
// bars purely by what the compiler emits.
//
// The compiler also implements the paper's local-variable protocol:
// calls to deletes-qualified functions are bracketed by pin/unpin of
// the pointer-typed registers live across the call, computed by a
// backward liveness analysis over the bytecode — so Figure 1's dead
// locals do not block deleteregion, exactly as in Section 3.
package compile
