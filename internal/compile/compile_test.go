package compile

import (
	"strings"
	"testing"

	"rcgo/internal/ir"
	"rcgo/internal/rcc"
)

func compileSrc(t *testing.T, src string, mode Mode, safe []bool) *ir.Program {
	t.Helper()
	prog, err := rcc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := rcc.Check(prog, true)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if mode == ModeInf && safe == nil {
		safe = make([]bool, cp.NumSites)
	}
	p, err := Compile(cp, mode, safe)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func fn(t *testing.T, p *ir.Program, name string) *ir.Func {
	t.Helper()
	idx, ok := p.ByName[name]
	if !ok {
		t.Fatalf("function %s not compiled", name)
	}
	return p.Funcs[idx]
}

func countBarriers(f *ir.Func) map[int64]int {
	out := map[int64]int{}
	for _, in := range f.Code {
		if in.Op == ir.OpStoreP {
			out[in.K]++
		}
	}
	return out
}

const barrierSrc = `
struct node {
	struct node *sameregion s;
	struct node *traditional t;
	struct node *parentptr p;
	struct node *u;
};
void main(void) {
	region r = newregion();
	struct node *n = ralloc(r, struct node);
	n->s = n;
	n->t = null;
	n->p = null;
	n->u = n;
}`

func TestBarrierSelection(t *testing.T) {
	cases := []struct {
		mode Mode
		want map[int64]int
	}{
		{ModeNQ, map[int64]int{ir.BarrierFull: 4}},
		{ModeQS, map[int64]int{ir.BarrierSame: 1, ir.BarrierTrad: 1,
			ir.BarrierParent: 1, ir.BarrierFull: 1}},
		{ModeNC, map[int64]int{ir.BarrierNone: 3, ir.BarrierFull: 1}},
		{ModeNoRC, map[int64]int{ir.BarrierNone: 4}},
	}
	for _, tc := range cases {
		p := compileSrc(t, barrierSrc, tc.mode, nil)
		got := countBarriers(fn(t, p, "main"))
		for k, v := range tc.want {
			if got[k] != v {
				t.Errorf("mode %v: barrier %d count %d, want %d (all: %v)",
					tc.mode, k, got[k], v, got)
			}
		}
	}
}

func TestBarrierInfUsesSafeSites(t *testing.T) {
	// All annotated sites marked safe: their barriers become none.
	prog, err := rcc.Parse(barrierSrc)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := rcc.Check(prog, true)
	if err != nil {
		t.Fatal(err)
	}
	safe := make([]bool, cp.NumSites)
	for i := range safe {
		safe[i] = true
	}
	p, err := Compile(cp, ModeInf, safe)
	if err != nil {
		t.Fatal(err)
	}
	got := countBarriers(fn(t, p, "main"))
	if got[ir.BarrierNone] != 3 || got[ir.BarrierFull] != 1 {
		t.Errorf("inf barriers: %v", got)
	}
	// ModeInf without inference results is an error.
	if _, err := Compile(cp, ModeInf, nil); err == nil {
		t.Error("ModeInf without safe sites accepted")
	}
}

func TestTypeDescsPerMode(t *testing.T) {
	// Under nq, annotated pointer fields are counted (and scanned at
	// delete); under qs they are not.
	pNQ := compileSrc(t, barrierSrc, ModeNQ, nil)
	pQS := compileSrc(t, barrierSrc, ModeQS, nil)
	find := func(p *ir.Program, name string) *ir.TypeDesc {
		for i := range p.Types {
			if p.Types[i].Name == name {
				return &p.Types[i]
			}
		}
		t.Fatalf("type %s missing", name)
		return nil
	}
	nq := find(pNQ, "struct node")
	qs := find(pQS, "struct node")
	if len(nq.CountedOffsets) != 4 {
		t.Errorf("nq counted offsets = %v, want all 4", nq.CountedOffsets)
	}
	if len(qs.CountedOffsets) != 1 {
		t.Errorf("qs counted offsets = %v, want only the unannotated one", qs.CountedOffsets)
	}
	if len(nq.AllPtrOffsets) != 4 || len(qs.AllPtrOffsets) != 4 {
		t.Error("AllPtrOffsets should list every pointer field in both modes")
	}
}

const pinSrc = `
struct s { int v; };
deletes void main(void) {
	region r = newregion();
	struct s *live = ralloc(r, struct s);
	struct s *dead = ralloc(r, struct s);
	dead->v = 1;
	region r2 = newregion();
	deleteregion(r2);
	live->v = 2;     // live across the deleteregion call
	live = null;
	deleteregion(r);
}`

func TestPinListsUseLiveness(t *testing.T) {
	p := compileSrc(t, pinSrc, ModeQS, nil)
	m := fn(t, p, "main")
	if len(m.PinLists) != 2 {
		t.Fatalf("expected 2 pin sites (two deleteregions), got %d", len(m.PinLists))
	}
	// First deleteregion (r2): only `live` is live across it. Its pin
	// list must have exactly one pointer register; the second
	// deleteregion must pin nothing (live was nulled and is dead).
	if len(m.PinLists[0]) != 1 {
		t.Errorf("first pin list = %v, want exactly the live pointer", m.PinLists[0])
	}
	if len(m.PinLists[1]) != 0 {
		t.Errorf("second pin list = %v, want empty", m.PinLists[1])
	}
}

func TestFigure1PinListEmpty(t *testing.T) {
	// The paper's Figure 1: rl and last still hold pointers into r at
	// deleteregion(r) but are dead; the pin list must be empty or the
	// program would abort.
	p := compileSrc(t, `
struct rlist { struct rlist *sameregion next; int v; };
deletes void main(void) {
	struct rlist *rl;
	struct rlist *last = null;
	region r = newregion();
	int i = 0;
	while (i < 3) {
		rl = ralloc(r, struct rlist);
		rl->next = last;
		last = rl;
		i++;
	}
	print_int(last->v);
	deleteregion(r);
}`, ModeQS, nil)
	m := fn(t, p, "main")
	for i, pl := range m.PinLists {
		if len(pl) != 0 {
			t.Errorf("pin list %d = %v, want empty (locals are dead)", i, pl)
		}
	}
}

func TestStackSlots(t *testing.T) {
	p := compileSrc(t, `
struct s { int v; };
void setp(struct s **pp, struct s *v) { *pp = v; }
void main(void) {
	region r = newregion();
	struct s *x = null;
	int n = 0;
	setp(&x, ralloc(r, struct s));
	int *np = &n;
	*np = 5;
	if (x) print_int(n);
}`, ModeQS, nil)
	m := fn(t, p, "main")
	if m.StackWords != 2 {
		t.Fatalf("StackWords = %d, want 2 (x and n)", m.StackWords)
	}
	var ptrSlots, intSlots int
	for _, s := range m.Slots {
		if s.Barrier == ir.BarrierFull {
			ptrSlots++
		} else if s.Barrier < 0 {
			intSlots++
		}
	}
	if ptrSlots != 1 || intSlots != 1 {
		t.Errorf("slots = %+v", m.Slots)
	}
}

func TestNoRCHasNoPins(t *testing.T) {
	p := compileSrc(t, pinSrc, ModeNoRC, nil)
	m := fn(t, p, "main")
	for _, in := range m.Code {
		if in.Op == ir.OpPin || in.Op == ir.OpUnpin {
			t.Fatal("norc mode emitted pin instructions")
		}
	}
}

func TestGlobalLayout(t *testing.T) {
	p := compileSrc(t, `
int a = 5;
char *msg = "hi";
char buf[32];
struct s { int v; };
struct s *cache;
void main(void) { print_int(a); }`, ModeQS, nil)
	if p.GlobalWords != 4 {
		t.Errorf("GlobalWords = %d, want 4", p.GlobalWords)
	}
	if len(p.Arrays) != 1 || p.Arrays[0].Len != 32 {
		t.Errorf("Arrays = %+v", p.Arrays)
	}
	if len(p.Inits) != 2 {
		t.Errorf("Inits = %+v", p.Inits)
	}
	if len(p.Strings) != 1 || p.Strings[0] != "hi" {
		t.Errorf("Strings = %v", p.Strings)
	}
	g := p.Types[p.GlobalDesc]
	// cache is a counted global pointer slot; msg and buf hold
	// traditional-region values but are unannotated, hence also counted.
	if len(g.CountedOffsets) != 3 {
		t.Errorf("globals counted offsets = %v", g.CountedOffsets)
	}
}

func TestDisasm(t *testing.T) {
	p := compileSrc(t, barrierSrc, ModeQS, nil)
	text := ir.Disasm(fn(t, p, "main"))
	for _, want := range []string{"alloc", "storep", "barrier=same", "barrier=trad",
		"barrier=parent", "barrier=full", "newregion", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeNQ: "nq", ModeQS: "qs", ModeInf: "inf", ModeNC: "nc", ModeNoRC: "norc",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q", m, m.String())
		}
	}
}
