package rcgo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Allocation fast path for the concurrent arena (DESIGN.md §11).
//
// The paper's whole cost argument is that region allocation is a pointer
// bump: `ralloc` touches only region-local state, and safety is paid for
// at pointer *assignments*, not allocations. The original TryAlloc
// betrayed that: every object took the region's lifecycle mutex and
// updated two arena-shared atomics (objs, liveObjs), so a tight Alloc
// loop serialized on one lock and bounced two contended cache lines.
// This file replaces that with two cooperating caches:
//
//   - Batched counter deltas. Each region lazily owns a small block of
//     cache-line-padded shards (allocCache); an admitted allocation adds
//     +1 to one shard chosen by hashing the object address — the same
//     Fibonacci scheme the slot registry uses, and goroutine-correlated
//     because the Go allocator hands a goroutine addresses from its P's
//     spans. Deltas drain into the real objs/liveObjs counters on a
//     threshold, on Region.Stats / Arena.Stats, at DeleteDeferred's
//     zombie transition, and at reclaim — so the counters are exact at
//     every quiesce point (the Arena.Audit contract) while the hot loop
//     touches one shard-local line.
//   - Pooled object chunks. Obj headers are handed out of per-type
//     chunks, so a chunk's worth of allocations costs one heap
//     allocation. A partially-used chunk parks in a per-region slot
//     (Region.chunkPark — it used to be an arena-wide slot array, which
//     made concurrent single-type regions displace each other's chunks
//     and bounce the shared slot words; see DESIGN.md §12) and is
//     shared in place: allocators claim indices off its atomic cursor,
//     so steady state is one load plus one fetch-add and the slot word
//     is written only at refill or exhaustion. Parked chunks are strong
//     references, so unlike a bare sync.Pool the cache survives GC
//     cycles under allocation churn. The sync.Pool, shared per type
//     across the whole process, is the second level, touched only on
//     slot misses; reclaim returns a region's parked chunks to their
//     pools so the chunk capacity outlives the region. Oversized types
//     bypass chunking.
//
// Why exact-at-quiesce still holds (the increment-then-validate
// argument, same shape as incRC): an allocation publishes its +1 delta
// *before* loading the region state. Go atomics are sequentially
// consistent, so if the load observed stateAlive, the +1 preceded any
// later dying/dead store and therefore preceded reclaim's drain — an
// admitted object's delta can never be missed by the reclaim that frees
// it. An allocation that observes a deleted state withdraws its +1; if
// a drain or flush captured the +1 before the withdrawal landed, both
// halves of the pair eventually reach objs (every flush credits objs
// AND liveObjs, and reclaim's final objs.Swap removes whatever objs
// accumulated), so the pair nets to zero everywhere it can be seen.
// Residual deltas parked on a reclaimed region's shards are exactly
// such half-pairs and are never read again.
//
// The cache-refill edge carries the rcgo/alloc.refill failpoint: an
// injected error is a transient allocator failure (surfaced before any
// counting, so nothing unwinds), and its perturbations fire inside the
// flush window, widening the interval during which deltas are in flight
// between a shard and the real counters.

// allocShards is the number of delta shards per region. Allocations
// hash to a shard by object address, so concurrent allocators rarely
// share a shard cache line.
const allocShards = 8

// allocFlushThreshold is the per-shard delta at which an allocation
// attempts a best-effort flush. Worth at most threshold*shards of lag
// on the scalar accessors between flush points; exactness never depends
// on it.
const allocFlushThreshold = 64

// allocShard is one padded delta accumulator: pending admitted-object
// count not yet credited to objs/liveObjs (transiently negative on a
// deleted region while a failed allocation's withdraw is in flight).
type allocShard struct {
	pending atomic.Int64
	_       [56]byte
}

// allocCache is a region's delta shard block, allocated lazily on the
// first fast-path allocation (512 B; regions that never allocate pay a
// nil pointer).
type allocCache struct {
	shards [allocShards]allocShard
}

func (c *allocCache) shard(p unsafe.Pointer) *allocShard {
	h := uintptr(p) * 0x9E3779B97F4A7C15 >> 32
	return &c.shards[h%allocShards]
}

// sum reads the shards without clearing them (the Objects accessor).
func (c *allocCache) sum() int64 {
	var d int64
	for i := range c.shards {
		d += c.shards[i].pending.Load()
	}
	return d
}

// drain atomically claims every shard's delta.
func (c *allocCache) drain() int64 {
	var d int64
	for i := range c.shards {
		d += c.shards[i].pending.Swap(0)
	}
	return d
}

// allocCache returns the region's delta block, creating it on first
// use. The CAS race on creation is benign: the loser's empty block is
// discarded before any delta lands in it.
func (r *Region) allocCache() *allocCache {
	if c := r.acache.Load(); c != nil {
		return c
	}
	c := &allocCache{}
	if r.acache.CompareAndSwap(nil, c) {
		return c
	}
	return r.acache.Load()
}

// flushAllocPendingLocked drains the delta shards into objs and the
// arena's liveObjs. Caller holds r.mu; the state word is therefore
// stable and never stateDying. On a dead region the flush is skipped —
// reclaim owns (or already performed) the final drain, and crediting
// counters after reclaim's objs.Swap would leak into the arena total.
func (r *Region) flushAllocPendingLocked() {
	c := r.acache.Load()
	if c == nil || r.state.Load() == stateDead {
		return
	}
	// Perturbation point inside the flush window: deltas claimed from the
	// shards are in flight to the real counters while mu is held.
	fpAllocRefill.Perturb()
	if d := c.drain(); d != 0 {
		r.objs.Add(d)
		r.shard.liveObjs.Add(d)
		if m := r.counters(); m != nil {
			m.allocFlushes.Add(1)
		}
	}
}

// tryFlushAllocPending is the threshold flush: best-effort, because the
// fast path must never block behind a slow lifecycle operation. A
// skipped flush retries on the next threshold crossing, and Stats,
// delete and reclaim flush unconditionally.
func (r *Region) tryFlushAllocPending() {
	if !r.mu.TryLock() {
		return
	}
	r.flushAllocPendingLocked()
	r.mu.Unlock()
}

// drainAllocPendingReclaim is reclaim's drain (state already stateDead,
// made exactly once): credit whatever deltas remain so the final
// objs.Swap removes exactly this region's contribution from liveObjs.
// Deltas that race in after this drain are failed-admission half-pairs
// and net to zero unobserved (see the file comment).
func (r *Region) drainAllocPendingReclaim() {
	if c := r.acache.Load(); c != nil {
		if d := c.drain(); d != 0 {
			r.objs.Add(d)
			r.shard.liveObjs.Add(d)
		}
	}
}

// flushAllocPending drains every registered region's delta shards, so
// arena-wide totals are exact at quiesce. Regions are locked one at a
// time, like every other whole-arena walk.
func (a *Arena) flushAllocPending() {
	a.EachRegion(func(r *Region) {
		r.mu.Lock()
		r.flushAllocPendingLocked()
		r.mu.Unlock()
	})
}

// SetAllocCache enables (the default) or disables the allocation fast
// path for regions created after the call: disabled, TryAlloc takes the
// pre-cache slow path — lifecycle mutex plus direct atomic counter
// updates per object. The knob exists for A/B benchmarking and ablation
// (BenchmarkParallelAllocNoCache, cmd/rcbench -alloc-ab); both paths
// maintain the same exact-at-quiesce accounting and may coexist freely
// within one arena.
//
// Deprecated: pass WithAllocCache to NewArena instead, which configures
// the knob before any region (including the traditional region) exists.
// SetAllocCache remains for mid-life A/B flips.
func (a *Arena) SetAllocCache(enabled bool) { a.allocSlow.Store(!enabled) }

// ---------------------------------------------------------------------------
// Pooled object chunks.

// maxChunkObjBytes: objects larger than this are allocated individually
// (chunking big objects would amplify the memory retained while any one
// chunk-mate is still referenced).
const maxChunkObjBytes = 1 << 10

// chunkTargetBytes sizes a chunk: smaller objects share larger chunks.
const chunkTargetBytes = 8 << 10

// objChunk is a batch of headers for one Obj instantiation. A parked
// chunk is shared by every allocator that loads it from the slot: next
// is an atomic cursor, so each index is claimed exactly once no matter
// how many goroutines hold the chunk — the zero-value guarantee reduces
// to fetch-add uniqueness. A cursor past len(buf) just means the chunk
// is exhausted; the claimer retires it and refills.
type objChunk[T any] struct {
	buf  []Obj[T]
	next atomic.Int64
	// box is this chunk's type-erased parking wrapper, built once at
	// creation so parking allocates nothing.
	box chunkBox
	// slab marks a chunk carved from the arena's backing store
	// (region_slab.go): buf points into an off-heap page owned by the
	// region's slab page list, the chunk never enters a sync.Pool, and
	// claimers publish through the claimed counter below.
	slab bool
	// claimed is the slab writer gate: a claimer increments it after its
	// Obj-header write lands, so reclaim can poison the cursor, compute
	// how many claims succeeded before the poison, and wait until that
	// many header writes have been published before freeing the page
	// (objChunk.quiesce, region_slab.go). Untouched on heap chunks.
	claimed atomic.Int64
}

// release returns a displaced or type-mismatched chunk to its pool.
// Slab chunks are region-owned, not pooled: their storage is freed by
// reclaim's page return, so displacement just drops the reference (the
// region's page list still holds the chunk).
func (ch *objChunk[T]) release() {
	if ch.slab {
		return
	}
	chunkPool[T]().Put(ch)
}

// claim hands out one header from the chunk, or nil when the chunk is
// exhausted (or, for slab chunks, quiesced by reclaim). Heap chunks
// are a load-free fetch-add; slab chunks publish each completed header
// write through the claimed counter, so reclaim can wait until every
// pre-poison claim has landed before freeing the region-owned page.
func (ch *objChunk[T]) claim(r *Region) *Obj[T] {
	if i := ch.next.Add(1) - 1; i < int64(len(ch.buf)) {
		o := &ch.buf[i]
		o.region = r
		if ch.slab {
			ch.claimed.Add(1)
		}
		return o
	}
	return nil
}

// chunkBox type-erases a parked chunk: park slots hold *chunkBox (one
// concrete type for every Obj instantiation), and the claimer
// type-asserts the payload, releasing chunks of other types back to
// their own pools.
type chunkBox struct{ c chunkRef }

type chunkRef interface{ release() }

// chunkParkSlots is the number of parking slots per region
// (Region.chunkPark). Slots are picked by object size, so a region
// allocating a handful of distinct types keeps a chunk of each parked
// simultaneously instead of thrashing one slot; the paper's common case
// (one goroutine, one type per region) uses exactly one slot and
// reclaims its own chunk with no pool traffic.
const chunkParkSlots = 4

// chunkParkSlot picks the region parking slot for an object size by the
// same Fibonacci hash the delta shards use.
func chunkParkSlot(size uintptr) int {
	h := size * 0x9E3779B97F4A7C15 >> 32
	return int(h % chunkParkSlots)
}

// chunkPools maps an Obj instantiation (keyed by a nil *T, which boxes
// the type descriptor without allocating) to its chunk pool.
var chunkPools sync.Map

func chunkPool[T any]() *sync.Pool {
	key := any((*T)(nil))
	if p, ok := chunkPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := chunkPools.LoadOrStore(key, new(sync.Pool))
	return p.(*sync.Pool)
}

// newChunkedObj hands out one object header. Steady state is one
// atomic load (the parked chunk) plus one fetch-add (the cursor): the
// chunk stays parked while allocators share it, so the slot word is
// written only on refill, exhaustion or a type mismatch. A slot miss
// falls through to the sync.Pool, and only a pool miss allocates a
// fresh chunk. That refill edge is the rcgo/alloc.refill failpoint: an
// injected error surfaces before the object is counted, so a refused
// refill unwinds nothing.
//
// Memory trade-off, documented here because it is deliberate: a chunk
// is garbage only when every object in it is, so one long-lived object
// can retain up to chunkTargetBytes of chunk-mates — the same batching
// trade the paper's regions themselves make.
func newChunkedObj[T any](r *Region) (*Obj[T], error) {
	var probe Obj[T]
	if unsafe.Sizeof(probe) > maxChunkObjBytes {
		return &Obj[T]{region: r}, nil
	}
	slot := &r.chunkPark[chunkParkSlot(unsafe.Sizeof(probe))]
	for {
		b := slot.Load()
		if b == nil {
			break
		}
		c, ok := b.c.(*objChunk[T])
		if !ok {
			// Another instantiation is parked here: displace it to its
			// own pool (never dropped) and refill.
			if slot.CompareAndSwap(b, nil) {
				b.c.release()
			}
			break
		}
		if o := c.claim(r); o != nil {
			return o, nil
		}
		// Exhausted: retire it so the next allocator refills. The chunk
		// itself becomes garbage once its objects are.
		slot.CompareAndSwap(b, nil)
	}
	// Slot miss: refill. Pointer-free payload types carve their chunk
	// out of the arena's backing store when one is attached
	// (region_slab.go); everything else — and every store refusal —
	// takes the GC-heap pool path.
	if r.arena.backing != nil && chunkSlabEligible[T]() {
		return newSlabChunkedObj[T](r, slot)
	}
	return newHeapChunkedObj[T](r, slot)
}

// newHeapChunkedObj is the GC-heap refill: the sync.Pool second level,
// then a fresh make. Pooled chunks may arrive partially consumed
// (handoff races below put them back with slots remaining) or, rarely,
// exhausted by a racer that still held them — the cursor check covers
// both.
func newHeapChunkedObj[T any](r *Region, slot *atomic.Pointer[chunkBox]) (*Obj[T], error) {
	var probe Obj[T]
	ch, _ := chunkPool[T]().Get().(*objChunk[T])
	for {
		if ch != nil {
			if o := ch.claim(r); o != nil {
				if ch.next.Load() < int64(len(ch.buf)) {
					// Offer the remainder to the slot; if a racer parked
					// first, the chunk goes back to the pool instead.
					if !slot.CompareAndSwap(nil, &ch.box) {
						ch.release()
					}
				}
				return o, nil
			}
			ch = nil
		}
		if err := fpAllocRefill.Eval(); err != nil {
			return nil, fmt.Errorf("%w: allocation in region %d", err, r.id)
		}
		n := chunkTargetBytes / int(unsafe.Sizeof(probe))
		if n < 4 {
			n = 4
		}
		ch = &objChunk[T]{buf: make([]Obj[T], n)}
		ch.box.c = ch
	}
}
