package rcgo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// The four store flavours of the paper's pointer-assignment classes, in
// one API shape: every Set* returns an error (ErrBadRef for an
// annotation violation, ErrRegionDeleted for a store into a deleted
// holder or target region), and every flavour has a MustSet* variant
// that panics instead.
//
//	SetRef     unannotated pointer: full reference-count update
//	SetSame    sameregion pointer: checked, never counted
//	SetTrad    traditional pointer: checked, never counted
//	SetParent  parentptr pointer: checked, never counted
//
// The annotated stores write no shared memory: they read immutable
// region identity/ancestry and the region state word, then write the
// holder's own slot. SetRef updates the target region's atomic count and
// serializes on the holder's registry shard for the slot. (With arena
// metrics enabled — see region_metrics.go — every flavour additionally
// bumps one sharded counter, and with the annotation advisor armed —
// region_advisor.go — every successful non-nil store is additionally
// classified against the flavour lattice and recorded per call site;
// disabled, each instrument is a single pointer load and branch.)

// slotShards is the number of registry shards per region. Counted slots
// hash to a shard by address, so concurrent SetRefs into one region
// rarely contend on the same lock.
const slotShards = 8

type slotShard struct {
	mu    sync.Mutex
	slots []releaser
}

// releaser lets a region release its objects' outbound counted references
// at delete time without knowing their element types. targetRegion is
// the debug inspector's read-only view of the same slot: the
// blocked-deleters report (region_debug.go) scans the registries to name
// which slots pin a zombie region.
type releaser interface {
	release(owner *Region)
	targetRegion() *Region
}

func (r *Region) shardOf(p unsafe.Pointer) *slotShard {
	// Fibonacci hash of the slot address; slots are word-aligned so the
	// low bits carry no information.
	h := uintptr(p) * 0x9E3779B97F4A7C15 >> 32
	return &r.slots[h%slotShards]
}

// Ref is a counted or annotated slot referencing an Obj. Refs that live
// inside region objects must be updated through the holder's Set
// methods. A given slot should be used with one store flavour only
// (counted SetRef, or checked SetSame/SetTrad/SetParent), like a C field
// with a fixed annotation. The zero Ref is a valid null slot.
type Ref[T any] struct {
	target atomic.Pointer[Obj[T]]
	// registered marks the slot as present in its holder region's
	// registry; guarded by that slot's registry shard lock.
	registered bool
}

func (r *Ref[T]) release(owner *Region) {
	if t := r.target.Swap(nil); t != nil && t.region != owner {
		t.region.decRC()
	}
}

// targetRegion reports the region the slot currently points into (nil
// for a null slot), for the debug inspector's blocked-deleters scan.
func (r *Ref[T]) targetRegion() *Region {
	if t := r.target.Load(); t != nil {
		return t.region
	}
	return nil
}

// Get returns the referenced object (nil if the Ref is null).
func (r *Ref[T]) Get() *Obj[T] { return r.target.Load() }

// SetRef performs holder.slot = target with the full reference-count
// update of the paper's Figure 3(a): counts change only when the store
// creates or destroys an external reference. It returns ErrRegionDeleted
// if the holder's or the target's region has been deleted or
// deferred-deleted — a counted store can never resurrect a zombie region
// or postpone its reclaim. Exception: a nil store from a
// deferred-deleted holder is allowed, so cross-region cycles among
// zombie regions can still be broken by hand.
func SetRef[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	hr := holder.region
	// Count the new external reference before publishing it, so the
	// holder region's delete-time unscan — which may run the instant the
	// slot is visible in the registry — never releases an uncounted
	// reference.
	external := target != nil && target.region != hr
	if external {
		// Propagate incRC's error as-is: it carries ErrRegionDeleted for
		// a dead/zombie target, or ErrInjected under fault injection, and
		// callers distinguish the two with errors.Is.
		if err := target.region.incRC(); err != nil {
			return fmt.Errorf("counted store: %w", err)
		}
	}
	// Failpoint in the count-vs-registry window: the reference is
	// counted but the slot not yet registered; an injected error unwinds
	// the store exactly like a holder-state rejection below.
	if err := fpSlotInsert.Eval(); err != nil {
		if external {
			target.region.decRC()
		}
		return fmt.Errorf("%w: counted store into region %d", err, hr.id)
	}
	sh := hr.shardOf(unsafe.Pointer(slot))
	sh.mu.Lock()
	hs := hr.settled()
	if hs != stateAlive && !(hs == stateZombie && target == nil) {
		sh.mu.Unlock()
		if external {
			target.region.decRC()
		}
		if hs == stateOwned {
			// The state re-read under the shard lock is what fences
			// shared stores against Acquire's barrier sweep: any store
			// that gets here after the sweep passed its shard observes
			// stateOwned and fails; the owner uses SetRefOwned.
			return fmt.Errorf("%w: counted store into region %d", ErrRegionOwned, hr.id)
		}
		return fmt.Errorf("%w: counted store into deleted region %d", ErrRegionDeleted, hr.id)
	}
	old := slot.target.Swap(target)
	if target != nil && !slot.registered {
		slot.registered = true
		sh.slots = append(sh.slots, slot)
	}
	sh.mu.Unlock()
	if c := hr.slotCounters(unsafe.Pointer(slot)); c != nil {
		c.countedStores.Add(1)
	}
	if target != nil {
		if ad := hr.advisor.Load(); ad != nil {
			ad.observe(hr, target.region, FlavourRef)
		}
	}
	// Release the displaced reference outside the shard lock: the drop
	// can reclaim a deferred-deleted region, which takes its own locks.
	if old != nil && old.region != hr {
		old.region.decRC()
	}
	return nil
}

// MustSetRef is SetRef panicking on error.
func MustSetRef[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) {
	if err := SetRef(holder, slot, target); err != nil {
		panic(err)
	}
}

// SetSame performs holder.slot = target for a sameregion slot: the target
// must be nil or in the holder's (live) region. Never touches a count or
// any shared cache line.
func SetSame[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	hr := holder.region
	c := hr.slotCounters(unsafe.Pointer(slot))
	if c != nil {
		c.sameChecks.Add(1)
	}
	if target != nil {
		if target.region != hr {
			if c != nil {
				c.checkFailures.Add(1)
			}
			return fmt.Errorf("%w: sameregion store of %v into %v",
				ErrBadRef, target.region.id, hr.id)
		}
		if hs := hr.settled(); hs != stateAlive {
			if hs == stateOwned {
				return fmt.Errorf("%w: sameregion store into region %d",
					ErrRegionOwned, hr.id)
			}
			return fmt.Errorf("%w: sameregion store into deleted region %d",
				ErrRegionDeleted, hr.id)
		}
		if ad := hr.advisor.Load(); ad != nil {
			ad.observe(hr, target.region, FlavourSame)
		}
	}
	slot.target.Store(target)
	return nil
}

// MustSetSame is SetSame panicking on error.
func MustSetSame[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) {
	if err := SetSame(holder, slot, target); err != nil {
		panic(err)
	}
}

// SetTrad performs holder.slot = target for a traditional slot: the
// target must be nil or in the arena's traditional region. Never touches
// a count (the traditional region is immortal) or any shared cache line.
func SetTrad[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	hr := holder.region
	c := hr.slotCounters(unsafe.Pointer(slot))
	if c != nil {
		c.tradChecks.Add(1)
	}
	if target != nil {
		if target.region != hr.arena.trad {
			if c != nil {
				c.checkFailures.Add(1)
			}
			return fmt.Errorf("%w: traditional store of %v", ErrBadRef, target.region.id)
		}
		if hs := hr.settled(); hs != stateAlive {
			if hs == stateOwned {
				return fmt.Errorf("%w: traditional store into region %d",
					ErrRegionOwned, hr.id)
			}
			return fmt.Errorf("%w: traditional store into deleted region %d",
				ErrRegionDeleted, hr.id)
		}
		if ad := hr.advisor.Load(); ad != nil {
			ad.observe(hr, target.region, FlavourTrad)
		}
	}
	slot.target.Store(target)
	return nil
}

// MustSetTrad is SetTrad panicking on error.
func MustSetTrad[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) {
	if err := SetTrad(holder, slot, target); err != nil {
		panic(err)
	}
}

// SetParent performs holder.slot = target for a parentptr slot: the
// target must be nil or in an ancestor (or the same) region of the
// holder's. Never touches a count (an ancestor always outlives the
// holder) or any shared cache line.
func SetParent[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) error {
	hr := holder.region
	c := hr.slotCounters(unsafe.Pointer(slot))
	if c != nil {
		c.parentChecks.Add(1)
	}
	if target != nil {
		if !target.region.isAncestorOf(hr) {
			if c != nil {
				c.checkFailures.Add(1)
			}
			return fmt.Errorf("%w: parentptr store of %v into %v",
				ErrBadRef, target.region.id, hr.id)
		}
		if hs := hr.settled(); hs != stateAlive {
			if hs == stateOwned {
				return fmt.Errorf("%w: parentptr store into region %d",
					ErrRegionOwned, hr.id)
			}
			return fmt.Errorf("%w: parentptr store into deleted region %d",
				ErrRegionDeleted, hr.id)
		}
		// An ancestor that is merely owned remains a legal target: a
		// parentptr creates no reference and mutates nothing over there.
		if ts := target.region.settled(); ts != stateAlive && ts != stateOwned {
			return fmt.Errorf("%w: parentptr store targets deleted region %d",
				ErrRegionDeleted, target.region.id)
		}
		if ad := hr.advisor.Load(); ad != nil {
			ad.observe(hr, target.region, FlavourParent)
		}
	}
	slot.target.Store(target)
	return nil
}

// MustSetParent is SetParent panicking on error.
func MustSetParent[T any, H any](holder *Obj[H], slot *Ref[T], target *Obj[T]) {
	if err := SetParent(holder, slot, target); err != nil {
		panic(err)
	}
}

// isAncestorOf walks the (immutable) parent chain.
func (r *Region) isAncestorOf(s *Region) bool {
	for ; s != nil; s = s.parent {
		if s == r {
			return true
		}
	}
	return false
}
